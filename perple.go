// Package perple is the public API of the PerpLE reproduction: perpetual
// litmus testing for memory consistency, after "PerpLE: Improving the
// Speed and Effectiveness of Memory Consistency Testing" (MICRO 2020).
//
// The package re-exports the library's stable surface:
//
//   - litmus tests: building, parsing, printing, the Table II suite
//     (Suite, SuiteTest, ParseLitmus, FormatLitmus, NewTest helpers);
//   - memory-model checking: AllowedTSO/AllowedSC and outcome sets
//     (herd-lite, used to classify targets);
//   - the Converter: Convert, ConvertOutcome, generated artifacts
//     (GeneratedFiles);
//   - the counters: NewCounter/NewTargetCounter with CountExhaustive
//     (Algorithm 1) and CountHeuristic (Algorithm 2);
//   - the harnesses: RunLitmus7 (five synchronization modes) and
//     RunPerpLE on the simulated x86-TSO machine, plus MeasureSkew;
//   - the experiment drivers regenerating the paper's tables and figures.
//
// Quick start:
//
//	test, _ := perple.SuiteTest("sb")
//	pt, _ := perple.Convert(test)
//	counter, _ := perple.NewTargetCounter(pt)
//	res, _ := perple.RunPerpLE(pt, counter, 10000,
//	    perple.PerpLEOptions{Heuristic: true}, perple.DefaultConfig())
//	fmt.Println("target occurrences:", res.Heuristic.Counts[0])
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record.
package perple

import (
	"perple/internal/core"
	"perple/internal/experiments"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/sim"
)

// Model selects a memory consistency model for classification and for the
// simulated machine's Relaxation knob.
type Model = memmodel.Model

// Supported memory models.
const (
	SC  = memmodel.SC
	TSO = memmodel.TSO
	PSO = memmodel.PSO
)

// ----- litmus tests -----

// Re-exported litmus test vocabulary.
type (
	// Test is a litmus test: thread programs, initial state and a target
	// outcome.
	Test = litmus.Test
	// Thread is one thread's instruction sequence.
	Thread = litmus.Thread
	// Instr is a single load, store or fence.
	Instr = litmus.Instr
	// Loc names a shared memory location.
	Loc = litmus.Loc
	// Cond is one outcome condition (register or final-memory).
	Cond = litmus.Cond
	// Outcome is a conjunction of conditions.
	Outcome = litmus.Outcome
	// SuiteEntry pairs a suite test with its Table II classification.
	SuiteEntry = litmus.SuiteEntry
	// GenConfig configures the random test generator.
	GenConfig = litmus.GenConfig
	// EdgeSpec is one edge of a diy-style relaxation cycle.
	EdgeSpec = litmus.EdgeSpec
)

// Cycle edge kinds for FromCycle (diy-style test generation).
const (
	Rfe      = litmus.Rfe
	Fre      = litmus.Fre
	Wse      = litmus.Wse
	PodWR    = litmus.PodWR
	PodRR    = litmus.PodRR
	PodRW    = litmus.PodRW
	PodWW    = litmus.PodWW
	FencedWR = litmus.FencedWR
	FencedRR = litmus.FencedRR
	FencedRW = litmus.FencedRW
	FencedWW = litmus.FencedWW
)

// FromCycle synthesizes a litmus test from a relaxation cycle (diy-style
// generation; see internal/litmus/diy.go).
func FromCycle(name string, edges ...EdgeSpec) (*Test, error) {
	return litmus.FromCycle(name, edges...)
}

// ParseCycle resolves a whitespace-separated list of cycle edge names.
func ParseCycle(s string) ([]EdgeSpec, error) { return litmus.ParseCycle(s) }

// WithFences returns a copy of the test with an MFENCE between every pair
// of accesses; full fencing restores sequential consistency on TSO-class
// machines.
func WithFences(t *Test) *Test { return litmus.WithFences(t) }

// RelabelLocations returns a copy with shared locations renamed.
func RelabelLocations(t *Test, mapping map[Loc]Loc) (*Test, error) {
	return litmus.RelabelLocations(t, mapping)
}

// Instruction constructors.
var (
	// Store builds a store of a positive constant to a location.
	Store = litmus.Store
	// Load builds a load from a location into a thread register.
	Load = litmus.Load
	// Fence builds a full memory fence (x86 MFENCE).
	Fence = litmus.Fence
)

// Suite returns the 34-test perpetual litmus suite of Table II.
func Suite() []SuiteEntry { return litmus.Suite() }

// SuiteTest returns a suite test by name.
func SuiteTest(name string) (*Test, error) { return litmus.SuiteTest(name) }

// SuiteNames lists the suite test names in Table II order.
func SuiteNames() []string { return litmus.SuiteNames() }

// AllowedSuite returns the suite tests whose targets x86-TSO allows.
func AllowedSuite() []SuiteEntry { return litmus.AllowedSuite() }

// ForbiddenSuite returns the suite tests whose targets x86-TSO forbids.
func ForbiddenSuite() []SuiteEntry { return litmus.ForbiddenSuite() }

// NonConvertible returns example tests whose targets constrain final
// memory and therefore cannot become perpetual (Section V-C).
func NonConvertible() []*Test { return litmus.NonConvertible() }

// ParseLitmus parses a litmus7-style x86 test file.
func ParseLitmus(src string) (*Test, error) { return litmus.Parse(src) }

// FormatLitmus renders a test in the litmus7-style format ParseLitmus
// accepts.
func FormatLitmus(t *Test) string { return litmus.Format(t) }

// ----- memory-model checking (herd-lite) -----

// Allowed reports whether the given memory model allows the outcome.
func Allowed(t *Test, o Outcome, m Model) bool {
	return memmodel.AxiomaticAllowed(t, o, m)
}

// AllowedTSO reports whether x86-TSO allows the outcome of the test.
func AllowedTSO(t *Test, o Outcome) bool {
	return memmodel.AxiomaticAllowed(t, o, memmodel.TSO)
}

// AllowedSC reports whether sequential consistency allows the outcome.
func AllowedSC(t *Test, o Outcome) bool {
	return memmodel.AxiomaticAllowed(t, o, memmodel.SC)
}

// TSOOutcomes returns the test's register outcomes x86-TSO allows.
func TSOOutcomes(t *Test) []Outcome { return memmodel.AllowedOutcomes(t, memmodel.TSO) }

// SCOutcomes returns the test's register outcomes SC allows.
func SCOutcomes(t *Test) []Outcome { return memmodel.AllowedOutcomes(t, memmodel.SC) }

// ----- the Converter and counters -----

type (
	// PerpetualTest is a converted litmus test: stores rewritten to
	// arithmetic sequences, no per-iteration synchronization.
	PerpetualTest = core.PerpetualTest
	// PerpetualOutcome is an outcome converted to buf-array constraints.
	PerpetualOutcome = core.PerpetualOutcome
	// Counter applies COUNT / COUNTH to run results.
	Counter = core.Counter
	// CountResult reports occurrences and frames examined.
	CountResult = core.CountResult
	// BufSet holds a perpetual run's in-memory results.
	BufSet = core.BufSet
	// SeqStore describes one store's arithmetic sequence.
	SeqStore = core.SeqStore
)

// Convert builds the perpetual counterpart of a litmus test (Table I).
func Convert(t *Test) (*PerpetualTest, error) { return core.Convert(t) }

// ConvertOutcome converts one outcome of interest (Section IV-A/B).
func ConvertOutcome(pt *PerpetualTest, o Outcome) (*PerpetualOutcome, error) {
	return core.ConvertOutcome(pt, o)
}

// ConvertAllOutcomes converts the test's whole outcome space.
func ConvertAllOutcomes(pt *PerpetualTest) ([]*PerpetualOutcome, error) {
	return core.ConvertAllOutcomes(pt)
}

// NewCounter builds a counter over outcomes of interest.
func NewCounter(pt *PerpetualTest, outcomes []*PerpetualOutcome) *Counter {
	return core.NewCounter(pt, outcomes)
}

// NewTargetCounter builds a counter for the test's target outcome.
func NewTargetCounter(pt *PerpetualTest) (*Counter, error) {
	return core.NewTargetCounter(pt)
}

// GeneratedFiles renders the Converter's output artifacts: perpetual
// assembly per thread, counter source files and the parameters file.
func GeneratedFiles(pt *PerpetualTest, outcomes []*PerpetualOutcome) map[string]string {
	return core.GeneratedFiles(pt, outcomes)
}

// DecodeValue identifies the store and iteration that produced a loaded
// value (the skew-measurement insight of Section VI-B5).
func DecodeValue(pt *PerpetualTest, loc Loc, v int64) (*SeqStore, int64, bool) {
	return core.DecodeValue(pt, loc, v)
}

// Explanation narrates an outcome conversion step by step (Figures 6/8).
type Explanation = core.Explanation

// Explain converts an outcome and narrates every step of Section IV.
func Explain(pt *PerpetualTest, o Outcome) (*PerpetualOutcome, *Explanation, error) {
	return core.Explain(pt, o)
}

// ----- simulated machine and harnesses -----

type (
	// Config is the simulated machine's timing model.
	Config = sim.Config
	// Mode is a litmus7 thread-synchronization mode.
	Mode = sim.Mode
	// Litmus7Result is a litmus7-style run's tally.
	Litmus7Result = harness.Litmus7Result
	// PerpLEResult is a PerpLE run's counters and costs.
	PerpLEResult = harness.PerpLEResult
	// PerpLEOptions selects counters for a PerpLE run.
	PerpLEOptions = harness.PerpLEOptions
	// SkewSample is one thread-skew observation.
	SkewSample = harness.SkewSample
	// Trace is the machine-event trace recorded when Config.TraceSize > 0.
	Trace = sim.Trace
	// TraceEvent is one recorded machine event.
	TraceEvent = sim.TraceEvent
)

// Synchronization modes (litmus7's user, userfence, pthread, timebase,
// none).
const (
	ModeUser      = sim.ModeUser
	ModeUserFence = sim.ModeUserFence
	ModePthread   = sim.ModePthread
	ModeTimebase  = sim.ModeTimebase
	ModeNone      = sim.ModeNone
)

// DefaultConfig returns the calibrated simulator timing model.
func DefaultConfig() Config { return sim.DefaultConfig() }

// Preset returns a named machine configuration (default, pso, slow-drain,
// fast-drain, no-preempt, heavy-preempt).
func Preset(name string) (Config, error) { return sim.Preset(name) }

// Presets lists every named machine configuration.
func Presets() map[string]Config { return sim.Presets() }

// RunLitmus7 runs n synchronized iterations litmus7-style and tallies
// outcomes.
func RunLitmus7(t *Test, n int, mode Mode, outcomes []Outcome, cfg Config) (*Litmus7Result, error) {
	return harness.RunLitmus7(t, n, mode, outcomes, cfg)
}

// RunPerpLE runs n synchronization-free iterations of a perpetual test
// and applies the selected outcome counters.
func RunPerpLE(pt *PerpetualTest, c *Counter, n int, opts PerpLEOptions, cfg Config) (*PerpLEResult, error) {
	return harness.RunPerpLE(pt, c, n, opts, cfg)
}

// ----- compiled tests, reusable runners, batched runs -----

type (
	// CompiledTest is a litmus test lowered for the simulator, shareable
	// across runners and goroutines.
	CompiledTest = sim.CompiledTest
	// Litmus7Runner reruns one compiled test with zero steady-state
	// allocation; not safe for concurrent use.
	Litmus7Runner = harness.Litmus7Runner
)

// CompileTest lowers a litmus test once for repeated or batched runs.
func CompileTest(t *Test) (*CompiledTest, error) { return sim.Compile(t) }

// NewLitmus7Runner builds a reusable litmus7-style runner over a
// compiled test.
func NewLitmus7Runner(ct *CompiledTest, outcomes []Outcome) (*Litmus7Runner, error) {
	return harness.NewLitmus7Runner(ct, outcomes)
}

// WorkerSeed derives batch worker w's deterministic RNG seed (seed ⊕ w);
// worker 0 reproduces the serial run.
func WorkerSeed(seed int64, worker int) int64 { return sim.WorkerSeed(seed, worker) }

// RunLitmus7Batch splits a litmus7-style run across workers with
// deterministic per-worker seeds and merges the per-worker tallies; a
// one-worker batch matches RunLitmus7 exactly (modulo Wall).
func RunLitmus7Batch(t *Test, n int, mode Mode, outcomes []Outcome, cfg Config, workers int) (*Litmus7Result, error) {
	return harness.RunLitmus7Batch(t, n, mode, outcomes, cfg, workers)
}

// RunPerpLEBatch splits a PerpLE run across workers the same way and
// merges the per-worker results.
func RunPerpLEBatch(pt *PerpetualTest, c *Counter, n int, opts PerpLEOptions, cfg Config, workers int) (*PerpLEResult, error) {
	return harness.RunPerpLEBatch(pt, c, n, opts, cfg, workers)
}

// MeasureSkew extracts thread-skew samples from a perpetual run.
func MeasureSkew(pt *PerpetualTest, bs *BufSet) []SkewSample {
	return harness.MeasureSkew(pt, bs)
}

// FormatLitmus7Report renders a litmus7-style run report (Test /
// Histogram / Witnesses / Observation).
func FormatLitmus7Report(res *Litmus7Result) string {
	return harness.FormatLitmus7Report(res)
}

// ----- experiments -----

// ExperimentOptions configures the paper-evaluation drivers.
type ExperimentOptions = experiments.Options

// Experiment drivers regenerating the paper's evaluation; each writes a
// plain-text report to w and returns a structured result.
var (
	ExperimentTableII     = experiments.TableII
	ExperimentFig9        = experiments.Fig9
	ExperimentFig10       = experiments.Fig10
	ExperimentFig11       = experiments.Fig11
	ExperimentFig12       = experiments.Fig12
	ExperimentFig13       = experiments.Fig13
	ExperimentAccuracy    = experiments.HeuristicAccuracy
	ExperimentOverall     = experiments.Overall
	ExperimentFaultInject = experiments.FaultInjection
)
