#!/usr/bin/env bash
# Capture the sim/counter core benchmarks into BENCH_simcore.json so the
# benchmark trajectory is committed and future PRs can diff against it.
#
#   make bench                # or: ./scripts/bench.sh
#   BENCH_TIME=5x make bench  # heavier sampling
#   BENCH_PAT='BenchmarkSimLitmus7' ./scripts/bench.sh  # subset
set -euo pipefail
cd "$(dirname "$0")/.."

PAT=${BENCH_PAT:-'BenchmarkSim|BenchmarkCount|BenchmarkFleet|BenchmarkTrace'}
TIME=${BENCH_TIME:-2x}
OUT=${BENCH_OUT:-BENCH_simcore.json}

# BenchmarkFleet* live in internal/campaign (they need the dispatch
# internals); everything else is in the root package.
go test -run '^$' -bench "$PAT" -benchmem -benchtime "$TIME" . ./internal/campaign |
    go run ./cmd/perple-bench -o "$OUT"
