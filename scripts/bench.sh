#!/usr/bin/env bash
# Capture the sim/counter core benchmarks into BENCH_simcore.json so the
# benchmark trajectory is committed and future PRs can diff against it.
#
#   make bench                # or: ./scripts/bench.sh
#   BENCH_TIME=5x make bench  # heavier sampling
#   BENCH_PAT='BenchmarkSimLitmus7' ./scripts/bench.sh  # subset
set -euo pipefail
cd "$(dirname "$0")/.."

PAT=${BENCH_PAT:-'BenchmarkSim|BenchmarkCount'}
TIME=${BENCH_TIME:-2x}
OUT=${BENCH_OUT:-BENCH_simcore.json}

go test -run '^$' -bench "$PAT" -benchmem -benchtime "$TIME" . |
    go run ./cmd/perple-bench -o "$OUT"
