#!/usr/bin/env bash
# Capture the sim/counter core benchmarks into BENCH_simcore.json so the
# benchmark trajectory is committed and future PRs can diff against it.
#
# Two passes feed one summary: the full suite at the session's default
# GOMAXPROCS, then the scaling benchmarks swept across -cpu so the
# committed file carries a real workers-vs-GOMAXPROCS curve (keyed
# name/cpu=N; each entry records its own num_cpu and gomaxprocs, so a
# 1-CPU host's curve is honestly labelled as oversubscription).
#
#   make bench                  # or: ./scripts/bench.sh
#   BENCH_TIME=10x make bench   # heavier sampling
#   BENCH_CPU=1,2 ./scripts/bench.sh      # smaller sweep
#   BENCH_PAT='BenchmarkSimLitmus7' ./scripts/bench.sh  # subset
set -euo pipefail
cd "$(dirname "$0")/.."

PAT=${BENCH_PAT:-'BenchmarkSim|BenchmarkCount|BenchmarkFleet|BenchmarkTrace'}
# 5x floor: with 2x samples a single descheduling blip lands in the
# committed numbers; five ops lets go test's trimmed mean absorb it.
TIME=${BENCH_TIME:-5x}
OUT=${BENCH_OUT:-BENCH_simcore.json}
CPU=${BENCH_CPU:-1,2,4,8}
SCALE_PAT=${BENCH_SCALE_PAT:-'BenchmarkCountExhaustiveParallel|BenchmarkSimLitmus7Batch'}

# BenchmarkFleet* live in internal/campaign (they need the dispatch
# internals); everything else is in the root package.
{
    go test -run '^$' -bench "$PAT" -benchmem -benchtime "$TIME" . ./internal/campaign
    go test -run '^$' -bench "$SCALE_PAT" -benchmem -benchtime "$TIME" -cpu "$CPU" .
} | go run ./cmd/perple-bench -o "$OUT"
