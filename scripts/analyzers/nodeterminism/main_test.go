package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// lint parses one source snippet and returns the findings' messages.
func lint(t *testing.T, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, f := range checkFile(fset, file) {
		msgs = append(msgs, f.msg)
	}
	return msgs
}

func wantFinding(t *testing.T, msgs []string, substr string) {
	t.Helper()
	for _, m := range msgs {
		if strings.Contains(m, substr) {
			return
		}
	}
	t.Errorf("no finding containing %q in %v", substr, msgs)
}

func TestFlagsWallClock(t *testing.T) {
	msgs := lint(t, `package p
import "time"
func f() time.Duration { start := time.Now(); return time.Since(start) }
`)
	if len(msgs) != 2 {
		t.Fatalf("findings = %v, want 2", msgs)
	}
	wantFinding(t, msgs, "time.Now")
	wantFinding(t, msgs, "time.Since")
}

func TestFlagsGlobalRand(t *testing.T) {
	msgs := lint(t, `package p
import "math/rand"
func f() int { return rand.Intn(10) }
func g() *rand.Rand { return rand.New(rand.NewSource(1)) }
`)
	if len(msgs) != 1 {
		t.Fatalf("findings = %v, want only the global-source call", msgs)
	}
	wantFinding(t, msgs, "rand.Intn")
}

func TestFlagsRenamedImport(t *testing.T) {
	msgs := lint(t, `package p
import mr "math/rand"
func f() int64 { return mr.Int63() }
`)
	wantFinding(t, msgs, "rand.Int63")
}

func TestShadowedPackageNameIsClean(t *testing.T) {
	msgs := lint(t, `package p
type clock struct{}
func (clock) Now() int { return 0 }
func f() int { time := clock{}; return time.Now() }
`)
	if len(msgs) != 0 {
		t.Fatalf("findings = %v, want none for a shadowing local", msgs)
	}
}

func TestFlagsOutputInMapRange(t *testing.T) {
	msgs := lint(t, `package p
import "fmt"
func f(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v)
	}
}
func g() {
	counts := make(map[string]int)
	for k := range counts {
		fmt.Println(k)
	}
}
`)
	if len(msgs) != 2 {
		t.Fatalf("findings = %v, want 2", msgs)
	}
	wantFinding(t, msgs, "iteration order is randomized")
}

func TestSortedMapDrainIsClean(t *testing.T) {
	msgs := lint(t, `package p
import (
	"fmt"
	"sort"
)
func f(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}
`)
	if len(msgs) != 0 {
		t.Fatalf("findings = %v, want none for the sort-the-keys pattern", msgs)
	}
}

func TestAllowSuppression(t *testing.T) {
	msgs := lint(t, `package p
import "time"
func f() time.Time {
	return time.Now() //nodeterminism:allow wall-clock telemetry only
}
func g() time.Time {
	//nodeterminism:allow timing a subprocess, not a result
	return time.Now()
}
func h() time.Time {
	return time.Now() //nodeterminism:allow
}
`)
	// The first two are suppressed; the reason-less third is not.
	if len(msgs) != 1 {
		t.Fatalf("findings = %v, want only the reason-less site", msgs)
	}
}
