// Command nodeterminism is the repo's determinism lint: the simulator's
// core promise is that equal seeds produce equal results, so the packages
// on the result path must not read ambient nondeterminism. It flags, in
// the package directories given as arguments:
//
//   - calls to time.Now / time.Since / time.Until — wall-clock reads;
//     result-affecting code must count ticks, not nanoseconds;
//   - calls to math/rand's global source (rand.Intn, rand.Int63, ...) —
//     the process-wide generator defeats seeded reproducibility; only
//     rand.New / rand.NewSource / rand.NewZipf constructors are allowed;
//   - output emitted inside a `range` over a map — Go randomizes map
//     iteration order, so anything printed or formatted per entry must
//     sort the keys first.
//
// A finding is suppressed by a trailing or preceding comment of the form
//
//	//nodeterminism:allow <reason>
//
// with a non-empty reason; the harness's wall-clock telemetry fields use
// this (they time external-tool-style runs and never feed results).
//
// The checker is a standalone AST walker on purpose: the build
// environment is offline, so golang.org/x/tools (go/analysis, go/packages)
// is unavailable, and full type information with it. The map rule is
// therefore an under-approximation — it only recognizes values whose map
// type is visible in the same function (make(map...), map literals, var
// declarations, parameters) — which keeps it free of false positives at
// the cost of missing maps that arrive behind named types or interfaces.
//
// Exit status: 0 clean, 1 findings, 2 usage or parse errors.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(stderr, "usage: nodeterminism <package-dir> ...")
		return 2
	}
	fset := token.NewFileSet()
	var findings []finding
	for _, dir := range args {
		entries, err := os.ReadDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "nodeterminism: %v\n", err)
			return 2
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			path := filepath.Join(dir, e.Name())
			file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(stderr, "nodeterminism: %v\n", err)
				return 2
			}
			findings = append(findings, checkFile(fset, file)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].pos, findings[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s: nodeterminism: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

type finding struct {
	pos token.Position
	msg string
}

// randConstructors are the math/rand package-level functions that build
// seeded generators rather than consuming the global source.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// checkFile runs all three rules over one parsed file.
func checkFile(fset *token.FileSet, file *ast.File) []finding {
	timeName, randName := importNames(file)
	allowed := allowLines(fset, file)
	var findings []finding
	report := func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		if allowed[p.Line] || allowed[p.Line-1] {
			return
		}
		findings = append(findings, finding{pos: p, msg: msg})
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			pkg, fn := packageCall(n)
			switch {
			case pkg == "":
				// Not a pkg.Fn call (or time/rand not imported).
			case pkg == timeName && (fn == "Now" || fn == "Since" || fn == "Until"):
				report(n.Pos(), fmt.Sprintf("call to time.%s: wall-clock reads make seeded runs unreproducible; count ticks instead", fn))
			case pkg == randName && !randConstructors[fn]:
				report(n.Pos(), fmt.Sprintf("global math/rand source via rand.%s: use rand.New(rand.NewSource(seed)) so equal seeds replay", fn))
			}
		case *ast.FuncDecl:
			findings = append(findings, checkMapRanges(fset, n, allowed)...)
		}
		return true
	})
	return findings
}

// importNames resolves the local names of the "time" and "math/rand"
// imports (honoring renames); "" means not imported.
func importNames(file *ast.File) (timeName, randName string) {
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
		}
		switch path {
		case "time":
			timeName = "time"
			if name != "" {
				timeName = name
			}
		case "math/rand":
			randName = "rand"
			if name != "" {
				randName = name
			}
		}
	}
	return
}

// packageCall decomposes pkg.Fn(...) calls; the Obj == nil check keeps a
// local variable that shadows the package name from matching (the parser
// resolves file-local objects, and package identifiers stay unresolved).
func packageCall(call *ast.CallExpr) (pkg, fn string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Obj != nil {
		return "", ""
	}
	return id.Name, sel.Sel.Name
}

// allowLines collects the line numbers carrying a
// "//nodeterminism:allow <reason>" suppression (reason required).
func allowLines(fset *token.FileSet, file *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//nodeterminism:allow")
			if ok && strings.TrimSpace(rest) != "" {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// checkMapRanges flags output emitted inside `range` over a
// function-locally-visible map.
func checkMapRanges(fset *token.FileSet, fn *ast.FuncDecl, allowed map[int]bool) []finding {
	if fn.Body == nil {
		return nil
	}
	maps := localMapVars(fn)
	var findings []finding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !rangesOverMap(rng.X, maps) {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, f := packageCall(call); pkg == "fmt" && strings.Contains(f, "rint") {
				p := fset.Position(call.Pos())
				if !allowed[p.Line] && !allowed[p.Line-1] {
					findings = append(findings, finding{pos: p,
						msg: fmt.Sprintf("fmt.%s inside range over a map: iteration order is randomized; sort the keys first", f)})
				}
			}
			return true
		})
		return true
	})
	return findings
}

// localMapVars gathers names whose map type is visible inside fn:
// parameters, receivers, var declarations, and := bindings of map
// literals or make(map...).
func localMapVars(fn *ast.FuncDecl) map[string]bool {
	maps := map[string]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if _, ok := f.Type.(*ast.MapType); ok {
				for _, name := range f.Names {
					maps[name.Name] = true
				}
			}
		}
	}
	addFields(fn.Recv)
	addFields(fn.Type.Params)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				for _, name := range n.Names {
					maps[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) || !isMapExpr(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					maps[id.Name] = true
				}
			}
		}
		return true
	})
	return maps
}

// isMapExpr recognizes expressions that are syntactically maps:
// map literals and make(map[...]...).
func isMapExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		_, ok := e.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
			_, ok := e.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// rangesOverMap reports whether the ranged expression is a known map
// variable or an inline map literal.
func rangesOverMap(x ast.Expr, maps map[string]bool) bool {
	switch x := x.(type) {
	case *ast.Ident:
		return maps[x.Name]
	case *ast.CompositeLit:
		_, ok := x.Type.(*ast.MapType)
		return ok
	}
	return false
}
