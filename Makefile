GO ?= go

.PHONY: build test race bench vet check lint fuzz chaos trace-verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static invariant checks: go vet plus perple-vet's four passes
# (nodeterminism, hotalloc, mergeorder, wirecompat) over the whole
# module. This is the gate CI runs; see DESIGN.md §15.
check: vet
	$(GO) run ./cmd/perple-vet ./...

# Historical alias for check (the old standalone determinism lint was
# absorbed into perple-vet's nodeterminism pass).
lint: check

# Short local fuzz pass over the litmus parser (CI runs the seed corpus
# as ordinary tests; this explores new inputs).
fuzz:
	$(GO) test ./internal/litmus -fuzz FuzzParseRoundTrip -fuzztime 30s

# Long chaos soak: fault-injected loopback fleets under the race
# detector (six fixed-seed rounds; CI runs the short variant). Seeds
# are fixed per round, so a failure replays its exact fault schedule
# on rerun.
chaos:
	$(GO) test ./internal/campaign -run TestChaos -race -count=1 -v -chaos.long

# Runtime conformance oracle: sampled witness-trace verification of the
# built-in suite on the default (TSO) machine, under the race detector.
# Exit status follows perple-trace: 0 all witnesses consistent, 1
# violations found (a simulator conformance bug), 2 usage or error.
trace-verify:
	$(GO) run -race ./cmd/perple-trace -suite -n 4000 -every 4

# Capture the sim/counter core benchmarks into BENCH_simcore.json
# (committed, so future PRs can diff the perf trajectory).
bench:
	./scripts/bench.sh
