GO ?= go

.PHONY: build test race bench vet lint fuzz chaos trace-verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Determinism lint: the result-path packages must not read wall clocks,
# the global math/rand source, or emit output in map-iteration order.
lint: vet
	$(GO) run ./scripts/analyzers/nodeterminism ./internal/sim ./internal/harness ./internal/core ./internal/litmus

# Short local fuzz pass over the litmus parser (CI runs the seed corpus
# as ordinary tests; this explores new inputs).
fuzz:
	$(GO) test ./internal/litmus -fuzz FuzzParseRoundTrip -fuzztime 30s

# Long chaos soak: fault-injected loopback fleets under the race
# detector (six fixed-seed rounds; CI runs the short variant). Seeds
# are fixed per round, so a failure replays its exact fault schedule
# on rerun.
chaos:
	$(GO) test ./internal/campaign -run TestChaos -race -count=1 -v -chaos.long

# Runtime conformance oracle: sampled witness-trace verification of the
# built-in suite on the default (TSO) machine, under the race detector.
# Exit status follows perple-trace: 0 all witnesses consistent, 1
# violations found (a simulator conformance bug), 2 usage or error.
trace-verify:
	$(GO) run -race ./cmd/perple-trace -suite -n 4000 -every 4

# Capture the sim/counter core benchmarks into BENCH_simcore.json
# (committed, so future PRs can diff the perf trajectory).
bench:
	./scripts/bench.sh
