GO ?= go

.PHONY: build test race bench vet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Capture the sim/counter core benchmarks into BENCH_simcore.json
# (committed, so future PRs can diff the perf trajectory).
bench:
	./scripts/bench.sh
