package sim

import (
	"slices"
	"testing"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/trace"
)

func witnessArrays(w *trace.WitnessSet) (rf, co []int32) {
	return append([]int32(nil), w.RF...), append([]int32(nil), w.Co...)
}

// TestWitnessDeterminism extends the determinism-equivalence suite to
// witness recording: with a fixed seed the emitted trace is
// byte-identical across runs, and identical between a fresh machine and
// a reused one that has run other workloads in between.
func TestWitnessDeterminism(t *testing.T) {
	tc, err := litmus.SuiteTest("mp")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Compile(tc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig().WithSeed(7)
	cfg.WitnessEvery = 3
	const n = 100

	fresh, err := NewRunner(ct).RunSynced(n, ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rfWant, coWant := witnessArrays(fresh.Witnesses)
	if fresh.Witnesses.Slots != (n+2)/3 {
		t.Fatalf("Slots = %d, want %d", fresh.Witnesses.Slots, (n+2)/3)
	}

	// A second fresh machine replays the same trace.
	fresh2, err := NewRunner(ct).RunSynced(n, ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rf2, co2 := witnessArrays(fresh2.Witnesses)
	if !slices.Equal(rfWant, rf2) || !slices.Equal(coWant, co2) {
		t.Fatal("witness trace differs between two fresh machines with equal seeds")
	}

	// A reused machine — after unrelated runs with different seeds,
	// sizes, modes and sampling — replays it too.
	r := NewRunner(ct)
	if _, err := r.RunSynced(17, ModeNone, DefaultConfig().WithSeed(99)); err != nil {
		t.Fatal(err)
	}
	other := DefaultConfig().WithSeed(3)
	other.WitnessEvery = 1
	if _, err := r.RunSynced(250, ModeTimebase, other); err != nil {
		t.Fatal(err)
	}
	reused, err := r.RunSynced(n, ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rf3, co3 := witnessArrays(reused.Witnesses)
	if !slices.Equal(rfWant, rf3) || !slices.Equal(coWant, co3) {
		t.Fatal("witness trace differs between fresh and reused machines")
	}
}

// TestWitnessRecordingDoesNotPerturbRun: recording must be a pure
// observer — same seed with recording on and off yields identical
// registers, memory and simulated time, across modes and relaxations.
func TestWitnessRecordingDoesNotPerturbRun(t *testing.T) {
	for _, name := range []string{"sb", "mp"} {
		tc, err := litmus.SuiteTest(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, preset := range []string{"default", "pso"} {
			cfg, err := Preset(preset)
			if err != nil {
				t.Fatal(err)
			}
			cfg = cfg.WithSeed(21)
			for _, mode := range []Mode{ModeUser, ModeNone} {
				off, err := RunSynced(tc, 200, mode, cfg)
				if err != nil {
					t.Fatal(err)
				}
				on := cfg
				on.WitnessEvery = 2
				got, err := RunSynced(tc, 200, mode, on)
				if err != nil {
					t.Fatal(err)
				}
				if got.Ticks != off.Ticks || !slices.Equal(got.Mem, off.Mem) {
					t.Fatalf("%s/%s/%s: memory or ticks perturbed by witness recording", name, preset, mode)
				}
				for ti := range off.Regs {
					if !slices.Equal(got.Regs[ti], off.Regs[ti]) {
						t.Fatalf("%s/%s/%s: registers of thread %d perturbed by witness recording", name, preset, mode, ti)
					}
				}
				if off.Witnesses != nil || got.Witnesses == nil {
					t.Fatalf("%s/%s/%s: Witnesses presence wrong (off=%v on=%v)", name, preset, mode, off.Witnesses, got.Witnesses)
				}
			}
		}
	}
}

// TestWitnessSamplingConsistent: because recording is a pure observer,
// a sampled run's slot s must equal a fully-recorded run's slot s·k.
func TestWitnessSamplingConsistent(t *testing.T) {
	tc, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig().WithSeed(5)
	full := cfg
	full.WitnessEvery = 1
	sampled := cfg
	sampled.WitnessEvery = 4
	rf, err := RunSynced(tc, 60, ModeUser, full)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := RunSynced(tc, 60, ModeUser, sampled)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < rs.Witnesses.Slots; s++ {
		fs := rs.Witnesses.Iter(s) // == slot index in the every-1 run
		if !slices.Equal(rs.Witnesses.RFAt(s), rf.Witnesses.RFAt(fs)) ||
			!slices.Equal(rs.Witnesses.CoAt(s), rf.Witnesses.CoAt(fs)) {
			t.Fatalf("sampled slot %d differs from full slot %d", s, fs)
		}
	}
}

// TestPerpetualRejectsWitnessRecording: witness recording is defined
// for synced runs only (perpetual iterations share memory cells, so
// per-iteration coherence orders are not separable).
func TestPerpetualRejectsWitnessRecording(t *testing.T) {
	tc, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	pt, err := core.Convert(tc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.WitnessEvery = 1
	if _, err := RunPerpetual(pt, 10, cfg); err == nil {
		t.Fatal("perpetual run accepted WitnessEvery > 0")
	}
}

// TestConfigWitnessEveryValidation: negative strides are rejected.
func TestConfigWitnessEveryValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WitnessEvery = -1
	if _, err := RunSynced(mustSuite(t, "sb"), 1, ModeUser, cfg); err == nil {
		t.Fatal("negative WitnessEvery accepted")
	}
}

func mustSuite(t *testing.T, name string) *litmus.Test {
	t.Helper()
	tc, err := litmus.SuiteTest(name)
	if err != nil {
		t.Fatal(err)
	}
	return tc
}
