package sim

import (
	"strings"
	"testing"

	"perple/internal/litmus"
)

func TestTracePerpetual(t *testing.T) {
	pt := mustPerp(t, "sb")
	cfg := DefaultConfig()
	cfg.TraceSize = 10000
	res, err := RunPerpetual(pt, 50, cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := res.Trace.Events()
	if len(events) == 0 {
		t.Fatal("no trace events")
	}
	var stores, drains, loads int
	for _, e := range events {
		switch e.Kind {
		case TraceStore:
			stores++
			if e.DrainAt < e.Time {
				t.Errorf("store drains before it is issued: %+v", e)
			}
			if e.Loc != "x" && e.Loc != "y" {
				t.Errorf("store to unexpected location %q", e.Loc)
			}
		case TraceDrain:
			drains++
		case TraceLoad:
			loads++
		}
	}
	// sb: 2 threads × 50 iterations, one store and one load each.
	if stores != 100 || loads != 100 {
		t.Errorf("stores=%d loads=%d, want 100 each", stores, loads)
	}
	// Every store eventually drains (settle at end of run).
	if drains != stores {
		t.Errorf("drains=%d, want %d", drains, stores)
	}
	out := res.Trace.String()
	for _, want := range []string{"store [x]", "load  [", "drain ["} {
		if !strings.Contains(out, want) {
			t.Errorf("trace rendering missing %q:\n%s", want, out[:min(len(out), 500)])
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	pt := mustPerp(t, "sb")
	res, err := RunPerpetual(pt, 10, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("trace should be nil when TraceSize is 0")
	}
	// The nil trace is safe to query.
	if res.Trace.Events() != nil || res.Trace.Dropped() != 0 {
		t.Error("nil trace should report nothing")
	}
}

func TestTraceRingWraps(t *testing.T) {
	pt := mustPerp(t, "sb")
	cfg := DefaultConfig()
	cfg.TraceSize = 16
	res, err := RunPerpetual(pt, 100, cfg)
	if err != nil {
		t.Fatal(err)
	}
	events := res.Trace.Events()
	if len(events) != 16 {
		t.Fatalf("ring holds %d events, want 16", len(events))
	}
	if res.Trace.Dropped() == 0 {
		t.Error("ring should have dropped events")
	}
	if !strings.Contains(res.Trace.String(), "earlier events dropped") {
		t.Error("rendering should mention dropped events")
	}
	// The kept tail must be the run's most recent events: the final
	// settle drains appear.
	last := events[len(events)-1]
	if last.Kind != TraceDrain {
		t.Errorf("last event is %v, want the settle drain", last.Kind)
	}
}

func TestTraceSynced(t *testing.T) {
	test, err := litmus.SuiteTest("amd5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.TraceSize = 4096
	res, err := RunSynced(test, 20, ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fences := 0
	for _, e := range res.Trace.Events() {
		if e.Kind == TraceFence {
			fences++
		}
	}
	// amd5 has one fence per thread per iteration.
	if fences != 40 {
		t.Errorf("fences=%d, want 40", fences)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
