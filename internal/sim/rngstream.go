package sim

import "math/rand"

// lfSource is an additive lagged-Fibonacci pseudo-random source
// producing exactly the value stream of math/rand's default source
// (rand.NewSource) for the same seed: x[n] = x[n−273] + x[n−607] over a
// 607-word feedback register, outputs masked to 63 bits by Int63. The
// simulator draws tens of millions of values per campaign through
// math/rand's Source interface, whose dynamic dispatch defeats inlining
// on the hottest leaf of the event loops; lfSource's concrete methods
// inline into machine.draw, removing every call from the draw path.
//
// Stream equality is by construction rather than by copying the
// stdlib's seeding tables: seed delegates to a stdlib source as an
// oracle. rngSource.Uint64 stores each returned sum back into the
// register slot it was produced from, so the oracle's first 607 outputs
// ARE its register contents afterwards; one backward pass then inverts
// the recurrence (vec[feed] -= vec[tap], cursors incrementing) 607
// times to recover the freshly seeded register. Two's-complement int64
// wraparound makes each backward step the exact inverse of a forward
// step. TestLFSourceMatchesRand locksteps the two sources;
// TestEngineGolden holds the end-to-end engine byte-identity.
type lfSource struct {
	vec       [lfLen]int64
	tap, feed int
	oracle    *rand.Rand // reusable seeding oracle; allocated on first seed
}

const (
	lfLen  = 607
	lfTap  = 273
	lfMask = 1<<63 - 1
)

// seed resets the register to the state of a freshly seeded
// rand.NewSource(seed). The oracle is kept across reseeds, so a reused
// machine's steady state allocates nothing here after the first run.
func (r *lfSource) seed(seed int64) {
	if r.oracle == nil {
		r.oracle = rand.New(rand.NewSource(seed))
	} else {
		r.oracle.Seed(seed)
	}
	// Pump lfLen outputs into the slots they are stored to: the cursor
	// walk mirrors rngSource.Uint64, so afterwards vec, tap and feed equal
	// the oracle's internal state exactly.
	r.tap, r.feed = 0, lfLen-lfTap
	for k := 0; k < lfLen; k++ {
		r.feed--
		if r.feed < 0 {
			r.feed += lfLen
		}
		r.vec[r.feed] = int64(r.oracle.Uint64())
	}
	r.tap, r.feed = 0, lfLen-lfTap
	// Rewind those lfLen steps to the just-seeded state. The cursors
	// currently equal the values the last forward step used (decrement
	// precedes use), so undo steps newest-first, incrementing after each.
	for k := 0; k < lfLen; k++ {
		r.vec[r.feed] -= r.vec[r.tap]
		r.tap++
		if r.tap >= lfLen {
			r.tap = 0
		}
		r.feed++
		if r.feed >= lfLen {
			r.feed = 0
		}
	}
}

// Uint64 is rngSource.Uint64: the next 64-bit feedback sum.
//
//perple:hotpath cover=sim-synced-user
func (r *lfSource) Uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += lfLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += lfLen
	}
	x := r.vec[r.feed] + r.vec[r.tap]
	r.vec[r.feed] = x
	return uint64(x)
}

// Int63 is rngSource.Int63: the next sum masked to 63 bits.
//
//perple:hotpath cover=sim-synced-user
func (r *lfSource) Int63() int64 {
	return int64(r.Uint64() & lfMask)
}

// Float64 replicates rand.(*Rand).Float64, including its
// resample-on-1.0 quirk, drawing from this stream.
//
//perple:hotpath cover=sim-synced-user
func (r *lfSource) Float64() float64 {
	for {
		f := float64(r.Int63()) / (1 << 63)
		if f != 1 {
			return f
		}
	}
}
