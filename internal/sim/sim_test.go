package sim

import (
	"strings"
	"testing"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/memmodel"
)

func mustSuiteTest(t *testing.T, name string) *litmus.Test {
	t.Helper()
	test, err := litmus.SuiteTest(name)
	if err != nil {
		t.Fatal(err)
	}
	return test
}

func mustPerp(t *testing.T, name string) *core.PerpetualTest {
	t.Helper()
	pt, err := core.Convert(mustSuiteTest(t, name))
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestModeStringsAndParse(t *testing.T) {
	for _, m := range Modes {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Errorf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Error("ParseMode accepted bogus mode")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig()
	bad.InstrCostMin = 0
	if _, err := RunSynced(mustSuiteTest(t, "sb"), 1, ModeUser, bad); err == nil {
		t.Error("invalid config accepted")
	}
	bad = DefaultConfig()
	bad.DrainMax = bad.DrainMin - 1
	if _, err := RunSynced(mustSuiteTest(t, "sb"), 1, ModeUser, bad); err == nil {
		t.Error("invalid drain range accepted")
	}
	bad = DefaultConfig()
	bad.PreemptProb = 2
	if _, err := RunSynced(mustSuiteTest(t, "sb"), 1, ModeUser, bad); err == nil {
		t.Error("invalid preemption probability accepted")
	}
}

func TestRunSyncedZeroIterations(t *testing.T) {
	res, err := RunSynced(mustSuiteTest(t, "sb"), 0, ModeUser, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 0 || res.Ticks != 0 {
		t.Errorf("zero-iteration run: N=%d ticks=%d", res.N, res.Ticks)
	}
	if _, err := RunSynced(mustSuiteTest(t, "sb"), -1, ModeUser, DefaultConfig()); err == nil {
		t.Error("negative iteration count accepted")
	}
}

func TestDeterminism(t *testing.T) {
	test := mustSuiteTest(t, "sb")
	cfg := DefaultConfig().WithSeed(77)
	a, err := RunSynced(test, 500, ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSynced(test, 500, ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ticks != b.Ticks {
		t.Errorf("ticks differ across identical runs: %d vs %d", a.Ticks, b.Ticks)
	}
	for ti := range a.Regs {
		for i := range a.Regs[ti] {
			if a.Regs[ti][i] != b.Regs[ti][i] {
				t.Fatalf("register history differs at thread %d index %d", ti, i)
			}
		}
	}
	c, err := RunSynced(test, 500, ModeUser, cfg.WithSeed(78))
	if err != nil {
		t.Fatal(err)
	}
	same := a.Ticks == c.Ticks
	for ti := range a.Regs {
		for i := range a.Regs[ti] {
			if a.Regs[ti][i] != c.Regs[ti][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestPerpetualDeterminism(t *testing.T) {
	pt := mustPerp(t, "sb")
	cfg := DefaultConfig().WithSeed(5)
	a, err := RunPerpetual(pt, 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunPerpetual(pt, 1000, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Ticks != b.Ticks {
		t.Errorf("perpetual ticks differ: %d vs %d", a.Ticks, b.Ticks)
	}
	for ti := range a.Bufs.Bufs {
		for i := range a.Bufs.Bufs[ti] {
			if a.Bufs.Bufs[ti][i] != b.Bufs.Bufs[ti][i] {
				t.Fatalf("buf differs at thread %d index %d", ti, i)
			}
		}
	}
}

// regKeySet projects model results onto register-file keys.
func regKeySet(rs []memmodel.AxiomaticResult) map[string]bool {
	set := map[string]bool{}
	for _, r := range rs {
		set[flattenRegs(r.Regs)] = true
	}
	return set
}

func flattenRegs(regs [][]int64) string {
	b := make([]byte, 0, 32)
	for _, rs := range regs {
		for _, v := range rs {
			b = append(b, byte('0'+v), ',')
		}
		b = append(b, '|')
	}
	return string(b)
}

// TestSyncedRunsAreTSOCompliant: every per-iteration outcome the
// simulated machine produces, in every synchronization mode, must be in
// the TSO-allowed set computed by the independent model checkers. This is
// the sim's soundness proof obligation: no false positives can ever come
// out of the substrate.
func TestSyncedRunsAreTSOCompliant(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 80
	}
	for _, e := range litmus.Suite() {
		e := e
		t.Run(e.Test.Name, func(t *testing.T) {
			allowed := regKeySet(memmodel.OperationalAllowedSet(e.Test, memmodel.TSO))
			for _, mode := range Modes {
				res, err := RunSynced(e.Test, iters, mode, DefaultConfig().WithSeed(int64(mode)+100))
				if err != nil {
					t.Fatal(err)
				}
				var scratch [][]int64
				for n := 0; n < iters; n++ {
					scratch = res.RegisterFile(n, scratch)
					if key := flattenRegs(scratch); !allowed[key] {
						t.Fatalf("mode %v iteration %d produced TSO-forbidden register file %q", mode, n, key)
					}
				}
			}
		})
	}
}

// TestSyncedMemoryIsTSOCompliant extends the check to final per-iteration
// memory for the final-state (non-convertible) tests.
func TestSyncedMemoryIsTSOCompliant(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for _, test := range litmus.NonConvertible() {
		test := test
		t.Run(test.Name, func(t *testing.T) {
			results := memmodel.OperationalAllowedSet(test, memmodel.TSO)
			type pair struct{ regs, mem string }
			allowed := map[pair]bool{}
			for _, r := range results {
				mem := make([]byte, 0, 16)
				for _, loc := range test.Locs() {
					mem = append(mem, byte('0'+r.Mem[loc]), ',')
				}
				allowed[pair{flattenRegs(r.Regs), string(mem)}] = true
			}
			res, err := RunSynced(test, iters, ModeTimebase, DefaultConfig().WithSeed(9))
			if err != nil {
				t.Fatal(err)
			}
			var scratch [][]int64
			for n := 0; n < iters; n++ {
				scratch = res.RegisterFile(n, scratch)
				mem := make([]byte, 0, 16)
				for li := range res.Locs {
					mem = append(mem, byte('0'+res.Mem[li*res.N+n]), ',')
				}
				p := pair{flattenRegs(scratch), string(mem)}
				if !allowed[p] {
					t.Fatalf("iteration %d produced TSO-forbidden state %+v", n, p)
				}
			}
		})
	}
}

// TestSyncedObservesSBTarget: the aligned modes must expose the classic
// store-buffering outcome within a reasonable number of iterations.
func TestSyncedObservesSBTarget(t *testing.T) {
	test := mustSuiteTest(t, "sb")
	res, err := RunSynced(test, 2000, ModeTimebase, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	var scratch [][]int64
	for n := 0; n < res.N; n++ {
		scratch = res.RegisterFile(n, scratch)
		if test.Target.Holds(scratch) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("timebase mode never observed the sb target in 2000 iterations")
	}
}

// TestPerpetualValuesDecode: every non-zero value loaded in a perpetual
// run must lie on one of its location's arithmetic sequences with an
// iteration index inside the run.
func TestPerpetualValuesDecode(t *testing.T) {
	for _, name := range []string{"sb", "amd3", "mp", "iriw", "podwr001"} {
		pt := mustPerp(t, name)
		const n = 2000
		res, err := RunPerpetual(pt, n, DefaultConfig().WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		for _, ti := range pt.LoadThreads {
			r := pt.Reads[ti]
			for i, v := range res.Bufs.Bufs[ti] {
				if v == 0 {
					continue
				}
				loc := pt.LoadLoc[ti][i%r]
				_, iter, ok := core.DecodeValue(pt, loc, v)
				if !ok {
					t.Fatalf("%s: thread %d slot %d holds undecodable value %d", name, ti, i, v)
				}
				if iter < 0 || iter >= n {
					t.Fatalf("%s: value %d decodes to out-of-run iteration %d", name, v, iter)
				}
			}
		}
	}
}

// TestPerpetualMonotoneReads: within one thread, successive reads of the
// same location must observe non-decreasing iterations (coherence — the
// global store order of a location is iteration order per storing
// thread).
func TestPerpetualMonotoneReads(t *testing.T) {
	pt := mustPerp(t, "sb")
	const n = 5000
	res, err := RunPerpetual(pt, n, DefaultConfig().WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, ti := range pt.LoadThreads {
		prev := int64(-1)
		for i, v := range res.Bufs.Bufs[ti] {
			var iter int64 = -1
			if v != 0 {
				_, it, ok := core.DecodeValue(pt, pt.LoadLoc[ti][i%pt.Reads[ti]], v)
				if !ok {
					t.Fatal("undecodable value")
				}
				iter = it
			}
			if iter < prev {
				t.Fatalf("thread %d read iteration %d after %d (coherence violation)", ti, iter, prev)
			}
			prev = iter
		}
	}
}

func TestRunPerpetualZeroAndNegative(t *testing.T) {
	pt := mustPerp(t, "sb")
	res, err := RunPerpetual(pt, 0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bufs.N != 0 {
		t.Error("zero-iteration perpetual run has data")
	}
	if _, err := RunPerpetual(pt, -2, DefaultConfig()); err == nil {
		t.Error("negative iteration count accepted")
	}
}

// TestTickOrdering: the relative runtimes of the modes must follow the
// calibrated cost model: pthread ≫ timebase > user ≈ userfence > none.
func TestTickOrdering(t *testing.T) {
	test := mustSuiteTest(t, "sb")
	ticks := map[Mode]int64{}
	for _, mode := range Modes {
		res, err := RunSynced(test, 2000, mode, DefaultConfig().WithSeed(4))
		if err != nil {
			t.Fatal(err)
		}
		ticks[mode] = res.Ticks
	}
	if !(ticks[ModePthread] > ticks[ModeTimebase] &&
		ticks[ModeTimebase] > ticks[ModeUser] &&
		ticks[ModeUser] > ticks[ModeNone]) {
		t.Errorf("tick ordering wrong: %v", ticks)
	}
	pt := mustPerp(t, "sb")
	pres, err := RunPerpetual(pt, 2000, DefaultConfig().WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if pres.Ticks >= ticks[ModeNone] {
		t.Errorf("perpetual execution (%d ticks) not faster than litmus7 none (%d ticks)", pres.Ticks, ticks[ModeNone])
	}
}

func TestMemAt(t *testing.T) {
	test := mustSuiteTest(t, "sb")
	res, err := RunSynced(test, 5, ModeUser, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < res.N; n++ {
		mem := res.MemAt(n)
		// After settle, every iteration's cells hold the stored 1s.
		if mem["x"] != 1 || mem["y"] != 1 {
			t.Errorf("iteration %d final memory = %v, want x=1 y=1", n, mem)
		}
	}
}

func TestTraceEventStrings(t *testing.T) {
	events := []TraceEvent{
		{Kind: TraceStore, Loc: "x", Value: 3, DrainAt: 9},
		{Kind: TraceDrain, Loc: "x", Value: 3},
		{Kind: TraceLoad, Loc: "y", Value: 0, Forwarded: true},
		{Kind: TraceFence},
		{Kind: TracePreempt, Value: 500},
	}
	wants := []string{"store [x] <- 3", "drain [x] = 3", "(fwd)", "mfence", "preempted for 500"}
	for i, e := range events {
		if s := e.String(); !strings.Contains(s, wants[i]) {
			t.Errorf("event %d renders %q, want %q inside", i, s, wants[i])
		}
	}
	for k := TraceStore; k <= TracePreempt; k++ {
		if k.String() == "" {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}
