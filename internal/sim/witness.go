package sim

import "perple/internal/trace"

// witnessRec records rf/co witnesses for sampled iterations of a synced
// run. It lives off the hot path: the machine's load and drain hooks are
// nil-guarded single branches when recording is off, and when on, the
// recorder touches only sampled iterations' memory cells (cells are
// per-iteration, so an unsampled iteration never aliases a sampled one).
//
// Store identity is resolved by value: store values are unique per
// location (a litmus validation invariant the trace layout depends on),
// so a drained or forwarded value names its store without widening the
// machine's store-buffer entries. Loads from shared memory instead
// resolve through writers, the per-cell last-drained store, which
// distinguishes the init value from a store that happens to equal it.
type witnessRec struct {
	layout  *trace.Layout
	set     *trace.WitnessSet
	writers []int32 // memory cell -> dense store index of last drain, -1 = init
	cells   int     // iterations per location (the run's N)
}

func newWitnessRec(layout *trace.Layout) *witnessRec {
	return &witnessRec{layout: layout, set: trace.NewWitnessSet(layout)}
}

// reset prepares the recorder for an n-iteration run over memLen memory
// cells, sampling every every-th iteration. Backing arrays are reused.
func (w *witnessRec) reset(n, every, memLen int) {
	w.set.Reset(n, every)
	w.cells = n
	if cap(w.writers) < memLen {
		w.writers = make([]int32, memLen)
	}
	w.writers = w.writers[:memLen]
	for i := range w.writers {
		w.writers[i] = -1
	}
}

// load records the rf source of dense load widx: the forwarded value's
// store when the load hit the thread's own buffer, else the cell's
// last-drained store.
func (w *witnessRec) load(widx int32, memIdx int, val int64, forwarded bool) {
	iter := memIdx % w.cells
	s := w.set.SlotOf(iter)
	if s < 0 {
		return
	}
	var src int32
	if forwarded {
		src = w.layout.StoreIdxFor(memIdx/w.cells, val)
	} else {
		src = w.writers[memIdx]
	}
	w.set.SetRF(s, widx, src)
}

// drain records a store reaching shared memory: the next entry of its
// iteration's global coherence order.
func (w *witnessRec) drain(memIdx int, val int64) {
	iter := memIdx % w.cells
	s := w.set.SlotOf(iter)
	if s < 0 {
		return
	}
	st := w.layout.StoreIdxFor(memIdx/w.cells, val)
	w.writers[memIdx] = st
	w.set.AppendCo(s, st)
}
