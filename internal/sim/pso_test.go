package sim

import (
	"testing"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/memmodel"
)

func psoConfig(seed int64) Config {
	cfg := DefaultConfig().WithSeed(seed)
	cfg.Relaxation = memmodel.PSO
	return cfg
}

func TestConfigRejectsSCRelaxation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Relaxation = memmodel.SC
	if _, err := RunSynced(mustSuiteTest(t, "sb"), 10, ModeUser, cfg); err == nil {
		t.Error("SC relaxation accepted; the machine has no SC mode")
	}
}

// TestPSORunsArePSOCompliant: every outcome the PSO machine produces must
// be PSO-allowed per the independent model checkers — the PSO analogue of
// the TSO soundness test.
func TestPSORunsArePSOCompliant(t *testing.T) {
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for _, e := range litmus.Suite() {
		e := e
		t.Run(e.Test.Name, func(t *testing.T) {
			allowed := regKeySet(memmodel.OperationalAllowedSet(e.Test, memmodel.PSO))
			for _, mode := range []Mode{ModeUser, ModeTimebase, ModeNone} {
				res, err := RunSynced(e.Test, iters, mode, psoConfig(int64(mode)+500))
				if err != nil {
					t.Fatal(err)
				}
				var scratch [][]int64
				for n := 0; n < iters; n++ {
					scratch = res.RegisterFile(n, scratch)
					if key := flattenRegs(scratch); !allowed[key] {
						t.Fatalf("mode %v iteration %d produced PSO-forbidden register file %q", mode, n, key)
					}
				}
			}
		})
	}
}

// TestPSOExposesMP: the PSO machine must actually reorder stores — the mp
// target (forbidden under TSO, allowed under PSO) must be observable.
func TestPSOExposesMP(t *testing.T) {
	test := mustSuiteTest(t, "mp")
	res, err := RunSynced(test, 3000, ModeTimebase, psoConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	var scratch [][]int64
	for n := 0; n < res.N; n++ {
		scratch = res.RegisterFile(n, scratch)
		if test.Target.Holds(scratch) {
			hits++
		}
	}
	if hits == 0 {
		t.Error("PSO machine never exposed the mp target in 3000 timebase iterations")
	}
	// The TSO machine must keep it at zero under identical conditions.
	tsoRes, err := RunSynced(test, 3000, ModeTimebase, DefaultConfig().WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < tsoRes.N; n++ {
		scratch = tsoRes.RegisterFile(n, scratch)
		if test.Target.Holds(scratch) {
			t.Fatal("TSO machine exposed the mp target")
		}
	}
}

// TestPSOFenceRestoresOrder: mp+fences must stay invisible even on PSO.
func TestPSOFenceRestoresOrder(t *testing.T) {
	test := mustSuiteTest(t, "mp+fences")
	res, err := RunSynced(test, 2000, ModeTimebase, psoConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	var scratch [][]int64
	for n := 0; n < res.N; n++ {
		scratch = res.RegisterFile(n, scratch)
		if test.Target.Holds(scratch) {
			t.Fatal("fenced message passing reordered on the PSO machine")
		}
	}
}

// TestPSOPerLocationCoherence: same-location store order survives PSO, so
// the decoded per-thread read iterations stay monotone per location.
func TestPSOPerLocationCoherence(t *testing.T) {
	pt := mustPerp(t, "sb")
	const n = 5000
	res, err := RunPerpetual(pt, n, psoConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	for _, ti := range pt.LoadThreads {
		prev := int64(-1)
		for i, v := range res.Bufs.Bufs[ti] {
			iter := int64(-1)
			if v != 0 {
				_, it, ok := core.DecodeValue(pt, pt.LoadLoc[ti][i%pt.Reads[ti]], v)
				if !ok {
					t.Fatal("undecodable value on PSO machine")
				}
				iter = it
			}
			if iter < prev {
				t.Fatalf("thread %d read iteration %d after %d under PSO", ti, iter, prev)
			}
			prev = iter
		}
	}
}
