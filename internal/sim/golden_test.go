package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/memmodel"
)

// updateGolden regenerates testdata/engine_golden.json from the current
// engine. The committed file was produced by the pre-bytecode
// struct-walk interpreter, so a passing TestEngineGolden proves the
// bytecode engine reproduces the struct engine's register files, final
// memory, tick counts, witness traces and perpetual buffers exactly,
// seed for seed.
var updateGolden = flag.Bool("sim.update-golden", false, "rewrite testdata/engine_golden.json from the current engine")

const goldenPath = "testdata/engine_golden.json"

// goldenKey names one run configuration deterministically.
func goldenKey(test string, shape string, mode Mode, model memmodel.Model, seed int64, n, witnessEvery int) string {
	k := fmt.Sprintf("%s/%s/%s/%s/seed=%d/n=%d", test, shape, mode, model, seed, n)
	if witnessEvery > 0 {
		k += fmt.Sprintf("/wit=%d", witnessEvery)
	}
	return k
}

// hashSynced canonically serializes everything a synced run produces.
func hashSynced(res *SyncedResult) string {
	h := sha256.New()
	fmt.Fprintf(h, "ticks=%d n=%d\n", res.Ticks, res.N)
	for t, regs := range res.Regs {
		fmt.Fprintf(h, "regs%d=%v\n", t, regs)
	}
	fmt.Fprintf(h, "mem=%v\n", res.Mem)
	if res.Witnesses != nil {
		fmt.Fprintf(h, "rf=%v\nco=%v\nslots=%d every=%d\n",
			res.Witnesses.RF, res.Witnesses.Co, res.Witnesses.Slots, res.Witnesses.Every)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// hashPerpetual canonically serializes a perpetual run.
func hashPerpetual(res *PerpetualResult) string {
	h := sha256.New()
	fmt.Fprintf(h, "ticks=%d n=%d\n", res.Ticks, res.Bufs.N)
	for t, b := range res.Bufs.Bufs {
		fmt.Fprintf(h, "buf%d=%v\n", t, b)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenRuns executes the fixture matrix and returns key -> hash.
func goldenRuns(t *testing.T) map[string]string {
	t.Helper()
	got := map[string]string{}
	const n = 300
	for _, name := range litmus.SuiteNames() {
		test, err := litmus.SuiteTest(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, model := range []memmodel.Model{memmodel.TSO, memmodel.PSO} {
			for _, mode := range []Mode{ModeUser, ModeTimebase, ModeNone} {
				for _, seed := range []int64{1, 7} {
					cfg := DefaultConfig().WithSeed(seed)
					cfg.Relaxation = model
					// One witness-recording variant per test exercises the
					// rf/co emission path without doubling the whole matrix.
					if mode == ModeUser && model == memmodel.TSO && seed == 1 {
						cfg.WitnessEvery = 4
					}
					res, err := RunSynced(test, n, mode, cfg)
					if err != nil {
						t.Fatalf("%s %s: %v", name, mode, err)
					}
					got[goldenKey(name, "synced", mode, model, seed, n, cfg.WitnessEvery)] = hashSynced(res)
				}
			}
		}
		pt, err := core.Convert(test)
		if err != nil {
			continue // not convertible; synced coverage above suffices
		}
		for _, seed := range []int64{1, 7} {
			cfg := DefaultConfig().WithSeed(seed)
			res, err := RunPerpetual(pt, n, cfg)
			if err != nil {
				t.Fatalf("%s perpetual: %v", name, err)
			}
			got[goldenKey(name, "perpetual", ModeNone, memmodel.TSO, seed, n, 0)] = hashPerpetual(res)
		}
	}
	return got
}

// TestEngineGolden holds the engine to the committed fixture hashes:
// any change to instruction dispatch, scheduling, RNG draw order or
// witness recording that alters observable run results fails here.
func TestEngineGolden(t *testing.T) {
	got := goldenRuns(t)
	if *updateGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		b.WriteString("{\n")
		for i, k := range keys {
			comma := ","
			if i == len(keys)-1 {
				comma = ""
			}
			fmt.Fprintf(&b, "  %q: %q%s\n", k, got[k], comma)
		}
		b.WriteString("}\n")
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden entries to %s", len(got), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden fixtures (regenerate with -sim.update-golden): %v", err)
	}
	want := map[string]string{}
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Errorf("fixture count mismatch: committed %d, produced %d", len(want), len(got))
	}
	for k, wh := range want {
		gh, ok := got[k]
		if !ok {
			t.Errorf("missing run for committed fixture %s", k)
			continue
		}
		if gh != wh {
			t.Errorf("engine output diverged for %s:\n  committed %s\n  got       %s", k, wh, gh)
		}
	}
}
