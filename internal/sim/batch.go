package sim

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"perple/internal/litmus"
)

// BatchShard is one worker's slice of a batched synced run.
type BatchShard struct {
	// Worker is the worker index, 0-based.
	Worker int
	// Seed is the worker's derived RNG seed (WorkerSeed of the run seed).
	Seed int64
	// Offset is the global index of the shard's first iteration.
	Offset int
	// N is the shard's iteration count.
	N int
	// Res is the shard's run result. It is owned by the shard's private
	// Runner, so it stays valid after the batch returns.
	Res *SyncedResult
}

// WorkerSeed derives worker w's deterministic RNG substream seed from a
// run seed: seed ⊕ w. Worker 0 keeps the caller's seed, so a one-worker
// batch reproduces the serial run bit for bit; distinct workers get
// distinct deterministic streams. XOR only perturbs the low bits for
// small worker ids, but math/rand's seeding scramble decorrelates
// neighbouring seeds, and the campaign layer's shard seeds are already
// FNV-spread, so substreams never collide within a run.
func WorkerSeed(seed int64, worker int) int64 { return seed ^ int64(worker) }

// RunSyncedBatchCtx splits an n-iteration synced run across a pool of
// per-worker machines: worker w runs iterations [n·w/k, n·(w+1)/k) on
// its own Runner seeded with WorkerSeed(cfg.Seed, w). Per-shard results
// are deterministic functions of (test, shard size, mode, cfg, worker),
// independent of scheduling; only which iterations land in which shard
// is a partitioning choice. workers ≤ 0 selects GOMAXPROCS; workers is
// clamped to n.
//
// A one-worker batch is bit-identical to RunSyncedCtx. A k-worker batch
// is equivalent to k independent serial runs with the derived seeds —
// the same model as campaign sharding, one level down.
func RunSyncedBatchCtx(ctx context.Context, t *litmus.Test, n int, mode Mode, cfg Config, workers int) ([]BatchShard, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ct, err := Compile(t)
	if err != nil {
		return nil, err
	}
	return ct.RunSyncedBatchCtx(ctx, n, mode, cfg, workers)
}

// RunSyncedBatchCtx is the batched run over an already-compiled test;
// the CompiledTest is shared read-only by every worker.
func (ct *CompiledTest) RunSyncedBatchCtx(ctx context.Context, n int, mode Mode, cfg Config, workers int) ([]BatchShard, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("sim: negative iteration count %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shards := make([]BatchShard, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		shards[w] = BatchShard{Worker: w, Seed: WorkerSeed(cfg.Seed, w), Offset: lo, N: hi - lo}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res, err := NewRunner(ct).RunSyncedCtx(ctx, shards[w].N, mode, cfg.WithSeed(shards[w].Seed))
			shards[w].Res, errs[w] = res, err
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: batch worker %d: %w", w, err)
		}
	}
	return shards, nil
}
