package sim

import (
	"context"
	"reflect"
	"testing"

	"perple/internal/litmus"
)

func sbTest(t *testing.T) *litmus.Test {
	t.Helper()
	test, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatalf("SuiteTest(sb): %v", err)
	}
	return test
}

// cloneSynced deep-copies a result so it survives runner reuse.
func cloneSynced(res *SyncedResult) *SyncedResult {
	out := *res
	out.Mem = append([]int64(nil), res.Mem...)
	out.Regs = make([][]int64, len(res.Regs))
	for i, r := range res.Regs {
		out.Regs[i] = append([]int64(nil), r...)
	}
	return &out
}

func TestRunnerReuseDeterministic(t *testing.T) {
	test := sbTest(t)
	ct, err := Compile(test)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(ct)
	cfg := DefaultConfig().WithSeed(42)
	first, err := r.RunSynced(500, ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := cloneSynced(first)
	// Interleave a differently-shaped run to dirty every reused array.
	if _, err := r.RunSynced(123, ModeNone, DefaultConfig().WithSeed(7)); err != nil {
		t.Fatal(err)
	}
	again, err := r.RunSynced(500, ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Regs, again.Regs) || !reflect.DeepEqual(snap.Mem, again.Mem) || snap.Ticks != again.Ticks {
		t.Fatal("rerun on a reused Runner differs from its first run")
	}
}

func TestRunnerMatchesPackageRun(t *testing.T) {
	test := sbTest(t)
	cfg := DefaultConfig().WithSeed(99)
	for _, mode := range []Mode{ModeUser, ModeUserFence, ModePthread, ModeTimebase, ModeNone} {
		fresh, err := RunSynced(test, 300, mode, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		ct, err := Compile(test)
		if err != nil {
			t.Fatal(err)
		}
		reused, err := NewRunner(ct).RunSynced(300, mode, cfg)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if !reflect.DeepEqual(fresh.Regs, reused.Regs) || fresh.Ticks != reused.Ticks {
			t.Fatalf("%v: Runner result differs from RunSynced", mode)
		}
	}
}

func TestRunnerSteadyStateAllocs(t *testing.T) {
	test := sbTest(t)
	ct, err := Compile(test)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(ct)
	cfg := DefaultConfig().WithSeed(3)
	// Warm up so every backing array reaches steady-state capacity.
	if _, err := r.RunSynced(200, ModeUser, cfg); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := r.RunSynced(200, ModeUser, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("steady-state Runner run allocates %.1f times, want ≤ 2", avg)
	}
}

func TestBatchWorker0MatchesSerial(t *testing.T) {
	test := sbTest(t)
	cfg := DefaultConfig().WithSeed(11)
	serial, err := RunSynced(test, 400, ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shards, err := RunSyncedBatchCtx(context.Background(), test, 400, ModeUser, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0].N != 400 || shards[0].Seed != cfg.Seed {
		t.Fatalf("unexpected shard layout: %+v", shards)
	}
	if !reflect.DeepEqual(serial.Regs, shards[0].Res.Regs) || serial.Ticks != shards[0].Res.Ticks {
		t.Fatal("one-worker batch differs from serial run")
	}
}

func TestBatchShardsMatchDerivedSerialRuns(t *testing.T) {
	test := sbTest(t)
	cfg := DefaultConfig().WithSeed(5)
	const n, workers = 301, 3
	shards, err := RunSyncedBatchCtx(context.Background(), test, n, ModeUser, cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != workers {
		t.Fatalf("got %d shards, want %d", len(shards), workers)
	}
	total := 0
	for _, sh := range shards {
		if sh.Seed != WorkerSeed(cfg.Seed, sh.Worker) {
			t.Fatalf("worker %d seed = %d, want %d", sh.Worker, sh.Seed, WorkerSeed(cfg.Seed, sh.Worker))
		}
		want, err := RunSynced(test, sh.N, ModeUser, cfg.WithSeed(sh.Seed))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Regs, sh.Res.Regs) || want.Ticks != sh.Res.Ticks {
			t.Fatalf("worker %d shard differs from the equivalent serial run", sh.Worker)
		}
		total += sh.N
	}
	if total != n {
		t.Fatalf("shards cover %d iterations, want %d", total, n)
	}
}

func TestBatchClampsWorkersToN(t *testing.T) {
	test := sbTest(t)
	shards, err := RunSyncedBatchCtx(context.Background(), test, 2, ModeUser, DefaultConfig(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shards for n=2, want 2", len(shards))
	}
}

func TestPerpetualRunnerReuseDeterministic(t *testing.T) {
	pt := mustPerp(t, "sb")
	cp, err := CompilePerpetual(pt)
	if err != nil {
		t.Fatal(err)
	}
	r := NewPerpetualRunner(cp)
	cfg := DefaultConfig().WithSeed(21)
	first, err := r.Run(300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(77, DefaultConfig().WithSeed(2)); err != nil {
		t.Fatal(err)
	}
	again, err := r.Run(300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Bufs, again.Bufs) || first.Ticks != again.Ticks {
		t.Fatal("rerun on a reused PerpetualRunner differs from its first run")
	}
	fresh, err := RunPerpetual(pt, 300, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Bufs, again.Bufs) || fresh.Ticks != again.Ticks {
		t.Fatal("PerpetualRunner differs from RunPerpetual")
	}
}
