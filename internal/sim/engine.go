package sim

import (
	"context"
	"fmt"
	"math/rand"

	"perple/internal/core"
	"perple/internal/litmus"
)

// bufEntry is a pending store awaiting drain to shared memory.
type bufEntry struct {
	memIdx  int
	val     int64
	drainAt int64
}

// locOf maps a memory-cell index back to its location for tracing.
func (m *machine) locOf(memIdx int) litmus.Loc {
	if m.cells <= 0 || len(m.locs) == 0 {
		return ""
	}
	return m.locs[memIdx/m.cells]
}

// simInstr is a pre-compiled instruction: locations resolved to indices,
// store sequences pre-computed.
type simInstr struct {
	kind   litmus.OpKind
	locIdx int
	val    int64 // constant store value (synced mode)
	k, a   int64 // arithmetic sequence (perpetual mode)
	reg    int   // destination register (synced mode)
	slot   int   // buf slot (perpetual mode)
	widx   int32 // dense load index for witness recording; -1 when not a synced load
}

// simThread is one core executing a test thread.
type simThread struct {
	id    int
	time  int64
	speed int64 // current iteration's cost multiplier, percent
	buf   storeBuf
	prog  []simInstr
	pc    int
	iter  int
}

// machine is the shared engine state. A machine (and its threads) is
// owned by one Runner/PerpetualRunner and reused across runs: reset
// reinitializes the mutable fields but keeps every backing array.
type machine struct {
	cfg     Config
	pso     bool
	rng     *rand.Rand
	mem     []int64
	threads []*simThread
	trace   *Trace
	wit     *witnessRec // rf/co witness recorder; nil when recording is off
	locs    []litmus.Loc
	cells   int // memory cells per location (N for synced runs, 1 for perpetual)

	// done is the run context's cancellation channel (nil when the run is
	// not cancellable); steps is the event counter that rate-limits the
	// cancellation poll to every cancelCheckMask+1 events.
	done  <-chan struct{}
	steps uint
}

// cancelCheckMask rate-limits cancellation polling: the event loops poll
// the context once every 1024 machine events, bounding both the poll cost
// on the hot path and the cancellation latency.
const cancelCheckMask = 1023

// cancelled polls the run context at most every cancelCheckMask+1 calls.
func (m *machine) cancelled() bool {
	if m.done == nil {
		return false
	}
	m.steps++
	if m.steps&cancelCheckMask != 0 {
		return false
	}
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

func (m *machine) cost(th *simThread) int64 {
	c := uniform(m.rng, m.cfg.InstrCostMin, m.cfg.InstrCostMax)
	c = c * th.speed / 100
	if c < 1 {
		c = 1
	}
	return c
}

// newIteration charges iteration bookkeeping, re-draws the thread's speed
// and applies a possible preemption stall.
func (m *machine) newIteration(th *simThread, overhead int64) {
	th.time += overhead
	j := m.cfg.SpeedJitterPct
	th.speed = 100 + uniform(m.rng, -j, j)
	if th.speed < 10 {
		th.speed = 10
	}
	if m.cfg.PreemptProb > 0 && m.rng.Float64() < m.cfg.PreemptProb {
		stall := uniform(m.rng, m.cfg.PreemptMin, m.cfg.PreemptMax)
		th.time += stall
		if m.trace != nil {
			m.trace.add(TraceEvent{Time: th.time, Thread: th.id, Kind: TracePreempt, Iter: th.iter, Value: stall})
		}
	}
}

// nextDrain returns the logical buffer index of the entry that drains
// next: index 0 under TSO's single FIFO; the minimum drainAt under PSO
// (store assigns per-location-monotone drain times, so the global minimum
// is always some location's head). PSO reads the buffer's cached minimum
// — applyDrains probes every thread on every load, so the common
// nothing-to-drain probe must not rescan the buffer. Returns -1 for an
// empty buffer.
func (m *machine) nextDrain(th *simThread) int {
	if th.buf.len() == 0 {
		return -1
	}
	if !m.pso {
		return 0
	}
	return th.buf.minDrainIdx()
}

// applyDrains moves every pending store with drainAt ≤ upTo into shared
// memory, in global drain order (ties broken by thread id).
func (m *machine) applyDrains(upTo int64) {
	for {
		best, bestIdx := -1, -1
		var bestAt int64
		for _, th := range m.threads {
			i := m.nextDrain(th)
			if i < 0 {
				continue
			}
			at := th.buf.at(i).drainAt
			if at <= upTo && (best < 0 || at < bestAt) {
				best, bestIdx, bestAt = th.id, i, at
			}
		}
		if best < 0 {
			return
		}
		th := m.threads[best]
		e := th.buf.removeAt(bestIdx)
		m.mem[e.memIdx] = e.val
		if m.wit != nil {
			m.wit.drain(e.memIdx, e.val)
		}
		if m.trace != nil {
			m.trace.add(TraceEvent{Time: e.drainAt, Thread: th.id, Kind: TraceDrain, Loc: m.locOf(e.memIdx), Value: e.val})
		}
	}
}

// settle drains every pending store regardless of time (end of run).
func (m *machine) settle() {
	const forever = int64(1) << 62
	m.applyDrains(forever)
}

// store enqueues a value with a monotone drain time — across the whole
// buffer under TSO's single FIFO, per location under PSO — then advances
// the thread clock.
func (m *machine) store(th *simThread, memIdx int, val int64) {
	drainAt := th.time + uniform(m.rng, m.cfg.DrainMin, m.cfg.DrainMax)
	if m.pso {
		for i := th.buf.len() - 1; i >= 0; i-- {
			if e := th.buf.at(i); e.memIdx == memIdx {
				if drainAt <= e.drainAt {
					drainAt = e.drainAt + 1
				}
				break
			}
		}
	} else if n := th.buf.len(); n > 0 {
		if last := th.buf.at(n - 1); drainAt <= last.drainAt {
			drainAt = last.drainAt + 1
		}
	}
	th.buf.push(bufEntry{memIdx: memIdx, val: val, drainAt: drainAt})
	if m.trace != nil {
		m.trace.add(TraceEvent{Time: th.time, Thread: th.id, Kind: TraceStore, Loc: m.locOf(memIdx),
			Value: val, Iter: th.iter, DrainAt: drainAt})
	}
	th.time += m.cost(th)
}

// load returns the value visible to the thread: its own newest buffered
// store to the cell (forwarding) or shared memory, then advances the
// clock. widx is the load's dense witness index (-1 outside synced
// witness recording).
func (m *machine) load(th *simThread, memIdx int, widx int32) int64 {
	m.applyDrains(th.time)
	v := int64(-1)
	forwarded := false
	for i := th.buf.len() - 1; i >= 0; i-- {
		if e := th.buf.at(i); e.memIdx == memIdx {
			v, forwarded = e.val, true
			break
		}
	}
	if !forwarded {
		v = m.mem[memIdx]
	}
	if m.wit != nil && widx >= 0 {
		m.wit.load(widx, memIdx, v, forwarded)
	}
	if m.trace != nil {
		m.trace.add(TraceEvent{Time: th.time, Thread: th.id, Kind: TraceLoad, Loc: m.locOf(memIdx),
			Value: v, Iter: th.iter, Forwarded: forwarded})
	}
	th.time += m.cost(th)
	return v
}

// fence blocks the thread until its store buffer has fully drained.
func (m *machine) fence(th *simThread) {
	for i, n := 0, th.buf.len(); i < n; i++ {
		if e := th.buf.at(i); e.drainAt > th.time {
			th.time = e.drainAt
		}
	}
	th.time += m.cfg.FenceCost
	if m.trace != nil {
		m.trace.add(TraceEvent{Time: th.time, Thread: th.id, Kind: TraceFence, Iter: th.iter})
	}
}

// minTimeThread picks the runnable thread with the smallest clock; a
// thread is runnable while runnable(th) is true. Returns nil when none.
func (m *machine) minTimeThread(runnable func(*simThread) bool) *simThread {
	var best *simThread
	for _, th := range m.threads {
		if !runnable(th) {
			continue
		}
		if best == nil || th.time < best.time || (th.time == best.time && th.id < best.id) {
			best = th
		}
	}
	return best
}

func (m *machine) maxTime() int64 {
	var max int64
	for _, th := range m.threads {
		if th.time > max {
			max = th.time
		}
	}
	return max
}

// ----- litmus7-style synchronized event loops -----

// runBarriered executes iteration-by-iteration with a barrier release
// before each.
func (m *machine) runBarriered(n int, p modeParams, res *SyncedResult) {
	for iter := 0; iter < n; iter++ {
		if m.cancelled() {
			return
		}
		// All threads arrive; the barrier charges its cost from the last
		// arrival and releases everyone with mode-specific spread.
		arrival := m.maxTime()
		costJitter := uniform(m.rng, -p.barrierTicks/10, p.barrierTicks/10)
		release := arrival + p.barrierTicks + costJitter
		for _, th := range m.threads {
			off := uniform(m.rng, 0, p.releaseSpread)
			if p.stagger > 0 {
				off += int64(th.id) * (p.stagger + uniform(m.rng, -p.stagger/4, p.stagger/4))
			}
			if p.flush {
				// userfence: propagate pending writes during the barrier.
				for i, bn := 0, th.buf.len(); i < bn; i++ {
					if e := th.buf.at(i); e.drainAt > release {
						release = e.drainAt
					}
				}
			}
			th.time = release + off
			th.pc = 0
			th.iter = iter
			m.newIteration(th, p.iterOverhead)
		}
		// Event loop over this iteration's bodies.
		for {
			th := m.minTimeThread(func(th *simThread) bool { return th.pc < len(th.prog) })
			if th == nil {
				break
			}
			m.step(th, res)
		}
	}
}

// runFree executes all iterations continuously with no barriers.
func (m *machine) runFree(n int, p modeParams, res *SyncedResult) {
	for _, th := range m.threads {
		th.time = uniform(m.rng, 0, m.cfg.LaunchSpread)
		m.newIteration(th, p.iterOverhead)
	}
	for {
		if m.cancelled() {
			return
		}
		th := m.minTimeThread(func(th *simThread) bool { return th.iter < n })
		if th == nil {
			break
		}
		m.step(th, res)
		if th.pc >= len(th.prog) {
			th.pc = 0
			th.iter++
			if th.iter < n {
				m.newIteration(th, p.iterOverhead)
			}
		}
	}
}

// step executes one instruction of a synced-mode thread.
func (m *machine) step(th *simThread, res *SyncedResult) {
	in := th.prog[th.pc]
	base := in.locIdx*res.N + th.iter
	switch in.kind {
	case litmus.OpStore:
		m.store(th, base, in.val)
	case litmus.OpLoad:
		v := m.load(th, base, in.widx)
		res.Regs[th.id][th.iter*res.RegCounts[th.id]+in.reg] = v
	case litmus.OpFence:
		m.fence(th)
	}
	th.pc++
}

// ----- PerpLE-style perpetual event loop -----

// runPerpetual executes n synchronization-free iterations, recording
// every load into the buf arrays. reads[t] is the per-iteration load
// count of thread t (the buf stride).
func (m *machine) runPerpetual(ctx context.Context, n int, bufs *core.BufSet, reads []int) error {
	for {
		if m.cancelled() {
			return fmt.Errorf("sim: perpetual run aborted: %w", ctx.Err())
		}
		th := m.minTimeThread(func(th *simThread) bool { return th.iter < n })
		if th == nil {
			return nil
		}
		in := th.prog[th.pc]
		switch in.kind {
		case litmus.OpStore:
			m.store(th, in.locIdx, in.k*int64(th.iter)+in.a)
		case litmus.OpLoad:
			v := m.load(th, in.locIdx, -1)
			bufs.Bufs[th.id][reads[th.id]*th.iter+in.slot] = v
		case litmus.OpFence:
			m.fence(th)
		}
		th.pc++
		if th.pc >= len(th.prog) {
			th.pc = 0
			th.iter++
			if th.iter < n {
				m.newIteration(th, m.cfg.PerpIterOverhead)
			}
		}
	}
}
