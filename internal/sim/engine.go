package sim

import (
	"context"
	"fmt"
	"math/bits"

	"perple/internal/core"
	"perple/internal/litmus"
)

// bufEntry is a pending store awaiting drain to shared memory.
type bufEntry struct {
	memIdx  int
	val     int64
	drainAt int64
}

// locOf maps a memory-cell index back to its location for tracing.
func (m *machine) locOf(memIdx int) litmus.Loc {
	if m.cells <= 0 || len(m.locs) == 0 {
		return ""
	}
	return m.locs[memIdx/m.cells]
}

// simThread is one core executing a test thread. The program is flat
// bytecode (see bytecode.go): code words with parallel wide operands.
type simThread struct {
	id    int
	time  int64
	speed int64 // current iteration's cost multiplier, percent
	buf   storeBuf
	prog  bytecodeProg
	pc    int
	iter  int
}

// machine is the shared engine state. A machine (and its threads) is
// owned by one Runner/PerpetualRunner and reused across runs: reset
// reinitializes the mutable fields but keeps every backing array.
type machine struct {
	cfg     Config
	pso     bool
	rng     lfSource
	mem     []int64
	threads []*simThread
	trace   *Trace
	wit     *witnessRec // rf/co witness recorder; nil when recording is off
	locs    []litmus.Loc
	cells   int // memory cells per location (N for synced runs, 1 for perpetual)

	// done is the run context's cancellation channel (nil when the run is
	// not cancellable); steps is the event counter that rate-limits the
	// cancellation poll to every cancelCheckMask+1 events.
	done  <-chan struct{}
	steps uint

	// nextDrainAt is a conservative lower bound on the earliest pending
	// store-buffer drain time (drainNever when empty); see applyDrains.
	nextDrainAt int64

	// Precomputed draw spans, one per config-derived range the event
	// loops draw from. rand.Int63n recomputes two hardware divisions on
	// every call (the rejection threshold and v % n); each span's ranges
	// are fixed for a whole run, so initSpans hoists that work out of the
	// hot loops entirely. See drawSpan.
	costSpan    drawSpan // [InstrCostMin, InstrCostMax]
	jitterSpan  drawSpan // [-SpeedJitterPct, +SpeedJitterPct]
	preemptSpan drawSpan // [PreemptMin, PreemptMax]
	drainSpan   drawSpan // [DrainMin, DrainMax]
	launchSpan  drawSpan // [0, LaunchSpread]
}

// drawSpan is the precomputed rand.Int63n state for one inclusive draw
// range [lo, lo+n-1]: the rejection threshold max, and magic/shift such
// that for every v in [0, 2^63), v/n == (v*magic) >> 64 >> shift
// exactly. With L = ceil(log2 n) and magic = floor(2^(63+L)/n)+1, the
// round-up error e = magic·n − 2^(63+L) satisfies 0 < e ≤ n < 2^L, so
// the error term e·v/2^(63+L) < 1 never carries the quotient past the
// true floor. pow2 spans use Int63n's mask path instead.
type drawSpan struct {
	lo, n, max int64
	magic      uint64
	shift      uint
	pow2       bool
}

// makeDrawSpan precomputes the span for draws from [lo, hi] inclusive.
// For non-power-of-two n the 128-bit numerator 2^(63+L) is
// hi:lo = 2^(L-1):0; bits.Div64's preconditions hold because
// 2^(L-1) < n, and magic = quotient+1 cannot wrap because n > 2^(L-1)
// bounds the quotient by 2^64 − 2.
func makeDrawSpan(lo, hi int64) drawSpan {
	if hi <= lo {
		return drawSpan{lo: lo, n: 1}
	}
	s := drawSpan{lo: lo, n: hi - lo + 1}
	if s.n&(s.n-1) == 0 {
		s.pow2 = true
		return s
	}
	n := uint64(s.n)
	l := uint(bits.Len64(n - 1)) // ceil(log2 n); 2 ≤ l ≤ 63 here
	q, _ := bits.Div64(1<<(l-1), 0, n)
	s.magic, s.shift = q+1, l-1
	s.max = int64((1 << 63) - 1 - (1<<63)%n)
	return s
}

// initSpans precomputes the config-derived draw spans; call after
// setting m.cfg and before running.
func (m *machine) initSpans() {
	m.costSpan = makeDrawSpan(m.cfg.InstrCostMin, m.cfg.InstrCostMax)
	m.jitterSpan = makeDrawSpan(-m.cfg.SpeedJitterPct, m.cfg.SpeedJitterPct)
	m.preemptSpan = makeDrawSpan(m.cfg.PreemptMin, m.cfg.PreemptMax)
	m.drainSpan = makeDrawSpan(m.cfg.DrainMin, m.cfg.DrainMax)
	m.launchSpan = makeDrawSpan(0, m.cfg.LaunchSpread)
}

// draw replicates the package-level uniform over a precomputed span,
// consuming RNG draws exactly as rand.Int63n does (byte-identical
// streams, held by TestEngineGolden and TestMachineDrawMatchesRand)
// while paying no per-call division.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) draw(s *drawSpan) int64 {
	if s.n <= 1 {
		return s.lo
	}
	v := m.rng.Int63()
	if s.pow2 {
		return s.lo + v&(s.n-1)
	}
	if v > s.max {
		v = m.redraw(s)
	}
	return s.lo + spanMod(s, v)
}

// redraw is draw's outlined rejection loop, taken with probability
// below 2^-50 for the spans real configs produce; keeping the loop out
// of draw keeps draw's body small on the hot path.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) redraw(s *drawSpan) int64 {
	v := m.rng.Int63()
	for v > s.max {
		v = m.rng.Int63()
	}
	return v
}

// spanMod returns v % s.n for v in [0, 2^63) via the cached magic pair.
//
//perple:hotpath cover=sim-synced-user
func spanMod(s *drawSpan, v int64) int64 {
	q, _ := bits.Mul64(uint64(v), s.magic)
	return v - int64(q>>s.shift)*s.n
}

// cancelCheckMask rate-limits cancellation polling: the event loops poll
// the context once every 1024 machine events, bounding both the poll cost
// on the hot path and the cancellation latency.
const cancelCheckMask = 1023

// cancelled polls the run context at most every cancelCheckMask+1 calls.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) cancelled() bool {
	if m.done == nil {
		return false
	}
	m.steps++
	if m.steps&cancelCheckMask != 0 {
		return false
	}
	select {
	case <-m.done:
		return true
	default:
		return false
	}
}

//perple:hotpath cover=sim-synced-user
func (m *machine) cost(th *simThread) int64 {
	c := m.draw(&m.costSpan)
	// Draw and speed are non-negative (validate enforces the cost range,
	// newIteration clamps speed), so scale unsigned: unsigned division by
	// a constant compiles to a plain multiply-shift without the signed
	// fixups.
	c = int64(uint64(c) * uint64(th.speed) / 100)
	if c < 1 {
		c = 1
	}
	return c
}

// newIteration charges iteration bookkeeping, re-draws the thread's speed
// and applies a possible preemption stall.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) newIteration(th *simThread, overhead int64) {
	th.time += overhead
	th.speed = 100 + m.draw(&m.jitterSpan)
	if th.speed < 10 {
		th.speed = 10
	}
	if m.cfg.PreemptProb > 0 && m.rng.Float64() < m.cfg.PreemptProb {
		stall := m.draw(&m.preemptSpan)
		th.time += stall
		if m.trace != nil {
			m.trace.add(TraceEvent{Time: th.time, Thread: th.id, Kind: TracePreempt, Iter: th.iter, Value: stall})
		}
	}
}

// nextDrain returns the logical buffer index of the entry that drains
// next: index 0 under TSO's single FIFO; the minimum drainAt under PSO
// (store assigns per-location-monotone drain times, so the global minimum
// is always some location's head). PSO reads the buffer's cached minimum
// — applyDrains probes every thread on every load, so the common
// nothing-to-drain probe must not rescan the buffer. Returns -1 for an
// empty buffer.
//
//perple:hotpath cover=sim-synced-pso
func (m *machine) nextDrain(th *simThread) int {
	if th.buf.len() == 0 {
		return -1
	}
	if !m.pso {
		return 0
	}
	return th.buf.minDrainIdx()
}

// drainNever is the nextDrainAt sentinel meaning "no store buffered":
// far enough in the future that no event-loop clock reaches it, yet not
// so large that settle's forever horizon fails to cross it.
const drainNever = int64(1) << 61

// applyDrains moves every pending store with drainAt ≤ upTo into shared
// memory, in global drain order (ties broken by thread id).
//
// m.nextDrainAt is a conservative lower bound on the earliest pending
// drain time — store lowers it on every push, and the full scan below
// restores it to the exact minimum head whenever it runs — so the
// common nothing-to-drain probe (every load pays one) is a single
// compare instead of a scan of all thread buffers.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) applyDrains(upTo int64) {
	if upTo < m.nextDrainAt {
		return
	}
	for {
		best, bestIdx := -1, -1
		var bestAt int64
		minAt := drainNever
		for _, th := range m.threads {
			i := m.nextDrain(th)
			if i < 0 {
				continue
			}
			at := th.buf.at(i).drainAt
			if at < minAt {
				minAt = at
			}
			if at <= upTo && (best < 0 || at < bestAt) {
				best, bestIdx, bestAt = th.id, i, at
			}
		}
		if best < 0 {
			m.nextDrainAt = minAt
			return
		}
		th := m.threads[best]
		e := th.buf.removeAt(bestIdx)
		m.mem[e.memIdx] = e.val
		if m.wit != nil {
			m.wit.drain(e.memIdx, e.val)
		}
		if m.trace != nil {
			m.trace.add(TraceEvent{Time: e.drainAt, Thread: th.id, Kind: TraceDrain, Loc: m.locOf(e.memIdx), Value: e.val})
		}
	}
}

// settle drains every pending store regardless of time (end of run).
//
//perple:hotpath cover=sim-synced-user
func (m *machine) settle() {
	const forever = int64(1) << 62
	m.applyDrains(forever)
}

// store enqueues a value with a monotone drain time — across the whole
// buffer under TSO's single FIFO, per location under PSO — then advances
// the thread clock.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) store(th *simThread, memIdx int, val int64) {
	drainAt := th.time + m.draw(&m.drainSpan)
	if m.pso {
		for i := th.buf.len() - 1; i >= 0; i-- {
			if e := th.buf.at(i); e.memIdx == memIdx {
				if drainAt <= e.drainAt {
					drainAt = e.drainAt + 1
				}
				break
			}
		}
	} else if n := th.buf.len(); n > 0 {
		if last := th.buf.at(n - 1); drainAt <= last.drainAt {
			drainAt = last.drainAt + 1
		}
	}
	th.buf.push(bufEntry{memIdx: memIdx, val: val, drainAt: drainAt})
	if drainAt < m.nextDrainAt {
		m.nextDrainAt = drainAt
	}
	if m.trace != nil {
		m.trace.add(TraceEvent{Time: th.time, Thread: th.id, Kind: TraceStore, Loc: m.locOf(memIdx),
			Value: val, Iter: th.iter, DrainAt: drainAt})
	}
	th.time += m.cost(th)
}

// load returns the value visible to the thread: its own newest buffered
// store to the cell (forwarding) or shared memory, then advances the
// clock. widx is the load's dense witness index (-1 outside synced
// witness recording).
//
//perple:hotpath cover=sim-synced-user
func (m *machine) load(th *simThread, memIdx int, widx int32) int64 {
	m.applyDrains(th.time)
	v := int64(-1)
	forwarded := false
	for i := th.buf.len() - 1; i >= 0; i-- {
		if e := th.buf.at(i); e.memIdx == memIdx {
			v, forwarded = e.val, true
			break
		}
	}
	if !forwarded {
		v = m.mem[memIdx]
	}
	if m.wit != nil && widx >= 0 {
		m.wit.load(widx, memIdx, v, forwarded)
	}
	if m.trace != nil {
		m.trace.add(TraceEvent{Time: th.time, Thread: th.id, Kind: TraceLoad, Loc: m.locOf(memIdx),
			Value: v, Iter: th.iter, Forwarded: forwarded})
	}
	th.time += m.cost(th)
	return v
}

// fence blocks the thread until its store buffer has fully drained.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) fence(th *simThread) {
	for i, n := 0, th.buf.len(); i < n; i++ {
		if e := th.buf.at(i); e.drainAt > th.time {
			th.time = e.drainAt
		}
	}
	th.time += m.cfg.FenceCost
	if m.trace != nil {
		m.trace.add(TraceEvent{Time: th.time, Thread: th.id, Kind: TraceFence, Iter: th.iter})
	}
}

// minThreadInBody picks the smallest-clock thread still inside its
// iteration body (pc not past the program end); nil when every thread
// has finished its body. Specialized from the old closure-driven
// minTimeThread so the per-event scheduling probe is a direct inlinable
// comparison.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) minThreadInBody() *simThread {
	var best *simThread
	for _, th := range m.threads {
		if th.pc >= len(th.prog.code) {
			continue
		}
		if best == nil || th.time < best.time || (th.time == best.time && th.id < best.id) {
			best = th
		}
	}
	return best
}

// minThreadBelowIter picks the smallest-clock thread with iterations
// left to run; nil when every thread has completed n iterations.
//
//perple:hotpath cover=sim-synced-free
func (m *machine) minThreadBelowIter(n int) *simThread {
	var best *simThread
	for _, th := range m.threads {
		if th.iter >= n {
			continue
		}
		if best == nil || th.time < best.time || (th.time == best.time && th.id < best.id) {
			best = th
		}
	}
	return best
}

//perple:hotpath cover=sim-synced-user
func (m *machine) maxTime() int64 {
	var max int64
	for _, th := range m.threads {
		if th.time > max {
			max = th.time
		}
	}
	return max
}

// ----- litmus7-style synchronized event loops -----

// runBarriered executes iteration-by-iteration with a barrier release
// before each.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) runBarriered(n int, p modeParams, res *SyncedResult) {
	// Mode-derived draw spans, fixed for the whole run.
	costJitterSpan := makeDrawSpan(-p.barrierTicks/10, p.barrierTicks/10)
	releaseSpan := makeDrawSpan(0, p.releaseSpread)
	staggerSpan := makeDrawSpan(-p.stagger/4, p.stagger/4)
	for iter := 0; iter < n; iter++ {
		if m.cancelled() {
			return
		}
		// All threads arrive; the barrier charges its cost from the last
		// arrival and releases everyone with mode-specific spread.
		arrival := m.maxTime()
		costJitter := m.draw(&costJitterSpan)
		release := arrival + p.barrierTicks + costJitter
		for _, th := range m.threads {
			off := m.draw(&releaseSpan)
			if p.stagger > 0 {
				off += int64(th.id) * (p.stagger + m.draw(&staggerSpan))
			}
			if p.flush {
				// userfence: propagate pending writes during the barrier.
				for i, bn := 0, th.buf.len(); i < bn; i++ {
					if e := th.buf.at(i); e.drainAt > release {
						release = e.drainAt
					}
				}
			}
			th.time = release + off
			th.pc = 0
			th.iter = iter
			m.newIteration(th, p.iterOverhead)
		}
		// Event loop over this iteration's bodies.
		for {
			th := m.minThreadInBody()
			if th == nil {
				break
			}
			m.step(th, res)
		}
	}
}

// runFree executes all iterations continuously with no barriers.
//
//perple:hotpath cover=sim-synced-free
func (m *machine) runFree(n int, p modeParams, res *SyncedResult) {
	for _, th := range m.threads {
		th.time = m.draw(&m.launchSpan)
		m.newIteration(th, p.iterOverhead)
	}
	for {
		if m.cancelled() {
			return
		}
		th := m.minThreadBelowIter(n)
		if th == nil {
			break
		}
		m.step(th, res)
		if th.pc >= len(th.prog.code) {
			th.pc = 0
			th.iter++
			if th.iter < n {
				m.newIteration(th, p.iterOverhead)
			}
		}
	}
}

// step executes one bytecode instruction of a synced-mode thread.
//
//perple:hotpath cover=sim-synced-user
func (m *machine) step(th *simThread, res *SyncedResult) {
	w := th.prog.code[th.pc]
	switch w & bcOpMask {
	case bcStore:
		m.store(th, bcLoc(w)*res.N+th.iter, th.prog.v1[th.pc])
	case bcLoad:
		v := m.load(th, bcLoc(w)*res.N+th.iter, bcWidx(w))
		res.Regs[th.id][th.iter*res.RegCounts[th.id]+bcReg(w)] = v
	default:
		m.fence(th)
	}
	th.pc++
}

// ----- PerpLE-style perpetual event loop -----

// runPerpetual executes n synchronization-free iterations, recording
// every load into the buf arrays. reads[t] is the per-iteration load
// count of thread t (the buf stride).
func (m *machine) runPerpetual(ctx context.Context, n int, bufs *core.BufSet, reads []int) error {
	for {
		if m.cancelled() {
			return fmt.Errorf("sim: perpetual run aborted: %w", ctx.Err())
		}
		th := m.minThreadBelowIter(n)
		if th == nil {
			return nil
		}
		w := th.prog.code[th.pc]
		switch w & bcOpMask {
		case bcStore:
			m.store(th, bcLoc(w), th.prog.v1[th.pc]*int64(th.iter)+th.prog.v2[th.pc])
		case bcLoad:
			v := m.load(th, bcLoc(w), -1)
			bufs.Bufs[th.id][reads[th.id]*th.iter+bcReg(w)] = v
		default:
			m.fence(th)
		}
		th.pc++
		if th.pc >= len(th.prog.code) {
			th.pc = 0
			th.iter++
			if th.iter < n {
				m.newIteration(th, m.cfg.PerpIterOverhead)
			}
		}
	}
}
