package sim

import (
	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/trace"
)

// CompiledTest is a litmus test lowered for the synced-mode machine:
// locations resolved to dense indices, per-thread instruction programs
// pre-built, register counts extracted. Compilation hoists the per-run
// map builds of the original RunSynced out of the hot path; a compiled
// test is immutable and may be shared by any number of Runners (and
// goroutines) concurrently.
type CompiledTest struct {
	test      *litmus.Test
	locs      []litmus.Loc
	locIdx    map[litmus.Loc]int
	progs     []bytecodeProg
	regCounts []int
	layout    *trace.Layout
}

// Compile validates and lowers a litmus test to bytecode for the
// synced-mode machine (see bytecode.go for the instruction format).
func Compile(t *litmus.Test) (*CompiledTest, error) {
	// The witness layout validates the test and fixes the dense load
	// numbering the compiled programs share (loads in (thread,
	// instruction) order), so witness recording needs no per-run setup.
	layout, err := trace.NewLayout(t)
	if err != nil {
		return nil, err
	}
	locs := t.Locs()
	ct := &CompiledTest{
		test:      t,
		locs:      locs,
		locIdx:    make(map[litmus.Loc]int, len(locs)),
		progs:     make([]bytecodeProg, len(t.Threads)),
		regCounts: t.Regs(),
		layout:    layout,
	}
	for i, l := range locs {
		ct.locIdx[l] = i
	}
	nextLoad := int32(0)
	for ti := range t.Threads {
		instrs := t.Threads[ti].Instrs
		prog := bytecodeProg{
			code: make([]uint64, 0, len(instrs)),
			v1:   make([]int64, 0, len(instrs)),
		}
		for _, in := range instrs {
			locIdx, reg, widx := 0, 0, int32(-1)
			if in.Kind != litmus.OpFence {
				locIdx = ct.locIdx[in.Loc]
			}
			if in.Kind == litmus.OpLoad {
				reg = in.Reg
				widx = nextLoad
				nextLoad++
			}
			w, err := packInstr(in.Kind, locIdx, reg, widx)
			if err != nil {
				return nil, err
			}
			prog.code = append(prog.code, w)
			prog.v1 = append(prog.v1, in.Value)
		}
		ct.progs[ti] = prog
	}
	return ct, nil
}

// Test returns the source litmus test.
func (ct *CompiledTest) Test() *litmus.Test { return ct.test }

// Locs returns the shared locations in index order. Callers must not
// modify the returned slice.
func (ct *CompiledTest) Locs() []litmus.Loc { return ct.locs }

// LocIdx resolves a location to its dense index.
func (ct *CompiledTest) LocIdx(l litmus.Loc) (int, bool) {
	i, ok := ct.locIdx[l]
	return i, ok
}

// RegCounts returns the per-thread register counts. Callers must not
// modify the returned slice.
func (ct *CompiledTest) RegCounts() []int { return ct.regCounts }

// WitnessLayout returns the compiled witness layout (shared, immutable);
// witnesses on a SyncedResult are expressed against it.
func (ct *CompiledTest) WitnessLayout() *trace.Layout { return ct.layout }

// CompiledPerpetual is a perpetual test lowered for the machine: store
// instructions resolved to their arithmetic sequences, loads to their
// buf slots. Immutable and shareable like CompiledTest.
type CompiledPerpetual struct {
	pt    *core.PerpetualTest
	locs  []litmus.Loc
	progs []bytecodeProg
}

// CompilePerpetual lowers a perpetual test to bytecode for the machine:
// store sequences become (k, a) operand pairs, loads carry their buf
// slot in the register field.
func CompilePerpetual(pt *core.PerpetualTest) (*CompiledPerpetual, error) {
	t := pt.Orig
	locs := t.Locs()
	locIdx := make(map[litmus.Loc]int, len(locs))
	for i, l := range locs {
		locIdx[l] = i
	}
	cp := &CompiledPerpetual{pt: pt, locs: locs, progs: make([]bytecodeProg, len(t.Threads))}
	for ti := range t.Threads {
		instrs := t.Threads[ti].Instrs
		prog := bytecodeProg{
			code: make([]uint64, 0, len(instrs)),
			v1:   make([]int64, 0, len(instrs)),
			v2:   make([]int64, 0, len(instrs)),
		}
		slot := 0
		for _, in := range instrs {
			locI, regOrSlot := 0, 0
			var k, a int64
			switch in.Kind {
			case litmus.OpStore:
				s := pt.StoreForValue(in.Loc, in.Value)
				locI = locIdx[in.Loc]
				k, a = s.K, s.A
			case litmus.OpLoad:
				locI = locIdx[in.Loc]
				regOrSlot = slot
				slot++
			}
			w, err := packInstr(in.Kind, locI, regOrSlot, -1)
			if err != nil {
				return nil, err
			}
			prog.code = append(prog.code, w)
			prog.v1 = append(prog.v1, k)
			prog.v2 = append(prog.v2, a)
		}
		cp.progs[ti] = prog
	}
	return cp, nil
}

// Test returns the source perpetual test.
func (cp *CompiledPerpetual) Test() *core.PerpetualTest { return cp.pt }
