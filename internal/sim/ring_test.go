package sim

import (
	"math/rand"
	"testing"
)

func bufEntries(b *storeBuf) []bufEntry {
	out := make([]bufEntry, 0, b.len())
	for i := 0; i < b.len(); i++ {
		out = append(out, *b.at(i))
	}
	return out
}

func TestStoreBufFIFOOrder(t *testing.T) {
	var b storeBuf
	for i := 0; i < 100; i++ {
		b.push(bufEntry{memIdx: i, val: int64(i), drainAt: int64(i)})
	}
	if b.len() != 100 {
		t.Fatalf("len = %d, want 100", b.len())
	}
	for i := 0; i < 100; i++ {
		e := b.removeAt(0)
		if e.memIdx != i {
			t.Fatalf("removeAt(0) #%d returned memIdx %d", i, e.memIdx)
		}
	}
	if b.len() != 0 {
		t.Fatalf("len = %d after draining, want 0", b.len())
	}
}

func TestStoreBufWraparound(t *testing.T) {
	// Interleave pushes and front-removals so the live window crosses the
	// physical end of the storage many times.
	var b storeBuf
	next, expect := 0, 0
	for round := 0; round < 500; round++ {
		for i := 0; i < 3; i++ {
			b.push(bufEntry{memIdx: next})
			next++
		}
		for i := 0; i < 2; i++ {
			if e := b.removeAt(0); e.memIdx != expect {
				t.Fatalf("round %d: removed %d, want %d", round, e.memIdx, expect)
			}
			expect++
		}
	}
	// Drain the backlog, still in FIFO order.
	for b.len() > 0 {
		if e := b.removeAt(0); e.memIdx != expect {
			t.Fatalf("drain: removed %d, want %d", e.memIdx, expect)
		}
		expect++
	}
	if expect != next {
		t.Fatalf("drained %d entries, pushed %d", expect, next)
	}
}

func TestStoreBufInteriorRemovePreservesOrder(t *testing.T) {
	// Remove from random interior positions (the PSO min-drainAt case) and
	// check the survivors keep their relative order, across enough rounds
	// to exercise both shorter-side shifts and wrapped windows.
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		var b storeBuf
		// Randomize the head position via push/pop churn.
		churn := rng.Intn(20)
		for i := 0; i < churn; i++ {
			b.push(bufEntry{})
		}
		for i := 0; i < churn; i++ {
			b.removeAt(0)
		}
		ref := make([]int, 0, 32)
		for i := 0; i < 2+rng.Intn(30); i++ {
			b.push(bufEntry{memIdx: i})
			ref = append(ref, i)
		}
		for len(ref) > 0 {
			i := rng.Intn(len(ref))
			e := b.removeAt(i)
			if e.memIdx != ref[i] {
				t.Fatalf("round %d: removeAt(%d) = %d, want %d", round, i, e.memIdx, ref[i])
			}
			ref = append(ref[:i], ref[i+1:]...)
			got := bufEntries(&b)
			if len(got) != len(ref) {
				t.Fatalf("round %d: len = %d, want %d", round, len(got), len(ref))
			}
			for j, e := range got {
				if e.memIdx != ref[j] {
					t.Fatalf("round %d: slot %d = %d, want %d", round, j, e.memIdx, ref[j])
				}
			}
		}
	}
}

func TestStoreBufGrowthKeepsOrder(t *testing.T) {
	// Force a grow while the window is wrapped: fill, pop a few, push past
	// the original capacity.
	var b storeBuf
	for i := 0; i < 8; i++ {
		b.push(bufEntry{memIdx: i})
	}
	for i := 0; i < 5; i++ {
		b.removeAt(0)
	}
	for i := 8; i < 40; i++ {
		b.push(bufEntry{memIdx: i})
	}
	want := 5
	for b.len() > 0 {
		if e := b.removeAt(0); e.memIdx != want {
			t.Fatalf("removed %d, want %d", e.memIdx, want)
		}
		want++
	}
	if want != 40 {
		t.Fatalf("drained up to %d, want 40", want)
	}
}

// naiveMinIdx is the reference the cache must match: a front-to-back
// scan preferring the earliest index on drainAt ties.
func naiveMinIdx(b *storeBuf) int {
	if b.len() == 0 {
		return -1
	}
	best := 0
	for i := 1; i < b.len(); i++ {
		if b.at(i).drainAt < b.at(best).drainAt {
			best = i
		}
	}
	return best
}

func TestStoreBufMinDrainIdxMatchesScan(t *testing.T) {
	// Random push/removeAt/reset churn, querying the cached minimum after
	// every mutation. Drain times are drawn from a small range so ties are
	// common — the cache must reproduce the scan's first-minimum
	// tie-break exactly, since PSO drain order (and thus seeded results)
	// depends on it.
	rng := rand.New(rand.NewSource(11))
	var b storeBuf
	for op := 0; op < 20000; op++ {
		switch {
		case b.len() == 0 || rng.Float64() < 0.55:
			b.push(bufEntry{memIdx: op, drainAt: int64(rng.Intn(12))})
		case rng.Float64() < 0.02:
			b.reset()
		default:
			// Bias removals toward the minimum, mirroring applyDrains.
			i := rng.Intn(b.len())
			if rng.Float64() < 0.5 {
				i = naiveMinIdx(&b)
			}
			b.removeAt(i)
		}
		want := naiveMinIdx(&b)
		if got := b.minDrainIdx(); got != want {
			t.Fatalf("op %d: minDrainIdx = %d, want %d (buf %v)", op, got, want, bufEntries(&b))
		}
	}
}

func TestStoreBufReset(t *testing.T) {
	var b storeBuf
	for i := 0; i < 10; i++ {
		b.push(bufEntry{memIdx: i})
	}
	b.removeAt(0)
	b.reset()
	if b.len() != 0 {
		t.Fatalf("len = %d after reset, want 0", b.len())
	}
	b.push(bufEntry{memIdx: 99})
	if got := b.at(0).memIdx; got != 99 {
		t.Fatalf("at(0) after reset+push = %d, want 99", got)
	}
}
