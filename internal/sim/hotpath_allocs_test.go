package sim

import (
	"testing"

	"perple/internal/analysis/hotpath"
	"perple/internal/litmus"
	"perple/internal/memmodel"
)

// TestHotpathAllocs is this package's half of the hotalloc contract:
// every //perple:hotpath annotation in internal/sim names one of the
// cover ids below, and each exerciser must run its covered functions at
// zero allocations per run on a warmed Runner. The static side
// (perple-vet's hotalloc pass) rejects allocation-causing constructs at
// vet time; this sweep catches what the AST rules cannot see (escape
// decisions, growth in reused state).
func TestHotpathAllocs(t *testing.T) {
	test, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := Compile(test)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig().WithSeed(7)
	psoCfg := cfg
	psoCfg.Relaxation = memmodel.PSO

	// One warmed Runner per exerciser: reused buffers are sized by the
	// first (warmup) call and must not grow during measurement.
	run := func(mode Mode, cfg Config) func() {
		r := NewRunner(ct)
		return func() {
			if _, err := r.RunSynced(200, mode, cfg); err != nil {
				t.Fatal(err)
			}
		}
	}
	hotpath.Verify(t, ".", map[string]func(){
		"sim-synced-user": run(ModeUser, cfg),    // barriered loop: draw, store/load/fence, drains
		"sim-synced-free": run(ModeNone, cfg),    // free-running loop: minThreadBelowIter
		"sim-synced-pso":  run(ModeUser, psoCfg), // per-location buffers: nextDrain, minDrainIdx
	})
}
