package sim

// storeBuf is a reusable ring buffer of pending stores, oldest first.
// Pushes and front pops are O(1); the backing array is a power-of-two
// ring that is kept across runs (reset does not free), so a steady-state
// iteration loop performs no store-buffer allocation at all. PSO may
// remove a mid-buffer entry (the per-location drain minimum); that case
// shifts toward the nearer end, preserving order, and is bounded by the
// buffer length — which stays small because drains are applied before
// every load.
//
// The buffer also caches the logical index of its minimum-drainAt entry
// (earliest index on ties, matching a front-to-back scan). PSO's drain
// loop queries every thread's minimum on every load, usually without
// draining anything, so the cache turns those repeated O(buf) scans
// into O(1) lookups; it is invalidated only when the minimum itself is
// removed, and lazily recomputed on the next query.
type storeBuf struct {
	e      []bufEntry // ring storage; len(e) is 0 or a power of two
	head   int        // physical index of the oldest live entry
	n      int        // live entry count
	minIdx int        // logical index of the min-drainAt entry, valid iff minOK
	minOK  bool
}

//perple:hotpath cover=sim-synced-user
func (b *storeBuf) len() int { return b.n }

// at returns the live entry at logical index i (0 = oldest). Callers
// must keep i < b.n; the returned pointer is invalidated by push.
//
//perple:hotpath cover=sim-synced-user
func (b *storeBuf) at(i int) *bufEntry { return &b.e[(b.head+i)&(len(b.e)-1)] }

// reset empties the buffer, keeping the backing array for reuse.
func (b *storeBuf) reset() { b.head, b.n, b.minOK = 0, 0, false }

// push appends a new youngest entry, growing the ring if full.
//
//perple:hotpath cover=sim-synced-user
func (b *storeBuf) push(e bufEntry) {
	if b.n == len(b.e) {
		// The make inside grow is inlined here by the compiler (-escapes
		// attributes it to this line). Growth is amortized warm-up only:
		// reset keeps the backing array, so steady-state iteration never
		// takes this branch — the allocs sweep proves 0 allocs/op.
		//perple:allow hotalloc amortized ring growth; reset reuses the backing array
		b.grow()
	}
	b.e[(b.head+b.n)&(len(b.e)-1)] = e
	b.n++
	switch {
	case b.n == 1:
		b.minIdx, b.minOK = 0, true
	case b.minOK && e.drainAt < b.at(b.minIdx).drainAt:
		// Strictly smaller: the new entry is the unique minimum. An equal
		// drainAt keeps the cached (earlier) index, matching the scan's
		// first-minimum tie-break.
		b.minIdx = b.n - 1
	}
}

// minDrainIdx returns the logical index of the entry with the smallest
// drainAt (earliest index on ties), recomputing the cache if a removal
// invalidated it. Returns -1 for an empty buffer.
//
//perple:hotpath cover=sim-synced-pso
func (b *storeBuf) minDrainIdx() int {
	if b.n == 0 {
		return -1
	}
	if !b.minOK {
		best := 0
		for i := 1; i < b.n; i++ {
			if b.at(i).drainAt < b.at(best).drainAt {
				best = i
			}
		}
		b.minIdx, b.minOK = best, true
	}
	return b.minIdx
}

func (b *storeBuf) grow() {
	ne := make([]bufEntry, max(8, 2*len(b.e)))
	for i := 0; i < b.n; i++ {
		ne[i] = *b.at(i)
	}
	b.e, b.head = ne, 0
}

// removeAt removes and returns the live entry at logical index i,
// preserving the order of the rest. Index 0 (the only case under TSO)
// is an O(1) head bump; interior indices shift the shorter side.
//
//perple:hotpath cover=sim-synced-user
func (b *storeBuf) removeAt(i int) bufEntry {
	e := *b.at(i)
	if b.minOK {
		switch {
		case i == b.minIdx:
			b.minOK = false
		case i < b.minIdx:
			// Order is preserved, so every entry past i slides down one
			// logical slot.
			b.minIdx--
		}
	}
	switch {
	case i == 0:
		b.head = (b.head + 1) & (len(b.e) - 1)
	case i < b.n-i-1:
		// Shift the head side up by one, then advance head.
		for j := i; j > 0; j-- {
			*b.at(j) = *b.at(j - 1)
		}
		b.head = (b.head + 1) & (len(b.e) - 1)
	default:
		// Shift the tail side down by one.
		for j := i; j < b.n-1; j++ {
			*b.at(j) = *b.at(j + 1)
		}
	}
	b.n--
	return e
}
