package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"perple/internal/memmodel"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 42
	cfg.Relaxation = memmodel.PSO
	cfg.TraceSize = 128
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"relaxation":"PSO"`) {
		t.Errorf("relaxation not serialized by name: %s", data)
	}
	var back Config
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != cfg {
		t.Errorf("round trip changed config:\n got %+v\nwant %+v", back, cfg)
	}
}

func TestConfigJSONPartialInheritsDefaults(t *testing.T) {
	var cfg Config
	if err := json.Unmarshal([]byte(`{"seed": 9, "drain_max": 99}`), &cfg); err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	if cfg.Seed != 9 || cfg.DrainMax != 99 {
		t.Errorf("overrides not applied: %+v", cfg)
	}
	if cfg.InstrCostMax != def.InstrCostMax || cfg.PreemptProb != def.PreemptProb {
		t.Errorf("defaults not inherited: %+v", cfg)
	}
	if cfg.Relaxation != memmodel.TSO {
		t.Errorf("default relaxation = %v", cfg.Relaxation)
	}
}

func TestConfigJSONErrors(t *testing.T) {
	var cfg Config
	if err := json.Unmarshal([]byte(`{"relaxation": "ARM"}`), &cfg); err == nil {
		t.Error("unknown relaxation accepted")
	}
	if err := json.Unmarshal([]byte(`{"instr_cost_min": -1}`), &cfg); err == nil {
		t.Error("invalid timing accepted (validate should run)")
	}
	if err := json.Unmarshal([]byte(`{bad json`), &cfg); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestPresets(t *testing.T) {
	for name, cfg := range Presets() {
		if err := cfg.validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
	pso, err := Preset("pso")
	if err != nil {
		t.Fatal(err)
	}
	if pso.Relaxation != memmodel.PSO {
		t.Error("pso preset not PSO")
	}
	if _, err := Preset("nope"); err == nil || !strings.Contains(err.Error(), "default") {
		t.Errorf("miss should list presets: %v", err)
	}
	// Presets actually change machine behaviour: fast-drain makes the sb
	// target much rarer than slow-drain.
	test := mustSuiteTest(t, "sb")
	rate := func(preset string) int64 {
		cfg, err := Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunSynced(test, 2000, ModeTimebase, cfg.WithSeed(7))
		if err != nil {
			t.Fatal(err)
		}
		var hits int64
		var scratch [][]int64
		for n := 0; n < res.N; n++ {
			scratch = res.RegisterFile(n, scratch)
			if test.Target.Holds(scratch) {
				hits++
			}
		}
		return hits
	}
	slow, fast := rate("slow-drain"), rate("fast-drain")
	if slow <= fast*2 {
		t.Errorf("slow-drain hits (%d) should far exceed fast-drain (%d)", slow, fast)
	}
}

func TestPresetNoPreemptShrinksSkew(t *testing.T) {
	pt := mustPerp(t, "sb")
	spread := func(preset string) int64 {
		cfg, err := Preset(preset)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunPerpetual(pt, 20000, cfg.WithSeed(3))
		if err != nil {
			t.Fatal(err)
		}
		var min, max int64
		for i, v := range res.Bufs.Bufs[0] {
			if v == 0 {
				continue
			}
			skew := int64(i) - (v - 1)
			if skew < min {
				min = skew
			}
			if skew > max {
				max = skew
			}
		}
		return max - min
	}
	if noPre, heavy := spread("no-preempt"), spread("heavy-preempt"); noPre >= heavy {
		t.Errorf("no-preempt skew range (%d) should be below heavy-preempt (%d)", noPre, heavy)
	}
}
