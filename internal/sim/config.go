package sim

import (
	"encoding/json"
	"fmt"
	"sort"

	"perple/internal/memmodel"
)

// configJSON is the serialized form of Config; Relaxation travels as a
// model name so files stay readable.
type configJSON struct {
	Seed             int64   `json:"seed"`
	Relaxation       string  `json:"relaxation"`
	InstrCostMin     int64   `json:"instr_cost_min"`
	InstrCostMax     int64   `json:"instr_cost_max"`
	DrainMin         int64   `json:"drain_min"`
	DrainMax         int64   `json:"drain_max"`
	FenceCost        int64   `json:"fence_cost"`
	PerpIterOverhead int64   `json:"perp_iter_overhead"`
	PreemptProb      float64 `json:"preempt_prob"`
	PreemptMin       int64   `json:"preempt_min"`
	PreemptMax       int64   `json:"preempt_max"`
	SpeedJitterPct   int64   `json:"speed_jitter_pct"`
	LaunchSpread     int64   `json:"launch_spread"`
	ExhFrameTick     float64 `json:"exh_frame_tick"`
	HeurFrameTick    float64 `json:"heur_frame_tick"`
	TraceSize        int     `json:"trace_size,omitempty"`
	WitnessEvery     int     `json:"witness_every,omitempty"`
}

// MarshalJSON serializes the config with the relaxation as a model name.
func (c Config) MarshalJSON() ([]byte, error) {
	return json.Marshal(configJSON{
		Seed:             c.Seed,
		Relaxation:       c.Relaxation.String(),
		InstrCostMin:     c.InstrCostMin,
		InstrCostMax:     c.InstrCostMax,
		DrainMin:         c.DrainMin,
		DrainMax:         c.DrainMax,
		FenceCost:        c.FenceCost,
		PerpIterOverhead: c.PerpIterOverhead,
		PreemptProb:      c.PreemptProb,
		PreemptMin:       c.PreemptMin,
		PreemptMax:       c.PreemptMax,
		SpeedJitterPct:   c.SpeedJitterPct,
		LaunchSpread:     c.LaunchSpread,
		ExhFrameTick:     c.ExhFrameTick,
		HeurFrameTick:    c.HeurFrameTick,
		TraceSize:        c.TraceSize,
		WitnessEvery:     c.WitnessEvery,
	})
}

// UnmarshalJSON parses a config; missing fields inherit DefaultConfig, so
// files only need the overrides.
func (c *Config) UnmarshalJSON(data []byte) error {
	def := DefaultConfig()
	cj := configJSON{
		Seed:             def.Seed,
		Relaxation:       def.Relaxation.String(),
		InstrCostMin:     def.InstrCostMin,
		InstrCostMax:     def.InstrCostMax,
		DrainMin:         def.DrainMin,
		DrainMax:         def.DrainMax,
		FenceCost:        def.FenceCost,
		PerpIterOverhead: def.PerpIterOverhead,
		PreemptProb:      def.PreemptProb,
		PreemptMin:       def.PreemptMin,
		PreemptMax:       def.PreemptMax,
		SpeedJitterPct:   def.SpeedJitterPct,
		LaunchSpread:     def.LaunchSpread,
		ExhFrameTick:     def.ExhFrameTick,
		HeurFrameTick:    def.HeurFrameTick,
	}
	if err := json.Unmarshal(data, &cj); err != nil {
		return err
	}
	var rel memmodel.Model
	switch cj.Relaxation {
	case "TSO", "tso", "":
		rel = memmodel.TSO
	case "PSO", "pso":
		rel = memmodel.PSO
	default:
		return fmt.Errorf("sim: unknown relaxation %q (want TSO or PSO)", cj.Relaxation)
	}
	*c = Config{
		Seed:             cj.Seed,
		Relaxation:       rel,
		InstrCostMin:     cj.InstrCostMin,
		InstrCostMax:     cj.InstrCostMax,
		DrainMin:         cj.DrainMin,
		DrainMax:         cj.DrainMax,
		FenceCost:        cj.FenceCost,
		PerpIterOverhead: cj.PerpIterOverhead,
		PreemptProb:      cj.PreemptProb,
		PreemptMin:       cj.PreemptMin,
		PreemptMax:       cj.PreemptMax,
		SpeedJitterPct:   cj.SpeedJitterPct,
		LaunchSpread:     cj.LaunchSpread,
		ExhFrameTick:     cj.ExhFrameTick,
		HeurFrameTick:    cj.HeurFrameTick,
		TraceSize:        cj.TraceSize,
		WitnessEvery:     cj.WitnessEvery,
	}
	return c.validate()
}

// Presets are named machine configurations for experiments beyond the
// calibrated default:
//
//   - "default": the calibrated model of DESIGN.md;
//   - "pso": the default timing on the PSO (buggy) machine;
//   - "slow-drain": 4x store-buffer residency — weak outcomes everywhere,
//     useful to stress counter throughput;
//   - "fast-drain": near-immediate drains — weak outcomes become rare,
//     approximating a write-through machine;
//   - "no-preempt": no OS preemption — minimal thread skew;
//   - "heavy-preempt": 8x preemption — extreme skew, stress for the
//     perpetual frame analysis.
func Presets() map[string]Config {
	def := DefaultConfig()

	pso := def
	pso.Relaxation = memmodel.PSO

	slow := def
	slow.DrainMin *= 4
	slow.DrainMax *= 4

	fast := def
	fast.DrainMin = 0
	fast.DrainMax = 2

	noPre := def
	noPre.PreemptProb = 0

	heavy := def
	heavy.PreemptProb *= 8

	return map[string]Config{
		"default":       def,
		"pso":           pso,
		"slow-drain":    slow,
		"fast-drain":    fast,
		"no-preempt":    noPre,
		"heavy-preempt": heavy,
	}
}

// Preset returns a named preset, with the available names in the error on
// a miss.
func Preset(name string) (Config, error) {
	presets := Presets()
	if cfg, ok := presets[name]; ok {
		return cfg, nil
	}
	names := make([]string, 0, len(presets))
	for n := range presets {
		names = append(names, n)
	}
	sort.Strings(names)
	return Config{}, fmt.Errorf("sim: unknown preset %q (have %v)", name, names)
}
