package sim

import (
	"fmt"

	"perple/internal/litmus"
)

// The machine executes flat bytecode rather than walking []simInstr
// structs: each instruction is one packed uint64 word read from a
// contiguous code slice, with wide operands (store constants, perpetual
// sequence coefficients) in parallel int64 slices indexed by pc. The
// event loops' per-step work drops from copying a multi-word struct to
// one word load plus shift/mask decodes, and dispatch is a dense
// three-way switch on the low bits.
//
// Word layout (low to high):
//
//	bits  0..1   opcode (bcStore, bcLoad, bcFence)
//	bits  2..17  location index (dense, via CompiledTest.locIdx)
//	bits 18..33  destination register (synced) / buf slot (perpetual)
//	bits 34..63  witness index + 1 (0 = not a witness-recorded load)
//
// Wide operands, parallel to code:
//
//	v1[pc]  store value (synced) / sequence multiplier k (perpetual)
//	v2[pc]  sequence offset a (perpetual); unused by synced programs
//
// The lowering is purely representational: opcode order, operand values
// and the machine's RNG draw sequence are unchanged, so seeded runs are
// byte-identical to the struct-walk engine's (held by TestEngineGolden
// against fixtures generated before this rewrite).
const (
	bcStore = 0
	bcLoad  = 1
	bcFence = 2

	bcOpMask    = 0x3
	bcLocShift  = 2
	bcRegShift  = 18
	bcFieldMask = 0xFFFF
	bcWidxShift = 34
	bcWidxMax   = 1<<30 - 2 // widx+1 must fit in 30 bits
)

// bytecodeProg is one thread's compiled program. Immutable after
// compilation and shared by any number of machines concurrently.
type bytecodeProg struct {
	code []uint64
	v1   []int64
	v2   []int64
}

// packInstr encodes one instruction word, rejecting operands that do
// not fit the packed fields (unreachable for realistic litmus tests).
func packInstr(kind litmus.OpKind, locIdx, regOrSlot int, widx int32) (uint64, error) {
	var op uint64
	switch kind {
	case litmus.OpStore:
		op = bcStore
	case litmus.OpLoad:
		op = bcLoad
	case litmus.OpFence:
		op = bcFence
	default:
		return 0, fmt.Errorf("sim: cannot encode op kind %v", kind)
	}
	if locIdx < 0 || locIdx > bcFieldMask {
		return 0, fmt.Errorf("sim: location index %d exceeds bytecode field", locIdx)
	}
	if regOrSlot < 0 || regOrSlot > bcFieldMask {
		return 0, fmt.Errorf("sim: register/slot %d exceeds bytecode field", regOrSlot)
	}
	if widx < -1 || widx > bcWidxMax {
		return 0, fmt.Errorf("sim: witness index %d exceeds bytecode field", widx)
	}
	return op |
		uint64(locIdx)<<bcLocShift |
		uint64(regOrSlot)<<bcRegShift |
		uint64(widx+1)<<bcWidxShift, nil
}

// Decode helpers, inlined into the event loops.
func bcLoc(w uint64) int    { return int(w >> bcLocShift & bcFieldMask) }
func bcReg(w uint64) int    { return int(w >> bcRegShift & bcFieldMask) }
func bcWidx(w uint64) int32 { return int32(w>>bcWidxShift) - 1 }
