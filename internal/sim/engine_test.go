package sim

import (
	"math/rand"
	"testing"
)

// TestMachineDrawMatchesRand locksteps machine.draw against the
// package-level reference (rand.Int63n) over identically seeded RNGs:
// every draw must agree exactly, proving the cached rejection threshold
// and the Granlund–Montgomery multiply-shift modulo replicate Int63n
// bit for bit. Spans cover small config-like ranges, powers of two,
// negative-lo jitter ranges, degenerate spans, and spans wide enough to
// exercise large quotients.
func TestMachineDrawMatchesRand(t *testing.T) {
	ranges := [][2]int64{
		{0, 0},             // degenerate: hi == lo
		{5, 3},             // degenerate: hi < lo
		{0, 1},             // span 2, power of two
		{0, 6},             // span 7
		{1, 100},           // span 100 (InstrCost-like)
		{-15, 15},          // span 31 (jitter-like)
		{-7, 8},            // span 16, power of two
		{0, 999},           // span 1000 (drain-like)
		{10, 12},           // span 3, smallest non-power-of-two
		{0, (1 << 40) - 2}, // wide span, large quotient path
		{0, (1 << 31)},     // span 2^31+1
	}
	spans := make([]drawSpan, len(ranges))
	for i, r := range ranges {
		spans[i] = makeDrawSpan(r[0], r[1])
	}
	for seed := int64(1); seed <= 5; seed++ {
		m := &machine{}
		m.rng.seed(seed)
		ref := rand.New(rand.NewSource(seed))
		for round := 0; round < 2000; round++ {
			i := round % len(ranges)
			got := m.draw(&spans[i])
			want := uniform(ref, ranges[i][0], ranges[i][1])
			if got != want {
				t.Fatalf("seed %d round %d span [%d,%d]: machine.draw = %d, reference = %d",
					seed, round, ranges[i][0], ranges[i][1], got, want)
			}
		}
	}
}

// TestSpanMagicExact drives the cached multiply-shift quotient directly:
// for every non-power-of-two span size and a sweep of 63-bit values v
// (including the extremes and values adjacent to multiples of n), the
// magic must reproduce v % n exactly.
func TestSpanMagicExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ns := []int64{3, 5, 6, 7, 9, 11, 31, 100, 101, 999, 1000, 1<<20 + 1, 1<<40 - 1, 1<<62 + 3}
	for _, n := range ns {
		s := makeDrawSpan(0, n-1)
		if s.pow2 || s.n != n {
			t.Fatalf("n=%d: expected non-power-of-two span of size n, got %+v", n, s)
		}
		check := func(v int64) {
			t.Helper()
			got := spanMod(&s, v)
			if want := v % n; got != want {
				t.Fatalf("n=%d v=%d: magic mod = %d, want %d", n, v, got, want)
			}
		}
		check(0)
		check(n - 1)
		check(n)
		check(n + 1)
		check(1<<63 - 1)
		check(s.max)
		for i := 0; i < 2000; i++ {
			v := rng.Int63()
			check(v)
			if q := v - v%n; q > 0 {
				check(q - 1)
				check(q)
			}
		}
	}
}

// TestLFSourceMatchesRand locksteps lfSource against rand.New over
// Int63, Uint64 and Float64, well past the seeding register length and
// across reseeds (including a reused source, exercising the oracle
// reuse path), proving the oracle-seeded register plus the in-package
// recurrence replay math/rand's stream value for value.
func TestLFSourceMatchesRand(t *testing.T) {
	var src lfSource
	for _, seed := range []int64{1, 2, 42, -7, 0, 1 << 40} {
		src.seed(seed)
		ref := rand.New(rand.NewSource(seed))
		for i := 0; i < 3*lfLen; i++ {
			switch i % 3 {
			case 0:
				if got, want := src.Int63(), ref.Int63(); got != want {
					t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, got, want)
				}
			case 1:
				if got, want := src.Uint64(), ref.Uint64(); got != want {
					t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, got, want)
				}
			default:
				if got, want := src.Float64(), ref.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
				}
			}
		}
	}
}
