// Package sim is a discrete-event simulated x86-TSO multicore: the
// substrate that stands in for the paper's Xeon cluster (see DESIGN.md,
// substitution table). Each core executes a litmus-test thread with
// per-instruction timing jitter, a FIFO store buffer whose entries drain
// to shared memory after a random latency, store-to-load forwarding,
// MFENCE, occasional OS-preemption stalls, and tick-accounted
// synchronization barriers in the five litmus7 modes. The machine is
// deterministic given a seed.
//
// Two run shapes are provided: RunSynced executes N per-iteration-
// synchronized (or free-running, for ModeNone) iterations over
// per-iteration memory cells, litmus7-style; RunPerpetual executes N
// synchronization-free iterations of a converted perpetual test over
// shared cells, recording loads into buf arrays, PerpLE-style.
package sim

import (
	"fmt"
	"math/rand"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/trace"
)

// Mode is a litmus7 thread-synchronization mode (Section VI-A of the
// paper) or the PerpLE launch-only synchronization.
type Mode int

const (
	// ModeUser is litmus7's default polling (spin) barrier.
	ModeUser Mode = iota
	// ModeUserFence is the polling barrier with write-propagation fences.
	ModeUserFence
	// ModePthread is a pthread barrier: expensive kernel sleep/wake with
	// staggered wakeups.
	ModePthread
	// ModeTimebase synchronizes on the architecture's timebase counter:
	// expensive to arm but releasing threads nearly simultaneously.
	ModeTimebase
	// ModeNone runs iterations back-to-back with no synchronization;
	// iteration n of one thread is only compared with iteration n of the
	// others.
	ModeNone
)

// Modes lists every litmus7 synchronization mode in presentation order.
var Modes = []Mode{ModeUser, ModeUserFence, ModePthread, ModeTimebase, ModeNone}

func (m Mode) String() string {
	switch m {
	case ModeUser:
		return "user"
	case ModeUserFence:
		return "userfence"
	case ModePthread:
		return "pthread"
	case ModeTimebase:
		return "timebase"
	case ModeNone:
		return "none"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode resolves a mode name.
func ParseMode(s string) (Mode, error) {
	for _, m := range Modes {
		if m.String() == s {
			return m, nil
		}
	}
	return 0, fmt.Errorf("sim: unknown synchronization mode %q", s)
}

// modeParams models each barrier's cost structure and release alignment.
type modeParams struct {
	// barrierTicks is the mean cost charged between the last arrival and
	// the release (±10% jitter).
	barrierTicks int64
	// releaseSpread is the maximum extra delay of each thread's release
	// relative to the barrier (uniform); tighter spread means more
	// same-iteration interaction.
	releaseSpread int64
	// stagger, when positive, delays thread k's release by ~k·stagger
	// ticks, modelling one-by-one kernel wakeups (pthread).
	stagger int64
	// iterOverhead is the per-iteration harness bookkeeping cost charged
	// even without a barrier.
	iterOverhead int64
	// flush forces each thread's store buffer to drain at the barrier
	// (userfence).
	flush bool
}

func (m Mode) params() modeParams {
	switch m {
	// Calibration note: on real hardware the release skew of a polling
	// barrier (~100s of ns of cache-line arbitration) is an order of
	// magnitude larger than store-buffer drain latency (~10ns), which is
	// why litmus7's aligned modes still miss most weak outcomes; the
	// timebase barrier releases nearly simultaneously and finds the most.
	// The spreads below preserve those ratios against DefaultConfig's
	// drain window, and barrierTicks+releaseSpread/2 preserves the paper's
	// relative mode runtimes (Figure 10).
	case ModeUser:
		return modeParams{barrierTicks: 22, releaseSpread: 160, iterOverhead: 6}
	case ModeUserFence:
		return modeParams{barrierTicks: 22, releaseSpread: 150, iterOverhead: 6, flush: true}
	case ModePthread:
		return modeParams{barrierTicks: 1500, releaseSpread: 60, stagger: 130, iterOverhead: 6}
	case ModeTimebase:
		return modeParams{barrierTicks: 185, releaseSpread: 4, iterOverhead: 6}
	case ModeNone:
		return modeParams{iterOverhead: 18}
	default:
		panic("sim: invalid mode")
	}
}

// Config holds the machine's timing model. All durations are in abstract
// ticks; only ratios matter. The zero value is unusable — start from
// DefaultConfig.
type Config struct {
	// Seed drives every random choice; equal seeds give equal runs.
	Seed int64

	// Relaxation selects the machine's memory system: memmodel.TSO (the
	// default, a single FIFO store buffer per core) or memmodel.PSO
	// (per-location buffers whose drains may reorder across locations).
	// The PSO machine is the fault-injection target: hardware that claims
	// TSO but reorders its stores. memmodel.SC is rejected — an SC
	// machine has no buffers to simulate.
	Relaxation memmodel.Model

	// InstrCostMin/Max bound the per-instruction execution cost.
	InstrCostMin, InstrCostMax int64

	// DrainMin/Max bound the residency of a store-buffer entry before it
	// reaches shared memory. Larger values widen the window in which
	// store-buffering outcomes are observable.
	DrainMin, DrainMax int64

	// FenceCost is charged by MFENCE on top of waiting for the buffer to
	// empty.
	FenceCost int64

	// PerpIterOverhead is the perpetual loop's per-iteration bookkeeping
	// (index increment, buf spill).
	PerpIterOverhead int64

	// PreemptProb is the per-iteration probability that a thread suffers
	// an OS preemption stall of PreemptMin..PreemptMax ticks. Preemption
	// is the main source of large thread skew (Figure 12).
	PreemptProb float64
	PreemptMin  int64
	PreemptMax  int64

	// SpeedJitterPct adds ±pct% per-iteration speed variation per thread,
	// making relative thread progress a random walk that recrosses zero.
	SpeedJitterPct int64

	// LaunchSpread is the maximum difference between thread start times
	// after the one-time launch synchronization.
	LaunchSpread int64

	// ExhFrameTick / HeurFrameTick are the modelled per-frame costs of
	// the outcome counters, used by the harness's runtime accounting.
	ExhFrameTick, HeurFrameTick float64

	// TraceSize, when positive, records the last TraceSize machine events
	// (stores, drains, loads, fences, preemptions) on the run result for
	// debugging. Zero disables tracing at no cost.
	TraceSize int

	// WitnessEvery, when positive, records an rf/co witness for every
	// WitnessEvery-th iteration of a synced run (1 = every iteration)
	// into SyncedResult.Witnesses. Zero disables recording at no cost
	// beyond a nil check per load and drain. Synced modes only;
	// perpetual runs reject it.
	WitnessEvery int
}

// DefaultConfig returns the calibrated timing model used throughout the
// evaluation. See DESIGN.md for the calibration rationale.
func DefaultConfig() Config {
	return Config{
		Seed:             1,
		Relaxation:       memmodel.TSO,
		InstrCostMin:     1,
		InstrCostMax:     3,
		DrainMin:         2,
		DrainMax:         12,
		FenceCost:        4,
		PerpIterOverhead: 3,
		PreemptProb:      0.0005,
		PreemptMin:       100,
		PreemptMax:       1_200,
		SpeedJitterPct:   25,
		LaunchSpread:     30,
		ExhFrameTick:     1.2,
		HeurFrameTick:    1.0,
	}
}

// WithSeed returns a copy of the config with a different seed.
func (c Config) WithSeed(seed int64) Config {
	c.Seed = seed
	return c
}

func (c Config) validate() error {
	switch {
	case c.Relaxation != memmodel.TSO && c.Relaxation != memmodel.PSO:
		return fmt.Errorf("sim: unsupported relaxation %v (want TSO or PSO)", c.Relaxation)
	case c.InstrCostMin <= 0 || c.InstrCostMax < c.InstrCostMin:
		return fmt.Errorf("sim: invalid instruction cost range [%d,%d]", c.InstrCostMin, c.InstrCostMax)
	case c.DrainMin < 0 || c.DrainMax < c.DrainMin:
		return fmt.Errorf("sim: invalid drain range [%d,%d]", c.DrainMin, c.DrainMax)
	case c.PreemptProb < 0 || c.PreemptProb > 1:
		return fmt.Errorf("sim: invalid preemption probability %g", c.PreemptProb)
	case c.PreemptProb > 0 && c.PreemptMax < c.PreemptMin:
		return fmt.Errorf("sim: invalid preemption range [%d,%d]", c.PreemptMin, c.PreemptMax)
	case c.WitnessEvery < 0:
		return fmt.Errorf("sim: negative witness sampling stride %d", c.WitnessEvery)
	}
	return nil
}

// uniform draws from [lo, hi] inclusive.
func uniform(rng *rand.Rand, lo, hi int64) int64 {
	if hi <= lo {
		return lo
	}
	return lo + rng.Int63n(hi-lo+1)
}

// SyncedResult is the outcome of a litmus7-style run.
type SyncedResult struct {
	// Regs[t][n*r+i] is register i of thread t at the end of iteration n,
	// where r is the thread's register count.
	Regs [][]int64
	// RegCounts[t] is the register count r of thread t.
	RegCounts []int
	// Mem[li*N+n] is the final value of location li's iteration-n cell
	// (locations indexed per Locs).
	Mem []int64
	// Locs fixes the location indexing of Mem.
	Locs []litmus.Loc
	// N is the iteration count.
	N int
	// Ticks is the simulated wall time of the run (max core finish time).
	Ticks int64
	// Trace holds the recorded machine events when Config.TraceSize > 0.
	Trace *Trace
	// Witnesses holds the recorded rf/co witnesses when
	// Config.WitnessEvery > 0 (nil otherwise). Like Regs and Mem it
	// aliases the Runner's reusable buffers and is valid only until the
	// next run.
	Witnesses *trace.WitnessSet
}

// RegisterFile returns the register file view of iteration n.
func (r *SyncedResult) RegisterFile(n int, scratch [][]int64) [][]int64 {
	if scratch == nil {
		scratch = make([][]int64, len(r.Regs))
		for t, rc := range r.RegCounts {
			scratch[t] = make([]int64, rc)
		}
	}
	for t, rc := range r.RegCounts {
		copy(scratch[t], r.Regs[t][n*rc:(n+1)*rc])
	}
	return scratch
}

// MemAt returns iteration n's final memory as a map (allocates; used only
// for tests with final-memory conditions).
func (r *SyncedResult) MemAt(n int) map[litmus.Loc]int64 {
	mem := make(map[litmus.Loc]int64, len(r.Locs))
	for li, loc := range r.Locs {
		mem[loc] = r.Mem[li*r.N+n]
	}
	return mem
}

// PerpetualResult is the outcome of a PerpLE-style run.
type PerpetualResult struct {
	Bufs *core.BufSet
	// Ticks is the simulated wall time of test execution (excluding
	// outcome counting, which the harness accounts separately).
	Ticks int64
	// Trace holds the recorded machine events when Config.TraceSize > 0.
	Trace *Trace
}
