package sim

import (
	"fmt"
	"strings"

	"perple/internal/litmus"
)

// TraceKind classifies a trace event.
type TraceKind int

const (
	// TraceStore: a store issued into the thread's buffer.
	TraceStore TraceKind = iota
	// TraceDrain: a buffered store reached shared memory.
	TraceDrain
	// TraceLoad: a load completed (Forwarded tells from where).
	TraceLoad
	// TraceFence: an MFENCE completed (buffer empty).
	TraceFence
	// TracePreempt: the thread suffered a preemption stall.
	TracePreempt
)

func (k TraceKind) String() string {
	switch k {
	case TraceStore:
		return "store"
	case TraceDrain:
		return "drain"
	case TraceLoad:
		return "load"
	case TraceFence:
		return "fence"
	case TracePreempt:
		return "preempt"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one recorded machine event.
type TraceEvent struct {
	Time   int64
	Thread int
	Kind   TraceKind
	Loc    litmus.Loc
	Value  int64
	Iter   int
	// Forwarded marks loads served from the thread's own store buffer.
	Forwarded bool
	// DrainAt is the scheduled drain time of an issued store.
	DrainAt int64
}

func (e TraceEvent) String() string {
	switch e.Kind {
	case TraceStore:
		return fmt.Sprintf("%8d t%d i%-5d store [%s] <- %d (drains @%d)", e.Time, e.Thread, e.Iter, e.Loc, e.Value, e.DrainAt)
	case TraceDrain:
		return fmt.Sprintf("%8d t%d         drain [%s] = %d", e.Time, e.Thread, e.Loc, e.Value)
	case TraceLoad:
		src := "mem"
		if e.Forwarded {
			src = "fwd"
		}
		return fmt.Sprintf("%8d t%d i%-5d load  [%s] -> %d (%s)", e.Time, e.Thread, e.Iter, e.Loc, e.Value, src)
	case TraceFence:
		return fmt.Sprintf("%8d t%d i%-5d mfence", e.Time, e.Thread, e.Iter)
	case TracePreempt:
		return fmt.Sprintf("%8d t%d i%-5d preempted for %d ticks", e.Time, e.Thread, e.Iter, e.Value)
	default:
		return fmt.Sprintf("%8d t%d ?", e.Time, e.Thread)
	}
}

// Trace is a bounded ring of machine events; when full, the oldest events
// are overwritten, keeping the tail of the run.
type Trace struct {
	events  []TraceEvent
	next    int
	wrapped bool
	dropped int64
}

// newTrace returns a trace keeping the last size events, or nil when
// size ≤ 0 (tracing off; the hot paths test for nil).
func newTrace(size int) *Trace {
	if size <= 0 {
		return nil
	}
	return &Trace{events: make([]TraceEvent, 0, size)}
}

func (tr *Trace) add(e TraceEvent) {
	if len(tr.events) < cap(tr.events) {
		tr.events = append(tr.events, e)
		return
	}
	tr.events[tr.next] = e
	tr.next = (tr.next + 1) % len(tr.events)
	tr.wrapped = true
	tr.dropped++
}

// Events returns the recorded events in the order the machine processed
// them. Drain events are recorded when the drain is applied (at the next
// load or at settle time), so their timestamps may precede neighbouring
// events; sort by Time for a strict timeline.
func (tr *Trace) Events() []TraceEvent {
	if tr == nil {
		return nil
	}
	if !tr.wrapped {
		return append([]TraceEvent(nil), tr.events...)
	}
	out := make([]TraceEvent, 0, len(tr.events))
	out = append(out, tr.events[tr.next:]...)
	out = append(out, tr.events[:tr.next]...)
	return out
}

// Dropped reports how many events the ring discarded.
func (tr *Trace) Dropped() int64 {
	if tr == nil {
		return 0
	}
	return tr.dropped
}

// String renders the trace, one event per line.
func (tr *Trace) String() string {
	var b strings.Builder
	if d := tr.Dropped(); d > 0 {
		fmt.Fprintf(&b, "... %d earlier events dropped ...\n", d)
	}
	for _, e := range tr.Events() {
		b.WriteString(e.String())
		b.WriteString("\n")
	}
	return b.String()
}
