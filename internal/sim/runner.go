package sim

import (
	"context"
	"fmt"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/memmodel"
)

// Runner executes synced-mode runs of one compiled test on a reusable
// machine: the memory array, register files, store-buffer rings and RNG
// are allocated once and recycled, so the steady-state iteration loop of
// repeated runs performs no heap allocation. A Runner is not safe for
// concurrent use; batched runs give each worker its own Runner over the
// shared CompiledTest.
//
// The returned SyncedResult aliases the Runner's backing arrays and is
// valid only until the next Run call. The package-level RunSynced /
// RunSyncedCtx keep the old own-your-result contract by using a fresh
// Runner per call.
type Runner struct {
	ct      *CompiledTest
	m       machine
	threads []simThread
	res     SyncedResult
	wit     *witnessRec // lazily built on first witness-recording run
}

// NewRunner builds a reusable synced-mode runner for a compiled test.
func NewRunner(ct *CompiledTest) *Runner {
	r := &Runner{ct: ct}
	r.m.locs = ct.locs
	r.threads = make([]simThread, len(ct.progs))
	r.m.threads = make([]*simThread, len(ct.progs))
	for i := range r.threads {
		r.threads[i] = simThread{id: i, prog: ct.progs[i]}
		r.m.threads[i] = &r.threads[i]
	}
	r.res.Regs = make([][]int64, len(ct.progs))
	r.res.RegCounts = ct.regCounts
	r.res.Locs = ct.locs
	return r
}

// RunSynced executes n iterations under the given synchronization mode.
func (r *Runner) RunSynced(n int, mode Mode, cfg Config) (*SyncedResult, error) {
	return r.RunSyncedCtx(context.Background(), n, mode, cfg)
}

// RunSyncedCtx is RunSynced under a context; see RunSyncedCtx (package
// level) for cancellation semantics. Equal (n, mode, cfg) arguments give
// runs identical to a fresh machine's: reset restores every piece of
// machine state the RNG-driven event loops observe.
func (r *Runner) RunSyncedCtx(ctx context.Context, n int, mode Mode, cfg Config) (*SyncedResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("sim: negative iteration count %d", n)
	}
	m := &r.m
	m.cfg = cfg
	m.pso = cfg.Relaxation == memmodel.PSO
	m.initSpans()
	m.reseed(cfg.Seed)
	m.trace = newTrace(cfg.TraceSize)
	m.cells = n
	m.done = ctx.Done()
	m.steps = 0
	m.nextDrainAt = drainNever
	m.mem = resizeZeroed(m.mem, len(r.ct.locs)*n)
	for ti := range r.threads {
		th := &r.threads[ti]
		th.time, th.speed, th.pc, th.iter = 0, 100, 0, 0
		th.buf.reset()
		r.res.Regs[ti] = resizeZeroed(r.res.Regs[ti], r.ct.regCounts[ti]*n)
	}
	res := &r.res
	res.Mem = m.mem
	res.N = n
	res.Ticks = 0
	res.Trace = m.trace
	m.wit, res.Witnesses = nil, nil
	if cfg.WitnessEvery > 0 {
		if r.wit == nil {
			r.wit = newWitnessRec(r.ct.layout)
		}
		r.wit.reset(n, cfg.WitnessEvery, len(m.mem))
		m.wit = r.wit
		res.Witnesses = r.wit.set
	}
	if n == 0 {
		return res, nil
	}
	for li, loc := range r.ct.locs {
		if v := r.ct.test.Init[loc]; v != 0 {
			row := m.mem[li*n : (li+1)*n]
			for i := range row {
				row[i] = v
			}
		}
	}
	p := mode.params()
	if mode == ModeNone {
		m.runFree(n, p, res)
	} else {
		m.runBarriered(n, p, res)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sim: synced run aborted: %w", err)
	}
	m.settle()
	res.Ticks = m.maxTime()
	return res, nil
}

// PerpetualRunner executes perpetual runs of one compiled perpetual test
// on a reusable machine. Like Runner, it recycles machine state across
// runs and is not safe for concurrent use. The BufSet on each result is
// freshly allocated (counters and skew analysis consume it after the
// run), so only the machine itself is recycled.
type PerpetualRunner struct {
	cp      *CompiledPerpetual
	m       machine
	threads []simThread
}

// NewPerpetualRunner builds a reusable perpetual runner.
func NewPerpetualRunner(cp *CompiledPerpetual) *PerpetualRunner {
	r := &PerpetualRunner{cp: cp}
	r.m.locs = cp.locs
	r.m.cells = 1
	r.threads = make([]simThread, len(cp.progs))
	r.m.threads = make([]*simThread, len(cp.progs))
	for i := range r.threads {
		r.threads[i] = simThread{id: i, prog: cp.progs[i]}
		r.m.threads[i] = &r.threads[i]
	}
	return r
}

// Run executes n perpetual iterations.
func (r *PerpetualRunner) Run(n int, cfg Config) (*PerpetualResult, error) {
	return r.RunCtx(context.Background(), n, cfg)
}

// RunCtx is Run under a context; see RunPerpetualCtx for cancellation
// semantics.
func (r *PerpetualRunner) RunCtx(ctx context.Context, n int, cfg Config) (*PerpetualResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.WitnessEvery > 0 {
		return nil, fmt.Errorf("sim: witness recording (WitnessEvery=%d) is synced-mode only", cfg.WitnessEvery)
	}
	if n < 0 {
		return nil, fmt.Errorf("sim: negative iteration count %d", n)
	}
	m := &r.m
	m.cfg = cfg
	m.pso = cfg.Relaxation == memmodel.PSO
	m.initSpans()
	m.reseed(cfg.Seed)
	m.trace = newTrace(cfg.TraceSize)
	m.done = ctx.Done()
	m.steps = 0
	m.nextDrainAt = drainNever
	m.mem = resizeZeroed(m.mem, len(r.cp.locs))
	bufs := core.NewBufSet(r.cp.pt, n)
	for ti := range r.threads {
		th := &r.threads[ti]
		th.speed, th.pc, th.iter = 100, 0, 0
		th.buf.reset()
		th.time = m.draw(&m.launchSpan)
		m.newIteration(th, cfg.PerpIterOverhead)
	}
	if n > 0 {
		if err := m.runPerpetual(ctx, n, bufs, r.cp.pt.Reads); err != nil {
			return nil, err
		}
	}
	m.settle()
	return &PerpetualResult{Bufs: bufs, Ticks: m.maxTime(), Trace: m.trace}, nil
}

// reseed resets the machine's RNG to the state of a freshly seeded
// rand.NewSource(seed) (see lfSource), allocating only on first use, so
// reused machines replay the same streams as fresh ones.
func (m *machine) reseed(seed int64) {
	m.rng.seed(seed)
}

// resizeZeroed returns s resized to n zeroed elements, reusing the
// backing array when it is large enough.
func resizeZeroed(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// ----- package-level entry points -----

// RunSynced executes n iterations of the litmus test under the given
// synchronization mode. Iterations use disjoint memory cells, as litmus7
// does, so each iteration's outcome is well-defined even without
// synchronization; in ModeNone only temporally overlapping same-index
// iterations interact.
func RunSynced(t *litmus.Test, n int, mode Mode, cfg Config) (*SyncedResult, error) {
	return RunSyncedCtx(context.Background(), t, n, mode, cfg)
}

// RunSyncedCtx is RunSynced under a context: the event loop polls for
// cancellation (every iteration in barriered modes, every ~1k events in
// ModeNone) and aborts with the context's error instead of running the
// remaining iterations to completion.
func RunSyncedCtx(ctx context.Context, t *litmus.Test, n int, mode Mode, cfg Config) (*SyncedResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	ct, err := Compile(t)
	if err != nil {
		return nil, err
	}
	return NewRunner(ct).RunSyncedCtx(ctx, n, mode, cfg)
}

// RunPerpetual executes n synchronization-free iterations of a perpetual
// test: threads are released once within LaunchSpread ticks and then run
// independently, storing arithmetic-sequence values to shared cells and
// recording every load into the buf arrays.
func RunPerpetual(pt *core.PerpetualTest, n int, cfg Config) (*PerpetualResult, error) {
	return RunPerpetualCtx(context.Background(), pt, n, cfg)
}

// RunPerpetualCtx is RunPerpetual under a context: the event loop polls
// for cancellation every ~1k machine events and aborts with the context's
// error instead of running the remaining iterations to completion.
func RunPerpetualCtx(ctx context.Context, pt *core.PerpetualTest, n int, cfg Config) (*PerpetualResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("sim: negative iteration count %d", n)
	}
	cp, err := CompilePerpetual(pt)
	if err != nil {
		return nil, err
	}
	return NewPerpetualRunner(cp).RunCtx(ctx, n, cfg)
}
