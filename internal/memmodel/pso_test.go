package memmodel

import (
	"math/rand"
	"testing"

	"perple/internal/litmus"
)

// TestPSOClassification pins the expected PSO status of representative
// suite targets: W→W relaxation newly allows the message-passing family
// (unless fenced), while load-order, store-atomicity and coherence
// violations stay forbidden.
func TestPSOClassification(t *testing.T) {
	want := map[string]bool{
		// Newly allowed under PSO: the writer's stores drain out of order.
		"mp":      true,
		"safe018": true, // mp chain through z
		"safe028": true, // mp with two readers
		// Fences restore store order: still forbidden.
		"mp+fences": false,
		"safe022":   false, // writer-fenced mp
		// TSO-allowed targets remain allowed (PSO only relaxes).
		"sb":           true,
		"iwp23b":       true,
		"podwr001":     true,
		"rwc-unfenced": true,
		// Load-load order and store atomicity still hold.
		"lb":         false,
		"iriw":       false,
		"safe027":    false,
		"rwc-fenced": false,
		// Coherence still holds (per-location order is kept).
		"co-iriw":    false,
		"n4":         false,
		"n5":         false,
		"safe006":    false,
		"mp+staleld": false,
	}
	for name, allowed := range want {
		test, err := litmus.SuiteTest(name)
		if err != nil {
			t.Fatal(err)
		}
		if got := AxiomaticAllowed(test, test.Target, PSO); got != allowed {
			t.Errorf("%s: PSO allows target = %v, want %v", name, got, allowed)
		}
	}
}

// TestPSOAgreement cross-validates the axiomatic and operational PSO
// models on the whole suite.
func TestPSOAgreement(t *testing.T) {
	for _, e := range litmus.Suite() {
		e := e
		t.Run(e.Test.Name, func(t *testing.T) {
			ax := resultSetKeys(e.Test, AxiomaticAllowedSet(e.Test, PSO))
			op := resultSetKeys(e.Test, OperationalAllowedSet(e.Test, PSO))
			diff(t, e.Test.Name, PSO, ax, op)
		})
	}
}

// TestPSOAgreementRandom fuzzes the PSO equivalence like the TSO test.
func TestPSOAgreementRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := litmus.GenConfig{
		MinThreads: 2, MaxThreads: 3, MaxInstrs: 3,
		Locs: []litmus.Loc{"x", "y"}, FenceProb: 0.2,
	}
	n := 40
	if testing.Short() {
		n = 10
	}
	for i := 0; i < n; i++ {
		test := litmus.Generate(rng, cfg, "psofuzz")
		ax := resultSetKeys(test, AxiomaticAllowedSet(test, PSO))
		op := resultSetKeys(test, OperationalAllowedSet(test, PSO))
		if !diff(t, test.Name, PSO, ax, op) {
			t.Logf("failing test:\n%s", litmus.Format(test))
			return
		}
	}
}

// TestModelHierarchy: SC ⊆ TSO ⊆ PSO on every suite test (weaker models
// only add behaviours).
func TestModelHierarchy(t *testing.T) {
	for _, e := range litmus.Suite() {
		sc := resultSetKeys(e.Test, AxiomaticAllowedSet(e.Test, SC))
		tso := resultSetKeys(e.Test, AxiomaticAllowedSet(e.Test, TSO))
		pso := resultSetKeys(e.Test, AxiomaticAllowedSet(e.Test, PSO))
		for k := range sc {
			if !tso[k] {
				t.Errorf("%s: SC result %q not in TSO", e.Test.Name, k)
			}
		}
		for k := range tso {
			if !pso[k] {
				t.Errorf("%s: TSO result %q not in PSO", e.Test.Name, k)
			}
		}
	}
}

func TestPSOString(t *testing.T) {
	if PSO.String() != "PSO" {
		t.Errorf("PSO renders as %q", PSO.String())
	}
	if len(Models) != 3 {
		t.Errorf("Models = %v", Models)
	}
}
