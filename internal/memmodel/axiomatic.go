package memmodel

import (
	"perple/internal/hb"
	"perple/internal/litmus"
)

// AxiomaticResult is the outcome classification for one candidate
// execution: the register file and final memory it produces.
type AxiomaticResult struct {
	Regs [][]int64
	Mem  map[litmus.Loc]int64
}

// AxiomaticAllowedSet enumerates every candidate execution of the test,
// keeps those consistent with the model's axioms, and returns the set of
// distinct results they produce. The axioms follow herd's x86tso.cat:
//
//   - coherence ("uniproc"): po restricted to same-location accesses,
//     together with rf, ws and fr, must be acyclic (both models);
//   - SC: full po ∪ rf ∪ ws ∪ fr acyclic;
//   - TSO: ghb = ppo ∪ mfence ∪ rfe ∪ ws ∪ fr acyclic, where ppo is po
//     minus store→load pairs, mfence restores store→load order across a
//     fence, and rfe is external (cross-thread) read-from only — internal
//     forwarding does not globally order;
//   - PSO: as TSO, with ppo additionally dropping store→store pairs to
//     different locations (per-location store buffers).
func AxiomaticAllowedSet(t *litmus.Test, m Model) []AxiomaticResult {
	var opts hb.GraphOpts
	switch m {
	case TSO:
		opts = hb.GraphOpts{RelaxStoreLoad: true, ExternalRFOnly: true}
	case PSO:
		opts = hb.GraphOpts{RelaxStoreLoad: true, RelaxStoreStore: true, ExternalRFOnly: true}
	}
	seen := map[string]bool{}
	var out []AxiomaticResult
	hb.Enumerate(t, func(x *hb.Execution) {
		if x.CoherenceGraph().HasCycle() {
			return
		}
		if x.Graph(opts).HasCycle() {
			return
		}
		res := AxiomaticResult{Regs: x.RegisterFile(), Mem: x.FinalMemory()}
		key := resultKey(t, res)
		if !seen[key] {
			seen[key] = true
			out = append(out, res)
		}
	})
	return out
}

// AxiomaticAllowed reports whether outcome o of test t is allowed under
// model m, i.e. some axiom-consistent candidate execution satisfies it.
func AxiomaticAllowed(t *litmus.Test, o litmus.Outcome, m Model) bool {
	for _, res := range AxiomaticAllowedSet(t, m) {
		if o.HoldsFull(res.Regs, res.Mem) {
			return true
		}
	}
	return false
}

// AllowedOutcomes returns the subset of the test's full register-outcome
// space (litmus.Test.AllOutcomes) that model m allows.
func AllowedOutcomes(t *litmus.Test, m Model) []litmus.Outcome {
	results := AxiomaticAllowedSet(t, m)
	var out []litmus.Outcome
	for _, o := range t.AllOutcomes() {
		for _, res := range results {
			if o.HoldsFull(res.Regs, res.Mem) {
				out = append(out, o)
				break
			}
		}
	}
	return out
}

func resultKey(t *litmus.Test, res AxiomaticResult) string {
	key := make([]byte, 0, 64)
	for _, regs := range res.Regs {
		for _, v := range regs {
			key = appendInt(key, v)
		}
		key = append(key, '|')
	}
	key = append(key, '#')
	for _, loc := range t.Locs() {
		key = appendInt(key, res.Mem[loc])
	}
	return string(key)
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10), ',')
}
