package memmodel

import (
	"sort"

	"perple/internal/litmus"
)

// bufEntry is one pending store in a thread's store buffer.
type bufEntry struct {
	loc litmus.Loc
	val int64
}

// opState is a configuration of the operational machine.
type opState struct {
	pc   []int
	regs [][]int64
	bufs [][]bufEntry
	mem  []int64 // indexed by location index
}

// OperationalAllowedSet explores every interleaving of the operational
// machine for model m and returns the distinct final (register file,
// memory) results.
//
// The TSO machine is the x86-TSO abstract machine of Owens, Sarkar and
// Sewell: each thread owns a FIFO store buffer; a store enqueues; a
// nondeterministic drain step dequeues the oldest entry into shared
// memory; a load returns the newest same-location entry of its own buffer
// if any (store-to-load forwarding), else the memory value; MFENCE can
// execute only when the thread's buffer is empty. The PSO machine differs
// only in the drain step: any entry that is the oldest *for its location*
// may drain, so stores to different locations leave the buffer out of
// order. The SC machine writes memory directly and treats MFENCE as a
// no-op.
func OperationalAllowedSet(t *litmus.Test, m Model) []AxiomaticResult {
	locs := t.Locs()
	locIdx := make(map[litmus.Loc]int, len(locs))
	for i, l := range locs {
		locIdx[l] = i
	}

	init := opState{
		pc:   make([]int, len(t.Threads)),
		regs: make([][]int64, len(t.Threads)),
		bufs: make([][]bufEntry, len(t.Threads)),
		mem:  make([]int64, len(locs)),
	}
	for ti, n := range t.Regs() {
		init.regs[ti] = make([]int64, n)
	}
	for i, l := range locs {
		init.mem[i] = t.Init[l]
	}

	seen := map[string]bool{}
	finals := map[string]AxiomaticResult{}

	var visit func(s opState)
	visit = func(s opState) {
		key := encodeState(&s, locIdx)
		if seen[key] {
			return
		}
		seen[key] = true

		progressed := false
		for ti := range t.Threads {
			// Drain a store-buffer entry: under TSO only the oldest entry;
			// under PSO the oldest entry of each location.
			for _, di := range drainable(s.bufs[ti], m) {
				progressed = true
				n := cloneState(&s)
				e := n.bufs[ti][di]
				n.bufs[ti] = append(append([]bufEntry(nil), n.bufs[ti][:di]...), n.bufs[ti][di+1:]...)
				n.mem[locIdx[e.loc]] = e.val
				visit(*n)
			}
			// Execute the next instruction.
			if s.pc[ti] >= len(t.Threads[ti].Instrs) {
				continue
			}
			in := t.Threads[ti].Instrs[s.pc[ti]]
			switch in.Kind {
			case litmus.OpStore:
				progressed = true
				n := cloneState(&s)
				if m == SC {
					n.mem[locIdx[in.Loc]] = in.Value
				} else {
					n.bufs[ti] = append(append([]bufEntry(nil), n.bufs[ti]...), bufEntry{in.Loc, in.Value})
				}
				n.pc[ti]++
				visit(*n)
			case litmus.OpLoad:
				progressed = true
				n := cloneState(&s)
				v, forwarded := int64(0), false
				if m != SC {
					for i := len(n.bufs[ti]) - 1; i >= 0; i-- {
						if n.bufs[ti][i].loc == in.Loc {
							v, forwarded = n.bufs[ti][i].val, true
							break
						}
					}
				}
				if !forwarded {
					v = n.mem[locIdx[in.Loc]]
				}
				n.regs[ti][in.Reg] = v
				n.pc[ti]++
				visit(*n)
			case litmus.OpFence:
				if m == SC || len(s.bufs[ti]) == 0 {
					progressed = true
					n := cloneState(&s)
					n.pc[ti]++
					visit(*n)
				}
			}
		}

		if !progressed {
			// Terminal: all threads done and all buffers drained.
			res := AxiomaticResult{Regs: s.regs, Mem: map[litmus.Loc]int64{}}
			for i, l := range locs {
				res.Mem[l] = s.mem[i]
			}
			k := resultKey(t, res)
			if _, ok := finals[k]; !ok {
				finals[k] = res
			}
		}
	}
	visit(init)

	keys := make([]string, 0, len(finals))
	for k := range finals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]AxiomaticResult, len(keys))
	for i, k := range keys {
		out[i] = finals[k]
	}
	return out
}

// OperationalAllowed reports whether some interleaving of the operational
// machine satisfies outcome o.
func OperationalAllowed(t *litmus.Test, o litmus.Outcome, m Model) bool {
	for _, res := range OperationalAllowedSet(t, m) {
		if o.HoldsFull(res.Regs, res.Mem) {
			return true
		}
	}
	return false
}

// drainable returns the buffer indices eligible to drain next: index 0
// under TSO's single FIFO, the first entry of every location under PSO's
// per-location queues. SC buffers are always empty.
func drainable(buf []bufEntry, m Model) []int {
	if len(buf) == 0 {
		return nil
	}
	if m != PSO {
		return []int{0}
	}
	var idxs []int
	seen := map[litmus.Loc]bool{}
	for i, e := range buf {
		if !seen[e.loc] {
			seen[e.loc] = true
			idxs = append(idxs, i)
		}
	}
	return idxs
}

func cloneState(s *opState) *opState {
	n := &opState{
		pc:   append([]int(nil), s.pc...),
		regs: make([][]int64, len(s.regs)),
		bufs: make([][]bufEntry, len(s.bufs)),
		mem:  append([]int64(nil), s.mem...),
	}
	for i, r := range s.regs {
		n.regs[i] = append([]int64(nil), r...)
	}
	for i, b := range s.bufs {
		n.bufs[i] = append([]bufEntry(nil), b...)
	}
	return n
}

func encodeState(s *opState, locIdx map[litmus.Loc]int) string {
	b := make([]byte, 0, 128)
	for _, pc := range s.pc {
		b = appendInt(b, int64(pc))
	}
	b = append(b, '/')
	for _, regs := range s.regs {
		for _, v := range regs {
			b = appendInt(b, v)
		}
		b = append(b, '|')
	}
	b = append(b, '/')
	for _, buf := range s.bufs {
		for _, e := range buf {
			b = appendInt(b, int64(locIdx[e.loc]))
			b = append(b, ':')
			b = appendInt(b, e.val)
		}
		b = append(b, '|')
	}
	b = append(b, '/')
	for _, v := range s.mem {
		b = appendInt(b, v)
	}
	return string(b)
}
