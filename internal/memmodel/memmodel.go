// Package memmodel decides which litmus test outcomes are allowed under
// sequential consistency and under x86-TSO. It plays the role the herd
// simulator plays in the PerpLE paper (classifying Table II targets as
// allowed or forbidden) and doubles as an internal soundness oracle: the
// axiomatic checker (axiomatic.go, built on happens-before graphs) and an
// independent operational enumerator (operational.go, an explicit
// store-buffer machine) must agree, and everything the simulated machine
// in internal/sim produces must be allowed here.
package memmodel

import "fmt"

// Model selects a memory consistency model.
type Model int

const (
	// SC is Lamport sequential consistency: a single interleaving of all
	// threads' operations in program order.
	SC Model = iota
	// TSO is total store ordering as implemented by x86 processors:
	// per-thread FIFO store buffers with store-to-load forwarding and a
	// single global order of stores.
	TSO
	// PSO is SPARC partial store ordering: per-thread, per-location store
	// buffers, so stores to different locations may drain out of program
	// order (W→W relaxed) in addition to TSO's W→R relaxation. Used by
	// the fault-injection experiment: a machine claiming TSO but
	// implementing PSO is a conformance bug PerpLE must catch.
	PSO
)

// Models lists the supported models from strongest to weakest.
var Models = []Model{SC, TSO, PSO}

func (m Model) String() string {
	switch m {
	case SC:
		return "SC"
	case TSO:
		return "TSO"
	case PSO:
		return "PSO"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}
