package memmodel

import (
	"testing"

	"perple/internal/litmus"
)

// TestCycleClassification cross-validates the diy-style generator against
// the model checkers: a critical cycle's target is SC-forbidden by
// construction, and it is allowed under a weaker model exactly when the
// model relaxes at least one of the cycle's program-order edges (PodWR
// under TSO; PodWR or PodWW under PSO).
//
// The iff holds for cycles in which each thread contributes at most two
// accesses (one program-order edge) — Shasha & Snir's critical-cycle
// shape. Longer per-thread segments have model-internal shortcuts (TSO
// relaxes W→R but a W→R→W segment stays ordered end-to-end via W→W), so
// the enumeration skips cycles with two consecutive program-order edges.
// Wse edges are likewise skipped (the test covers them separately via
// TestCycleMatchesSuite's final-state-pinned classics).
func TestCycleClassification(t *testing.T) {
	alphabet := []litmus.EdgeSpec{
		litmus.Rfe, litmus.Fre,
		litmus.PodWR, litmus.PodRR, litmus.PodRW, litmus.PodWW,
		litmus.FencedWR, litmus.FencedWW,
	}
	checked := 0
	for _, length := range []int{4, 5} {
		checked += checkCyclesOfLength(t, alphabet, length)
	}
	if checked < 30 {
		t.Fatalf("only %d cycles checked; enumeration broken", checked)
	}
	t.Logf("checked %d cycles", checked)
}

func checkCyclesOfLength(t *testing.T, alphabet []litmus.EdgeSpec, length int) int {
	t.Helper()
	idx := make([]int, length)
	checked := 0
	for {
		edges := make([]litmus.EdgeSpec, length)
		for i, j := range idx {
			edges[i] = alphabet[j]
		}
		// Critical-cycle restriction: no two consecutive po edges
		// (including the wrap-around pair).
		critical := true
		for i := range edges {
			if !edges[i].External() && !edges[(i+1)%len(edges)].External() {
				critical = false
			}
		}
		if test, err := litmus.FromCycle("cyc", edges...); critical && err == nil {
			checked++
			hasWR, hasWW := false, false
			for _, e := range edges {
				if e == litmus.PodWR {
					hasWR = true
				}
				if e == litmus.PodWW {
					hasWW = true
				}
			}
			if AxiomaticAllowed(test, test.Target, SC) {
				t.Errorf("cycle %v: target SC-allowed; cycles must be SC-forbidden", edges)
			}
			if got := AxiomaticAllowed(test, test.Target, TSO); got != hasWR {
				t.Errorf("cycle %v: TSO-allowed = %v, want %v (PodWR present = %v)",
					edges, got, hasWR, hasWR)
			}
			if got := AxiomaticAllowed(test, test.Target, PSO); got != (hasWR || hasWW) {
				t.Errorf("cycle %v: PSO-allowed = %v, want %v", edges, got, hasWR || hasWW)
			}
		}
		i := length - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(alphabet) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return checked
		}
	}
}

// TestCycleMatchesSuite: the classic cycles reproduce the classification
// of their hand-written suite counterparts.
func TestCycleMatchesSuite(t *testing.T) {
	cases := []struct {
		suiteName string
		cycle     []litmus.EdgeSpec
	}{
		{"sb", []litmus.EdgeSpec{litmus.PodWR, litmus.Fre, litmus.PodWR, litmus.Fre}},
		{"mp", []litmus.EdgeSpec{litmus.PodWW, litmus.Rfe, litmus.PodRR, litmus.Fre}},
		{"iriw", []litmus.EdgeSpec{litmus.Rfe, litmus.PodRR, litmus.Fre, litmus.Rfe, litmus.PodRR, litmus.Fre}},
		{"wrc", []litmus.EdgeSpec{litmus.Rfe, litmus.PodRW, litmus.Rfe, litmus.PodRR, litmus.Fre}},
		{"amd5", []litmus.EdgeSpec{litmus.FencedWR, litmus.Fre, litmus.FencedWR, litmus.Fre}},
	}
	for _, c := range cases {
		suiteTest, err := litmus.SuiteTest(c.suiteName)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := litmus.FromCycle("gen-"+c.suiteName, c.cycle...)
		if err != nil {
			t.Fatalf("%s: %v", c.suiteName, err)
		}
		for _, m := range []Model{SC, TSO, PSO} {
			want := AxiomaticAllowed(suiteTest, suiteTest.Target, m)
			got := AxiomaticAllowed(gen, gen.Target, m)
			if got != want {
				t.Errorf("%s under %v: generated %v, suite %v", c.suiteName, m, got, want)
			}
		}
		if gen.T() != suiteTest.T() || gen.TL() != suiteTest.TL() {
			t.Errorf("%s: generated [T,TL]=[%d,%d], suite [%d,%d]",
				c.suiteName, gen.T(), gen.TL(), suiteTest.T(), suiteTest.TL())
		}
	}
}
