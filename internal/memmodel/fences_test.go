package memmodel

import (
	"testing"

	"perple/internal/litmus"
)

// TestFullFencingRestoresSC is the classic theorem as an oracle: a test
// with an MFENCE between every pair of accesses has the same register-
// outcome set under TSO (and PSO) as the original test has under SC.
// Checked over the whole suite with both model implementations.
func TestFullFencingRestoresSC(t *testing.T) {
	for _, e := range litmus.Suite() {
		e := e
		t.Run(e.Test.Name, func(t *testing.T) {
			fenced := litmus.WithFences(e.Test)
			if err := fenced.Validate(); err != nil {
				t.Fatal(err)
			}
			scSet := outcomeKeySet(AllowedOutcomes(e.Test, SC))
			for _, m := range []Model{TSO, PSO} {
				fencedSet := outcomeKeySet(AllowedOutcomes(fenced, m))
				if len(fencedSet) != len(scSet) {
					t.Errorf("%v: fenced outcome set has %d entries, SC has %d",
						m, len(fencedSet), len(scSet))
				}
				for k := range scSet {
					if !fencedSet[k] {
						t.Errorf("%v: SC outcome %q missing from fenced set", m, k)
					}
				}
				for k := range fencedSet {
					if !scSet[k] {
						t.Errorf("%v: fenced set wrongly contains %q", m, k)
					}
				}
			}
		})
	}
}

func outcomeKeySet(outs []litmus.Outcome) map[string]bool {
	set := map[string]bool{}
	for _, o := range outs {
		set[o.Key()] = true
	}
	return set
}

func TestWithFencesStructure(t *testing.T) {
	sb, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	fenced := litmus.WithFences(sb)
	if fenced.Name != "sb+mfences" {
		t.Errorf("name = %q", fenced.Name)
	}
	// sb: store;load per thread -> store;fence;load.
	for ti, th := range fenced.Threads {
		if len(th.Instrs) != 3 || th.Instrs[1].Kind != litmus.OpFence {
			t.Errorf("thread %d: %v", ti, th.Instrs)
		}
	}
	// Existing fences are not duplicated.
	amd5, err := litmus.SuiteTest("amd5")
	if err != nil {
		t.Fatal(err)
	}
	refenced := litmus.WithFences(amd5)
	for ti, th := range refenced.Threads {
		for i := 1; i < len(th.Instrs); i++ {
			if th.Instrs[i].Kind == litmus.OpFence && th.Instrs[i-1].Kind == litmus.OpFence {
				t.Errorf("thread %d has consecutive fences: %v", ti, th.Instrs)
			}
		}
	}
	// The original is untouched.
	if len(sb.Threads[0].Instrs) != 2 {
		t.Error("WithFences mutated its input")
	}
}

func TestRelabelLocations(t *testing.T) {
	sb, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	out, err := litmus.RelabelLocations(sb, map[litmus.Loc]litmus.Loc{"x": "a", "y": "b"})
	if err != nil {
		t.Fatal(err)
	}
	locs := out.Locs()
	if len(locs) != 2 || locs[0] != "a" || locs[1] != "b" {
		t.Errorf("locs = %v", locs)
	}
	// Classification is invariant under relabeling.
	if AxiomaticAllowed(out, out.Target, TSO) != AxiomaticAllowed(sb, sb.Target, TSO) {
		t.Error("relabeling changed the TSO classification")
	}
	// Collapsing two locations is rejected.
	if _, err := litmus.RelabelLocations(sb, map[litmus.Loc]litmus.Loc{"x": "y"}); err == nil {
		t.Error("collapse accepted")
	}
}
