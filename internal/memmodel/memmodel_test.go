package memmodel

import (
	"math/rand"
	"testing"

	"perple/internal/litmus"
)

func mustTest(t *testing.T, name string) *litmus.Test {
	t.Helper()
	test, err := litmus.SuiteTest(name)
	if err != nil {
		t.Fatal(err)
	}
	return test
}

// TestTableIIClassification is the reproduction of Table II's grouping:
// every suite target must be allowed/forbidden under x86-TSO exactly as
// the paper lists, and every allowed-group target must additionally be
// SC-forbidden (it demonstrates store buffering, which is what makes it a
// "target outcome").
func TestTableIIClassification(t *testing.T) {
	for _, e := range litmus.Suite() {
		e := e
		t.Run(e.Test.Name, func(t *testing.T) {
			tsoAllowed := AxiomaticAllowed(e.Test, e.Test.Target, TSO)
			if tsoAllowed != e.Allowed {
				t.Errorf("TSO allows target = %v, Table II says %v", tsoAllowed, e.Allowed)
			}
			if e.Allowed {
				if AxiomaticAllowed(e.Test, e.Test.Target, SC) {
					t.Errorf("allowed-group target is SC-allowed; it would not demonstrate store buffering")
				}
			}
		})
	}
}

// TestOperationalMatchesAxiomaticOnSuite cross-validates the two
// independent model implementations on every suite test and both models.
func TestOperationalMatchesAxiomaticOnSuite(t *testing.T) {
	for _, e := range litmus.Suite() {
		e := e
		t.Run(e.Test.Name, func(t *testing.T) {
			for _, m := range []Model{SC, TSO} {
				ax := resultSetKeys(e.Test, AxiomaticAllowedSet(e.Test, m))
				op := resultSetKeys(e.Test, OperationalAllowedSet(e.Test, m))
				diff(t, e.Test.Name, m, ax, op)
			}
		})
	}
}

// TestOperationalMatchesAxiomaticOnRandomTests fuzzes the equivalence on
// generator output with small shapes (the state spaces stay tractable).
func TestOperationalMatchesAxiomaticOnRandomTests(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := litmus.GenConfig{
		MinThreads: 2, MaxThreads: 3, MaxInstrs: 3,
		Locs: []litmus.Loc{"x", "y"}, FenceProb: 0.2,
	}
	n := 60
	if testing.Short() {
		n = 15
	}
	for i := 0; i < n; i++ {
		test := litmus.Generate(rng, cfg, "fuzz")
		for _, m := range []Model{SC, TSO} {
			ax := resultSetKeys(test, AxiomaticAllowedSet(test, m))
			op := resultSetKeys(test, OperationalAllowedSet(test, m))
			if !diff(t, test.Name, m, ax, op) {
				t.Logf("failing test:\n%s", litmus.Format(test))
				return
			}
		}
	}
}

func resultSetKeys(t *litmus.Test, rs []AxiomaticResult) map[string]bool {
	keys := map[string]bool{}
	for _, r := range rs {
		keys[resultKey(t, r)] = true
	}
	return keys
}

func diff(t *testing.T, name string, m Model, ax, op map[string]bool) bool {
	t.Helper()
	ok := true
	for k := range ax {
		if !op[k] {
			t.Errorf("%s/%v: axiomatic allows %q, operational does not", name, m, k)
			ok = false
		}
	}
	for k := range op {
		if !ax[k] {
			t.Errorf("%s/%v: operational allows %q, axiomatic does not", name, m, k)
			ok = false
		}
	}
	return ok
}

// TestSCSubsetOfTSO: everything SC allows, TSO allows (TSO only relaxes).
func TestSCSubsetOfTSO(t *testing.T) {
	for _, e := range litmus.Suite() {
		sc := resultSetKeys(e.Test, AxiomaticAllowedSet(e.Test, SC))
		tso := resultSetKeys(e.Test, AxiomaticAllowedSet(e.Test, TSO))
		for k := range sc {
			if !tso[k] {
				t.Errorf("%s: SC result %q not TSO-allowed", e.Test.Name, k)
			}
		}
	}
}

func TestSBOutcomeSets(t *testing.T) {
	sb := mustTest(t, "sb")
	scOut := AllowedOutcomes(sb, SC)
	tsoOut := AllowedOutcomes(sb, TSO)
	if len(scOut) != 3 {
		t.Errorf("SC allows %d sb outcomes, want 3 (all but 0,0)", len(scOut))
	}
	if len(tsoOut) != 4 {
		t.Errorf("TSO allows %d sb outcomes, want 4 (all)", len(tsoOut))
	}
	// The target (0,0) is the TSO-only one.
	found := false
	for _, o := range tsoOut {
		if o.Equal(sb.Target) {
			found = true
		}
	}
	if !found {
		t.Error("TSO outcome set misses the sb target")
	}
	for _, o := range scOut {
		if o.Equal(sb.Target) {
			t.Error("SC outcome set wrongly contains the sb target")
		}
	}
}

func TestLBForbiddenBothModels(t *testing.T) {
	lb := mustTest(t, "lb")
	for _, m := range []Model{SC, TSO} {
		if AxiomaticAllowed(lb, lb.Target, m) {
			t.Errorf("lb target allowed under %v", m)
		}
	}
	// But the all-zero outcome is allowed everywhere.
	zero := litmus.Outcome{Conds: []litmus.Cond{
		{Thread: 0, Reg: 0, Value: 0}, {Thread: 1, Reg: 0, Value: 0},
	}}
	for _, m := range []Model{SC, TSO} {
		if !AxiomaticAllowed(lb, zero, m) {
			t.Errorf("lb zero outcome forbidden under %v", m)
		}
	}
}

func TestFencesRestoreSC(t *testing.T) {
	// amd5 is sb with fences: its outcome set must equal sb's SC set.
	amd5 := mustTest(t, "amd5")
	sb := mustTest(t, "sb")
	fenced := AllowedOutcomes(amd5, TSO)
	sc := AllowedOutcomes(sb, SC)
	if len(fenced) != len(sc) {
		t.Fatalf("amd5 under TSO allows %d outcomes, sb under SC allows %d", len(fenced), len(sc))
	}
}

func TestFinalMemoryConditions(t *testing.T) {
	for _, test := range litmus.NonConvertible() {
		test := test
		t.Run(test.Name, func(t *testing.T) {
			// Every non-convertible example target must at least be
			// decidable; coww's target (final x=1 after x=1;x=2 in program
			// order) is forbidden under both models.
			if test.Name == "coww" {
				if AxiomaticAllowed(test, test.Target, TSO) {
					t.Error("coww target should be forbidden under TSO")
				}
				if OperationalAllowed(test, test.Target, TSO) {
					t.Error("coww target should be operationally impossible under TSO")
				}
			}
			// 2+2w's target needs store-store reordering, which TSO's FIFO
			// buffers forbid; both checkers must agree.
			if test.Name == "2+2w" {
				if AxiomaticAllowed(test, test.Target, TSO) {
					t.Error("2+2w final state x=1,y=1 should be TSO-forbidden")
				}
				if OperationalAllowed(test, test.Target, TSO) {
					t.Error("2+2w target should be operationally impossible under TSO")
				}
			}
		})
	}
}

func TestModelString(t *testing.T) {
	if SC.String() != "SC" || TSO.String() != "TSO" {
		t.Error("model names wrong")
	}
	if Model(9).String() == "" {
		t.Error("unknown model should still render")
	}
}
