package hb

import (
	"strings"
	"testing"

	"perple/internal/litmus"
)

func sb(t *testing.T) *litmus.Test {
	t.Helper()
	test, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	return test
}

func TestEventsOf(t *testing.T) {
	events := EventsOf(sb(t))
	if len(events) != 5 {
		t.Fatalf("sb has %d events, want 5 (init + 4)", len(events))
	}
	if !events[0].IsInit() {
		t.Error("event 0 should be init")
	}
	if events[0].String() != "init" {
		t.Errorf("init string = %q", events[0].String())
	}
	if got := EventID(events, 1, 0); got != 3 {
		t.Errorf("EventID(1,0) = %d, want 3", got)
	}
	if got := EventID(events, 5, 0); got != -1 {
		t.Errorf("EventID of absent instruction = %d, want -1", got)
	}
	if events[1].String() != "i00" {
		t.Errorf("event 1 string = %q, want i00", events[1].String())
	}
}

func TestGraphCycleDetection(t *testing.T) {
	events := make([]Event, 4)
	g := NewGraph(events)
	g.AddEdge(0, 1, Po)
	g.AddEdge(1, 2, Rf)
	g.AddEdge(2, 3, Ws)
	if g.HasCycle() {
		t.Error("acyclic graph reported cyclic")
	}
	g.AddEdge(3, 1, Fr)
	if !g.HasCycle() {
		t.Error("cycle 1->2->3->1 not detected")
	}
}

func TestGraphReachable(t *testing.T) {
	g := NewGraph(make([]Event, 4))
	g.AddEdge(0, 1, Po)
	g.AddEdge(1, 2, Po)
	if !g.Reachable(0, 2) {
		t.Error("0 should reach 2")
	}
	if g.Reachable(2, 0) {
		t.Error("2 should not reach 0")
	}
	if !g.Reachable(3, 3) {
		t.Error("node should reach itself")
	}
}

func TestEdgeKindStrings(t *testing.T) {
	for kind, want := range map[EdgeKind]string{
		Po: "po", Rf: "rf", Ws: "ws", Fr: "fr", FenceOrd: "mfence",
	} {
		if kind.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), kind.String(), want)
		}
	}
}

// TestSBTargetGraph reconstructs the paper's Figure 6 happens-before
// analysis for the sb target outcome: both loads read the initial value,
// giving fr edges i01->i10 and i11->i00, which close a cycle with full
// program order (SC-forbidden) but not with store->load order relaxed
// (TSO-allowed).
func TestSBTargetGraph(t *testing.T) {
	test := sb(t)
	events := EventsOf(test)
	x := &Execution{
		Test:   test,
		Events: events,
		RF: map[int]int{
			EventID(events, 0, 1): 0, // i01 reads init y
			EventID(events, 1, 1): 0, // i11 reads init x
		},
		WS: map[litmus.Loc][]int{
			"x": {EventID(events, 0, 0)},
			"y": {EventID(events, 1, 0)},
		},
	}
	scGraph := x.Graph(GraphOpts{})
	if !scGraph.HasCycle() {
		t.Error("sb target should be cyclic under full po (SC-forbidden)")
	}
	tsoGraph := x.Graph(GraphOpts{RelaxStoreLoad: true, ExternalRFOnly: true})
	if tsoGraph.HasCycle() {
		t.Error("sb target should be acyclic with store->load relaxed (TSO-allowed)")
	}
	// The SC graph must contain both fr edges of Figure 6.
	s := scGraph.String()
	for _, want := range []string{"i01 -fr-> i10", "i11 -fr-> i00"} {
		if !strings.Contains(s, want) {
			t.Errorf("graph missing edge %q:\n%s", want, s)
		}
	}
}

func TestExecutionValueAndRegisters(t *testing.T) {
	test := sb(t)
	events := EventsOf(test)
	x := &Execution{
		Test:   test,
		Events: events,
		RF: map[int]int{
			EventID(events, 0, 1): EventID(events, 1, 0), // i01 reads y=1
			EventID(events, 1, 1): 0,                     // i11 reads init x
		},
		WS: map[litmus.Loc][]int{
			"x": {EventID(events, 0, 0)},
			"y": {EventID(events, 1, 0)},
		},
	}
	if v := x.Value(EventID(events, 0, 1)); v != 1 {
		t.Errorf("i01 value = %d, want 1", v)
	}
	if v := x.Value(EventID(events, 1, 1)); v != 0 {
		t.Errorf("i11 value = %d, want 0", v)
	}
	regs := x.RegisterFile()
	if regs[0][0] != 1 || regs[1][0] != 0 {
		t.Errorf("register file = %v, want [[1] [0]]", regs)
	}
	mem := x.FinalMemory()
	if mem["x"] != 1 || mem["y"] != 1 {
		t.Errorf("final memory = %v, want x=1 y=1", mem)
	}
}

func TestFenceOrdEdges(t *testing.T) {
	test, err := litmus.SuiteTest("amd5")
	if err != nil {
		t.Fatal(err)
	}
	events := EventsOf(test)
	x := &Execution{
		Test:   test,
		Events: events,
		RF: map[int]int{
			EventID(events, 0, 2): 0,
			EventID(events, 1, 2): 0,
		},
		WS: map[litmus.Loc][]int{
			"x": {EventID(events, 0, 0)},
			"y": {EventID(events, 1, 0)},
		},
	}
	g := x.Graph(GraphOpts{RelaxStoreLoad: true, ExternalRFOnly: true})
	if !strings.Contains(g.String(), "i00 -mfence-> i02") {
		t.Errorf("fence edge missing:\n%s", g.String())
	}
	if !g.HasCycle() {
		t.Error("amd5 target must stay cyclic under TSO thanks to fences")
	}
}

func TestCoherenceGraphRejectsStaleRead(t *testing.T) {
	test, err := litmus.SuiteTest("safe006")
	if err != nil {
		t.Fatal(err)
	}
	events := EventsOf(test)
	// Thread 0 reads 2 then its own older 1: coherence cycle.
	x := &Execution{
		Test:   test,
		Events: events,
		RF: map[int]int{
			EventID(events, 0, 1): EventID(events, 1, 0), // r0 <- x = 2
			EventID(events, 0, 2): EventID(events, 0, 0), // r1 <- x = 1 (stale)
			EventID(events, 1, 1): EventID(events, 1, 0), // partner sees 2
		},
		WS: map[litmus.Loc][]int{
			"x": {EventID(events, 0, 0), EventID(events, 1, 0)}, // ws: 1 then 2
		},
	}
	if !x.CoherenceGraph().HasCycle() {
		t.Error("stale re-read should create a coherence cycle")
	}
}

func TestEnumerateCountsSB(t *testing.T) {
	// sb: 2 loads with 2 rf choices each, singleton ws per location
	// => 4 candidate executions.
	count := 0
	Enumerate(sb(t), func(*Execution) { count++ })
	if count != 4 {
		t.Errorf("sb candidate executions = %d, want 4", count)
	}
	// amd3: loads: Ry (2 choices: init, Sy), Rx (3 choices: init, Sx1,
	// Sx2); ws(x) has 2 permutations => 2*3*2 = 12.
	amd3, err := litmus.SuiteTest("amd3")
	if err != nil {
		t.Fatal(err)
	}
	count = 0
	Enumerate(amd3, func(*Execution) { count++ })
	if count != 12 {
		t.Errorf("amd3 candidate executions = %d, want 12", count)
	}
}

func TestPermutations(t *testing.T) {
	if got := permutations(nil); len(got) != 1 || got[0] != nil {
		t.Errorf("permutations(nil) = %v", got)
	}
	if got := permutations([]int{1, 2, 3}); len(got) != 6 {
		t.Errorf("permutations of 3 = %d, want 6", len(got))
	}
}
