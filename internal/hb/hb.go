// Package hb implements happens-before graphs over litmus test memory
// events (Section II-B2 of the PerpLE paper, after Alglave's formal
// hierarchy): program-order (po), read-from (rf), write-serialization
// (ws) and from-read (fr) edges, plus fence-induced ordering, with cycle
// detection. It is the foundation of the axiomatic memory-model checker
// in internal/memmodel and of the Converter's outcome analysis in
// internal/core.
package hb

import (
	"fmt"
	"sort"
	"strings"

	"perple/internal/litmus"
)

// EdgeKind classifies a happens-before edge.
type EdgeKind int

const (
	// Po is program order: a sequential processor executes the source
	// before the destination.
	Po EdgeKind = iota
	// Rf is read-from: the destination load reads the value written by the
	// source store.
	Rf
	// Ws is write serialization: both events store to the same location
	// and the source takes effect first.
	Ws
	// Fr is from-read: the source load reads a value overwritten by the
	// destination store.
	Fr
	// FenceOrd is the ordering a fence restores between a store and a
	// later load of the same thread (x86 MFENCE).
	FenceOrd
)

func (k EdgeKind) String() string {
	switch k {
	case Po:
		return "po"
	case Rf:
		return "rf"
	case Ws:
		return "ws"
	case Fr:
		return "fr"
	case FenceOrd:
		return "mfence"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Event is a single memory event: one dynamic execution of a load or
// store instruction. Thread and Index identify the instruction; the
// instruction itself is duplicated for convenience. The special event
// with Thread == -1 represents the initial store of 0 to every location.
type Event struct {
	Thread int
	Index  int
	Instr  litmus.Instr
}

// IsInit reports whether the event is the initial-state pseudo-store.
func (e Event) IsInit() bool { return e.Thread < 0 }

func (e Event) String() string {
	if e.IsInit() {
		return "init"
	}
	return fmt.Sprintf("i%d%d", e.Thread, e.Index)
}

// Edge is a directed happens-before edge between two event IDs.
type Edge struct {
	From, To int
	Kind     EdgeKind
}

// Graph is a happens-before graph: a fixed event set plus a growing edge
// set. Event IDs are indices into Events.
type Graph struct {
	Events []Event
	adj    [][]Edge
}

// NewGraph creates a graph over the given events with no edges.
func NewGraph(events []Event) *Graph {
	return &Graph{Events: events, adj: make([][]Edge, len(events))}
}

// AddEdge inserts a directed edge; duplicate edges are permitted and
// harmless.
func (g *Graph) AddEdge(from, to int, kind EdgeKind) {
	g.adj[from] = append(g.adj[from], Edge{From: from, To: to, Kind: kind})
}

// Edges returns all edges in insertion order grouped by source event.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, es := range g.adj {
		out = append(out, es...)
	}
	return out
}

// Succs returns the out-edges of event id.
func (g *Graph) Succs(id int) []Edge { return g.adj[id] }

// HasCycle reports whether the edge set contains a directed cycle,
// ignoring self-loops on the init pseudo-event (which never occur in
// well-formed graphs anyway).
func (g *Graph) HasCycle() bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]int, len(g.Events))
	for root := range g.Events {
		if color[root] != white {
			continue
		}
		// Iterative DFS with an explicit edge cursor.
		type frame struct{ node, next int }
		frames := []frame{{root, 0}}
		color[root] = grey
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.next < len(g.adj[f.node]) {
				to := g.adj[f.node][f.next].To
				f.next++
				switch color[to] {
				case grey:
					return true
				case white:
					color[to] = grey
					frames = append(frames, frame{to, 0})
				}
				continue
			}
			color[f.node] = black
			frames = frames[:len(frames)-1]
		}
	}
	return false
}

// Reachable reports whether to is reachable from from following edges.
func (g *Graph) Reachable(from, to int) bool {
	if from == to {
		return true
	}
	seen := make([]bool, len(g.Events))
	work := []int{from}
	seen[from] = true
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range g.adj[n] {
			if e.To == to {
				return true
			}
			if !seen[e.To] {
				seen[e.To] = true
				work = append(work, e.To)
			}
		}
	}
	return false
}

// String renders the graph as one edge per line, sorted, for debugging
// and golden tests.
func (g *Graph) String() string {
	var lines []string
	for _, e := range g.Edges() {
		lines = append(lines, fmt.Sprintf("%s -%s-> %s",
			g.Events[e.From], e.Kind, g.Events[e.To]))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// Events enumerates the memory events of one iteration of every thread of
// a test, in (thread, index) order, preceded by the init pseudo-event at
// ID 0. Fences are included as events (they participate in po and
// FenceOrd derivation) and are skipped by memory-order construction.
func EventsOf(t *litmus.Test) []Event {
	events := []Event{{Thread: -1, Index: -1}}
	for ti, th := range t.Threads {
		for ii, in := range th.Instrs {
			events = append(events, Event{Thread: ti, Index: ii, Instr: in})
		}
	}
	return events
}

// EventID returns the graph ID of instruction (thread, index) within the
// event slice produced by EventsOf, or -1 if absent.
func EventID(events []Event, thread, index int) int {
	for id, e := range events {
		if e.Thread == thread && e.Index == index {
			return id
		}
	}
	return -1
}
