package hb

import (
	"fmt"

	"perple/internal/litmus"
)

// Execution is a candidate execution of one iteration of a litmus test: a
// read-from assignment for every load (which store event, possibly init,
// each load reads) and a write-serialization order for every location.
// Together with the fixed program order, an Execution determines every
// happens-before edge.
type Execution struct {
	Test   *litmus.Test
	Events []Event
	// RF maps the event ID of each load to the event ID of the store it
	// reads (ID 0 = init).
	RF map[int]int
	// WS maps each location to the event IDs of its stores in
	// serialization order. The init pseudo-store (ID 0) is implicitly
	// first and omitted.
	WS map[litmus.Loc][]int
}

// Value returns the value a load event reads under this execution.
func (x *Execution) Value(loadID int) int64 {
	src := x.RF[loadID]
	if src == 0 {
		return x.Test.Init[x.Events[loadID].Instr.Loc]
	}
	return x.Events[src].Instr.Value
}

// RegisterFile returns the final per-thread register values implied by
// the execution: for each register, the value of its last load in program
// order.
func (x *Execution) RegisterFile() [][]int64 {
	regs := make([][]int64, len(x.Test.Threads))
	for ti, n := range x.Test.Regs() {
		regs[ti] = make([]int64, n)
	}
	for id, e := range x.Events {
		if e.IsInit() || e.Instr.Kind != litmus.OpLoad {
			continue
		}
		regs[e.Thread][e.Instr.Reg] = x.Value(id)
	}
	return regs
}

// FinalMemory returns the final value of every location: the last store
// in ws order, or the initial value if never stored.
func (x *Execution) FinalMemory() map[litmus.Loc]int64 {
	mem := map[litmus.Loc]int64{}
	for _, loc := range x.Test.Locs() {
		mem[loc] = x.Test.Init[loc]
	}
	for loc, stores := range x.WS {
		if len(stores) > 0 {
			mem[loc] = x.Events[stores[len(stores)-1]].Instr.Value
		}
	}
	return mem
}

// wsPos returns the position of a store event in its location's
// serialization order; init is position -1.
func (x *Execution) wsPos(storeID int) int {
	if storeID == 0 {
		return -1
	}
	loc := x.Events[storeID].Instr.Loc
	for i, id := range x.WS[loc] {
		if id == storeID {
			return i
		}
	}
	panic(fmt.Sprintf("hb: store %v not in ws order of %s", x.Events[storeID], loc))
}

// GraphOpts selects which edges Graph builds, so one Execution can be
// checked against different memory models.
type GraphOpts struct {
	// RelaxStoreLoad omits po edges from a store to a po-later load
	// (unless an MFENCE separates them), modelling TSO's store buffering.
	// With it false the graph carries full program order (SC).
	RelaxStoreLoad bool
	// RelaxStoreStore additionally omits po edges between stores to
	// different locations (unless fenced), modelling PSO's per-location
	// store buffers. Same-location store order (coherence) is always
	// preserved.
	RelaxStoreStore bool
	// ExternalRFOnly omits rf edges within a single thread, modelling
	// store-to-load forwarding: an internal read does not prove the store
	// reached memory.
	ExternalRFOnly bool
}

// Graph constructs the happens-before graph of the execution under the
// given options: program order (possibly relaxed), fence order, rf
// (possibly external-only), ws, and derived fr edges.
func (x *Execution) Graph(opts GraphOpts) *Graph {
	g := NewGraph(x.Events)

	// Program order and fence order, per thread.
	for ti := range x.Test.Threads {
		var ids []int
		for id, e := range x.Events {
			if e.Thread == ti {
				ids = append(ids, id)
			}
		}
		for i := 0; i < len(ids); i++ {
			ei := x.Events[ids[i]]
			if ei.Instr.Kind == litmus.OpFence {
				continue
			}
			fenced := false
			for j := i + 1; j < len(ids); j++ {
				ej := x.Events[ids[j]]
				if ej.Instr.Kind == litmus.OpFence {
					fenced = true
					continue
				}
				relaxed := false
				if ei.Instr.Kind == litmus.OpStore {
					switch ej.Instr.Kind {
					case litmus.OpLoad:
						relaxed = opts.RelaxStoreLoad
					case litmus.OpStore:
						relaxed = opts.RelaxStoreStore && ei.Instr.Loc != ej.Instr.Loc
					}
				}
				switch {
				case !relaxed:
					g.AddEdge(ids[i], ids[j], Po)
				case fenced:
					g.AddEdge(ids[i], ids[j], FenceOrd)
				}
			}
		}
	}

	// ws edges: init before every store; stores in serialization order.
	for _, stores := range x.WS {
		prev := 0
		for _, id := range stores {
			g.AddEdge(prev, id, Ws)
			prev = id
		}
	}

	// rf and fr edges.
	for loadID, storeID := range x.RF {
		internal := storeID != 0 && x.Events[storeID].Thread == x.Events[loadID].Thread
		if !(opts.ExternalRFOnly && internal) && storeID != loadID {
			g.AddEdge(storeID, loadID, Rf)
		}
		// fr: the load happens before every store ws-after its source.
		loc := x.Events[loadID].Instr.Loc
		pos := x.wsPos(storeID)
		for i, sid := range x.WS[loc] {
			if i > pos {
				g.AddEdge(loadID, sid, Fr)
			}
		}
	}
	return g
}

// CoherenceGraph builds the per-location coherence ("uniproc") graph:
// program order restricted to same-location events, plus full rf, ws and
// fr. Acyclicity of this graph is required by every coherent model,
// including TSO; it is what forbids stale re-reads (mp+staleld, safe006).
func (x *Execution) CoherenceGraph() *Graph {
	g := NewGraph(x.Events)
	for ti := range x.Test.Threads {
		var ids []int
		for id, e := range x.Events {
			if e.Thread == ti && e.Instr.Kind != litmus.OpFence {
				ids = append(ids, id)
			}
		}
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if x.Events[ids[i]].Instr.Loc == x.Events[ids[j]].Instr.Loc {
					g.AddEdge(ids[i], ids[j], Po)
				}
			}
		}
	}
	for _, stores := range x.WS {
		prev := 0
		for _, id := range stores {
			g.AddEdge(prev, id, Ws)
			prev = id
		}
	}
	for loadID, storeID := range x.RF {
		if storeID != loadID {
			g.AddEdge(storeID, loadID, Rf)
		}
		loc := x.Events[loadID].Instr.Loc
		pos := x.wsPos(storeID)
		for i, sid := range x.WS[loc] {
			if i > pos {
				g.AddEdge(loadID, sid, Fr)
			}
		}
	}
	return g
}

// Enumerate yields every candidate execution of the test: all read-from
// assignments crossed with all per-location write-serialization orders.
// The visit function may retain the Execution; a fresh one is passed per
// call. Enumeration is deterministic.
func Enumerate(t *litmus.Test, visit func(*Execution)) {
	events := EventsOf(t)

	// Collect loads and per-location stores.
	var loads []int
	storesByLoc := map[litmus.Loc][]int{}
	for id, e := range events {
		if e.IsInit() {
			continue
		}
		switch e.Instr.Kind {
		case litmus.OpLoad:
			loads = append(loads, id)
		case litmus.OpStore:
			storesByLoc[e.Instr.Loc] = append(storesByLoc[e.Instr.Loc], id)
		}
	}

	locs := t.Locs()
	// Write-serialization orders per location: all permutations.
	wsChoices := make([][][]int, len(locs))
	for i, loc := range locs {
		wsChoices[i] = permutations(storesByLoc[loc])
	}

	// Read-from choices per load: init or any store to the location.
	rfChoices := make([][]int, len(loads))
	for i, id := range loads {
		loc := events[id].Instr.Loc
		rfChoices[i] = append([]int{0}, storesByLoc[loc]...)
	}

	// Odometer over ws choices × rf choices.
	wsIdx := make([]int, len(locs))
	for {
		ws := map[litmus.Loc][]int{}
		for i, loc := range locs {
			if len(wsChoices[i]) > 0 {
				ws[loc] = wsChoices[i][wsIdx[i]]
			}
		}
		rfIdx := make([]int, len(loads))
		for {
			rf := make(map[int]int, len(loads))
			for i, id := range loads {
				rf[id] = rfChoices[i][rfIdx[i]]
			}
			visit(&Execution{Test: t, Events: events, RF: rf, WS: ws})
			if !inc(rfIdx, func(i int) int { return len(rfChoices[i]) }) {
				break
			}
		}
		if !inc(wsIdx, func(i int) int { return len(wsChoices[i]) }) {
			return
		}
	}
}

// inc advances a mixed-radix odometer; it returns false on wrap-around.
func inc(idx []int, radix func(int) int) bool {
	for i := len(idx) - 1; i >= 0; i-- {
		idx[i]++
		if idx[i] < radix(i) {
			return true
		}
		idx[i] = 0
	}
	return false
}

// permutations returns all orderings of ids; for an empty input it
// returns a single empty permutation.
func permutations(ids []int) [][]int {
	if len(ids) == 0 {
		return [][]int{nil}
	}
	var out [][]int
	var rec func(cur, rest []int)
	rec = func(cur, rest []int) {
		if len(rest) == 0 {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := range rest {
			next := append(cur, rest[i])
			var rem []int
			rem = append(rem, rest[:i]...)
			rem = append(rem, rest[i+1:]...)
			rec(next, rem)
		}
	}
	rec(nil, ids)
	return out
}
