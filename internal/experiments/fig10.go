package experiments

import (
	"fmt"
	"io"

	"perple/internal/litmus"
	"perple/internal/stats"
)

// Fig10Result holds the runtime comparison of Figure 10: simulated
// runtimes (execution plus outcome counting) per test and tool, and the
// speedups relative to litmus7 user mode.
type Fig10Result struct {
	N     int
	Tests []string
	// Ticks[test][tool] is the total simulated runtime.
	Ticks map[string]map[Tool]int64
	// Speedup[test][tool] = Ticks[test][user] / Ticks[test][tool].
	Speedup map[string]map[Tool]float64
	// GeoSpeedup[tool] is the geometric-average speedup over the suite.
	GeoSpeedup map[Tool]float64
	// HeurOverExh is the geometric-average speedup of the heuristic
	// counter over the exhaustive counter (the paper reports 305x).
	HeurOverExh float64
}

// Fig10 regenerates Figure 10: relative speedups of every tool over
// litmus7 user mode across the suite, 10k iterations by default. The
// exhaustive counter's frame space is capped per Options (the paper's
// own conclusion is that it is impractical at scale); its modelled
// counting cost is extrapolated to the full N^TL frame space so the
// reported slowdown reflects the algorithm, not the cap.
func Fig10(w io.Writer, opts Options) (*Fig10Result, error) {
	n := opts.n(10000)
	res := &Fig10Result{
		N:          n,
		Ticks:      map[string]map[Tool]int64{},
		Speedup:    map[string]map[Tool]float64{},
		GeoSpeedup: map[Tool]float64{},
	}
	perTool := map[Tool][]float64{}
	var heurExhRatios []float64

	suite := litmus.Suite()
	allTicks := make([]map[Tool]int64, len(suite))
	err := forEachIndex(len(suite), opts.workers(), func(i int) error {
		e := suite[i]
		ticks := map[Tool]int64{}
		for _, tool := range Tools {
			m, err := runCell(e, tool, n, opts)
			if err != nil {
				return fmt.Errorf("fig10: %s/%v: %w", e.Test.Name, tool, err)
			}
			t := m.Ticks
			if tool == ToolPerpLEExh {
				t = extrapolateExhaustive(e, m.Ticks, n, opts)
			}
			ticks[tool] = t
		}
		allTicks[i] = ticks
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, e := range suite {
		res.Tests = append(res.Tests, e.Test.Name)
		ticks := allTicks[i]
		res.Ticks[e.Test.Name] = ticks
		sp := map[Tool]float64{}
		base := float64(ticks[ToolLitmus7User])
		for _, tool := range Tools {
			sp[tool] = base / float64(ticks[tool])
			perTool[tool] = append(perTool[tool], sp[tool])
		}
		res.Speedup[e.Test.Name] = sp
		heurExhRatios = append(heurExhRatios, float64(ticks[ToolPerpLEExh])/float64(ticks[ToolPerpLEHeur]))
	}
	for _, tool := range Tools {
		res.GeoSpeedup[tool] = stats.GeoMean(perTool[tool])
	}
	res.HeurOverExh = stats.GeoMean(heurExhRatios)

	fmt.Fprintf(w, "Figure 10: runtime speedup over litmus7 user mode (=1), %d iterations\n", n)
	fmt.Fprintf(w, "(runtimes include test execution and outcome counting; higher is better)\n\n")
	tb := stats.NewTable(append([]string{"test"}, toolNames()...)...)
	for _, name := range res.Tests {
		row := []interface{}{name}
		for _, tool := range Tools {
			row = append(row, res.Speedup[name][tool])
		}
		tb.AddRow(row...)
	}
	geo := []interface{}{"geomean"}
	for _, tool := range Tools {
		geo = append(geo, res.GeoSpeedup[tool])
	}
	tb.AddRow(geo...)
	fmt.Fprint(w, tb.String())

	fmt.Fprintf(w, "\nPerpLE-heuristic geometric-average speedups (paper: 8.89x user, 8.85x userfence,\n161.35x pthread, 17.56x timebase, 2.52x none):\n")
	heur := res.GeoSpeedup[ToolPerpLEHeur]
	for _, tool := range Litmus7Tools {
		fmt.Fprintf(w, "  over %-18s %6.2fx\n", tool.String()+":", heur/res.GeoSpeedup[tool])
	}
	fmt.Fprintf(w, "heuristic over exhaustive counter (paper: 305x): %.0fx\n", res.HeurOverExh)
	return res, nil
}

// extrapolateExhaustive scales the capped exhaustive counting cost to the
// full N^TL frame space, keeping Figure 10's runtime model faithful to
// the uncapped algorithm.
func extrapolateExhaustive(e litmus.SuiteEntry, measured int64, n int, opts Options) int64 {
	tl := e.Test.TL()
	cap := opts.exhaustiveCap(tl, n)
	if cap >= n {
		return measured
	}
	cfg := opts.cfg()
	cappedFrames := pow(int64(cap), tl)
	fullFrames := pow(int64(n), tl)
	countTicks := int64(float64(cappedFrames) * cfg.ExhFrameTick)
	execTicks := measured - countTicks
	return execTicks + int64(float64(fullFrames)*cfg.ExhFrameTick)
}

func pow(base int64, exp int) int64 {
	out := int64(1)
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
