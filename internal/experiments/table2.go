package experiments

import (
	"fmt"
	"io"

	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/stats"
)

// TableIIRow is one suite test's classification.
type TableIIRow struct {
	Name       string
	T, TL      int
	Claimed    bool // Table II's allowed/forbidden grouping
	TSOAllowed bool // re-derived by the axiomatic checker
	SCAllowed  bool
}

// TableIIResult reproduces Table II: the perpetual litmus suite with
// [T, T_L] signatures and the allowed/forbidden split, re-derived with
// the herd-lite model checker.
type TableIIResult struct {
	Rows []TableIIRow
	// Mismatches counts rows where the re-derived classification
	// disagrees with the suite's claim (must be zero).
	Mismatches int
}

// TableII regenerates Table II and writes the report to w.
func TableII(w io.Writer, opts Options) (*TableIIResult, error) {
	res := &TableIIResult{}
	for _, e := range litmus.Suite() {
		row := TableIIRow{
			Name:       e.Test.Name,
			T:          e.Test.T(),
			TL:         e.Test.TL(),
			Claimed:    e.Allowed,
			TSOAllowed: memmodel.AxiomaticAllowed(e.Test, e.Test.Target, memmodel.TSO),
			SCAllowed:  memmodel.AxiomaticAllowed(e.Test, e.Test.Target, memmodel.SC),
		}
		if row.TSOAllowed != row.Claimed {
			res.Mismatches++
		}
		res.Rows = append(res.Rows, row)
	}

	fmt.Fprintf(w, "Table II: perpetual litmus suite for x86-TSO (%d tests)\n\n", len(res.Rows))
	for _, allowed := range []bool{true, false} {
		if allowed {
			fmt.Fprintln(w, "Target outcome allowed by x86-TSO:")
		} else {
			fmt.Fprintln(w, "\nTarget outcome forbidden by x86-TSO:")
		}
		tb := stats.NewTable("test", "[T,TL]", "TSO", "SC", "check")
		for _, r := range res.Rows {
			if r.Claimed != allowed {
				continue
			}
			check := "ok"
			if r.TSOAllowed != r.Claimed {
				check = "MISMATCH"
			}
			tb.AddRow(r.Name, fmt.Sprintf("[%d,%d]", r.T, r.TL),
				allowedStr(r.TSOAllowed), allowedStr(r.SCAllowed), check)
		}
		fmt.Fprint(w, tb.String())
	}
	fmt.Fprintf(w, "\nclassification mismatches vs Table II: %d\n", res.Mismatches)
	return res, nil
}

func allowedStr(b bool) string {
	if b {
		return "allowed"
	}
	return "forbidden"
}
