package experiments

import (
	"fmt"
	"io"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/stats"
)

// Fig12Result holds the thread-skew distribution of Figure 12.
type Fig12Result struct {
	N        int
	Samples  int
	Hist     *stats.Histogram
	MinSkew  int64
	MaxSkew  int64
	P5, P95  int64
	ZeroBand float64 // fraction of samples with |skew| ≤ 10 iterations
}

// Fig12 regenerates Figure 12: the probability density of the thread
// execution skew between the two threads of the perpetual sb test, 100k
// iterations by default.
func Fig12(w io.Writer, opts Options) (*Fig12Result, error) {
	n := opts.n(100000)
	test, err := litmus.SuiteTest("sb")
	if err != nil {
		return nil, err
	}
	pt, err := core.Convert(test)
	if err != nil {
		return nil, err
	}
	counter, err := core.NewTargetCounter(pt)
	if err != nil {
		return nil, err
	}
	run, err := harness.RunPerpLE(pt, counter, n,
		harness.PerpLEOptions{Heuristic: true, KeepBufs: true}, opts.cfg())
	if err != nil {
		return nil, err
	}
	samples := harness.MeasureSkew(pt, run.Bufs)
	vals := harness.SkewValues(samples, -1, -1)
	res := &Fig12Result{N: n, Samples: len(vals)}
	if len(vals) == 0 {
		return nil, fmt.Errorf("fig12: no skew samples from %d iterations", n)
	}
	res.MinSkew, res.MaxSkew = vals[0], vals[0]
	var zero int64
	for _, v := range vals {
		if v < res.MinSkew {
			res.MinSkew = v
		}
		if v > res.MaxSkew {
			res.MaxSkew = v
		}
		if v >= -10 && v <= 10 {
			zero++
		}
	}
	res.ZeroBand = float64(zero) / float64(len(vals))
	res.P5 = stats.Percentile(vals, 5)
	res.P95 = stats.Percentile(vals, 95)

	span := res.MaxSkew - res.MinSkew
	binWidth := span / 40
	if binWidth < 1 {
		binWidth = 1
	}
	hist, err := stats.NewHistogram(res.MinSkew, res.MaxSkew, binWidth)
	if err != nil {
		return nil, err
	}
	hist.AddAll(vals)
	res.Hist = hist

	fmt.Fprintf(w, "Figure 12: thread skew PDF, perpetual sb, %d iterations\n", n)
	fmt.Fprintf(w, "(skew = observer iteration - storer iteration, from decoded load values)\n\n")
	fmt.Fprint(w, hist.Render(60))
	fmt.Fprintf(w, "\nsamples: %d   range: [%d, %d]   P5..P95: [%d, %d]\n",
		res.Samples, res.MinSkew, res.MaxSkew, res.P5, res.P95)
	fmt.Fprintf(w, "fraction within |skew| <= 10: %.3f (distribution is densest near 0)\n", res.ZeroBand)
	return res, nil
}
