package experiments

import (
	"io"
	"strings"
	"testing"

	"perple/internal/litmus"
)

// Experiment tests run at reduced iteration counts; they assert the
// paper's qualitative shapes (who wins, what is zero), not magnitudes.

func TestTableIIExperiment(t *testing.T) {
	var buf strings.Builder
	res, err := TableII(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 34 {
		t.Errorf("rows = %d, want 34", len(res.Rows))
	}
	if res.Mismatches != 0 {
		t.Errorf("classification mismatches = %d, want 0", res.Mismatches)
	}
	for _, r := range res.Rows {
		if r.Claimed && r.SCAllowed {
			t.Errorf("%s: allowed-group target is SC-allowed", r.Name)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "mismatches vs Table II: 0") {
		t.Errorf("report missing zero-mismatch line:\n%s", out)
	}
}

func TestFig9Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf strings.Builder
	res, err := Fig9(&buf, Options{N: 800})
	if err != nil {
		t.Fatal(err)
	}
	if res.FalsePositives != 0 {
		t.Errorf("false positives = %d, want 0", res.FalsePositives)
	}
	if len(res.MissedAllowed) != 0 {
		t.Errorf("PerpLE missed allowed targets: %v", res.MissedAllowed)
	}
	// The exhaustive counter beats litmus7's user, userfence, pthread and
	// none modes on every allowed test. Timebase — litmus7's best-aligned
	// mode — may edge it out on isolated tests on this substrate (the
	// paper grants the analogous exception for the heuristic on iwp24 and
	// rfi013); allow at most two.
	timebaseWins := 0
	for i, name := range res.Tests {
		if !res.Allowed[i] {
			continue
		}
		exh := res.Counts[name][ToolPerpLEExh]
		for _, tool := range Litmus7Tools {
			if res.Counts[name][tool] < exh {
				continue
			}
			if tool == ToolLitmus7Timebase {
				timebaseWins++
				continue
			}
			t.Errorf("%s: litmus7 %v (%d) >= perple-exh (%d)",
				name, tool, res.Counts[name][tool], exh)
		}
	}
	if timebaseWins > 2 {
		t.Errorf("timebase beat the exhaustive counter on %d tests, want <= 2", timebaseWins)
	}
}

func TestFig10Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf strings.Builder
	res, err := Fig10(&buf, Options{N: 1500})
	if err != nil {
		t.Fatal(err)
	}
	// PerpLE heuristic is always the fastest tool (speedup >= all others
	// per test).
	for _, name := range res.Tests {
		heur := res.Speedup[name][ToolPerpLEHeur]
		for _, tool := range Tools {
			if tool == ToolPerpLEHeur {
				continue
			}
			if res.Speedup[name][tool] > heur {
				t.Errorf("%s: %v speedup %.2f exceeds heuristic %.2f",
					name, tool, res.Speedup[name][tool], heur)
			}
		}
		if got := res.Speedup[name][ToolLitmus7User]; got != 1 {
			t.Errorf("%s: user-mode self-speedup = %g, want 1", name, got)
		}
	}
	// Mode runtime ordering: pthread slowest, then timebase, then
	// user/userfence, then none (as geomeans).
	if !(res.GeoSpeedup[ToolLitmus7Pthread] < res.GeoSpeedup[ToolLitmus7Timebase] &&
		res.GeoSpeedup[ToolLitmus7Timebase] < res.GeoSpeedup[ToolLitmus7User] &&
		res.GeoSpeedup[ToolLitmus7User] < res.GeoSpeedup[ToolLitmus7None]) {
		t.Errorf("mode ordering wrong: %v", res.GeoSpeedup)
	}
	// The heuristic counter is orders of magnitude faster than the
	// exhaustive one (paper: 305x at 10k iterations).
	if res.HeurOverExh < 20 {
		t.Errorf("heuristic over exhaustive = %.1fx, want substantial", res.HeurOverExh)
	}
}

func TestFig11Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf strings.Builder
	res, err := Fig11(&buf, Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1000, 10000} {
		perple := res.ImprovementAt(n, ToolPerpLEHeur)
		if perple < 10 {
			t.Errorf("N=%d: PerpLE improvement %.1fx, want orders above baseline", n, perple)
		}
		for _, tool := range Litmus7Tools {
			if imp := res.ImprovementAt(n, tool); imp >= perple {
				t.Errorf("N=%d: %v improvement %.1fx >= PerpLE %.1fx", n, tool, imp, perple)
			}
		}
		if user := res.ImprovementAt(n, ToolLitmus7User); user != 1 {
			t.Errorf("N=%d: user self-improvement = %g, want 1", n, user)
		}
	}
}

func TestFig12Experiment(t *testing.T) {
	var buf strings.Builder
	res, err := Fig12(&buf, Options{N: 30000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples == 0 {
		t.Fatal("no skew samples")
	}
	// Two-sided, wide, and densest near zero.
	if res.MinSkew >= 0 || res.MaxSkew <= 0 {
		t.Errorf("skew range [%d,%d] not two-sided", res.MinSkew, res.MaxSkew)
	}
	if res.MaxSkew-res.MinSkew < 50 {
		t.Errorf("skew range [%d,%d] too narrow to be 'very wide'", res.MinSkew, res.MaxSkew)
	}
	// Density near zero exceeds the average density.
	avg := 1.0 / float64(res.MaxSkew-res.MinSkew+1)
	nearDensity := res.ZeroBand / 21.0
	if nearDensity <= avg {
		t.Errorf("density near zero %.2g not above average %.2g", nearDensity, avg)
	}
}

func TestFig13Experiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf strings.Builder
	res, err := Fig13(&buf, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// PerpLE-heuristic's variety matches or beats every litmus7 mode.
	for _, test := range Fig13Tests {
		heur := res.Variety[test][ToolPerpLEHeur]
		for _, tool := range Litmus7Tools {
			if res.Variety[test][tool] > heur {
				t.Errorf("%s: %v variety %d exceeds PerpLE %d",
					test, tool, res.Variety[test][tool], heur)
			}
		}
	}
	// TSO-forbidden outcomes are never observed by anyone.
	for _, row := range res.Rows {
		if row.TSOAllowed {
			continue
		}
		for tool, c := range row.Counts {
			if c != 0 {
				t.Errorf("%s %v: forbidden outcome %v observed %d times",
					row.Test, tool, row.Outcome, c)
			}
		}
	}
}

func TestAccuracyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf strings.Builder
	res, err := HeuristicAccuracy(&buf, Options{N: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disagrees != 0 {
		t.Errorf("heuristic accuracy disagreements = %d, want 0 (Section VII-D)", res.Disagrees)
	}
	if len(res.Rows) != len(litmus.Suite()) {
		t.Errorf("rows = %d, want %d", len(res.Rows), len(litmus.Suite()))
	}
}

func TestOverallExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf strings.Builder
	res, err := Overall(&buf, Options{N: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if res.Convertible+res.NonConvertible != 88 {
		t.Errorf("corpus = %d+%d, want 88", res.Convertible, res.NonConvertible)
	}
	if res.CampaignSpeedup <= 1.1 {
		t.Errorf("campaign speedup = %.2fx, want > 1.1x (paper: 1.47x)", res.CampaignSpeedup)
	}
	if res.CampaignSpeedup > 3 {
		t.Errorf("campaign speedup = %.2fx suspiciously high (paper: 1.47x)", res.CampaignSpeedup)
	}
	if res.DetectionImprovement < 10 {
		t.Errorf("detection improvement = %.0fx, want orders above 1", res.DetectionImprovement)
	}
}

func TestToolStringsAndModes(t *testing.T) {
	for _, tool := range Tools {
		if tool.String() == "" || strings.HasPrefix(tool.String(), "Tool(") {
			t.Errorf("tool %d has no name", int(tool))
		}
	}
	for _, tool := range Litmus7Tools {
		if _, ok := tool.Mode(); !ok {
			t.Errorf("%v has no mode", tool)
		}
	}
	if _, ok := ToolPerpLEHeur.Mode(); ok {
		t.Error("PerpLE tool should have no litmus7 mode")
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.seed() != 1 {
		t.Errorf("default seed = %d", o.seed())
	}
	if o.n(10) != 10 {
		t.Errorf("default n passthrough failed")
	}
	o.N = 5
	if o.n(10) != 5 {
		t.Errorf("explicit n ignored")
	}
	if cap := (Options{}).exhaustiveCap(2, 10000); cap != 4000 {
		t.Errorf("TL2 default cap = %d", cap)
	}
	if cap := (Options{}).exhaustiveCap(3, 10000); cap != 300 {
		t.Errorf("TL3 default cap = %d", cap)
	}
	if cap := (Options{ExhaustiveCap2: -1}).exhaustiveCap(2, 123); cap != 123 {
		t.Errorf("uncapped = %d, want 123", cap)
	}
}

// drain writers for coverage of wrap-style helpers.
var _ = io.Discard
