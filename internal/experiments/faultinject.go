package experiments

import (
	"fmt"
	"io"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/sim"
	"perple/internal/stats"
)

// FaultRow is one test's result against the buggy (PSO) machine.
type FaultRow struct {
	Name string
	// TSOAllowed / PSOAllowed classify the target under each model.
	TSOAllowed, PSOAllowed bool
	// InjectedBug marks the interesting rows: targets a correct TSO
	// machine can never produce but the PSO machine can — sightings prove
	// the machine violates its claimed model.
	InjectedBug bool
	// PerpLE / PerpLEExh / Timebase / User are target detections on the
	// PSO machine.
	PerpLE, PerpLEExh, Timebase, User int64
}

// FaultInjectionResult is the extension experiment: conformance testing
// against hardware that claims x86-TSO but implements SPARC PSO
// (per-location store buffers reorder stores). This is the paper's
// motivating scenario — "observing an ordering that the system's
// published memory model lists as forbidden indicates an implementation
// bug" — exercised end to end.
type FaultInjectionResult struct {
	N    int
	Rows []FaultRow
	// BugsDetectable is how many suite targets are TSO-forbidden but
	// PSO-allowed (the injected bugs).
	BugsDetectable int
	// BugsDetectedPerpLE / BugsDetectedLitmus7 count how many of those
	// each tool exposed.
	BugsDetectedPerpLE  int
	BugsDetectedLitmus7 int
	// FalsePositives counts sightings of targets PSO also forbids (must
	// be zero: the buggy machine is weaker, not incoherent).
	FalsePositives int64
}

// FaultInjection runs the whole suite against the PSO machine with
// PerpLE-heuristic and litmus7 (timebase and user modes) and checks which
// tool catches the conformance violations.
func FaultInjection(w io.Writer, opts Options) (*FaultInjectionResult, error) {
	n := opts.n(10000)
	res := &FaultInjectionResult{N: n}
	cfg := opts.cfg()
	cfg.Relaxation = memmodel.PSO

	for _, e := range litmus.Suite() {
		row := FaultRow{
			Name:       e.Test.Name,
			TSOAllowed: e.Allowed,
			PSOAllowed: memmodel.AxiomaticAllowed(e.Test, e.Test.Target, memmodel.PSO),
		}
		row.InjectedBug = !row.TSOAllowed && row.PSOAllowed

		pt, err := core.Convert(e.Test)
		if err != nil {
			return nil, err
		}
		counter, err := core.NewTargetCounter(pt)
		if err != nil {
			return nil, err
		}
		pr, err := harness.RunPerpLE(pt, counter, n, harness.PerpLEOptions{
			Heuristic: true, Exhaustive: true,
			ExhaustiveCap: opts.exhaustiveCap(pt.TL(), n),
		}, cfg)
		if err != nil {
			return nil, err
		}
		row.PerpLE = pr.Heuristic.Counts[0]
		row.PerpLEExh = pr.Exhaustive.Counts[0]

		tb, err := harness.RunLitmus7(e.Test, n, sim.ModeTimebase, nil, cfg)
		if err != nil {
			return nil, err
		}
		row.Timebase = tb.TargetCount
		us, err := harness.RunLitmus7(e.Test, n, sim.ModeUser, nil, cfg)
		if err != nil {
			return nil, err
		}
		row.User = us.TargetCount

		if row.InjectedBug {
			res.BugsDetectable++
			if row.PerpLE > 0 || row.PerpLEExh > 0 {
				res.BugsDetectedPerpLE++
			}
			if row.Timebase > 0 || row.User > 0 {
				res.BugsDetectedLitmus7++
			}
		}
		if !row.PSOAllowed {
			res.FalsePositives += row.PerpLE + row.PerpLEExh + row.Timebase + row.User
		}
		res.Rows = append(res.Rows, row)
	}

	fmt.Fprintf(w, "Fault injection: testing a machine that claims TSO but implements PSO\n")
	fmt.Fprintf(w, "(%d iterations; targets that are TSO-forbidden but PSO-allowed are injected bugs)\n\n", n)
	table := stats.NewTable("test", "TSO", "PSO", "bug?", "perple-heur", "perple-exh", "litmus7-timebase", "litmus7-user")
	for _, r := range res.Rows {
		bug := ""
		if r.InjectedBug {
			bug = "BUG"
			if r.PerpLE > 0 || r.PerpLEExh > 0 {
				bug = "BUG:caught"
			}
		}
		table.AddRow(r.Name, allowedStr(r.TSOAllowed), allowedStr(r.PSOAllowed), bug,
			r.PerpLE, r.PerpLEExh, r.Timebase, r.User)
	}
	fmt.Fprint(w, table.String())
	fmt.Fprintf(w, "\ninjected conformance bugs (TSO-forbidden, PSO-allowed targets): %d\n", res.BugsDetectable)
	fmt.Fprintf(w, "  detected by PerpLE-heuristic: %d\n", res.BugsDetectedPerpLE)
	fmt.Fprintf(w, "  detected by litmus7:          %d\n", res.BugsDetectedLitmus7)
	fmt.Fprintf(w, "sightings of PSO-forbidden targets (must be 0): %d\n", res.FalsePositives)
	return res, nil
}
