package experiments

import "sync"

// forEachSuiteEntry runs fn over indices 0..n-1 on a bounded worker pool.
// Experiment cells are independent simulations (each carries its own
// seeded RNG), so fanning them out changes wall time, not results; the
// callers write into pre-sized slices or locked maps to stay
// deterministic.
func forEachIndex(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := fn(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return firstErr
}
