package experiments

import (
	"fmt"
	"io"

	"perple/internal/litmus"
	"perple/internal/stats"
)

// Fig9Result holds target-outcome occurrences per test and tool
// (Figure 9 of the paper).
type Fig9Result struct {
	N     int
	Tests []string
	// Allowed[i] is the Table II classification of Tests[i].
	Allowed []bool
	// Counts[test][tool] is the number of target-outcome occurrences.
	Counts map[string]map[Tool]int64
	// FalsePositives counts occurrences reported for forbidden targets
	// by any tool (must be zero).
	FalsePositives int64
	// MissedAllowed lists allowed-target tests that PerpLE-exhaustive
	// failed to expose (the paper reports none).
	MissedAllowed []string
}

// Fig9 regenerates Figure 9: target-outcome occurrences for each suite
// test under PerpLE (exhaustive and heuristic counters) and litmus7 in
// all five synchronization modes. The paper uses 10k iterations.
func Fig9(w io.Writer, opts Options) (*Fig9Result, error) {
	n := opts.n(10000)
	res := &Fig9Result{N: n, Counts: map[string]map[Tool]int64{}}
	suite := litmus.Suite()
	cells := make([]map[Tool]int64, len(suite))
	err := forEachIndex(len(suite), opts.workers(), func(i int) error {
		e := suite[i]
		cell := map[Tool]int64{}
		for _, tool := range Tools {
			m, err := runCell(e, tool, n, opts)
			if err != nil {
				return fmt.Errorf("fig9: %s/%v: %w", e.Test.Name, tool, err)
			}
			cell[tool] = m.Target
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, e := range suite {
		res.Tests = append(res.Tests, e.Test.Name)
		res.Allowed = append(res.Allowed, e.Allowed)
		cell := cells[i]
		if !e.Allowed {
			for _, tool := range Tools {
				res.FalsePositives += cell[tool]
			}
		}
		if e.Allowed && cell[ToolPerpLEExh] == 0 {
			res.MissedAllowed = append(res.MissedAllowed, e.Test.Name)
		}
		res.Counts[e.Test.Name] = cell
	}

	fmt.Fprintf(w, "Figure 9: target outcome occurrences, %d iterations\n", n)
	fmt.Fprintf(w, "(forbidden targets marked X; all tools must report 0 for them)\n\n")
	tb := stats.NewTable(append([]string{"test", ""}, toolNames()...)...)
	for i, name := range res.Tests {
		mark := ""
		if !res.Allowed[i] {
			mark = "X"
		}
		row := []interface{}{name, mark}
		for _, tool := range Tools {
			row = append(row, res.Counts[name][tool])
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(w, tb.String())
	if cap2, cap3 := opts.exhaustiveCap(2, n), opts.exhaustiveCap(3, n); cap2 < n || cap3 < n {
		fmt.Fprintf(w, "\nnote: perple-exh examined the first %d (TL<=2) / %d (TL=3) of %d iterations\n"+
			"(its frame space is N^TL; run with -exhcap2=-1 -exhcap3=-1 for the uncapped paper setup)\n",
			cap2, cap3, n)
	}
	fmt.Fprintf(w, "\nfalse positives (forbidden targets observed): %d\n", res.FalsePositives)
	if len(res.MissedAllowed) == 0 {
		fmt.Fprintf(w, "PerpLE exposed the target of every TSO-allowed test\n")
	} else {
		fmt.Fprintf(w, "PerpLE missed allowed targets: %v\n", res.MissedAllowed)
	}
	return res, nil
}

func toolNames() []string {
	names := make([]string, len(Tools))
	for i, t := range Tools {
		names[i] = t.String()
	}
	return names
}
