package experiments

import (
	"fmt"
	"io"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/stats"
)

// Fig13Tests are the tests Figure 13 compares.
var Fig13Tests = []string{"sb", "lb", "podwr001"}

// Fig13Row is one (test, outcome) row: occurrences per tool.
type Fig13Row struct {
	Test    string
	Outcome litmus.Outcome
	// TSOAllowed marks whether the model allows this outcome (lb's 1,1 is
	// the Figure's forbidden example).
	TSOAllowed bool
	Counts     map[Tool]int64
}

// Fig13Result holds the outcome-variety comparison.
type Fig13Result struct {
	N    int
	Rows []*Fig13Row
	// Variety[test][tool] counts distinct outcomes each tool observed.
	Variety map[string]map[Tool]int
}

// Fig13 regenerates Figure 13: occurrences of every outcome of sb, lb and
// podwr001 over 1k iterations, PerpLE-heuristic vs litmus7 modes. All
// outcomes of each test are the outcomes of interest.
func Fig13(w io.Writer, opts Options) (*Fig13Result, error) {
	n := opts.n(1000)
	res := &Fig13Result{N: n, Variety: map[string]map[Tool]int{}}
	tools := append([]Tool{ToolPerpLEHeur}, Litmus7Tools...)

	for _, name := range Fig13Tests {
		test, err := litmus.SuiteTest(name)
		if err != nil {
			return nil, err
		}
		outcomes := test.AllOutcomes()
		rows := make([]*Fig13Row, len(outcomes))
		for i, o := range outcomes {
			rows[i] = &Fig13Row{Test: name, Outcome: o, Counts: map[Tool]int64{}}
		}
		// Which outcomes does TSO allow? (annotation only)
		allowedSet := map[string]bool{}
		for _, o := range allowedOutcomes(test) {
			allowedSet[o.Key()] = true
		}
		for i, o := range outcomes {
			rows[i].TSOAllowed = allowedSet[o.Key()]
		}

		// litmus7 in every mode.
		for _, tool := range Litmus7Tools {
			mode, _ := tool.Mode()
			lr, err := harness.RunLitmus7(test, n, mode, outcomes, opts.cfg())
			if err != nil {
				return nil, fmt.Errorf("fig13: %s/%v: %w", name, tool, err)
			}
			for i := range rows {
				rows[i].Counts[tool] = lr.OutcomeCounts[i]
			}
		}

		// PerpLE heuristic, one single-outcome counter per outcome on the
		// same run data: the paper's Figure 13 caption — "PerpLE heuristic
		// samples 1k frames per outcome" — counts each outcome
		// independently rather than through Algorithm 2's first-match
		// chain, which would starve later outcomes.
		pt, err := core.Convert(test)
		if err != nil {
			return nil, err
		}
		pos, err := core.ConvertAllOutcomes(pt)
		if err != nil {
			return nil, err
		}
		anyCounter := core.NewCounter(pt, nil)
		pr, err := harness.RunPerpLE(pt, anyCounter, n,
			harness.PerpLEOptions{KeepBufs: true}, opts.cfg())
		if err != nil {
			return nil, err
		}
		for i, po := range pos {
			single := core.NewCounter(pt, []*core.PerpetualOutcome{po})
			cr, err := single.CountHeuristic(pr.Bufs)
			if err != nil {
				return nil, err
			}
			rows[i].Counts[ToolPerpLEHeur] = cr.Counts[0]
		}

		variety := map[Tool]int{}
		for _, tool := range tools {
			for _, r := range rows {
				if r.Counts[tool] > 0 {
					variety[tool]++
				}
			}
		}
		res.Variety[name] = variety
		res.Rows = append(res.Rows, rows...)
	}

	fmt.Fprintf(w, "Figure 13: outcome variety for sb, lb, podwr001, %d iterations\n", n)
	fmt.Fprintf(w, "(occurrences of each outcome; PerpLE-heuristic samples %d frames per outcome)\n\n", n)
	header := []string{"test", "outcome", "tso"}
	for _, tool := range tools {
		header = append(header, tool.String())
	}
	tb := stats.NewTable(header...)
	for _, r := range res.Rows {
		mark := "ok"
		if !r.TSOAllowed {
			mark = "forbid"
		}
		row := []interface{}{r.Test, outcomeBits(r.Outcome), mark}
		for _, tool := range tools {
			row = append(row, r.Counts[tool])
		}
		tb.AddRow(row...)
	}
	fmt.Fprint(w, tb.String())

	fmt.Fprintf(w, "\ndistinct outcomes observed (variety; higher is better):\n")
	vt := stats.NewTable(append([]string{"test"}, toolNamesOf(tools)...)...)
	for _, name := range Fig13Tests {
		row := []interface{}{name}
		for _, tool := range tools {
			row = append(row, res.Variety[name][tool])
		}
		vt.AddRow(row...)
	}
	fmt.Fprint(w, vt.String())
	return res, nil
}

// outcomeBits renders an outcome as its condition values, e.g. "00" for
// sb's target, matching the paper's figure labels.
func outcomeBits(o litmus.Outcome) string {
	s := ""
	for _, c := range o.Conds {
		s += fmt.Sprintf("%d", c.Value)
	}
	return s
}

func toolNamesOf(tools []Tool) []string {
	names := make([]string, len(tools))
	for i, t := range tools {
		names[i] = t.String()
	}
	return names
}
