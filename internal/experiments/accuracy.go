package experiments

import (
	"fmt"
	"io"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/stats"
)

func allowedOutcomes(t *litmus.Test) []litmus.Outcome {
	return memmodel.AllowedOutcomes(t, memmodel.TSO)
}

// AccuracyRow is one test's heuristic-vs-exhaustive comparison on the
// same run data.
type AccuracyRow struct {
	Test       string
	Exhaustive int64
	Heuristic  int64
	// Agree is the Section VII-D criterion: the heuristic found the
	// target iff the exhaustive counter did (not necessarily the same
	// number of times).
	Agree bool
}

// AccuracyResult reproduces the Section VII-D heuristic-accuracy check.
type AccuracyResult struct {
	N         int
	Rows      []AccuracyRow
	Disagrees int
}

// HeuristicAccuracy runs every suite test once and applies both counters
// to the same in-memory results, checking the paper's accuracy criterion.
func HeuristicAccuracy(w io.Writer, opts Options) (*AccuracyResult, error) {
	n := opts.n(4000)
	res := &AccuracyResult{N: n}
	for _, e := range litmus.Suite() {
		pt, err := core.Convert(e.Test)
		if err != nil {
			return nil, err
		}
		counter, err := core.NewTargetCounter(pt)
		if err != nil {
			return nil, err
		}
		cap := opts.exhaustiveCap(pt.TL(), n)
		run, err := harness.RunPerpLE(pt, counter, n, harness.PerpLEOptions{
			Exhaustive: true, Heuristic: true, ExhaustiveCap: cap,
		}, opts.cfg())
		if err != nil {
			return nil, err
		}
		// Compare on the same window: re-run the heuristic over the
		// exhaustive counter's (possibly capped) view would change its
		// result; instead the agreement criterion uses found/not-found,
		// which the cap cannot flip from found to not-found for the
		// heuristic side.
		row := AccuracyRow{
			Test:       e.Test.Name,
			Exhaustive: run.Exhaustive.Counts[0],
			Heuristic:  run.Heuristic.Counts[0],
		}
		row.Agree = (row.Exhaustive > 0) == (row.Heuristic > 0)
		if !row.Agree {
			res.Disagrees++
		}
		res.Rows = append(res.Rows, row)
	}

	fmt.Fprintf(w, "Section VII-D: heuristic outcome counter accuracy, %d iterations\n", n)
	fmt.Fprintf(w, "(criterion: heuristic finds the target iff the exhaustive counter does)\n\n")
	tb := stats.NewTable("test", "exhaustive", "heuristic", "agree")
	for _, r := range res.Rows {
		tb.AddRow(r.Test, r.Exhaustive, r.Heuristic, r.Agree)
	}
	fmt.Fprint(w, tb.String())
	fmt.Fprintf(w, "\ndisagreements: %d of %d tests\n", res.Disagrees, len(res.Rows))
	return res, nil
}
