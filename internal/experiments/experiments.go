// Package experiments regenerates every table and figure of the PerpLE
// paper's evaluation (Section VII) on the simulated substrate: Table II
// (suite classification), Figure 9 (target-outcome occurrences), Figure
// 10 (runtime speedups), Figure 11 (relative detection-rate improvement
// vs iteration count), Figure 12 (thread-skew PDF), Figure 13 (outcome
// variety), the Section VII-D heuristic-accuracy check and the Section
// VII-G overall-impact numbers. Each driver returns a structured result
// and renders a plain-text report.
package experiments

import (
	"fmt"
	"runtime"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/sim"
)

// Options configures an experiment run. The zero value selects the
// defaults documented on each field.
type Options struct {
	// N is the iteration count; 0 selects the experiment's paper default
	// (e.g. 10k for Figures 9/10, 1k for Figure 13, 100k for Figure 12).
	N int
	// Seed drives the simulator; 0 means 1.
	Seed int64
	// ExhaustiveCap2 / ExhaustiveCap3 bound the iterations the exhaustive
	// counter examines for TL≤2 / TL=3 tests (its cost is N^TL). 0 picks
	// defaults that keep a full suite run in seconds; negative means
	// uncapped, as in the paper.
	ExhaustiveCap2, ExhaustiveCap3 int
	// Quick shrinks sweeps (Figure 11) for fast smoke runs.
	Quick bool
	// Workers bounds the per-test fan-out of the heavier drivers (Figures
	// 9 and 10); 0 selects GOMAXPROCS. Cells are independently seeded
	// simulations, so results do not depend on the worker count.
	Workers int
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) n(def int) int {
	if o.N > 0 {
		return o.N
	}
	return def
}

func (o Options) cfg() sim.Config {
	return sim.DefaultConfig().WithSeed(o.seed())
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// exhaustiveCap returns the iteration cap for a test's exhaustive count.
func (o Options) exhaustiveCap(tl, n int) int {
	var cap int
	if tl >= 3 {
		cap = o.ExhaustiveCap3
		if cap == 0 {
			cap = 300
		}
	} else {
		cap = o.ExhaustiveCap2
		if cap == 0 {
			cap = 4000
		}
	}
	if cap < 0 || cap > n {
		cap = n
	}
	return cap
}

// Tool identifies a testing tool column in the figures.
type Tool int

const (
	ToolPerpLEExh Tool = iota
	ToolPerpLEHeur
	ToolLitmus7User
	ToolLitmus7UserFence
	ToolLitmus7Pthread
	ToolLitmus7Timebase
	ToolLitmus7None
)

// Tools lists every tool in presentation order.
var Tools = []Tool{
	ToolPerpLEExh, ToolPerpLEHeur,
	ToolLitmus7User, ToolLitmus7UserFence, ToolLitmus7Pthread,
	ToolLitmus7Timebase, ToolLitmus7None,
}

// Litmus7Tools lists only the litmus7 synchronization-mode tools.
var Litmus7Tools = []Tool{
	ToolLitmus7User, ToolLitmus7UserFence, ToolLitmus7Pthread,
	ToolLitmus7Timebase, ToolLitmus7None,
}

func (t Tool) String() string {
	switch t {
	case ToolPerpLEExh:
		return "perple-exh"
	case ToolPerpLEHeur:
		return "perple-heur"
	case ToolLitmus7User:
		return "litmus7-user"
	case ToolLitmus7UserFence:
		return "litmus7-userfence"
	case ToolLitmus7Pthread:
		return "litmus7-pthread"
	case ToolLitmus7Timebase:
		return "litmus7-timebase"
	case ToolLitmus7None:
		return "litmus7-none"
	default:
		return fmt.Sprintf("Tool(%d)", int(t))
	}
}

// Mode returns the sim mode of a litmus7 tool.
func (t Tool) Mode() (sim.Mode, bool) {
	switch t {
	case ToolLitmus7User:
		return sim.ModeUser, true
	case ToolLitmus7UserFence:
		return sim.ModeUserFence, true
	case ToolLitmus7Pthread:
		return sim.ModePthread, true
	case ToolLitmus7Timebase:
		return sim.ModeTimebase, true
	case ToolLitmus7None:
		return sim.ModeNone, true
	default:
		return 0, false
	}
}

// Measurement is one (test, tool) cell: target-outcome occurrences and
// total runtime in simulated ticks (execution plus outcome counting).
type Measurement struct {
	Target int64
	Ticks  int64
}

// runCell executes one (test, tool, N) measurement.
func runCell(e litmus.SuiteEntry, tool Tool, n int, opts Options) (Measurement, error) {
	cfg := opts.cfg()
	if mode, ok := tool.Mode(); ok {
		res, err := harness.RunLitmus7(e.Test, n, mode, nil, cfg)
		if err != nil {
			return Measurement{}, err
		}
		return Measurement{Target: res.TargetCount, Ticks: res.Ticks}, nil
	}

	pt, err := core.Convert(e.Test)
	if err != nil {
		return Measurement{}, err
	}
	counter, err := core.NewTargetCounter(pt)
	if err != nil {
		return Measurement{}, err
	}
	po := harness.PerpLEOptions{}
	if tool == ToolPerpLEExh {
		po.Exhaustive = true
		po.ExhaustiveCap = opts.exhaustiveCap(pt.TL(), n)
	} else {
		po.Heuristic = true
	}
	res, err := harness.RunPerpLE(pt, counter, n, po, cfg)
	if err != nil {
		return Measurement{}, err
	}
	if tool == ToolPerpLEExh {
		return Measurement{Target: res.Exhaustive.Counts[0], Ticks: res.TotalTicksExhaustive()}, nil
	}
	return Measurement{Target: res.Heuristic.Counts[0], Ticks: res.TotalTicksHeuristic()}, nil
}
