package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/sim"
	"perple/internal/stats"
)

// OverallResult reproduces the Section VII-G overall-impact numbers for a
// full 88-test campaign: 34 convertible tests run under PerpLE-heuristic,
// the rest under litmus7 user mode, against running all 88 under litmus7
// user mode.
type OverallResult struct {
	N int
	// Convertible and NonConvertible are the corpus sizes (34 and 54).
	Convertible, NonConvertible int
	// AllLitmus7Ticks is the all-88-under-litmus7 campaign runtime.
	AllLitmus7Ticks int64
	// MixedTicks is the PerpLE-for-convertible campaign runtime.
	MixedTicks int64
	// CampaignSpeedup = AllLitmus7Ticks / MixedTicks (paper: 1.47x).
	CampaignSpeedup float64
	// DetectionImprovement is the mean relative target-outcome
	// detection-rate improvement over litmus7 user for the convertible
	// allowed-target tests (paper: >20000x at 10k iterations).
	DetectionImprovement float64
}

// Overall regenerates Section VII-G. The original 88-test corpus is the
// 34-test perpetual suite plus non-convertible tests; the latter are the
// six hand-written final-state tests plus deterministic generator output
// (DESIGN.md documents the substitution).
func Overall(w io.Writer, opts Options) (*OverallResult, error) {
	n := opts.n(10000)
	res := &OverallResult{N: n}
	cfg := opts.cfg()

	// Assemble the 88-test corpus.
	suite := litmus.Suite()
	nonConv := litmus.NonConvertible()
	need := 88 - len(suite) - len(nonConv)
	if need > 0 {
		gcfg := litmus.DefaultGenConfig()
		gcfg.MemTarget = true
		rng := rand.New(rand.NewSource(opts.seed() + 888))
		nonConv = append(nonConv, litmus.GenerateCorpus(rng, gcfg, "nc", need)...)
	}
	res.Convertible = len(suite)
	res.NonConvertible = len(nonConv)

	// Campaign A: everything under litmus7 user mode.
	for _, e := range suite {
		lr, err := harness.RunLitmus7(e.Test, n, sim.ModeUser, nil, cfg)
		if err != nil {
			return nil, err
		}
		res.AllLitmus7Ticks += lr.Ticks
	}
	var nonConvTicks int64
	for _, t := range nonConv {
		lr, err := harness.RunLitmus7(t, n, sim.ModeUser, nil, cfg)
		if err != nil {
			return nil, err
		}
		nonConvTicks += lr.Ticks
	}
	res.AllLitmus7Ticks += nonConvTicks

	// Campaign B: PerpLE-heuristic for the convertible tests, litmus7 for
	// the rest. Also collect the detection-rate improvement while here.
	var ratios []float64
	for _, e := range suite {
		pt, err := core.Convert(e.Test)
		if err != nil {
			return nil, err
		}
		counter, err := core.NewTargetCounter(pt)
		if err != nil {
			return nil, err
		}
		pr, err := harness.RunPerpLE(pt, counter, n, harness.PerpLEOptions{Heuristic: true}, cfg)
		if err != nil {
			return nil, err
		}
		res.MixedTicks += pr.TotalTicksHeuristic()

		if e.Allowed {
			lr, err := harness.RunLitmus7(e.Test, n, sim.ModeUser, nil, cfg)
			if err != nil {
				return nil, err
			}
			baseRate := stats.Rate(lr.TargetCount, lr.Ticks)
			if baseRate > 0 {
				perpRate := stats.Rate(pr.Heuristic.Counts[0], pr.TotalTicksHeuristic())
				ratios = append(ratios, perpRate/baseRate)
			}
		}
	}
	res.MixedTicks += nonConvTicks
	res.CampaignSpeedup = float64(res.AllLitmus7Ticks) / float64(res.MixedTicks)
	res.DetectionImprovement = stats.Mean(ratios)

	fmt.Fprintf(w, "Section VII-G: overall impact on testing, %d iterations per test\n\n", n)
	fmt.Fprintf(w, "corpus: %d convertible (perpetual suite) + %d non-convertible = %d tests\n",
		res.Convertible, res.NonConvertible, res.Convertible+res.NonConvertible)
	fmt.Fprintf(w, "all tests under litmus7 user:            %12d ticks\n", res.AllLitmus7Ticks)
	fmt.Fprintf(w, "PerpLE for convertible, litmus7 for rest: %11d ticks\n", res.MixedTicks)
	fmt.Fprintf(w, "campaign speedup (paper: 1.47x):          %11.2fx\n", res.CampaignSpeedup)
	fmt.Fprintf(w, "mean detection-rate improvement on convertible allowed tests\n")
	fmt.Fprintf(w, "  (paper: >20000x at 10k iterations):     %11.0fx\n", res.DetectionImprovement)
	return res, nil
}
