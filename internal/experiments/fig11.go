package experiments

import (
	"fmt"
	"io"

	"perple/internal/litmus"
	"perple/internal/stats"
)

// Fig11Point is one (iteration count, tool) bar of Figure 11.
type Fig11Point struct {
	N    int
	Tool Tool
	// Improvement is the arithmetic mean over allowed-target tests of
	// (tool's detection rate / litmus7-user's detection rate), omitting
	// tests with a zero baseline rate per Section VII-C.
	Improvement float64
	// TestsCounted is how many tests had a non-zero baseline.
	TestsCounted int
	// ExtraDetections is the total target count the tool reported on the
	// zero-baseline tests (the paper notes PerpLE still detects there).
	ExtraDetections int64
}

// Fig11Result holds the full sweep.
type Fig11Result struct {
	Ns     []int
	Points []Fig11Point
}

// Fig11 regenerates Figure 11: relative target-outcome detection-rate
// improvement over litmus7 user mode, for PerpLE-heuristic and the other
// litmus7 modes, across iteration counts. The paper sweeps 100..100M; the
// default here sweeps 100..100k (1M with N set explicitly), which is past
// the point where the ratios stabilize on the simulated substrate.
func Fig11(w io.Writer, opts Options) (*Fig11Result, error) {
	ns := []int{100, 1000, 10000, 100000}
	if opts.Quick {
		ns = []int{100, 1000, 10000}
	}
	if opts.N > 0 {
		ns = append(ns, opts.N)
	}
	res := &Fig11Result{Ns: ns}
	tools := append([]Tool{ToolPerpLEHeur}, Litmus7Tools...)

	allowed := litmus.AllowedSuite()
	for _, n := range ns {
		// Baseline rates per test.
		base := make([]float64, len(allowed))
		for i, e := range allowed {
			m, err := runCell(e, ToolLitmus7User, n, opts)
			if err != nil {
				return nil, fmt.Errorf("fig11: %s/user: %w", e.Test.Name, err)
			}
			base[i] = stats.Rate(m.Target, m.Ticks)
		}
		for _, tool := range tools {
			pt := Fig11Point{N: n, Tool: tool}
			var ratios []float64
			for i, e := range allowed {
				m, err := runCell(e, tool, n, opts)
				if err != nil {
					return nil, fmt.Errorf("fig11: %s/%v: %w", e.Test.Name, tool, err)
				}
				rate := stats.Rate(m.Target, m.Ticks)
				if base[i] == 0 {
					pt.ExtraDetections += m.Target
					continue
				}
				ratios = append(ratios, rate/base[i])
			}
			pt.Improvement = stats.Mean(ratios)
			pt.TestsCounted = len(ratios)
			res.Points = append(res.Points, pt)
		}
	}

	fmt.Fprintf(w, "Figure 11: relative target-outcome detection-rate improvement over litmus7 user\n")
	fmt.Fprintf(w, "(arithmetic mean over allowed-target tests with non-zero baseline; higher is better)\n\n")
	tb := stats.NewTable("iterations", "tool", "improvement", "tests", "extra detections\n(zero-baseline tests)")
	for _, p := range res.Points {
		tb.AddRow(p.N, p.Tool.String(), p.Improvement, p.TestsCounted, p.ExtraDetections)
	}
	fmt.Fprint(w, tb.String())
	return res, nil
}

// ImprovementAt returns the improvement of a tool at an iteration count,
// or 0 when absent.
func (r *Fig11Result) ImprovementAt(n int, tool Tool) float64 {
	for _, p := range r.Points {
		if p.N == n && p.Tool == tool {
			return p.Improvement
		}
	}
	return 0
}
