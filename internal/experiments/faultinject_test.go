package experiments

import (
	"strings"
	"testing"
)

// TestFaultInjectionExperiment validates the extension experiment: a
// machine that claims TSO but implements PSO must be caught by PerpLE on
// every injected bug, with no sightings of targets PSO also forbids.
func TestFaultInjectionExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf strings.Builder
	res, err := FaultInjection(&buf, Options{N: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.BugsDetectable != 3 {
		t.Errorf("injected bugs = %d, want 3 (mp, safe018, safe028)", res.BugsDetectable)
	}
	if res.BugsDetectedPerpLE != res.BugsDetectable {
		t.Errorf("PerpLE detected %d of %d injected bugs", res.BugsDetectedPerpLE, res.BugsDetectable)
	}
	if res.FalsePositives != 0 {
		t.Errorf("PSO-forbidden targets sighted %d times, want 0", res.FalsePositives)
	}
	// The injected-bug rows are exactly the W→W-relaxation family.
	bugs := map[string]bool{}
	for _, r := range res.Rows {
		if r.InjectedBug {
			bugs[r.Name] = true
		}
		// Classification sanity: PSO must allow everything TSO allows.
		if r.TSOAllowed && !r.PSOAllowed {
			t.Errorf("%s: TSO-allowed but PSO-forbidden, impossible", r.Name)
		}
	}
	for _, want := range []string{"mp", "safe018", "safe028"} {
		if !bugs[want] {
			t.Errorf("expected %s to be an injected bug", want)
		}
	}
	if !strings.Contains(buf.String(), "BUG:caught") {
		t.Error("report does not mark any caught bug")
	}
}
