package litmus

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// srcLine is one non-empty input line with its 1-based source position,
// so parse and validation errors can point at the offending line.
type srcLine struct {
	num  int
	text string
}

// Parse reads a litmus test in a litmus7-style x86 text format:
//
//	X86 sb
//	"store buffering"
//	{ x=0; y=0; }
//	 P0          | P1          ;
//	 MOV [x],$1  | MOV [y],$1  ;
//	 MOV EAX,[y] | MOV EAX,[x] ;
//	exists (0:EAX=0 /\ 1:EAX=0)
//
// Supported instructions per cell: `MOV [loc],$imm` (store), `MOV
// REG,[loc]` (load), `MFENCE`, or an empty cell (no-op; threads may have
// different lengths). Registers EAX..EDX and RAX..R15 style names map to
// register indices in order of first use per thread. The final condition
// may constrain registers (`0:EAX=1`) or final memory (`[x]=2` or `x=2`),
// joined with `/\`. Both `exists (...)` and `final (...)` introduce the
// target outcome.
//
// Errors carry the source line of the offending construct, including
// validation failures (undefined registers or locations, duplicate
// register writes), so nothing malformed is silently accepted.
func Parse(src string) (*Test, error) {
	lines := splitLines(src)
	if len(lines) == 0 {
		return nil, fmt.Errorf("litmus: empty input")
	}
	t := &Test{Init: map[Loc]int64{}}
	i := 0

	// Header: "X86 name" (the arch token is accepted and ignored beyond
	// x86 variants).
	fields := strings.Fields(lines[i].text)
	if len(fields) < 2 {
		return nil, fmt.Errorf("litmus: line %d: want header %q, got %q", lines[i].num, "X86 <name>", lines[i].text)
	}
	arch := strings.ToUpper(fields[0])
	if arch != "X86" && arch != "X86_64" {
		return nil, fmt.Errorf("litmus: line %d: unsupported architecture %q (want X86)", lines[i].num, fields[0])
	}
	t.Name = fields[1]
	i++

	// Optional quoted doc line(s).
	for i < len(lines) && strings.HasPrefix(lines[i].text, "\"") {
		if doc, err := strconv.Unquote(lines[i].text); err == nil {
			t.Doc = doc
		} else {
			t.Doc = strings.Trim(lines[i].text, "\"")
		}
		i++
	}

	// Init block: { x=0; y=0; } possibly spanning lines.
	if i >= len(lines) || !strings.HasPrefix(lines[i].text, "{") {
		return nil, fmt.Errorf("litmus: missing init block { ... }")
	}
	initLine := lines[i].num
	var initText strings.Builder
	for ; i < len(lines); i++ {
		initText.WriteString(lines[i].text)
		initText.WriteString(" ")
		if strings.Contains(lines[i].text, "}") {
			i++
			break
		}
	}
	if err := parseInit(initText.String(), t); err != nil {
		return nil, fmt.Errorf("litmus: line %d: %w", initLine, err)
	}

	// Thread header row: P0 | P1 | ... ;
	if i >= len(lines) {
		return nil, fmt.Errorf("litmus: missing thread header row")
	}
	hdr := strings.TrimSuffix(lines[i].text, ";")
	cols := splitCols(hdr)
	nThreads := len(cols)
	if nThreads == 0 {
		return nil, fmt.Errorf("litmus: line %d: empty thread header row %q", lines[i].num, lines[i].text)
	}
	for ci, c := range cols {
		want := fmt.Sprintf("P%d", ci)
		if !strings.EqualFold(strings.TrimSpace(c), want) {
			return nil, fmt.Errorf("litmus: line %d: thread header column %d is %q, want %q", lines[i].num, ci, strings.TrimSpace(c), want)
		}
	}
	t.Threads = make([]Thread, nThreads)
	regNames := make([]map[string]int, nThreads)
	for ti := range regNames {
		regNames[ti] = map[string]int{}
	}
	i++

	// Instruction rows until the condition line. instrLine[t][k] is the
	// source line of thread t's k-th instruction, for error positions.
	instrLine := make([][]int, nThreads)
	for ; i < len(lines); i++ {
		line := lines[i]
		low := strings.ToLower(line.text)
		if strings.HasPrefix(low, "exists") || strings.HasPrefix(low, "final") || strings.HasPrefix(low, "forall") {
			break
		}
		if strings.HasPrefix(low, "locations") {
			// litmus7 "locations [x; y;]" lines ask the tool to log final
			// memory; the harness always records it, so the directive is
			// accepted and ignored.
			continue
		}
		row := strings.TrimSuffix(line.text, ";")
		cells := splitCols(row)
		if len(cells) != nThreads {
			return nil, fmt.Errorf("litmus: line %d: instruction row %q has %d columns, want %d", line.num, line.text, len(cells), nThreads)
		}
		for ti, cell := range cells {
			cell = strings.TrimSpace(cell)
			if cell == "" {
				continue
			}
			in, err := parseInstr(cell, regNames[ti])
			if err != nil {
				return nil, fmt.Errorf("litmus: line %d: thread %d: %v", line.num, ti, err)
			}
			t.Threads[ti].Instrs = append(t.Threads[ti].Instrs, in)
			instrLine[ti] = append(instrLine[ti], line.num)
		}
	}

	// Condition.
	if i >= len(lines) {
		return nil, fmt.Errorf("litmus: missing exists/final condition")
	}
	condLine := lines[i].num
	parts := make([]string, 0, len(lines)-i)
	for _, l := range lines[i:] {
		parts = append(parts, l.text)
	}
	target, err := parseCondition(strings.Join(parts, " "), regNames)
	if err != nil {
		return nil, fmt.Errorf("litmus: line %d: %w", condLine, err)
	}
	t.Target = target

	if err := t.Validate(); err != nil {
		// Point the error at the offending source line when the
		// validation failure names a construct the parser located.
		var verr *ValidationError
		if errors.As(err, &verr) {
			switch {
			case verr.Thread >= 0 && verr.Instr >= 0 &&
				verr.Thread < len(instrLine) && verr.Instr < len(instrLine[verr.Thread]):
				return nil, fmt.Errorf("litmus: line %d: %w", instrLine[verr.Thread][verr.Instr], err)
			case verr.Cond >= 0:
				return nil, fmt.Errorf("litmus: line %d: %w", condLine, err)
			}
		}
		return nil, err
	}
	return t, nil
}

func splitLines(src string) []srcLine {
	var out []srcLine
	for n, raw := range strings.Split(src, "\n") {
		line := raw
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		out = append(out, srcLine{num: n + 1, text: line})
	}
	return out
}

// splitCols splits on | and keeps empty cells.
func splitCols(row string) []string {
	parts := strings.Split(row, "|")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseInit(src string, t *Test) error {
	src = strings.TrimSpace(src)
	src = strings.TrimPrefix(src, "{")
	if idx := strings.Index(src, "}"); idx >= 0 {
		src = src[:idx]
	}
	for _, item := range strings.Split(src, ";") {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		eq := strings.Index(item, "=")
		if eq < 0 {
			return fmt.Errorf("init item %q: want loc=value", item)
		}
		loc, err := parseLoc(item[:eq])
		if err != nil {
			return fmt.Errorf("init item %q: %v", item, err)
		}
		v, err := strconv.ParseInt(strings.TrimSpace(item[eq+1:]), 10, 64)
		if err != nil {
			return fmt.Errorf("init item %q: %v", item, err)
		}
		t.Init[loc] = v
	}
	return nil
}

func parseInstr(cell string, regs map[string]int) (Instr, error) {
	up := strings.ToUpper(cell)
	if up == "MFENCE" {
		return Fence(), nil
	}
	if !strings.HasPrefix(up, "MOV") {
		return Instr{}, fmt.Errorf("unsupported instruction %q", cell)
	}
	rest := strings.TrimSpace(cell[3:])
	comma := strings.Index(rest, ",")
	if comma < 0 {
		return Instr{}, fmt.Errorf("malformed MOV %q", cell)
	}
	dst := strings.TrimSpace(rest[:comma])
	src := strings.TrimSpace(rest[comma+1:])
	switch {
	case strings.HasPrefix(dst, "["): // store: MOV [loc],$imm
		loc, err := parseLoc(dst)
		if err != nil {
			return Instr{}, fmt.Errorf("store %q: %v", cell, err)
		}
		if !strings.HasPrefix(src, "$") {
			return Instr{}, fmt.Errorf("store source %q must be an immediate $n", src)
		}
		v, err := strconv.ParseInt(src[1:], 10, 64)
		if err != nil {
			return Instr{}, fmt.Errorf("store immediate %q: %v", src, err)
		}
		return Store(loc, v), nil
	case strings.HasPrefix(src, "["): // load: MOV REG,[loc]
		loc, err := parseLoc(src)
		if err != nil {
			return Instr{}, fmt.Errorf("load %q: %v", cell, err)
		}
		if dst == "" {
			return Instr{}, fmt.Errorf("load %q has no destination register", cell)
		}
		r := regIndex(regs, strings.ToUpper(dst))
		return Load(r, loc), nil
	default:
		return Instr{}, fmt.Errorf("unsupported MOV form %q", cell)
	}
}

// parseLoc normalizes a location written as "x", "[x]", or with layout
// whitespace around the name. Whitespace is layout, never identity —
// "[ x]" and "[x]" must be the same location or Format output would not
// round-trip — so a name still containing whitespace (or syntax
// characters) after trimming is rejected.
func parseLoc(s string) (Loc, error) {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("empty location")
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
		default:
			return "", fmt.Errorf("invalid location name %q", s)
		}
	}
	return Loc(s), nil
}

// regIndex maps a register name to a dense per-thread index, allocating in
// order of first use.
func regIndex(regs map[string]int, name string) int {
	if idx, ok := regs[name]; ok {
		return idx
	}
	idx := len(regs)
	regs[name] = idx
	return idx
}

func parseCondition(src string, regNames []map[string]int) (Outcome, error) {
	src = strings.TrimSpace(src)
	low := strings.ToLower(src)
	switch {
	case strings.HasPrefix(low, "exists"):
		src = strings.TrimSpace(src[len("exists"):])
	case strings.HasPrefix(low, "final"):
		src = strings.TrimSpace(src[len("final"):])
	default:
		return Outcome{}, fmt.Errorf("unsupported condition form %q (want exists/final)", src)
	}
	src = strings.TrimPrefix(src, "(")
	src = strings.TrimSuffix(src, ")")
	var out Outcome
	for _, part := range strings.Split(src, `/\`) {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		eq := strings.Index(part, "=")
		if eq < 0 {
			return Outcome{}, fmt.Errorf("condition %q: want lhs=value", part)
		}
		lhs := strings.TrimSpace(part[:eq])
		v, err := strconv.ParseInt(strings.TrimSpace(part[eq+1:]), 10, 64)
		if err != nil {
			return Outcome{}, fmt.Errorf("condition %q: %v", part, err)
		}
		if colon := strings.Index(lhs, ":"); colon >= 0 {
			ti, err := strconv.Atoi(strings.TrimSpace(lhs[:colon]))
			if err != nil {
				return Outcome{}, fmt.Errorf("condition %q: bad thread id: %v", part, err)
			}
			if ti < 0 || ti >= len(regNames) {
				return Outcome{}, fmt.Errorf("condition %q: thread %d out of range", part, ti)
			}
			reg := strings.ToUpper(strings.TrimSpace(lhs[colon+1:]))
			idx, ok := regNames[ti][reg]
			if !ok {
				return Outcome{}, fmt.Errorf("condition %q: thread %d never loads into %s", part, ti, reg)
			}
			out.Conds = append(out.Conds, Cond{Thread: ti, Reg: idx, Value: v})
		} else {
			loc, err := parseLoc(lhs)
			if err != nil {
				return Outcome{}, fmt.Errorf("condition %q: %v", part, err)
			}
			out.Conds = append(out.Conds, Cond{Loc: loc, Value: v})
		}
	}
	if len(out.Conds) == 0 {
		return Outcome{}, fmt.Errorf("empty condition")
	}
	return Outcome{Conds: out.Conds}, nil
}
