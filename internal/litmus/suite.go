// The perpetual litmus suite of Table II of the PerpLE paper: 34 x86-TSO
// litmus tests whose target outcomes are convertible to perpetual
// outcomes, split into those allowed and those forbidden by x86-TSO.
//
// Canonical tests (sb, lb, mp and variants, wrc, rwc, iriw, iwp2.3.b)
// follow Owens/Sarkar/Sewell's x86-TSO corpus. The diy-generated tests
// (rfi0xx, safe0xx, amdN, nN) are reconstructions: the original suite
// bodies are not published in the paper, so each reconstruction matches
// the paper's [T, T_L] signature from Table II and its allowed/forbidden
// classification, which internal/memmodel verifies in tests. Every
// allowed-group target is additionally SC-forbidden, so observing it
// demonstrates store buffering (the paper's notion of "target outcome").
package litmus

import (
	"fmt"
	"sort"
)

// SuiteEntry pairs a test with its Table II metadata.
type SuiteEntry struct {
	Test *Test
	// Allowed reports whether the target outcome is allowed by x86-TSO
	// (Table II grouping). internal/memmodel re-derives and checks this.
	Allowed bool
}

var suite []SuiteEntry

// Suite returns the perpetual litmus suite in Table II order (allowed
// group first, alphabetical within group). Callers must not mutate the
// returned tests; use Test.Clone for modification.
func Suite() []SuiteEntry {
	return suite
}

// SuiteTest returns the named suite test, or an error if absent.
func SuiteTest(name string) (*Test, error) {
	for _, e := range suite {
		if e.Test.Name == name {
			return e.Test, nil
		}
	}
	return nil, fmt.Errorf("litmus: no suite test named %q", name)
}

// SuiteNames returns the names of all suite tests in suite order.
func SuiteNames() []string {
	names := make([]string, len(suite))
	for i, e := range suite {
		names[i] = e.Test.Name
	}
	return names
}

// AllowedSuite returns only the entries whose target outcome x86-TSO
// allows (the group PerpLE expects to observe).
func AllowedSuite() []SuiteEntry {
	var out []SuiteEntry
	for _, e := range suite {
		if e.Allowed {
			out = append(out, e)
		}
	}
	return out
}

// ForbiddenSuite returns only the entries whose target outcome x86-TSO
// forbids (expected never to be observed; false-positive checks).
func ForbiddenSuite() []SuiteEntry {
	var out []SuiteEntry
	for _, e := range suite {
		if !e.Allowed {
			out = append(out, e)
		}
	}
	return out
}

func addSuite(allowed bool, t *Test) {
	if err := t.Validate(); err != nil {
		panic(err)
	}
	suite = append(suite, SuiteEntry{Test: t, Allowed: allowed})
}

func rc(thread, reg int, v int64) Cond { return Cond{Thread: thread, Reg: reg, Value: v} }

func outcome(conds ...Cond) Outcome { return Outcome{Conds: conds} }

func threads(ths ...[]Instr) []Thread {
	out := make([]Thread, len(ths))
	for i, ins := range ths {
		out[i] = Thread{Instrs: ins}
	}
	return out
}

func init() {
	// ----- Target outcome allowed by x86-TSO (12 tests) -----

	// amd3 [2,2]: store buffering with an intervening same-location
	// overwrite; the stale first store is observed while both buffers are
	// full. Exercises k_x = 2.
	addSuite(true, &Test{
		Name: "amd3",
		Doc:  "store buffering with double store; stale value observed",
		Threads: threads(
			[]Instr{Store("x", 1), Store("x", 2), Load(0, "y")},
			[]Instr{Store("y", 1), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 0), rc(1, 0, 1)),
	})

	// iwp23b [2,2]: Intel WP example 2.3.b — store buffering with
	// store-to-load forwarding on both threads.
	addSuite(true, &Test{
		Name: "iwp23b",
		Doc:  "store buffering with forwarding on both threads (Intel 2.3.b)",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "x"), Load(1, "y")},
			[]Instr{Store("y", 1), Load(0, "y"), Load(1, "x")},
		),
		Target: outcome(rc(0, 0, 1), rc(0, 1, 0), rc(1, 0, 1), rc(1, 1, 0)),
	})

	// iwp24 [2,2]: intra-processor forwarding is allowed — asymmetric
	// variant with forwarding on one thread only.
	addSuite(true, &Test{
		Name: "iwp24",
		Doc:  "store buffering with forwarding on one thread (Intel 2.4)",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "x"), Load(1, "y")},
			[]Instr{Store("y", 1), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 1), rc(0, 1, 0), rc(1, 0, 0)),
	})

	// n1 [3,2]: store buffering under third-party store traffic; the
	// store-only thread stresses the memory system without participating
	// in the outcome.
	addSuite(true, &Test{
		Name: "n1",
		Doc:  "store buffering with a third store-only thread",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "y")},
			[]Instr{Store("y", 1), Load(0, "x")},
			[]Instr{Store("z", 1)},
		),
		Target: outcome(rc(0, 0, 0), rc(1, 0, 0)),
	})

	// podwr000 [2,2]: program-ordered write→read, two-thread form with a
	// leading store to an unrelated location.
	addSuite(true, &Test{
		Name: "podwr000",
		Doc:  "write-to-read reordering with a leading unrelated store",
		Threads: threads(
			[]Instr{Store("w", 1), Store("x", 1), Load(0, "y")},
			[]Instr{Store("y", 1), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 0), rc(1, 0, 0)),
	})

	// podwr001 [3,3]: three-thread cyclic store buffering (Figure 2 of the
	// paper: sb extended to three threads).
	addSuite(true, &Test{
		Name: "podwr001",
		Doc:  "three-thread cyclic store buffering (paper Fig. 2)",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "y")},
			[]Instr{Store("y", 1), Load(0, "z")},
			[]Instr{Store("z", 1), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 0), rc(1, 0, 0), rc(2, 0, 0)),
	})

	// rfi009 [2,2]: forwarding read (rfi) on one thread against a
	// double-store partner. Exercises k_y = 2.
	addSuite(true, &Test{
		Name: "rfi009",
		Doc:  "forwarding read vs double-store partner",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "x"), Load(1, "y")},
			[]Instr{Store("y", 1), Store("y", 2), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 1), rc(0, 1, 0), rc(1, 0, 0)),
	})

	// rfi013 [2,2]: forwarding after a same-location overwrite: the
	// partner observes the first store while the overwrite is buffered.
	addSuite(true, &Test{
		Name: "rfi013",
		Doc:  "forwarding after overwrite; partner sees the stale store",
		Threads: threads(
			[]Instr{Store("x", 1), Store("x", 2), Load(0, "x"), Load(1, "y")},
			[]Instr{Store("y", 1), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 2), rc(0, 1, 0), rc(1, 0, 1)),
	})

	// rfi015 [3,2]: one-sided forwarding with third-party store traffic to
	// the forwarded location (k_x = 2).
	addSuite(true, &Test{
		Name: "rfi015",
		Doc:  "one-sided forwarding with third-party stores to x",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "x"), Load(1, "y")},
			[]Instr{Store("y", 1), Load(0, "x")},
			[]Instr{Store("x", 2)},
		),
		Target: outcome(rc(0, 0, 1), rc(0, 1, 0), rc(1, 0, 0)),
	})

	// rfi017 [2,2]: forwarding on both threads, double store on one side
	// (k_y = 2).
	addSuite(true, &Test{
		Name: "rfi017",
		Doc:  "bilateral forwarding with a double store",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "x"), Load(1, "y")},
			[]Instr{Store("y", 1), Store("y", 2), Load(0, "y"), Load(1, "x")},
		),
		Target: outcome(rc(0, 0, 1), rc(0, 1, 0), rc(1, 0, 2), rc(1, 1, 0)),
	})

	// rwc-unfenced [3,2]: read-to-write causality without fences; the
	// writing reader's store is delayed past its read.
	addSuite(true, &Test{
		Name: "rwc-unfenced",
		Doc:  "read-to-write causality, unfenced (allowed)",
		Threads: threads(
			[]Instr{Store("x", 1)},
			[]Instr{Load(0, "x"), Load(1, "y")},
			[]Instr{Store("y", 1), Load(0, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(1, 1, 0), rc(2, 0, 0)),
	})

	// sb [2,2]: the canonical store buffering test (paper Fig. 2).
	addSuite(true, &Test{
		Name: "sb",
		Doc:  "store buffering (paper Fig. 2)",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "y")},
			[]Instr{Store("y", 1), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 0), rc(1, 0, 0)),
	})

	// ----- Target outcome forbidden by x86-TSO (22 tests) -----

	// amd10 [2,2]: fenced bilateral forwarding; the fences force the
	// buffered stores out before the cross reads.
	addSuite(false, &Test{
		Name: "amd10",
		Doc:  "bilateral forwarding with fences (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "x"), Fence(), Load(1, "y")},
			[]Instr{Store("y", 1), Load(0, "y"), Fence(), Load(1, "x")},
		),
		Target: outcome(rc(0, 0, 1), rc(0, 1, 0), rc(1, 0, 1), rc(1, 1, 0)),
	})

	// amd5 [2,2]: store buffering with full fences — the classic
	// mutual-exclusion-critical pattern; forbidden.
	addSuite(false, &Test{
		Name: "amd5",
		Doc:  "store buffering with fences (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Fence(), Load(0, "y")},
			[]Instr{Store("y", 1), Fence(), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 0), rc(1, 0, 0)),
	})

	// amd5+staleld [2,2]: fenced store buffering where the second read of
	// x would have to travel backwards in coherence order.
	addSuite(false, &Test{
		Name: "amd5+staleld",
		Doc:  "fenced store buffering with a stale second load (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Fence(), Load(0, "y")},
			[]Instr{Store("y", 1), Fence(), Load(0, "x"), Load(1, "x")},
		),
		Target: outcome(rc(0, 0, 0), rc(1, 0, 1), rc(1, 1, 0)),
	})

	// co-iriw [4,2]: independent reads of writes to a single location; the
	// two readers would have to disagree on the coherence order of x.
	addSuite(false, &Test{
		Name: "co-iriw",
		Doc:  "IRIW on one location: readers disagree on coherence order",
		Threads: threads(
			[]Instr{Store("x", 1)},
			[]Instr{Store("x", 2)},
			[]Instr{Load(0, "x"), Load(1, "x")},
			[]Instr{Load(0, "x"), Load(1, "x")},
		),
		Target: outcome(rc(2, 0, 1), rc(2, 1, 2), rc(3, 0, 2), rc(3, 1, 1)),
	})

	// iriw [4,2]: independent reads of independent writes; forbidden under
	// TSO's single global store order.
	addSuite(false, &Test{
		Name: "iriw",
		Doc:  "independent reads of independent writes (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1)},
			[]Instr{Store("y", 1)},
			[]Instr{Load(0, "x"), Load(1, "y")},
			[]Instr{Load(0, "y"), Load(1, "x")},
		),
		Target: outcome(rc(2, 0, 1), rc(2, 1, 0), rc(3, 0, 1), rc(3, 1, 0)),
	})

	// lb [2,2]: load buffering (paper Fig. 2); forbidden because TSO never
	// reorders a store before an earlier load.
	addSuite(false, &Test{
		Name: "lb",
		Doc:  "load buffering (paper Fig. 2; forbidden)",
		Threads: threads(
			[]Instr{Load(0, "y"), Store("x", 1)},
			[]Instr{Load(0, "x"), Store("y", 1)},
		),
		Target: outcome(rc(0, 0, 1), rc(1, 0, 1)),
	})

	// mp [2,1]: message passing; forbidden because TSO preserves
	// store-store and load-load order.
	addSuite(false, &Test{
		Name: "mp",
		Doc:  "message passing (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Store("y", 1)},
			[]Instr{Load(0, "y"), Load(1, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(1, 1, 0)),
	})

	// mp+staleld [2,1]: message passing with a repeated flag read that
	// would have to observe coherence backwards.
	addSuite(false, &Test{
		Name: "mp+staleld",
		Doc:  "message passing with stale second load (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Store("y", 1)},
			[]Instr{Load(0, "y"), Load(1, "x"), Load(2, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(1, 1, 1), rc(1, 2, 0)),
	})

	// mp+fences [2,1]: message passing with full fences; forbidden a
	// fortiori.
	addSuite(false, &Test{
		Name: "mp+fences",
		Doc:  "message passing with fences (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Fence(), Store("y", 1)},
			[]Instr{Load(0, "y"), Fence(), Load(1, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(1, 1, 0)),
	})

	// n4 [2,2]: load-store cycle on one location; forbidden because TSO
	// never reorders a store before an earlier load.
	addSuite(false, &Test{
		Name: "n4",
		Doc:  "load-store cycle on one location (forbidden)",
		Threads: threads(
			[]Instr{Load(0, "x"), Store("x", 1)},
			[]Instr{Load(0, "x"), Store("x", 2)},
		),
		Target: outcome(rc(0, 0, 2), rc(1, 0, 1)),
	})

	// n5 [2,2]: store-load on one location; each thread would observe the
	// other's store as newer, contradicting a single coherence order.
	addSuite(false, &Test{
		Name: "n5",
		Doc:  "store-load coherence contradiction (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "x")},
			[]Instr{Store("x", 2), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 2), rc(1, 0, 1)),
	})

	// rwc-fenced [3,2]: read-to-write causality with a fence in the
	// writing reader; forbidden.
	addSuite(false, &Test{
		Name: "rwc-fenced",
		Doc:  "read-to-write causality, fenced (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1)},
			[]Instr{Load(0, "x"), Load(1, "y")},
			[]Instr{Store("y", 1), Fence(), Load(0, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(1, 1, 0), rc(2, 0, 0)),
	})

	// safe006 [2,2]: single-location coherence: a reader seeing 2 then 1
	// would travel backwards in the write order 1 → 2 established by
	// thread 0's program order.
	addSuite(false, &Test{
		Name: "safe006",
		Doc:  "coherence: stale re-read of one location (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "x"), Load(1, "x")},
			[]Instr{Store("x", 2), Load(0, "x")},
		),
		Target: outcome(rc(0, 0, 2), rc(0, 1, 1), rc(1, 0, 2)),
	})

	// safe007 [3,3]: write-read causality where every thread loads; the
	// trivial forwarding read makes thread 0 load-performing.
	addSuite(false, &Test{
		Name: "safe007",
		Doc:  "write-read causality, all threads loading (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Load(0, "x")},
			[]Instr{Load(0, "x"), Store("y", 1)},
			[]Instr{Load(0, "y"), Load(1, "x")},
		),
		Target: outcome(rc(0, 0, 1), rc(1, 0, 1), rc(2, 0, 1), rc(2, 1, 0)),
	})

	// safe012 [3,2]: write-read causality with fences in both readers.
	addSuite(false, &Test{
		Name: "safe012",
		Doc:  "write-read causality with fences (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1)},
			[]Instr{Load(0, "x"), Fence(), Store("y", 1)},
			[]Instr{Load(0, "y"), Fence(), Load(1, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(2, 0, 1), rc(2, 1, 0)),
	})

	// safe018 [3,2]: three-thread message-passing chain through z.
	addSuite(false, &Test{
		Name: "safe018",
		Doc:  "transitive message passing chain (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Store("y", 1)},
			[]Instr{Load(0, "y"), Store("z", 1)},
			[]Instr{Load(0, "z"), Load(1, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(2, 0, 1), rc(2, 1, 0)),
	})

	// safe022 [2,1]: message passing with a fence on the writer side only;
	// still forbidden, as load-load order is preserved regardless.
	addSuite(false, &Test{
		Name: "safe022",
		Doc:  "message passing, writer-fenced (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Fence(), Store("y", 1)},
			[]Instr{Load(0, "y"), Load(1, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(1, 1, 0)),
	})

	// safe024 [3,2]: fenced store buffering under third-party store
	// traffic.
	addSuite(false, &Test{
		Name: "safe024",
		Doc:  "fenced store buffering with a third store-only thread",
		Threads: threads(
			[]Instr{Store("x", 1), Fence(), Load(0, "y")},
			[]Instr{Store("y", 1), Fence(), Load(0, "x")},
			[]Instr{Store("z", 1)},
		),
		Target: outcome(rc(0, 0, 0), rc(1, 0, 0)),
	})

	// safe027 [4,2]: IRIW with fenced readers; forbidden (and would remain
	// so even under weaker models with fences).
	addSuite(false, &Test{
		Name: "safe027",
		Doc:  "IRIW with fenced readers (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1)},
			[]Instr{Store("y", 1)},
			[]Instr{Load(0, "x"), Fence(), Load(1, "y")},
			[]Instr{Load(0, "y"), Fence(), Load(1, "x")},
		),
		Target: outcome(rc(2, 0, 1), rc(2, 1, 0), rc(3, 0, 1), rc(3, 1, 0)),
	})

	// safe028 [3,2]: message passing observed identically by two readers;
	// the target embeds the forbidden mp pattern in reader 1.
	addSuite(false, &Test{
		Name: "safe028",
		Doc:  "message passing with two readers (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1), Store("y", 1)},
			[]Instr{Load(0, "y"), Load(1, "x")},
			[]Instr{Load(0, "y"), Load(1, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(1, 1, 0), rc(2, 0, 0), rc(2, 1, 0)),
	})

	// safe036 [2,2]: load buffering with a fence; forbidden a fortiori.
	addSuite(false, &Test{
		Name: "safe036",
		Doc:  "load buffering with a fence (forbidden)",
		Threads: threads(
			[]Instr{Load(0, "y"), Store("x", 1)},
			[]Instr{Load(0, "x"), Fence(), Store("y", 1)},
		),
		Target: outcome(rc(0, 0, 1), rc(1, 0, 1)),
	})

	// wrc [3,2]: write-read causality; forbidden because TSO stores are
	// transitively visible.
	addSuite(false, &Test{
		Name: "wrc",
		Doc:  "write-read causality (forbidden)",
		Threads: threads(
			[]Instr{Store("x", 1)},
			[]Instr{Load(0, "x"), Store("y", 1)},
			[]Instr{Load(0, "y"), Load(1, "x")},
		),
		Target: outcome(rc(1, 0, 1), rc(2, 0, 1), rc(2, 1, 0)),
	})

	// Keep Table II order: allowed group first, then forbidden group,
	// each alphabetical.
	sort.SliceStable(suite, func(i, j int) bool {
		if suite[i].Allowed != suite[j].Allowed {
			return suite[i].Allowed
		}
		return suite[i].Test.Name < suite[j].Test.Name
	})
}

// NonConvertible returns example litmus tests whose target outcome
// constrains final shared memory and therefore cannot be converted to a
// perpetual test (Section V-C of the paper). They stand in for the
// remaining tests of the original 88-test corpus and run only under the
// litmus7-style harness.
func NonConvertible() []*Test {
	mk := func(t *Test) *Test {
		if err := t.Validate(); err != nil {
			panic(err)
		}
		return t
	}
	memCond := func(loc Loc, v int64) Cond { return Cond{Loc: loc, Value: v} }
	return []*Test{
		// 2+2W: write-write cycles observed through final memory.
		mk(&Test{
			Name: "2+2w",
			Doc:  "double write-write; final state shows both first writes lost",
			Threads: threads(
				[]Instr{Store("x", 1), Store("y", 2)},
				[]Instr{Store("y", 1), Store("x", 2)},
			),
			Target: outcome(memCond("x", 1), memCond("y", 1)),
		}),
		// R: store race decided against program order.
		mk(&Test{
			Name: "r",
			Doc:  "store race with message passing; final-state target",
			Threads: threads(
				[]Instr{Store("x", 1), Store("y", 1)},
				[]Instr{Store("y", 2), Load(0, "x")},
			),
			Target: outcome(rc(1, 0, 0), memCond("y", 1)),
		}),
		// S: write after read-from, resolved through final state.
		mk(&Test{
			Name: "s",
			Doc:  "write overtaking an observed write; final-state target",
			Threads: threads(
				[]Instr{Store("x", 2), Store("y", 1)},
				[]Instr{Load(0, "y"), Store("x", 1)},
			),
			Target: outcome(rc(1, 0, 1), memCond("x", 2)),
		}),
		// coWW: coherence of two program-ordered writes.
		mk(&Test{
			Name: "coww",
			Doc:  "write-write coherence; final state cannot be the first write",
			Threads: threads(
				[]Instr{Store("x", 1), Store("x", 2)},
				[]Instr{Load(0, "x")},
			),
			Target: outcome(rc(1, 0, 2), memCond("x", 1)),
		}),
		// coRW2: read-write coherence across threads.
		mk(&Test{
			Name: "corw2",
			Doc:  "read then overwrite vs external store; final-state target",
			Threads: threads(
				[]Instr{Load(0, "x"), Store("x", 1)},
				[]Instr{Store("x", 2)},
			),
			Target: outcome(rc(0, 0, 2), memCond("x", 2)),
		}),
		// W+RW: store visibility through a final-state witness.
		mk(&Test{
			Name: "w+rw",
			Doc:  "store visibility witnessed by final state",
			Threads: threads(
				[]Instr{Store("x", 1)},
				[]Instr{Load(0, "x"), Store("y", 1)},
			),
			Target: outcome(rc(1, 0, 1), memCond("y", 1), memCond("x", 1)),
		}),
	}
}
