package litmus

import (
	"strings"
	"testing"
)

func TestFromCycleSB(t *testing.T) {
	test, err := FromCycle("cyc-sb", PodWR, Fre, PodWR, Fre)
	if err != nil {
		t.Fatal(err)
	}
	if test.T() != 2 || test.TL() != 2 {
		t.Fatalf("[T,TL] = [%d,%d], want [2,2]", test.T(), test.TL())
	}
	// Each thread: one store then one load, different locations.
	for ti, th := range test.Threads {
		if len(th.Instrs) != 2 || th.Instrs[0].Kind != OpStore || th.Instrs[1].Kind != OpLoad {
			t.Errorf("thread %d shape wrong: %v", ti, th.Instrs)
		}
		if th.Instrs[0].Loc == th.Instrs[1].Loc {
			t.Errorf("thread %d: store and load share a location", ti)
		}
	}
	// Both loads read 0 — the sb target.
	for _, c := range test.Target.Conds {
		if c.Value != 0 {
			t.Errorf("condition %v should expect 0", c)
		}
	}
}

func TestFromCycleMP(t *testing.T) {
	test, err := FromCycle("cyc-mp", PodWW, Rfe, PodRR, Fre)
	if err != nil {
		t.Fatal(err)
	}
	if test.T() != 2 || test.TL() != 1 {
		t.Fatalf("[T,TL] = [%d,%d], want [2,1]", test.T(), test.TL())
	}
	// The reader sees the second store but not the first: values 1 and 0.
	want := map[int64]bool{0: false, 1: false}
	for _, c := range test.Target.Conds {
		want[c.Value] = true
	}
	if !want[0] || !want[1] {
		t.Errorf("mp target should read 1 then 0: %v", test.Target)
	}
}

func TestFromCycleIRIW(t *testing.T) {
	test, err := FromCycle("cyc-iriw", Rfe, PodRR, Fre, Rfe, PodRR, Fre)
	if err != nil {
		t.Fatal(err)
	}
	if test.T() != 4 || test.TL() != 2 {
		t.Fatalf("[T,TL] = [%d,%d], want [4,2]", test.T(), test.TL())
	}
}

func TestFromCycleRotation(t *testing.T) {
	// A cycle not ending on an external edge is rotated; the result must
	// still validate and describe the same pattern (sb here).
	test, err := FromCycle("rot", Fre, PodWR, Fre, PodWR)
	if err != nil {
		t.Fatal(err)
	}
	if test.T() != 2 || test.TL() != 2 {
		t.Fatalf("[T,TL] = [%d,%d], want [2,2]", test.T(), test.TL())
	}
}

func TestFromCycleFenced(t *testing.T) {
	test, err := FromCycle("cyc-sb-fenced", FencedWR, Fre, FencedWR, Fre)
	if err != nil {
		t.Fatal(err)
	}
	fences := 0
	for _, th := range test.Threads {
		fences += len(th.Instrs) - th.Loads() - th.Stores()
	}
	if fences != 2 {
		t.Errorf("fenced sb should have 2 fences, got %d", fences)
	}
}

func TestFromCycleErrors(t *testing.T) {
	cases := []struct {
		name  string
		edges []EdgeSpec
		want  string
	}{
		{"too short", []EdgeSpec{Fre}, "at least 2 edges"},
		{"single thread", []EdgeSpec{PodWR, PodRW}, "external"},
		{"kind mismatch", []EdgeSpec{PodWR, Rfe, PodWR, Fre}, "source"},
		{"incoherent", []EdgeSpec{Rfe, Fre}, "incoherent"},
	}
	for _, c := range cases {
		_, err := FromCycle(c.name, c.edges...)
		if err == nil {
			t.Errorf("%s: cycle accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseCycle(t *testing.T) {
	edges, err := ParseCycle("podwr fre PODWR Fre")
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 4 || edges[0] != PodWR || edges[1] != Fre {
		t.Errorf("parsed %v", edges)
	}
	if _, err := ParseCycle("bogus"); err == nil {
		t.Error("bogus edge accepted")
	}
	if _, err := ParseCycle("  "); err == nil {
		t.Error("empty cycle accepted")
	}
}

func TestEdgeSpecStrings(t *testing.T) {
	for e := Rfe; e <= FencedWW; e++ {
		s := e.String()
		if strings.HasPrefix(s, "EdgeSpec(") {
			t.Errorf("edge %d has no name", int(e))
		}
		back, err := ParseEdge(s)
		if err != nil || back != e {
			t.Errorf("round trip failed for %s", s)
		}
	}
}

// enumerateCycles yields every valid cycle of the given length over a
// small edge alphabet (validity checked by FromCycle itself).
func enumerateCycles(t *testing.T, length int, alphabet []EdgeSpec, visit func([]EdgeSpec, *Test)) {
	t.Helper()
	idx := make([]int, length)
	for {
		edges := make([]EdgeSpec, length)
		for i, j := range idx {
			edges[i] = alphabet[j]
		}
		if test, err := FromCycle("enum", edges...); err == nil {
			visit(edges, test)
		}
		i := length - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(alphabet) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return
		}
	}
}

// TestEnumeratedCyclesValidate: every accepted cycle produces a valid
// test with one condition per load.
func TestEnumeratedCyclesValidate(t *testing.T) {
	alphabet := []EdgeSpec{Rfe, Fre, Wse, PodWR, PodRR, PodRW, PodWW, FencedWR}
	count := 0
	enumerateCycles(t, 4, alphabet, func(edges []EdgeSpec, test *Test) {
		count++
		if err := test.Validate(); err != nil {
			t.Errorf("cycle %v: %v", edges, err)
		}
		loads := 0
		for _, th := range test.Threads {
			loads += th.Loads()
		}
		regConds, memConds := 0, 0
		for _, c := range test.Target.Conds {
			if c.IsMem() {
				memConds++
			} else {
				regConds++
			}
		}
		if regConds != loads {
			t.Errorf("cycle %v: %d register conditions for %d loads", edges, regConds, loads)
		}
		// Multi-store locations must be ws-pinned by a final-state
		// condition.
		for _, loc := range test.Locs() {
			if len(test.StoreValues(loc)) > 1 && memConds == 0 {
				t.Errorf("cycle %v: multi-store location %s without a final-state pin", edges, loc)
			}
		}
	})
	if count < 10 {
		t.Errorf("only %d valid 4-edge cycles; enumeration looks broken", count)
	}
}
