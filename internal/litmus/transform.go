package litmus

import "fmt"

// WithFences returns a copy of the test with an MFENCE inserted between
// every pair of consecutive memory accesses in every thread (existing
// fences are kept, not duplicated). Fencing every pair restores
// sequential consistency on TSO-class machines, which makes the
// transformation useful both as a tooling feature (litmus suites ship
// "+mfences" variants) and as a test oracle: the fully fenced test's
// outcome set under a weak model must equal the original's under SC.
func WithFences(t *Test) *Test {
	out := t.Clone()
	out.Name = t.Name + "+mfences"
	if t.Doc != "" {
		out.Doc = t.Doc + " (fully fenced)"
	}
	for ti := range out.Threads {
		var instrs []Instr
		lastWasAccess := false
		for _, in := range out.Threads[ti].Instrs {
			if in.Kind == OpFence {
				instrs = append(instrs, in)
				lastWasAccess = false
				continue
			}
			if lastWasAccess {
				instrs = append(instrs, Fence())
			}
			instrs = append(instrs, in)
			lastWasAccess = true
		}
		out.Threads[ti].Instrs = instrs
	}
	return out
}

// Rename returns a copy of the test under a new name.
func Rename(t *Test, name string) *Test {
	out := t.Clone()
	out.Name = name
	return out
}

// RelabelLocations returns a copy with every shared location renamed via
// the mapping; locations absent from the map keep their name. Useful when
// merging corpora whose tests reuse location names. It fails if the
// mapping collapses two distinct locations into one.
func RelabelLocations(t *Test, mapping map[Loc]Loc) (*Test, error) {
	rename := func(l Loc) Loc {
		if n, ok := mapping[l]; ok {
			return n
		}
		return l
	}
	seen := map[Loc]Loc{}
	for _, l := range t.Locs() {
		n := rename(l)
		if prev, ok := seen[n]; ok && prev != l {
			return nil, fmt.Errorf("litmus: relabeling collapses %s and %s into %s", prev, l, n)
		}
		seen[n] = l
	}
	out := t.Clone()
	if out.Init != nil {
		init := make(map[Loc]int64, len(out.Init))
		for l, v := range out.Init {
			init[rename(l)] = v
		}
		out.Init = init
	}
	for ti := range out.Threads {
		for ii := range out.Threads[ti].Instrs {
			in := &out.Threads[ti].Instrs[ii]
			if in.Kind != OpFence {
				in.Loc = rename(in.Loc)
			}
		}
	}
	for ci := range out.Target.Conds {
		if out.Target.Conds[ci].IsMem() {
			out.Target.Conds[ci].Loc = rename(out.Target.Conds[ci].Loc)
		}
	}
	return out, nil
}
