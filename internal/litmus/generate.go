package litmus

import (
	"fmt"
	"math/rand"
)

// GenConfig controls random litmus test generation (a diy-like generator,
// used by property tests and to synthesize the non-convertible remainder
// of the paper's 88-test corpus for the Section VII-G experiment).
type GenConfig struct {
	// MinThreads and MaxThreads bound the thread count (inclusive).
	MinThreads, MaxThreads int
	// MaxInstrs bounds instructions per thread (at least 1 is generated).
	MaxInstrs int
	// Locs is the pool of shared locations to draw from.
	Locs []Loc
	// FenceProb is the probability that a slot becomes a fence.
	FenceProb float64
	// MemTarget forces the generated target outcome to include a
	// final-memory condition, making the test non-convertible.
	MemTarget bool
}

// DefaultGenConfig returns a config producing small 2-4 thread tests over
// locations x, y, z.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		MinThreads: 2,
		MaxThreads: 4,
		MaxInstrs:  4,
		Locs:       []Loc{"x", "y", "z"},
		FenceProb:  0.15,
	}
}

// Generate builds a random valid litmus test from cfg using rng. The
// target outcome is drawn uniformly from the test's outcome space (and
// extended with a memory condition when cfg.MemTarget is set). Generated
// tests always contain at least one load and one store overall, and every
// stored value is unique per location as Validate requires.
func Generate(rng *rand.Rand, cfg GenConfig, name string) *Test {
	if cfg.MinThreads < 1 {
		cfg.MinThreads = 1
	}
	if cfg.MaxThreads < cfg.MinThreads {
		cfg.MaxThreads = cfg.MinThreads
	}
	if cfg.MaxInstrs < 1 {
		cfg.MaxInstrs = 1
	}
	if len(cfg.Locs) == 0 {
		cfg.Locs = []Loc{"x", "y"}
	}

	for attempt := 0; ; attempt++ {
		t := generateOnce(rng, cfg, name)
		if t != nil {
			return t
		}
		if attempt > 1000 {
			panic("litmus: generator failed to produce a valid test after 1000 attempts")
		}
	}
}

func generateOnce(rng *rand.Rand, cfg GenConfig, name string) *Test {
	nThreads := cfg.MinThreads + rng.Intn(cfg.MaxThreads-cfg.MinThreads+1)
	t := &Test{Name: name, Doc: "randomly generated", Init: map[Loc]int64{}}
	nextVal := map[Loc]int64{}
	haveLoad, haveStore := false, false

	for ti := 0; ti < nThreads; ti++ {
		nInstr := 1 + rng.Intn(cfg.MaxInstrs)
		var th Thread
		nextReg := 0
		for ii := 0; ii < nInstr; ii++ {
			loc := cfg.Locs[rng.Intn(len(cfg.Locs))]
			switch {
			case rng.Float64() < cfg.FenceProb && len(th.Instrs) > 0:
				th.Instrs = append(th.Instrs, Fence())
			case rng.Intn(2) == 0:
				nextVal[loc]++
				th.Instrs = append(th.Instrs, Store(loc, nextVal[loc]))
				haveStore = true
			default:
				th.Instrs = append(th.Instrs, Load(nextReg, loc))
				nextReg++
				haveLoad = true
			}
		}
		t.Threads = append(t.Threads, th)
	}
	if !haveLoad || !haveStore {
		return nil
	}

	outs := t.AllOutcomes()
	if len(outs) == 0 {
		return nil
	}
	t.Target = outs[rng.Intn(len(outs))]
	if cfg.MemTarget {
		// Constrain the final value of a stored location to a value some
		// thread actually stores there (or 0).
		var stored []Loc
		for _, loc := range t.Locs() {
			if len(t.StoreValues(loc)) > 0 {
				stored = append(stored, loc)
			}
		}
		loc := stored[rng.Intn(len(stored))]
		vals := append([]int64{0}, t.StoreValues(loc)...)
		t.Target.Conds = append(t.Target.Conds, Cond{Loc: loc, Value: vals[rng.Intn(len(vals))]})
	}
	if err := t.Validate(); err != nil {
		return nil
	}
	return t
}

// GenerateCorpus produces n random tests named prefix000, prefix001, ...
func GenerateCorpus(rng *rand.Rand, cfg GenConfig, prefix string, n int) []*Test {
	tests := make([]*Test, n)
	for i := range tests {
		tests[i] = Generate(rng, cfg, fmt.Sprintf("%s%03d", prefix, i))
	}
	return tests
}
