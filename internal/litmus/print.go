package litmus

import (
	"fmt"
	"strings"
)

// Format renders the test in the litmus7-style text format accepted by
// Parse, so Parse(Format(t)) round-trips (modulo register naming, which
// uses EAX, EBX, ... in register-index order).
func Format(t *Test) string {
	var b strings.Builder
	fmt.Fprintf(&b, "X86 %s\n", t.Name)
	if t.Doc != "" {
		fmt.Fprintf(&b, "%q\n", t.Doc)
	}

	// Init block over all referenced locations, sorted.
	b.WriteString("{ ")
	for _, loc := range t.Locs() {
		fmt.Fprintf(&b, "%s=%d; ", loc, t.Init[loc])
	}
	b.WriteString("}\n")

	// Column cells.
	n := len(t.Threads)
	rows := 0
	for _, th := range t.Threads {
		if len(th.Instrs) > rows {
			rows = len(th.Instrs)
		}
	}
	cells := make([][]string, rows+1)
	for r := range cells {
		cells[r] = make([]string, n)
	}
	for ti := range t.Threads {
		cells[0][ti] = fmt.Sprintf("P%d", ti)
	}
	for ti, th := range t.Threads {
		for ii, in := range th.Instrs {
			cells[ii+1][ti] = formatInstr(in)
		}
	}
	widths := make([]int, n)
	for _, row := range cells {
		for ci, c := range row {
			if len(c) > widths[ci] {
				widths[ci] = len(c)
			}
		}
	}
	for _, row := range cells {
		parts := make([]string, n)
		for ci, c := range row {
			parts[ci] = fmt.Sprintf(" %-*s ", widths[ci], c)
		}
		b.WriteString(strings.Join(parts, "|"))
		b.WriteString(";\n")
	}

	// Condition.
	parts := make([]string, len(t.Target.Conds))
	for i, c := range t.Target.Conds {
		if c.IsMem() {
			parts[i] = fmt.Sprintf("[%s]=%d", c.Loc, c.Value)
		} else {
			parts[i] = fmt.Sprintf("%d:%s=%d", c.Thread, regName(c.Reg), c.Value)
		}
	}
	fmt.Fprintf(&b, "exists (%s)\n", strings.Join(parts, ` /\ `))
	return b.String()
}

func formatInstr(in Instr) string {
	switch in.Kind {
	case OpStore:
		return fmt.Sprintf("MOV [%s],$%d", in.Loc, in.Value)
	case OpLoad:
		return fmt.Sprintf("MOV %s,[%s]", regName(in.Reg), in.Loc)
	case OpFence:
		return "MFENCE"
	default:
		return "?"
	}
}

var x86Regs = []string{"EAX", "EBX", "ECX", "EDX", "ESI", "EDI", "R8D", "R9D", "R10D", "R11D", "R12D", "R13D", "R14D", "R15D"}

func regName(idx int) string {
	if idx < len(x86Regs) {
		return x86Regs[idx]
	}
	return fmt.Sprintf("REG%d", idx)
}
