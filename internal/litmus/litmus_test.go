package litmus

import (
	"strings"
	"testing"
)

func sbTest(t *testing.T) *Test {
	t.Helper()
	test, err := SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	return test
}

func TestSuiteSizeAndGroups(t *testing.T) {
	if got := len(Suite()); got != 34 {
		t.Fatalf("suite has %d tests, want 34 (Table II)", got)
	}
	if got := len(AllowedSuite()); got != 12 {
		t.Fatalf("allowed group has %d tests, want 12", got)
	}
	if got := len(ForbiddenSuite()); got != 22 {
		t.Fatalf("forbidden group has %d tests, want 22", got)
	}
}

func TestSuiteTableIISignatures(t *testing.T) {
	// [T, T_L] per test, straight from Table II of the paper.
	want := map[string][2]int{
		"amd3": {2, 2}, "iwp23b": {2, 2}, "iwp24": {2, 2},
		"n1": {3, 2}, "podwr000": {2, 2}, "podwr001": {3, 3},
		"rfi009": {2, 2}, "rfi013": {2, 2}, "rfi015": {3, 2},
		"rfi017": {2, 2}, "rwc-unfenced": {3, 2}, "sb": {2, 2},
		"amd10": {2, 2}, "amd5": {2, 2}, "amd5+staleld": {2, 2},
		"co-iriw": {4, 2}, "iriw": {4, 2}, "lb": {2, 2},
		"mp": {2, 1}, "mp+staleld": {2, 1}, "mp+fences": {2, 1},
		"n4": {2, 2}, "n5": {2, 2}, "rwc-fenced": {3, 2},
		"safe006": {2, 2}, "safe007": {3, 3}, "safe012": {3, 2},
		"safe018": {3, 2}, "safe022": {2, 1}, "safe024": {3, 2},
		"safe027": {4, 2}, "safe028": {3, 2}, "safe036": {2, 2},
		"wrc": {3, 2},
	}
	if len(want) != 34 {
		t.Fatalf("test table has %d entries, want 34", len(want))
	}
	for _, e := range Suite() {
		sig, ok := want[e.Test.Name]
		if !ok {
			t.Errorf("unexpected suite test %q", e.Test.Name)
			continue
		}
		if e.Test.T() != sig[0] || e.Test.TL() != sig[1] {
			t.Errorf("%s: [T,TL] = [%d,%d], want [%d,%d]",
				e.Test.Name, e.Test.T(), e.Test.TL(), sig[0], sig[1])
		}
		delete(want, e.Test.Name)
	}
	for name := range want {
		t.Errorf("suite is missing test %q", name)
	}
}

func TestSuiteValidates(t *testing.T) {
	for _, e := range Suite() {
		if err := e.Test.Validate(); err != nil {
			t.Errorf("%s: %v", e.Test.Name, err)
		}
	}
	for _, test := range NonConvertible() {
		if err := test.Validate(); err != nil {
			t.Errorf("%s: %v", test.Name, err)
		}
	}
}

func TestSuiteOrdering(t *testing.T) {
	entries := Suite()
	for i := 1; i < len(entries); i++ {
		a, b := entries[i-1], entries[i]
		if !a.Allowed && b.Allowed {
			t.Fatalf("allowed test %q follows forbidden test %q", b.Test.Name, a.Test.Name)
		}
		if a.Allowed == b.Allowed && a.Test.Name >= b.Test.Name {
			t.Fatalf("suite not alphabetical within group: %q >= %q", a.Test.Name, b.Test.Name)
		}
	}
}

func TestSuiteTestUnknown(t *testing.T) {
	if _, err := SuiteTest("no-such-test"); err == nil {
		t.Fatal("want error for unknown test name")
	}
}

func TestThreadCounts(t *testing.T) {
	sb := sbTest(t)
	if got := sb.Threads[0].Loads(); got != 1 {
		t.Errorf("sb thread 0 loads = %d, want 1", got)
	}
	if got := sb.Threads[0].Stores(); got != 1 {
		t.Errorf("sb thread 0 stores = %d, want 1", got)
	}
	mp, err := SuiteTest("mp")
	if err != nil {
		t.Fatal(err)
	}
	if got := mp.Threads[0].Loads(); got != 0 {
		t.Errorf("mp thread 0 loads = %d, want 0", got)
	}
	if got := mp.TL(); got != 1 {
		t.Errorf("mp TL = %d, want 1", got)
	}
	if got := mp.LoadThreads(); len(got) != 1 || got[0] != 1 {
		t.Errorf("mp LoadThreads = %v, want [1]", got)
	}
}

func TestLocsAndStoreValues(t *testing.T) {
	amd3, err := SuiteTest("amd3")
	if err != nil {
		t.Fatal(err)
	}
	locs := amd3.Locs()
	if len(locs) != 2 || locs[0] != "x" || locs[1] != "y" {
		t.Fatalf("amd3 locs = %v, want [x y]", locs)
	}
	xs := amd3.StoreValues("x")
	if len(xs) != 2 || xs[0] != 1 || xs[1] != 2 {
		t.Fatalf("amd3 x store values = %v, want [1 2] (k_x = 2)", xs)
	}
	if got := amd3.StoreValues("y"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("amd3 y store values = %v, want [1]", got)
	}
	if got := amd3.StoreValues("nope"); len(got) != 0 {
		t.Fatalf("store values of unused loc = %v, want empty", got)
	}
}

func TestStoresTo(t *testing.T) {
	amd3, err := SuiteTest("amd3")
	if err != nil {
		t.Fatal(err)
	}
	refs := amd3.StoresTo("x")
	if len(refs) != 2 {
		t.Fatalf("amd3 has %d stores to x, want 2", len(refs))
	}
	if refs[0] != (InstrRef{0, 0}) || refs[1] != (InstrRef{0, 1}) {
		t.Fatalf("amd3 stores to x = %v", refs)
	}
	if in := refs[1].Instr(amd3); in.Value != 2 {
		t.Fatalf("second store to x has value %d, want 2", in.Value)
	}
}

func TestRegs(t *testing.T) {
	staleld, err := SuiteTest("mp+staleld")
	if err != nil {
		t.Fatal(err)
	}
	regs := staleld.Regs()
	if regs[0] != 0 || regs[1] != 3 {
		t.Fatalf("mp+staleld regs = %v, want [0 3]", regs)
	}
}

func TestAllOutcomesSB(t *testing.T) {
	sb := sbTest(t)
	outs := sb.AllOutcomes()
	if len(outs) != 4 {
		t.Fatalf("sb has %d outcomes, want 4", len(outs))
	}
	keys := map[string]bool{}
	for _, o := range outs {
		keys[o.Key()] = true
	}
	for _, want := range []Outcome{
		{Conds: []Cond{{0, 0, 0, ""}, {1, 0, 0, ""}}},
		{Conds: []Cond{{0, 0, 0, ""}, {1, 0, 1, ""}}},
		{Conds: []Cond{{0, 0, 1, ""}, {1, 0, 0, ""}}},
		{Conds: []Cond{{0, 0, 1, ""}, {1, 0, 1, ""}}},
	} {
		if !keys[want.Key()] {
			t.Errorf("missing outcome %v", want)
		}
	}
	// The target must be among the enumerated outcomes.
	found := false
	for _, o := range outs {
		if o.Equal(sb.Target) {
			found = true
		}
	}
	if !found {
		t.Error("sb target outcome not in AllOutcomes")
	}
}

func TestAllOutcomesPodwr001(t *testing.T) {
	test, err := SuiteTest("podwr001")
	if err != nil {
		t.Fatal(err)
	}
	if got := len(test.AllOutcomes()); got != 8 {
		t.Fatalf("podwr001 has %d outcomes, want 8 (2^3)", got)
	}
}

func TestAllOutcomesContainTargets(t *testing.T) {
	for _, e := range Suite() {
		found := false
		for _, o := range e.Test.AllOutcomes() {
			if o.Equal(e.Test.Target) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: target %v not in outcome space", e.Test.Name, e.Test.Target)
		}
	}
}

func TestOutcomeHolds(t *testing.T) {
	o := Outcome{Conds: []Cond{{Thread: 0, Reg: 0, Value: 1}, {Thread: 1, Reg: 0, Value: 0}}}
	if !o.Holds([][]int64{{1}, {0}}) {
		t.Error("outcome should hold")
	}
	if o.Holds([][]int64{{1}, {1}}) {
		t.Error("outcome should not hold with wrong value")
	}
	if o.Holds([][]int64{{1}}) {
		t.Error("outcome should not hold with missing thread")
	}
	if o.Holds([][]int64{{}, {0}}) {
		t.Error("outcome should not hold with missing register")
	}
}

func TestOutcomeHoldsFullMem(t *testing.T) {
	o := Outcome{Conds: []Cond{{Loc: "x", Value: 2}}}
	if !o.HoldsFull(nil, map[Loc]int64{"x": 2}) {
		t.Error("memory outcome should hold")
	}
	if o.HoldsFull(nil, map[Loc]int64{"x": 1}) {
		t.Error("memory outcome should not hold with wrong value")
	}
	if o.Holds(nil) {
		t.Error("memory outcome must not hold without memory")
	}
	if !o.HasMemConds() {
		t.Error("HasMemConds should be true")
	}
	reg := Outcome{Conds: []Cond{{Thread: 0, Reg: 0, Value: 1}}}
	if reg.HasMemConds() {
		t.Error("register outcome has no memory conditions")
	}
}

func TestOutcomeKeyCanonical(t *testing.T) {
	a := Outcome{Conds: []Cond{{Thread: 1, Reg: 0, Value: 0}, {Thread: 0, Reg: 0, Value: 1}}}
	b := Outcome{Conds: []Cond{{Thread: 0, Reg: 0, Value: 1}, {Thread: 1, Reg: 0, Value: 0}}}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	if !a.Equal(b) {
		t.Error("reordered outcomes should be equal")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		test *Test
		want string
	}{
		{
			"no name",
			&Test{Threads: threads([]Instr{Store("x", 1)})},
			"no name",
		},
		{
			"no threads",
			&Test{Name: "t"},
			"no threads",
		},
		{
			"empty thread",
			&Test{Name: "t", Threads: []Thread{{}},
				Target: outcome(rc(0, 0, 0))},
			"empty",
		},
		{
			"non-positive store",
			&Test{Name: "t", Threads: threads([]Instr{Store("x", 0)}),
				Target: outcome(rc(0, 0, 0))},
			"non-positive",
		},
		{
			"duplicate store value",
			&Test{Name: "t", Threads: threads(
				[]Instr{Store("x", 1)}, []Instr{Store("x", 1), Load(0, "x")}),
				Target: outcome(rc(1, 0, 0))},
			"duplicate store",
		},
		{
			"outcome thread out of range",
			&Test{Name: "t", Threads: threads([]Instr{Load(0, "x"), Store("y", 1)}),
				Target: outcome(rc(3, 0, 0))},
			"references thread",
		},
		{
			"outcome register out of range",
			&Test{Name: "t", Threads: threads([]Instr{Load(0, "x"), Store("y", 1)}),
				Target: outcome(rc(0, 5, 0))},
			"registers",
		},
		{
			"empty outcome",
			&Test{Name: "t", Threads: threads([]Instr{Load(0, "x"), Store("y", 1)})},
			"no conditions",
		},
		{
			"duplicate condition",
			&Test{Name: "t", Threads: threads([]Instr{Load(0, "x"), Store("y", 1)}),
				Target: outcome(rc(0, 0, 0), rc(0, 0, 1))},
			"twice",
		},
		{
			"duplicate register write",
			&Test{Name: "t", Threads: threads([]Instr{Load(0, "x"), Load(0, "y"), Store("z", 1)}),
				Target: outcome(rc(0, 0, 0))},
			"duplicate register write",
		},
		{
			"undefined outcome location",
			&Test{Name: "t", Threads: threads([]Instr{Load(0, "x"), Store("y", 1)}),
				Target: outcome(Cond{Loc: "q", Value: 1})},
			"undefined location",
		},
	}
	for _, c := range cases {
		err := c.test.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted invalid test", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestClone(t *testing.T) {
	sb := sbTest(t)
	c := sb.Clone()
	c.Threads[0].Instrs[0] = Store("q", 9)
	c.Target.Conds[0].Value = 7
	if sb.Threads[0].Instrs[0].Loc != "x" {
		t.Error("clone mutation leaked into original threads")
	}
	if sb.Target.Conds[0].Value == 7 {
		t.Error("clone mutation leaked into original target")
	}
}

func TestInstrString(t *testing.T) {
	if got := Store("x", 3).String(); got != "[x] <- 3" {
		t.Errorf("store string = %q", got)
	}
	if got := Load(1, "y").String(); got != "r1 <- [y]" {
		t.Errorf("load string = %q", got)
	}
	if got := Fence().String(); got != "mfence" {
		t.Errorf("fence string = %q", got)
	}
}
