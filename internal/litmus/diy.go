package litmus

import (
	"fmt"
	"strings"
)

// This file is a diy-style cycle-based litmus test generator: it
// synthesizes a litmus test from a *relaxation cycle* — a sequence of
// happens-before edge kinds that must form a cycle for the target outcome
// to occur. diy (the generator behind the paper's original 88-test suite)
// pioneered this construction; the PerpLE Converter "extends such tools
// by converting newly generated litmus tests to their perpetual
// counterpart" (Section VIII), which this package enables end to end:
//
//	test, _ := litmus.FromCycle("w1", litmus.Rfe, litmus.PodRR, litmus.Fre, litmus.PodWR)
//	pt, _ := core.Convert(test)
//
// The classic tests arise from classic cycles:
//
//	sb   = PodWR Fre PodWR Fre
//	mp   = PodWW Rfe PodRR Fre
//	lb   = PodRW Rfe PodRW Rfe
//	wrc  = Rfe PodRW Rfe PodRR Fre
//	iriw = Rfe PodRR Fre Rfe PodRR Fre
//
// A cycle is SC-forbidden by construction; it is observable on a machine
// exactly when the machine relaxes at least one of its program-order
// edges (e.g. TSO relaxes PodWR, PSO additionally PodWW).

// EdgeSpec is one edge of a relaxation cycle.
type EdgeSpec int

const (
	// Rfe: a cross-thread read-from — the next event is a load on a new
	// thread reading this thread's store.
	Rfe EdgeSpec = iota
	// Fre: a cross-thread from-read — the next event is a store on a new
	// thread overwriting the value this load read.
	Fre
	// Wse: a cross-thread write-serialization — the next event is a store
	// on a new thread ordered after this store.
	Wse
	// PodWR: program order on one thread, store then load, different
	// locations (the edge TSO relaxes).
	PodWR
	// PodRR: program order, load then load, different locations.
	PodRR
	// PodRW: program order, load then store, different locations.
	PodRW
	// PodWW: program order, store then store, different locations (the
	// edge PSO additionally relaxes).
	PodWW
	// FencedWR / FencedRR / FencedRW / FencedWW: the same program-order
	// edges with an MFENCE between the two accesses (never relaxed).
	FencedWR
	FencedRR
	FencedRW
	FencedWW
)

func (e EdgeSpec) String() string {
	switch e {
	case Rfe:
		return "Rfe"
	case Fre:
		return "Fre"
	case Wse:
		return "Wse"
	case PodWR:
		return "PodWR"
	case PodRR:
		return "PodRR"
	case PodRW:
		return "PodRW"
	case PodWW:
		return "PodWW"
	case FencedWR:
		return "FencedWR"
	case FencedRR:
		return "FencedRR"
	case FencedRW:
		return "FencedRW"
	case FencedWW:
		return "FencedWW"
	default:
		return fmt.Sprintf("EdgeSpec(%d)", int(e))
	}
}

// ParseEdge resolves an edge name (case-insensitive).
func ParseEdge(s string) (EdgeSpec, error) {
	for e := Rfe; e <= FencedWW; e++ {
		if strings.EqualFold(e.String(), s) {
			return e, nil
		}
	}
	return 0, fmt.Errorf("litmus: unknown cycle edge %q", s)
}

// ParseCycle resolves a whitespace-separated list of edge names.
func ParseCycle(s string) ([]EdgeSpec, error) {
	var edges []EdgeSpec
	for _, tok := range strings.Fields(s) {
		e, err := ParseEdge(tok)
		if err != nil {
			return nil, err
		}
		edges = append(edges, e)
	}
	if len(edges) == 0 {
		return nil, fmt.Errorf("litmus: empty cycle")
	}
	return edges, nil
}

// External reports whether the edge moves to a new thread (Rfe, Fre,
// Wse); program-order edges stay on the current thread.
func (e EdgeSpec) External() bool { return e == Rfe || e == Fre || e == Wse }

// fenced reports whether the program-order edge carries an MFENCE.
func (e EdgeSpec) fenced() bool { return e >= FencedWR }

// srcIsStore / dstIsStore give the access kinds the edge connects.
func (e EdgeSpec) srcIsStore() bool {
	switch e {
	case Rfe, Wse, PodWR, PodWW, FencedWR, FencedWW:
		return true
	}
	return false
}

func (e EdgeSpec) dstIsStore() bool {
	switch e {
	case Fre, Wse, PodRW, PodWW, FencedRW, FencedWW:
		return true
	}
	return false
}

// cycleEvent is one access of the synthesized cycle.
type cycleEvent struct {
	thread  int
	isStore bool
	loc     Loc
	// value is assigned later: stores get fresh per-location values;
	// loads get the expected value of the outcome condition.
	value int64
	reg   int
	fence bool // an MFENCE precedes this event (same thread)
}

// FromCycle synthesizes a litmus test whose target outcome occurs exactly
// when the given happens-before cycle is exhibited. The construction
// walks the cycle: external edges (Rfe/Fre/Wse) start a new thread and a
// new event on it; program-order edges append the next event to the
// current thread. Locations change on every program-order edge (po edges
// relate different locations) and persist across external edges (which
// relate same-location accesses). The final edge must close the cycle
// back to the first event consistently — the cycle must therefore start
// with an external edge's destination kind matching the last edge.
//
// The target outcome records, for each load: the stored value it reads
// (for a load that is an rf destination) or the initial 0 (for a load
// that is an fr source reading before the overwriting store).
func FromCycle(name string, edges ...EdgeSpec) (*Test, error) {
	if len(edges) < 2 {
		return nil, fmt.Errorf("litmus: cycle needs at least 2 edges, got %d", len(edges))
	}
	nExternal := 0
	for _, e := range edges {
		if e.External() {
			nExternal++
		}
	}
	if nExternal < 2 {
		return nil, fmt.Errorf("litmus: cycle needs at least 2 external edges to involve 2 threads")
	}
	if !edges[len(edges)-1].External() {
		// Rotate so the cycle ends on an external edge; the first event
		// then starts a fresh thread and closure is cross-thread.
		for i := len(edges) - 1; i >= 0; i-- {
			if edges[i].External() {
				edges = append(edges[i+1:], edges[:i+1]...)
				break
			}
		}
	}

	// Walk the cycle, creating events. Event 0's kind is the destination
	// kind of the final (external) edge.
	events := make([]cycleEvent, len(edges))
	events[0] = cycleEvent{thread: 0, isStore: edges[len(edges)-1].dstIsStore()}
	locID := 0
	loc := func(i int) Loc { return Loc(fmt.Sprintf("v%d", i)) }
	events[0].loc = loc(locID)
	thread := 0
	for i, e := range edges[:len(edges)-1] {
		if e.srcIsStore() != events[i].isStore {
			return nil, fmt.Errorf("litmus: edge %d (%v) expects a %s source but the walk produced a %s",
				i, e, accessKind(e.srcIsStore()), accessKind(events[i].isStore))
		}
		next := cycleEvent{isStore: e.dstIsStore()}
		if e.External() {
			thread++
			next.thread = thread
			next.loc = events[i].loc // external edges relate one location
		} else {
			next.thread = thread
			locID++
			next.loc = loc(locID)
			next.fence = e.fenced()
		}
		events[i+1] = next
	}
	last := edges[len(edges)-1]
	if last.srcIsStore() != events[len(events)-1].isStore {
		return nil, fmt.Errorf("litmus: closing edge %v expects a %s source", last, accessKind(last.srcIsStore()))
	}
	if last.dstIsStore() != events[0].isStore {
		return nil, fmt.Errorf("litmus: closing edge %v does not match the first event", last)
	}
	// The closing external edge relates the last and first events'
	// locations: unify them.
	firstLoc := events[0].loc
	lastLoc := events[len(events)-1].loc
	for i := range events {
		if events[i].loc == lastLoc {
			events[i].loc = firstLoc
		}
	}

	// Critical-cycle side conditions (Shasha & Snir): after unification,
	// no thread may touch one location twice — otherwise the test carries
	// extra coherence edges that change the cycle's meaning (a
	// program-order edge inside a single location chain is the degenerate
	// case). diy imposes the same restriction.
	seen := map[[2]interface{}]bool{}
	for _, ev := range events {
		key := [2]interface{}{ev.thread, ev.loc}
		if seen[key] {
			return nil, fmt.Errorf("litmus: cycle %s is degenerate: thread %d accesses %s twice",
				cycleString(edges), ev.thread, ev.loc)
		}
		seen[key] = true
	}

	// Assign store values (fresh per location) and registers.
	t := &Test{Name: name, Doc: "generated from cycle " + cycleString(edges), Init: map[Loc]int64{}}
	nextVal := map[Loc]int64{}
	regs := map[int]int{}
	for i := range events {
		ev := &events[i]
		if ev.isStore {
			nextVal[ev.loc]++
			ev.value = nextVal[ev.loc]
		} else {
			ev.reg = regs[ev.thread]
			regs[ev.thread]++
		}
	}

	// The outcome: each edge determines what its load endpoint observed.
	// An Rfe edge's destination load reads the source store's value; an
	// Fre edge's source load read the value *before* the destination
	// store — i.e. the previous value of the location (0 if the
	// destination store is the location's first).
	valueRead := make([]int64, len(events))
	for i := range valueRead {
		valueRead[i] = -1
	}
	set := func(i int, v int64) error {
		if valueRead[i] >= 0 && valueRead[i] != v {
			return fmt.Errorf("litmus: cycle %s is incoherent: event %d must read both %d and %d",
				cycleString(edges), i, valueRead[i], v)
		}
		valueRead[i] = v
		return nil
	}
	for i, e := range edges {
		src, dst := i, (i+1)%len(events)
		switch e {
		case Rfe:
			if err := set(dst, events[src].value); err != nil {
				return nil, err
			}
		case Fre:
			if err := set(src, events[dst].value-1); err != nil {
				return nil, err
			}
		}
	}
	// Any load not constrained by an external edge reads the initial 0;
	// the outcome must pin every register to stay a single outcome.
	for i := range events {
		if !events[i].isStore && valueRead[i] < 0 {
			valueRead[i] = 0
		}
	}

	// Emit threads.
	maxThread := 0
	for _, ev := range events {
		if ev.thread > maxThread {
			maxThread = ev.thread
		}
	}
	t.Threads = make([]Thread, maxThread+1)
	for _, ev := range events {
		th := &t.Threads[ev.thread]
		if ev.fence {
			th.Instrs = append(th.Instrs, Fence())
		}
		if ev.isStore {
			th.Instrs = append(th.Instrs, Store(ev.loc, ev.value))
		} else {
			th.Instrs = append(th.Instrs, Load(ev.reg, ev.loc))
		}
	}
	for i, ev := range events {
		if !ev.isStore {
			t.Target.Conds = append(t.Target.Conds, Cond{Thread: ev.thread, Reg: ev.reg, Value: valueRead[i]})
		}
	}

	// Locations written by more than one store need the intended
	// write-serialization order pinned, or the outcome admits witnesses
	// with the stores reversed and the cycle dissolves. Register values
	// cannot observe ws directly, so — exactly as diy does — pin it with
	// a final-state condition: the intended ws-last store must be the
	// final value. Such tests are not convertible to perpetual tests
	// (Section V-C of the paper); they are the corpus the paper runs
	// under litmus7 only.
	for _, loc := range t.Locs() {
		if vals := t.StoreValues(loc); len(vals) > 1 {
			t.Target.Conds = append(t.Target.Conds, Cond{Loc: loc, Value: vals[len(vals)-1]})
		}
	}

	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("litmus: cycle %s produced an invalid test: %w", cycleString(edges), err)
	}
	return t, nil
}

func accessKind(isStore bool) string {
	if isStore {
		return "store"
	}
	return "load"
}

func cycleString(edges []EdgeSpec) string {
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}
