package litmus

import "testing"

func TestRename(t *testing.T) {
	sb, err := SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	r := Rename(sb, "sb-copy")
	if r.Name != "sb-copy" || sb.Name != "sb" {
		t.Errorf("rename wrong: %q / %q", r.Name, sb.Name)
	}
	if len(r.Threads) != len(sb.Threads) {
		t.Error("rename lost threads")
	}
}

func TestWithFencesPackageLocal(t *testing.T) {
	lb, err := SuiteTest("lb")
	if err != nil {
		t.Fatal(err)
	}
	fenced := WithFences(lb)
	// lb: load;store per thread → load;fence;store.
	for ti, th := range fenced.Threads {
		if len(th.Instrs) != 3 || th.Instrs[1].Kind != OpFence {
			t.Errorf("thread %d: %v", ti, th.Instrs)
		}
	}
	if err := fenced.Validate(); err != nil {
		t.Error(err)
	}
	if fenced.Doc == lb.Doc {
		t.Error("doc should note the fencing")
	}
}

func TestRelabelLocationsPackageLocal(t *testing.T) {
	mp, err := SuiteTest("mp")
	if err != nil {
		t.Fatal(err)
	}
	out, err := RelabelLocations(mp, map[Loc]Loc{"x": "data", "y": "flag"})
	if err != nil {
		t.Fatal(err)
	}
	if out.Threads[0].Instrs[0].Loc != "data" || out.Threads[0].Instrs[1].Loc != "flag" {
		t.Errorf("relabel wrong: %v", out.Threads[0].Instrs)
	}
	// Memory conditions are relabeled too.
	nc := NonConvertible()[0] // 2+2w with [x]/[y] conditions
	out2, err := RelabelLocations(nc, map[Loc]Loc{"x": "p"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range out2.Target.Conds {
		if c.IsMem() && c.Loc == "p" {
			found = true
		}
	}
	if !found {
		t.Errorf("memory condition not relabeled: %v", out2.Target)
	}
	// Init values follow the location.
	withInit := mp.Clone()
	withInit.Init = map[Loc]int64{"x": 0}
	out3, err := RelabelLocations(withInit, map[Loc]Loc{"x": "q"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := out3.Init["q"]; !ok {
		t.Error("init not relabeled")
	}
}

func TestStringers(t *testing.T) {
	if OpStore.String() != "store" || OpLoad.String() != "load" || OpFence.String() != "fence" {
		t.Error("OpKind strings wrong")
	}
	if OpKind(42).String() == "" {
		t.Error("unknown OpKind should still render")
	}
	c := Cond{Loc: "x", Value: 3}
	if c.String() != "[x]=3" {
		t.Errorf("mem cond string = %q", c.String())
	}
	o := Outcome{Conds: []Cond{{Thread: 0, Reg: 1, Value: 2}, {Loc: "y", Value: 0}}}
	if got := o.String(); got != "0:r1=2 && [y]=0" {
		t.Errorf("outcome string = %q", got)
	}
	ref := InstrRef{Thread: 2, Index: 1}
	if ref.String() != "i21" {
		t.Errorf("instr ref string = %q", ref.String())
	}
}

func TestRegNameOverflow(t *testing.T) {
	if regName(0) != "EAX" {
		t.Errorf("reg 0 = %q", regName(0))
	}
	if got := regName(99); got != "REG99" {
		t.Errorf("reg 99 = %q", got)
	}
}
