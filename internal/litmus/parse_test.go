package litmus

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

const sbSource = `
X86 sb
"store buffering"
{ x=0; y=0; }
 P0          | P1          ;
 MOV [x],$1  | MOV [y],$1  ;
 MOV EAX,[y] | MOV EAX,[x] ;
exists (0:EAX=0 /\ 1:EAX=0)
`

func TestParseSB(t *testing.T) {
	got, err := Parse(sbSource)
	if err != nil {
		t.Fatal(err)
	}
	want := sbTest(t)
	if got.Name != "sb" || got.Doc != "store buffering" {
		t.Errorf("header parsed as %q/%q", got.Name, got.Doc)
	}
	if len(got.Threads) != 2 {
		t.Fatalf("parsed %d threads, want 2", len(got.Threads))
	}
	for ti := range want.Threads {
		if len(got.Threads[ti].Instrs) != len(want.Threads[ti].Instrs) {
			t.Fatalf("thread %d: %d instrs, want %d", ti,
				len(got.Threads[ti].Instrs), len(want.Threads[ti].Instrs))
		}
		for ii := range want.Threads[ti].Instrs {
			if got.Threads[ti].Instrs[ii] != want.Threads[ti].Instrs[ii] {
				t.Errorf("thread %d instr %d = %v, want %v", ti, ii,
					got.Threads[ti].Instrs[ii], want.Threads[ti].Instrs[ii])
			}
		}
	}
	if !got.Target.Equal(want.Target) {
		t.Errorf("target = %v, want %v", got.Target, want.Target)
	}
}

func TestParseFenceAndRaggedColumns(t *testing.T) {
	src := `
X86 amd5ish
{ x=0; y=0; }
 P0          | P1          ;
 MOV [x],$1  | MOV [y],$1  ;
 MFENCE      | MFENCE      ;
 MOV EAX,[y] |             ;
             | MOV EBX,[x] ;
exists (0:EAX=0 /\ 1:EBX=0)
`
	got, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Threads[0].Instrs) != 3 || len(got.Threads[1].Instrs) != 3 {
		t.Fatalf("instr counts = %d/%d, want 3/3",
			len(got.Threads[0].Instrs), len(got.Threads[1].Instrs))
	}
	if got.Threads[0].Instrs[1].Kind != OpFence {
		t.Error("thread 0 instr 1 should be a fence")
	}
	// EBX is thread 1's first register use, so it maps to index 0.
	if c := got.Target.Conds[1]; c.Thread != 1 || c.Reg != 0 {
		t.Errorf("second condition = %+v, want thread 1 reg 0", c)
	}
}

func TestParseMemCondition(t *testing.T) {
	src := `
X86 final
{ x=0; }
 P0          | P1          ;
 MOV [x],$1  | MOV [x],$2  ;
final ([x]=1)
`
	got, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Target.HasMemConds() {
		t.Error("parsed target should have a memory condition")
	}
	if c := got.Target.Conds[0]; c.Loc != "x" || c.Value != 1 {
		t.Errorf("memory condition = %+v, want [x]=1", c)
	}
	// Mixed register + memory conditions also parse.
	src = strings.Replace(src, "final ([x]=1)", "final ([x]=1 /\\ 0:EAX=2)", 1)
	src = strings.Replace(src, "MOV [x],$1  | MOV [x],$2  ;",
		"MOV [x],$1  | MOV [x],$2  ;\n MOV EAX,[x] |             ;", 1)
	got, err = Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Target.Conds) != 2 || !got.Target.HasMemConds() {
		t.Errorf("mixed target = %v", got.Target)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"empty", "", "empty input"},
		{"bad arch", "ARM t\n{x=0;}\n P0 ;\n MOV [x],$1 ;\nexists (0:EAX=0)", "unsupported architecture"},
		{"no init", "X86 t\n P0 ;\n MOV [x],$1 ;\nexists([x]=0)", "missing init"},
		{"bad header row", "X86 t\n{x=0;}\n Q0 ;\n MOV [x],$1 ;\nexists([x]=0)", "thread header"},
		{"bad instr", "X86 t\n{x=0;}\n P0 ;\n ADD EAX,$1 ;\nexists([x]=0)", "unsupported instruction"},
		{"bad store imm", "X86 t\n{x=0;}\n P0 ;\n MOV [x],EAX ;\nexists([x]=0)", "immediate"},
		{"wrong columns", "X86 t\n{x=0;}\n P0 ;\n MOV [x],$1 | MFENCE ;\nexists([x]=0)", "columns"},
		{"no condition", "X86 t\n{x=0;}\n P0 ;\n MOV [x],$1 ;", "missing exists"},
		{"unknown reg", "X86 t\n{x=0;}\n P0 ;\n MOV [x],$1 ;\n MOV EAX,[x] ;\nexists (0:EBX=0)", "never loads"},
		{"bad thread id", "X86 t\n{x=0;}\n P0 ;\n MOV [x],$1 ;\n MOV EAX,[x] ;\nexists (9:EAX=0)", "out of range"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: Parse accepted bad input", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestFormatParseRoundTripSuite(t *testing.T) {
	for _, e := range Suite() {
		src := Format(e.Test)
		got, err := Parse(src)
		if err != nil {
			t.Errorf("%s: reparse failed: %v\n%s", e.Test.Name, err, src)
			continue
		}
		if got.Name != e.Test.Name {
			t.Errorf("%s: name round-tripped to %q", e.Test.Name, got.Name)
		}
		if len(got.Threads) != len(e.Test.Threads) {
			t.Errorf("%s: thread count %d, want %d", e.Test.Name, len(got.Threads), len(e.Test.Threads))
			continue
		}
		for ti := range e.Test.Threads {
			for ii, want := range e.Test.Threads[ti].Instrs {
				if got.Threads[ti].Instrs[ii] != want {
					t.Errorf("%s: thread %d instr %d = %v, want %v",
						e.Test.Name, ti, ii, got.Threads[ti].Instrs[ii], want)
				}
			}
		}
		if !got.Target.Equal(e.Test.Target) {
			t.Errorf("%s: target %v, want %v", e.Test.Name, got.Target, e.Test.Target)
		}
	}
}

func TestFormatParseRoundTripGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultGenConfig()
	for i := 0; i < 50; i++ {
		test := Generate(rng, cfg, "gen")
		src := Format(test)
		got, err := Parse(src)
		if err != nil {
			t.Fatalf("generated test %d: reparse failed: %v\n%s", i, err, src)
		}
		if !got.Target.Equal(test.Target) {
			t.Fatalf("generated test %d: target %v, want %v", i, got.Target, test.Target)
		}
	}
}

func TestGeneratedTestsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		test := Generate(r, DefaultGenConfig(), "q")
		return test.Validate() == nil
	}
	cfg := &quick.Config{MaxCount: 100, Rand: rng}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestGenerateMemTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := DefaultGenConfig()
	cfg.MemTarget = true
	for i := 0; i < 20; i++ {
		test := Generate(rng, cfg, "nc")
		if !test.Target.HasMemConds() {
			t.Fatalf("test %d: MemTarget config produced convertible target %v", i, test.Target)
		}
	}
}

func TestGenerateCorpusNames(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	corpus := GenerateCorpus(rng, DefaultGenConfig(), "rand", 5)
	if len(corpus) != 5 {
		t.Fatalf("corpus size %d, want 5", len(corpus))
	}
	if corpus[0].Name != "rand000" || corpus[4].Name != "rand004" {
		t.Errorf("corpus names %q..%q", corpus[0].Name, corpus[4].Name)
	}
}

func TestParseLocationsDirective(t *testing.T) {
	src := `
X86 withlocs
{ x=0; y=0; }
 P0          | P1          ;
 MOV [x],$1  | MOV [y],$1  ;
 MOV EAX,[y] | MOV EAX,[x] ;
locations [x; y;]
exists (0:EAX=0 /\ 1:EAX=0)
`
	test, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(test.Threads[0].Instrs) != 2 {
		t.Errorf("locations line leaked into instructions: %v", test.Threads[0].Instrs)
	}
}

// TestParseErrorPositions checks that parse and validation failures point
// at the offending source line instead of silently accepting the test.
func TestParseErrorPositions(t *testing.T) {
	cases := []struct {
		name, src, wantLine, wantMsg string
	}{
		{
			"duplicate register write",
			"X86 dup\n{ x=0; }\n P0 ;\n MOV EAX,[x] ;\n MOV EAX,[y] ;\nexists (0:EAX=0)\n",
			"line 5", "duplicate register write",
		},
		{
			"undefined condition register",
			"X86 badreg\n{ x=0; }\n P0 ;\n MOV EAX,[x] ;\nexists (0:EBX=0)\n",
			"line 5", "never loads",
		},
		{
			"undefined condition location",
			"X86 badloc\n{ x=0; }\n P0 | P1 ;\n MOV [x],$1 | MOV EAX,[x] ;\nexists ([q]=1)\n",
			"line 5", "undefined location",
		},
		{
			"empty condition location",
			"X86 emptyloc\n{ x=0; }\n P0 | P1 ;\n MOV [x],$1 | MOV EAX,[x] ;\nexists (=1)\n",
			"line 5", "empty location",
		},
		{
			"bad instruction",
			"X86 badinstr\n{ x=0; }\n P0 ;\n XCHG [x],EAX ;\nexists (x=0)\n",
			"line 4", "unsupported instruction",
		},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%s: Parse accepted malformed input", c.name)
			continue
		}
		for _, want := range []string{c.wantLine, c.wantMsg} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not mention %q", c.name, err, want)
			}
		}
	}
}
