package litmus

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParseRoundTrip drives the litmus7-format parser with arbitrary
// input. Two properties must hold for every input:
//
//   - Parse never panics — malformed input is rejected with an error;
//   - accepted input round-trips: Format's rendering re-parses, and a
//     second Format is byte-identical to the first (Format output is a
//     fixed point, i.e. one parse fully normalizes a test).
//
// The seed corpus is the full testdata/suite, so `go test` (which runs
// the seeds as ordinary cases) already exercises every construct the
// suite uses; `make fuzz` explores beyond it.
func FuzzParseRoundTrip(f *testing.F) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "suite", "*.litmus"))
	if err != nil || len(files) == 0 {
		f.Fatalf("no suite seeds: %v", err)
	}
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	// Hand-picked shapes the suite underrepresents: final-memory
	// conditions, fences, and near-miss malformed headers.
	f.Add("X86 tiny\n{ x=0; }\n P0          ;\n MOV [x],$1  ;\nexists (x=1)\n")
	f.Add("X86 fenced\n{ x=0; y=0; }\n P0          | P1          ;\n MOV [x],$1  | MOV [y],$1  ;\n MFENCE      | MFENCE      ;\n MOV EAX,[y] | MOV EAX,[x] ;\nexists (0:EAX=0 /\\ 1:EAX=0)\n")
	f.Add("X86\n{}\nexists ()")

	f.Fuzz(func(t *testing.T, src string) {
		tc, err := Parse(src)
		if err != nil {
			return // rejection is fine; panicking is the bug
		}
		printed := Format(tc)
		tc2, err := Parse(printed)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\ninput:\n%s\nformatted:\n%s", err, src, printed)
		}
		if again := Format(tc2); again != printed {
			t.Fatalf("Format is not a fixed point\nfirst:\n%s\nsecond:\n%s", printed, again)
		}
	})
}
