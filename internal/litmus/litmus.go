// Package litmus defines the vocabulary of memory-consistency litmus
// testing: shared locations, per-thread register files, the three
// instruction kinds (store, load, fence), whole tests, and test outcomes.
//
// A litmus test is a tiny multi-threaded program plus a set of outcomes,
// each outcome a conjunction of final register-value conditions. The
// package also carries the perpetual litmus suite of Table II of the
// PerpLE paper (see suite.go), a parser and printer for a litmus7-style
// text format (parse.go, print.go), and a randomized test generator used
// by property tests (generate.go).
package litmus

import (
	"fmt"
	"sort"
	"strings"
)

// Loc names a shared memory location, e.g. "x".
type Loc string

// OpKind discriminates the instruction kinds a litmus test may contain.
type OpKind int

const (
	// OpStore writes an immediate positive constant to a shared location.
	OpStore OpKind = iota
	// OpLoad reads a shared location into a per-thread register.
	OpLoad
	// OpFence is a full memory fence (x86 MFENCE): it drains the store
	// buffer before any later memory operation executes.
	OpFence
)

func (k OpKind) String() string {
	switch k {
	case OpStore:
		return "store"
	case OpLoad:
		return "load"
	case OpFence:
		return "fence"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Instr is one instruction of a litmus test thread.
//
// The zero value is not a valid instruction; construct instructions with
// Store, Load and Fence.
type Instr struct {
	Kind OpKind
	// Loc is the shared location accessed by stores and loads.
	Loc Loc
	// Value is the immediate stored by OpStore. It must be positive: 0 is
	// reserved for the initial value of every location.
	Value int64
	// Reg is the destination register index (within the thread) of OpLoad.
	Reg int
}

// Store returns a store instruction writing value v to location loc.
func Store(loc Loc, v int64) Instr { return Instr{Kind: OpStore, Loc: loc, Value: v} }

// Load returns a load instruction reading location loc into register r.
func Load(r int, loc Loc) Instr { return Instr{Kind: OpLoad, Loc: loc, Reg: r} }

// Fence returns a full memory fence instruction.
func Fence() Instr { return Instr{Kind: OpFence} }

func (in Instr) String() string {
	switch in.Kind {
	case OpStore:
		return fmt.Sprintf("[%s] <- %d", in.Loc, in.Value)
	case OpLoad:
		return fmt.Sprintf("r%d <- [%s]", in.Reg, in.Loc)
	case OpFence:
		return "mfence"
	default:
		return "invalid"
	}
}

// Thread is the program of a single test thread.
type Thread struct {
	Instrs []Instr
}

// Loads returns the number of load instructions in the thread (r_t in the
// paper: the number of registers the thread fills per iteration).
func (t Thread) Loads() int {
	n := 0
	for _, in := range t.Instrs {
		if in.Kind == OpLoad {
			n++
		}
	}
	return n
}

// Stores returns the number of store instructions in the thread.
func (t Thread) Stores() int {
	n := 0
	for _, in := range t.Instrs {
		if in.Kind == OpStore {
			n++
		}
	}
	return n
}

// Cond is a single outcome condition. There are two forms:
//
//   - register condition (Loc == ""): register Reg of thread Thread holds
//     Value at the end of an iteration;
//   - memory condition (Loc != ""): shared location Loc holds Value at the
//     end of an iteration. Thread and Reg are ignored.
//
// Memory conditions require inspecting shared memory after every
// iteration, which perpetual litmus tests cannot do (Section V-C of the
// paper); outcomes containing them are not convertible and the
// corresponding tests run only under the litmus7-style harness.
type Cond struct {
	Thread int
	Reg    int
	Value  int64
	Loc    Loc
}

// IsMem reports whether the condition constrains final shared memory
// rather than a register.
func (c Cond) IsMem() bool { return c.Loc != "" }

func (c Cond) String() string {
	if c.IsMem() {
		return fmt.Sprintf("[%s]=%d", c.Loc, c.Value)
	}
	return fmt.Sprintf("%d:r%d=%d", c.Thread, c.Reg, c.Value)
}

// Outcome is a conjunction of conditions over final register values.
type Outcome struct {
	Conds []Cond
}

func (o Outcome) String() string {
	parts := make([]string, len(o.Conds))
	for i, c := range o.Conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

// Key returns a canonical string usable as a map key: conditions sorted by
// (thread, reg).
func (o Outcome) Key() string {
	conds := append([]Cond(nil), o.Conds...)
	sort.Slice(conds, func(i, j int) bool {
		if conds[i].Loc != conds[j].Loc {
			return conds[i].Loc < conds[j].Loc
		}
		if conds[i].Thread != conds[j].Thread {
			return conds[i].Thread < conds[j].Thread
		}
		return conds[i].Reg < conds[j].Reg
	})
	parts := make([]string, len(conds))
	for i, c := range conds {
		parts[i] = c.String()
	}
	return strings.Join(parts, ";")
}

// Equal reports whether two outcomes have the same condition set.
func (o Outcome) Equal(p Outcome) bool { return o.Key() == p.Key() }

// Test is a complete litmus test: a name, the thread programs, initial
// values for shared locations (locations absent from Init start at 0), and
// a designated target outcome (the most informative outcome; for the tests
// of the perpetual suite, the outcome that distinguishes TSO from SC or
// that the model forbids).
type Test struct {
	Name    string
	Doc     string // one-line description
	Threads []Thread
	Init    map[Loc]int64
	Target  Outcome
}

// T returns the number of threads.
func (t *Test) T() int { return len(t.Threads) }

// TL returns the number of load-performing threads (T_L in the paper).
func (t *Test) TL() int { return len(t.LoadThreads()) }

// LoadThreads returns the indices of threads that perform at least one
// load, in increasing order.
func (t *Test) LoadThreads() []int {
	var ids []int
	for i, th := range t.Threads {
		if th.Loads() > 0 {
			ids = append(ids, i)
		}
	}
	return ids
}

// Locs returns every shared location referenced by the test, sorted.
func (t *Test) Locs() []Loc {
	seen := map[Loc]bool{}
	for l := range t.Init {
		seen[l] = true
	}
	for _, th := range t.Threads {
		for _, in := range th.Instrs {
			if in.Kind == OpStore || in.Kind == OpLoad {
				seen[in.Loc] = true
			}
		}
	}
	locs := make([]Loc, 0, len(seen))
	for l := range seen {
		locs = append(locs, l)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	return locs
}

// Regs returns, per thread, the number of registers used (1 + max register
// index of its loads, or 0 for store-only threads).
func (t *Test) Regs() []int {
	regs := make([]int, len(t.Threads))
	for i, th := range t.Threads {
		for _, in := range th.Instrs {
			if in.Kind == OpLoad && in.Reg+1 > regs[i] {
				regs[i] = in.Reg + 1
			}
		}
	}
	return regs
}

// StoresTo returns the store instructions targeting loc, as (thread,
// instruction index) pairs in thread order. Iterating stores in this order
// is deterministic across runs.
func (t *Test) StoresTo(loc Loc) []InstrRef {
	var refs []InstrRef
	for ti, th := range t.Threads {
		for ii, in := range th.Instrs {
			if in.Kind == OpStore && in.Loc == loc {
				refs = append(refs, InstrRef{Thread: ti, Index: ii})
			}
		}
	}
	return refs
}

// InstrRef identifies an instruction by thread and index within the thread.
type InstrRef struct {
	Thread int
	Index  int
}

func (r InstrRef) String() string { return fmt.Sprintf("i%d%d", r.Thread, r.Index) }

// Instr resolves the reference within test t.
func (r InstrRef) Instr(t *Test) Instr { return t.Threads[r.Thread].Instrs[r.Index] }

// StoreValues returns the distinct values stored to loc across all
// threads, sorted ascending. len(StoreValues(loc)) is k_mem in the paper.
func (t *Test) StoreValues(loc Loc) []int64 {
	seen := map[int64]bool{}
	for _, th := range t.Threads {
		for _, in := range th.Instrs {
			if in.Kind == OpStore && in.Loc == loc {
				seen[in.Value] = true
			}
		}
	}
	vals := make([]int64, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

// ValidationError is a structural validation failure that carries the
// position of the offending construct: Thread/Instr point at an
// instruction, Cond at an index into the target's condition list. Absent
// coordinates are -1. Parse augments the position with the source line of
// the construct, so file-level tooling (perple-lint) reports exact
// locations instead of silently accepting malformed tests.
type ValidationError struct {
	Test   string
	Thread int
	Instr  int
	Cond   int
	Msg    string
}

func (e *ValidationError) Error() string {
	pos := ""
	switch {
	case e.Thread >= 0 && e.Instr >= 0:
		pos = fmt.Sprintf("thread %d instr %d: ", e.Thread, e.Instr)
	case e.Thread >= 0:
		pos = fmt.Sprintf("thread %d: ", e.Thread)
	case e.Cond >= 0:
		pos = fmt.Sprintf("condition %d: ", e.Cond)
	}
	return fmt.Sprintf("litmus: %s: %s%s", e.Test, pos, e.Msg)
}

func (t *Test) verr(thread, instr, cond int, format string, args ...any) error {
	return &ValidationError{Test: t.Name, Thread: thread, Instr: instr, Cond: cond,
		Msg: fmt.Sprintf(format, args...)}
}

// Validate checks structural well-formedness: at least one thread, positive
// store values, loads with non-negative registers that each register is
// written at most once per thread, no two stores of the same value to the
// same location (required for value uniqueness), and a target outcome
// whose conditions reference existing load registers and referenced
// locations. Failures are *ValidationError values carrying the offending
// thread/instruction/condition position.
func (t *Test) Validate() error {
	if t.Name == "" {
		return &ValidationError{Test: "?", Thread: -1, Instr: -1, Cond: -1, Msg: "test has no name"}
	}
	if len(t.Threads) == 0 {
		return t.verr(-1, -1, -1, "test has no threads")
	}
	type locVal struct {
		loc Loc
		v   int64
	}
	storeSeen := map[locVal]bool{}
	for ti, th := range t.Threads {
		if len(th.Instrs) == 0 {
			return t.verr(ti, -1, -1, "thread is empty")
		}
		regSeen := map[int]bool{}
		for ii, in := range th.Instrs {
			switch in.Kind {
			case OpStore:
				if in.Value <= 0 {
					return t.verr(ti, ii, -1, "stores non-positive value %d", in.Value)
				}
				if in.Loc == "" {
					return t.verr(ti, ii, -1, "stores to empty location")
				}
				key := locVal{in.Loc, in.Value}
				if storeSeen[key] {
					return t.verr(ti, ii, -1, "duplicate store of %d to [%s]; store values must be unique per location", in.Value, in.Loc)
				}
				storeSeen[key] = true
			case OpLoad:
				if in.Reg < 0 {
					return t.verr(ti, ii, -1, "loads into negative register")
				}
				if in.Loc == "" {
					return t.verr(ti, ii, -1, "loads from empty location")
				}
				if regSeen[in.Reg] {
					return t.verr(ti, ii, -1, "duplicate register write: r%d is loaded twice in this thread", in.Reg)
				}
				regSeen[in.Reg] = true
			case OpFence:
			default:
				return t.verr(ti, ii, -1, "invalid instruction kind %d", in.Kind)
			}
		}
	}
	regs := t.Regs()
	if err := t.validateOutcome(t.Target, regs); err != nil {
		return err
	}
	return nil
}

func (t *Test) validateOutcome(o Outcome, regs []int) error {
	if len(o.Conds) == 0 {
		return t.verr(-1, -1, -1, "outcome has no conditions")
	}
	locs := map[Loc]bool{}
	for _, l := range t.Locs() {
		locs[l] = true
	}
	seen := map[[2]int]bool{}
	memSeen := map[Loc]bool{}
	for ci, c := range o.Conds {
		if c.IsMem() {
			if !locs[c.Loc] {
				return t.verr(-1, -1, ci, "outcome references undefined location [%s]", c.Loc)
			}
			if memSeen[c.Loc] {
				return t.verr(-1, -1, ci, "outcome constrains [%s] twice", c.Loc)
			}
			memSeen[c.Loc] = true
			continue
		}
		if c.Thread < 0 || c.Thread >= len(t.Threads) {
			return t.verr(-1, -1, ci, "outcome condition references thread %d of %d", c.Thread, len(t.Threads))
		}
		if c.Reg < 0 || c.Reg >= regs[c.Thread] {
			return t.verr(-1, -1, ci, "outcome condition references r%d of thread %d (has %d registers)", c.Reg, c.Thread, regs[c.Thread])
		}
		key := [2]int{c.Thread, c.Reg}
		if seen[key] {
			return t.verr(-1, -1, ci, "outcome constrains %d:r%d twice", c.Thread, c.Reg)
		}
		seen[key] = true
	}
	return nil
}

// AllOutcomes enumerates the full outcome space of the test: the cartesian
// product over every load register of {0} ∪ {values stored to the loaded
// location}. Register values are taken per loaded location; a register
// loaded from x can hold 0 or any value some thread stores to x.
//
// For sb this yields the four outcomes of Section II-B1 of the paper.
// The enumeration order is deterministic: registers in (thread, reg)
// order, values ascending.
func (t *Test) AllOutcomes() []Outcome {
	type slot struct {
		thread, reg int
		vals        []int64
	}
	var slots []slot
	for ti, th := range t.Threads {
		// One slot per register, using the location of the *last* load into
		// that register in program order (its final value).
		lastLoc := map[int]Loc{}
		var order []int
		for _, in := range th.Instrs {
			if in.Kind == OpLoad {
				if _, ok := lastLoc[in.Reg]; !ok {
					order = append(order, in.Reg)
				}
				lastLoc[in.Reg] = in.Loc
			}
		}
		sort.Ints(order)
		for _, r := range order {
			vals := append([]int64{0}, t.StoreValues(lastLoc[r])...)
			slots = append(slots, slot{thread: ti, reg: r, vals: vals})
		}
	}
	if len(slots) == 0 {
		return nil
	}
	var out []Outcome
	idx := make([]int, len(slots))
	for {
		conds := make([]Cond, len(slots))
		for i, s := range slots {
			conds[i] = Cond{Thread: s.thread, Reg: s.reg, Value: s.vals[idx[i]]}
		}
		out = append(out, Outcome{Conds: conds})
		// Odometer increment.
		i := len(slots) - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < len(slots[i].vals) {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return out
		}
	}
}

// Holds reports whether outcome o is satisfied by the final register file
// regs[thread][reg]. Memory conditions in o make it return false; use
// HoldsFull when final memory is available.
func (o Outcome) Holds(regs [][]int64) bool {
	return o.HoldsFull(regs, nil)
}

// HoldsFull reports whether outcome o is satisfied by the final register
// file regs[thread][reg] and the final shared memory mem. A nil mem
// treats every location as holding its zero value only if o has no memory
// conditions; otherwise the outcome does not hold.
func (o Outcome) HoldsFull(regs [][]int64, mem map[Loc]int64) bool {
	for _, c := range o.Conds {
		if c.IsMem() {
			if mem == nil {
				return false
			}
			if mem[c.Loc] != c.Value {
				return false
			}
			continue
		}
		if c.Thread >= len(regs) || c.Reg >= len(regs[c.Thread]) {
			return false
		}
		if regs[c.Thread][c.Reg] != c.Value {
			return false
		}
	}
	return true
}

// HasMemConds reports whether the outcome contains any final-memory
// condition (making it non-convertible to a perpetual outcome).
func (o Outcome) HasMemConds() bool {
	for _, c := range o.Conds {
		if c.IsMem() {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the test.
func (t *Test) Clone() *Test {
	nt := &Test{Name: t.Name, Doc: t.Doc}
	nt.Threads = make([]Thread, len(t.Threads))
	for i, th := range t.Threads {
		nt.Threads[i] = Thread{Instrs: append([]Instr(nil), th.Instrs...)}
	}
	if t.Init != nil {
		nt.Init = make(map[Loc]int64, len(t.Init))
		for l, v := range t.Init {
			nt.Init[l] = v
		}
	}
	nt.Target = Outcome{Conds: append([]Cond(nil), t.Target.Conds...)}
	return nt
}
