package trace

import (
	"strings"
	"testing"

	"perple/internal/litmus"
	"perple/internal/memmodel"
)

// tgt builds a single-condition register target (Validate requires a
// non-empty target outcome).
func tgt(thread, reg int, val int64) litmus.Outcome {
	return litmus.Outcome{Conds: []litmus.Cond{{Thread: thread, Reg: reg, Value: val}}}
}

// sbTest is the store-buffering shape: the canonical TSO-allowed,
// SC-forbidden litmus test.
func sbTest(t *testing.T) *litmus.Test {
	t.Helper()
	return &litmus.Test{
		Name:   "trace-sb",
		Target: tgt(0, 0, 0),
		Threads: []litmus.Thread{
			{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Load(0, "y")}},
			{Instrs: []litmus.Instr{litmus.Store("y", 1), litmus.Load(0, "x")}},
		},
	}
}

// mpTest is the message-passing shape; reading the flag but stale data
// is forbidden even under TSO.
func mpTest(t *testing.T) *litmus.Test {
	t.Helper()
	return &litmus.Test{
		Name:   "trace-mp",
		Target: tgt(1, 0, 1),
		Threads: []litmus.Thread{
			{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Store("y", 1)}},
			{Instrs: []litmus.Instr{litmus.Load(0, "y"), litmus.Load(1, "x")}},
		},
	}
}

// witness builds a one-slot WitnessSet from explicit rf and co arrays.
func witness(t *testing.T, l *Layout, rf, co []int32) *WitnessSet {
	t.Helper()
	if len(rf) != l.NLoads() || len(co) != l.NStores() {
		t.Fatalf("witness arity: rf %d/%d co %d/%d", len(rf), l.NLoads(), len(co), l.NStores())
	}
	w := NewWitnessSet(l)
	w.Reset(1, 1)
	for k, src := range rf {
		w.SetRF(0, int32(k), src)
	}
	for _, st := range co {
		w.AppendCo(0, st)
	}
	return w
}

func mustChecker(t *testing.T, test *litmus.Test, model memmodel.Model) *Checker {
	t.Helper()
	c, err := NewChecker(test, model)
	if err != nil {
		t.Fatalf("NewChecker(%s, %v): %v", test.Name, model, err)
	}
	return c
}

func check(t *testing.T, c *Checker, w *WitnessSet) *Violation {
	t.Helper()
	v, err := c.Check(w, 0)
	if err != nil {
		t.Fatalf("Check(%s): unexpected error %v", c.Layout().Test().Name, err)
	}
	return v
}

func TestLayoutNumbering(t *testing.T) {
	test := &litmus.Test{
		Name:   "trace-layout",
		Target: tgt(0, 0, 0),
		Threads: []litmus.Thread{
			{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Fence(), litmus.Load(0, "y")}},
			{Instrs: []litmus.Instr{litmus.Store("y", 2), litmus.Store("x", 3), litmus.Load(0, "x")}},
		},
	}
	l, err := NewLayout(test)
	if err != nil {
		t.Fatal(err)
	}
	if l.NEvents() != 6 || l.NLoads() != 2 || l.NStores() != 3 {
		t.Fatalf("counts: events=%d loads=%d stores=%d", l.NEvents(), l.NLoads(), l.NStores())
	}
	if got := l.LoadRef(0).String(); got != "P0#2" {
		t.Errorf("LoadRef(0) = %s, want P0#2", got)
	}
	if got := l.StoreRef(2).String(); got != "P1#1" {
		t.Errorf("StoreRef(2) = %s, want P1#1", got)
	}
	if got := l.StoreRef(-1).String(); got != "init" {
		t.Errorf("StoreRef(-1) = %s, want init", got)
	}
	// x's stores in po-scan order: P0#0 (dense 0), P1#1 (dense 2).
	if got := l.StoreIdxFor(l.LoadLoc(1), 3); got != 2 {
		t.Errorf("StoreIdxFor(x, 3) = %d, want 2", got)
	}
	if got := l.StoreIdxFor(l.LoadLoc(1), 99); got != -1 {
		t.Errorf("StoreIdxFor(x, 99) = %d, want -1", got)
	}
}

// The store-buffering witness (both loads read init) is TSO-consistent
// but SC-inconsistent — the signature relaxation of the model.
func TestSBWitnessTSOAllowedSCForbidden(t *testing.T) {
	test := sbTest(t)
	tso := mustChecker(t, test, memmodel.TSO)
	w := witness(t, tso.Layout(), []int32{-1, -1}, []int32{0, 1})
	if v := check(t, tso, w); v != nil {
		t.Fatalf("TSO rejected the store-buffering witness:\n%s", v.Format())
	}
	sc := mustChecker(t, test, memmodel.SC)
	wsc := witness(t, sc.Layout(), []int32{-1, -1}, []int32{0, 1})
	v := check(t, sc, wsc)
	if v == nil {
		t.Fatal("SC accepted the store-buffering witness")
	}
	if v.Axiom != "sc" {
		t.Errorf("axiom = %q, want sc", v.Axiom)
	}
	if len(v.Cycle) == 0 {
		t.Error("violation has no cycle")
	}
}

// The forbidden message-passing witness (flag seen, data stale) must be
// rejected under TSO with a minimal 4-edge cycle.
func TestMPForbiddenWitness(t *testing.T) {
	test := mpTest(t)
	c := mustChecker(t, test, memmodel.TSO)
	// Load of y (dense 0) reads y=1 (dense 1); load of x (dense 1) reads
	// init. Drain order x=1 then y=1 (any per-location order works —
	// each location has one store).
	w := witness(t, c.Layout(), []int32{1, -1}, []int32{0, 1})
	v := check(t, c, w)
	if v == nil {
		t.Fatal("TSO accepted the forbidden mp witness")
	}
	if v.Axiom != "tso-ghb" {
		t.Errorf("axiom = %q, want tso-ghb", v.Axiom)
	}
	if len(v.Cycle) != 4 {
		t.Errorf("cycle length = %d, want 4:\n%s", len(v.Cycle), v.Format())
	}
	for i, e := range v.Cycle {
		next := v.Cycle[(i+1)%len(v.Cycle)]
		if e.To != next.From {
			t.Errorf("cycle edge %d does not chain: %s then %s", i, e, next)
		}
	}
	rep := v.Format()
	for _, want := range []string{"trace violation", "ppo", "rf", "fr", "co: [x]", "reads init"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

// A same-thread coherence reversal violates the coherence axiom under
// any model: po-loc orders the stores one way, co the other.
func TestCoherenceReversalRejected(t *testing.T) {
	test := &litmus.Test{
		Name:   "trace-cohere",
		Target: tgt(1, 0, 2),
		Threads: []litmus.Thread{
			{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Store("x", 2)}},
			{Instrs: []litmus.Instr{litmus.Load(0, "x")}},
		},
	}
	c := mustChecker(t, test, memmodel.TSO)
	w := witness(t, c.Layout(), []int32{1}, []int32{1, 0}) // co: x=2 -> x=1
	v := check(t, c, w)
	if v == nil {
		t.Fatal("TSO accepted a same-thread co reversal")
	}
	if v.Axiom != "coherence" {
		t.Errorf("axiom = %q, want coherence", v.Axiom)
	}
}

// A stale rf — reading a value the thread has already overwritten in
// program order — is a coherence violation via fr.
func TestStaleRFRejected(t *testing.T) {
	test := &litmus.Test{
		Name:   "trace-stale",
		Target: tgt(0, 0, 1),
		Threads: []litmus.Thread{
			{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Load(0, "x")}},
		},
	}
	c := mustChecker(t, test, memmodel.TSO)
	w := witness(t, c.Layout(), []int32{-1}, []int32{0}) // load reads init past own store
	v := check(t, c, w)
	if v == nil {
		t.Fatal("TSO accepted a stale rf")
	}
	if v.Axiom != "coherence" {
		t.Errorf("axiom = %q, want coherence", v.Axiom)
	}
}

// mfence restores store→load order: the fenced store-buffering witness
// with both loads reading init becomes TSO-forbidden.
func TestFenceRestoresOrder(t *testing.T) {
	test := &litmus.Test{
		Name:   "trace-sb-fence",
		Target: tgt(0, 0, 0),
		Threads: []litmus.Thread{
			{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Fence(), litmus.Load(0, "y")}},
			{Instrs: []litmus.Instr{litmus.Store("y", 1), litmus.Fence(), litmus.Load(0, "x")}},
		},
	}
	c := mustChecker(t, test, memmodel.TSO)
	w := witness(t, c.Layout(), []int32{-1, -1}, []int32{0, 1})
	if v := check(t, c, w); v == nil {
		t.Fatal("TSO accepted the fenced store-buffering witness")
	}
	// The unfenced shape stays accepted (control).
	cu := mustChecker(t, sbTest(t), memmodel.TSO)
	wu := witness(t, cu.Layout(), []int32{-1, -1}, []int32{0, 1})
	if v := check(t, cu, wu); v != nil {
		t.Fatalf("control: unfenced sb witness rejected:\n%s", v.Format())
	}
}

// Forwarding (same-thread rf) must not count as rfe: a load forwarding
// its own thread's store proves nothing about memory, so the sb shape
// with forwarded loads is TSO-consistent even though each load "sees"
// the po-later store before the other thread does.
func TestInternalRFExcludedFromGHB(t *testing.T) {
	test := sbTest(t)
	c := mustChecker(t, test, memmodel.TSO)
	// Each load forwards its own thread's store? No — in sb the load is
	// to the *other* location. Use the real forwarding shape instead:
	fwd := &litmus.Test{
		Name:   "trace-fwd",
		Target: tgt(0, 0, 1),
		Threads: []litmus.Thread{
			{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Load(0, "x"), litmus.Load(1, "y")}},
			{Instrs: []litmus.Instr{litmus.Store("y", 1), litmus.Load(0, "y"), litmus.Load(1, "x")}},
		},
	}
	c = mustChecker(t, fwd, memmodel.TSO)
	// Each thread forwards its own store (r0=1) and misses the other's
	// (r1=0): allowed under TSO (store buffering + forwarding), and the
	// internal rf must not close a ghb cycle.
	w := witness(t, c.Layout(), []int32{0, -1, 1, -1}, []int32{0, 1})
	if v := check(t, c, w); v != nil {
		t.Fatalf("TSO rejected the forwarding witness:\n%s", v.Format())
	}
	// Under SC the same witness is inconsistent (it is sb's forbidden
	// outcome with the forwarded reads added).
	sc := mustChecker(t, fwd, memmodel.SC)
	wsc := witness(t, sc.Layout(), []int32{0, -1, 1, -1}, []int32{0, 1})
	if v := check(t, sc, wsc); v == nil {
		t.Fatal("SC accepted the forwarded sb witness")
	}
}

func TestMalformedWitnesses(t *testing.T) {
	test := mpTest(t)
	c := mustChecker(t, test, memmodel.TSO)
	l := c.Layout()

	cases := []struct {
		name   string
		rf, co []int32
	}{
		{"rf wrong location", []int32{0, -1}, []int32{0, 1}}, // load of y reads store to x
		{"rf out of range", []int32{5, -1}, []int32{0, 1}},
		{"co duplicate", []int32{1, -1}, []int32{0, 0}},
		{"co missing store", []int32{1, -1}, []int32{0, -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := NewWitnessSet(l)
			w.Reset(1, 1)
			for k, src := range tc.rf {
				w.RF[k] = src
			}
			copy(w.Co, tc.co)
			if _, err := c.Check(w, 0); err == nil {
				t.Error("malformed witness accepted without error")
			}
		})
	}
}

func TestWitnessSetSampling(t *testing.T) {
	l, err := NewLayout(sbTest(t))
	if err != nil {
		t.Fatal(err)
	}
	w := NewWitnessSet(l)
	w.Reset(10, 3)
	if w.Slots != 4 {
		t.Fatalf("Slots = %d, want 4", w.Slots)
	}
	for iter, want := range map[int]int{0: 0, 1: -1, 3: 1, 9: 3, 8: -1} {
		if got := w.SlotOf(iter); got != want {
			t.Errorf("SlotOf(%d) = %d, want %d", iter, got, want)
		}
	}
	if got := w.Iter(3); got != 9 {
		t.Errorf("Iter(3) = %d, want 9", got)
	}
	// Reset reuses backing arrays and refills them.
	w.SetRF(0, 0, 1)
	w.AppendCo(0, 1)
	w.Reset(2, 1)
	if w.Slots != 2 || w.RF[0] != -1 || w.Co[0] != -1 {
		t.Errorf("Reset did not refill: slots=%d rf0=%d co0=%d", w.Slots, w.RF[0], w.Co[0])
	}
	w.AppendCo(0, 0)
	if w.CoAt(0)[0] != 0 {
		t.Error("AppendCo after Reset landed wrong")
	}
}

func TestCheckerModelValidation(t *testing.T) {
	if _, err := NewChecker(sbTest(t), memmodel.PSO); err == nil {
		t.Error("NewChecker accepted PSO")
	}
}
