// Package trace is the streaming witness-verification plane: it checks
// every execution the simulator actually ran, not just final states
// (the oracle) or tiny enumerable shapes (the axiomatic checker).
//
// The simulator, when witness recording is on, emits per execution the
// reads-from source of every load and the per-location coherence order
// of stores — together a *witness* in the sense of Roy et al., "Fast
// and Generalized Polynomial Time Memory Consistency Verification".
// With rf and co given, consistency checking is polynomial: the model's
// happens-before union (po ∪ rf ∪ co ∪ fr for SC; ppo ∪ mfence ∪ rfe ∪
// co ∪ fr plus the coherence axiom for x86-TSO) must be acyclic, and
// acyclicity of a graph with O(events) edges is checked in near-linear
// time by a topological pass. That lifts soundness checking to
// arbitrary-size programs: the per-witness cost is linear in the
// test's event count, independent of any enumeration cutoff.
//
// The package is layered for streaming reuse: a Layout is compiled once
// per test (event table, static program-order edges, store-value
// lookup); a WitnessSet is a flat reusable buffer the simulator fills
// with zero steady-state allocation; a Checker validates one witness at
// a time against reusable scratch, producing a minimal human-readable
// cycle report on violation. The axioms mirror internal/axiom exactly
// (the differential tests hold the two implementations together).
package trace

import (
	"fmt"

	"perple/internal/litmus"
)

// EventRef names a memory event by (thread, instruction index); the
// init pseudo-store is Thread -1. Mirrors internal/axiom's rendering so
// reports read identically across the two checkers.
type EventRef struct {
	Thread int
	Index  int
}

// IsInit reports whether the reference is the init pseudo-store.
func (r EventRef) IsInit() bool { return r.Thread < 0 }

func (r EventRef) String() string {
	if r.IsInit() {
		return "init"
	}
	return fmt.Sprintf("P%d#%d", r.Thread, r.Index)
}

// eventInfo is one static instruction slot of the test. Unlike the
// axiomatic checker, fences are events here: they carry the ppo edges
// that restore store→load order, so the per-witness pass never scans
// for intervening fences.
type eventInfo struct {
	thread int32
	index  int32
	kind   litmus.OpKind
	loc    int32 // dense location index; -1 for fences
	widx   int32 // dense load/store index within its kind; -1 for fences
}

// Layout is a litmus test compiled for witness recording and checking:
// dense event numbering, static program-order edge tables, and the
// value→store lookup the simulator uses to identify a drained or
// forwarded store (store values are unique per location, a litmus
// validation invariant). A Layout is immutable and may be shared by any
// number of recorders and checkers concurrently.
//
// Dense numbering convention (shared with the simulator's compiled
// programs): events, loads and stores are each numbered in (thread,
// instruction index) order. RF and Co arrays in a WitnessSet are
// expressed in these dense load/store indices; -1 is the init
// pseudo-store.
type Layout struct {
	test *litmus.Test
	locs []litmus.Loc

	events  []eventInfo
	evIdx   [][]int32 // [thread][instr] -> event index
	loadEv  []int32   // dense load index -> event index
	storeEv []int32   // dense store index -> event index

	loadLoc  []int32 // dense load index -> location index
	storeLoc []int32 // dense store index -> location index
	storeVal []int64 // dense store index -> stored value

	storesByLoc [][]int32 // location index -> dense store indices, po-scan order

	// Static edge tables, one entry per event (-1 = none). Together they
	// generate the program-order relations with O(1) out-degree:
	//
	//   - poNext: the po-adjacent successor; chains generate full po.
	//   - nextNonLoad: the next store-or-fence. Chains of these generate
	//     every ppo pair with a non-load target (only store→load pairs
	//     are dropped by TSO).
	//   - nextLoad: the next load, used from loads and fences only;
	//     load chains generate every load→load pair, and a fence's edge
	//     completes store→fence→load — exactly the mfence relation.
	//   - poLocNext: the next same-thread access to the same location;
	//     chains generate po|loc for the coherence axiom.
	poNext      []int32
	nextNonLoad []int32
	nextLoad    []int32
	poLocNext   []int32
}

// NewLayout validates and compiles a litmus test for witness recording
// and checking.
func NewLayout(t *litmus.Test) (*Layout, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	locs := t.Locs()
	locIdx := make(map[litmus.Loc]int32, len(locs))
	for i, l := range locs {
		locIdx[l] = int32(i)
	}
	l := &Layout{
		test:        t,
		locs:        locs,
		evIdx:       make([][]int32, len(t.Threads)),
		storesByLoc: make([][]int32, len(locs)),
	}
	for ti, th := range t.Threads {
		l.evIdx[ti] = make([]int32, len(th.Instrs))
		for ii, in := range th.Instrs {
			ev := int32(len(l.events))
			l.evIdx[ti][ii] = ev
			info := eventInfo{thread: int32(ti), index: int32(ii), kind: in.Kind, loc: -1, widx: -1}
			switch in.Kind {
			case litmus.OpLoad:
				info.loc = locIdx[in.Loc]
				info.widx = int32(len(l.loadEv))
				l.loadEv = append(l.loadEv, ev)
				l.loadLoc = append(l.loadLoc, info.loc)
			case litmus.OpStore:
				info.loc = locIdx[in.Loc]
				info.widx = int32(len(l.storeEv))
				l.storeEv = append(l.storeEv, ev)
				l.storeLoc = append(l.storeLoc, info.loc)
				l.storeVal = append(l.storeVal, in.Value)
				l.storesByLoc[info.loc] = append(l.storesByLoc[info.loc], info.widx)
			}
			l.events = append(l.events, info)
		}
	}

	n := len(l.events)
	l.poNext = make([]int32, n)
	l.nextNonLoad = make([]int32, n)
	l.nextLoad = make([]int32, n)
	l.poLocNext = make([]int32, n)
	for i := range l.poNext {
		l.poNext[i], l.nextNonLoad[i], l.nextLoad[i], l.poLocNext[i] = -1, -1, -1, -1
	}
	for ti, th := range t.Threads {
		nonLoad, load := int32(-1), int32(-1)
		lastAt := make(map[int32]int32) // location -> later event, for poLocNext
		for ii := len(th.Instrs) - 1; ii >= 0; ii-- {
			ev := l.evIdx[ti][ii]
			info := &l.events[ev]
			if ii+1 < len(th.Instrs) {
				l.poNext[ev] = l.evIdx[ti][ii+1]
			}
			l.nextNonLoad[ev] = nonLoad
			l.nextLoad[ev] = load
			if info.kind == litmus.OpLoad {
				load = ev
			} else {
				nonLoad = ev
			}
			if info.loc >= 0 {
				if later, ok := lastAt[info.loc]; ok {
					l.poLocNext[ev] = later
				}
				lastAt[info.loc] = ev
			}
		}
	}
	return l, nil
}

// Test returns the source litmus test.
func (l *Layout) Test() *litmus.Test { return l.test }

// Locs returns the shared locations in dense index order. Callers must
// not modify the returned slice.
func (l *Layout) Locs() []litmus.Loc { return l.locs }

// NEvents returns the event count (loads + stores + fences).
func (l *Layout) NEvents() int { return len(l.events) }

// NLoads returns the dense load count.
func (l *Layout) NLoads() int { return len(l.loadEv) }

// NStores returns the dense store count.
func (l *Layout) NStores() int { return len(l.storeEv) }

// LoadRef resolves a dense load index to its event reference.
func (l *Layout) LoadRef(i int32) EventRef {
	ev := &l.events[l.loadEv[i]]
	return EventRef{Thread: int(ev.thread), Index: int(ev.index)}
}

// StoreRef resolves a dense store index to its event reference; -1 maps
// to the init pseudo-store.
func (l *Layout) StoreRef(i int32) EventRef {
	if i < 0 {
		return EventRef{Thread: -1, Index: -1}
	}
	ev := &l.events[l.storeEv[i]]
	return EventRef{Thread: int(ev.thread), Index: int(ev.index)}
}

// StoreIdxFor identifies the store of val to the location, or -1. Store
// values are unique per location (litmus validation), so a drained or
// forwarded value names its store unambiguously; the simulator's
// recorder resolves co entries and forwarded rf edges through this.
func (l *Layout) StoreIdxFor(locIdx int, val int64) int32 {
	for _, s := range l.storesByLoc[locIdx] {
		if l.storeVal[s] == val {
			return s
		}
	}
	return -1
}

// StoreLoc returns the dense location index a store writes.
func (l *Layout) StoreLoc(i int32) int { return int(l.storeLoc[i]) }

// LoadLoc returns the dense location index a load reads.
func (l *Layout) LoadLoc(i int32) int { return int(l.loadLoc[i]) }

// WitnessSet is a flat reusable buffer of recorded witnesses: one slot
// per sampled execution of a run. The simulator fills it in place; all
// backing arrays are recycled across runs, so steady-state recording
// performs no allocation.
//
// Slot layout: slot s holds iteration s·Every of the run. RF[s·NLoads+k]
// is the dense store index load k read (-1 = init). Co[s·NStores..] is
// the execution's stores in global memory-commit (drain) order — the
// per-location coherence orders are its per-location subsequences,
// which the checker splits using the layout's static store→location
// table.
type WitnessSet struct {
	layout          *Layout
	nLoads, nStores int

	// N is the run's iteration count, Every the sampling stride
	// (slot s ↔ iteration s·Every), Slots the recorded execution count.
	N, Every, Slots int

	// RF and Co are the packed witness arrays described above. Exposed
	// for the checker, the differential tests and their mutation
	// helpers; the simulator writes through SetRF/AppendCo.
	RF []int32
	Co []int32

	coCur []int32 // per-slot fill cursor for Co (drains interleave in ModeNone)
}

// NewWitnessSet builds an empty witness buffer over a layout; Reset
// sizes it for a run.
func NewWitnessSet(l *Layout) *WitnessSet {
	return &WitnessSet{layout: l, nLoads: l.NLoads(), nStores: l.NStores()}
}

// Layout returns the compiled test layout the witnesses are expressed
// against.
func (w *WitnessSet) Layout() *Layout { return w.layout }

// Reset prepares the buffer for an n-iteration run sampled every
// every-th iteration, reusing backing arrays. every must be ≥ 1.
func (w *WitnessSet) Reset(n, every int) {
	if every < 1 {
		every = 1
	}
	w.N, w.Every = n, every
	w.Slots = (n + every - 1) / every
	w.RF = resizeFill(w.RF, w.Slots*w.layout.NLoads(), -1)
	w.Co = resizeFill(w.Co, w.Slots*w.layout.NStores(), -1)
	w.coCur = resizeFill(w.coCur, w.Slots, 0)
}

// SlotOf returns the slot recording iteration iter, or -1 when the
// iteration is not sampled.
func (w *WitnessSet) SlotOf(iter int) int {
	if iter%w.Every != 0 {
		return -1
	}
	return iter / w.Every
}

// Iter returns the run iteration slot s records.
func (w *WitnessSet) Iter(s int) int { return s * w.Every }

// SetRF records the rf source of dense load k in slot s: a dense store
// index, or -1 for init.
func (w *WitnessSet) SetRF(s int, k, src int32) {
	w.RF[s*w.nLoads+int(k)] = src
}

// AppendCo records the next store (in global drain order) of slot s.
func (w *WitnessSet) AppendCo(s int, store int32) {
	w.Co[s*w.nStores+int(w.coCur[s])] = store
	w.coCur[s]++
}

// RFAt returns slot s's rf assignment, indexed by dense load index.
func (w *WitnessSet) RFAt(s int) []int32 {
	return w.RF[s*w.nLoads : (s+1)*w.nLoads]
}

// CoAt returns slot s's stores in global drain order.
func (w *WitnessSet) CoAt(s int) []int32 {
	return w.Co[s*w.nStores : (s+1)*w.nStores]
}

// resizeFill returns s resized to n elements all set to fill, reusing
// the backing array when large enough.
func resizeFill(s []int32, n int, fill int32) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = fill
	}
	return s
}
