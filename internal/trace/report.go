package trace

import (
	"fmt"
	"strings"

	"perple/internal/litmus"
	"perple/internal/memmodel"
)

// CycleEdge is one labelled edge of a violation's happens-before cycle.
type CycleEdge struct {
	From EventRef `json:"from"`
	To   EventRef `json:"to"`
	Rel  string   `json:"rel"`
}

func (e CycleEdge) String() string {
	return fmt.Sprintf("%s -[%s]-> %s", e.From, e.Rel, e.To)
}

// Violation reports one witness the model forbids: a minimal cycle in
// the checked happens-before union, plus the witness itself so the
// report is self-contained. Violations are produced by Checker.Check;
// a nil Violation means the witness is consistent.
type Violation struct {
	Test  *litmus.Test
	Model memmodel.Model
	Axiom string // which acyclicity axiom failed ("coherence", "tso-ghb", "sc")
	Union string // the relation union that axiom requires acyclic
	Iter  int    // run iteration the witness records

	// Cycle is a minimal (shortest, deterministically chosen) cycle in
	// the failed union, in traversal order: each edge's To is the next
	// edge's From, and the last edge closes back to the first.
	Cycle []CycleEdge

	// RF and Co are copies of the offending witness slot, in WitnessSet
	// encoding (dense indices; -1 = init).
	RF []int32
	Co []int32
}

func (v *Violation) Error() string {
	return fmt.Sprintf("trace: %s iter %d violates %s under %v (%d-edge cycle)",
		v.Test.Name, v.Iter, v.Axiom, v.Model, len(v.Cycle))
}

// Format renders the violation as a human-readable report in the style
// of oracle.Explain / axiom's witness rendering: the failed axiom, the
// minimal cycle edge by edge, and the witness's rf and co relations.
func (v *Violation) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace violation: %s, iteration %d\n", v.Test.Name, v.Iter)
	fmt.Fprintf(&b, "  model %v requires %s acyclic (%s axiom); the witness contains the cycle:\n",
		v.Model, v.Union, v.Axiom)
	for _, e := range v.Cycle {
		fmt.Fprintf(&b, "    %s\n", e)
	}
	l, err := NewLayout(v.Test)
	if err != nil {
		// The violation came from a layout, so this cannot happen; keep
		// the report useful anyway.
		fmt.Fprintf(&b, "  (witness omitted: %v)\n", err)
		return b.String()
	}
	b.WriteString("  witness:\n")
	for k, src := range v.RF {
		fmt.Fprintf(&b, "    rf: %s reads %s", l.LoadRef(int32(k)), l.StoreRef(src))
		if src >= 0 {
			fmt.Fprintf(&b, " (%s=%d)", l.locs[l.storeLoc[src]], l.storeVal[src])
		} else {
			fmt.Fprintf(&b, " ([%s] initial value)", l.locs[l.loadLoc[k]])
		}
		b.WriteByte('\n')
	}
	for li, loc := range l.locs {
		if len(l.storesByLoc[li]) == 0 {
			continue
		}
		fmt.Fprintf(&b, "    co: [%s]: init", loc)
		for _, st := range v.Co {
			if st >= 0 && l.storeLoc[st] == int32(li) {
				fmt.Fprintf(&b, " -> %s", l.StoreRef(st))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
