package trace

import (
	"fmt"

	"perple/internal/litmus"
	"perple/internal/memmodel"
)

// relKind labels an edge of the happens-before graph for cycle reports.
type relKind uint8

const (
	relPo relKind = iota
	relPpo
	relPoLoc
	relRf
	relCo
	relFr
)

func (r relKind) String() string {
	switch r {
	case relPo:
		return "po"
	case relPpo:
		return "ppo"
	case relPoLoc:
		return "po-loc"
	case relRf:
		return "rf"
	case relCo:
		return "co"
	case relFr:
		return "fr"
	default:
		return fmt.Sprintf("rel(%d)", int(r))
	}
}

// edge is one labelled happens-before edge between dense event indices.
type edge struct {
	from, to int32
	rel      relKind
}

// pass selects which axiom's edge set a topological pass checks.
type pass uint8

const (
	passCoherence pass = iota // po-loc ∪ rf ∪ co ∪ fr
	passTSO                   // ppo ∪ mfence ∪ rfe ∪ co ∪ fr
	passSC                    // po ∪ rf ∪ co ∪ fr
)

func (p pass) axiom() string {
	switch p {
	case passCoherence:
		return "coherence"
	case passTSO:
		return "tso-ghb"
	default:
		return "sc"
	}
}

func (p pass) union() string {
	switch p {
	case passCoherence:
		return "po-loc ∪ rf ∪ co ∪ fr"
	case passTSO:
		return "ppo ∪ mfence ∪ rfe ∪ co ∪ fr"
	default:
		return "po ∪ rf ∪ co ∪ fr"
	}
}

// Checker validates witnesses of one test against a memory model in
// near-linear time per witness: the happens-before union has O(events)
// edges (static program-order chains plus one rf, one co-adjacency and
// one fr edge per dynamic event), and a Kahn topological pass over
// reusable scratch decides acyclicity in O(events). A Checker is not
// safe for concurrent use; share the Layout and give each goroutine its
// own Checker.
//
// Axioms mirror internal/axiom:
//
//	coherence:  po-loc ∪ rf ∪ co ∪ fr acyclic   (checked under TSO)
//	x86-TSO:    ppo ∪ mfence ∪ rfe ∪ co ∪ fr acyclic
//	SC:         po ∪ rf ∪ co ∪ fr acyclic        (subsumes coherence)
//
// fr is derived: each load precedes the immediate co-successor of the
// store it read (the co chain supplies the rest transitively), and a
// load of init precedes the location's co-first store.
type Checker struct {
	l     *Layout
	model memmodel.Model

	// Per-witness scratch, reused across Check calls.
	coNext  []int32 // dense store -> co-successor in its location, -1 at the tail
	coFirst []int32 // location -> co-first store, -1 when storeless
	coSeen  []bool  // dense store -> appeared in this slot's Co
	edges   []edge
	eoff    []int32 // CSR offsets into csr, len NEvents+1
	csr     []edge  // edges sorted by from
	indeg   []int32
	queue   []int32
	prevEdg []int32 // BFS: index into csr of the edge that reached the node
	dist    []int32
}

// NewChecker compiles a checker for the test under the model
// (memmodel.TSO or memmodel.SC).
func NewChecker(t *litmus.Test, model memmodel.Model) (*Checker, error) {
	l, err := NewLayout(t)
	if err != nil {
		return nil, err
	}
	return NewCheckerLayout(l, model)
}

// NewCheckerLayout builds a checker over an existing layout.
func NewCheckerLayout(l *Layout, model memmodel.Model) (*Checker, error) {
	if model != memmodel.TSO && model != memmodel.SC {
		return nil, fmt.Errorf("trace: unsupported model %v (want TSO or SC)", model)
	}
	n := l.NEvents()
	return &Checker{
		l:       l,
		model:   model,
		coNext:  make([]int32, l.NStores()),
		coFirst: make([]int32, len(l.locs)),
		coSeen:  make([]bool, l.NStores()),
		eoff:    make([]int32, n+1),
		indeg:   make([]int32, n),
		queue:   make([]int32, 0, n),
		prevEdg: make([]int32, n),
		dist:    make([]int32, n),
	}, nil
}

// Layout returns the compiled test layout.
func (c *Checker) Layout() *Layout { return c.l }

// Model returns the model the checker validates against.
func (c *Checker) Model() memmodel.Model { return c.model }

// Check validates slot s of the witness set. It returns a non-nil
// Violation when the witness is inconsistent with the model, and an
// error when the witness is malformed (rf naming a store of another
// location, co not a permutation of the location's stores) — the
// distinction matters because a malformed witness indicts the recorder,
// not the machine.
func (c *Checker) Check(w *WitnessSet, s int) (*Violation, error) {
	if w.Layout() != c.l {
		return nil, fmt.Errorf("trace: witness layout mismatch (test %s)", c.l.test.Name)
	}
	if s < 0 || s >= w.Slots {
		return nil, fmt.Errorf("trace: slot %d out of range [0,%d)", s, w.Slots)
	}
	if err := c.prepare(w, s); err != nil {
		return nil, fmt.Errorf("trace: %s slot %d: %w", c.l.test.Name, s, err)
	}
	if c.model == memmodel.SC {
		return c.run(w, s, passSC), nil
	}
	if v := c.run(w, s, passCoherence); v != nil {
		return v, nil
	}
	return c.run(w, s, passTSO), nil
}

// prepare validates the slot's witness and builds the co successor
// tables: coNext chains each location's stores in drain order, coFirst
// anchors the init pseudo-store's position.
func (c *Checker) prepare(w *WitnessSet, s int) error {
	l := c.l
	for i := range c.coFirst {
		c.coFirst[i] = -1
	}
	for i := range c.coNext {
		c.coNext[i] = -1
		c.coSeen[i] = false
	}
	// prev[loc] tracks the location's latest store while walking the
	// global drain order; coFirst doubles as the "no store yet" marker.
	co := w.CoAt(s)
	prev := c.dist[:len(l.locs)] // borrow scratch; rewritten by every pass
	for i := range prev {
		prev[i] = -1
	}
	for _, st := range co {
		if st < 0 || int(st) >= l.NStores() {
			return fmt.Errorf("malformed witness: co entry %d out of store range", st)
		}
		if c.coSeen[st] {
			return fmt.Errorf("malformed witness: store %s appears twice in co", l.StoreRef(st))
		}
		c.coSeen[st] = true
		loc := l.storeLoc[st]
		if prev[loc] < 0 {
			c.coFirst[loc] = st
		} else {
			c.coNext[prev[loc]] = st
		}
		prev[loc] = st
	}
	for st := range c.coSeen {
		if !c.coSeen[st] {
			return fmt.Errorf("malformed witness: store %s missing from co", l.StoreRef(int32(st)))
		}
	}
	rf := w.RFAt(s)
	for k, src := range rf {
		if src < -1 || int(src) >= l.NStores() {
			return fmt.Errorf("malformed witness: rf source %d of load %s out of range", src, l.LoadRef(int32(k)))
		}
		if src >= 0 && l.storeLoc[src] != l.loadLoc[k] {
			return fmt.Errorf("malformed witness: load %s of [%s] reads store %s of [%s]",
				l.LoadRef(int32(k)), l.locs[l.loadLoc[k]], l.StoreRef(src), l.locs[l.storeLoc[src]])
		}
	}
	return nil
}

// run builds one pass's edge set and topologically sorts it, returning
// a Violation with a minimal cycle when the graph is cyclic.
func (c *Checker) run(w *WitnessSet, s int, p pass) *Violation {
	l := c.l
	c.edges = c.edges[:0]

	// Static program-order edges.
	switch p {
	case passCoherence:
		for ev, next := range l.poLocNext {
			if next >= 0 {
				c.edges = append(c.edges, edge{int32(ev), next, relPoLoc})
			}
		}
	case passSC:
		for ev, next := range l.poNext {
			if next >= 0 {
				c.edges = append(c.edges, edge{int32(ev), next, relPo})
			}
		}
	case passTSO:
		for ev := range l.events {
			if next := l.nextNonLoad[ev]; next >= 0 {
				c.edges = append(c.edges, edge{int32(ev), next, relPpo})
			}
			if l.events[ev].kind != litmus.OpStore {
				if next := l.nextLoad[ev]; next >= 0 {
					c.edges = append(c.edges, edge{int32(ev), next, relPpo})
				}
			}
		}
	}

	// Dynamic edges: rf (external only under TSO's ghb — a same-thread
	// rf is forwarding and does not prove the store reached memory), the
	// co chains, and the derived fr edge of every load.
	rf := w.RFAt(s)
	for k, src := range rf {
		if src >= 0 {
			le, se := l.loadEv[k], l.storeEv[src]
			if p != passTSO || l.events[se].thread != l.events[le].thread {
				c.edges = append(c.edges, edge{se, le, relRf})
			}
		}
		next := int32(-1)
		if src >= 0 {
			next = c.coNext[src]
		} else {
			next = c.coFirst[l.loadLoc[k]]
		}
		if next >= 0 {
			c.edges = append(c.edges, edge{l.loadEv[k], l.storeEv[next], relFr})
		}
	}
	for st, next := range c.coNext {
		if next >= 0 {
			c.edges = append(c.edges, edge{l.storeEv[st], l.storeEv[next], relCo})
		}
	}

	if c.kahn() {
		return nil
	}
	return c.violation(w, s, p)
}

// kahn topologically sorts the current edge set over CSR-packed
// adjacency, returning true when the graph is acyclic. On a cycle the
// residual indegrees (and the CSR) are left in place for extraction.
func (c *Checker) kahn() bool {
	n := c.l.NEvents()
	for i := 0; i < n; i++ {
		c.indeg[i] = 0
		c.eoff[i] = 0
	}
	c.eoff[n] = 0
	for _, e := range c.edges {
		c.indeg[e.to]++
		c.eoff[e.from+1]++
	}
	for i := 0; i < n; i++ {
		c.eoff[i+1] += c.eoff[i]
	}
	if cap(c.csr) < len(c.edges) {
		c.csr = make([]edge, len(c.edges))
	}
	c.csr = c.csr[:len(c.edges)]
	// Counting sort by source; fill cursors borrow dist scratch.
	cur := c.dist[:0]
	cur = append(cur, c.eoff[:n]...)
	for _, e := range c.edges {
		c.csr[cur[e.from]] = e
		cur[e.from]++
	}

	q := c.queue[:0]
	for i := 0; i < n; i++ {
		if c.indeg[i] == 0 {
			q = append(q, int32(i))
		}
	}
	processed := 0
	for len(q) > 0 {
		node := q[0]
		q = q[1:]
		processed++
		for i := c.eoff[node]; i < c.eoff[node+1]; i++ {
			to := c.csr[i].to
			c.indeg[to]--
			if c.indeg[to] == 0 {
				q = append(q, to)
			}
		}
	}
	return processed == n
}

// violation extracts a minimal cycle from the residual graph left by a
// failed kahn pass: nodes with positive residual indegree are the union
// of all cycles and their downstream cones; a BFS from each candidate,
// restricted to residual nodes, finds the shortest path back to itself,
// and the overall shortest (first on ties, in event order) is reported.
// Violations are cold, so the quadratic sweep costs nothing in the
// common all-consistent stream.
func (c *Checker) violation(w *WitnessSet, s int, p pass) *Violation {
	n := c.l.NEvents()
	bestLen := int32(-1)
	var best []int32 // csr edge indices of the winning cycle, in order
	for root := int32(0); root < int32(n); root++ {
		if c.indeg[root] <= 0 {
			continue
		}
		if cyc := c.shortestCycleFrom(root, bestLen); cyc != nil {
			best, bestLen = cyc, int32(len(cyc))
		}
	}
	v := &Violation{
		Test:  c.l.test,
		Model: c.model,
		Axiom: p.axiom(),
		Union: p.union(),
		Iter:  w.Iter(s),
		RF:    append([]int32(nil), w.RFAt(s)...),
		Co:    append([]int32(nil), w.CoAt(s)...),
	}
	for _, ei := range best {
		e := c.csr[ei]
		v.Cycle = append(v.Cycle, CycleEdge{
			From: c.l.eventRefOf(e.from),
			To:   c.l.eventRefOf(e.to),
			Rel:  e.rel.String(),
		})
	}
	return v
}

// shortestCycleFrom BFSes the residual subgraph for the shortest path
// root → … → root, returning its csr edge indices, or nil when none
// shorter than bound exists (bound < 0 means unbounded).
func (c *Checker) shortestCycleFrom(root, bound int32) []int32 {
	n := c.l.NEvents()
	for i := 0; i < n; i++ {
		c.dist[i] = -1
		c.prevEdg[i] = -1
	}
	q := c.queue[:0]
	c.dist[root] = 0
	q = append(q, root)
	var closing int32 = -1 // csr index of the edge that closes the cycle
	var closeAt int32
	for qi := 0; qi < len(q) && closing < 0; qi++ {
		node := q[qi]
		if bound >= 0 && c.dist[node]+1 >= bound {
			continue
		}
		for i := c.eoff[node]; i < c.eoff[node+1]; i++ {
			to := c.csr[i].to
			if c.indeg[to] <= 0 {
				continue // not part of the residual graph
			}
			if to == root {
				closing, closeAt = i, node
				break
			}
			if c.dist[to] < 0 {
				c.dist[to] = c.dist[node] + 1
				c.prevEdg[to] = i
				q = append(q, to)
			}
		}
	}
	if closing < 0 {
		return nil
	}
	var rev []int32
	rev = append(rev, closing)
	for at := closeAt; at != root; {
		ei := c.prevEdg[at]
		rev = append(rev, ei)
		at = c.csr[ei].from
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func (l *Layout) eventRefOf(ev int32) EventRef {
	e := &l.events[ev]
	return EventRef{Thread: int(e.thread), Index: int(e.index)}
}
