// Differential ground truth for the streaming checker. The tests here
// are external (package trace_test) so they can drive internal/sim —
// which itself imports trace — and internal/axiom:
//
//   - every witness the simulator emits on the suite and a generated
//     corpus must be accepted under TSO (the machine implements TSO, so
//     a rejection is a checker or recorder bug);
//   - every witness the axiomatic enumerator deems consistent must be
//     accepted after conversion (the two implementations share their
//     axioms and must agree);
//   - mutated witnesses must agree with an independent quadratic
//     checker, and guaranteed-inconsistent mutations must be rejected;
//   - a PSO-configured machine must produce at least one reported TSO
//     violation with a cycle report (fault-injection self-test, the
//     trace plane's analogue of the oracle's PSO test).
package trace_test

import (
	"math/rand"
	"strings"
	"testing"

	"perple/internal/axiom"
	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/sim"
	"perple/internal/trace"
)

// corpus returns the differential corpus: the full perpetual suite plus
// a deterministic generated batch.
func corpus(t *testing.T) []*litmus.Test {
	t.Helper()
	var tests []*litmus.Test
	for _, e := range litmus.Suite() {
		tests = append(tests, e.Test)
	}
	rng := rand.New(rand.NewSource(42))
	tests = append(tests, litmus.GenerateCorpus(rng, litmus.DefaultGenConfig(), "tracegen", 60)...)
	return tests
}

// ----- independent quadratic reference checker -----

// naiveEvents flattens a test into (thread, index, kind, loc) tuples in
// the same dense order the trace layout uses, rebuilt here from the AST
// so the reference shares no code with the implementation under test.
type naiveEvent struct {
	thread, index int
	kind          litmus.OpKind
	loc           litmus.Loc
}

func naiveFlatten(tc *litmus.Test) (events []naiveEvent, loadEv, storeEv []int) {
	for ti, th := range tc.Threads {
		for ii, in := range th.Instrs {
			ev := len(events)
			events = append(events, naiveEvent{ti, ii, in.Kind, in.Loc})
			switch in.Kind {
			case litmus.OpLoad:
				loadEv = append(loadEv, ev)
			case litmus.OpStore:
				storeEv = append(storeEv, ev)
			}
		}
	}
	return
}

// naiveConsistent decides witness consistency by brute force: build the
// model's full relation union as an adjacency matrix (po pairs by double
// loop, fences found by scanning between each store/load pair, fr as
// load → every co-later store) and DFS for a cycle. O(events²) per
// witness — the reference the near-linear checker must agree with.
func naiveConsistent(tc *litmus.Test, rf, co []int32, model memmodel.Model) bool {
	events, loadEv, storeEv := naiveFlatten(tc)
	n := len(events)

	adj := func() [][]bool {
		m := make([][]bool, n)
		for i := range m {
			m[i] = make([]bool, n)
		}
		return m
	}
	cyclic := func(m [][]bool) bool {
		state := make([]int, n) // 0 unvisited, 1 on stack, 2 done
		var dfs func(int) bool
		dfs = func(u int) bool {
			state[u] = 1
			for v := 0; v < n; v++ {
				if !m[u][v] {
					continue
				}
				if state[v] == 1 || (state[v] == 0 && dfs(v)) {
					return true
				}
			}
			state[u] = 2
			return false
		}
		for u := 0; u < n; u++ {
			if state[u] == 0 && dfs(u) {
				return true
			}
		}
		return false
	}

	// coPos[s] is store s's rank in its location's coherence order.
	coPos := make([]int, len(storeEv))
	perLoc := map[litmus.Loc][]int32{}
	for _, st := range co {
		loc := events[storeEv[st]].loc
		coPos[st] = len(perLoc[loc])
		perLoc[loc] = append(perLoc[loc], st)
	}
	coAfter := func(a, b int32) bool { // is store b co-after store a (same loc)?
		return coPos[b] > coPos[a]
	}

	addDynamic := func(m [][]bool, externalOnly bool) {
		for k, src := range rf {
			if src >= 0 {
				if !externalOnly || events[storeEv[src]].thread != events[loadEv[k]].thread {
					m[storeEv[src]][loadEv[k]] = true
				}
			}
			// fr: the load precedes every store co-after its source.
			loc := events[loadEv[k]].loc
			for _, st := range perLoc[loc] {
				if src < 0 || coAfter(src, st) {
					m[loadEv[k]][storeEv[st]] = true
				}
			}
		}
		for _, sts := range perLoc {
			for i := 0; i < len(sts); i++ {
				for j := i + 1; j < len(sts); j++ {
					m[storeEv[sts[i]]][storeEv[sts[j]]] = true
				}
			}
		}
	}

	if model == memmodel.SC {
		m := adj()
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if events[i].thread == events[j].thread {
					m[i][j] = true
				}
			}
		}
		addDynamic(m, false)
		return !cyclic(m)
	}

	// Coherence: po restricted to same location, plus all dynamic edges.
	m := adj()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if events[i].thread == events[j].thread && events[i].loc != "" && events[i].loc == events[j].loc {
				m[i][j] = true
			}
		}
	}
	addDynamic(m, false)
	if cyclic(m) {
		return false
	}

	// TSO ghb: ppo (po minus unfenced store→load), external rf, co, fr.
	g := adj()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if events[i].thread != events[j].thread {
				continue
			}
			if events[i].kind == litmus.OpStore && events[j].kind == litmus.OpLoad {
				fenced := false
				for k := i + 1; k < j; k++ {
					if events[k].thread == events[i].thread && events[k].kind == litmus.OpFence {
						fenced = true
						break
					}
				}
				if !fenced {
					continue
				}
			}
			g[i][j] = true
		}
	}
	addDynamic(g, true)
	return !cyclic(g)
}

// ----- sim-emitted witnesses -----

// runWitnessed executes n synced iterations with full witness recording
// and returns the result (aliasing the runner's buffers).
func runWitnessed(t *testing.T, tc *litmus.Test, n int, mode sim.Mode, cfg sim.Config) (*sim.CompiledTest, *sim.SyncedResult) {
	t.Helper()
	ct, err := sim.Compile(tc)
	if err != nil {
		t.Fatalf("%s: %v", tc.Name, err)
	}
	cfg.WitnessEvery = 1
	res, err := sim.NewRunner(ct).RunSynced(n, mode, cfg)
	if err != nil {
		t.Fatalf("%s: %v", tc.Name, err)
	}
	return ct, res
}

// TestSimWitnessesAcceptedTSO: the machine implements TSO, so every
// witness it emits — across barrier modes and the free-running mode,
// on the suite and generated shapes alike — must pass the checker.
func TestSimWitnessesAcceptedTSO(t *testing.T) {
	checked := 0
	for _, tc := range corpus(t) {
		for _, mode := range []sim.Mode{sim.ModeUser, sim.ModeTimebase, sim.ModeNone} {
			cfg := sim.DefaultConfig().WithSeed(int64(len(tc.Name)) + 11)
			ct, res := runWitnessed(t, tc, 40, mode, cfg)
			c, err := trace.NewCheckerLayout(ct.WitnessLayout(), memmodel.TSO)
			if err != nil {
				t.Fatalf("%s: %v", tc.Name, err)
			}
			for s := 0; s < res.Witnesses.Slots; s++ {
				v, err := c.Check(res.Witnesses, s)
				if err != nil {
					t.Fatalf("%s/%s slot %d: malformed sim witness: %v", tc.Name, mode, s, err)
				}
				if v != nil {
					t.Fatalf("%s/%s slot %d: sim witness rejected:\n%s", tc.Name, mode, s, v.Format())
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no witnesses checked")
	}
	t.Logf("accepted %d sim witnesses", checked)
}

// TestSimWitnessesAgreeWithNaive holds the near-linear checker to the
// quadratic reference on genuine machine output (all accepted above, so
// the reference must accept too — this validates the reference itself).
func TestSimWitnessesAgreeWithNaive(t *testing.T) {
	for _, e := range litmus.Suite() {
		tc := e.Test
		_, res := runWitnessed(t, tc, 10, sim.ModeUser, sim.DefaultConfig())
		for s := 0; s < res.Witnesses.Slots; s++ {
			if !naiveConsistent(tc, res.Witnesses.RFAt(s), res.Witnesses.CoAt(s), memmodel.TSO) {
				t.Fatalf("%s slot %d: reference checker rejected a machine witness", tc.Name, s)
			}
		}
	}
}

// ----- axiom-enumerated witnesses -----

// convertAxiomWitness re-expresses an axiom witness in trace encoding.
func convertAxiomWitness(t *testing.T, l *trace.Layout, w *axiom.Witness) (rf, co []int32) {
	t.Helper()
	// (thread, index) → dense indices, rebuilt from the AST.
	loadIdx := map[axiom.EventRef]int32{}
	storeIdx := map[axiom.EventRef]int32{}
	var nl, ns int32
	for ti, th := range w.Test.Threads {
		for ii, in := range th.Instrs {
			ref := axiom.EventRef{Thread: ti, Index: ii}
			switch in.Kind {
			case litmus.OpLoad:
				loadIdx[ref] = nl
				nl++
			case litmus.OpStore:
				storeIdx[ref] = ns
				ns++
			}
		}
	}
	rf = make([]int32, l.NLoads())
	for k, e := range w.RF {
		if e.Store.IsInit() {
			rf[k] = -1
		} else {
			rf[k] = storeIdx[e.Store]
		}
	}
	// Concatenating the per-location orders in sorted location order is a
	// valid global drain order: co only constrains within a location.
	for _, loc := range l.Locs() {
		for _, ref := range w.WS[loc] {
			co = append(co, storeIdx[ref])
		}
	}
	return rf, co
}

// TestAxiomWitnessesAccepted: every execution the exact enumerator
// finds TSO-consistent must also satisfy the streaming checker.
func TestAxiomWitnessesAccepted(t *testing.T) {
	checked := 0
	for _, tc := range corpus(t) {
		rep, err := axiom.Analyze(tc)
		if err != nil {
			if _, tooBig := err.(*axiom.TooLargeError); tooBig {
				continue
			}
			t.Fatalf("%s: %v", tc.Name, err)
		}
		l, err := trace.NewLayout(tc)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		c, err := trace.NewCheckerLayout(l, memmodel.TSO)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		for _, oc := range rep.Outcomes {
			if oc.Class == axiom.Forbidden {
				continue
			}
			aw := rep.WitnessFor(oc.Outcome)
			if aw == nil {
				continue
			}
			rf, co := convertAxiomWitness(t, l, aw)
			w := trace.NewWitnessSet(l)
			w.Reset(1, 1)
			for k, src := range rf {
				w.SetRF(0, int32(k), src)
			}
			for _, st := range co {
				w.AppendCo(0, st)
			}
			v, err := c.Check(w, 0)
			if err != nil {
				t.Fatalf("%s %v: converted axiom witness malformed: %v", tc.Name, oc.Outcome, err)
			}
			if v != nil {
				t.Fatalf("%s %v: axiom-consistent witness rejected:\n%s\naxiom witness:\n%s",
					tc.Name, oc.Outcome, v.Format(), aw.Format())
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no axiom witnesses checked")
	}
	t.Logf("accepted %d axiom witnesses", checked)
}

// ----- mutations -----

// TestMutatedWitnessesDifferential perturbs genuine machine witnesses —
// co swaps and rf rewrites — and requires the streaming checker's
// verdict to match the quadratic reference on every mutant. (A mutation
// is not always a violation: reversing two stores of independent
// threads can be a legal alternative execution, which is exactly why
// the reference arbitrates.)
func TestMutatedWitnessesDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rejected, agreed := 0, 0
	for _, e := range litmus.Suite() {
		tc := e.Test
		ct, res := runWitnessed(t, tc, 20, sim.ModeUser, sim.DefaultConfig())
		l := ct.WitnessLayout()
		c, err := trace.NewCheckerLayout(l, memmodel.TSO)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			s := rng.Intn(res.Witnesses.Slots)
			rf := append([]int32(nil), res.Witnesses.RFAt(s)...)
			co := append([]int32(nil), res.Witnesses.CoAt(s)...)
			switch {
			case len(co) >= 2 && rng.Intn(2) == 0:
				i, j := rng.Intn(len(co)), rng.Intn(len(co))
				co[i], co[j] = co[j], co[i]
			case len(rf) > 0:
				k := rng.Intn(len(rf))
				// Retarget the load to a random same-location store or init.
				var cands []int32 = []int32{-1}
				for st := int32(0); st < int32(l.NStores()); st++ {
					if l.StoreLoc(st) == l.LoadLoc(int32(k)) {
						cands = append(cands, st)
					}
				}
				rf[k] = cands[rng.Intn(len(cands))]
			default:
				continue
			}
			w := trace.NewWitnessSet(l)
			w.Reset(1, 1)
			for k, src := range rf {
				w.SetRF(0, int32(k), src)
			}
			for _, st := range co {
				w.AppendCo(0, st)
			}
			v, err := c.Check(w, 0)
			if err != nil {
				t.Fatalf("%s: mutated witness unexpectedly malformed: %v", tc.Name, err)
			}
			want := naiveConsistent(tc, rf, co, memmodel.TSO)
			if got := v == nil; got != want {
				rep := "accepted"
				if v != nil {
					rep = v.Format()
				}
				t.Fatalf("%s trial %d: checker=%v reference=%v\nrf=%v co=%v\n%s",
					tc.Name, trial, got, want, rf, co, rep)
			}
			agreed++
			if v != nil {
				rejected++
			}
		}
	}
	if rejected == 0 {
		t.Fatal("no mutation was rejected; the differential has no teeth")
	}
	t.Logf("agreed on %d mutants (%d rejected)", agreed, rejected)
}

// ----- PSO fault-injection self-test -----

// TestTraceDetectsPSO: a machine configured as PSO (store-store drain
// reordering — hardware that claims TSO but isn't) must yield at least
// one witness the TSO checker rejects, with a usable cycle report. This
// is the trace plane's end-to-end detection guarantee, mirroring
// oracle.TestOracleDetectsPSO.
func TestTraceDetectsPSO(t *testing.T) {
	tc, err := litmus.SuiteTest("mp")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sim.Preset("pso")
	if err != nil {
		t.Fatal(err)
	}
	var v *trace.Violation
	for _, n := range []int{500, 2000, 8000} {
		ct, res := runWitnessed(t, tc, n, sim.ModeTimebase, cfg)
		c, cerr := trace.NewCheckerLayout(ct.WitnessLayout(), memmodel.TSO)
		if cerr != nil {
			t.Fatal(cerr)
		}
		for s := 0; s < res.Witnesses.Slots && v == nil; s++ {
			vv, err := c.Check(res.Witnesses, s)
			if err != nil {
				t.Fatalf("slot %d: %v", s, err)
			}
			v = vv
		}
		if v != nil {
			break
		}
	}
	if v == nil {
		t.Fatal("PSO machine never produced a TSO-rejected witness; trace verification cannot detect conformance bugs")
	}
	rep := v.Format()
	for _, want := range []string{"trace violation", "cycle", "rf:", "co:"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
