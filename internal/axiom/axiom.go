// Package axiom is a static axiomatic x86-TSO/SC checker over the
// litmus.Test AST, in the style of herd ("Herding Cats", Alglave,
// Maranget, Tautschnig). It enumerates candidate executions symbolically
// — program order is fixed; every reads-from assignment and every
// per-location coherence order is a choice — filters them against the
// axioms of sequential consistency and of x86-TSO, and classifies each
// final-state outcome of a test as SCAllowed, TSOOnly (the interesting
// weak outcomes) or Forbidden.
//
// The axioms, following herd's x86tso.cat:
//
//   - coherence ("uniproc"): program order restricted to same-location
//     accesses, together with rf, co and the derived fr, must be acyclic
//     under every model;
//   - SC: full po ∪ rf ∪ co ∪ fr acyclic;
//   - TSO: ghb = ppo ∪ mfence ∪ rfe ∪ co ∪ fr acyclic, where ppo drops
//     store→load program order (the store-buffer relaxation), mfence
//     restores it across an OpFence, and rfe keeps only cross-thread
//     read-from edges — a same-thread rf is store-to-load forwarding and
//     does not prove the store reached memory.
//
// Unlike the happens-before checker in internal/memmodel (which this
// package cross-validates against in tests), the enumeration here is
// engineered as a static pre-flight: sub-relations are memoized per test
// (program-order bitmasks, po-consistent coherence permutations, pruned
// reads-from candidate lists, from-read suffix masks) and all per-
// candidate work runs on reusable uint64 adjacency masks, so suite-sized
// tests classify in microseconds and whole corpora in well under a
// second. Enumeration is exact up to an explicit cutoff (Limits); above
// it Analyze refuses with a *TooLargeError instead of answering
// inexactly, so the result is always a proof, never a sample.
package axiom

import (
	"fmt"

	"perple/internal/litmus"
)

// Class classifies one outcome of a litmus test against the two models.
type Class int

const (
	// Forbidden outcomes are allowed by neither SC nor x86-TSO; a
	// conforming machine never produces them, so a test targeting one is
	// statically useless (or a conformance-bug detector).
	Forbidden Class = iota
	// TSOOnly outcomes are allowed by x86-TSO but not by SC: observing
	// one witnesses store buffering. These are the targets memory
	// consistency testing is after.
	TSOOnly
	// SCAllowed outcomes are allowed by SC (hence by TSO too); observing
	// one says nothing about the memory model.
	SCAllowed
)

func (c Class) String() string {
	switch c {
	case Forbidden:
		return "forbidden"
	case TSOOnly:
		return "tso-only"
	case SCAllowed:
		return "sc-allowed"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Limits is the enumeration cutoff. Classification is exact for every
// test within the limits; beyond them Analyze returns *TooLargeError.
type Limits struct {
	// MaxThreads bounds the thread count. Zero selects the default.
	MaxThreads int
	// MaxEvents bounds the total memory events (loads + stores; fences
	// are free). Zero selects the default.
	MaxEvents int
}

// Default cutoffs: every test of the Table II suite fits (the largest,
// rfi017, has 7 events on 2 threads; iriw has 6 events on 4 threads).
const (
	DefaultMaxThreads = 4
	DefaultMaxEvents  = 8
)

// DefaultLimits returns the default enumeration cutoff.
func DefaultLimits() Limits {
	return Limits{MaxThreads: DefaultMaxThreads, MaxEvents: DefaultMaxEvents}
}

func (l Limits) withDefaults() Limits {
	if l.MaxThreads <= 0 {
		l.MaxThreads = DefaultMaxThreads
	}
	if l.MaxEvents <= 0 {
		l.MaxEvents = DefaultMaxEvents
	}
	return l
}

// TooLargeError reports a test beyond the enumeration cutoff. The checker
// refuses rather than subsampling: a partial enumeration could misreport
// an allowed outcome as Forbidden, which downstream consumers (campaign
// pre-flight, the differential oracle) treat as proof.
type TooLargeError struct {
	Test    string
	Threads int
	Events  int
	Limits  Limits
}

func (e *TooLargeError) Error() string {
	return fmt.Sprintf("axiom: %s exceeds the exact-enumeration cutoff (%d threads, %d events; limits %d threads, %d events): refusing to classify inexactly",
		e.Test, e.Threads, e.Events, e.Limits.MaxThreads, e.Limits.MaxEvents)
}

// Result is one distinct final state some axiom-consistent execution
// produces: the register file, the final memory, the models that allow
// it, and a witness execution per model.
type Result struct {
	Regs [][]int64
	Mem  map[litmus.Loc]int64
	// SC reports whether some SC-consistent execution produces this
	// state. TSO is implied true for every Result (SC-consistent
	// executions are TSO-consistent; only TSO-consistent states are
	// recorded).
	SC bool
	// WitnessTSO is the first TSO-consistent execution producing this
	// state; WitnessSC the first SC-consistent one (nil when !SC).
	WitnessTSO *Witness
	WitnessSC  *Witness
}

// OutcomeClass pairs one outcome of the test's register-outcome space
// with its classification.
type OutcomeClass struct {
	Outcome litmus.Outcome
	Class   Class
}

// TargetInfo is the analysis of the test's declared target outcome.
type TargetInfo struct {
	Class Class
	// Unsatisfiable: some condition constrains a register or location to
	// a value outside its static value domain — no candidate execution,
	// consistent or not, can produce it. (A satisfiable-but-Forbidden
	// target is not Unsatisfiable.)
	Unsatisfiable bool
	// Vacuous: every TSO-consistent execution satisfies the target, so
	// observing it carries no information.
	Vacuous bool
	// Witness is an execution exhibiting the target: an SC witness when
	// the target is SCAllowed, else a TSO witness when TSOOnly; nil when
	// Forbidden.
	Witness *Witness
}

// Report is the full static analysis of one test.
type Report struct {
	Test   *litmus.Test
	Limits Limits

	// Executions is the number of symbolic candidates enumerated
	// (reads-from assignments × coherence orders, after static pruning);
	// Consistent of those passing the coherence axiom.
	Executions int
	Consistent int

	// Results are the distinct final states allowed under TSO, in first-
	// witnessed (deterministic) order.
	Results []Result

	// Outcomes classifies the test's full register-outcome space
	// (litmus.Test.AllOutcomes order).
	Outcomes []OutcomeClass

	// Target analyzes the declared target outcome.
	Target TargetInfo

	keys map[string]int // resultKey -> Results index
}

// Analyze classifies the test under the default cutoff.
func Analyze(t *litmus.Test) (*Report, error) {
	return AnalyzeWithLimits(t, DefaultLimits())
}

// AnalyzeWithLimits classifies the test, enumerating exactly up to lim.
func AnalyzeWithLimits(t *litmus.Test, lim Limits) (*Report, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	lim = lim.withDefaults()
	a, err := newAnalysis(t, lim)
	if err != nil {
		return nil, err
	}
	rep := &Report{Test: t, Limits: lim, keys: map[string]int{}}
	a.enumerate(rep)
	rep.classifyOutcomes()
	rep.classifyTarget()
	return rep, nil
}

// Classify returns the class of an arbitrary outcome of the test.
func (r *Report) Classify(o litmus.Outcome) Class {
	cls := Forbidden
	for i := range r.Results {
		res := &r.Results[i]
		if !o.HoldsFull(res.Regs, res.Mem) {
			continue
		}
		if res.SC {
			return SCAllowed
		}
		cls = TSOOnly
	}
	return cls
}

// WitnessFor returns a witness execution exhibiting the outcome under the
// strongest model that allows it (SC first, else TSO), or nil when the
// outcome is Forbidden.
func (r *Report) WitnessFor(o litmus.Outcome) *Witness {
	var tso *Witness
	for i := range r.Results {
		res := &r.Results[i]
		if !o.HoldsFull(res.Regs, res.Mem) {
			continue
		}
		if res.SC {
			return res.WitnessSC
		}
		if tso == nil {
			tso = res.WitnessTSO
		}
	}
	return tso
}

// TSOAllows reports whether the final state (regs, mem) is allowed under
// x86-TSO. mem may be nil when the caller has no final-memory view; the
// state then matches on registers alone.
func (r *Report) TSOAllows(regs [][]int64, mem map[litmus.Loc]int64) bool {
	if mem != nil {
		_, ok := r.keys[stateKey(r.Test, regs, mem)]
		return ok
	}
	for i := range r.Results {
		if regsEqual(r.Results[i].Regs, regs) {
			return true
		}
	}
	return false
}

// SCAllows is TSOAllows for the SC subset.
func (r *Report) SCAllows(regs [][]int64, mem map[litmus.Loc]int64) bool {
	if mem != nil {
		i, ok := r.keys[stateKey(r.Test, regs, mem)]
		return ok && r.Results[i].SC
	}
	for i := range r.Results {
		if r.Results[i].SC && regsEqual(r.Results[i].Regs, regs) {
			return true
		}
	}
	return false
}

// SCResults returns the SC-consistent subset of Results.
func (r *Report) SCResults() []Result {
	var out []Result
	for _, res := range r.Results {
		if res.SC {
			out = append(out, res)
		}
	}
	return out
}

func (r *Report) classifyOutcomes() {
	outs := r.Test.AllOutcomes()
	r.Outcomes = make([]OutcomeClass, len(outs))
	for i, o := range outs {
		r.Outcomes[i] = OutcomeClass{Outcome: o, Class: r.Classify(o)}
	}
}

func (r *Report) classifyTarget() {
	t := r.Test
	r.Target.Class = r.Classify(t.Target)
	r.Target.Unsatisfiable = targetUnsatisfiable(t)
	r.Target.Witness = r.WitnessFor(t.Target)
	if len(r.Results) > 0 {
		vac := true
		for i := range r.Results {
			if !t.Target.HoldsFull(r.Results[i].Regs, r.Results[i].Mem) {
				vac = false
				break
			}
		}
		r.Target.Vacuous = vac
	}
}

// targetUnsatisfiable checks each condition's value against its static
// value domain: a register's final value is its last load's location's
// initial value or one of the values stored there; a location's final
// value likewise. Out-of-domain conditions can never hold, regardless of
// the memory model — typically a typo in a hand-written .litmus file.
func targetUnsatisfiable(t *litmus.Test) bool {
	lastLoc := map[[2]int]litmus.Loc{}
	for ti, th := range t.Threads {
		for _, in := range th.Instrs {
			if in.Kind == litmus.OpLoad {
				lastLoc[[2]int{ti, in.Reg}] = in.Loc
			}
		}
	}
	inDomain := func(loc litmus.Loc, v int64) bool {
		if v == t.Init[loc] {
			return true
		}
		for _, sv := range t.StoreValues(loc) {
			if sv == v {
				return true
			}
		}
		return false
	}
	for _, c := range t.Target.Conds {
		if c.IsMem() {
			if !inDomain(c.Loc, c.Value) {
				return true
			}
			continue
		}
		loc, ok := lastLoc[[2]int{c.Thread, c.Reg}]
		if !ok || !inDomain(loc, c.Value) {
			return true
		}
	}
	return false
}

func regsEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// stateKey encodes a (register file, final memory) state canonically.
func stateKey(t *litmus.Test, regs [][]int64, mem map[litmus.Loc]int64) string {
	b := make([]byte, 0, 64)
	for _, tr := range regs {
		for _, v := range tr {
			b = appendInt(b, v)
		}
		b = append(b, '|')
	}
	b = append(b, '#')
	for _, loc := range t.Locs() {
		b = appendInt(b, mem[loc])
	}
	return string(b)
}

func appendInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendInt(b, v/10)
	}
	return append(b, byte('0'+v%10), ',')
}
