package axiom

import (
	"fmt"
	"sort"
	"strings"

	"perple/internal/litmus"
)

// EventRef names a memory event by (thread, instruction index); the init
// pseudo-store is Thread -1.
type EventRef struct {
	Thread int
	Index  int
}

// IsInit reports whether the reference is the init pseudo-store.
func (r EventRef) IsInit() bool { return r.Thread < 0 }

func (r EventRef) String() string {
	if r.IsInit() {
		return "init"
	}
	return fmt.Sprintf("P%d#%d", r.Thread, r.Index)
}

// RFEdge records which store one load read.
type RFEdge struct {
	Load  EventRef
	Store EventRef // init when the load read the initial value
}

// Witness is one concrete axiom-consistent execution: the reads-from
// assignment of every load, the coherence order of every stored-to
// location, and the final state it produces. It is the artifact the
// differential oracle prints next to a diverging simulator trace, and
// what perple-lint shows to justify a classification.
type Witness struct {
	Test *litmus.Test
	RF   []RFEdge                      // in load (thread, index) order
	WS   map[litmus.Loc][]EventRef     // coherence order per location (init elided)
	Regs [][]int64
	Mem  map[litmus.Loc]int64
}

// witness materializes the current odometer position as a Witness.
func (a *analysis) witness(idx []int, regs [][]int64, mem map[litmus.Loc]int64) *Witness {
	w := &Witness{
		Test: a.t,
		WS:   make(map[litmus.Loc][]EventRef, len(a.permLocs)),
		Regs: regs,
		Mem:  mem,
	}
	for k, lid := range a.loads {
		sid := a.rfCands[k][idx[k]]
		le, se := &a.events[lid], &a.events[sid]
		w.RF = append(w.RF, RFEdge{
			Load:  EventRef{Thread: le.thread, Index: le.index},
			Store: EventRef{Thread: se.thread, Index: se.index},
		})
	}
	for k, loc := range a.permLocs {
		p := a.permChoice[k]
		refs := make([]EventRef, 0, len(p.order))
		for _, sid := range p.order {
			se := &a.events[sid]
			refs = append(refs, EventRef{Thread: se.thread, Index: se.index})
		}
		w.WS[loc] = refs
	}
	return w
}

// describe renders an event reference with its instruction text.
func (w *Witness) describe(r EventRef) string {
	if r.IsInit() {
		return "init"
	}
	return fmt.Sprintf("%s %s", r, w.Test.Threads[r.Thread].Instrs[r.Index])
}

// Format renders the witness for humans, one relation per line:
//
//	rf: P0#1 r0 <- [y] reads init
//	co: [x]: init -> P1#0 [x] <- 1
//	final: 0:r0=0 && 1:r0=0 | [x]=1 [y]=1
func (w *Witness) Format() string {
	var b strings.Builder
	for i, e := range w.RF {
		if i == 0 {
			b.WriteString("rf: ")
		} else {
			b.WriteString("    ")
		}
		fmt.Fprintf(&b, "%s reads %s\n", w.describe(e.Load), w.describe(e.Store))
	}
	locs := make([]litmus.Loc, 0, len(w.WS))
	for loc := range w.WS {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	for i, loc := range locs {
		if i == 0 {
			b.WriteString("co: ")
		} else {
			b.WriteString("    ")
		}
		parts := []string{"init"}
		for _, ref := range w.WS[loc] {
			parts = append(parts, w.describe(ref))
		}
		fmt.Fprintf(&b, "[%s]: %s\n", loc, strings.Join(parts, " -> "))
	}
	b.WriteString("final: ")
	var regParts []string
	for ti, tr := range w.Regs {
		for r, v := range tr {
			regParts = append(regParts, fmt.Sprintf("%d:r%d=%d", ti, r, v))
		}
	}
	if len(regParts) == 0 {
		regParts = []string{"(no registers)"}
	}
	b.WriteString(strings.Join(regParts, " && "))
	memLocs := make([]litmus.Loc, 0, len(w.Mem))
	for loc := range w.Mem {
		memLocs = append(memLocs, loc)
	}
	sort.Slice(memLocs, func(i, j int) bool { return memLocs[i] < memLocs[j] })
	if len(memLocs) > 0 {
		b.WriteString(" |")
		for _, loc := range memLocs {
			fmt.Fprintf(&b, " [%s]=%d", loc, w.Mem[loc])
		}
	}
	b.WriteString("\n")
	return b.String()
}
