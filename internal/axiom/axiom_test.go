package axiom

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"perple/internal/litmus"
	"perple/internal/memmodel"
)

// TestSuiteClassification is the headline acceptance property: for every
// test of the Table II suite, the static classification of the declared
// target matches the suite's allowed/forbidden label. The allowed group's
// targets are additionally SC-forbidden by construction (observing one
// demonstrates store buffering), so they must classify exactly TSOOnly.
func TestSuiteClassification(t *testing.T) {
	for _, e := range litmus.Suite() {
		rep, err := Analyze(e.Test)
		if err != nil {
			t.Fatalf("%s: %v", e.Test.Name, err)
		}
		want := Forbidden
		if e.Allowed {
			want = TSOOnly
		}
		if rep.Target.Class != want {
			t.Errorf("%s: target classified %v, want %v", e.Test.Name, rep.Target.Class, want)
		}
		if e.Allowed && rep.Target.Witness == nil {
			t.Errorf("%s: allowed target has no witness", e.Test.Name)
		}
		if !e.Allowed && rep.Target.Witness != nil {
			t.Errorf("%s: forbidden target has a witness:\n%s", e.Test.Name, rep.Target.Witness.Format())
		}
		if rep.Target.Unsatisfiable {
			t.Errorf("%s: suite target reported unsatisfiable", e.Test.Name)
		}
		if rep.Target.Vacuous {
			t.Errorf("%s: suite target reported vacuous", e.Test.Name)
		}
	}
}

// TestNonConvertibleAgainstMemmodel classifies the final-memory-target
// tests against the existing checker rather than hand-written labels.
func TestNonConvertibleAgainstMemmodel(t *testing.T) {
	for _, tc := range litmus.NonConvertible() {
		rep, err := Analyze(tc)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		wantTSO := memmodel.AxiomaticAllowed(tc, tc.Target, memmodel.TSO)
		wantSC := memmodel.AxiomaticAllowed(tc, tc.Target, memmodel.SC)
		var want Class
		switch {
		case wantSC:
			want = SCAllowed
		case wantTSO:
			want = TSOOnly
		default:
			want = Forbidden
		}
		if rep.Target.Class != want {
			t.Errorf("%s: target classified %v, want %v", tc.Name, rep.Target.Class, want)
		}
	}
}

// TestResultSetsMatchMemmodel cross-validates the memoized enumeration
// against both existing oracles — the hb-graph axiomatic checker and the
// independent operational store-buffer machine — over the suite and the
// non-convertible tests: identical TSO result sets, identical SC subsets.
func TestResultSetsMatchMemmodel(t *testing.T) {
	var tests []*litmus.Test
	for _, e := range litmus.Suite() {
		tests = append(tests, e.Test)
	}
	tests = append(tests, litmus.NonConvertible()...)
	for _, tc := range tests {
		checkResultSets(t, tc)
	}
}

// TestResultSetsMatchMemmodelRandom repeats the cross-validation over a
// fixed-seed generated corpus sized to fit the default cutoff.
func TestResultSetsMatchMemmodelRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	cfg := litmus.GenConfig{
		MinThreads: 2,
		MaxThreads: 4,
		MaxInstrs:  2,
		Locs:       []litmus.Loc{"x", "y", "z"},
		FenceProb:  0.2,
	}
	for i := 0; i < 40; i++ {
		tc := litmus.Generate(rng, cfg, fmt.Sprintf("axrand%03d", i))
		checkResultSets(t, tc)
	}
	// And over diy cycle tests, which exercise every edge kind.
	cycles := [][]litmus.EdgeSpec{
		{litmus.PodWR, litmus.Fre, litmus.PodWR, litmus.Fre},
		{litmus.PodWW, litmus.Rfe, litmus.PodRR, litmus.Fre},
		{litmus.PodRW, litmus.Rfe, litmus.PodRW, litmus.Rfe},
		{litmus.Rfe, litmus.PodRW, litmus.Rfe, litmus.PodRR, litmus.Fre},
		{litmus.Rfe, litmus.PodRR, litmus.Fre, litmus.Rfe, litmus.PodRR, litmus.Fre},
		{litmus.FencedWR, litmus.Fre, litmus.FencedWR, litmus.Fre},
		{litmus.Wse, litmus.PodWW, litmus.Wse, litmus.PodWW},
	}
	for i, edges := range cycles {
		tc, err := litmus.FromCycle(fmt.Sprintf("axcycle%02d", i), edges...)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		checkResultSets(t, tc)
	}
}

func checkResultSets(t *testing.T, tc *litmus.Test) {
	t.Helper()
	rep, err := Analyze(tc)
	var tle *TooLargeError
	if errors.As(err, &tle) {
		t.Fatalf("%s: unexpectedly over the cutoff: %v", tc.Name, err)
	}
	if err != nil {
		t.Fatalf("%s: %v", tc.Name, err)
	}
	gotTSO := stateKeys(tc, rep.Results, false)
	gotSC := stateKeys(tc, rep.Results, true)
	wantAxTSO := memmodelKeys(tc, memmodel.AxiomaticAllowedSet(tc, memmodel.TSO))
	wantAxSC := memmodelKeys(tc, memmodel.AxiomaticAllowedSet(tc, memmodel.SC))
	wantOpTSO := memmodelKeys(tc, memmodel.OperationalAllowedSet(tc, memmodel.TSO))
	diffKeys(t, tc.Name, "TSO vs hb-axiomatic", gotTSO, wantAxTSO)
	diffKeys(t, tc.Name, "SC vs hb-axiomatic", gotSC, wantAxSC)
	diffKeys(t, tc.Name, "TSO vs operational", gotTSO, wantOpTSO)
}

func stateKeys(tc *litmus.Test, results []Result, scOnly bool) map[string]bool {
	out := map[string]bool{}
	for _, r := range results {
		if scOnly && !r.SC {
			continue
		}
		out[stateKey(tc, r.Regs, r.Mem)] = true
	}
	return out
}

func memmodelKeys(tc *litmus.Test, results []memmodel.AxiomaticResult) map[string]bool {
	out := map[string]bool{}
	for _, r := range results {
		out[stateKey(tc, r.Regs, r.Mem)] = true
	}
	return out
}

func diffKeys(t *testing.T, name, what string, got, want map[string]bool) {
	t.Helper()
	for k := range got {
		if !want[k] {
			t.Errorf("%s: %s: axiom allows state %q the oracle forbids", name, what, k)
		}
	}
	for k := range want {
		if !got[k] {
			t.Errorf("%s: %s: axiom misses state %q the oracle allows", name, what, k)
		}
	}
}

func TestClassifyOutcomeSpace(t *testing.T) {
	sb, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Outcomes) != 4 {
		t.Fatalf("sb outcome space has %d entries, want 4", len(rep.Outcomes))
	}
	// Exactly one TSOOnly outcome (0,0); the other three are SC-allowed.
	var tsoOnly, scAllowed int
	for _, oc := range rep.Outcomes {
		switch oc.Class {
		case TSOOnly:
			tsoOnly++
		case SCAllowed:
			scAllowed++
		case Forbidden:
			t.Errorf("sb outcome %v classified forbidden", oc.Outcome)
		}
	}
	if tsoOnly != 1 || scAllowed != 3 {
		t.Errorf("sb: got %d tso-only and %d sc-allowed outcomes, want 1 and 3", tsoOnly, scAllowed)
	}
}

func TestUnsatisfiableTarget(t *testing.T) {
	sb, _ := litmus.SuiteTest("sb")
	tc := sb.Clone()
	tc.Name = "sb-unsat"
	tc.Target = litmus.Outcome{Conds: []litmus.Cond{{Thread: 0, Reg: 0, Value: 7}}}
	rep, err := Analyze(tc)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Target.Unsatisfiable {
		t.Error("target value outside the store-value domain not reported unsatisfiable")
	}
	if rep.Target.Class != Forbidden {
		t.Errorf("unsatisfiable target classified %v, want forbidden", rep.Target.Class)
	}
}

func TestVacuousTarget(t *testing.T) {
	tc := &litmus.Test{
		Name: "vacuous",
		Threads: []litmus.Thread{
			{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Load(0, "x")}},
		},
		Target: litmus.Outcome{Conds: []litmus.Cond{{Thread: 0, Reg: 0, Value: 1}}},
	}
	rep, err := Analyze(tc)
	if err != nil {
		t.Fatal(err)
	}
	// A single-thread load after a same-location store must observe it
	// under any model with coherence: the target always holds.
	if !rep.Target.Vacuous {
		t.Error("always-true target not reported vacuous")
	}
	if rep.Target.Class != SCAllowed {
		t.Errorf("vacuous target classified %v, want sc-allowed", rep.Target.Class)
	}
}

func TestCutoffError(t *testing.T) {
	big := &litmus.Test{Name: "big"}
	for ti := 0; ti < 3; ti++ {
		var ins []litmus.Instr
		for i := 0; i < 3; i++ {
			ins = append(ins, litmus.Store(litmus.Loc(fmt.Sprintf("x%d", ti)), int64(3*ti+i+1)))
		}
		big.Threads = append(big.Threads, litmus.Thread{Instrs: ins})
	}
	big.Target = litmus.Outcome{Conds: []litmus.Cond{{Loc: "x0", Value: 1}}}
	_, err := Analyze(big) // 9 events > default 8
	var tle *TooLargeError
	if !errors.As(err, &tle) {
		t.Fatalf("got %v, want *TooLargeError", err)
	}
	if tle.Events != 9 {
		t.Errorf("TooLargeError.Events = %d, want 9", tle.Events)
	}
	if !strings.Contains(err.Error(), "refusing") {
		t.Errorf("error %q does not state the refusal", err)
	}
	// Raising the cutoff makes the same test analyzable.
	if _, err := AnalyzeWithLimits(big, Limits{MaxThreads: 4, MaxEvents: 9}); err != nil {
		t.Errorf("AnalyzeWithLimits over raised cutoff: %v", err)
	}
}

func TestWitnessFormat(t *testing.T) {
	sb, _ := litmus.SuiteTest("sb")
	rep, err := Analyze(sb)
	if err != nil {
		t.Fatal(err)
	}
	w := rep.Target.Witness
	if w == nil {
		t.Fatal("sb target has no witness")
	}
	if !sb.Target.HoldsFull(w.Regs, w.Mem) {
		t.Fatalf("witness final state does not satisfy the target:\n%s", w.Format())
	}
	out := w.Format()
	for _, want := range []string{"rf:", "co:", "final:", "reads"} {
		if !strings.Contains(out, want) {
			t.Errorf("witness rendering missing %q:\n%s", want, out)
		}
	}
}

// TestDeterministic: two analyses of the same test produce identical
// reports, including result order and witnesses — required for stable CI
// output and reproducible lint reports.
func TestDeterministic(t *testing.T) {
	for _, e := range litmus.Suite()[:6] {
		a, err := Analyze(e.Test)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Analyze(e.Test)
		if err != nil {
			t.Fatal(err)
		}
		if fa, fb := reportFingerprint(a), reportFingerprint(b); fa != fb {
			t.Errorf("%s: analysis not deterministic:\n%s\nvs\n%s", e.Test.Name, fa, fb)
		}
	}
}

// reportFingerprint renders everything observable about a report —
// result order, flags, witnesses, outcome classes, counters — without
// pointer identities.
func reportFingerprint(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "exec=%d consistent=%d\n", r.Executions, r.Consistent)
	for _, res := range r.Results {
		fmt.Fprintf(&b, "state %s sc=%v\n%s", stateKey(r.Test, res.Regs, res.Mem), res.SC, res.WitnessTSO.Format())
		if res.WitnessSC != nil {
			b.WriteString(res.WitnessSC.Format())
		}
	}
	for _, oc := range r.Outcomes {
		fmt.Fprintf(&b, "outcome %s: %v\n", oc.Outcome.Key(), oc.Class)
	}
	fmt.Fprintf(&b, "target %v unsat=%v vacuous=%v\n", r.Target.Class, r.Target.Unsatisfiable, r.Target.Vacuous)
	if r.Target.Witness != nil {
		b.WriteString(r.Target.Witness.Format())
	}
	return b.String()
}

func TestRejectsInvalidTest(t *testing.T) {
	tc := &litmus.Test{Name: "bad", Threads: []litmus.Thread{{Instrs: []litmus.Instr{litmus.Store("x", 0)}}}}
	if _, err := Analyze(tc); err == nil {
		t.Error("Analyze accepted a test that fails validation")
	}
}
