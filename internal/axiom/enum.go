package axiom

import (
	"math/bits"

	"perple/internal/litmus"
)

// event is one memory event: a dynamic load or store. Fences are not
// events — their effect is folded into the ppo mask (a fence between a
// store and a later load of the same thread restores the dropped
// store→load edge), which is sound because a direct po edge subsumes any
// fence-mediated path. Event 0 is the init pseudo-store writing every
// location's initial value.
type event struct {
	thread int // -1 for init
	index  int // instruction index within the thread
	kind   litmus.OpKind
	loc    litmus.Loc
	value  int64 // store immediate
	reg    int   // load destination register
}

// wsPerm is one memoized coherence order for a location: the stores in
// order, the immediate-successor table for from-read edges, and the
// endpoints. Only permutations consistent with same-thread program order
// are materialized (co must extend po|loc, or coherence fails trivially).
type wsPerm struct {
	order []int
	succ  []int // succ[eventID] = immediate co-successor, -1 if none/absent
	first int   // init's co-successor
	last  int   // final store; its value is the location's final memory
}

// analysis holds everything memoized once per test: the event set, the
// static relation bitmasks, the pruned reads-from candidate lists, the
// po-consistent coherence permutations with their fr tables, and all
// scratch buffers the per-candidate checks reuse. Events are uint64 bit
// positions throughout (MaxEvents+1 ≤ 64 always holds).
type analysis struct {
	t   *litmus.Test
	lim Limits

	events []event
	locs   []litmus.Loc

	po    []uint64 // full program order (transitive; masks make that free)
	ppo   []uint64 // TSO-preserved po: store→load dropped unless fenced
	poLoc []uint64 // po restricted to same-location pairs

	loads   []int         // load event ids in (thread, index) order
	loadPos []int         // event id -> index in loads, -1 otherwise
	stores  map[litmus.Loc][]int

	rfCands [][]int // rfCands[k]: candidate stores for loads[k] (0 = init)

	permLocs []litmus.Loc // locations with ≥1 store, sorted
	locIdx   map[litmus.Loc]int
	perms    [][]wsPerm // per permLocs entry

	lastLoad [][]int // lastLoad[thread][reg] = final load event id, or -1

	// Scratch reused across candidates (no per-candidate allocation on the
	// reject path).
	permChoice []*wsPerm
	dynAll     []uint64 // co ∪ rf ∪ fr
	dynExt     []uint64 // co ∪ rfe ∪ fr (external reads-from only)
	readVal    []int64  // value observed by loads[k]
	rem        []uint64
	color      []int8
	stack      []int
}

func newAnalysis(t *litmus.Test, lim Limits) (*analysis, error) {
	nEvents := 0
	for _, th := range t.Threads {
		for _, in := range th.Instrs {
			if in.Kind != litmus.OpFence {
				nEvents++
			}
		}
	}
	if len(t.Threads) > lim.MaxThreads || nEvents > lim.MaxEvents {
		return nil, &TooLargeError{Test: t.Name, Threads: len(t.Threads), Events: nEvents, Limits: lim}
	}

	a := &analysis{
		t:      t,
		lim:    lim,
		locs:   t.Locs(),
		stores: map[litmus.Loc][]int{},
		locIdx: map[litmus.Loc]int{},
	}
	a.events = append(a.events, event{thread: -1, index: -1})
	for ti, th := range t.Threads {
		for ii, in := range th.Instrs {
			if in.Kind == litmus.OpFence {
				continue
			}
			id := len(a.events)
			a.events = append(a.events, event{
				thread: ti, index: ii, kind: in.Kind,
				loc: in.Loc, value: in.Value, reg: in.Reg,
			})
			if in.Kind == litmus.OpLoad {
				a.loads = append(a.loads, id)
			} else {
				a.stores[in.Loc] = append(a.stores[in.Loc], id)
			}
		}
	}
	n := len(a.events)

	a.loadPos = make([]int, n)
	for i := range a.loadPos {
		a.loadPos[i] = -1
	}
	for k, lid := range a.loads {
		a.loadPos[lid] = k
	}

	a.po = make([]uint64, n)
	a.ppo = make([]uint64, n)
	a.poLoc = make([]uint64, n)
	for i := 1; i < n; i++ {
		for j := 1; j < n; j++ {
			ei, ej := &a.events[i], &a.events[j]
			if ei.thread != ej.thread || ei.index >= ej.index {
				continue
			}
			a.po[i] |= 1 << j
			if ei.loc == ej.loc {
				a.poLoc[i] |= 1 << j
			}
			if ei.kind == litmus.OpStore && ej.kind == litmus.OpLoad &&
				!fenceBetween(t, ei.thread, ei.index, ej.index) {
				continue // the store-buffer relaxation
			}
			a.ppo[i] |= 1 << j
		}
	}

	a.buildRFCands()
	a.buildPerms()

	regs := t.Regs()
	a.lastLoad = make([][]int, len(t.Threads))
	for ti := range a.lastLoad {
		a.lastLoad[ti] = make([]int, regs[ti])
		for r := range a.lastLoad[ti] {
			a.lastLoad[ti][r] = -1
		}
	}
	for _, lid := range a.loads {
		le := &a.events[lid]
		a.lastLoad[le.thread][le.reg] = lid // loads come in po order
	}

	a.permChoice = make([]*wsPerm, len(a.permLocs))
	a.dynAll = make([]uint64, n)
	a.dynExt = make([]uint64, n)
	a.readVal = make([]int64, len(a.loads))
	a.rem = make([]uint64, n)
	a.color = make([]int8, n)
	a.stack = make([]int, 0, n)
	return a, nil
}

func fenceBetween(t *litmus.Test, thread, from, to int) bool {
	instrs := t.Threads[thread].Instrs
	for i := from + 1; i < to; i++ {
		if instrs[i].Kind == litmus.OpFence {
			return true
		}
	}
	return false
}

// buildRFCands prunes per-load reads-from candidates to those not
// trivially coherence-violating: a load never reads a same-thread
// po-later store, never reads init past a same-thread earlier store to
// the location, and never reads a same-thread store that a later
// same-thread store to the location overwrites before the load. The
// pruned choices are exactly those the coherence axiom would reject for
// every coherence order, so dropping them statically shrinks the
// enumeration without changing the consistent set.
func (a *analysis) buildRFCands() {
	a.rfCands = make([][]int, len(a.loads))
	for k, lid := range a.loads {
		le := &a.events[lid]
		poEarlierStore := false
		for _, sid := range a.stores[le.loc] {
			se := &a.events[sid]
			if se.thread == le.thread && se.index < le.index {
				poEarlierStore = true
			}
		}
		var cands []int
		if !poEarlierStore {
			cands = append(cands, 0)
		}
		for _, sid := range a.stores[le.loc] {
			se := &a.events[sid]
			if se.thread == le.thread {
				if se.index > le.index {
					continue
				}
				overwritten := false
				for _, s2 := range a.stores[le.loc] {
					e2 := &a.events[s2]
					if e2.thread == le.thread && e2.index > se.index && e2.index < le.index {
						overwritten = true
						break
					}
				}
				if overwritten {
					continue
				}
			}
			cands = append(cands, sid)
		}
		a.rfCands[k] = cands
	}
}

// buildPerms materializes, per location, every coherence order consistent
// with same-thread program order, with memoized successor tables.
func (a *analysis) buildPerms() {
	for _, loc := range a.locs {
		if len(a.stores[loc]) == 0 {
			continue
		}
		a.locIdx[loc] = len(a.permLocs)
		a.permLocs = append(a.permLocs, loc)
		a.perms = append(a.perms, a.permsOf(loc))
	}
}

func (a *analysis) permsOf(loc litmus.Loc) []wsPerm {
	ids := a.stores[loc] // (thread, index) order
	var out []wsPerm
	cur := make([]int, 0, len(ids))
	used := make([]bool, len(ids))
	var rec func()
	rec = func() {
		if len(cur) == len(ids) {
			out = append(out, a.newPerm(cur))
			return
		}
		for i, id := range ids {
			if used[i] {
				continue
			}
			// po-pruning: a store is placeable only once every same-thread
			// po-earlier store to this location is already placed.
			blocked := false
			for j := 0; j < i; j++ {
				if !used[j] && a.events[ids[j]].thread == a.events[id].thread {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			used[i] = true
			cur = append(cur, id)
			rec()
			cur = cur[:len(cur)-1]
			used[i] = false
		}
	}
	rec()
	return out
}

func (a *analysis) newPerm(order []int) wsPerm {
	p := wsPerm{
		order: append([]int(nil), order...),
		succ:  make([]int, len(a.events)),
		first: order[0],
		last:  order[len(order)-1],
	}
	for i := range p.succ {
		p.succ[i] = -1
	}
	for i := 0; i+1 < len(order); i++ {
		p.succ[order[i]] = order[i+1]
	}
	return p
}

// enumerate walks the full candidate space — an odometer over the rf
// choice of every load and the coherence order of every location — and
// feeds each candidate to check.
func (a *analysis) enumerate(rep *Report) {
	nd := len(a.loads) + len(a.permLocs)
	idx := make([]int, nd)
	sizes := make([]int, nd)
	for k := range a.loads {
		sizes[k] = len(a.rfCands[k])
		if sizes[k] == 0 {
			return // unreachable: init is always a fallback candidate
		}
	}
	for k := range a.permLocs {
		sizes[len(a.loads)+k] = len(a.perms[k])
	}
	for {
		a.check(rep, idx)
		d := nd - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < sizes[d] {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return
		}
	}
}

// check tests one candidate execution against the axioms:
//
//	coherence:  poLoc ∪ rf ∪ co ∪ fr acyclic   (required by both models)
//	x86-TSO:    ppo ∪ rfe ∪ co ∪ fr acyclic    (ghb; mfence is inside ppo)
//	SC:         po ∪ rf ∪ co ∪ fr acyclic
//
// SC's edge set contains TSO's (ppo ⊆ po, rfe ⊆ rf), so SC-consistency
// implies TSO-consistency and SC is only checked for TSO-consistent
// candidates. co is added as its chain (reachability-equivalent to the
// full total order) and each load contributes a single fr edge to the
// immediate co-successor of the store it reads — the co chain supplies
// the rest of fr transitively.
func (a *analysis) check(rep *Report, idx []int) {
	rep.Executions++
	t := a.t
	dynAll, dynExt := a.dynAll, a.dynExt
	for i := range dynAll {
		dynAll[i], dynExt[i] = 0, 0
	}

	// Coherence orders: co chain edges (external to every thread → both
	// edge sets).
	for k := range a.permLocs {
		p := &a.perms[k][idx[len(a.loads)+k]]
		a.permChoice[k] = p
		dynAll[0] |= 1 << p.first
		dynExt[0] |= 1 << p.first
		for j := 0; j+1 < len(p.order); j++ {
			dynAll[p.order[j]] |= 1 << p.order[j+1]
			dynExt[p.order[j]] |= 1 << p.order[j+1]
		}
	}

	// Reads-from and from-read edges.
	for k, lid := range a.loads {
		sid := a.rfCands[k][idx[k]]
		le := &a.events[lid]
		dynAll[sid] |= 1 << lid
		if a.events[sid].thread != le.thread {
			// rfe: only an external read proves the store left the buffer.
			// An internal rf is store-to-load forwarding and stays out of ghb.
			dynExt[sid] |= 1 << lid
		}
		if sid == 0 {
			a.readVal[k] = t.Init[le.loc]
		} else {
			a.readVal[k] = a.events[sid].value
		}
		// fr: the load is before every store co-after the one it read;
		// the edge to the immediate successor reaches the rest via co.
		next := -1
		if pi, ok := a.locIdx[le.loc]; ok {
			if sid == 0 {
				next = a.permChoice[pi].first
			} else {
				next = a.permChoice[pi].succ[sid]
			}
		}
		if next > 0 {
			dynAll[lid] |= 1 << next
			dynExt[lid] |= 1 << next
		}
	}

	if !a.acyclic(a.poLoc, dynAll) {
		return // coherence violation
	}
	rep.Consistent++
	if !a.acyclic(a.ppo, dynExt) {
		return // TSO-forbidden (hence SC-forbidden)
	}
	sc := a.acyclic(a.po, dynAll)

	// Final state: each register holds its last load's observed value;
	// each location holds its last coherence-order store.
	regs := make([][]int64, len(t.Threads))
	for ti := range regs {
		regs[ti] = make([]int64, len(a.lastLoad[ti]))
		for r, lid := range a.lastLoad[ti] {
			if lid >= 0 {
				regs[ti][r] = a.readVal[a.loadPos[lid]]
			}
		}
	}
	mem := make(map[litmus.Loc]int64, len(a.locs))
	for _, loc := range a.locs {
		mem[loc] = t.Init[loc]
	}
	for k, loc := range a.permLocs {
		mem[loc] = a.events[a.permChoice[k].last].value
	}

	key := stateKey(t, regs, mem)
	if i, ok := rep.keys[key]; ok {
		if sc && !rep.Results[i].SC {
			rep.Results[i].SC = true
			rep.Results[i].WitnessSC = a.witness(idx, regs, mem)
		}
		return
	}
	w := a.witness(idx, regs, mem)
	res := Result{Regs: regs, Mem: mem, SC: sc, WitnessTSO: w}
	if sc {
		res.WitnessSC = w
	}
	rep.keys[key] = len(rep.Results)
	rep.Results = append(rep.Results, res)
}

// acyclic reports whether base ∪ dyn is a DAG, via iterative DFS over the
// bitmask adjacency with reused buffers.
func (a *analysis) acyclic(base, dyn []uint64) bool {
	n := len(a.events)
	color := a.color
	for i := 0; i < n; i++ {
		color[i] = 0
	}
	rem := a.rem
	stack := a.stack[:0]
	for root := 0; root < n; root++ {
		if color[root] != 0 {
			continue
		}
		color[root] = 1
		rem[root] = base[root] | dyn[root]
		stack = append(stack, root)
		for len(stack) > 0 {
			node := stack[len(stack)-1]
			if rem[node] != 0 {
				to := bits.TrailingZeros64(rem[node])
				rem[node] &= rem[node] - 1
				switch color[to] {
				case 1:
					return false
				case 0:
					color[to] = 1
					rem[to] = base[to] | dyn[to]
					stack = append(stack, to)
				}
				continue
			}
			color[node] = 2
			stack = stack[:len(stack)-1]
		}
	}
	return true
}
