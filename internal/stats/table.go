package stats

import (
	"fmt"
	"strings"
)

// Table renders column-aligned plain-text tables for the experiment
// drivers' output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable starts a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with a separator line under the header.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)))
	b.WriteString("\n")
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// FormatFloat renders a float compactly: large values without decimals,
// small ones with enough precision to be meaningful.
func FormatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 10000 || v <= -10000:
		return fmt.Sprintf("%.3g", v)
	case v >= 100 || v <= -100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1 || v <= -1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}
