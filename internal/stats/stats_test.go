package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestGeoMean(t *testing.T) {
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %g", got)
	}
	if got := GeoMean([]float64{4}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean([4]) = %g", got)
	}
	if got := GeoMean([]float64{1, 4}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean([1,4]) = %g, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean([2,2,2]) = %g", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("GeoMean accepted non-positive value")
		}
	}()
	GeoMean([]float64{1, 0})
}

func TestGeoMeanBetweenMinMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		min, max := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			xs[i] = float64(r)/100 + 0.01
			min = math.Min(min, xs[i])
			max = math.Max(max, xs[i])
		}
		g := GeoMean(xs)
		return g >= min-1e-9 && g <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanAndRate(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3}); math.Abs(got-2) > 1e-12 {
		t.Errorf("Mean = %g", got)
	}
	if got := Rate(10, 5); got != 2 {
		t.Errorf("Rate = %g", got)
	}
	if got := Rate(10, 0); got != 0 {
		t.Errorf("Rate with zero time = %g", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []int64{5, 1, 3, 2, 4}
	if got := Percentile(xs, 50); got != 3 {
		t.Errorf("P50 = %d, want 3", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Errorf("P100 = %d", got)
	}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %d", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("P50 of empty = %d", got)
	}
	// The input must not be mutated.
	if xs[0] != 5 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(-10, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]int64{-10, -6, 0, 3, 10, -11, 11})
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("under=%d over=%d, want 1 1", h.Underflow, h.Overflow)
	}
	if h.Total != 7 {
		t.Errorf("total = %d", h.Total)
	}
	// Bins: [-10,-6], [-5,-1], [0,4], [5,9], [10,10].
	want := []int64{2, 0, 2, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	pdf := h.PDF()
	sum := 0.0
	for i, d := range pdf {
		sum += d * float64(h.BinWidth)
		if d < 0 {
			t.Errorf("negative density at bin %d", i)
		}
	}
	if math.Abs(sum-5.0/7.0) > 1e-9 {
		t.Errorf("PDF integrates to %g, want 5/7 (in-range fraction)", sum)
	}
	if got := h.BinCenter(0); got != -8 {
		t.Errorf("bin 0 center = %g, want -8", got)
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Errorf("render has no bars:\n%s", out)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bin width accepted")
	}
	if _, err := NewHistogram(5, 4, 1); err == nil {
		t.Error("empty range accepted")
	}
}

func TestHistogramEmptyRender(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Render(10); got != "(empty histogram)\n" {
		t.Errorf("empty render = %q", got)
	}
	if pdf := h.PDF(); len(pdf) == 0 || pdf[0] != 0 {
		t.Error("empty PDF wrong")
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("test", "count", "rate")
	tb.AddRow("sb", 42, 3.14159)
	tb.AddRow("mp", 0, 123456.0)
	out := tb.String()
	if !strings.Contains(out, "test") || !strings.Contains(out, "sb") {
		t.Errorf("table missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "3.14") {
		t.Errorf("float formatting missing:\n%s", out)
	}
	if !strings.Contains(out, "1.23e+05") {
		t.Errorf("large float formatting missing:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		2.5:     "2.50",
		0.125:   "0.125",
		150:     "150",
		1234567: "1.23e+06",
	}
	for v, want := range cases {
		if got := FormatFloat(v); got != want {
			t.Errorf("FormatFloat(%g) = %q, want %q", v, got, want)
		}
	}
}
