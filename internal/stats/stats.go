// Package stats provides the statistics and reporting utilities the
// evaluation uses: geometric means over speedup ratios, detection rates,
// histograms with probability-density normalization for the thread-skew
// figure, and plain-text table rendering for the experiment drivers.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// GeoMean returns the geometric mean of strictly positive values; it
// returns 0 for an empty slice and panics on non-positive entries (a
// speedup ratio of zero indicates a bug upstream).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			panic(fmt.Sprintf("stats: GeoMean of non-positive value %g", x))
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using
// nearest-rank on a copy of the data; 0 for empty input.
func Percentile(xs []int64, p float64) int64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Rate is occurrences per unit time; it guards against zero durations.
func Rate(count int64, ticks int64) float64 {
	if ticks <= 0 {
		return 0
	}
	return float64(count) / float64(ticks)
}

// Histogram is a fixed-width binned histogram over int64 samples.
type Histogram struct {
	Min, Max  int64
	BinWidth  int64
	Counts    []int64
	Total     int64
	Underflow int64
	Overflow  int64
}

// NewHistogram builds a histogram with the given inclusive range and bin
// width (the last bin may be short).
func NewHistogram(min, max, binWidth int64) (*Histogram, error) {
	if binWidth <= 0 {
		return nil, fmt.Errorf("stats: bin width must be positive, got %d", binWidth)
	}
	if max < min {
		return nil, fmt.Errorf("stats: histogram range [%d,%d] is empty", min, max)
	}
	// The range is inclusive on both ends, so the bin holding max always
	// exists (it may be short).
	bins := (max-min)/binWidth + 1
	return &Histogram{Min: min, Max: max, BinWidth: binWidth, Counts: make([]int64, bins)}, nil
}

// Add records one sample.
func (h *Histogram) Add(v int64) {
	h.Total++
	switch {
	case v < h.Min:
		h.Underflow++
	case v > h.Max:
		h.Overflow++
	default:
		h.Counts[(v-h.Min)/h.BinWidth]++
	}
}

// AddAll records every sample.
func (h *Histogram) AddAll(vs []int64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Merge folds another histogram with identical binning into h, summing
// per-bin counts, totals, and the out-of-range tallies. Merging is
// commutative and associative, so per-shard histograms aggregate in any
// order.
func (h *Histogram) Merge(o *Histogram) error {
	if h.Min != o.Min || h.Max != o.Max || h.BinWidth != o.BinWidth {
		return fmt.Errorf("stats: cannot merge histogram [%d,%d]/%d into [%d,%d]/%d",
			o.Min, o.Max, o.BinWidth, h.Min, h.Max, h.BinWidth)
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Total += o.Total
	h.Underflow += o.Underflow
	h.Overflow += o.Overflow
	return nil
}

// PDF returns the probability density of each bin: count / (total ×
// binWidth), so the densities integrate to the in-range fraction.
func (h *Histogram) PDF() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	denom := float64(h.Total) * float64(h.BinWidth)
	for i, c := range h.Counts {
		out[i] = float64(c) / denom
	}
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	lo := h.Min + int64(i)*h.BinWidth
	hi := lo + h.BinWidth - 1
	if hi > h.Max {
		hi = h.Max
	}
	return (float64(lo) + float64(hi)) / 2
}

// Render draws the histogram as ASCII rows of at most width columns,
// skipping empty leading/trailing bins.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	first, last := -1, -1
	var maxCount int64
	for i, c := range h.Counts {
		if c > 0 {
			if first < 0 {
				first = i
			}
			last = i
			if c > maxCount {
				maxCount = c
			}
		}
	}
	if first < 0 {
		return "(empty histogram)\n"
	}
	out := ""
	for i := first; i <= last; i++ {
		bar := 0
		if maxCount > 0 {
			bar = int(h.Counts[i] * int64(width) / maxCount)
		}
		out += fmt.Sprintf("%10.0f | %-*s %d\n", h.BinCenter(i), width, repeat('#', bar), h.Counts[i])
	}
	return out
}

func repeat(ch byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}
