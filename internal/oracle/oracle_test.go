package oracle

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"perple/internal/axiom"
	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/sim"
)

// reportDivergences fails the test with the full triage rendering for
// each divergence — the axiomatic witness/state table next to the
// simulator trace.
func reportDivergences(t *testing.T, divs []Divergence, rep *axiom.Report, iters int, mode sim.Mode, cfg sim.Config) {
	t.Helper()
	for i := range divs {
		t.Errorf("%s", Explain(&divs[i], rep, iters, mode, cfg))
	}
}

// TestSuiteFilesDifferential is the curated-suite differential oracle: it
// parses every .litmus file in testdata/suite (exercising the parser
// path, not the in-code tables), classifies it axiomatically, and checks
// that the simulator never produces a TSO-forbidden state and reaches
// every SC-allowed state with drains disabled.
func TestSuiteFilesDifferential(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "suite", "*.litmus"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no suite files found: %v", err)
	}
	cfg := sim.DefaultConfig()
	const iters = 300
	const scBudget = 3000
	for _, path := range files {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		tc, err := litmus.Parse(string(src))
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		rep, err := axiom.Analyze(tc)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		divs, err := CheckTSO(tc, rep, iters, sim.ModeTimebase, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		reportDivergences(t, divs, rep, iters, sim.ModeTimebase, cfg)
		scDivs, err := CheckSCCoverage(tc, rep, scBudget, sim.ModeUser, SCCoverageConfig(cfg))
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		reportDivergences(t, scDivs, rep, iters, sim.ModeTimebase, cfg)
	}
}

// TestGeneratedCorpusDifferential is the fixed-seed 200-test diy corpus
// differential (satellite of ISSUE 4): axiom-vs-simulator agreement over
// randomly generated tests sized to the exact-enumeration cutoff. The
// seed is fixed, the simulator is deterministic given its seed, and the
// axiomatic enumeration is exhaustive, so a pass is stable across runs.
func TestGeneratedCorpusDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	cfg := litmus.GenConfig{
		MinThreads: 2,
		MaxThreads: 4,
		MaxInstrs:  2,
		Locs:       []litmus.Loc{"x", "y", "z"},
		FenceProb:  0.2,
	}
	simCfg := sim.DefaultConfig()
	iters := 120
	if testing.Short() {
		iters = 40
	}
	for i := 0; i < 200; i++ {
		tc := litmus.Generate(rng, cfg, fmt.Sprintf("oracle%03d", i))
		rep, err := axiom.Analyze(tc)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		divs, err := CheckTSO(tc, rep, iters, sim.ModeTimebase, simCfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		reportDivergences(t, divs, rep, iters, sim.ModeTimebase, simCfg)
	}
}

// TestCycleCorpusDifferential covers diy cycle tests (every edge kind)
// with both oracle directions.
func TestCycleCorpusDifferential(t *testing.T) {
	cycles := [][]litmus.EdgeSpec{
		{litmus.PodWR, litmus.Fre, litmus.PodWR, litmus.Fre},
		{litmus.PodWW, litmus.Rfe, litmus.PodRR, litmus.Fre},
		{litmus.PodRW, litmus.Rfe, litmus.PodRW, litmus.Rfe},
		{litmus.Rfe, litmus.PodRW, litmus.Rfe, litmus.PodRR, litmus.Fre},
		{litmus.FencedWR, litmus.Fre, litmus.FencedWR, litmus.Fre},
		{litmus.Wse, litmus.PodWW, litmus.Wse, litmus.PodWW},
	}
	cfg := sim.DefaultConfig()
	const iters = 300
	for i, edges := range cycles {
		tc, err := litmus.FromCycle(fmt.Sprintf("odiy%02d", i), edges...)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		rep, err := axiom.Analyze(tc)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		divs, err := CheckTSO(tc, rep, iters, sim.ModeTimebase, cfg)
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		reportDivergences(t, divs, rep, iters, sim.ModeTimebase, cfg)
		scDivs, err := CheckSCCoverage(tc, rep, 3000, sim.ModeUser, SCCoverageConfig(cfg))
		if err != nil {
			t.Fatalf("%s: %v", tc.Name, err)
		}
		reportDivergences(t, scDivs, rep, iters, sim.ModeTimebase, cfg)
	}
}

// TestOracleDetectsPSO is the oracle's self-test: a machine configured as
// PSO (store-store reordering — a conformance violation for hardware
// claiming TSO) must trip the forbidden-state check on message passing,
// and the explanation must carry both the allowed-state table and a
// simulator trace.
func TestOracleDetectsPSO(t *testing.T) {
	tc, err := litmus.SuiteTest("mp")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := axiom.Analyze(tc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig()
	cfg.Relaxation = memmodel.PSO
	var divs []Divergence
	iters := 0
	for _, n := range []int{500, 2000, 8000} {
		iters = n
		divs, err = CheckTSO(tc, rep, n, sim.ModeTimebase, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(divs) > 0 {
			break
		}
	}
	if len(divs) == 0 {
		t.Fatal("PSO machine never produced a TSO-forbidden mp state; oracle cannot detect conformance bugs")
	}
	out := Explain(&divs[0], rep, iters, sim.ModeTimebase, cfg)
	for _, want := range []string{"DIVERGENCE", "forbidden", "allowed states", "trace"} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

// TestSCUnreachableReporting: a zero-iteration budget leaves every
// SC-allowed state uncovered; the divergences must carry SC witnesses and
// render them.
func TestSCUnreachableReporting(t *testing.T) {
	tc, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := axiom.Analyze(tc)
	if err != nil {
		t.Fatal(err)
	}
	divs, err := CheckSCCoverage(tc, rep, 0, sim.ModeTimebase, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(divs) != len(rep.SCResults()) {
		t.Fatalf("got %d sc-unreachable divergences, want %d", len(divs), len(rep.SCResults()))
	}
	for i := range divs {
		if divs[i].Witness == nil {
			t.Fatal("sc-unreachable divergence without witness")
		}
	}
	out := Explain(&divs[0], rep, 10, sim.ModeTimebase, sim.DefaultConfig())
	for _, want := range []string{"unreachable with drains disabled", "witness", "rf:"} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}
