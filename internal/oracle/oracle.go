// Package oracle is the differential layer between the static axiomatic
// checker (internal/axiom) and the operational simulator (internal/sim).
// It asserts, for a litmus test, the two directions of agreement the
// axiomatic model promises:
//
//   - soundness: every final state the simulator observes is axiomatically
//     TSO-allowed — equivalently, no Forbidden outcome ever appears;
//   - SC coverage: with store-buffer drains disabled the machine behaves
//     sequentially consistent enough that every SC-allowed state is
//     reachable.
//
// A divergence is a simulator bug, an axiom bug, or a real model
// disagreement; Divergence.Explain prints the axiomatic evidence (the
// allowed-state table and witness executions) next to the simulator's
// machine-event trace so the disagreement can be triaged from the test
// log alone.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"perple/internal/axiom"
	"perple/internal/litmus"
	"perple/internal/sim"
)

// Divergence is one axiom-vs-simulator disagreement.
type Divergence struct {
	Test *litmus.Test
	// Kind is "forbidden-state" (the simulator produced a state outside
	// the TSO-allowed set) or "sc-unreachable" (an SC-allowed state never
	// appeared with drains disabled).
	Kind string
	// Iter is the iteration that produced a forbidden state; -1 for
	// sc-unreachable.
	Iter int
	Regs [][]int64
	Mem  map[litmus.Loc]int64
	// Witness is the axiomatic witness of the missing state for
	// sc-unreachable divergences; nil for forbidden-state ones (no witness
	// exists — that is the violation).
	Witness *axiom.Witness
}

func (d *Divergence) String() string {
	state := formatState(d.Regs, d.Mem)
	if d.Kind == "forbidden-state" {
		return fmt.Sprintf("%s: iteration %d produced TSO-forbidden state %s", d.Test.Name, d.Iter, state)
	}
	return fmt.Sprintf("%s: SC-allowed state %s unreachable with drains disabled", d.Test.Name, state)
}

// CheckTSO runs the simulator and verifies every observed per-iteration
// final state against the axiomatic TSO-allowed set. iters and cfg are
// the caller's budget; any mode works.
func CheckTSO(tc *litmus.Test, rep *axiom.Report, iters int, mode sim.Mode, cfg sim.Config) ([]Divergence, error) {
	res, err := sim.RunSynced(tc, iters, mode, cfg)
	if err != nil {
		return nil, err
	}
	return DiffStates(tc, rep, res), nil
}

// DiffStates checks each iteration of an existing run against the
// TSO-allowed set.
func DiffStates(tc *litmus.Test, rep *axiom.Report, res *sim.SyncedResult) []Divergence {
	var divs []Divergence
	var scratch [][]int64
	for n := 0; n < res.N; n++ {
		scratch = res.RegisterFile(n, scratch)
		mem := res.MemAt(n)
		if rep.TSOAllows(scratch, mem) {
			continue
		}
		regs := make([][]int64, len(scratch))
		for i := range scratch {
			regs[i] = append([]int64(nil), scratch[i]...)
		}
		divs = append(divs, Divergence{
			Test: tc, Kind: "forbidden-state", Iter: n, Regs: regs, Mem: mem,
		})
	}
	return divs
}

// SCCoverageConfig derives a schedule-diversifying variant of a config
// for the SC-coverage direction: frequent short preemptions and strong
// per-thread speed jitter so rare interleavings — including fully
// serialized thread orders, which near-simultaneous barrier releases
// almost never produce — appear within a small iteration budget. The
// soundness direction must NOT use it: it checks what the calibrated
// machine actually does.
func SCCoverageConfig(base sim.Config) sim.Config {
	base.PreemptProb = 0.08
	base.PreemptMin = 5
	base.PreemptMax = 150
	base.SpeedJitterPct = 70
	base.LaunchSpread = 60
	// Stretch instruction costs to the scale of the barrier release
	// spread: with ~2-tick instructions and a ~160-tick spread, a load
	// almost never lands between two specific remote stores, so joint
	// states needing several such straddles at once are unreachable in a
	// CI-sized budget. Wide, highly variable costs make every relative
	// ordering of any two instructions roughly equiprobable.
	base.InstrCostMin = 15
	base.InstrCostMax = 120
	return base
}

// CheckSCCoverage runs the simulator with drains disabled (DrainMin =
// DrainMax = 0: a store reaches memory the tick it executes, so the
// machine is sequentially consistent up to forwarding, which reads the
// same value either way) and reports every SC-allowed state that never
// appeared within the iteration budget. Runs are chunked so well-behaved
// tests stop as soon as coverage is complete; with a fixed seed the
// outcome is deterministic.
func CheckSCCoverage(tc *litmus.Test, rep *axiom.Report, maxIters int, mode sim.Mode, cfg sim.Config) ([]Divergence, error) {
	cfg.DrainMin, cfg.DrainMax = 0, 0
	want := rep.SCResults()
	missing := make(map[int]bool, len(want))
	for i := range want {
		missing[i] = true
	}
	const chunk = 200
	seed := cfg.Seed
	for done := 0; done < maxIters && len(missing) > 0; done += chunk {
		n := chunk
		if rem := maxIters - done; n > rem {
			n = rem
		}
		res, err := sim.RunSynced(tc, n, mode, cfg.WithSeed(seed+int64(done)))
		if err != nil {
			return nil, err
		}
		var scratch [][]int64
		for it := 0; it < res.N && len(missing) > 0; it++ {
			scratch = res.RegisterFile(it, scratch)
			mem := res.MemAt(it)
			for i := range missing {
				if statesEqual(&want[i], scratch, mem) {
					delete(missing, i)
				}
			}
		}
	}
	idxs := make([]int, 0, len(missing))
	for i := range missing {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var divs []Divergence
	for _, i := range idxs {
		divs = append(divs, Divergence{
			Test: tc, Kind: "sc-unreachable", Iter: -1,
			Regs: want[i].Regs, Mem: want[i].Mem, Witness: want[i].WitnessSC,
		})
	}
	return divs, nil
}

func statesEqual(want *axiom.Result, regs [][]int64, mem map[litmus.Loc]int64) bool {
	for ti := range want.Regs {
		for r := range want.Regs[ti] {
			if regs[ti][r] != want.Regs[ti][r] {
				return false
			}
		}
	}
	for loc, v := range want.Mem {
		if mem[loc] != v {
			return false
		}
	}
	return true
}

// Explain renders the full triage report for a divergence: the axiomatic
// evidence (allowed-state table, witnesses) next to a machine-event trace
// of the simulator reproducing the run with tracing enabled.
func Explain(d *Divergence, rep *axiom.Report, iters int, mode sim.Mode, cfg sim.Config) string {
	var b strings.Builder
	fmt.Fprintf(&b, "DIVERGENCE %s\n", d)
	b.WriteString("axiomatic TSO-allowed states:\n")
	for _, res := range rep.Results {
		tag := "tso"
		if res.SC {
			tag = "sc"
		}
		fmt.Fprintf(&b, "  [%s] %s\n", tag, formatState(res.Regs, res.Mem))
	}
	if d.Witness != nil {
		b.WriteString("axiomatic witness of the missing state:\n")
		b.WriteString(indent(d.Witness.Format()))
	}
	if d.Kind == "forbidden-state" {
		cfg.TraceSize = 256
		if res, err := sim.RunSynced(d.Test, iters, mode, cfg); err == nil && res.Trace != nil {
			b.WriteString("simulator trace (same seed, last events):\n")
			b.WriteString(indent(res.Trace.String()))
		}
	}
	return b.String()
}

func formatState(regs [][]int64, mem map[litmus.Loc]int64) string {
	var parts []string
	for ti, tr := range regs {
		for r, v := range tr {
			parts = append(parts, fmt.Sprintf("%d:r%d=%d", ti, r, v))
		}
	}
	locs := make([]litmus.Loc, 0, len(mem))
	for loc := range mem {
		locs = append(locs, loc)
	}
	sort.Slice(locs, func(i, j int) bool { return locs[i] < locs[j] })
	for _, loc := range locs {
		parts = append(parts, fmt.Sprintf("[%s]=%d", loc, mem[loc]))
	}
	return strings.Join(parts, " ")
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
