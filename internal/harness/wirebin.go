package harness

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

// Binary wire codec (PWB1): the high-throughput alternative to the
// gzip-JSON codec in wire.go. Result payloads are histogram-heavy —
// many short outcome-key strings with small counts — so the encoding is
// built around three ideas instead of general-purpose compression:
//
//   - varints for every integer (counts, ticks, lengths);
//   - front-coding for sorted histogram keys (each key stores only the
//     length of the prefix it shares with its predecessor plus the new
//     suffix), which removes the redundancy gzip used to find;
//   - string interning for values that repeat across a batched upload
//     (test names, tool names, presets, notes) — the first occurrence
//     ships the bytes, later ones a one-byte table reference.
//
// The whole body is wrapped in a CRC-framed envelope, so truncation or
// bit damage in flight is detected structurally instead of surfacing as
// a confusing decode error deep inside a payload:
//
//	magic "PWB1" | uvarint bodyLen | body | crc32c(body) (4 bytes LE)
//
// Framing and primitives live here; payload layouts belong to the types
// that own them (Litmus7Result below, campaign.CompleteRequest in
// internal/campaign). The codec has no streams and no compressor state,
// so encoding is a pure append loop and decoding a pure scan — both
// allocation-free apart from the decoded values themselves.

// WireContentTypeBinary labels PWB1-framed binary payloads in HTTP
// requests. Peers that do not recognize it keep speaking
// WireContentType; see the campaign dispatch protocol's negotiation
// rules.
const WireContentTypeBinary = "application/x-perple-wire"

// wireBinMagic opens every binary frame; the trailing byte is the
// format version.
var wireBinMagic = [4]byte{'P', 'W', 'B', '1'}

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrWireFrame reports a structurally damaged binary frame: bad magic,
// truncated body, or CRC mismatch. Transports treat it as bytes lost in
// flight (retryable), not as a protocol disagreement.
var ErrWireFrame = errors.New("harness: damaged binary wire frame")

// BinaryWirer is a payload that owns a PWB1 body layout.
type BinaryWirer interface {
	// AppendWireBody appends the payload's body encoding.
	AppendWireBody(w *WireWriter)
	// DecodeWireBody reads the payload back from a body scan.
	DecodeWireBody(r *WireReader) error
}

// EncodeWireBinary renders v as a CRC-framed PWB1 payload, appending to
// buf (which may be nil; pass a recycled slice to amortize
// allocations).
func EncodeWireBinary(buf []byte, v BinaryWirer) []byte {
	var w WireWriter
	w.buf = append(buf[:0], wireBinMagic[:]...)
	// Reserve a max-width varint for the body length, encode the body in
	// place, then write the real length and close the gap with one
	// memmove — single pass, no second buffer.
	lenPos := len(w.buf)
	var pad [binary.MaxVarintLen64]byte
	w.buf = append(w.buf, pad[:]...)
	bodyStart := len(w.buf)
	v.AppendWireBody(&w)
	bodyLen := len(w.buf) - bodyStart
	n := binary.PutUvarint(w.buf[lenPos:], uint64(bodyLen))
	copy(w.buf[lenPos+n:], w.buf[bodyStart:])
	w.buf = w.buf[:lenPos+n+bodyLen]
	crc := crc32.Checksum(w.buf[lenPos+n:], crcTable)
	return binary.LittleEndian.AppendUint32(w.buf, crc)
}

// DecodeWireBinary verifies data's frame (magic, length, CRC) and
// decodes the body into v. limit caps the total bytes the decoded value
// may allocate (strings, histogram keys, slices) — front-coding can
// expand far beyond the wire size, so the cap is enforced on decoded
// bytes, not input bytes; limit ≤ 0 selects DefaultWireLimit. Exceeding
// it returns an error wrapping ErrWireTooLarge.
func DecodeWireBinary(data []byte, v BinaryWirer, limit int) error {
	if limit <= 0 {
		limit = DefaultWireLimit
	}
	if len(data) < len(wireBinMagic)+1+4 || [4]byte(data[:4]) != wireBinMagic {
		return fmt.Errorf("%w: missing PWB1 magic", ErrWireFrame)
	}
	rest := data[4:]
	bodyLen, n := binary.Uvarint(rest)
	if n <= 0 || bodyLen > uint64(len(rest)-n) {
		return fmt.Errorf("%w: truncated (declared body %d bytes, %d available)", ErrWireFrame, bodyLen, max(0, len(rest)-n))
	}
	body := rest[n : n+int(bodyLen)]
	trailer := rest[n+int(bodyLen):]
	if len(trailer) < 4 {
		return fmt.Errorf("%w: truncated before CRC", ErrWireFrame)
	}
	if len(trailer) > 4 {
		return fmt.Errorf("harness: trailing data after wire payload")
	}
	want := binary.LittleEndian.Uint32(trailer)
	if got := crc32.Checksum(body, crcTable); got != want {
		return fmt.Errorf("%w: CRC mismatch (got %08x, want %08x)", ErrWireFrame, got, want)
	}
	r := WireReader{buf: body, budget: limit}
	if err := v.DecodeWireBody(&r); err != nil {
		return err
	}
	if r.pos != len(r.buf) {
		return fmt.Errorf("harness: %d unread bytes after wire payload body", len(r.buf)-r.pos)
	}
	return nil
}

// WireFrameLen reports the total byte length of the PWB1 frame at the
// start of data, when data begins with a complete frame (magic, length
// varint, declared body, CRC trailer) lying entirely within data. Only
// the framing envelope is validated — callers that need the CRC and
// body checked pass the frame slice to DecodeWireBinary. This is the
// scan primitive for files holding a sequence of frames (the dispatch
// WAL): walk frame to frame until it reports false, which marks the
// torn tail.
func WireFrameLen(data []byte) (int, bool) {
	if len(data) < len(wireBinMagic)+1+4 || [4]byte(data[:4]) != wireBinMagic {
		return 0, false
	}
	bodyLen, n := binary.Uvarint(data[len(wireBinMagic):])
	if n <= 0 || bodyLen > uint64(len(data)) {
		return 0, false
	}
	total := len(wireBinMagic) + n + int(bodyLen) + 4
	if total > len(data) {
		return 0, false
	}
	return total, true
}

// WireWriter builds a PWB1 body: an append-only byte slice plus the
// string-interning table shared by every PutString in one payload.
type WireWriter struct {
	buf    []byte
	intern map[string]int
}

// PutUvarint appends an unsigned varint.
func (w *WireWriter) PutUvarint(u uint64) { w.buf = binary.AppendUvarint(w.buf, u) }

// PutVarint appends a zigzag-encoded signed varint.
func (w *WireWriter) PutVarint(i int64) { w.buf = binary.AppendVarint(w.buf, i) }

// PutString appends s with interning: a repeated string costs one small
// table reference instead of its bytes.
func (w *WireWriter) PutString(s string) {
	if id, ok := w.intern[s]; ok {
		w.PutUvarint(uint64(id + 1))
		return
	}
	w.PutUvarint(0)
	w.PutUvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
	if w.intern == nil {
		w.intern = make(map[string]int)
	}
	w.intern[s] = len(w.intern)
}

// PutHistogram appends a string→count map with sorted, front-coded
// keys. Sorting makes the encoding deterministic (and is what makes
// front-coding effective); scratch carries the key slice across calls
// so batched payloads sort without re-allocating.
func (w *WireWriter) PutHistogram(hist map[string]int64, scratch *[]string) {
	keys := (*scratch)[:0]
	for k := range hist {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	*scratch = keys
	w.PutUvarint(uint64(len(keys)))
	prev := ""
	for _, k := range keys {
		p := commonPrefix(prev, k)
		w.PutUvarint(uint64(p))
		w.PutUvarint(uint64(len(k) - p))
		w.buf = append(w.buf, k[p:]...)
		w.PutVarint(hist[k])
		prev = k
	}
}

// PutInt64s appends a signed-varint sequence.
func (w *WireWriter) PutInt64s(xs []int64) {
	w.PutUvarint(uint64(len(xs)))
	for _, x := range xs {
		w.PutVarint(x)
	}
}

// PutStrings appends a string slice (interned per string).
func (w *WireWriter) PutStrings(xs []string) {
	w.PutUvarint(uint64(len(xs)))
	for _, s := range xs {
		w.PutString(s)
	}
}

func commonPrefix(a, b string) int {
	n := min(len(a), len(b))
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// WireReader scans a PWB1 body. Every length read from the wire is
// validated against the remaining input before use, and every byte the
// decoded value allocates is charged against the budget, so a hostile
// payload can neither over-read nor balloon memory.
type WireReader struct {
	buf    []byte
	pos    int
	intern []string
	budget int
}

var errWireShort = fmt.Errorf("%w: body over-read", ErrWireFrame)

// charge debits n decoded bytes from the budget.
func (r *WireReader) charge(n int) error {
	r.budget -= n
	if r.budget < 0 {
		return fmt.Errorf("%w: binary payload decodes past the cap", ErrWireTooLarge)
	}
	return nil
}

// Uvarint reads an unsigned varint.
func (r *WireReader) Uvarint() (uint64, error) {
	u, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errWireShort
	}
	r.pos += n
	return u, nil
}

// Varint reads a zigzag-encoded signed varint.
func (r *WireReader) Varint() (int64, error) {
	i, n := binary.Varint(r.buf[r.pos:])
	if n <= 0 {
		return 0, errWireShort
	}
	r.pos += n
	return i, nil
}

// Int reads an unsigned varint that must fit a non-negative int.
func (r *WireReader) Int() (int, error) {
	u, err := r.Uvarint()
	if err != nil {
		return 0, err
	}
	if u > uint64(len(r.buf)) {
		// Any in-band length beyond the body size is structurally bogus.
		return 0, fmt.Errorf("%w: length %d exceeds body", ErrWireFrame, u)
	}
	return int(u), nil
}

// String reads an interned string.
func (r *WireReader) String() (string, error) {
	ref, err := r.Uvarint()
	if err != nil {
		return "", err
	}
	if ref > 0 {
		if ref > uint64(len(r.intern)) {
			return "", fmt.Errorf("%w: intern reference %d out of range", ErrWireFrame, ref)
		}
		return r.intern[ref-1], nil
	}
	n, err := r.Int()
	if err != nil {
		return "", err
	}
	if r.pos+n > len(r.buf) {
		return "", errWireShort
	}
	if err := r.charge(n); err != nil {
		return "", err
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	r.intern = append(r.intern, s)
	return s, nil
}

// Histogram reads a front-coded map; an empty map decodes as nil, the
// same normalization encoding/json's omitempty applies, so both codecs
// round-trip to identical values.
func (r *WireReader) Histogram() (map[string]int64, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	hist := make(map[string]int64, n)
	prev := ""
	for i := 0; i < n; i++ {
		p, err := r.Int()
		if err != nil {
			return nil, err
		}
		if p > len(prev) {
			return nil, fmt.Errorf("%w: key prefix %d longer than predecessor", ErrWireFrame, p)
		}
		sn, err := r.Int()
		if err != nil {
			return nil, err
		}
		if r.pos+sn > len(r.buf) {
			return nil, errWireShort
		}
		if err := r.charge(p + sn); err != nil {
			return nil, err
		}
		key := prev[:p] + string(r.buf[r.pos:r.pos+sn])
		r.pos += sn
		count, err := r.Varint()
		if err != nil {
			return nil, err
		}
		hist[key] = count
		prev = key
	}
	return hist, nil
}

// Int64s reads a signed-varint sequence; empty decodes as nil.
func (r *WireReader) Int64s() ([]int64, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if err := r.charge(8 * n); err != nil {
		return nil, err
	}
	xs := make([]int64, n)
	for i := range xs {
		if xs[i], err = r.Varint(); err != nil {
			return nil, err
		}
	}
	return xs, nil
}

// Strings reads a string slice; empty decodes as nil.
func (r *WireReader) Strings() ([]string, error) {
	n, err := r.Int()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if err := r.charge(16 * n); err != nil {
		return nil, err
	}
	xs := make([]string, n)
	for i := range xs {
		if xs[i], err = r.String(); err != nil {
			return nil, err
		}
	}
	return xs, nil
}

// AppendWireBody encodes the result's mergeable tallies: iteration and
// target counts, ticks, the outcome histogram, and the
// trace-verification observer tallies. Test, Mode, Trace, and Wall are
// deliberately not wire fields — the corpus travels separately, traces
// are local diagnostics, and Wall/TraceVerifyNs are host-clock values
// accounted where the work ran (mirroring the JSON codec, which drops
// them the same way).
func (res *Litmus7Result) AppendWireBody(w *WireWriter) {
	w.PutVarint(int64(res.N))
	w.PutVarint(res.TargetCount)
	w.PutVarint(res.Ticks)
	w.PutInt64s(res.OutcomeCounts)
	var scratch []string
	w.PutHistogram(res.Histogram, &scratch)
	w.PutVarint(res.TracesVerified)
	w.PutVarint(res.TraceViolations)
	w.PutStrings(res.TraceReports)
}

// DecodeWireBody reads the tallies written by AppendWireBody.
func (res *Litmus7Result) DecodeWireBody(r *WireReader) error {
	n, err := r.Varint()
	if err != nil {
		return err
	}
	res.N = int(n)
	if res.TargetCount, err = r.Varint(); err != nil {
		return err
	}
	if res.Ticks, err = r.Varint(); err != nil {
		return err
	}
	if res.OutcomeCounts, err = r.Int64s(); err != nil {
		return err
	}
	if res.Histogram, err = r.Histogram(); err != nil {
		return err
	}
	if res.TracesVerified, err = r.Varint(); err != nil {
		return err
	}
	if res.TraceViolations, err = r.Varint(); err != nil {
		return err
	}
	res.TraceReports, err = r.Strings()
	return err
}
