package harness

import (
	"perple/internal/core"
)

// SkewSample is one thread-skew observation (Section VI-B5): while
// executing iteration N of thread Observer, the loaded value identified
// iteration M of thread Storer; Skew = N − M.
type SkewSample struct {
	Observer, Storer int
	N, M             int64
	Skew             int64
}

// MeasureSkew extracts every decodable skew observation from a perpetual
// run's buf arrays: each loaded value on some store's arithmetic sequence
// identifies the iteration that stored it, and the difference between the
// loading and storing iterations is the thread skew around that moment.
// Loads of the initial 0, and loads from the observer's own stores, yield
// no cross-thread sample and are skipped.
func MeasureSkew(pt *core.PerpetualTest, bs *core.BufSet) []SkewSample {
	var samples []SkewSample
	for _, t := range pt.LoadThreads {
		r := pt.Reads[t]
		for n := 0; n < bs.N; n++ {
			for slot := 0; slot < r; slot++ {
				v := bs.Bufs[t][r*n+slot]
				store, m, ok := core.DecodeValue(pt, pt.LoadLoc[t][slot], v)
				if !ok || store.Ref.Thread == t {
					continue
				}
				samples = append(samples, SkewSample{
					Observer: t,
					Storer:   store.Ref.Thread,
					N:        int64(n),
					M:        m,
					Skew:     int64(n) - m,
				})
			}
		}
	}
	return samples
}

// SkewValues projects the samples to their skew magnitudes, optionally
// restricted to one (observer, storer) pair; pass -1 to leave a side
// unrestricted.
func SkewValues(samples []SkewSample, observer, storer int) []int64 {
	var out []int64
	for _, s := range samples {
		if observer >= 0 && s.Observer != observer {
			continue
		}
		if storer >= 0 && s.Storer != storer {
			continue
		}
		out = append(out, s.Skew)
	}
	return out
}
