package harness

import (
	"context"
	"math/rand"
	"testing"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/sim"
)

// TestEndToEndRandomTests drives randomly generated litmus tests through
// the entire pipeline — classification, conversion, simulation, both
// counters, both harnesses — and checks the global soundness contract
// against the model checker:
//
//   - if the target is TSO-forbidden, no tool may ever report it
//     (litmus7 in any mode, PerpLE with either counter);
//   - the heuristic count never exceeds the exhaustive count;
//   - litmus7's histogram total always equals the iteration count.
//
// This is the fuzzing version of the suite-based soundness tests: the
// suite covers the 34 curated shapes, this covers whatever the generator
// produces.
func TestEndToEndRandomTests(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	cfg := litmus.GenConfig{
		MinThreads: 2, MaxThreads: 3, MaxInstrs: 3,
		Locs: []litmus.Loc{"x", "y"}, FenceProb: 0.15,
	}
	rounds := 25
	iters := 400
	if testing.Short() {
		rounds, iters = 6, 150
	}
	for i := 0; i < rounds; i++ {
		test := litmus.Generate(rng, cfg, "e2e")
		forbidden := !memmodel.AxiomaticAllowed(test, test.Target, memmodel.TSO)
		simCfg := sim.DefaultConfig().WithSeed(int64(i) + 1)

		// litmus7, two representative modes.
		for _, mode := range []sim.Mode{sim.ModeTimebase, sim.ModeNone} {
			lr, err := RunLitmus7(test, iters, mode, nil, simCfg)
			if err != nil {
				t.Fatalf("round %d: %v\n%s", i, err, litmus.Format(test))
			}
			var total int64
			for _, c := range lr.Histogram {
				total += c
			}
			if total != int64(iters) {
				t.Fatalf("round %d mode %v: histogram total %d != %d\n%s",
					i, mode, total, iters, litmus.Format(test))
			}
			if forbidden && lr.TargetCount > 0 {
				t.Fatalf("round %d mode %v: forbidden target observed %d times\n%s",
					i, mode, lr.TargetCount, litmus.Format(test))
			}
		}

		// PerpLE with both counters.
		pt, err := core.Convert(test)
		if err != nil {
			t.Fatalf("round %d: %v\n%s", i, err, litmus.Format(test))
		}
		counter, err := core.NewTargetCounter(pt)
		if err != nil {
			t.Fatalf("round %d: %v\n%s", i, err, litmus.Format(test))
		}
		pr, err := RunPerpLE(pt, counter, iters,
			PerpLEOptions{Exhaustive: true, Heuristic: true}, simCfg)
		if err != nil {
			t.Fatalf("round %d: %v\n%s", i, err, litmus.Format(test))
		}
		if forbidden && pr.Exhaustive.Counts[0] > 0 {
			t.Fatalf("round %d: exhaustive counted forbidden target %d times\n%s",
				i, pr.Exhaustive.Counts[0], litmus.Format(test))
		}
		if pr.Heuristic.Counts[0] > pr.Exhaustive.Counts[0] {
			t.Fatalf("round %d: heuristic %d > exhaustive %d\n%s",
				i, pr.Heuristic.Counts[0], pr.Exhaustive.Counts[0], litmus.Format(test))
		}

		// Parallel exhaustive counting agrees with sequential.
		pr2, err := RunPerpLE(pt, counter, iters, PerpLEOptions{KeepBufs: true}, simCfg)
		if err != nil {
			t.Fatal(err)
		}
		par, err := counter.CountExhaustiveParallel(context.Background(), pr2.Bufs, 4)
		if err != nil {
			t.Fatal(err)
		}
		if par.Counts[0] != pr.Exhaustive.Counts[0] {
			t.Fatalf("round %d: parallel count %d != sequential %d",
				i, par.Counts[0], pr.Exhaustive.Counts[0])
		}
	}
}

// TestEndToEndRandomTestsPSO repeats the soundness contract on the PSO
// machine against the PSO classification.
func TestEndToEndRandomTestsPSO(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	genCfg := litmus.GenConfig{
		MinThreads: 2, MaxThreads: 3, MaxInstrs: 3,
		Locs: []litmus.Loc{"x", "y"}, FenceProb: 0.2,
	}
	rounds := 15
	if testing.Short() {
		rounds = 4
	}
	simCfg := sim.DefaultConfig()
	simCfg.Relaxation = memmodel.PSO
	for i := 0; i < rounds; i++ {
		test := litmus.Generate(rng, genCfg, "e2epso")
		forbidden := !memmodel.AxiomaticAllowed(test, test.Target, memmodel.PSO)
		lr, err := RunLitmus7(test, 300, sim.ModeTimebase, nil, simCfg.WithSeed(int64(i)+9))
		if err != nil {
			t.Fatal(err)
		}
		if forbidden && lr.TargetCount > 0 {
			t.Fatalf("round %d: PSO-forbidden target observed %d times\n%s",
				i, lr.TargetCount, litmus.Format(test))
		}
		pt, err := core.Convert(test)
		if err != nil {
			t.Fatal(err)
		}
		counter, err := core.NewTargetCounter(pt)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := RunPerpLE(pt, counter, 300, PerpLEOptions{Exhaustive: true}, simCfg.WithSeed(int64(i)+9))
		if err != nil {
			t.Fatal(err)
		}
		if forbidden && pr.Exhaustive.Counts[0] > 0 {
			t.Fatalf("round %d: exhaustive counted PSO-forbidden target %d times\n%s",
				i, pr.Exhaustive.Counts[0], litmus.Format(test))
		}
	}
}
