package harness

import "perple/internal/sim"

// outcomeHist is the hot-path outcome histogram: an open-addressing
// interner that maps each observed register file (the raw []int64 words
// of one iteration) to a dense id, with counts accumulated in a flat
// []int64. The litmus7 tally loop previously rendered every iteration's
// register file into a heap-allocated string key for a map[string]int64;
// the interner touches no strings until materialize, and caches each
// id's rendered key across count resets, so a steady-state run performs
// no histogram allocation at all. String keys (and the public
// map[string]int64 wire format) are produced only at report/Merge/JSON
// boundaries, byte-identical to the old rendering.
type outcomeHist struct {
	regCounts []int
	stride    int      // words per outcome: sum of regCounts
	words     []int64  // interned outcomes, stride words per id
	counts    []int64  // occurrence count per id
	keys      []string // lazily rendered key cache per id
	table     []int32  // open addressing: 0 = empty, else id+1
	scratch   []int64  // per-iteration gather buffer
}

func newOutcomeHist(regCounts []int) *outcomeHist {
	stride := 0
	for _, rc := range regCounts {
		stride += rc
	}
	return &outcomeHist{
		regCounts: regCounts,
		stride:    stride,
		table:     make([]int32, 64),
		scratch:   make([]int64, 0, stride),
	}
}

// resetCounts zeroes every count but keeps the interned outcomes, the
// probe table and the key cache, so reruns on the same runner re-use
// ids (and their cached strings) instead of reinterning.
func (h *outcomeHist) resetCounts() {
	clear(h.counts)
}

// observeBlock tallies iterations [lo, hi) of a synced run result. Rows
// are hashed and compared in place — the scratch gather is paid only on
// the first sighting of an outcome (internRegs) — and because litmus
// histograms are heavily skewed toward a few outcomes, each iteration
// is first compared against the previous iteration's outcome, skipping
// the hash walk and table probe entirely when it repeats.
//
//perple:hotpath cover=harness-litmus7-run
func (h *outcomeHist) observeBlock(res *sim.SyncedResult, lo, hi int) {
	last := -1
	for iter := lo; iter < hi; iter++ {
		if last >= 0 && h.regsEqual(last, res, iter) {
			h.counts[last]++
			continue
		}
		last = h.observe(res, iter)
	}
}

// observe tallies iteration iter and returns its outcome id (for a
// fresh outcome, the id internRegs just assigned).
//
//perple:hotpath cover=harness-litmus7-run
func (h *outcomeHist) observe(res *sim.SyncedResult, iter int) int {
	hsh := uint64(0x9E3779B97F4A7C15)
	for t, rc := range h.regCounts {
		row := res.Regs[t][iter*rc : iter*rc+rc]
		for _, v := range row {
			hsh ^= uint64(v)
			hsh *= 0xFF51AFD7ED558CCD
			hsh ^= hsh >> 33
		}
	}
	mask := len(h.table) - 1
	i := int(hsh) & mask
	for {
		slot := h.table[i]
		if slot == 0 {
			h.internRegs(res, iter)
			return len(h.counts) - 1
		}
		if id := int(slot - 1); h.regsEqual(id, res, iter) {
			h.counts[id]++
			return id
		}
		i = (i + 1) & mask
	}
}

// regsEqual compares interned outcome id against iteration iter's
// register rows without gathering them.
//
//perple:hotpath cover=harness-litmus7-run
func (h *outcomeHist) regsEqual(id int, res *sim.SyncedResult, iter int) bool {
	iw := h.words[id*h.stride : (id+1)*h.stride]
	k := 0
	for t, rc := range h.regCounts {
		row := res.Regs[t][iter*rc : iter*rc+rc]
		for _, v := range row {
			if iw[k] != v {
				return false
			}
			k++
		}
	}
	return true
}

// internRegs registers a first-seen outcome: gather the rows and take
// the interning slow path (which re-probes; the extra probe is paid
// once per distinct outcome, not per iteration).
//
//perple:hotpath cover=harness-litmus7-run
func (h *outcomeHist) internRegs(res *sim.SyncedResult, iter int) {
	w := h.scratch[:0]
	for t, rc := range h.regCounts {
		w = append(w, res.Regs[t][iter*rc:(iter+1)*rc]...)
	}
	h.scratch = w
	h.addWords(w, 1)
}

// addWords adds delta occurrences of the outcome w (stride words).
//
//perple:hotpath cover=harness-litmus7-run
func (h *outcomeHist) addWords(w []int64, delta int64) {
	mask := len(h.table) - 1
	i := int(hashWords(w)) & mask
	for {
		slot := h.table[i]
		if slot == 0 {
			id := len(h.counts)
			h.words = append(h.words, w...)
			h.counts = append(h.counts, delta)
			h.keys = append(h.keys, "")
			h.table[i] = int32(id + 1)
			if len(h.counts)*4 >= len(h.table)*3 {
				h.rehash()
			}
			return
		}
		if id := int(slot - 1); h.wordsEqual(id, w) {
			h.counts[id] += delta
			return
		}
		i = (i + 1) & mask
	}
}

//perple:hotpath cover=harness-litmus7-run
func (h *outcomeHist) wordsEqual(id int, w []int64) bool {
	iw := h.words[id*h.stride : (id+1)*h.stride]
	for i, v := range iw {
		if v != w[i] {
			return false
		}
	}
	return true
}

func (h *outcomeHist) rehash() {
	old := h.table
	h.table = make([]int32, 2*len(old))
	mask := len(h.table) - 1
	for id := range h.counts {
		i := int(hashWords(h.words[id*h.stride:(id+1)*h.stride])) & mask
		for h.table[i] != 0 {
			i = (i + 1) & mask
		}
		h.table[i] = int32(id + 1)
	}
}

// row returns interned outcome id's words.
func (h *outcomeHist) row(id int) []int64 {
	return h.words[id*h.stride : (id+1)*h.stride]
}

// merge folds another interner's counts into h. Both must have been
// built over the same regCounts shape.
func (h *outcomeHist) merge(o *outcomeHist) {
	for id, c := range o.counts {
		if c != 0 {
			h.addWords(o.words[id*o.stride:(id+1)*o.stride], c)
		}
	}
}

// key renders (and caches) id's string key, byte-identical to the
// litmus7 histogram rendering: each register as decimal digits plus a
// trailing comma, a '|' after every register-bearing thread.
func (h *outcomeHist) key(id int) string {
	if h.keys[id] == "" {
		b := make([]byte, 0, 64)
		w := h.words[id*h.stride : (id+1)*h.stride]
		off := 0
		for _, rc := range h.regCounts {
			for r := 0; r < rc; r++ {
				b = appendKeyInt(b, w[off+r])
			}
			if rc > 0 {
				b = append(b, '|')
			}
			off += rc
		}
		h.keys[id] = string(b)
	}
	return h.keys[id]
}

// materializeInto renders the interned histogram into the public
// map[string]int64 wire format, summing into m (callers clear first
// when m is reused). Zero-count ids (left over from resetCounts) are
// skipped, matching a map that never saw them.
func (h *outcomeHist) materializeInto(m map[string]int64) {
	for id, c := range h.counts {
		if c != 0 {
			m[h.key(id)] += c
		}
	}
}

// hashWords mixes the outcome words murmur-style; collisions only cost
// linear probes, never correctness.
//
//perple:hotpath cover=harness-litmus7-run
func hashWords(w []int64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, v := range w {
		h ^= uint64(v)
		h *= 0xFF51AFD7ED558CCD
		h ^= h >> 33
	}
	return h
}
