package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"perple/internal/core"
	"perple/internal/sim"
)

// PerpLEOptions selects which outcome counters a PerpLE run applies.
type PerpLEOptions struct {
	// Exhaustive applies COUNT (Algorithm 1, N^TL frames).
	Exhaustive bool
	// Heuristic applies COUNTH (Algorithm 2, N frames).
	Heuristic bool
	// KeepBufs retains the raw buf arrays on the result (for skew
	// analysis or re-counting).
	KeepBufs bool
	// ExhaustiveCap, when positive, limits the iterations the exhaustive
	// counter examines (the run still executes all N). It bounds the
	// N^TL blowup for the TL=3 tests in large experiments; 0 means no
	// cap. Capping is reported via ExhaustiveN.
	ExhaustiveCap int
	// CountWorkers fans the counting phase out over worker goroutines
	// (core.CountExhaustiveParallel / core.CountHeuristicParallel),
	// leaving the counts identical. ≤ 1 counts on the calling goroutine.
	CountWorkers int
}

// PerpLEResult is the outcome of a PerpLE run: execution plus counting,
// with the two phases' costs reported separately and combined, in both
// simulated ticks (execution) / modelled ticks (counting: frames × the
// configured per-frame cost) and host wall time.
type PerpLEResult struct {
	N int

	// Exhaustive and Heuristic are the counter results; nil when the
	// corresponding option was off.
	Exhaustive *core.CountResult
	Heuristic  *core.CountResult

	// ExhaustiveN is the iteration count the exhaustive counter actually
	// examined (min(N, ExhaustiveCap)).
	ExhaustiveN int

	// ExecTicks is the simulated test-execution time; ExhCountTicks and
	// HeurCountTicks are the modelled counting times. A tool's total
	// runtime is ExecTicks plus its counter's ticks, matching the paper's
	// "runtimes include both test execution and outcome counting".
	ExecTicks      int64
	ExhCountTicks  int64
	HeurCountTicks int64

	// Wall splits measured host time the same way.
	WallExec time.Duration
	WallExh  time.Duration
	WallHeur time.Duration

	// Bufs is the raw run data when KeepBufs was set.
	Bufs *core.BufSet

	// Trace holds the machine-event trace when Config.TraceSize > 0.
	Trace *sim.Trace
}

// Merge folds another shard's PerpLE result into r: iteration counts,
// counter tallies (via core.CountResult.Merge), and both time accounts
// are summed. Both results must have run the same counters (Exhaustive /
// Heuristic both present or both absent). Merging is commutative and
// associative over shards. Raw buffers are dropped (a concatenated buf
// array would misindex iterations) and traces are not merged.
func (r *PerpLEResult) Merge(o *PerpLEResult) error {
	if (r.Exhaustive == nil) != (o.Exhaustive == nil) {
		return fmt.Errorf("harness: cannot merge PerpLE results: exhaustive counter presence differs")
	}
	if (r.Heuristic == nil) != (o.Heuristic == nil) {
		return fmt.Errorf("harness: cannot merge PerpLE results: heuristic counter presence differs")
	}
	if r.Exhaustive != nil {
		if err := r.Exhaustive.Merge(o.Exhaustive); err != nil {
			return fmt.Errorf("harness: merging exhaustive counts: %w", err)
		}
	}
	if r.Heuristic != nil {
		if err := r.Heuristic.Merge(o.Heuristic); err != nil {
			return fmt.Errorf("harness: merging heuristic counts: %w", err)
		}
	}
	r.N += o.N
	r.ExhaustiveN += o.ExhaustiveN
	r.ExecTicks += o.ExecTicks
	r.ExhCountTicks += o.ExhCountTicks
	r.HeurCountTicks += o.HeurCountTicks
	r.WallExec += o.WallExec
	r.WallExh += o.WallExh
	r.WallHeur += o.WallHeur
	r.Bufs = nil
	return nil
}

// TotalTicksExhaustive returns execution plus exhaustive counting ticks.
func (r *PerpLEResult) TotalTicksExhaustive() int64 { return r.ExecTicks + r.ExhCountTicks }

// TotalTicksHeuristic returns execution plus heuristic counting ticks.
func (r *PerpLEResult) TotalTicksHeuristic() int64 { return r.ExecTicks + r.HeurCountTicks }

// RunPerpLE executes n synchronization-free iterations of the perpetual
// test on the simulated machine and applies the selected outcome
// counters.
func RunPerpLE(pt *core.PerpetualTest, counter *core.Counter, n int, opts PerpLEOptions, cfg sim.Config) (*PerpLEResult, error) {
	return RunPerpLECtx(context.Background(), pt, counter, n, opts, cfg)
}

// RunPerpLECtx is RunPerpLE under a context: the perpetual execution and
// the exhaustive counter poll for cancellation and abort with the
// context's error instead of running to completion.
func RunPerpLECtx(ctx context.Context, pt *core.PerpetualTest, counter *core.Counter, n int, opts PerpLEOptions, cfg sim.Config) (*PerpLEResult, error) {
	if !opts.Exhaustive && !opts.Heuristic && !opts.KeepBufs {
		return nil, fmt.Errorf("harness: PerpLE run requests no counter and no buffers; nothing to do")
	}
	start := time.Now() //perple:allow nodeterminism wall-clock telemetry; never feeds results
	simRes, err := sim.RunPerpetualCtx(ctx, pt, n, cfg)
	if err != nil {
		return nil, err
	}
	res := &PerpLEResult{
		N:         n,
		ExecTicks: simRes.Ticks,
		WallExec:  time.Since(start), //perple:allow nodeterminism wall-clock telemetry; never feeds results
		Trace:     simRes.Trace,
	}

	if opts.Exhaustive {
		bs := simRes.Bufs
		res.ExhaustiveN = n
		if opts.ExhaustiveCap > 0 && opts.ExhaustiveCap < n {
			res.ExhaustiveN = opts.ExhaustiveCap
			bs = truncateBufs(pt, simRes.Bufs, opts.ExhaustiveCap)
		}
		t0 := time.Now() //perple:allow nodeterminism wall-clock telemetry; never feeds results
		// Auto-select the factorized counter when the outcome set is
		// product-form, else the parallel odometer (whose slab walk polls
		// ctx). Tallies are identical either way.
		cr, err := counter.CountExhaustiveAuto(ctx, bs, max(1, opts.CountWorkers))
		if err != nil {
			return nil, err
		}
		res.Exhaustive = cr
		res.WallExh = time.Since(t0) //perple:allow nodeterminism wall-clock telemetry; never feeds results
		res.ExhCountTicks = int64(float64(cr.Frames) * cfg.ExhFrameTick * float64(len(counter.Outcomes())))
	}
	if opts.Heuristic {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("harness: heuristic count aborted: %w", err)
		}
		t0 := time.Now() //perple:allow nodeterminism wall-clock telemetry; never feeds results
		cr, err := counter.CountHeuristicParallel(ctx, simRes.Bufs, max(1, opts.CountWorkers))
		if err != nil {
			return nil, err
		}
		res.Heuristic = cr
		res.WallHeur = time.Since(t0) //perple:allow nodeterminism wall-clock telemetry; never feeds results
		res.HeurCountTicks = int64(float64(cr.Frames) * cfg.HeurFrameTick * float64(len(counter.Outcomes())))
	}
	if opts.KeepBufs {
		res.Bufs = simRes.Bufs
	}
	return res, nil
}

// RunPerpLEBatch is RunPerpLEBatchCtx without a context.
func RunPerpLEBatch(pt *core.PerpetualTest, counter *core.Counter, n int, opts PerpLEOptions, cfg sim.Config, workers int) (*PerpLEResult, error) {
	return RunPerpLEBatchCtx(context.Background(), pt, counter, n, opts, cfg, workers)
}

// RunPerpLEBatchCtx splits an n-iteration PerpLE run across workers:
// worker w executes iterations [n·w/k, n·(w+1)/k) as an independent
// perpetual run seeded with sim.WorkerSeed(cfg.Seed, w), counts its own
// buffers with a private Counter clone, and the per-worker results are
// merged in worker order via PerpLEResult.Merge (wall times sum across
// workers, so on multicore they exceed elapsed time). workers ≤ 0
// selects GOMAXPROCS; workers is clamped to n.
//
// A one-worker batch is exactly RunPerpLECtx. KeepBufs is rejected for
// workers > 1: concatenated buf arrays would misindex iterations, the
// same reason Merge drops them. ExhaustiveCap applies per worker shard.
func RunPerpLEBatchCtx(ctx context.Context, pt *core.PerpetualTest, counter *core.Counter, n int, opts PerpLEOptions, cfg sim.Config, workers int) (*PerpLEResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		return RunPerpLECtx(ctx, pt, counter, n, opts, cfg)
	}
	if opts.KeepBufs {
		return nil, fmt.Errorf("harness: KeepBufs is incompatible with batched PerpLE runs (workers=%d)", workers)
	}
	results := make([]*PerpLEResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			results[w], errs[w] = RunPerpLECtx(ctx, pt, counter.Clone(), n, opts, cfg.WithSeed(sim.WorkerSeed(cfg.Seed, w)))
		}(w, hi-lo)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: batch worker %d: %w", w, err)
		}
	}
	out := results[0]
	for _, r := range results[1:] {
		if err := out.Merge(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// truncateBufs views the first n iterations of a run.
func truncateBufs(pt *core.PerpetualTest, bs *core.BufSet, n int) *core.BufSet {
	out := &core.BufSet{N: n, Bufs: make([][]int64, len(bs.Bufs))}
	for t, b := range bs.Bufs {
		if b != nil {
			out.Bufs[t] = b[:pt.Reads[t]*n]
		}
	}
	return out
}
