// Package harness runs litmus tests against the simulated machine in the
// two styles the PerpLE paper compares: the litmus7-equivalent iterative
// runner with five thread-synchronization modes (RunLitmus7), and the
// PerpLE runner that executes a perpetual test synchronization-free and
// applies the exhaustive and/or heuristic outcome counters (RunPerpLE).
// It also measures thread skew from perpetual run results (skew.go),
// implementing Section VI-B5 of the paper.
//
// Every result carries both simulated ticks (the deterministic runtime
// model used for the paper's speedup figures) and host wall time (used by
// the testing.B benchmarks for the genuinely algorithmic claims).
package harness

import (
	"context"
	"fmt"
	"time"

	"perple/internal/litmus"
	"perple/internal/sim"
)

// Litmus7Result is the outcome of a litmus7-style run.
type Litmus7Result struct {
	Test *litmus.Test
	Mode sim.Mode
	N    int

	// Histogram maps each observed full-outcome key (litmus.Outcome.Key
	// over every register) to its occurrence count, like litmus7's
	// "Histogram" output section.
	Histogram map[string]int64

	// OutcomeCounts[i] counts iterations satisfying the i-th outcome of
	// interest passed to RunLitmus7.
	OutcomeCounts []int64

	// TargetCount counts iterations satisfying the test's target outcome.
	TargetCount int64

	// Ticks is the simulated runtime, including synchronization.
	Ticks int64
	// Wall is the host time spent simulating and tallying.
	Wall time.Duration
	// Trace holds the machine-event trace when Config.TraceSize > 0.
	Trace *sim.Trace

	// TracesVerified and TraceViolations count witnesses checked and
	// rejected when trace verification is on (see TraceVerify);
	// TraceVerifyNs is host time spent checking. TraceReports holds up
	// to the configured cap of rendered violation reports. All stay
	// zero/nil when verification is off.
	TracesVerified  int64
	TraceViolations int64
	TraceVerifyNs   int64
	TraceReports    []string
}

// Merge folds another shard's result of the same test and mode into r:
// iteration counts, target/outcome tallies, the full histogram, and both
// time accounts are summed. Merging is commutative and associative over
// shards, so a campaign may combine per-shard results in any order (or
// grouping) and reach identical totals. Traces are not merged: r keeps
// its own, if any.
func (r *Litmus7Result) Merge(o *Litmus7Result) error {
	if r.Test.Name != o.Test.Name || r.Mode != o.Mode {
		return fmt.Errorf("harness: cannot merge %s/%s result into %s/%s",
			o.Test.Name, o.Mode, r.Test.Name, r.Mode)
	}
	if len(r.OutcomeCounts) != len(o.OutcomeCounts) {
		return fmt.Errorf("harness: %s: outcome-count length mismatch %d vs %d",
			r.Test.Name, len(r.OutcomeCounts), len(o.OutcomeCounts))
	}
	r.N += o.N
	r.TargetCount += o.TargetCount
	r.Ticks += o.Ticks
	r.Wall += o.Wall
	for i, v := range o.OutcomeCounts {
		r.OutcomeCounts[i] += v
	}
	if r.Histogram == nil && len(o.Histogram) > 0 {
		r.Histogram = map[string]int64{}
	}
	for k, v := range o.Histogram {
		r.Histogram[k] += v
	}
	r.TracesVerified += o.TracesVerified
	r.TraceViolations += o.TraceViolations
	r.TraceVerifyNs += o.TraceVerifyNs
	for _, rep := range o.TraceReports {
		if len(r.TraceReports) >= DefaultTraceReports {
			break
		}
		r.TraceReports = append(r.TraceReports, rep)
	}
	return nil
}

// compiledCond is an outcome condition resolved to flat-array offsets.
type compiledCond struct {
	mem bool
	t   int   // thread (register conds)
	off int   // register offset within the iteration block
	li  int   // location index (memory conds)
	v   int64 // expected value
}

type compiledOutcome struct{ conds []compiledCond }

func compileOutcome(t *litmus.Test, o litmus.Outcome, regCounts []int, locIdx map[litmus.Loc]int) (compiledOutcome, error) {
	var co compiledOutcome
	for _, c := range o.Conds {
		if c.IsMem() {
			li, ok := locIdx[c.Loc]
			if !ok {
				return co, fmt.Errorf("harness: %s: outcome references unknown location %q", t.Name, c.Loc)
			}
			co.conds = append(co.conds, compiledCond{mem: true, li: li, v: c.Value})
			continue
		}
		if c.Thread < 0 || c.Thread >= len(regCounts) || c.Reg < 0 || c.Reg >= regCounts[c.Thread] {
			return co, fmt.Errorf("harness: %s: outcome condition %v out of range", t.Name, c)
		}
		co.conds = append(co.conds, compiledCond{t: c.Thread, off: c.Reg, v: c.Value})
	}
	return co, nil
}

// regOnly reports whether every condition reads a register, making the
// outcome decidable from an interned histogram row alone.
func (co compiledOutcome) regOnly() bool {
	for _, c := range co.conds {
		if c.mem {
			return false
		}
	}
	return true
}

// matchWords evaluates a register-only outcome against one interned
// histogram row; wordOff[t] is thread t's word offset within the row.
func (co compiledOutcome) matchWords(w []int64, wordOff []int) bool {
	for _, c := range co.conds {
		if w[wordOff[c.t]+c.off] != c.v {
			return false
		}
	}
	return true
}

func (co compiledOutcome) match(res *sim.SyncedResult, iter int) bool {
	for _, c := range co.conds {
		if c.mem {
			if res.Mem[c.li*res.N+iter] != c.v {
				return false
			}
			continue
		}
		if res.Regs[c.t][iter*res.RegCounts[c.t]+c.off] != c.v {
			return false
		}
	}
	return true
}

// RunLitmus7 executes n iterations of the test under the given
// synchronization mode and tallies the target outcome, the optional extra
// outcomes of interest, and the full observed-outcome histogram.
func RunLitmus7(t *litmus.Test, n int, mode sim.Mode, outcomes []litmus.Outcome, cfg sim.Config) (*Litmus7Result, error) {
	return RunLitmus7Ctx(context.Background(), t, n, mode, outcomes, cfg)
}

// RunLitmus7Ctx is RunLitmus7 under a context: both the simulated run and
// the tally loop poll for cancellation and abort with the context's error
// instead of finishing the remaining iterations.
//
// Each call compiles the test and builds a fresh Litmus7Runner, so the
// returned result owns its memory. Callers running the same test
// repeatedly should compile once and reuse a Litmus7Runner, whose
// steady-state runs allocate nothing.
func RunLitmus7Ctx(ctx context.Context, t *litmus.Test, n int, mode sim.Mode, outcomes []litmus.Outcome, cfg sim.Config) (*Litmus7Result, error) {
	ct, err := sim.Compile(t)
	if err != nil {
		return nil, err
	}
	lr, err := NewLitmus7Runner(ct, outcomes)
	if err != nil {
		return nil, err
	}
	return lr.RunCtx(ctx, n, mode, cfg)
}

func appendKeyInt(b []byte, v int64) []byte {
	if v < 0 {
		b = append(b, '-')
		v = -v
	}
	if v >= 10 {
		b = appendKeyInt(b, v/10)
	}
	return append(b, byte('0'+v%10), ',')
}

// OutcomeKey renders a register file the way Litmus7Result histogram keys
// are built, for cross-referencing histogram entries with outcomes.
func OutcomeKey(regs [][]int64) string {
	key := make([]byte, 0, 64)
	for _, rs := range regs {
		for _, v := range rs {
			key = appendKeyInt(key, v)
		}
		if len(rs) > 0 {
			key = append(key, '|')
		}
	}
	return string(key)
}
