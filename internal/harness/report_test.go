package harness

import (
	"strings"
	"testing"

	"perple/internal/litmus"
	"perple/internal/sim"
)

func TestFormatLitmus7Report(t *testing.T) {
	test, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLitmus7(test, 2000, sim.ModeTimebase, nil, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatLitmus7Report(res)
	for _, want := range []string{
		"Test sb Allowed",
		"Histogram (",
		"Witnesses",
		"Positive: ",
		`Condition exists (0:EAX=0 /\ 1:EAX=0)`,
		"Observation sb Sometimes",
		"Time sb ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Target states carry the `*>` marker.
	if !strings.Contains(out, "*> 0:EAX=0; 1:EAX=0;") {
		t.Errorf("target state not flagged:\n%s", out)
	}
}

func TestFormatLitmus7ReportNever(t *testing.T) {
	test, err := litmus.SuiteTest("mp")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLitmus7(test, 500, sim.ModeUser, nil, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := FormatLitmus7Report(res)
	if !strings.Contains(out, "Observation mp Never 0 500") {
		t.Errorf("forbidden target should read Never:\n%s", out)
	}
	if !strings.Contains(out, "No\n") {
		t.Errorf("verdict should be No:\n%s", out)
	}
	if !strings.Contains(out, "is NOT validated") {
		t.Errorf("condition line should say NOT validated:\n%s", out)
	}
	// mp's thread 0 has no registers: state lines show only thread 1.
	if strings.Contains(out, "0:EAX") {
		t.Errorf("store-only thread should not appear in states:\n%s", out)
	}
}

func TestParseStateKeyRoundTrip(t *testing.T) {
	test, err := litmus.SuiteTest("iwp23b")
	if err != nil {
		t.Fatal(err)
	}
	key := OutcomeKey([][]int64{{1, 0}, {1, 1}})
	regs, ok := parseStateKey(test, key)
	if !ok {
		t.Fatalf("key %q did not parse", key)
	}
	if regs[0][0] != 1 || regs[0][1] != 0 || regs[1][0] != 1 || regs[1][1] != 1 {
		t.Errorf("parsed %v", regs)
	}
	if _, ok := parseStateKey(test, "garbage"); ok {
		t.Error("garbage key parsed")
	}
	if _, ok := parseStateKey(test, "1,2,3,|4,|"); ok {
		t.Error("wrong-arity key parsed")
	}
}

func TestObservationVerdicts(t *testing.T) {
	if observation(0, 10) != "Never" {
		t.Error("Never wrong")
	}
	if observation(10, 0) != "Always" {
		t.Error("Always wrong")
	}
	if observation(5, 5) != "Sometimes" {
		t.Error("Sometimes wrong")
	}
}
