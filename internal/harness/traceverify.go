package harness

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"perple/internal/litmus"
	"perple/internal/memmodel"
	"perple/internal/sim"
	"perple/internal/trace"
)

// TraceVerify configures streaming witness-trace verification of
// litmus7-style runs: the simulator records an rf/co witness for every
// Every-th iteration and the near-linear trace checker validates each
// against the model as results are tallied.
type TraceVerify struct {
	// Every is the sampling stride: 0 disables verification, 1 verifies
	// every iteration, k > 1 verifies every k-th.
	Every int

	// SC, when set, verifies against sequential consistency instead of
	// x86-TSO. The default (TSO) is the machine's contract; SC exists
	// for experiments and will flag ordinary store buffering. (A bool
	// rather than a memmodel.Model because that type's zero value is
	// SC, which would make the dangerous model the silent default.)
	SC bool

	// MaxReports caps the rendered violation reports kept per run; 0
	// selects DefaultTraceReports. Counts are always exact.
	MaxReports int
}

// DefaultTraceReports is the per-run violation report cap when
// TraceVerify.MaxReports is zero.
const DefaultTraceReports = 4

// model resolves the verification model.
func (tv TraceVerify) model() memmodel.Model {
	if tv.SC {
		return memmodel.SC
	}
	return memmodel.TSO
}

// reports resolves the report cap.
func (tv TraceVerify) reports() int {
	if tv.MaxReports <= 0 {
		return DefaultTraceReports
	}
	return tv.MaxReports
}

// SetTraceVerify configures witness verification for subsequent runs of
// this runner (pass a zero TraceVerify to disable). The checker is
// compiled once and reused across runs.
func (lr *Litmus7Runner) SetTraceVerify(tv TraceVerify) error {
	if tv.Every < 0 {
		return fmt.Errorf("harness: negative trace-verify stride %d", tv.Every)
	}
	if tv.Every == 0 {
		lr.tv, lr.checker = TraceVerify{}, nil
		return nil
	}
	c, err := trace.NewCheckerLayout(lr.ct.WitnessLayout(), tv.model())
	if err != nil {
		return err
	}
	lr.tv, lr.checker = tv, c
	return nil
}

// verifyWitnesses checks every recorded witness of a run, filling the
// result's trace-verification tallies.
func (lr *Litmus7Runner) verifyWitnesses(ctx context.Context, w *trace.WitnessSet, res *Litmus7Result) error {
	start := time.Now() //perple:allow nodeterminism wall-clock telemetry; never feeds results
	done := ctx.Done()
	cap := lr.tv.reports()
	for s := 0; s < w.Slots; s++ {
		if done != nil && s&1023 == 0 {
			select {
			case <-done:
				return fmt.Errorf("harness: trace verification aborted: %w", ctx.Err())
			default:
			}
		}
		v, err := lr.checker.Check(w, s)
		if err != nil {
			return fmt.Errorf("harness: %w", err)
		}
		res.TracesVerified++
		if v != nil {
			res.TraceViolations++
			if len(res.TraceReports) < cap {
				res.TraceReports = append(res.TraceReports, v.Format())
			}
		}
	}
	res.TraceVerifyNs += time.Since(start).Nanoseconds() //perple:allow nodeterminism wall-clock telemetry; never feeds results
	return nil
}

// RunLitmus7BatchVerify is RunLitmus7BatchVerifyCtx without a context.
func RunLitmus7BatchVerify(t *litmus.Test, n int, mode sim.Mode, outcomes []litmus.Outcome, cfg sim.Config, workers int, tv TraceVerify) (*Litmus7Result, error) {
	return RunLitmus7BatchVerifyCtx(context.Background(), t, n, mode, outcomes, cfg, workers, tv)
}

// RunLitmus7BatchVerifyCtx is RunLitmus7BatchCtx with witness-trace
// verification: each worker records and checks witnesses at the
// configured stride, and the merged result carries the summed tallies
// plus up to MaxReports rendered violation reports (first workers
// first, deterministically). Verification reads the simulation but
// never perturbs it, so histograms and tallies are bit-identical to an
// unverified batch with the same arguments.
func RunLitmus7BatchVerifyCtx(ctx context.Context, t *litmus.Test, n int, mode sim.Mode, outcomes []litmus.Outcome, cfg sim.Config, workers int, tv TraceVerify) (*Litmus7Result, error) {
	start := time.Now() //perple:allow nodeterminism wall-clock telemetry; never feeds results
	ct, err := sim.Compile(t)
	if err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("harness: negative iteration count %d", n)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	runners := make([]*Litmus7Runner, workers)
	for w := range runners {
		if runners[w], err = NewLitmus7Runner(ct, outcomes); err != nil {
			return nil, err
		}
		if err = runners[w].SetTraceVerify(tv); err != nil {
			return nil, err
		}
	}
	results := make([]*Litmus7Result, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, n int) {
			defer wg.Done()
			results[w], errs[w] = runners[w].RunCtx(ctx, n, mode, cfg.WithSeed(sim.WorkerSeed(cfg.Seed, w)))
		}(w, hi-lo)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("harness: batch worker %d: %w", w, err)
		}
	}

	out := &Litmus7Result{
		Test:          t,
		Mode:          mode,
		N:             n,
		Histogram:     map[string]int64{},
		OutcomeCounts: make([]int64, len(outcomes)),
		Trace:         results[0].Trace,
	}
	merged := newOutcomeHist(ct.RegCounts())
	reportCap := tv.reports()
	for w, r := range results {
		out.TargetCount += r.TargetCount
		out.Ticks += r.Ticks
		for i, v := range r.OutcomeCounts {
			out.OutcomeCounts[i] += v
		}
		out.TracesVerified += r.TracesVerified
		out.TraceViolations += r.TraceViolations
		out.TraceVerifyNs += r.TraceVerifyNs
		for _, rep := range r.TraceReports {
			if len(out.TraceReports) < reportCap {
				out.TraceReports = append(out.TraceReports, rep)
			}
		}
		merged.merge(runners[w].hist)
	}
	merged.materializeInto(out.Histogram)
	out.Wall = time.Since(start) //perple:allow nodeterminism wall-clock telemetry; never feeds results
	return out, nil
}
