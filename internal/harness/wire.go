package harness

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
)

// Wire codec for shipping results between processes: JSON for
// stability and debuggability, gzip because result payloads (histogram
// maps above all) compress 5-10x. The campaign dispatch protocol uses it
// for batched shard-result uploads; anything that moves harness results
// over a network or into an artifact store should use the same framing
// so payloads stay mutually readable.

// WireContentType labels gzip-compressed JSON payloads in HTTP requests.
const WireContentType = "application/json+gzip"

// EncodeWire renders v as gzip-compressed JSON.
func EncodeWire(v any) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(v); err != nil {
		return nil, fmt.Errorf("harness: encoding wire payload: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("harness: compressing wire payload: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeWire decodes a gzip-compressed JSON payload into v, rejecting
// trailing garbage after the JSON value.
func DecodeWire(r io.Reader, v any) error {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return fmt.Errorf("harness: decompressing wire payload: %w", err)
	}
	defer zr.Close()
	dec := json.NewDecoder(zr)
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("harness: decoding wire payload: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("harness: trailing data after wire payload")
	}
	return nil
}
