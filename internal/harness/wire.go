package harness

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Wire codec for shipping results between processes: JSON for
// stability and debuggability, gzip because result payloads (histogram
// maps above all) compress 5-10x. The campaign dispatch protocol uses it
// for batched shard-result uploads; anything that moves harness results
// over a network or into an artifact store should use the same framing
// so payloads stay mutually readable. For hot paths there is a faster
// binary sibling in wirebin.go; this codec remains the compatibility
// floor every peer can speak.

// WireContentType labels gzip-compressed JSON payloads in HTTP requests.
const WireContentType = "application/json+gzip"

// DefaultWireLimit caps how many bytes one wire payload may decode to
// (decompressed JSON, or binary-decoded values) when the caller does
// not supply its own cap. Result payloads are megabytes at the very
// worst; the cap exists so a crafted payload — a gzip bomb, or a
// front-coding expansion bomb on the binary codec — cannot balloon a
// dispatcher's memory.
const DefaultWireLimit = 256 << 20

// ErrWireTooLarge reports a payload that would decode past the
// configured cap. It wraps the size details; match with errors.Is.
var ErrWireTooLarge = errors.New("harness: wire payload exceeds decode limit")

// gzipWriterPool recycles gzip writers across EncodeWire calls: each
// flate writer owns ~800KB of window state, which dominated the old
// per-upload allocation profile.
var gzipWriterPool = sync.Pool{New: func() any { return gzip.NewWriter(io.Discard) }}

// gzipReaderPool recycles gzip readers for DecodeWire the same way.
var gzipReaderPool = sync.Pool{}

// EncodeWire renders v as gzip-compressed JSON.
func EncodeWire(v any) ([]byte, error) {
	var buf bytes.Buffer
	zw := gzipWriterPool.Get().(*gzip.Writer)
	zw.Reset(&buf)
	enc := json.NewEncoder(zw)
	if err := enc.Encode(v); err != nil {
		zw.Reset(io.Discard)
		gzipWriterPool.Put(zw)
		return nil, fmt.Errorf("harness: encoding wire payload: %w", err)
	}
	err := zw.Close()
	zw.Reset(io.Discard)
	gzipWriterPool.Put(zw)
	if err != nil {
		return nil, fmt.Errorf("harness: compressing wire payload: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeWire decodes a gzip-compressed JSON payload into v with the
// default decompression cap. It rejects trailing garbage after the JSON
// value.
func DecodeWire(r io.Reader, v any) error {
	return DecodeWireLimit(r, v, DefaultWireLimit)
}

// DecodeWireLimit is DecodeWire with an explicit cap on the
// decompressed size; limit ≤ 0 selects DefaultWireLimit. A payload
// whose decompressed form exceeds the cap fails with an error wrapping
// ErrWireTooLarge — the decompression-bomb guard.
func DecodeWireLimit(r io.Reader, v any, limit int) error {
	if limit <= 0 {
		limit = DefaultWireLimit
	}
	zr, _ := gzipReaderPool.Get().(*gzip.Reader)
	if zr == nil {
		var err error
		if zr, err = gzip.NewReader(r); err != nil {
			return fmt.Errorf("harness: decompressing wire payload: %w", err)
		}
	} else if err := zr.Reset(r); err != nil {
		gzipReaderPool.Put(zr)
		return fmt.Errorf("harness: decompressing wire payload: %w", err)
	}
	defer func() {
		zr.Close()
		gzipReaderPool.Put(zr)
	}()
	// The extra byte past the cap distinguishes "exactly at the limit"
	// from "over it": seeing limit+1 decompressed bytes proves the bomb.
	lr := &io.LimitedReader{R: zr, N: int64(limit) + 1}
	dec := json.NewDecoder(lr)
	if err := dec.Decode(v); err != nil {
		if lr.N <= 0 {
			return fmt.Errorf("%w: decompressed payload exceeds %d bytes", ErrWireTooLarge, limit)
		}
		return fmt.Errorf("harness: decoding wire payload: %w", err)
	}
	if lr.N <= 0 {
		return fmt.Errorf("%w: decompressed payload exceeds %d bytes", ErrWireTooLarge, limit)
	}
	if dec.More() {
		return fmt.Errorf("harness: trailing data after wire payload")
	}
	return nil
}
