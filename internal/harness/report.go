package harness

import (
	"fmt"
	"sort"
	"strings"

	"perple/internal/litmus"
)

// FormatLitmus7Report renders a run result in the classic litmus7 output
// style — the format hardware-validation engineers read:
//
//	Test sb Allowed
//	Histogram (4 states)
//	588   *> 0:EAX=0; 1:EAX=0;
//	4704   > 0:EAX=0; 1:EAX=1;
//	...
//	Ok
//	Witnesses
//	Positive: 588, Negative: 9412
//	Condition exists (0:EAX=0 /\ 1:EAX=0) is validated
//	Observation sb Sometimes 588 9412
//	Time sb 1391647 ticks
//
// States satisfying the target are flagged with `*>`; the Observation
// verdict is Never / Sometimes / Always, as litmus7 prints it.
func FormatLitmus7Report(res *Litmus7Result) string {
	t := res.Test
	var b strings.Builder
	fmt.Fprintf(&b, "Test %s Allowed\n", t.Name)

	// Histogram sorted by state key for determinism; annotate states that
	// satisfy the target.
	keys := make([]string, 0, len(res.Histogram))
	for k := range res.Histogram {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&b, "Histogram (%d states)\n", len(keys))
	for _, k := range keys {
		marker := " >"
		if stateMatchesTarget(t, k) {
			marker = "*>"
		}
		fmt.Fprintf(&b, "%-8d%s %s\n", res.Histogram[k], marker, formatState(t, k))
	}

	positive := res.TargetCount
	negative := int64(res.N) - positive
	if positive > 0 {
		b.WriteString("Ok\n")
	} else {
		b.WriteString("No\n")
	}
	b.WriteString("Witnesses\n")
	fmt.Fprintf(&b, "Positive: %d, Negative: %d\n", positive, negative)
	validated := "is validated"
	if positive == 0 {
		validated = "is NOT validated"
	}
	fmt.Fprintf(&b, "Condition exists (%s) %s\n", conditionString(t.Target), validated)
	fmt.Fprintf(&b, "Observation %s %s %d %d\n", t.Name, observation(positive, negative), positive, negative)
	fmt.Fprintf(&b, "Time %s %d ticks (%v host)\n", t.Name, res.Ticks, res.Wall.Round(10_000))
	return b.String()
}

func observation(pos, neg int64) string {
	switch {
	case pos == 0:
		return "Never"
	case neg == 0:
		return "Always"
	default:
		return "Sometimes"
	}
}

// stateMatchesTarget checks a histogram key against the target's register
// conditions (memory conditions cannot be recovered from the key and make
// the state unflaggable; litmus7 keys carry final memory too, which this
// harness tallies separately).
func stateMatchesTarget(t *litmus.Test, key string) bool {
	regs, ok := parseStateKey(t, key)
	if !ok || t.Target.HasMemConds() {
		return false
	}
	return t.Target.Holds(regs)
}

// formatState renders a histogram key litmus7-style: `0:EAX=1; 1:EBX=0;`.
func formatState(t *litmus.Test, key string) string {
	regs, ok := parseStateKey(t, key)
	if !ok {
		return key
	}
	var parts []string
	for ti, rs := range regs {
		for r, v := range rs {
			parts = append(parts, fmt.Sprintf("%d:%s=%d;", ti, litmus7RegName(r), v))
		}
	}
	return strings.Join(parts, " ")
}

var litmus7Regs = []string{"EAX", "EBX", "ECX", "EDX", "ESI", "EDI"}

func litmus7RegName(idx int) string {
	if idx < len(litmus7Regs) {
		return litmus7Regs[idx]
	}
	return fmt.Sprintf("R%d", idx)
}

// parseStateKey inverts the histogram key built by RunLitmus7
// ("1,0,|2,|": comma-terminated values, '|' per thread).
func parseStateKey(t *litmus.Test, key string) ([][]int64, bool) {
	regCounts := t.Regs()
	regs := make([][]int64, len(regCounts))
	ti := 0
	var cur []int64
	var val int64
	neg := false
	inNum := false
	for i := 0; i < len(key); i++ {
		switch ch := key[i]; {
		case ch == '-':
			neg = true
		case ch >= '0' && ch <= '9':
			val = val*10 + int64(ch-'0')
			inNum = true
		case ch == ',':
			if !inNum {
				return nil, false
			}
			if neg {
				val = -val
			}
			cur = append(cur, val)
			val, neg, inNum = 0, false, false
		case ch == '|':
			if ti >= len(regs) {
				return nil, false
			}
			regs[ti] = cur
			cur = nil
			ti++
		default:
			return nil, false
		}
	}
	// Threads with zero registers produce no '|' in the key; pad them.
	full := make([][]int64, len(regCounts))
	src := 0
	for i, rc := range regCounts {
		if rc == 0 {
			full[i] = nil
			continue
		}
		for src < len(regs) && len(regs[src]) == 0 {
			src++
		}
		if src >= len(regs) || len(regs[src]) != rc {
			return nil, false
		}
		full[i] = regs[src]
		src++
	}
	return full, true
}

func conditionString(o litmus.Outcome) string {
	parts := make([]string, len(o.Conds))
	for i, c := range o.Conds {
		if c.IsMem() {
			parts[i] = fmt.Sprintf("[%s]=%d", c.Loc, c.Value)
		} else {
			parts[i] = fmt.Sprintf("%d:%s=%d", c.Thread, litmus7RegName(c.Reg), c.Value)
		}
	}
	return strings.Join(parts, ` /\ `)
}
