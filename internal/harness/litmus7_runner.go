package harness

import (
	"context"
	"fmt"
	"time"

	"perple/internal/litmus"
	"perple/internal/sim"
	"perple/internal/trace"
)

// Litmus7Runner executes litmus7-style runs of one compiled test on a
// reusable sim.Runner with a reusable interned histogram: outcome
// conditions are compiled once, the tally loop interns register files
// instead of rendering string keys, and the result struct (including
// the Histogram map and OutcomeCounts slice) is recycled, so repeated
// runs allocate nothing in steady state. A Litmus7Runner is not safe
// for concurrent use; batched runs give each worker its own over the
// shared sim.CompiledTest.
//
// The returned Litmus7Result aliases the runner's state and is valid
// only until the next Run call. The package-level RunLitmus7 /
// RunLitmus7Ctx keep the old own-your-result contract by using a fresh
// runner per call.
type Litmus7Runner struct {
	ct       *sim.CompiledTest
	runner   *sim.Runner
	target   compiledOutcome
	outcomes []compiledOutcome
	hist     *outcomeHist
	res      Litmus7Result

	// regOnly is set when the target and every extra outcome read only
	// registers; wordOff[t] is thread t's offset into an interned
	// histogram row. Together they let RunCtx tally conditions once per
	// distinct outcome instead of once per iteration.
	regOnly bool
	wordOff []int

	// tv/checker drive optional witness-trace verification; see
	// SetTraceVerify. checker is nil when verification is off.
	tv      TraceVerify
	checker *trace.Checker
}

// NewLitmus7Runner builds a reusable litmus7-style runner over a
// compiled test, pre-compiling the target and the optional extra
// outcomes of interest.
func NewLitmus7Runner(ct *sim.CompiledTest, outcomes []litmus.Outcome) (*Litmus7Runner, error) {
	t := ct.Test()
	locIdx := make(map[litmus.Loc]int, len(ct.Locs()))
	for i, l := range ct.Locs() {
		locIdx[l] = i
	}
	target, err := compileOutcome(t, t.Target, ct.RegCounts(), locIdx)
	if err != nil {
		return nil, err
	}
	lr := &Litmus7Runner{
		ct:       ct,
		runner:   sim.NewRunner(ct),
		target:   target,
		outcomes: make([]compiledOutcome, len(outcomes)),
		hist:     newOutcomeHist(ct.RegCounts()),
	}
	lr.regOnly = target.regOnly()
	for i, o := range outcomes {
		if lr.outcomes[i], err = compileOutcome(t, o, ct.RegCounts(), locIdx); err != nil {
			return nil, err
		}
		lr.regOnly = lr.regOnly && lr.outcomes[i].regOnly()
	}
	lr.wordOff = make([]int, len(ct.RegCounts()))
	off := 0
	for ti, rc := range ct.RegCounts() {
		lr.wordOff[ti] = off
		off += rc
	}
	lr.res = Litmus7Result{
		Test:          t,
		Histogram:     map[string]int64{},
		OutcomeCounts: make([]int64, len(outcomes)),
	}
	return lr, nil
}

// Run executes n iterations under the given synchronization mode.
func (lr *Litmus7Runner) Run(n int, mode sim.Mode, cfg sim.Config) (*Litmus7Result, error) {
	return lr.RunCtx(context.Background(), n, mode, cfg)
}

// RunCtx is Run under a context; see RunLitmus7Ctx for cancellation
// semantics.
func (lr *Litmus7Runner) RunCtx(ctx context.Context, n int, mode sim.Mode, cfg sim.Config) (*Litmus7Result, error) {
	start := time.Now() //perple:allow nodeterminism wall-clock telemetry; never feeds results
	if lr.checker != nil {
		// Witness recording is a pure observer of the machine, so the
		// override cannot perturb the run (the sim determinism suite
		// asserts this).
		cfg.WitnessEvery = lr.tv.Every
	}
	simRes, err := lr.runner.RunSyncedCtx(ctx, n, mode, cfg)
	if err != nil {
		return nil, err
	}
	res := &lr.res
	res.Mode = mode
	res.N = n
	res.TargetCount = 0
	clear(res.OutcomeCounts)
	clear(res.Histogram)
	res.Ticks = simRes.Ticks
	res.Wall = 0
	res.Trace = simRes.Trace
	res.TracesVerified, res.TraceViolations, res.TraceVerifyNs = 0, 0, 0
	res.TraceReports = res.TraceReports[:0]
	if lr.checker != nil {
		if err := lr.verifyWitnesses(ctx, simRes.Witnesses, res); err != nil {
			return nil, err
		}
	}
	lr.hist.resetCounts()
	done := ctx.Done()
	for lo := 0; lo < n; lo += 4096 {
		if done != nil {
			select {
			case <-done:
				return nil, fmt.Errorf("harness: litmus7 tally aborted: %w", ctx.Err())
			default:
			}
		}
		hi := lo + 4096
		if hi > n {
			hi = n
		}
		if !lr.regOnly {
			// A memory condition depends on the iteration's memory cell,
			// which the histogram does not intern: match per iteration.
			for iter := lo; iter < hi; iter++ {
				if lr.target.match(simRes, iter) {
					res.TargetCount++
				}
				for i := range lr.outcomes {
					if lr.outcomes[i].match(simRes, iter) {
						res.OutcomeCounts[i]++
					}
				}
			}
		}
		lr.hist.observeBlock(simRes, lo, hi)
	}
	if lr.regOnly {
		// Register-only conditions are a function of the interned row, so
		// tally per distinct outcome instead of per iteration.
		for id, c := range lr.hist.counts {
			if c == 0 {
				continue
			}
			w := lr.hist.row(id)
			if lr.target.matchWords(w, lr.wordOff) {
				res.TargetCount += c
			}
			for i := range lr.outcomes {
				if lr.outcomes[i].matchWords(w, lr.wordOff) {
					res.OutcomeCounts[i] += c
				}
			}
		}
	}
	lr.hist.materializeInto(res.Histogram)
	res.Wall = time.Since(start) //perple:allow nodeterminism wall-clock telemetry; never feeds results
	return res, nil
}

// RunLitmus7Batch is RunLitmus7BatchCtx without a context.
func RunLitmus7Batch(t *litmus.Test, n int, mode sim.Mode, outcomes []litmus.Outcome, cfg sim.Config, workers int) (*Litmus7Result, error) {
	return RunLitmus7BatchCtx(context.Background(), t, n, mode, outcomes, cfg, workers)
}

// RunLitmus7BatchCtx splits an n-iteration litmus7-style run across
// workers: worker w runs iterations [n·w/k, n·(w+1)/k) on a private
// Litmus7Runner seeded with sim.WorkerSeed(cfg.Seed, w), and the
// per-worker interned histograms and tallies are merged in worker
// order. workers ≤ 0 selects GOMAXPROCS; workers is clamped to n.
//
// A one-worker batch is bit-identical to RunLitmus7Ctx except for Wall
// (which reports the batch's elapsed host time, not per-worker time
// summed). A k-worker batch equals the Merge of k serial runs with the
// derived seeds, so results are deterministic for fixed (test, n, mode,
// cfg, workers) regardless of scheduling. Trace, when enabled, is the
// first worker's.
func RunLitmus7BatchCtx(ctx context.Context, t *litmus.Test, n int, mode sim.Mode, outcomes []litmus.Outcome, cfg sim.Config, workers int) (*Litmus7Result, error) {
	return RunLitmus7BatchVerifyCtx(ctx, t, n, mode, outcomes, cfg, workers, TraceVerify{})
}
