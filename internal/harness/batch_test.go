package harness

import (
	"encoding/json"
	"reflect"
	"testing"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/sim"
)

func mustSuite(t *testing.T, name string) *litmus.Test {
	t.Helper()
	test, err := litmus.SuiteTest(name)
	if err != nil {
		t.Fatalf("SuiteTest(%s): %v", name, err)
	}
	return test
}

// comparableJSON renders a result with the host-time and trace fields
// zeroed, so byte comparison covers exactly the deterministic payload.
func comparableJSON(t *testing.T, res *Litmus7Result) string {
	t.Helper()
	c := *res
	c.Wall = 0
	c.Trace = nil
	data, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestHistogramMatchesOutcomeKeyRendering(t *testing.T) {
	// The interned histogram must reproduce the OutcomeKey string format
	// exactly: recompute the histogram from the raw register files and
	// compare maps.
	test := mustSuite(t, "mp")
	cfg := sim.DefaultConfig().WithSeed(17)
	const n = 2000
	res, err := RunLitmus7(test, n, sim.ModeUser, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	simRes, err := sim.RunSynced(test, n, sim.ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	regs := make([][]int64, len(simRes.RegCounts))
	for iter := 0; iter < n; iter++ {
		for ti, rc := range simRes.RegCounts {
			regs[ti] = simRes.Regs[ti][iter*rc : (iter+1)*rc]
		}
		want[OutcomeKey(regs)]++
	}
	if !reflect.DeepEqual(res.Histogram, want) {
		t.Fatalf("interned histogram differs from OutcomeKey recomputation:\n got %v\nwant %v", res.Histogram, want)
	}
}

func TestLitmus7RunnerReuseMatchesFreshRun(t *testing.T) {
	test := mustSuite(t, "sb")
	ct, err := sim.Compile(test)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := NewLitmus7Runner(ct, []litmus.Outcome{test.Target})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig().WithSeed(23)
	first, err := lr.Run(800, sim.ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	firstJSON := comparableJSON(t, first)
	// Dirty the reused state with a different run, then repeat.
	if _, err := lr.Run(333, sim.ModeTimebase, sim.DefaultConfig().WithSeed(9)); err != nil {
		t.Fatal(err)
	}
	again, err := lr.Run(800, sim.ModeUser, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := comparableJSON(t, again); got != firstJSON {
		t.Fatalf("reused Litmus7Runner diverged:\n got %s\nwant %s", got, firstJSON)
	}
	fresh, err := RunLitmus7(test, 800, sim.ModeUser, []litmus.Outcome{test.Target}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := comparableJSON(t, fresh); got != firstJSON {
		t.Fatalf("fresh RunLitmus7 differs from runner:\n got %s\nwant %s", got, firstJSON)
	}
}

func TestLitmus7RunnerSteadyStateAllocs(t *testing.T) {
	test := mustSuite(t, "sb")
	ct, err := sim.Compile(test)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := NewLitmus7Runner(ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig().WithSeed(4)
	if _, err := lr.Run(300, sim.ModeUser, cfg); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(20, func() {
		if _, err := lr.Run(300, sim.ModeUser, cfg); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2 {
		t.Fatalf("steady-state litmus7 run allocates %.1f times, want ≤ 2", avg)
	}
}

func TestLitmus7BatchOneWorkerIdenticalToSerial(t *testing.T) {
	test := mustSuite(t, "sb")
	cfg := sim.DefaultConfig().WithSeed(31)
	serial, err := RunLitmus7(test, 1000, sim.ModeUser, []litmus.Outcome{test.Target}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := RunLitmus7Batch(test, 1000, sim.ModeUser, []litmus.Outcome{test.Target}, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := comparableJSON(t, batch), comparableJSON(t, serial); got != want {
		t.Fatalf("one-worker batch not byte-identical to serial:\n got %s\nwant %s", got, want)
	}
}

func TestLitmus7BatchEqualsMergedDerivedSerialRuns(t *testing.T) {
	test := mustSuite(t, "mp")
	cfg := sim.DefaultConfig().WithSeed(13)
	const n, workers = 901, 3
	batch, err := RunLitmus7Batch(test, n, sim.ModeUser, []litmus.Outcome{test.Target}, cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	var merged *Litmus7Result
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		r, err := RunLitmus7(test, hi-lo, sim.ModeUser, []litmus.Outcome{test.Target},
			cfg.WithSeed(sim.WorkerSeed(cfg.Seed, w)))
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			merged = r
		} else if err := merged.Merge(r); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := comparableJSON(t, batch), comparableJSON(t, merged); got != want {
		t.Fatalf("batch differs from merged derived serial runs:\n got %s\nwant %s", got, want)
	}
}

func TestPerpLEBatchEqualsMergedDerivedSerialRuns(t *testing.T) {
	test := mustSuite(t, "sb")
	pt, err := core.Convert(test)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := core.NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig().WithSeed(19)
	opts := PerpLEOptions{Heuristic: true, Exhaustive: true, ExhaustiveCap: 200}
	const n, workers = 700, 3
	batch, err := RunPerpLEBatch(pt, counter, n, opts, cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	var merged *PerpLEResult
	for w := 0; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		r, err := RunPerpLE(pt, counter.Clone(), hi-lo, opts, cfg.WithSeed(sim.WorkerSeed(cfg.Seed, w)))
		if err != nil {
			t.Fatal(err)
		}
		if merged == nil {
			merged = r
		} else if err := merged.Merge(r); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(batch.Heuristic, merged.Heuristic) ||
		!reflect.DeepEqual(batch.Exhaustive, merged.Exhaustive) ||
		batch.N != merged.N || batch.ExecTicks != merged.ExecTicks ||
		batch.ExhCountTicks != merged.ExhCountTicks || batch.HeurCountTicks != merged.HeurCountTicks {
		t.Fatalf("PerpLE batch differs from merged derived serial runs:\n got %+v\nwant %+v", batch, merged)
	}
}

func TestPerpLEBatchRejectsKeepBufs(t *testing.T) {
	test := mustSuite(t, "sb")
	pt, err := core.Convert(test)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := core.NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	opts := PerpLEOptions{Heuristic: true, KeepBufs: true}
	if _, err := RunPerpLEBatch(pt, counter, 100, opts, sim.DefaultConfig(), 2); err == nil {
		t.Fatal("expected KeepBufs + workers>1 to be rejected")
	}
	// One worker delegates to the serial path, where KeepBufs is fine.
	res, err := RunPerpLEBatch(pt, counter, 100, opts, sim.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Bufs == nil {
		t.Fatal("one-worker batch dropped Bufs")
	}
}

func TestPerpLECountWorkersInvariant(t *testing.T) {
	test := mustSuite(t, "mp")
	pt, err := core.Convert(test)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := core.NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig().WithSeed(29)
	base := PerpLEOptions{Heuristic: true, Exhaustive: true, ExhaustiveCap: 150}
	serial, err := RunPerpLE(pt, counter.Clone(), 600, base, cfg)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.CountWorkers = 4
	fanned, err := RunPerpLE(pt, counter.Clone(), 600, par, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Heuristic, fanned.Heuristic) || !reflect.DeepEqual(serial.Exhaustive, fanned.Exhaustive) {
		t.Fatalf("CountWorkers changed counter results:\n serial %+v / %+v\n fanned %+v / %+v",
			serial.Heuristic, serial.Exhaustive, fanned.Heuristic, fanned.Exhaustive)
	}
}
