package harness

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func sampleResult() *Litmus7Result {
	return &Litmus7Result{
		N:             5000,
		TargetCount:   42,
		Ticks:         123456,
		OutcomeCounts: []int64{4958, 42},
		Histogram: map[string]int64{
			"0;1;":   4958,
			"0;0;":   42,
			"1;0;":   7,
			"1;1;2;": 1,
		},
		TracesVerified:  99,
		TraceViolations: 1,
		TraceReports:    []string{"cycle: rf;co", "cycle: rf;co"},
	}
}

// wireJSON normalizes a value for cross-codec comparison: both codecs
// must round-trip to the same canonical JSON, nil-vs-empty included.
func wireJSON(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestWireBinaryRoundTrip(t *testing.T) {
	in := sampleResult()
	frame := EncodeWireBinary(nil, in)
	var out Litmus7Result
	if err := DecodeWireBinary(frame, &out, 0); err != nil {
		t.Fatal(err)
	}
	if got, want := wireJSON(t, &out), wireJSON(t, in); got != want {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestWireBinaryReusesBuffer(t *testing.T) {
	in := sampleResult()
	buf := EncodeWireBinary(nil, in)
	want := append([]byte(nil), buf...)
	// Re-encoding into the same slice must produce identical bytes — the
	// worker's upload path recycles one buffer across batches.
	buf = EncodeWireBinary(buf, in)
	if !bytes.Equal(buf, want) {
		t.Fatal("re-encoding into a recycled buffer changed the frame bytes")
	}
}

func TestWireBinaryDeterministic(t *testing.T) {
	a := EncodeWireBinary(nil, sampleResult())
	b := EncodeWireBinary(nil, sampleResult())
	if !bytes.Equal(a, b) {
		t.Fatal("encoding the same value twice produced different frames")
	}
}

func TestWireBinarySmallerThanPlainJSON(t *testing.T) {
	// The binary codec trades generality for speed: no flate state, pure
	// append/scan. It must still beat uncompressed JSON on size (varints
	// plus front-coded keys remove most of the text overhead); gzip-JSON
	// may be smaller on highly repetitive histograms, which is fine — the
	// codec's win is CPU and allocations, not peak compression.
	in := sampleResult()
	for i := 0; i < 500; i++ {
		in.Histogram[OutcomeKey([][]int64{{int64(i)}, {int64(i % 7)}})] = int64(i)
	}
	frame := EncodeWireBinary(nil, in)
	plain, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) >= len(plain) {
		t.Fatalf("binary frame %dB not smaller than plain JSON %dB", len(frame), len(plain))
	}
}

func TestWireBinaryFrameDamage(t *testing.T) {
	frame := EncodeWireBinary(nil, sampleResult())

	t.Run("bad magic", func(t *testing.T) {
		bad := append([]byte(nil), frame...)
		bad[0] = 'X'
		var out Litmus7Result
		if err := DecodeWireBinary(bad, &out, 0); !errors.Is(err, ErrWireFrame) {
			t.Fatalf("got %v, want ErrWireFrame", err)
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		// Flip one bit in every body position; the CRC (or a structural
		// check) must reject each damaged frame — never accept, never
		// panic.
		for i := 4; i < len(frame); i++ {
			bad := append([]byte(nil), frame...)
			bad[i] ^= 0x40
			var out Litmus7Result
			if err := DecodeWireBinary(bad, &out, 0); err == nil {
				t.Fatalf("accepted frame with bit flipped at byte %d", i)
			}
		}
	})
	t.Run("truncation", func(t *testing.T) {
		for n := 0; n < len(frame); n++ {
			var out Litmus7Result
			if err := DecodeWireBinary(frame[:n], &out, 0); !errors.Is(err, ErrWireFrame) {
				t.Fatalf("truncated frame (%d of %d bytes): got %v, want ErrWireFrame", n, len(frame), err)
			}
		}
	})
	t.Run("trailing data", func(t *testing.T) {
		var out Litmus7Result
		if err := DecodeWireBinary(append(append([]byte(nil), frame...), 0), &out, 0); err == nil {
			t.Fatal("accepted frame with trailing data")
		}
	})
}

func TestDecodeWireBinaryLimit(t *testing.T) {
	in := sampleResult()
	for i := 0; i < 2000; i++ {
		in.Histogram[OutcomeKey([][]int64{{int64(i)}, {int64(i)}})] = 1
	}
	frame := EncodeWireBinary(nil, in)
	var out Litmus7Result
	if err := DecodeWireBinary(frame, &out, 64); !errors.Is(err, ErrWireTooLarge) {
		t.Fatalf("got %v, want ErrWireTooLarge", err)
	}
	out = Litmus7Result{}
	if err := DecodeWireBinary(frame, &out, 0); err != nil {
		t.Fatalf("default limit rejected a normal payload: %v", err)
	}
}

func TestDecodeWireLimitGzip(t *testing.T) {
	// A decompression bomb for the gzip-JSON codec: megabytes of
	// repetitive JSON shrink to a tiny wire payload. The decode cap must
	// stop inflation at the limit, not at the wire size.
	big := map[string]string{"note": strings.Repeat("a", 8<<20)}
	data, err := EncodeWire(big)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 64<<10 {
		t.Fatalf("bomb unexpectedly incompressible: %dB", len(data))
	}
	var out map[string]string
	if err := DecodeWireLimit(bytes.NewReader(data), &out, 1<<20); !errors.Is(err, ErrWireTooLarge) {
		t.Fatalf("got %v, want ErrWireTooLarge", err)
	}
	out = nil
	if err := DecodeWireLimit(bytes.NewReader(data), &out, 16<<20); err != nil {
		t.Fatalf("sufficient limit rejected the payload: %v", err)
	}
}

// FuzzWireBinaryDecode feeds arbitrary bytes to the binary decoder: it
// must reject or accept, never panic or over-read.
func FuzzWireBinaryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PWB1"))
	f.Add(EncodeWireBinary(nil, sampleResult()))
	f.Add(EncodeWireBinary(nil, &Litmus7Result{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		var out Litmus7Result
		_ = DecodeWireBinary(data, &out, 1<<20)
	})
}

// FuzzWireRoundTrip drives both codecs over generated results and
// demands exact round-trip equality (canonical-JSON compared, so
// nil-vs-empty normalization must match between codecs too).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(int64(5000), int64(42), int64(123456), "0;1;", int64(4958), "cycle: rf;co")
	f.Add(int64(0), int64(0), int64(0), "", int64(0), "")
	f.Add(int64(-1), int64(-7), int64(1<<40), "k\x00;", int64(-9), "report\nline")
	f.Fuzz(func(t *testing.T, n, target, ticks int64, key string, count int64, report string) {
		// encoding/json replaces invalid UTF-8 with U+FFFD; the binary
		// codec is byte-faithful. Real outcome keys are ASCII, so pin the
		// comparison to valid UTF-8 rather than demanding the JSON codec
		// preserve bytes it never could.
		key = strings.ToValidUTF8(key, "�")
		report = strings.ToValidUTF8(report, "�")
		in := &Litmus7Result{
			N:           int(n),
			TargetCount: target,
			Ticks:       ticks,
		}
		if key != "" {
			in.Histogram = map[string]int64{key: count, key + ";x": count + 1}
		}
		if report != "" {
			in.TraceReports = []string{report, report}
			in.OutcomeCounts = []int64{count, -count, n}
		}
		want := wireJSON(t, in)

		var fromBin Litmus7Result
		if err := DecodeWireBinary(EncodeWireBinary(nil, in), &fromBin, 0); err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		if got := wireJSON(t, &fromBin); got != want {
			t.Fatalf("binary round trip:\n got %s\nwant %s", got, want)
		}

		gz, err := EncodeWire(in)
		if err != nil {
			t.Fatalf("gzip encode: %v", err)
		}
		var fromGz Litmus7Result
		if err := DecodeWire(bytes.NewReader(gz), &fromGz); err != nil {
			t.Fatalf("gzip decode: %v", err)
		}
		if got := wireJSON(t, &fromGz); got != want {
			t.Fatalf("gzip round trip:\n got %s\nwant %s", got, want)
		}
	})
}
