package harness

import (
	"testing"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/sim"
)

func mustPerp(t *testing.T, name string) *core.PerpetualTest {
	t.Helper()
	test, err := litmus.SuiteTest(name)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := core.Convert(test)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func targetCounter(t *testing.T, pt *core.PerpetualTest) *core.Counter {
	t.Helper()
	c, err := core.NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLitmus7HistogramTotals(t *testing.T) {
	test, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	res, err := RunLitmus7(test, n, sim.ModeUser, test.AllOutcomes(), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range res.Histogram {
		total += c
	}
	if total != n {
		t.Errorf("histogram total = %d, want %d", total, n)
	}
	// The outcome space partitions iterations, so the outcome counts also
	// sum to N.
	var ocTotal int64
	for _, c := range res.OutcomeCounts {
		ocTotal += c
	}
	if ocTotal != n {
		t.Errorf("outcomes-of-interest total = %d, want %d", ocTotal, n)
	}
	if res.Ticks <= 0 {
		t.Error("no simulated time accounted")
	}
}

func TestLitmus7MemConditions(t *testing.T) {
	// coww's target (final x=1 after storing 1 then 2) must never occur;
	// its complement (final x=2 with the read seeing 2) must occur.
	var coww *litmus.Test
	for _, nc := range litmus.NonConvertible() {
		if nc.Name == "coww" {
			coww = nc
		}
	}
	if coww == nil {
		t.Fatal("coww not found")
	}
	possible := litmus.Outcome{Conds: []litmus.Cond{{Loc: "x", Value: 2}}}
	res, err := RunLitmus7(coww, 500, sim.ModeUser, []litmus.Outcome{possible}, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.TargetCount != 0 {
		t.Errorf("coww forbidden final state observed %d times", res.TargetCount)
	}
	if res.OutcomeCounts[0] == 0 {
		t.Error("final x=2 never observed in 500 iterations")
	}
}

func TestLitmus7RejectsBadOutcome(t *testing.T) {
	test, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	bad := litmus.Outcome{Conds: []litmus.Cond{{Thread: 7, Reg: 0, Value: 0}}}
	if _, err := RunLitmus7(test, 10, sim.ModeUser, []litmus.Outcome{bad}, sim.DefaultConfig()); err == nil {
		t.Error("out-of-range outcome accepted")
	}
	badLoc := litmus.Outcome{Conds: []litmus.Cond{{Loc: "zz", Value: 0}}}
	if _, err := RunLitmus7(test, 10, sim.ModeUser, []litmus.Outcome{badLoc}, sim.DefaultConfig()); err == nil {
		t.Error("unknown-location outcome accepted")
	}
}

// TestNoFalsePositives is the paper's central soundness claim (Figure 9,
// red X tests): for every Table II test whose target x86-TSO forbids,
// neither litmus7 in any mode nor PerpLE with either counter may ever
// report the target.
func TestNoFalsePositives(t *testing.T) {
	iters := 400
	if testing.Short() {
		iters = 100
	}
	for _, e := range litmus.ForbiddenSuite() {
		e := e
		t.Run(e.Test.Name, func(t *testing.T) {
			for _, mode := range sim.Modes {
				res, err := RunLitmus7(e.Test, iters, mode, nil, sim.DefaultConfig().WithSeed(21))
				if err != nil {
					t.Fatal(err)
				}
				if res.TargetCount != 0 {
					t.Errorf("litmus7 %v observed forbidden target %d times", mode, res.TargetCount)
				}
			}
			pt, err := core.Convert(e.Test)
			if err != nil {
				t.Fatal(err)
			}
			pres, err := RunPerpLE(pt, targetCounter(t, pt), iters,
				PerpLEOptions{Exhaustive: true, Heuristic: true}, sim.DefaultConfig().WithSeed(22))
			if err != nil {
				t.Fatal(err)
			}
			if got := pres.Exhaustive.Counts[0]; got != 0 {
				t.Errorf("PerpLE exhaustive counted forbidden target %d times", got)
			}
			if got := pres.Heuristic.Counts[0]; got != 0 {
				t.Errorf("PerpLE heuristic counted forbidden target %d times", got)
			}
		})
	}
}

// TestPerpLEExposesAllAllowedTargets mirrors Figure 9's headline: PerpLE
// with the exhaustive counter observes the target outcome of every test
// x86-TSO allows.
func TestPerpLEExposesAllAllowedTargets(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 600
	}
	for _, e := range litmus.AllowedSuite() {
		e := e
		t.Run(e.Test.Name, func(t *testing.T) {
			pt, err := core.Convert(e.Test)
			if err != nil {
				t.Fatal(err)
			}
			// Cap the cubic frame space of the TL=3 tests; the paper makes
			// the same practicality observation in Section VII-B.
			cap := 0
			if pt.TL() >= 3 {
				cap = 400
			}
			pres, err := RunPerpLE(pt, targetCounter(t, pt), iters,
				PerpLEOptions{Exhaustive: true, Heuristic: true, ExhaustiveCap: cap}, sim.DefaultConfig().WithSeed(31))
			if err != nil {
				t.Fatal(err)
			}
			if pres.Exhaustive.Counts[0] == 0 {
				t.Errorf("exhaustive counter found no target occurrences in %d iterations", iters)
			}
			if cap == 0 && pres.Heuristic.Counts[0] > pres.Exhaustive.Counts[0] {
				t.Errorf("heuristic count %d exceeds exhaustive %d",
					pres.Heuristic.Counts[0], pres.Exhaustive.Counts[0])
			}
		})
	}
}

// TestHeuristicAccuracy reproduces Section VII-D: on the same run data,
// whenever the exhaustive counter finds the target, the heuristic finds
// it too (not necessarily the same number of times).
func TestHeuristicAccuracy(t *testing.T) {
	iters := 2000
	if testing.Short() {
		iters = 600
	}
	for _, e := range litmus.AllowedSuite() {
		pt, err := core.Convert(e.Test)
		if err != nil {
			t.Fatal(err)
		}
		cap := 0
		if pt.TL() >= 3 {
			cap = 400
		}
		pres, err := RunPerpLE(pt, targetCounter(t, pt), iters,
			PerpLEOptions{Exhaustive: true, Heuristic: true, ExhaustiveCap: cap}, sim.DefaultConfig().WithSeed(37))
		if err != nil {
			t.Fatal(err)
		}
		if pres.Exhaustive.Counts[0] > 0 && pres.Heuristic.Counts[0] == 0 {
			t.Errorf("%s: exhaustive found %d occurrences, heuristic found none",
				e.Test.Name, pres.Exhaustive.Counts[0])
		}
	}
}

func TestPerpLEOptionsValidation(t *testing.T) {
	pt := mustPerp(t, "sb")
	if _, err := RunPerpLE(pt, targetCounter(t, pt), 10, PerpLEOptions{}, sim.DefaultConfig()); err == nil {
		t.Error("no-op options accepted")
	}
}

func TestPerpLEExhaustiveCap(t *testing.T) {
	pt := mustPerp(t, "sb")
	c := targetCounter(t, pt)
	res, err := RunPerpLE(pt, c, 200, PerpLEOptions{Exhaustive: true, ExhaustiveCap: 50}, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExhaustiveN != 50 {
		t.Errorf("ExhaustiveN = %d, want 50", res.ExhaustiveN)
	}
	if res.Exhaustive.Frames != 50*50 {
		t.Errorf("frames = %d, want 2500", res.Exhaustive.Frames)
	}
}

func TestPerpLETicksAccounting(t *testing.T) {
	pt := mustPerp(t, "sb")
	c := targetCounter(t, pt)
	res, err := RunPerpLE(pt, c, 500, PerpLEOptions{Exhaustive: true, Heuristic: true}, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.ExhCountTicks <= res.HeurCountTicks {
		t.Errorf("exhaustive counting (%d ticks) should cost more than heuristic (%d)",
			res.ExhCountTicks, res.HeurCountTicks)
	}
	if res.TotalTicksExhaustive() != res.ExecTicks+res.ExhCountTicks {
		t.Error("exhaustive total mismatch")
	}
	if res.TotalTicksHeuristic() != res.ExecTicks+res.HeurCountTicks {
		t.Error("heuristic total mismatch")
	}
}

func TestMeasureSkew(t *testing.T) {
	pt := mustPerp(t, "sb")
	c := targetCounter(t, pt)
	res, err := RunPerpLE(pt, c, 20000, PerpLEOptions{Heuristic: true, KeepBufs: true}, sim.DefaultConfig().WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	samples := MeasureSkew(pt, res.Bufs)
	if len(samples) == 0 {
		t.Fatal("no skew samples")
	}
	// Samples must be self-consistent and from cross-thread observations.
	var negative, positive int
	for _, s := range samples {
		if s.Skew != s.N-s.M {
			t.Fatalf("inconsistent sample %+v", s)
		}
		if s.Observer == s.Storer {
			t.Fatalf("self-observation %+v", s)
		}
		if s.Skew < 0 {
			negative++
		} else if s.Skew > 0 {
			positive++
		}
	}
	// The skew distribution is two-sided (threads run both ahead and
	// behind; Figure 12).
	if negative == 0 || positive == 0 {
		t.Errorf("one-sided skew distribution: %d negative, %d positive", negative, positive)
	}
	// Filtering by pair keeps only matching samples.
	vals := SkewValues(samples, 0, 1)
	if len(vals) == 0 {
		t.Error("no samples for observer 0 / storer 1")
	}
	if len(SkewValues(samples, -1, -1)) != len(samples) {
		t.Error("unfiltered SkewValues dropped samples")
	}
}

func TestOutcomeKey(t *testing.T) {
	key := OutcomeKey([][]int64{{1, 0}, {2}})
	if key != "1,0,|2,|" {
		t.Errorf("OutcomeKey = %q", key)
	}
}
