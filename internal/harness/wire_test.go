package harness

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"reflect"
	"testing"
)

func TestWireRoundTrip(t *testing.T) {
	in := &Litmus7Result{
		N:           5000,
		TargetCount: 42,
		Ticks:       123456,
		Histogram:   map[string]int64{"0;1;": 4958, "0;0;": 42},
	}
	data, err := EncodeWire(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Litmus7Result
	if err := DecodeWire(bytes.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	if out.N != in.N || out.TargetCount != in.TargetCount || out.Ticks != in.Ticks ||
		!reflect.DeepEqual(out.Histogram, in.Histogram) {
		t.Fatalf("round trip mismatch: got %+v, want %+v", out, in)
	}
}

func TestWireCompresses(t *testing.T) {
	// A realistic histogram payload must come out smaller than its plain
	// JSON; that shrinkage is the reason the upload path gzips at all.
	hist := map[string]int64{}
	for i := 0; i < 500; i++ {
		hist[OutcomeKey([][]int64{{int64(i)}, {int64(i % 7)}})] = int64(i)
	}
	data, err := EncodeWire(hist)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]int64
	if err := DecodeWire(bytes.NewReader(data), &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, hist) {
		t.Fatal("histogram did not survive the round trip")
	}
	if plain := len(mustJSON(t, hist)); len(data) >= plain {
		t.Fatalf("wire payload %dB not smaller than plain JSON %dB", len(data), plain)
	}
}

func TestDecodeWireRejectsGarbage(t *testing.T) {
	if err := DecodeWire(bytes.NewReader([]byte("not gzip")), &struct{}{}); err == nil {
		t.Fatal("DecodeWire accepted non-gzip input")
	}
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte(`{"a":1} {"b":2}`))
	zw.Close()
	var v map[string]int64
	if err := DecodeWire(&buf, &v); err == nil {
		t.Fatal("DecodeWire accepted trailing data")
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
