package harness

import (
	"strings"
	"testing"

	"perple/internal/litmus"
	"perple/internal/sim"
)

// TestBatchVerifyDoesNotPerturbResults: a verified batch must produce
// bit-identical histograms and tallies to an unverified batch with the
// same arguments — verification only observes.
func TestBatchVerifyDoesNotPerturbResults(t *testing.T) {
	tc, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig().WithSeed(11)
	plain, err := RunLitmus7Batch(tc, 2000, sim.ModeUser, nil, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	verified, err := RunLitmus7BatchVerify(tc, 2000, sim.ModeUser, nil, cfg, 3, TraceVerify{Every: 2})
	if err != nil {
		t.Fatal(err)
	}
	if verified.TargetCount != plain.TargetCount || verified.Ticks != plain.Ticks {
		t.Fatalf("tallies perturbed: target %d vs %d, ticks %d vs %d",
			verified.TargetCount, plain.TargetCount, verified.Ticks, plain.Ticks)
	}
	if len(verified.Histogram) != len(plain.Histogram) {
		t.Fatalf("histogram size perturbed: %d vs %d", len(verified.Histogram), len(plain.Histogram))
	}
	for k, v := range plain.Histogram {
		if verified.Histogram[k] != v {
			t.Fatalf("histogram[%q] perturbed: %d vs %d", k, verified.Histogram[k], v)
		}
	}
	if verified.TracesVerified == 0 {
		t.Fatal("no traces verified")
	}
	if verified.TraceViolations != 0 {
		t.Fatalf("TSO machine produced %d trace violations:\n%s",
			verified.TraceViolations, strings.Join(verified.TraceReports, "\n"))
	}
	if plain.TracesVerified != 0 || plain.TraceReports != nil {
		t.Fatal("unverified batch carries verification data")
	}
}

// TestBatchVerifyDeterministic: equal arguments give equal tallies and
// reports regardless of goroutine scheduling.
func TestBatchVerifyDeterministic(t *testing.T) {
	tc, err := litmus.SuiteTest("mp")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sim.Preset("pso")
	if err != nil {
		t.Fatal(err)
	}
	tv := TraceVerify{Every: 1}
	a, err := RunLitmus7BatchVerify(tc, 6000, sim.ModeTimebase, nil, cfg, 4, tv)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLitmus7BatchVerify(tc, 6000, sim.ModeTimebase, nil, cfg, 4, tv)
	if err != nil {
		t.Fatal(err)
	}
	if a.TracesVerified != b.TracesVerified || a.TraceViolations != b.TraceViolations {
		t.Fatalf("tallies differ: %d/%d vs %d/%d",
			a.TracesVerified, a.TraceViolations, b.TracesVerified, b.TraceViolations)
	}
	if len(a.TraceReports) != len(b.TraceReports) {
		t.Fatalf("report counts differ: %d vs %d", len(a.TraceReports), len(b.TraceReports))
	}
	for i := range a.TraceReports {
		if a.TraceReports[i] != b.TraceReports[i] {
			t.Fatalf("report %d differs", i)
		}
	}
}

// TestBatchVerifyDetectsPSO: the fault-injection guarantee at the
// harness level — a PSO machine under TSO verification must surface
// violations with capped, rendered reports.
func TestBatchVerifyDetectsPSO(t *testing.T) {
	tc, err := litmus.SuiteTest("mp")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := sim.Preset("pso")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLitmus7BatchVerify(tc, 8000, sim.ModeTimebase, nil, cfg, 2, TraceVerify{Every: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceViolations == 0 {
		t.Fatal("PSO machine produced no trace violations under TSO verification")
	}
	if len(res.TraceReports) == 0 || len(res.TraceReports) > DefaultTraceReports {
		t.Fatalf("report cap broken: %d reports", len(res.TraceReports))
	}
	if !strings.Contains(res.TraceReports[0], "trace violation") {
		t.Fatalf("report not rendered:\n%s", res.TraceReports[0])
	}
	if res.TracesVerified != 8000 {
		t.Fatalf("TracesVerified = %d, want 8000", res.TracesVerified)
	}
}

// TestMergeFoldsTraceTallies: shard merge sums counts and caps reports.
func TestMergeFoldsTraceTallies(t *testing.T) {
	tc, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	mk := func(viol int64, reps int) *Litmus7Result {
		r := &Litmus7Result{Test: tc, Mode: sim.ModeUser, Histogram: map[string]int64{},
			TracesVerified: 10, TraceViolations: viol, TraceVerifyNs: 5}
		for i := 0; i < reps; i++ {
			r.TraceReports = append(r.TraceReports, "report")
		}
		return r
	}
	a := mk(2, 2)
	b := mk(3, 3)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.TracesVerified != 20 || a.TraceViolations != 5 || a.TraceVerifyNs != 10 {
		t.Fatalf("merge tallies wrong: %d/%d/%d", a.TracesVerified, a.TraceViolations, a.TraceVerifyNs)
	}
	if len(a.TraceReports) != DefaultTraceReports {
		t.Fatalf("merged reports = %d, want cap %d", len(a.TraceReports), DefaultTraceReports)
	}
}

func TestSetTraceVerifyValidation(t *testing.T) {
	tc, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := sim.Compile(tc)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := NewLitmus7Runner(ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lr.SetTraceVerify(TraceVerify{Every: -1}); err == nil {
		t.Fatal("negative stride accepted")
	}
	if err := lr.SetTraceVerify(TraceVerify{Every: 1, SC: true}); err != nil {
		t.Fatalf("SC verification rejected: %v", err)
	}
	if err := lr.SetTraceVerify(TraceVerify{}); err != nil {
		t.Fatalf("disable rejected: %v", err)
	}
}
