package harness

import (
	"testing"

	"perple/internal/analysis/hotpath"
	"perple/internal/sim"
)

// TestHotpathAllocs verifies this package's //perple:hotpath
// annotations (the outcomeHist interner) against a warmed
// Litmus7Runner: the whole tally loop — observeBlock, the hash probe,
// in-place row comparison, interning — must run allocation-free once
// the run's outcomes have been seen. TestLitmus7RunnerSteadyStateAllocs
// asserts the same property end to end; this sweep additionally pins
// the annotation/exerciser bijection so new hot functions cannot dodge
// coverage.
func TestHotpathAllocs(t *testing.T) {
	test := mustSuite(t, "sb")
	ct, err := sim.Compile(test)
	if err != nil {
		t.Fatal(err)
	}
	lr, err := NewLitmus7Runner(ct, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.DefaultConfig().WithSeed(4)
	hotpath.Verify(t, ".", map[string]func(){
		"harness-litmus7-run": func() {
			if _, err := lr.Run(300, sim.ModeUser, cfg); err != nil {
				t.Fatal(err)
			}
		},
	})
}
