package harness

import (
	"math/rand"
	"reflect"
	"testing"

	"perple/internal/core"
	"perple/internal/litmus"
	"perple/internal/sim"
)

// litmus7Shards runs k independent shards of the same test under
// distinct seeds, the way a campaign splits an iteration budget.
func litmus7Shards(t *testing.T, k, n int) []*Litmus7Result {
	t.Helper()
	test, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*Litmus7Result, k)
	for i := range shards {
		res, err := RunLitmus7(test, n, sim.ModeTimebase, test.AllOutcomes(), sim.DefaultConfig().WithSeed(int64(i)+100))
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = res
	}
	return shards
}

func cloneLitmus7(r *Litmus7Result) *Litmus7Result {
	c := *r
	c.Histogram = make(map[string]int64, len(r.Histogram))
	for k, v := range r.Histogram {
		c.Histogram[k] = v
	}
	c.OutcomeCounts = append([]int64(nil), r.OutcomeCounts...)
	return &c
}

// mergeLitmus7Tree merges the shard slice in a random binary grouping,
// exercising associativity (not just left-fold order).
func mergeLitmus7Tree(t *testing.T, rng *rand.Rand, shards []*Litmus7Result) *Litmus7Result {
	t.Helper()
	if len(shards) == 1 {
		return cloneLitmus7(shards[0])
	}
	cut := 1 + rng.Intn(len(shards)-1)
	left := mergeLitmus7Tree(t, rng, shards[:cut])
	right := mergeLitmus7Tree(t, rng, shards[cut:])
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	return left
}

// TestLitmus7MergeOrderInvariant is the merge property test: any
// permutation and any grouping of per-shard results merges to identical
// campaign totals.
func TestLitmus7MergeOrderInvariant(t *testing.T) {
	shards := litmus7Shards(t, 6, 300)
	rng := rand.New(rand.NewSource(42))

	baseline := mergeLitmus7Tree(t, rng, shards)
	var wantN int
	for _, s := range shards {
		wantN += s.N
	}
	if baseline.N != wantN {
		t.Fatalf("merged N = %d, want %d", baseline.N, wantN)
	}

	for round := 0; round < 25; round++ {
		perm := rng.Perm(len(shards))
		shuffled := make([]*Litmus7Result, len(shards))
		for i, p := range perm {
			shuffled[i] = shards[p]
		}
		got := mergeLitmus7Tree(t, rng, shuffled)
		if got.TargetCount != baseline.TargetCount || got.N != baseline.N || got.Ticks != baseline.Ticks {
			t.Fatalf("round %d: totals differ: target %d/%d, n %d/%d, ticks %d/%d",
				round, got.TargetCount, baseline.TargetCount, got.N, baseline.N, got.Ticks, baseline.Ticks)
		}
		if !reflect.DeepEqual(got.Histogram, baseline.Histogram) {
			t.Fatalf("round %d: histograms differ after reordering", round)
		}
		if !reflect.DeepEqual(got.OutcomeCounts, baseline.OutcomeCounts) {
			t.Fatalf("round %d: outcome counts differ after reordering", round)
		}
	}
}

func TestLitmus7MergeRejectsMismatch(t *testing.T) {
	shards := litmus7Shards(t, 1, 50)
	other, err := litmus.SuiteTest("mp")
	if err != nil {
		t.Fatal(err)
	}
	otherRes, err := RunLitmus7(other, 50, sim.ModeTimebase, nil, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := cloneLitmus7(shards[0]).Merge(otherRes); err == nil {
		t.Fatal("merging results of different tests should fail")
	}
	modeRes, err := RunLitmus7(shards[0].Test, 50, sim.ModeUser, shards[0].Test.AllOutcomes(), sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := cloneLitmus7(shards[0]).Merge(modeRes); err == nil {
		t.Fatal("merging results of different modes should fail")
	}
}

func perpleShards(t *testing.T, k, n int) []*PerpLEResult {
	t.Helper()
	test, err := litmus.SuiteTest("sb")
	if err != nil {
		t.Fatal(err)
	}
	pt, err := core.Convert(test)
	if err != nil {
		t.Fatal(err)
	}
	counter, err := core.NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]*PerpLEResult, k)
	for i := range shards {
		res, err := RunPerpLE(pt, counter, n, PerpLEOptions{Exhaustive: true, Heuristic: true},
			sim.DefaultConfig().WithSeed(int64(i)+500))
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = res
	}
	return shards
}

func clonePerpLE(r *PerpLEResult) *PerpLEResult {
	c := *r
	if r.Exhaustive != nil {
		cr := *r.Exhaustive
		cr.Counts = append([]int64(nil), r.Exhaustive.Counts...)
		c.Exhaustive = &cr
	}
	if r.Heuristic != nil {
		cr := *r.Heuristic
		cr.Counts = append([]int64(nil), r.Heuristic.Counts...)
		c.Heuristic = &cr
	}
	return &c
}

func mergePerpLETree(t *testing.T, rng *rand.Rand, shards []*PerpLEResult) *PerpLEResult {
	t.Helper()
	if len(shards) == 1 {
		return clonePerpLE(shards[0])
	}
	cut := 1 + rng.Intn(len(shards)-1)
	left := mergePerpLETree(t, rng, shards[:cut])
	right := mergePerpLETree(t, rng, shards[cut:])
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	return left
}

// TestPerpLEMergeOrderInvariant is the PerpLE half of the merge property
// test: counter tallies and time accounts are permutation- and
// grouping-invariant.
func TestPerpLEMergeOrderInvariant(t *testing.T) {
	shards := perpleShards(t, 5, 200)
	rng := rand.New(rand.NewSource(7))
	baseline := mergePerpLETree(t, rng, shards)

	for round := 0; round < 25; round++ {
		perm := rng.Perm(len(shards))
		shuffled := make([]*PerpLEResult, len(shards))
		for i, p := range perm {
			shuffled[i] = shards[p]
		}
		got := mergePerpLETree(t, rng, shuffled)
		if got.N != baseline.N || got.ExecTicks != baseline.ExecTicks ||
			got.ExhCountTicks != baseline.ExhCountTicks || got.HeurCountTicks != baseline.HeurCountTicks {
			t.Fatalf("round %d: tick totals differ after reordering", round)
		}
		if !reflect.DeepEqual(got.Exhaustive.Counts, baseline.Exhaustive.Counts) ||
			got.Exhaustive.Frames != baseline.Exhaustive.Frames {
			t.Fatalf("round %d: exhaustive counts differ after reordering", round)
		}
		if !reflect.DeepEqual(got.Heuristic.Counts, baseline.Heuristic.Counts) ||
			got.Heuristic.Frames != baseline.Heuristic.Frames {
			t.Fatalf("round %d: heuristic counts differ after reordering", round)
		}
	}
}

func TestPerpLEMergeRejectsCounterMismatch(t *testing.T) {
	full := perpleShards(t, 1, 100)[0]
	heurOnly := clonePerpLE(full)
	heurOnly.Exhaustive = nil
	if err := clonePerpLE(full).Merge(heurOnly); err == nil {
		t.Fatal("merging exhaustive+heuristic with heuristic-only should fail")
	}
}
