package core

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"perple/internal/litmus"
)

// parseGo syntax-checks a generated source file (with helpers appended
// when the file references them).
func parseGo(t *testing.T, name, src string) {
	t.Helper()
	if strings.Contains(src, "floorDiv") || strings.Contains(src, "ceilDiv") ||
		strings.Contains(src, "rfBound") || strings.Contains(src, "frBound") {
		src = AppendHelpers(src)
	}
	fset := token.NewFileSet()
	if _, err := parser.ParseFile(fset, name, src, 0); err != nil {
		t.Errorf("%s: generated code does not parse: %v\n%s", name, err, src)
	}
}

func TestGeneratedFilesSB(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	files := GeneratedFiles(pt, pos)
	for _, want := range []string{"sb_t0.s", "sb_t1.s", "sb_count.go", "sb_counth.go", "sb_params.txt"} {
		if _, ok := files[want]; !ok {
			t.Errorf("missing generated file %s (have %v)", want, SortedFileNames(files))
		}
	}
	parseGo(t, "sb_count.go", files["sb_count.go"])
	parseGo(t, "sb_counth.go", files["sb_counth.go"])

	// The exhaustive counter must loop over both frame indices.
	if !strings.Contains(files["sb_count.go"], "for n0 :=") ||
		!strings.Contains(files["sb_count.go"], "for n1 :=") {
		t.Errorf("exhaustive counter missing frame loops:\n%s", files["sb_count.go"])
	}
	// The heuristic counter must loop over the anchor only.
	if strings.Contains(files["sb_counth.go"], "for n1 :=") {
		t.Errorf("heuristic counter loops over non-anchor index:\n%s", files["sb_counth.go"])
	}
	// Figure 6's p_out_0 inequalities appear in the exhaustive source.
	if !strings.Contains(files["sb_count.go"], "buf0[n0] <= n1") ||
		!strings.Contains(files["sb_count.go"], "buf1[n1] <= n0") {
		t.Errorf("exhaustive counter missing Figure 6 conditions:\n%s", files["sb_count.go"])
	}
}

func TestGenerateParams(t *testing.T) {
	pt := mustConvert(t, "mp")
	params := GenerateParams(pt)
	if !strings.Contains(params, "t0_reads 0") || !strings.Contains(params, "t1_reads 2") {
		t.Errorf("params file wrong:\n%s", params)
	}
}

func TestGenerateAsmSB(t *testing.T) {
	pt := mustConvert(t, "sb")
	asm := GenerateAsm(pt, 0)
	for _, want := range []string{
		"thread0_loop:",
		"ADD   RAX, 1", // sequence n+1
		"MOV   [x], RAX",
		"MOV   RBX, [y]",
		"MOV   [RDI + 8*RAX + 0], RBX", // buf spill
		"JL    thread0_loop",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("thread 0 asm missing %q:\n%s", want, asm)
		}
	}
}

func TestGenerateAsmMultiplier(t *testing.T) {
	pt := mustConvert(t, "amd3")
	asm := GenerateAsm(pt, 0)
	// amd3 thread 0 stores 2n+1 and 2n+2 to x: the k=2 multiply must
	// appear.
	if !strings.Contains(asm, "IMUL  RAX, 2") {
		t.Errorf("amd3 asm missing k=2 multiply:\n%s", asm)
	}
}

func TestGenerateAsmFence(t *testing.T) {
	pt := mustConvert(t, "amd5")
	asm := GenerateAsm(pt, 0)
	if !strings.Contains(asm, "MFENCE") {
		t.Errorf("amd5 asm missing MFENCE:\n%s", asm)
	}
}

// TestGeneratedGoParsesForWholeSuite: every suite test's generated
// counters (over the full outcome space) must be syntactically valid Go.
func TestGeneratedGoParsesForWholeSuite(t *testing.T) {
	for _, e := range litmus.Suite() {
		pt, err := Convert(e.Test)
		if err != nil {
			t.Fatal(err)
		}
		pos, err := ConvertAllOutcomes(pt)
		if err != nil {
			t.Fatal(err)
		}
		files := GeneratedFiles(pt, pos)
		for fname, src := range files {
			if strings.HasSuffix(fname, ".go") && !strings.Contains(fname, "helpers") {
				parseGo(t, e.Test.Name+"/"+fname, src)
			}
		}
	}
}

// TestGeneratedCountMatchesInterpreterSB executes the semantics of the
// generated code indirectly: the generated source for sb must encode the
// same conditions the interpreted Counter evaluates, so we check the
// heuristic source contains Figure 8's pin and comparisons.
func TestGeneratedCountHContainsPins(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	src := GenerateCountGo(pt, pos, true)
	if !strings.Contains(src, "rf pin") && !strings.Contains(src, "fr pin") {
		t.Errorf("heuristic source has no pin steps:\n%s", src)
	}
	// Figure 8 substitutes thread 1's index from buf0; the generated
	// source must index buf1 with the derived m1.
	if !strings.Contains(src, "buf1[m1]") {
		t.Errorf("heuristic source does not index buf1 with pinned m1:\n%s", src)
	}
}

func TestSanitizeIdent(t *testing.T) {
	if got := sanitizeIdent("mp+staleld"); got != "mp_staleld" {
		t.Errorf("sanitizeIdent = %q", got)
	}
	if got := sanitizeIdent("rwc-unfenced"); got != "rwc_unfenced" {
		t.Errorf("sanitizeIdent = %q", got)
	}
}

func TestNeedsHelpers(t *testing.T) {
	// sb is single-sequence with no existential variables: its generated
	// counters are pure inequalities needing no helpers.
	sbPT := mustConvert(t, "sb")
	sbPos, err := ConvertAllOutcomes(sbPT)
	if err != nil {
		t.Fatal(err)
	}
	if NeedsHelpers(sbPos) {
		t.Error("sb should not need helpers")
	}
	// amd3 has k_x = 2: decoding helpers are required.
	pt := mustConvert(t, "amd3")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	if !NeedsHelpers(pos) {
		t.Error("amd3 has multi-sequence constraints; helpers should be needed")
	}
	files := GeneratedFiles(pt, pos)
	if _, ok := files["amd3_helpers.go"]; !ok {
		t.Error("helpers file missing")
	}
	parseGo(t, "amd3_helpers.go", files["amd3_helpers.go"])
}

func TestSortedFileNames(t *testing.T) {
	files := map[string]string{"b.go": "", "a.s": "", "c.txt": ""}
	got := SortedFileNames(files)
	if len(got) != 3 || got[0] != "a.s" || got[1] != "b.go" || got[2] != "c.txt" {
		t.Errorf("sorted names = %v", got)
	}
}

func TestPinAndRelStrings(t *testing.T) {
	for k := PinRF; k <= PinDiagonal; k++ {
		if k.String() == "" {
			t.Errorf("pin kind %d unnamed", int(k))
		}
	}
	for r := RF; r <= EQZero; r++ {
		if r.String() == "" {
			t.Errorf("rel %d unnamed", int(r))
		}
	}
}
