package core

import (
	"context"
	"math"
	"math/bits"
)

// This file implements the factorized exhaustive counter: the same exact
// per-outcome tallies as CountExhaustive's N^TL odometer, computed in
// near-linear work by exploiting the product structure of perpetual
// outcomes.
//
// A converted outcome is a conjunction of constraints, each coupling at
// most two frame variables: a clause either mentions a single load
// thread (an EQZero check, a self-referential rf/fr bound, or an
// existential store-only thread observed from one load thread only), or
// it relates exactly two load threads (a cross rf/fr bound, or an
// existential thread observed from two load threads, whose interval
// intersection couples them). The satisfying frame set is therefore a
// "product-form" set: per-thread index bitsets joined by per-pair 0/1
// matrices. Counting such a set needs no frame walk:
//
//   - no pair matrices: the set is a rectangle; the count is the product
//     of per-thread popcounts (the ISSUE's bitset-rectangle case);
//   - TL ≤ 3 with pair matrices: one pass over the first thread's
//     indices, intersecting matrix rows word-wise and popcounting —
//     O(N²/64) per outer index at worst, against the odometer's N^TL
//     frame evaluations.
//
// First-match-wins multi-outcome semantics are recovered by
// inclusion–exclusion over the earlier outcomes' product-form sets:
// counts[i] = Σ_{S ⊆ {0..i-1}} (−1)^|S| · |A_i ∩ ∩_{j∈S} A_j|, where
// every intersection is again product-form (bitsets AND per thread,
// matrices AND per pair) and subtrees whose running intersection is
// empty are pruned — disjoint outcomes, the common case, cost one term.
//
// Shapes outside the product form fall back to the odometer: an
// existential thread observed from three or more load threads (a
// genuinely ternary clause), cross constraints with TL ≥ 4 (the counting
// pass is specialized to TL ≤ 3), outcome sets too large for
// inclusion–exclusion, and pair-matrix footprints past the memory
// guard. CountExhaustive remains the reference implementation; the
// differential tests in factor_test.go hold the two bit-for-bit equal.

// maxFactorOutcomes caps the outcome-set size the planner accepts, and
// maxFactorIETerms bounds the inclusion–exclusion work per outcome at
// run time: disjoint outcome chains (every full ConvertAllOutcomes set —
// distinct concrete register assignments) prune to O(k) live terms, but
// adversarially overlapping sets degrade toward 2^(k-1) terms, so the
// count aborts to the odometer once the term budget is spent.
const (
	maxFactorOutcomes = 256
	maxFactorIETerms  = 1 << 14
)

// maxFactorMatrixBytes bounds the total pair-matrix footprint; counts
// past it fall back to the odometer rather than allocating gigabytes.
const maxFactorMatrixBytes = 64 << 20

// ----- bitsets and bit matrices -----

type bitset []uint64

func bitsetWords(n int) int { return (n + 63) / 64 }

func (b bitset) set(i int)      { b[i>>6] |= 1 << uint(i&63) }
func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) popcount() int64 {
	var c int64
	for _, w := range b {
		c += int64(bits.OnesCount64(w))
	}
	return c
}

func popcountAnd(a, b bitset) int64 {
	var c int64
	for i, w := range a {
		c += int64(bits.OnesCount64(w & b[i]))
	}
	return c
}

func andInto(dst, a, b bitset) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// bitMatrix is an n×n 0/1 matrix over frame-index pairs, row-major with
// word-aligned rows.
type bitMatrix struct {
	n     int
	words int
	rows  []uint64
}

func (m *bitMatrix) row(i int) bitset { return m.rows[i*m.words : (i+1)*m.words] }

// ----- per-outcome factorization plan (independent of N) -----

// pairSlot maps an ordered load-thread position pair to its matrix slot:
// (0,1)→0, (0,2)→1, (1,2)→2. Valid for TL ≤ 3.
func pairSlot(p, q int) int {
	if p == 0 {
		return q - 1 // (0,1)→0, (0,2)→1
	}
	return 2 // (1,2)
}

// outcomePlan classifies one outcome's constraints by the frame
// variables they couple. A nil plan means the outcome is not
// factorizable and the whole counter falls back to the odometer.
type outcomePlan struct {
	empty bool // Unsatisfiable: the empty set

	// refPos[ci] is the frame position of constraint ci's ref thread.
	refPos []int
	// Constraint indices local to one position (EQZero and self bounds).
	unaryEQ   [][]int
	unarySelf [][]int
	// Existential vars observed from exactly one position / one pair.
	unaryExist [][]int
	pairExist  [3][]int
	// Cross rf/fr constraints per pair slot.
	pairCross [3][]int
	// existCons[v] lists the constraint indices targeting exist var v.
	existCons map[int][]int

	hasPairs bool
}

// planOutcome builds the factorization plan, or nil when the outcome's
// clause shape is not thread-separable into unary and pairwise parts.
func planOutcome(pt *PerpetualTest, po *PerpetualOutcome) *outcomePlan {
	tl := pt.TL()
	plan := &outcomePlan{
		refPos:     make([]int, len(po.Constraints)),
		unaryEQ:    make([][]int, tl),
		unarySelf:  make([][]int, tl),
		unaryExist: make([][]int, tl),
		existCons:  map[int][]int{},
	}
	if po.Unsatisfiable {
		plan.empty = true
		return plan
	}
	pos := make(map[int]int, tl)
	for p, t := range pt.LoadThreads {
		pos[t] = p
	}
	isExist := map[int]bool{}
	for _, v := range po.ExistVars {
		isExist[v] = true
	}
	// existFrom[v] collects the distinct positions observing exist var v.
	existFrom := map[int][]int{}

	for ci := range po.Constraints {
		con := &po.Constraints[ci]
		rp, ok := pos[con.Ref.Thread]
		if !ok {
			return nil // load from a non-frame thread: cannot happen, bail safely
		}
		plan.refPos[ci] = rp
		switch {
		case con.Rel == EQZero:
			plan.unaryEQ[rp] = append(plan.unaryEQ[rp], ci)
		case isExist[con.Var]:
			plan.existCons[con.Var] = append(plan.existCons[con.Var], ci)
			seen := false
			for _, p := range existFrom[con.Var] {
				if p == rp {
					seen = true
					break
				}
			}
			if !seen {
				existFrom[con.Var] = append(existFrom[con.Var], rp)
			}
		case con.Var == con.Ref.Thread:
			plan.unarySelf[rp] = append(plan.unarySelf[rp], ci)
		default:
			// Cross bound between two load threads.
			vp, ok := pos[con.Var]
			if !ok || tl > 3 {
				return nil
			}
			p, q := rp, vp
			if p > q {
				p, q = q, p
			}
			s := pairSlot(p, q)
			plan.pairCross[s] = append(plan.pairCross[s], ci)
			plan.hasPairs = true
		}
	}

	for _, v := range po.ExistVars {
		from := existFrom[v]
		switch len(from) {
		case 0:
			// Exist vars always carry at least one constraint; defensive.
			return nil
		case 1:
			plan.unaryExist[from[0]] = append(plan.unaryExist[from[0]], v)
		case 2:
			if tl > 3 {
				return nil
			}
			p, q := from[0], from[1]
			if p > q {
				p, q = q, p
			}
			s := pairSlot(p, q)
			plan.pairExist[s] = append(plan.pairExist[s], v)
			plan.hasPairs = true
		default:
			// A genuinely ternary clause: not pairwise-decomposable.
			return nil
		}
	}
	return plan
}

// factorPlans builds (and caches) the per-outcome plans. ok is false
// when any outcome is outside the product form or the outcome set
// exceeds the inclusion–exclusion caps.
func (c *Counter) factorPlans() ([]*outcomePlan, bool) {
	if c.fplansBuilt {
		return c.fplans, c.fplansOK
	}
	c.fplansBuilt = true
	if len(c.outcomes) > maxFactorOutcomes {
		c.fplansOK = false
		return nil, false
	}
	plans := make([]*outcomePlan, len(c.outcomes))
	for i, po := range c.outcomes {
		p := planOutcome(c.pt, po)
		if p == nil {
			c.fplansOK = false
			return nil, false
		}
		plans[i] = p
	}
	c.fplans, c.fplansOK = plans, true
	return plans, true
}

// ----- per-run structures -----

// prodSet is a product-form frame set: per-position bitsets joined by
// per-pair bit matrices (nil = unconstrained pair).
type prodSet struct {
	empty bool
	unary []bitset
	pair  [3]*bitMatrix
}

// factorScratch holds every reusable buffer of the factorized pass; it
// lives on the Counter so steady-state counting does not allocate.
type factorScratch struct {
	n     int
	words int

	sets []prodSet // per outcome

	// Interval scratch, reused per outcome: ivLo/ivHi[k][i] is the
	// allowed target interval the k-th constraint of the current outcome
	// derives from its ref thread's iteration i.
	ivLo, ivHi [][]int64

	// DFS intersection stack for inclusion–exclusion, one prodSet per
	// depth, plus the row scratch of the counting loops.
	stack  []prodSet
	c1, c2 bitset
}

func resizeBitset(b bitset, words int) bitset {
	if cap(b) < words {
		return make(bitset, words)
	}
	b = b[:words]
	for i := range b {
		b[i] = 0
	}
	return b
}

func resizeInt64(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	return s[:n]
}

// buildStructures fills the per-outcome prodSets for this run's buffers.
// ok=false means the pair-matrix footprint tripped the memory guard.
func (c *Counter) buildStructures(bs *BufSet, plans []*outcomePlan) (*factorScratch, bool) {
	n := bs.N
	tl := c.pt.TL()
	words := bitsetWords(n)
	if c.fscratch == nil {
		c.fscratch = &factorScratch{}
	}
	sc := c.fscratch
	sc.n, sc.words = n, words

	// Memory guard on the total matrix footprint.
	var matBytes int64
	for _, plan := range plans {
		if plan.empty {
			continue
		}
		for s := 0; s < 3; s++ {
			if len(plan.pairCross[s]) > 0 || len(plan.pairExist[s]) > 0 {
				matBytes += int64(n) * int64(words) * 8
			}
		}
	}
	if matBytes > maxFactorMatrixBytes {
		return nil, false
	}

	if cap(sc.sets) < len(plans) {
		sets := make([]prodSet, len(plans))
		copy(sets, sc.sets)
		sc.sets = sets
	}
	sc.sets = sc.sets[:len(plans)]

	for oi, plan := range plans {
		set := &sc.sets[oi]
		set.empty = plan.empty
		if plan.empty {
			continue
		}
		po := c.outcomes[oi]

		// Interval arrays for every rf/fr constraint of this outcome:
		// the allowed target-iteration interval per ref-thread index.
		ncons := len(po.Constraints)
		if cap(sc.ivLo) < ncons {
			sc.ivLo = make([][]int64, ncons)
			sc.ivHi = make([][]int64, ncons)
		}
		sc.ivLo, sc.ivHi = sc.ivLo[:ncons], sc.ivHi[:ncons]
		for ci := range po.Constraints {
			con := &po.Constraints[ci]
			if con.Rel == EQZero {
				continue
			}
			lo := resizeInt64(sc.ivLo[ci], n)
			hi := resizeInt64(sc.ivHi[ci], n)
			rt := con.Ref.Thread
			stride := c.pt.Reads[rt]
			buf := bs.Bufs[rt]
			for i := 0; i < n; i++ {
				x := buf[stride*i+con.Ref.Slot]
				switch con.Rel {
				case RF:
					if ub, ok := con.rfBound(x); ok {
						lo[i], hi[i] = 0, ub
					} else {
						lo[i], hi[i] = 1, 0 // empty
					}
				case FR:
					if lb, ok := con.frBound(x); ok {
						lo[i], hi[i] = lb, math.MaxInt64
					} else {
						lo[i], hi[i] = 1, 0
					}
				}
			}
			sc.ivLo[ci], sc.ivHi[ci] = lo, hi
		}

		// Unary bitsets.
		if cap(set.unary) < tl {
			set.unary = make([]bitset, tl)
		}
		set.unary = set.unary[:tl]
		for p := 0; p < tl; p++ {
			ub := resizeBitset(set.unary[p], words)
			t := c.pt.LoadThreads[p]
			stride := c.pt.Reads[t]
			buf := bs.Bufs[t]
		unaryLoop:
			for i := 0; i < n; i++ {
				for _, ci := range plan.unaryEQ[p] {
					con := &po.Constraints[ci]
					if buf[stride*i+con.Ref.Slot] != 0 {
						continue unaryLoop
					}
				}
				for _, ci := range plan.unarySelf[p] {
					if int64(i) < sc.ivLo[ci][i] || int64(i) > sc.ivHi[ci][i] {
						continue unaryLoop
					}
				}
				for _, v := range plan.unaryExist[p] {
					lo, hi := int64(0), int64(n-1)
					for _, ci := range plan.existCons[v] {
						if l := sc.ivLo[ci][i]; l > lo {
							lo = l
						}
						if h := sc.ivHi[ci][i]; h < hi {
							hi = h
						}
					}
					if lo > hi {
						continue unaryLoop
					}
				}
				ub.set(i)
			}
			set.unary[p] = ub
		}

		// Pair matrices.
		for s := 0; s < 3; s++ {
			cross, exist := plan.pairCross[s], plan.pairExist[s]
			if len(cross) == 0 && len(exist) == 0 {
				set.pair[s] = nil
				continue
			}
			m := set.pair[s]
			if m == nil || cap(m.rows) < n*words {
				m = &bitMatrix{rows: make([]uint64, n*words)}
			}
			m.n, m.words = n, words
			m.rows = m.rows[:n*words]
			set.pair[s] = m
			p, q := pairPositions(s, tl)
			c.fillPairMatrix(m, sc, plan, oi, p, q, n)
		}
	}
	return sc, true
}

// pairPositions inverts pairSlot for the test's TL.
func pairPositions(s, tl int) (p, q int) {
	if tl == 2 {
		return 0, 1
	}
	switch s {
	case 0:
		return 0, 1
	case 1:
		return 0, 2
	default:
		return 1, 2
	}
}

// fillPairMatrix evaluates the pairwise clause of outcome oi for every
// (i, j) index pair of positions (p, q): cross bounds in either
// direction plus shared-existential interval intersection.
func (c *Counter) fillPairMatrix(m *bitMatrix, sc *factorScratch, plan *outcomePlan, oi, p, q, n int) {
	s := pairSlot(p, q)
	for i := 0; i < n; i++ {
		row := m.row(i)
		for w := range row {
			row[w] = 0
		}
		// Row-constant bounds: cross constraints whose ref is position p
		// restrict j to an interval for this whole row.
		jlo, jhi := int64(0), int64(n-1)
		for _, ci := range plan.pairCross[s] {
			if plan.refPos[ci] != p {
				continue
			}
			if l := sc.ivLo[ci][i]; l > jlo {
				jlo = l
			}
			if h := sc.ivHi[ci][i]; h < jhi {
				jhi = h
			}
		}
		if jlo > jhi {
			continue
		}
		for j := int(jlo); j <= int(jhi); j++ {
			ok := true
			for _, ci := range plan.pairCross[s] {
				if plan.refPos[ci] != q {
					continue
				}
				if int64(i) < sc.ivLo[ci][j] || int64(i) > sc.ivHi[ci][j] {
					ok = false
					break
				}
			}
			if ok {
				for _, v := range plan.pairExist[s] {
					lo, hi := int64(0), int64(n-1)
					for _, ci := range plan.existCons[v] {
						ref := i
						if plan.refPos[ci] == q {
							ref = j
						}
						if l := sc.ivLo[ci][ref]; l > lo {
							lo = l
						}
						if h := sc.ivHi[ci][ref]; h < hi {
							hi = h
						}
					}
					if lo > hi {
						ok = false
						break
					}
				}
			}
			if ok {
				row.set(j)
			}
		}
	}
}

// ----- counting product-form sets -----

// countProdSet counts the frames in a product-form set exactly.
func (sc *factorScratch) countProdSet(s *prodSet) int64 {
	if s.empty {
		return 0
	}
	tl := len(s.unary)
	hasPair := s.pair[0] != nil || s.pair[1] != nil || s.pair[2] != nil
	if !hasPair {
		total := int64(1)
		for _, ub := range s.unary {
			total = mulSat(total, ub.popcount())
			if total == 0 {
				return 0
			}
		}
		return total
	}
	switch tl {
	case 2:
		m := s.pair[0]
		var total int64
		u0, u1 := s.unary[0], s.unary[1]
		for i := 0; i < sc.n; i++ {
			if !u0.has(i) {
				continue
			}
			total += popcountAnd(m.row(i), u1)
		}
		return total
	case 3:
		m01, m02, m12 := s.pair[0], s.pair[1], s.pair[2]
		u0, u1, u2 := s.unary[0], s.unary[1], s.unary[2]
		sc.c1 = resizeBitset(sc.c1, sc.words)
		sc.c2 = resizeBitset(sc.c2, sc.words)
		var total int64
		for i0 := 0; i0 < sc.n; i0++ {
			if !u0.has(i0) {
				continue
			}
			c1 := u1
			if m01 != nil {
				andInto(sc.c1, m01.row(i0), u1)
				c1 = sc.c1
			}
			c2 := u2
			if m02 != nil {
				andInto(sc.c2, m02.row(i0), u2)
				c2 = sc.c2
			}
			if m12 == nil {
				total += mulSat(c1.popcount(), c2.popcount())
				continue
			}
			for w, word := range c1 {
				for word != 0 {
					i1 := w<<6 + bits.TrailingZeros64(word)
					word &= word - 1
					total += popcountAnd(m12.row(i1), c2)
				}
			}
		}
		return total
	default:
		// Unreachable: pairs imply TL ≤ 3 (enforced by planOutcome).
		return 0
	}
}

// intersectInto writes a ∩ b into dst, reusing dst's backing arrays.
func (sc *factorScratch) intersectInto(dst, a, b *prodSet) {
	dst.empty = a.empty || b.empty
	if dst.empty {
		return
	}
	tl := len(a.unary)
	if cap(dst.unary) < tl {
		dst.unary = make([]bitset, tl)
	}
	dst.unary = dst.unary[:tl]
	for p := 0; p < tl; p++ {
		dst.unary[p] = resizeBitset(dst.unary[p], sc.words)
		andInto(dst.unary[p], a.unary[p], b.unary[p])
	}
	for s := 0; s < 3; s++ {
		am, bm := a.pair[s], b.pair[s]
		switch {
		case am == nil && bm == nil:
			dst.pair[s] = nil
		default:
			m := dst.pair[s]
			if m == nil || cap(m.rows) < sc.n*sc.words {
				m = &bitMatrix{rows: make([]uint64, sc.n*sc.words)}
			}
			m.n, m.words = sc.n, sc.words
			m.rows = m.rows[:sc.n*sc.words]
			dst.pair[s] = m
			switch {
			case am == nil:
				copy(m.rows, bm.rows)
			case bm == nil:
				copy(m.rows, am.rows)
			default:
				for w := range m.rows {
					m.rows[w] = am.rows[w] & bm.rows[w]
				}
			}
		}
	}
}

// firstMatchCount computes the number of frames whose FIRST matching
// outcome is oi, by inclusion–exclusion over the earlier outcomes'
// sets. Zero-count subtrees are pruned (valid: intersections only
// shrink), so disjoint outcome chains cost O(oi) terms. ok=false means
// the overlap structure blew the term budget and the caller must fall
// back to the odometer.
func (sc *factorScratch) firstMatchCount(oi int) (int64, bool) {
	if cap(sc.stack) < oi+1 {
		st := make([]prodSet, oi+1)
		copy(st, sc.stack)
		sc.stack = st
	}
	sc.stack = sc.stack[:max(len(sc.stack), oi+1)]
	var total int64
	terms := 0
	var rec func(depth, nextJ int, cur *prodSet, sign int64) bool
	rec = func(depth, nextJ int, cur *prodSet, sign int64) bool {
		terms++
		if terms > maxFactorIETerms {
			return false
		}
		cnt := sc.countProdSet(cur)
		if cnt == 0 {
			return true
		}
		total += sign * cnt
		for j := nextJ; j < oi; j++ {
			child := &sc.stack[depth]
			sc.intersectInto(child, cur, &sc.sets[j])
			if !rec(depth+1, j+1, child, -sign) {
				return false
			}
		}
		return true
	}
	if !rec(0, 0, &sc.sets[oi], 1) {
		return 0, false
	}
	return total, true
}

// mulSat multiplies non-negative counts, saturating at MaxInt64 (only
// reachable in regimes the odometer could never walk).
func mulSat(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// powSat computes n^tl with saturation, the logical frame count.
func powSat(n int64, tl int) int64 {
	total := int64(1)
	for i := 0; i < tl; i++ {
		total = mulSat(total, n)
	}
	return total
}

// ----- entry points -----

// CountFactorized computes exactly CountExhaustive's result via the
// factorized pass. ok=false reports a clause shape, outcome-set size or
// matrix footprint outside the factorizable fragment — the caller must
// fall back to the odometer. Frames reports the logical N^TL frame
// count the odometer would have walked.
func (c *Counter) CountFactorized(bs *BufSet) (res *CountResult, ok bool, err error) {
	if err := bs.Validate(c.pt); err != nil {
		return nil, false, err
	}
	plans, ok := c.factorPlans()
	if !ok {
		return nil, false, nil
	}
	res = &CountResult{Counts: make([]int64, len(c.outcomes))}
	n := bs.N
	tl := c.pt.TL()
	if n == 0 || tl == 0 {
		return res, true, nil
	}
	sc, ok := c.buildStructures(bs, plans)
	if !ok {
		return nil, false, nil
	}
	for oi := range c.outcomes {
		cnt, ok := sc.firstMatchCount(oi)
		if !ok {
			return nil, false, nil
		}
		res.Counts[oi] = cnt
	}
	res.Frames = powSat(int64(n), tl)
	return res, true, nil
}

// CountExhaustiveAuto selects the fastest exact exhaustive counter: the
// factorized pass when the outcome set is product-form, otherwise the
// parallel odometer fan-out. The tallies are identical either way (the
// differential tests prove it); only the work to produce them differs.
func (c *Counter) CountExhaustiveAuto(ctx context.Context, bs *BufSet, workers int) (*CountResult, error) {
	if res, ok, err := c.CountFactorized(bs); err != nil {
		return nil, err
	} else if ok {
		return res, nil
	}
	return c.CountExhaustiveParallel(ctx, bs, workers)
}
