package core

import (
	"fmt"
	"runtime"
	"sync"
)

// CountExhaustiveParallel is Algorithm 1 fanned out over worker
// goroutines: the outermost frame index is partitioned, each worker walks
// its slab with an independent Counter clone, and the per-outcome counts
// are summed. The result is identical to CountExhaustive (frame
// evaluation is read-only and first-match-wins is per frame). workers ≤ 0
// selects GOMAXPROCS. An engineering extension over the paper's
// single-threaded C counters — the frame walk is embarrassingly parallel.
func (c *Counter) CountExhaustiveParallel(bs *BufSet, workers int) (*CountResult, error) {
	if err := bs.Validate(c.pt); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := bs.N
	if workers > n {
		workers = n
	}
	if workers <= 1 || c.pt.TL() == 0 || n == 0 {
		return c.CountExhaustive(bs)
	}

	results := make([]*CountResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w], errs[w] = c.Clone().countExhaustiveSlab(bs, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()

	total := &CountResult{Counts: make([]int64, len(c.outcomes))}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, fmt.Errorf("core: parallel count worker %d: %w", w, errs[w])
		}
		total.Frames += results[w].Frames
		for i, v := range results[w].Counts {
			total.Counts[i] += v
		}
	}
	return total, nil
}

// countExhaustiveSlab walks the frames whose outermost (first load
// thread) index lies in [lo, hi).
func (c *Counter) countExhaustiveSlab(bs *BufSet, lo, hi int) (*CountResult, error) {
	res := &CountResult{Counts: make([]int64, len(c.outcomes))}
	if lo >= hi {
		return res, nil
	}
	n := int64(bs.N)
	tl := c.pt.TL()
	idx := make([]int64, tl)
	idx[0] = int64(lo)
	for {
		for i, t := range c.pt.LoadThreads {
			c.vals[t] = idx[i]
		}
		res.Frames++
		for oi, po := range c.outcomes {
			if c.eval(po, bs, n) {
				res.Counts[oi]++
				break
			}
		}
		i := tl - 1
		for i >= 0 {
			idx[i]++
			bound := n
			if i == 0 {
				bound = int64(hi)
			}
			if idx[i] < bound {
				break
			}
			if i == 0 {
				return res, nil
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return res, nil
		}
	}
}
