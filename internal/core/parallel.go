package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// CountExhaustiveParallel is Algorithm 1 fanned out over worker
// goroutines: the outermost frame index is partitioned, each worker walks
// its slab with an independent Counter clone, and the per-outcome counts
// are summed. The result is identical to CountExhaustive (frame
// evaluation is read-only and first-match-wins is per frame). workers ≤ 0
// selects GOMAXPROCS. An engineering extension over the paper's
// single-threaded C counters — the frame walk is embarrassingly parallel.
//
// Each worker polls ctx every slabCheckMask+1 frames and abandons its
// slab on cancellation, so a cancelled count returns the context's error
// promptly instead of walking N^TL frames to completion.
func (c *Counter) CountExhaustiveParallel(ctx context.Context, bs *BufSet, workers int) (*CountResult, error) {
	if err := bs.Validate(c.pt); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := bs.N
	if workers > n {
		workers = n
	}
	if workers <= 1 || c.pt.TL() == 0 || n == 0 {
		return c.countExhaustiveSlab(ctx, bs, 0, n)
	}

	results := make([]*CountResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w], errs[w] = c.Clone().countExhaustiveSlab(ctx, bs, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()

	total := &CountResult{Counts: make([]int64, len(c.outcomes))}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, fmt.Errorf("core: parallel count worker %d: %w", w, errs[w])
		}
		total.Frames += results[w].Frames
		for i, v := range results[w].Counts {
			total.Counts[i] += v
		}
	}
	return total, nil
}

// CountHeuristicParallel is Algorithm 2 fanned out over worker
// goroutines: the anchor-iteration range is partitioned, each worker
// walks its slab with an independent Counter clone, and the per-outcome
// counts are summed. Each anchor iteration is evaluated independently
// (the substitution plan derives every other index from the anchor's
// recorded values alone), so the result is identical to CountHeuristic.
// workers ≤ 0 selects GOMAXPROCS.
//
// Like the exhaustive fan-out, workers poll ctx every slabCheckMask+1
// frames and abandon their slab on cancellation.
func (c *Counter) CountHeuristicParallel(ctx context.Context, bs *BufSet, workers int) (*CountResult, error) {
	if err := bs.Validate(c.pt); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := bs.N
	if workers > n {
		workers = n
	}
	if workers <= 1 || c.pt.TL() == 0 || n == 0 {
		return c.countHeuristicSlab(ctx, bs, 0, n)
	}

	results := make([]*CountResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := n * w / workers
		hi := n * (w + 1) / workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			results[w], errs[w] = c.Clone().countHeuristicSlab(ctx, bs, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()

	total := &CountResult{Counts: make([]int64, len(c.outcomes))}
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			return nil, fmt.Errorf("core: parallel count worker %d: %w", w, errs[w])
		}
		total.Frames += results[w].Frames
		for i, v := range results[w].Counts {
			total.Counts[i] += v
		}
	}
	return total, nil
}

// countHeuristicSlab walks the anchor iterations in [lo, hi).
func (c *Counter) countHeuristicSlab(ctx context.Context, bs *BufSet, lo, hi int) (*CountResult, error) {
	res := &CountResult{Counts: make([]int64, len(c.outcomes))}
	if lo >= hi || c.pt.TL() == 0 || bs.N == 0 {
		return res, nil
	}
	done := ctx.Done()
	anchor := c.pt.LoadThreads[0]
	n := int64(bs.N)
	for i := int64(lo); i < int64(hi); i++ {
		if done != nil && res.Frames&slabCheckMask == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("core: heuristic count aborted: %w", ctx.Err())
			default:
			}
		}
		res.Frames++
		for oi, po := range c.outcomes {
			c.vals[anchor] = i
			if c.evalPinned(po, bs, n, i) {
				res.Counts[oi]++
				break
			}
		}
	}
	return res, nil
}

// slabCheckMask rate-limits the slab walk's cancellation poll to every
// 8192 frames — cheap against the per-frame outcome evaluation while
// still bounding cancellation latency.
const slabCheckMask = 8191

// countExhaustiveSlab walks the frames whose outermost (first load
// thread) index lies in [lo, hi).
func (c *Counter) countExhaustiveSlab(ctx context.Context, bs *BufSet, lo, hi int) (*CountResult, error) {
	res := &CountResult{Counts: make([]int64, len(c.outcomes))}
	if lo >= hi || c.pt.TL() == 0 || bs.N == 0 {
		return res, nil
	}
	done := ctx.Done()
	n := int64(bs.N)
	tl := c.pt.TL()
	idx := make([]int64, tl)
	idx[0] = int64(lo)
	for {
		if done != nil && res.Frames&slabCheckMask == 0 {
			select {
			case <-done:
				return nil, fmt.Errorf("core: exhaustive count aborted: %w", ctx.Err())
			default:
			}
		}
		for i, t := range c.pt.LoadThreads {
			c.vals[t] = idx[i]
		}
		res.Frames++
		for oi, po := range c.outcomes {
			if c.eval(po, bs, n) {
				res.Counts[oi]++
				break
			}
		}
		i := tl - 1
		for i >= 0 {
			idx[i]++
			bound := n
			if i == 0 {
				bound = int64(hi)
			}
			if idx[i] < bound {
				break
			}
			if i == 0 {
				return res, nil
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return res, nil
		}
	}
}
