package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// countWorker is one reusable parallel-count worker: a pre-cloned
// Counter, its odometer scratch and its output slot. Workers are
// individually heap-allocated and tail-padded so one worker's hot
// frames/counts writes never share a cache line with a neighbor's.
type countWorker struct {
	c   *Counter
	idx []int64

	// Per-call inputs, set by the dispatching goroutine before spawn.
	ctx        context.Context
	bs         *BufSet
	lo, hi     int
	exhaustive bool

	// Outputs.
	frames int64
	counts []int64
	err    error

	wg *sync.WaitGroup
	// run is the prebound method value spawned by `go wk.run()`; binding
	// it once at pool build keeps the spawn itself allocation-free.
	run func()

	_ [64]byte // padding against false sharing
}

func (wk *countWorker) doRun() {
	defer wk.wg.Done()
	wk.frames = 0
	clear(wk.counts)
	if wk.exhaustive {
		wk.err = wk.c.exhSlabInto(wk.ctx, wk.bs, wk.lo, wk.hi, wk.idx, &wk.frames, wk.counts)
	} else {
		wk.err = wk.c.heurSlabInto(wk.ctx, wk.bs, wk.lo, wk.hi, &wk.frames, wk.counts)
	}
}

// countPool is the Counter's lazily grown set of reusable workers.
type countPool struct {
	wg      sync.WaitGroup
	workers []*countWorker
}

// pool returns a pool with at least `workers` ready workers. All
// per-worker state (clone, scratch, padded output slots) is allocated
// here, outside the parallel region, so steady-state parallel counts
// allocate nothing per worker.
func (c *Counter) pool(workers int) *countPool {
	if c.cpool == nil {
		c.cpool = &countPool{}
	}
	p := c.cpool
	for len(p.workers) < workers {
		wk := &countWorker{
			c: c.Clone(),
			// Round the counts capacity up to a full cache line so two
			// workers' short count arrays never split one.
			counts: make([]int64, len(c.outcomes), max(len(c.outcomes), 8)),
			idx:    make([]int64, c.pt.TL()),
			wg:     &p.wg,
		}
		wk.run = wk.doRun
		p.workers = append(p.workers, wk)
	}
	return p
}

// runParallel dispatches [0, n) across the pool and merges the padded
// per-worker slots into one result.
func (c *Counter) runParallel(ctx context.Context, bs *BufSet, workers, n int, exhaustive bool) (*CountResult, error) {
	p := c.pool(workers)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		wk := p.workers[w]
		wk.ctx, wk.bs = ctx, bs
		wk.lo, wk.hi = n*w/workers, n*(w+1)/workers
		wk.exhaustive = exhaustive
		go wk.run()
	}
	p.wg.Wait()

	total := &CountResult{Counts: make([]int64, len(c.outcomes))}
	for w := 0; w < workers; w++ {
		wk := p.workers[w]
		wk.ctx, wk.bs = nil, nil // don't retain caller state between calls
		if wk.err != nil {
			return nil, fmt.Errorf("core: parallel count worker %d: %w", w, wk.err)
		}
		total.Frames += wk.frames
		for i, v := range wk.counts {
			total.Counts[i] += v
		}
	}
	return total, nil
}

// CountExhaustiveParallel is Algorithm 1 fanned out over worker
// goroutines: the outermost frame index is partitioned, each worker walks
// its slab with an independent Counter clone, and the per-outcome counts
// are summed. The result is identical to CountExhaustive (frame
// evaluation is read-only and first-match-wins is per frame). workers ≤ 0
// selects GOMAXPROCS. An engineering extension over the paper's
// single-threaded C counters — the frame walk is embarrassingly parallel.
//
// Each worker polls ctx every slabCheckMask+1 frames and abandons its
// slab on cancellation, so a cancelled count returns the context's error
// promptly instead of walking N^TL frames to completion.
func (c *Counter) CountExhaustiveParallel(ctx context.Context, bs *BufSet, workers int) (*CountResult, error) {
	if err := bs.Validate(c.pt); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := bs.N
	if workers > n {
		workers = n
	}
	if workers <= 1 || c.pt.TL() == 0 || n == 0 {
		return c.countExhaustiveSlab(ctx, bs, 0, n)
	}
	return c.runParallel(ctx, bs, workers, n, true)
}

// CountHeuristicParallel is Algorithm 2 fanned out over worker
// goroutines: the anchor-iteration range is partitioned, each worker
// walks its slab with an independent Counter clone, and the per-outcome
// counts are summed. Each anchor iteration is evaluated independently
// (the substitution plan derives every other index from the anchor's
// recorded values alone), so the result is identical to CountHeuristic.
// workers ≤ 0 selects GOMAXPROCS.
//
// Like the exhaustive fan-out, workers poll ctx every slabCheckMask+1
// frames and abandon their slab on cancellation.
func (c *Counter) CountHeuristicParallel(ctx context.Context, bs *BufSet, workers int) (*CountResult, error) {
	if err := bs.Validate(c.pt); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n := bs.N
	if workers > n {
		workers = n
	}
	if workers <= 1 || c.pt.TL() == 0 || n == 0 {
		return c.countHeuristicSlab(ctx, bs, 0, n)
	}
	return c.runParallel(ctx, bs, workers, n, false)
}

// countHeuristicSlab walks the anchor iterations in [lo, hi).
func (c *Counter) countHeuristicSlab(ctx context.Context, bs *BufSet, lo, hi int) (*CountResult, error) {
	res := &CountResult{Counts: make([]int64, len(c.outcomes))}
	if err := c.heurSlabInto(ctx, bs, lo, hi, &res.Frames, res.Counts); err != nil {
		return nil, err
	}
	return res, nil
}

// heurSlabInto is countHeuristicSlab's loop over caller-owned output
// slots, the allocation-free core shared with the worker pool.
func (c *Counter) heurSlabInto(ctx context.Context, bs *BufSet, lo, hi int, framesOut *int64, counts []int64) error {
	if lo >= hi || c.pt.TL() == 0 || bs.N == 0 {
		return nil
	}
	done := ctx.Done()
	anchor := c.pt.LoadThreads[0]
	n := int64(bs.N)
	var frames int64
	for i := int64(lo); i < int64(hi); i++ {
		if done != nil && frames&slabCheckMask == 0 {
			select {
			case <-done:
				return fmt.Errorf("core: heuristic count aborted: %w", ctx.Err())
			default:
			}
		}
		frames++
		for oi, po := range c.outcomes {
			c.vals[anchor] = i
			if c.evalPinned(po, bs, n, i) {
				counts[oi]++
				break
			}
		}
	}
	*framesOut += frames
	return nil
}

// slabCheckMask rate-limits the slab walk's cancellation poll to every
// 8192 frames — cheap against the per-frame outcome evaluation while
// still bounding cancellation latency.
const slabCheckMask = 8191

// countExhaustiveSlab walks the frames whose outermost (first load
// thread) index lies in [lo, hi).
func (c *Counter) countExhaustiveSlab(ctx context.Context, bs *BufSet, lo, hi int) (*CountResult, error) {
	res := &CountResult{Counts: make([]int64, len(c.outcomes))}
	if lo >= hi || c.pt.TL() == 0 || bs.N == 0 {
		return res, nil
	}
	idx := make([]int64, c.pt.TL())
	if err := c.exhSlabInto(ctx, bs, lo, hi, idx, &res.Frames, res.Counts); err != nil {
		return nil, err
	}
	return res, nil
}

// exhSlabInto is countExhaustiveSlab's odometer loop over caller-owned
// scratch and output slots, the allocation-free core shared with the
// worker pool.
func (c *Counter) exhSlabInto(ctx context.Context, bs *BufSet, lo, hi int, idx []int64, framesOut *int64, counts []int64) error {
	if lo >= hi || c.pt.TL() == 0 || bs.N == 0 {
		return nil
	}
	done := ctx.Done()
	n := int64(bs.N)
	tl := c.pt.TL()
	clear(idx)
	idx[0] = int64(lo)
	var frames int64
	for {
		if done != nil && frames&slabCheckMask == 0 {
			select {
			case <-done:
				return fmt.Errorf("core: exhaustive count aborted: %w", ctx.Err())
			default:
			}
		}
		for i, t := range c.pt.LoadThreads {
			c.vals[t] = idx[i]
		}
		frames++
		for oi, po := range c.outcomes {
			if c.eval(po, bs, n) {
				counts[oi]++
				break
			}
		}
		i := tl - 1
		for i >= 0 {
			idx[i]++
			bound := n
			if i == 0 {
				bound = int64(hi)
			}
			if idx[i] < bound {
				break
			}
			if i == 0 {
				*framesOut += frames
				return nil
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			*framesOut += frames
			return nil
		}
	}
}
