package core

import (
	"testing"

	"perple/internal/analysis/hotpath"
)

// TestHotpathAllocs verifies this package's //perple:hotpath
// annotations: the frame-evaluation kernel (eval, evalConstraints,
// evalPinned, bufVal) shared by the exhaustive and heuristic counters
// must be allocation-free — it runs N^TL (or N) times per count. The
// exerciser drives the kernel directly over a small frame space rather
// than through CountExhaustive, which allocates its fresh CountResult
// per call by design.
func TestHotpathAllocs(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(pt, pos)
	const n = 8
	bs := lockstepBufs(pt, n)
	anchor := pt.LoadThreads[0]
	hotpath.Verify(t, ".", map[string]func(){
		"core-count-eval": func() {
			for i := int64(0); i < n; i++ {
				for j := int64(0); j < n; j++ {
					c.vals[pt.LoadThreads[0]] = i
					c.vals[pt.LoadThreads[1]] = j
					for _, po := range pos {
						c.eval(po, bs, n)
					}
				}
				c.vals[anchor] = i
				for _, po := range pos {
					c.evalPinned(po, bs, n, i)
				}
			}
		},
	})
}
