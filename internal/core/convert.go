// Package core implements the PerpLE Converter and outcome counters: the
// paper's primary contribution. It converts litmus tests to perpetual
// litmus tests (Section III: per-iteration synchronization removed,
// stored constants replaced by arithmetic sequences k_mem·n + a),
// converts outcomes of interest to perpetual outcomes (Section IV-A:
// happens-before analysis turned into inequalities over buf arrays and
// iteration indices), derives the linear heuristic conditions (Section
// IV-B: substitution step 5), and provides the exhaustive COUNT and
// heuristic COUNTH outcome counters (Algorithms 1 and 2). codegen.go
// additionally emits the counters as Go source and the perpetual thread
// programs as x86-flavoured assembly, mirroring the C and assembly files
// the paper's Converter produces.
package core

import (
	"fmt"
	"sort"

	"perple/internal/litmus"
)

// SeqStore describes the arithmetic sequence assigned to one store
// instruction of the perpetual test: at iteration n of its thread the
// instruction stores K·n + A.
type SeqStore struct {
	Ref litmus.InstrRef
	Loc litmus.Loc
	// OrigValue is the constant the original litmus test stored.
	OrigValue int64
	// K is k_mem: the number of distinct values stored to Loc test-wide.
	K int64
	// A is the sequence offset, a normalized form of OrigValue in 1..K.
	A int64
}

// Value returns the element of the sequence stored at iteration n.
func (s SeqStore) Value(n int64) int64 { return s.K*n + s.A }

// DecodeIteration inverts Value: given a loaded value v belonging to this
// store's sequence it returns the iteration that stored it. ok is false
// when v is not a member of the sequence (v ≤ 0, wrong residue, or wrong
// offset).
func (s SeqStore) DecodeIteration(v int64) (n int64, ok bool) {
	if v < s.A || (v-s.A)%s.K != 0 {
		return 0, false
	}
	return (v - s.A) / s.K, true
}

// PerpetualTest is the output of converting a litmus test per Table I of
// the paper: the same loads and fences, stores rewritten to arithmetic
// sequences, no per-iteration barrier and no memory reset.
type PerpetualTest struct {
	// Orig is the source litmus test (not retained by reference holders;
	// treat as read-only).
	Orig *litmus.Test
	// K maps each location to k_mem.
	K map[litmus.Loc]int64
	// Stores holds the sequence assignment of every store instruction, in
	// (thread, index) order.
	Stores []SeqStore
	// Reads is t_i_reads from the paper: loads per iteration per thread.
	// The Harness sizes buf_t as Reads[t]·N.
	Reads []int
	// LoadThreads lists the threads with Reads > 0 in increasing order;
	// frames are tuples over these threads.
	LoadThreads []int
	// LoadSlot maps (thread, register) to the buf slot written by the
	// last load into that register per iteration, or -1. Slot i of thread
	// t at iteration n lives at buf[t][Reads[t]*n + i].
	LoadSlot [][]int
	// LoadLoc maps (thread, slot) to the location that slot's load reads.
	LoadLoc [][]litmus.Loc
}

// Convert builds the perpetual counterpart of a litmus test. It fails for
// tests that initialize some location to a non-zero value (the arithmetic
// sequence construction reserves 0 for "not yet stored") — such tests are
// not convertible and must run under the traditional harness.
func Convert(t *litmus.Test) (*PerpetualTest, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	for loc, v := range t.Init {
		if v != 0 {
			return nil, fmt.Errorf("core: %s: location %s initialized to %d; perpetual conversion requires zero-initialized memory", t.Name, loc, v)
		}
	}

	pt := &PerpetualTest{Orig: t, K: map[litmus.Loc]int64{}}

	// k_mem and value normalization: the distinct stored values of each
	// location, in ascending order, become offsets 1..k so that every
	// sequence member uniquely decodes to (store, iteration).
	offset := map[litmus.Loc]map[int64]int64{}
	for _, loc := range t.Locs() {
		vals := t.StoreValues(loc)
		pt.K[loc] = int64(len(vals))
		m := make(map[int64]int64, len(vals))
		for i, v := range vals {
			m[v] = int64(i + 1)
		}
		offset[loc] = m
	}

	pt.Reads = make([]int, len(t.Threads))
	pt.LoadSlot = make([][]int, len(t.Threads))
	pt.LoadLoc = make([][]litmus.Loc, len(t.Threads))
	regs := t.Regs()
	for ti, th := range t.Threads {
		pt.LoadSlot[ti] = make([]int, regs[ti])
		for r := range pt.LoadSlot[ti] {
			pt.LoadSlot[ti][r] = -1
		}
		for ii, in := range th.Instrs {
			switch in.Kind {
			case litmus.OpStore:
				pt.Stores = append(pt.Stores, SeqStore{
					Ref:       litmus.InstrRef{Thread: ti, Index: ii},
					Loc:       in.Loc,
					OrigValue: in.Value,
					K:         pt.K[in.Loc],
					A:         offset[in.Loc][in.Value],
				})
			case litmus.OpLoad:
				slot := pt.Reads[ti]
				pt.Reads[ti]++
				pt.LoadSlot[ti][in.Reg] = slot
				pt.LoadLoc[ti] = append(pt.LoadLoc[ti], in.Loc)
			}
		}
		if pt.Reads[ti] > 0 {
			pt.LoadThreads = append(pt.LoadThreads, ti)
		}
	}
	return pt, nil
}

// TL returns the number of load-performing threads.
func (pt *PerpetualTest) TL() int { return len(pt.LoadThreads) }

// StoreFor returns the sequence store whose location is loc and whose
// normalized offset is a, or nil.
func (pt *PerpetualTest) StoreFor(loc litmus.Loc, a int64) *SeqStore {
	for i := range pt.Stores {
		if pt.Stores[i].Loc == loc && pt.Stores[i].A == a {
			return &pt.Stores[i]
		}
	}
	return nil
}

// StoreForValue returns the sequence store for the original constant v at
// loc, or nil when no thread stores v to loc.
func (pt *PerpetualTest) StoreForValue(loc litmus.Loc, v int64) *SeqStore {
	for i := range pt.Stores {
		if pt.Stores[i].Loc == loc && pt.Stores[i].OrigValue == v {
			return &pt.Stores[i]
		}
	}
	return nil
}

// StoresByThread returns the sequence stores executed by thread ti, in
// program order.
func (pt *PerpetualTest) StoresByThread(ti int) []SeqStore {
	var out []SeqStore
	for _, s := range pt.Stores {
		if s.Ref.Thread == ti {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Ref.Index < out[j].Ref.Index })
	return out
}

// BufSize returns the required length of buf_t for a run of n iterations.
func (pt *PerpetualTest) BufSize(t, n int) int { return pt.Reads[t] * n }

// SlotOf returns the buf slot recording register r of thread t (the last
// load into that register each iteration). The second result is false if
// the register is never loaded.
func (pt *PerpetualTest) SlotOf(t, r int) (int, bool) {
	if t < 0 || t >= len(pt.LoadSlot) || r < 0 || r >= len(pt.LoadSlot[t]) {
		return 0, false
	}
	s := pt.LoadSlot[t][r]
	return s, s >= 0
}
