package core

import (
	"fmt"
	"strings"

	"perple/internal/litmus"
)

// Explanation is the step-by-step derivation of a perpetual outcome,
// mirroring the rows of Figures 6 and 8 of the paper.
type Explanation struct {
	Original litmus.Outcome
	// Step1 lists the happens-before edge of each condition (rf from a
	// store, fr to every store of the location, or an initial-zero
	// check).
	Step1 []string
	// Step2 shows the conditions with registers replaced by buf slots.
	Step2 []string
	// Step3 shows integer values replaced by generic sequence members.
	Step3 []string
	// Step4 is the final inequality conjunction (the exhaustive
	// condition, PerpetualOutcome.Constraints).
	Step4 []string
	// Step5 describes the heuristic substitution plan (pins).
	Step5 []string
	// Notes carries special cases: unsatisfiable outcomes, coherence
	// rejections, existential variables.
	Notes []string
}

// String renders the explanation as an indented block.
func (e *Explanation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "original outcome: %v\n", e.Original)
	steps := []struct {
		title string
		rows  []string
	}{
		{"1) happens-before edges", e.Step1},
		{"2) replace registers", e.Step2},
		{"3) replace integer values", e.Step3},
		{"4) turn to inequalities", e.Step4},
		{"5) heuristic substitution", e.Step5},
	}
	for _, s := range steps {
		fmt.Fprintf(&b, "%s:\n", s.title)
		for _, r := range s.rows {
			fmt.Fprintf(&b, "    %s\n", r)
		}
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Explain derives a perpetual outcome and narrates every conversion step
// of Section IV, as the paper's Figures 6 and 8 do for sb. It returns the
// converted outcome alongside the narration.
func Explain(pt *PerpetualTest, o litmus.Outcome) (*PerpetualOutcome, *Explanation, error) {
	po, err := ConvertOutcome(pt, o)
	if err != nil {
		return nil, nil, err
	}
	ex := &Explanation{Original: o}
	varName := func(thread int) string {
		return fmt.Sprintf("n%d", thread)
	}

	for _, cond := range o.Conds {
		slot, ok := pt.SlotOf(cond.Thread, cond.Reg)
		if !ok {
			continue
		}
		loc := pt.LoadLoc[cond.Thread][slot]
		bufRef := fmt.Sprintf("buf%d[%d*%s+%d]", cond.Thread, pt.Reads[cond.Thread], varName(cond.Thread), slot)
		if pt.Reads[cond.Thread] == 1 {
			bufRef = fmt.Sprintf("buf%d[%s]", cond.Thread, varName(cond.Thread))
		}

		switch {
		case cond.Value == 0 && pt.K[loc] == 0:
			ex.Step1 = append(ex.Step1, fmt.Sprintf("%v: [%s] is never stored; the load always returns the initial 0", cond, loc))
			ex.Step2 = append(ex.Step2, fmt.Sprintf("%s = 0", bufRef))
			ex.Step3 = append(ex.Step3, fmt.Sprintf("%s = 0 (no sequence)", bufRef))
			ex.Step4 = append(ex.Step4, fmt.Sprintf("%s == 0", bufRef))
		case cond.Value == 0:
			for _, s := range pt.Stores {
				if s.Loc != loc {
					continue
				}
				ex.Step1 = append(ex.Step1, fmt.Sprintf("%v: fr — the load happened before store %v of thread %d",
					cond, s.Ref, s.Ref.Thread))
				ex.Step2 = append(ex.Step2, fmt.Sprintf("%s = 0", bufRef))
				ex.Step3 = append(ex.Step3, fmt.Sprintf("%s older than %d*%s+%d", bufRef, s.K, varName(s.Ref.Thread), s.A))
				ex.Step4 = append(ex.Step4, fmt.Sprintf("%s <= %d*%s+%d", bufRef, s.K, varName(s.Ref.Thread), s.A-1))
			}
		default:
			s := pt.StoreForValue(loc, cond.Value)
			if s == nil {
				ex.Notes = append(ex.Notes, fmt.Sprintf("%v expects a value no thread stores: outcome unsatisfiable", cond))
				continue
			}
			ex.Step1 = append(ex.Step1, fmt.Sprintf("%v: rf — the load read store %v of thread %d",
				cond, s.Ref, s.Ref.Thread))
			ex.Step2 = append(ex.Step2, fmt.Sprintf("%s = %d", bufRef, cond.Value))
			ex.Step3 = append(ex.Step3, fmt.Sprintf("%s = %d*%s+%d", bufRef, s.K, varName(s.Ref.Thread), s.A))
			ex.Step4 = append(ex.Step4, fmt.Sprintf("%s >= %d*%s+%d", bufRef, s.K, varName(s.Ref.Thread), s.A))
		}
	}

	if po.Unsatisfiable {
		if po.CoherenceViolation {
			ex.Notes = append(ex.Notes, "outcome rejected by the write-serialization cycle check: "+
				"its designated read-from sources cannot be drain-ordered consistently; both counters report 0")
		} else {
			ex.Notes = append(ex.Notes, "outcome unsatisfiable; both counters report 0")
		}
		return po, ex, nil
	}

	for _, p := range po.Pins {
		switch p.Kind {
		case PinDiagonal:
			ex.Step5 = append(ex.Step5, fmt.Sprintf("%s := %s (diagonal fallback: no condition observes thread %d)",
				varName(p.Var), varName(po.FrameVars[0]), p.Var))
		case PinRF:
			c := po.Constraints[p.Constraint]
			ex.Step5 = append(ex.Step5, fmt.Sprintf("%s := decode(buf%d[...]) (rf pin: the value identifies thread %d's iteration exactly; constraint %d)",
				varName(p.Var), c.Ref.Thread, p.Var, p.Constraint))
		case PinFR:
			c := po.Constraints[p.Constraint]
			ex.Step5 = append(ex.Step5, fmt.Sprintf("%s := tightest(buf%d[...]) (fr pin: smallest iteration satisfying constraint %d)",
				varName(p.Var), c.Ref.Thread, p.Constraint))
		}
	}
	if len(po.Pins) == 0 && pt.TL() > 0 {
		ex.Step5 = append(ex.Step5, "no substitution needed: the anchor index evaluates every condition")
	}
	for _, ev := range po.ExistVars {
		if !pinsVar(po.Pins, ev) {
			ex.Notes = append(ex.Notes, fmt.Sprintf(
				"thread %d performs no loads: its iteration variable %s is existential (interval intersection)", ev, varName(ev)))
		}
	}
	return po, ex, nil
}
