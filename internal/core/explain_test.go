package core

import (
	"context"
	"strings"
	"testing"

	"perple/internal/litmus"
)

func TestExplainSBTarget(t *testing.T) {
	pt := mustConvert(t, "sb")
	po, ex, err := Explain(pt, pt.Orig.Target)
	if err != nil {
		t.Fatal(err)
	}
	if po.Unsatisfiable {
		t.Fatal("sb target should be satisfiable")
	}
	if len(ex.Step1) != 2 || len(ex.Step4) != 2 {
		t.Fatalf("steps 1/4 have %d/%d rows, want 2/2", len(ex.Step1), len(ex.Step4))
	}
	out := ex.String()
	// The narration carries the Figure 6 structure.
	for _, want := range []string{
		"fr — the load happened before",
		"buf0[n0] <= 1*n1+0",
		"buf1[n1] <= 1*n0+0",
		"fr pin",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("explanation missing %q:\n%s", want, out)
		}
	}
}

func TestExplainRFOutcome(t *testing.T) {
	pt := mustConvert(t, "sb")
	o := litmus.Outcome{Conds: []litmus.Cond{
		{Thread: 0, Reg: 0, Value: 1},
		{Thread: 1, Reg: 0, Value: 1},
	}}
	_, ex, err := Explain(pt, o)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.String()
	if !strings.Contains(out, "rf — the load read store") {
		t.Errorf("rf narration missing:\n%s", out)
	}
	if !strings.Contains(out, "rf pin") {
		t.Errorf("rf pin narration missing:\n%s", out)
	}
}

func TestExplainMPExistential(t *testing.T) {
	pt := mustConvert(t, "mp")
	_, ex, err := Explain(pt, pt.Orig.Target)
	if err != nil {
		t.Fatal(err)
	}
	out := ex.String()
	// Thread 0 is store-only: existential unless pinned. The mp target's
	// plan pins it, so no existential note; but the narration must name
	// the pin.
	if !strings.Contains(out, "rf pin") {
		t.Errorf("mp pin narration missing:\n%s", out)
	}
}

func TestExplainCoherenceRejection(t *testing.T) {
	pt := mustConvert(t, "co-iriw")
	po, ex, err := Explain(pt, pt.Orig.Target)
	if err != nil {
		t.Fatal(err)
	}
	if !po.Unsatisfiable || !po.CoherenceViolation {
		t.Fatal("co-iriw target should be a coherence rejection")
	}
	if !strings.Contains(ex.String(), "write-serialization cycle") {
		t.Errorf("coherence note missing:\n%s", ex.String())
	}
}

func TestExplainUnsatisfiable(t *testing.T) {
	pt := mustConvert(t, "sb")
	o := litmus.Outcome{Conds: []litmus.Cond{{Thread: 0, Reg: 0, Value: 42}}}
	po, ex, err := Explain(pt, o)
	if err != nil {
		t.Fatal(err)
	}
	if !po.Unsatisfiable {
		t.Fatal("expected unsatisfiable")
	}
	if !strings.Contains(ex.String(), "no thread stores") {
		t.Errorf("unsatisfiable note missing:\n%s", ex.String())
	}
}

func TestExplainDiagonal(t *testing.T) {
	pt := mustConvert(t, "iriw")
	_, ex, err := Explain(pt, pt.Orig.Target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ex.String(), "diagonal fallback") {
		t.Errorf("iriw explanation should mention the diagonal fallback:\n%s", ex.String())
	}
}

func TestExplainWholeSuite(t *testing.T) {
	for _, e := range litmus.Suite() {
		pt, err := Convert(e.Test)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := Explain(pt, e.Test.Target); err != nil {
			t.Errorf("%s: %v", e.Test.Name, err)
		}
	}
}

func TestCountExhaustiveParallelMatchesSequential(t *testing.T) {
	for _, name := range []string{"sb", "mp", "iriw", "podwr001", "amd3"} {
		pt := mustConvert(t, name)
		pos, err := ConvertAllOutcomes(pt)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCounter(pt, pos)
		n := 40
		if pt.TL() >= 3 {
			n = 15
		}
		bs := lockstepBufs(pt, n)
		seq, err := c.CountExhaustive(bs)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8, 100} {
			par, err := c.CountExhaustiveParallel(context.Background(), bs, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Frames != seq.Frames {
				t.Errorf("%s workers=%d: frames %d, want %d", name, workers, par.Frames, seq.Frames)
			}
			for i := range seq.Counts {
				if par.Counts[i] != seq.Counts[i] {
					t.Errorf("%s workers=%d outcome %d: %d, want %d",
						name, workers, i, par.Counts[i], seq.Counts[i])
				}
			}
		}
	}
}

func TestCountExhaustiveParallelEmptyAndDefaults(t *testing.T) {
	pt := mustConvert(t, "sb")
	c, err := NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.CountExhaustiveParallel(context.Background(), NewBufSet(pt, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 0 {
		t.Errorf("empty run frames = %d", res.Frames)
	}
	bad := &BufSet{N: 3, Bufs: [][]int64{{0}, {0, 0, 0}}}
	if _, err := c.CountExhaustiveParallel(context.Background(), bad, 4); err == nil {
		t.Error("mis-shaped buffers accepted")
	}
}
