package core

import (
	"context"
	"testing"
)

func TestCountHeuristicParallelMatchesSequential(t *testing.T) {
	for _, name := range []string{"sb", "mp", "iriw", "podwr001", "amd3"} {
		pt := mustConvert(t, name)
		pos, err := ConvertAllOutcomes(pt)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCounter(pt, pos)
		bs := lockstepBufs(pt, 40)
		seq, err := c.CountHeuristic(bs)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 8, 100} {
			par, err := c.CountHeuristicParallel(context.Background(), bs, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Frames != seq.Frames {
				t.Errorf("%s workers=%d: frames %d, want %d", name, workers, par.Frames, seq.Frames)
			}
			for i := range seq.Counts {
				if par.Counts[i] != seq.Counts[i] {
					t.Errorf("%s workers=%d outcome %d: %d, want %d",
						name, workers, i, par.Counts[i], seq.Counts[i])
				}
			}
		}
	}
}

func TestCountHeuristicParallelEmptyAndErrors(t *testing.T) {
	pt := mustConvert(t, "sb")
	c, err := NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.CountHeuristicParallel(context.Background(), NewBufSet(pt, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 0 {
		t.Errorf("empty run frames = %d", res.Frames)
	}
	bad := &BufSet{N: 3, Bufs: [][]int64{{0}, {0, 0, 0}}}
	if _, err := c.CountHeuristicParallel(context.Background(), bad, 4); err == nil {
		t.Error("mis-shaped buffers accepted")
	}
}

// TestCountExhaustiveParallelAllocsFlat pins the parallel fan-out's
// steady-state allocation behavior: after the worker pool is warm,
// allocs/op must not grow with the worker count (the pre-pool
// implementation leaked ~19 allocs per additional worker — clone,
// result, scratch and closure per call).
func TestCountExhaustiveParallelAllocsFlat(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(pt, pos)
	bs := lockstepBufs(pt, 64)
	ctx := context.Background()
	measure := func(workers int) float64 {
		t.Helper()
		if _, err := c.CountExhaustiveParallel(ctx, bs, workers); err != nil {
			t.Fatal(err) // warm the pool outside the measured region
		}
		return testing.AllocsPerRun(30, func() {
			if _, err := c.CountExhaustiveParallel(ctx, bs, workers); err != nil {
				t.Fatal(err)
			}
		})
	}
	base := measure(1)
	for _, workers := range []int{2, 4, 8} {
		// Tolerance of +2 absorbs occasional goroutine-descriptor
		// allocation when the runtime's free list is momentarily empty.
		if got := measure(workers); got > base+2 {
			t.Errorf("workers=%d: %.1f allocs/op, want flat at ~%.1f (workers=1)", workers, got, base)
		}
	}
}

func TestCountHeuristicParallelCancellation(t *testing.T) {
	pt := mustConvert(t, "sb")
	c, err := NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	bs := lockstepBufs(pt, 100000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.CountHeuristicParallel(ctx, bs, 2); err == nil {
		t.Fatal("cancelled heuristic count returned no error")
	}
}
