package core

import (
	"context"
	"math/rand"
	"testing"

	"perple/internal/litmus"
)

// requireSameCounts holds a factorized result to the odometer's,
// bit-for-bit: every per-outcome tally and the logical frame count.
func requireSameCounts(t *testing.T, name string, fac, odo *CountResult) {
	t.Helper()
	if fac.Frames != odo.Frames {
		t.Fatalf("%s: factorized frames = %d, odometer = %d", name, fac.Frames, odo.Frames)
	}
	if len(fac.Counts) != len(odo.Counts) {
		t.Fatalf("%s: count lengths differ: %d vs %d", name, len(fac.Counts), len(odo.Counts))
	}
	for i := range fac.Counts {
		if fac.Counts[i] != odo.Counts[i] {
			t.Fatalf("%s: outcome %d: factorized = %d, odometer = %d (all: fac=%v odo=%v)",
				name, i, fac.Counts[i], odo.Counts[i], fac.Counts, odo.Counts)
		}
	}
}

// TestFactorizedCoversSuite asserts the factorized path actually engages
// (no silent odometer fallback) for every convertible suite test with
// its full outcome set — the speedup claim is void if the planner bails.
func TestFactorizedCoversSuite(t *testing.T) {
	for _, e := range litmus.Suite() {
		pt, err := Convert(e.Test)
		if err != nil {
			continue
		}
		pos, err := ConvertAllOutcomes(pt)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCounter(pt, pos)
		bs := NewBufSet(pt, 4)
		if _, ok, err := c.CountFactorized(bs); err != nil {
			t.Fatalf("%s: %v", e.Test.Name, err)
		} else if !ok {
			t.Errorf("%s: full outcome set fell back to the odometer", e.Test.Name)
		}
	}
}

// TestFactorizedMatchesOdometerSuite is the headline differential: for
// every convertible suite test (TL spans 1..3: mp, sb/iriw, podwr001)
// and its full first-match outcome chain, the factorized counter must
// reproduce the odometer's tallies exactly over random buffers.
func TestFactorizedMatchesOdometerSuite(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rounds := 12
	if testing.Short() {
		rounds = 3
	}
	for _, e := range litmus.Suite() {
		pt, err := Convert(e.Test)
		if err != nil {
			continue
		}
		pos, err := ConvertAllOutcomes(pt)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCounter(pt, pos)
		for round := 0; round < rounds; round++ {
			n := 1 + rng.Intn(14)
			bs := randomBufs(rng, pt, n)
			odo, err := c.CountExhaustive(bs)
			if err != nil {
				t.Fatal(err)
			}
			fac, ok, err := c.CountFactorized(bs)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s: unexpected fallback", e.Test.Name)
			}
			requireSameCounts(t, e.Test.Name, fac, odo)
		}
	}
}

// TestFactorizedMatchesOdometerLockstep pins the differential to the
// analytically known lockstep sb partition (diagonal + two triangles).
func TestFactorizedMatchesOdometerLockstep(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(pt, pos)
	const n = 20
	bs := lockstepBufs(pt, n)
	fac, ok, err := c.CountFactorized(bs)
	if err != nil || !ok {
		t.Fatalf("factorized: ok=%v err=%v", ok, err)
	}
	want := []int64{n, n * (n - 1) / 2, n * (n - 1) / 2, 0}
	for i, w := range want {
		if fac.Counts[i] != w {
			t.Errorf("outcome %d count = %d, want %d", i, fac.Counts[i], w)
		}
	}
	if fac.Frames != n*n {
		t.Errorf("frames = %d, want %d", fac.Frames, n*n)
	}
}

// TestFactorizedFuzzOutcomeSets is the satellite fuzz: random outcome
// subsets of size 1–4 — with replacement, so duplicated outcomes force
// fully overlapping sets through the inclusion–exclusion chain (a
// duplicate's first-match count must be exactly 0) — over random
// BufSets and varying N, for tests spanning TL ∈ {1, 2, 3}.
func TestFactorizedFuzzOutcomeSets(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	for _, name := range []string{"mp", "sb", "amd3", "iriw", "podwr001"} {
		pt := mustConvert(t, name)
		pos, err := ConvertAllOutcomes(pt)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < rounds; round++ {
			k := 1 + rng.Intn(4)
			sel := make([]*PerpetualOutcome, k)
			for i := range sel {
				sel[i] = pos[rng.Intn(len(pos))]
			}
			c := NewCounter(pt, sel)
			n := 1 + rng.Intn(12)
			bs := randomBufs(rng, pt, n)
			odo, err := c.CountExhaustive(bs)
			if err != nil {
				t.Fatal(err)
			}
			fac, ok, err := c.CountFactorized(bs)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("%s round %d: unexpected fallback", name, round)
			}
			requireSameCounts(t, name, fac, odo)
			for i := range sel {
				for j := 0; j < i; j++ {
					if sel[j] == sel[i] && fac.Counts[i] != 0 {
						t.Fatalf("%s: duplicated outcome %d counted %d frames, want 0",
							name, i, fac.Counts[i])
					}
				}
			}
		}
	}
}

// TestFactorizedEmptyAndZero covers the degenerate shapes the odometer
// special-cases: N=0 and an unsatisfiable outcome in the chain.
func TestFactorizedEmptyAndZero(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(pt, pos)
	fac, ok, err := c.CountFactorized(NewBufSet(pt, 0))
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if fac.Frames != 0 || fac.Total() != 0 {
		t.Errorf("N=0 produced frames=%d total=%d", fac.Frames, fac.Total())
	}

	unsat := &PerpetualOutcome{Unsatisfiable: true}
	cu := NewCounter(pt, []*PerpetualOutcome{unsat, pos[0]})
	rng := rand.New(rand.NewSource(3))
	bs := randomBufs(rng, pt, 9)
	odo, err := cu.CountExhaustive(bs)
	if err != nil {
		t.Fatal(err)
	}
	fac2, ok, err := cu.CountFactorized(bs)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	requireSameCounts(t, "sb+unsat", fac2, odo)
	if fac2.Counts[0] != 0 {
		t.Errorf("unsatisfiable outcome counted %d frames", fac2.Counts[0])
	}
}

// TestFactorizedFallbackCaps covers both fallback guards: an outcome
// set past the planner cap declines up front, and an adversarially
// overlapping chain (the same nonempty outcome duplicated 20 times, so
// no inclusion–exclusion subtree ever prunes) trips the term budget at
// run time. CountExhaustiveAuto must return odometer-identical tallies
// through either fallback.
func TestFactorizedFallbackCaps(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}

	huge := make([]*PerpetualOutcome, maxFactorOutcomes+1)
	for i := range huge {
		huge[i] = pos[i%len(pos)]
	}
	if _, ok, err := NewCounter(pt, huge).CountFactorized(NewBufSet(pt, 4)); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatalf("%d outcomes accepted past planner cap %d", len(huge), maxFactorOutcomes)
	}

	const n = 20
	dup := make([]*PerpetualOutcome, n)
	for i := range dup {
		dup[i] = pos[0] // target holds on the lockstep diagonal: nonempty
	}
	c := NewCounter(pt, dup)
	bs := lockstepBufs(pt, n)
	if _, ok, err := c.CountFactorized(bs); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("fully overlapping outcome chain did not trip the term budget")
	}
	auto, err := c.CountExhaustiveAuto(context.Background(), bs, 2)
	if err != nil {
		t.Fatal(err)
	}
	odo, err := c.CountExhaustive(bs)
	if err != nil {
		t.Fatal(err)
	}
	requireSameCounts(t, "sb-dup", auto, odo)
}

// TestCountExhaustiveAutoMatches: the auto selector must be
// tally-identical to the odometer whichever path it takes.
func TestCountExhaustiveAutoMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, name := range []string{"sb", "mp", "iriw", "podwr001"} {
		pt := mustConvert(t, name)
		pos, err := ConvertAllOutcomes(pt)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCounter(pt, pos)
		bs := randomBufs(rng, pt, 10)
		auto, err := c.CountExhaustiveAuto(context.Background(), bs, 3)
		if err != nil {
			t.Fatal(err)
		}
		odo, err := c.CountExhaustive(bs)
		if err != nil {
			t.Fatal(err)
		}
		requireSameCounts(t, name, auto, odo)
	}
}

// TestFactorizedCloneSharesPlans: Clones reuse the immutable plans but
// never the mutable scratch, so cloned counters stay independent.
func TestFactorizedCloneSharesPlans(t *testing.T) {
	pt := mustConvert(t, "podwr001")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(pt, pos)
	rng := rand.New(rand.NewSource(2))
	bs := randomBufs(rng, pt, 6)
	if _, ok, err := c.CountFactorized(bs); err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	cl := c.Clone()
	if cl.fscratch != nil {
		t.Fatal("clone shares factor scratch with parent")
	}
	if !cl.fplansBuilt || len(cl.fplans) != len(c.fplans) {
		t.Fatal("clone did not inherit factor plans")
	}
	odo, err := cl.CountExhaustive(bs)
	if err != nil {
		t.Fatal(err)
	}
	fac, ok, err := cl.CountFactorized(bs)
	if err != nil || !ok {
		t.Fatalf("clone: ok=%v err=%v", ok, err)
	}
	requireSameCounts(t, "podwr001-clone", fac, odo)
}
