package core

import (
	"fmt"
	"sort"
	"strings"

	"perple/internal/litmus"
)

// Rel is the happens-before kind of a perpetual-outcome constraint.
type Rel int

const (
	// RF is a read-from constraint: the load read the target store's
	// iteration-m value or a provably later drain of the same thread.
	// For a single-sequence location this is exactly the paper's
	// "X ≥ K·m + A"; with multiple stores per location the loaded value
	// must additionally lie on one of the target thread's sequences (the
	// paper's "term of the appropriate sequence"), since only same-thread
	// drains are FIFO-ordered and numeric comparison across threads'
	// sequences would be unsound.
	RF Rel = iota
	// FR is a from-read constraint: the load happened before the target
	// store's iteration-m drain. Reading 0 satisfies it for any m; reading
	// a same-thread value bounds m from below using the thread's FIFO
	// drain order (exactly the paper's "X ≤ K·m + A − 1" for single
	// sequences); reading another thread's value falls back to the
	// paper's numeric relaxation ("any term smaller than that stored"),
	// since cross-thread drains carry no provable order. No Table II
	// target combines a forbidden pattern with a cross-thread fr
	// condition, so the relaxation cannot introduce false positives on
	// the suite (the harness tests check this end to end).
	FR
	// EQZero constrains the loaded value to be exactly the initial 0;
	// used when the outcome expects 0 from a location no thread stores.
	EQZero
)

func (r Rel) String() string {
	switch r {
	case RF:
		return "rf"
	case FR:
		return "fr"
	case EQZero:
		return "=0"
	default:
		return fmt.Sprintf("Rel(%d)", int(r))
	}
}

// BufRef identifies a loaded value within the in-memory run results: slot
// Slot of thread Thread, i.e. buf[Thread][Reads[Thread]·n + Slot] once
// the thread's iteration index n is known.
type BufRef struct {
	Thread int
	Slot   int
}

// Constraint is one condition of a perpetual outcome (paper Fig. 6 steps
// 1-4): the buf value Ref, read at its thread's frame index, related by
// Rel to iteration variable Var's store.
type Constraint struct {
	Ref BufRef
	Rel Rel
	// Var is the thread whose iteration variable appears on the
	// right-hand side (the target store's thread); -1 for EQZero.
	Var int
	// K is k_mem of the loaded location and A the target store's
	// normalized offset, so the target store writes K·m + A at its
	// iteration m.
	K, A int64
	// StoreIdx is the target store's instruction index within thread Var,
	// ordering same-iteration drains of the same thread.
	StoreIdx int
	// SeqThread and SeqIdx decode loaded values: offset a (1-based) was
	// stored by thread SeqThread[a-1] at instruction index SeqIdx[a-1].
	SeqThread []int
	SeqIdx    []int
}

// String renders the constraint in the paper's Figure 6 inequality form;
// for multi-sequence locations the sequence-membership requirement is
// noted.
func (c Constraint) String() string {
	if c.Rel == EQZero {
		return fmt.Sprintf("buf%d[%d] == 0", c.Ref.Thread, c.Ref.Slot)
	}
	op := ">="
	cc := c.A
	if c.Rel == FR {
		op = "<="
		cc = c.A - 1
	}
	rhs := fmt.Sprintf("n%d", c.Var)
	if c.K != 1 {
		rhs = fmt.Sprintf("%d*n%d", c.K, c.Var)
	}
	if cc > 0 {
		rhs += fmt.Sprintf(" + %d", cc)
	} else if cc < 0 {
		rhs += fmt.Sprintf(" - %d", -cc)
	}
	s := fmt.Sprintf("buf%d[%d] %s %s", c.Ref.Thread, c.Ref.Slot, op, rhs)
	if c.K > 1 {
		s += fmt.Sprintf(" [on seq of t%d]", c.Var)
	}
	return s
}

// decode splits a positive loaded value into its sequence offset and
// iteration. The caller guarantees x > 0 and c.K > 0.
func (c *Constraint) decode(x int64) (a, m int64) {
	a = (x-1)%c.K + 1
	return a, (x - a) / c.K
}

// rfBound returns the largest target-store iteration m such that reading
// x proves the load happened at or after the target's iteration-m drain,
// and ok=false when x proves nothing (zero, or another thread's value).
func (c *Constraint) rfBound(x int64) (ub int64, ok bool) {
	if x <= 0 {
		return 0, false
	}
	a, m := c.decode(x)
	if c.SeqThread[a-1] != c.Var {
		return 0, false
	}
	if c.SeqIdx[a-1] < c.StoreIdx {
		m--
	}
	if m < 0 {
		return 0, false
	}
	return m, true
}

// frBound returns the smallest target-store iteration m such that reading
// x indicates the load happened before the target's iteration-m drain.
// Reading 0 indicates it for every m ≥ 0; a same-thread value gives the
// exact FIFO-drain bound; another thread's value uses the paper's numeric
// relaxation.
func (c *Constraint) frBound(x int64) (lb int64, ok bool) {
	if x == 0 {
		return 0, true
	}
	if x < 0 {
		return 0, false
	}
	a, m := c.decode(x)
	if c.SeqThread[a-1] != c.Var {
		// Cross-thread: x ≤ K·m + A − 1  ⇒  m ≥ ceil((x − A + 1) / K).
		lb = ceilDiv(x-c.A+1, c.K)
		if lb < 0 {
			lb = 0
		}
		return lb, true
	}
	if c.StoreIdx <= c.SeqIdx[a-1] {
		m++
	}
	return m, true
}

// PinKind tells how the heuristic derives a non-anchor iteration variable
// (paper Fig. 8 step 5).
type PinKind int

const (
	// PinRF decodes the partner iteration from a read-from value:
	// m = (X − C) / K, valid only when X lies on the sequence.
	PinRF PinKind = iota
	// PinFR takes the tightest iteration satisfying a from-read bound:
	// m = ceil((X − C) / K), clamped at 0.
	PinFR
	// PinDiagonal falls back to the anchor index when no condition
	// observes the thread's progress (e.g. the second reader of iriw).
	PinDiagonal
)

func (k PinKind) String() string {
	switch k {
	case PinRF:
		return "rf"
	case PinFR:
		return "fr"
	case PinDiagonal:
		return "diag"
	default:
		return fmt.Sprintf("PinKind(%d)", int(k))
	}
}

// Pin is one substitution step of the heuristic plan: derive iteration
// variable Var from the constraint at index Constraint of the outcome.
type Pin struct {
	Var        int
	Kind       PinKind
	Constraint int // index into Constraints; -1 for PinDiagonal
}

// PerpetualOutcome is a litmus outcome converted per Section IV-A: a
// conjunction of constraints over buf values and per-thread iteration
// variables, plus the heuristic evaluation plan of Section IV-B.
type PerpetualOutcome struct {
	Orig        litmus.Outcome
	Constraints []Constraint
	// FrameVars are the threads whose iteration variables form the frame
	// (the load-performing threads), in increasing order.
	FrameVars []int
	// ExistVars are store-only threads whose iteration variables are
	// existentially quantified and eliminated by interval intersection.
	ExistVars []int
	// Pins is the heuristic substitution plan, in evaluation order.
	Pins []Pin
	// Unsatisfiable marks outcomes that can never occur: a condition
	// expects a value no thread stores, or the outcome's implied
	// write-serialization requirements are cyclic (CoherenceViolation).
	// Both counters return 0 for them.
	Unsatisfiable bool
	// CoherenceViolation marks outcomes rejected by the write-
	// serialization cycle check: the sources its same-location reads
	// designate cannot be ordered consistently with per-thread FIFO
	// drains (e.g. the co-iriw target, where the two readers require
	// opposite coherence orders of the same two stores). Such outcomes
	// are also impossible cross-iteration, so the counters report 0.
	CoherenceViolation bool
}

// String renders the perpetual outcome as the paper's step-4 conjunction.
func (po *PerpetualOutcome) String() string {
	if po.Unsatisfiable {
		return "false"
	}
	parts := make([]string, len(po.Constraints))
	for i, c := range po.Constraints {
		parts[i] = c.String()
	}
	return strings.Join(parts, " && ")
}

// ErrNotConvertible reports why an outcome cannot become perpetual.
type ErrNotConvertible struct {
	Test    string
	Outcome litmus.Outcome
	Reason  string
}

func (e *ErrNotConvertible) Error() string {
	return fmt.Sprintf("core: %s: outcome %v is not convertible: %s", e.Test, e.Outcome, e.Reason)
}

// ConvertOutcome maps an outcome of the original test to its perpetual
// counterpart, performing steps 1-4 of Section IV-A and deriving the
// heuristic plan of Section IV-B:
//
//  1. classify each condition's happens-before edge: a non-zero expected
//     value is a read-from of the unique store of that value; an expected
//     zero is a from-read of every store to the location;
//  2. replace registers by buf slots indexed per-thread;
//  3. replace constants by generic sequence members K·m + A;
//  4. relax to inequalities (rf: ≥, fr: < i.e. ≤ with C−1).
//
// Outcomes with final-memory conditions are rejected: perpetual tests can
// only inspect shared memory after the whole run (Section V-C).
func ConvertOutcome(pt *PerpetualTest, o litmus.Outcome) (*PerpetualOutcome, error) {
	t := pt.Orig
	if o.HasMemConds() {
		return nil, &ErrNotConvertible{Test: t.Name, Outcome: o,
			Reason: "it constrains final shared memory, which perpetual tests cannot inspect per iteration"}
	}

	po := &PerpetualOutcome{Orig: o}
	varUsed := map[int]bool{}

	// Per-location decode tables, shared by that location's constraints.
	seqThread := map[litmus.Loc][]int{}
	seqIdx := map[litmus.Loc][]int{}
	for _, s := range pt.Stores {
		if seqThread[s.Loc] == nil {
			k := int(pt.K[s.Loc])
			seqThread[s.Loc] = make([]int, k)
			seqIdx[s.Loc] = make([]int, k)
		}
		seqThread[s.Loc][s.A-1] = s.Ref.Thread
		seqIdx[s.Loc][s.A-1] = s.Ref.Index
	}

	for _, cond := range o.Conds {
		slot, ok := pt.SlotOf(cond.Thread, cond.Reg)
		if !ok {
			return nil, &ErrNotConvertible{Test: t.Name, Outcome: o,
				Reason: fmt.Sprintf("condition %v references a register never loaded", cond)}
		}
		ref := BufRef{Thread: cond.Thread, Slot: slot}
		loc := pt.LoadLoc[cond.Thread][slot]
		k := pt.K[loc]

		switch {
		case cond.Value == 0 && k == 0:
			// No stores to loc: the load always reads the initial 0; keep
			// an explicit check so corrupt buf data is not miscounted.
			po.Constraints = append(po.Constraints, Constraint{Ref: ref, Rel: EQZero, Var: -1})
		case cond.Value == 0:
			// fr to every store of the location: the load provably happened
			// before iteration m of each storing instruction.
			for _, s := range pt.Stores {
				if s.Loc != loc {
					continue
				}
				po.Constraints = append(po.Constraints, Constraint{
					Ref: ref, Rel: FR, Var: s.Ref.Thread,
					K: s.K, A: s.A, StoreIdx: s.Ref.Index,
					SeqThread: seqThread[loc], SeqIdx: seqIdx[loc],
				})
				varUsed[s.Ref.Thread] = true
			}
		default:
			s := pt.StoreForValue(loc, cond.Value)
			if s == nil {
				po.Unsatisfiable = true
				continue
			}
			// rf from that store: the load saw that iteration's value or a
			// provably later drain of the same thread.
			po.Constraints = append(po.Constraints, Constraint{
				Ref: ref, Rel: RF, Var: s.Ref.Thread,
				K: s.K, A: s.A, StoreIdx: s.Ref.Index,
				SeqThread: seqThread[loc], SeqIdx: seqIdx[loc],
			})
			varUsed[s.Ref.Thread] = true
		}
		varUsed[cond.Thread] = true
	}

	po.FrameVars = append([]int(nil), pt.LoadThreads...)
	for v := range varUsed {
		if pt.Reads[v] == 0 {
			po.ExistVars = append(po.ExistVars, v)
		}
	}
	sort.Ints(po.ExistVars)

	if !po.Unsatisfiable && wsCycle(pt, o) {
		po.Unsatisfiable = true
		po.CoherenceViolation = true
	}

	po.derivePins(pt)
	return po, nil
}

// wsCycle performs the write-serialization consistency check of step 1 of
// Section IV-A (the happens-before analysis) that plain per-condition
// inequalities cannot express: each thread's same-location accesses, in
// program order, force an order on the drains of the stores the outcome
// designates as read-from sources (a read after a read, a read after an
// own store, and an own store after a read each order two store events;
// per-thread drains are FIFO). A cycle in these requirements — or a read
// of the initial 0 after a designated store read — makes the outcome
// impossible in any store-atomic execution, perpetual or not.
func wsCycle(pt *PerpetualTest, o litmus.Outcome) bool {
	t := pt.Orig

	// source of each designated load, keyed by (thread, slot): a store
	// InstrRef, or initRef for the initial 0.
	initRef := litmus.InstrRef{Thread: -1, Index: -1}
	source := map[[2]int]litmus.InstrRef{}
	for _, cond := range o.Conds {
		slot, ok := pt.SlotOf(cond.Thread, cond.Reg)
		if !ok {
			continue
		}
		if cond.Value == 0 {
			source[[2]int{cond.Thread, slot}] = initRef
			continue
		}
		loc := pt.LoadLoc[cond.Thread][slot]
		if s := pt.StoreForValue(loc, cond.Value); s != nil {
			source[[2]int{cond.Thread, slot}] = s.Ref
		}
	}

	// Positioned events per thread per location, in program order: own
	// stores (position: themselves) and designated loads (position: their
	// source).
	type event struct {
		src litmus.InstrRef
	}
	edges := map[litmus.InstrRef][]litmus.InstrRef{}
	addEdge := func(a, b litmus.InstrRef) { edges[a] = append(edges[a], b) }
	nodes := map[litmus.InstrRef]bool{}

	for ti, th := range t.Threads {
		byLoc := map[litmus.Loc][]event{}
		slot := 0
		for ii, in := range th.Instrs {
			switch in.Kind {
			case litmus.OpStore:
				ref := litmus.InstrRef{Thread: ti, Index: ii}
				nodes[ref] = true
				byLoc[in.Loc] = append(byLoc[in.Loc], event{src: ref})
			case litmus.OpLoad:
				if src, ok := source[[2]int{ti, slot}]; ok {
					byLoc[in.Loc] = append(byLoc[in.Loc], event{src: src})
					if src != initRef {
						nodes[src] = true
					}
				}
				slot++
			}
		}
		for _, evs := range byLoc {
			for i := 0; i < len(evs); i++ {
				for j := i + 1; j < len(evs); j++ {
					a, b := evs[i].src, evs[j].src
					switch {
					case a == b, a == initRef:
					case b == initRef:
						// A designated store read followed by a read of the
						// initial value: memory never travels back to 0.
						return true
					default:
						addEdge(a, b)
					}
				}
			}
		}
	}

	// Per-thread FIFO drain order among all involved stores.
	var refs []litmus.InstrRef
	for ref := range nodes {
		refs = append(refs, ref)
	}
	sort.Slice(refs, func(i, j int) bool {
		if refs[i].Thread != refs[j].Thread {
			return refs[i].Thread < refs[j].Thread
		}
		return refs[i].Index < refs[j].Index
	})
	for i := 0; i < len(refs); i++ {
		for j := i + 1; j < len(refs); j++ {
			if refs[i].Thread == refs[j].Thread {
				addEdge(refs[i], refs[j])
			}
		}
	}

	// Cycle detection.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[litmus.InstrRef]int{}
	var visit func(n litmus.InstrRef) bool
	visit = func(n litmus.InstrRef) bool {
		color[n] = grey
		for _, next := range edges[n] {
			switch color[next] {
			case grey:
				return true
			case white:
				if visit(next) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, ref := range refs {
		if color[ref] == white && visit(ref) {
			return true
		}
	}
	return false
}

// derivePins builds the heuristic substitution plan: starting from the
// anchor (the first load thread), repeatedly pin an unknown variable from
// a constraint whose buf value is already readable, preferring read-from
// pins (exact decode) over from-read pins (tightest bound). Load threads
// that no condition observes fall back to the diagonal. Store-only
// threads left unpinned stay existential; the heuristic evaluates their
// interval like the exhaustive counter does.
func (po *PerpetualOutcome) derivePins(pt *PerpetualTest) {
	if po.Unsatisfiable || len(po.FrameVars) == 0 {
		return
	}
	anchor := po.FrameVars[0]
	known := map[int]bool{anchor: true}

	for {
		progress := false
		// Prefer RF pins: they decode the partner iteration exactly.
		for pass := 0; pass < 2 && !progress; pass++ {
			for ci, c := range po.Constraints {
				if c.Rel == EQZero || known[c.Var] || !known[c.Ref.Thread] {
					continue
				}
				if pass == 0 && c.Rel != RF {
					continue
				}
				kind := PinRF
				if c.Rel == FR {
					kind = PinFR
				}
				po.Pins = append(po.Pins, Pin{Var: c.Var, Kind: kind, Constraint: ci})
				known[c.Var] = true
				progress = true
				break
			}
		}
		if !progress {
			break
		}
	}

	// Diagonal fallback for unobserved load threads (their buf values are
	// needed to evaluate constraints but nothing pins their index).
	for _, v := range po.FrameVars {
		if !known[v] {
			po.Pins = append(po.Pins, Pin{Var: v, Kind: PinDiagonal, Constraint: -1})
			known[v] = true
		}
	}
}

// ConvertAllOutcomes converts every outcome of the test's full outcome
// space, in litmus.Test.AllOutcomes order.
func ConvertAllOutcomes(pt *PerpetualTest) ([]*PerpetualOutcome, error) {
	outs := pt.Orig.AllOutcomes()
	pos := make([]*PerpetualOutcome, len(outs))
	for i, o := range outs {
		po, err := ConvertOutcome(pt, o)
		if err != nil {
			return nil, err
		}
		pos[i] = po
	}
	return pos, nil
}
