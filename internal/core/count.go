package core

import (
	"fmt"

	"perple/internal/litmus"
)

// BufSet holds the in-memory results of a perpetual test run: for each
// load-performing thread t, Bufs[t] has length Reads[t]·N and slot
// Reads[t]·n + i records the i-th load of iteration n (Section III-B of
// the paper). Store-only threads have nil buffers.
type BufSet struct {
	N    int
	Bufs [][]int64
}

// NewBufSet allocates zeroed buffers for a run of n iterations.
func NewBufSet(pt *PerpetualTest, n int) *BufSet {
	bs := &BufSet{N: n, Bufs: make([][]int64, len(pt.Reads))}
	for t, r := range pt.Reads {
		if r > 0 {
			bs.Bufs[t] = make([]int64, r*n)
		}
	}
	return bs
}

// Validate checks that the buffer shapes match the perpetual test.
func (bs *BufSet) Validate(pt *PerpetualTest) error {
	if len(bs.Bufs) != len(pt.Reads) {
		return fmt.Errorf("core: bufset has %d threads, test has %d", len(bs.Bufs), len(pt.Reads))
	}
	for t, r := range pt.Reads {
		want := r * bs.N
		if len(bs.Bufs[t]) != want {
			return fmt.Errorf("core: thread %d buffer has %d entries, want %d", t, len(bs.Bufs[t]), want)
		}
	}
	return nil
}

// Counter counts perpetual-outcome occurrences in run results. It holds
// the converted outcomes of interest in evaluation order; like the
// paper's generated COUNT/COUNTH functions, at most one outcome is
// counted per frame (first match wins). A Counter keeps scratch state
// between frames and is not safe for concurrent use; clone one per
// goroutine with Clone.
type Counter struct {
	pt       *PerpetualTest
	outcomes []*PerpetualOutcome

	// Scratch, indexed by thread.
	vals    []int64
	lo, hi  []int64
	isExist []bool

	// Factorized-counting state (see factor.go). Plans are immutable
	// once built and shared across Clones; scratch is per-Counter.
	fplans      []*outcomePlan
	fplansOK    bool
	fplansBuilt bool
	fscratch    *factorScratch

	// Reusable parallel-count workers (see parallel.go); never cloned.
	cpool *countPool
}

// NewCounter builds a counter for the given outcomes of interest.
func NewCounter(pt *PerpetualTest, outcomes []*PerpetualOutcome) *Counter {
	n := len(pt.Reads)
	return &Counter{
		pt:       pt,
		outcomes: outcomes,
		vals:     make([]int64, n),
		lo:       make([]int64, n),
		hi:       make([]int64, n),
		isExist:  make([]bool, n),
	}
}

// NewTargetCounter converts the test's target outcome and returns a
// counter for it alone, the common configuration in the paper's
// evaluation.
func NewTargetCounter(pt *PerpetualTest) (*Counter, error) {
	po, err := ConvertOutcome(pt, pt.Orig.Target)
	if err != nil {
		return nil, err
	}
	return NewCounter(pt, []*PerpetualOutcome{po}), nil
}

// Clone returns an independent counter over the same outcomes, usable
// from another goroutine.
func (c *Counter) Clone() *Counter {
	cl := NewCounter(c.pt, c.outcomes)
	cl.fplans, cl.fplansOK, cl.fplansBuilt = c.fplans, c.fplansOK, c.fplansBuilt
	return cl
}

// Outcomes returns the outcomes of interest in evaluation order.
func (c *Counter) Outcomes() []*PerpetualOutcome { return c.outcomes }

// CountResult reports outcome occurrences plus the work performed, used
// for the paper's runtime accounting (frames examined dominates counting
// cost).
type CountResult struct {
	// Counts[i] is the number of frames whose first matching outcome of
	// interest was outcomes[i].
	Counts []int64
	// Frames is the number of frames examined: N^TL for the exhaustive
	// counter, N for the heuristic.
	Frames int64
}

// Merge folds another count result over the same outcome set into r,
// summing per-outcome counts and frames. Merging is commutative and
// associative, so per-shard counts combine in any order.
func (r *CountResult) Merge(o *CountResult) error {
	if len(r.Counts) != len(o.Counts) {
		return fmt.Errorf("core: cannot merge count results over %d and %d outcomes",
			len(r.Counts), len(o.Counts))
	}
	r.Frames += o.Frames
	for i, v := range o.Counts {
		r.Counts[i] += v
	}
	return nil
}

// Total sums all outcome counts.
func (r *CountResult) Total() int64 {
	var t int64
	for _, c := range r.Counts {
		t += c
	}
	return t
}

// CountExhaustive is Algorithm 1: it enumerates every frame — one
// iteration index per load-performing thread, N^TL tuples — and counts
// the first outcome of interest satisfied in each.
func (c *Counter) CountExhaustive(bs *BufSet) (*CountResult, error) {
	if err := bs.Validate(c.pt); err != nil {
		return nil, err
	}
	res := &CountResult{Counts: make([]int64, len(c.outcomes))}
	n := int64(bs.N)
	if n == 0 || c.pt.TL() == 0 {
		return res, nil
	}
	tl := c.pt.TL()
	idx := make([]int64, tl)
	for {
		for i, t := range c.pt.LoadThreads {
			c.vals[t] = idx[i]
		}
		res.Frames++
		for oi, po := range c.outcomes {
			if c.eval(po, bs, n) {
				res.Counts[oi]++
				break
			}
		}
		// Odometer over the frame space.
		i := tl - 1
		for i >= 0 {
			idx[i]++
			if idx[i] < n {
				break
			}
			idx[i] = 0
			i--
		}
		if i < 0 {
			return res, nil
		}
	}
}

// CountHeuristic is Algorithm 2: it walks the anchor thread's iterations
// once, derives every other iteration index by the substitution plan of
// Section IV-B (or the diagonal fallback), and counts the first satisfied
// outcome of interest. Its work is linear in N.
func (c *Counter) CountHeuristic(bs *BufSet) (*CountResult, error) {
	if err := bs.Validate(c.pt); err != nil {
		return nil, err
	}
	res := &CountResult{Counts: make([]int64, len(c.outcomes))}
	if bs.N == 0 || c.pt.TL() == 0 {
		return res, nil
	}
	anchor := c.pt.LoadThreads[0]
	n := int64(bs.N)
	for i := int64(0); i < n; i++ {
		res.Frames++
		for oi, po := range c.outcomes {
			c.vals[anchor] = i
			if c.evalPinned(po, bs, n, i) {
				res.Counts[oi]++
				break
			}
		}
	}
	return res, nil
}

// bufVal reads the recorded load value for thread t's slot at its current
// iteration index.
//
//perple:hotpath cover=core-count-eval
func (c *Counter) bufVal(bs *BufSet, ref BufRef) int64 {
	return bs.Bufs[ref.Thread][int64(c.pt.Reads[ref.Thread])*c.vals[ref.Thread]+int64(ref.Slot)]
}

// eval decides whether the perpetual outcome holds for the frame whose
// load-thread indices are in c.vals. Store-only threads are existential:
// their constraints intersect to an interval that must meet [0, N).
//
//perple:hotpath cover=core-count-eval
func (c *Counter) eval(po *PerpetualOutcome, bs *BufSet, n int64) bool {
	if po.Unsatisfiable {
		return false
	}
	for _, ev := range po.ExistVars {
		c.isExist[ev] = true
		c.lo[ev], c.hi[ev] = 0, n-1
	}
	ok := c.evalConstraints(po, bs)
	if ok {
		for _, ev := range po.ExistVars {
			if c.lo[ev] > c.hi[ev] {
				ok = false
				break
			}
		}
	}
	for _, ev := range po.ExistVars {
		c.isExist[ev] = false
	}
	return ok
}

// evalConstraints checks every constraint against c.vals, folding
// existential variables into c.lo/c.hi intervals. An RF constraint proves
// a largest consistent target iteration (upper bound); an FR constraint a
// smallest (lower bound); values that prove nothing (off the target
// thread's sequences) fail the constraint.
//
//perple:hotpath cover=core-count-eval
func (c *Counter) evalConstraints(po *PerpetualOutcome, bs *BufSet) bool {
	for i := range po.Constraints {
		con := &po.Constraints[i]
		x := c.bufVal(bs, con.Ref)
		switch con.Rel {
		case EQZero:
			if x != 0 {
				return false
			}
		case RF:
			ub, ok := con.rfBound(x)
			if !ok {
				return false
			}
			if c.isExist[con.Var] {
				if ub < c.hi[con.Var] {
					c.hi[con.Var] = ub
				}
			} else if c.vals[con.Var] > ub {
				return false
			}
		case FR:
			lb, ok := con.frBound(x)
			if !ok {
				return false
			}
			if c.isExist[con.Var] {
				if lb > c.lo[con.Var] {
					c.lo[con.Var] = lb
				}
			} else if c.vals[con.Var] < lb {
				return false
			}
		}
	}
	return true
}

// evalPinned runs the heuristic plan: execute the pins to derive the
// non-anchor indices, then evaluate like eval with every pinned variable
// concrete. A pin that fails (value off-sequence, index out of range)
// means the heuristic misses this anchor iteration.
//
//perple:hotpath cover=core-count-eval
func (c *Counter) evalPinned(po *PerpetualOutcome, bs *BufSet, n, anchorN int64) bool {
	if po.Unsatisfiable {
		return false
	}
	for _, p := range po.Pins {
		var m int64
		switch p.Kind {
		case PinDiagonal:
			m = anchorN
		default:
			con := &po.Constraints[p.Constraint]
			x := c.bufVal(bs, con.Ref)
			var ok bool
			if p.Kind == PinRF {
				// Pin to the latest target iteration the value proves.
				m, ok = con.rfBound(x)
			} else {
				// Pin to the tightest iteration satisfying the fr bound.
				m, ok = con.frBound(x)
			}
			if !ok {
				return false
			}
		}
		if m < 0 || m >= n {
			return false
		}
		c.vals[p.Var] = m
	}

	// Store-only variables not pinned by the plan stay existential.
	exist := false
	for _, ev := range po.ExistVars {
		if !pinsVar(po.Pins, ev) {
			c.isExist[ev] = true
			c.lo[ev], c.hi[ev] = 0, n-1
			exist = true
		}
	}
	ok := c.evalConstraints(po, bs)
	if ok && exist {
		for _, ev := range po.ExistVars {
			if c.isExist[ev] && c.lo[ev] > c.hi[ev] {
				ok = false
				break
			}
		}
	}
	if exist {
		for _, ev := range po.ExistVars {
			c.isExist[ev] = false
		}
	}
	return ok
}

func pinsVar(pins []Pin, v int) bool {
	for _, p := range pins {
		if p.Var == v {
			return true
		}
	}
	return false
}

// floorDiv divides rounding towards negative infinity (b > 0).
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// ceilDiv divides rounding towards positive infinity (b > 0).
func ceilDiv(a, b int64) int64 {
	return -floorDiv(-a, b)
}

// DecodeValue identifies the store instruction and iteration that
// produced a value loaded from loc during a perpetual run. ok is false
// for the initial value 0 or values on no store's sequence. This is the
// paper's Section VI-B5 insight, used for thread-skew measurement.
func DecodeValue(pt *PerpetualTest, loc litmus.Loc, v int64) (store *SeqStore, iter int64, ok bool) {
	if v <= 0 {
		return nil, 0, false
	}
	k := pt.K[loc]
	if k == 0 {
		return nil, 0, false
	}
	a := (v-1)%k + 1
	s := pt.StoreFor(loc, a)
	if s == nil {
		return nil, 0, false
	}
	iter, ok = s.DecodeIteration(v)
	if !ok {
		return nil, 0, false
	}
	return s, iter, true
}
