package core

import (
	"strings"
	"testing"

	"perple/internal/litmus"
)

func mustConvert(t *testing.T, name string) *PerpetualTest {
	t.Helper()
	test, err := litmus.SuiteTest(name)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := Convert(test)
	if err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestConvertSB(t *testing.T) {
	pt := mustConvert(t, "sb")
	if pt.K["x"] != 1 || pt.K["y"] != 1 {
		t.Errorf("k_x=%d k_y=%d, want 1 1", pt.K["x"], pt.K["y"])
	}
	if len(pt.Stores) != 2 {
		t.Fatalf("%d sequence stores, want 2", len(pt.Stores))
	}
	// Thread 0 stores n+1 to x: K=1, A=1.
	s := pt.StoresByThread(0)
	if len(s) != 1 || s[0].K != 1 || s[0].A != 1 || s[0].Loc != "x" {
		t.Errorf("thread 0 store = %+v, want x: 1*n+1", s)
	}
	if got := s[0].Value(5); got != 6 {
		t.Errorf("store value at n=5 is %d, want 6", got)
	}
	if pt.Reads[0] != 1 || pt.Reads[1] != 1 {
		t.Errorf("reads = %v, want [1 1]", pt.Reads)
	}
	if len(pt.LoadThreads) != 2 {
		t.Errorf("load threads = %v, want [0 1]", pt.LoadThreads)
	}
	if slot, ok := pt.SlotOf(0, 0); !ok || slot != 0 {
		t.Errorf("slot of 0:r0 = %d,%v", slot, ok)
	}
	if _, ok := pt.SlotOf(0, 5); ok {
		t.Error("slot of unknown register should not resolve")
	}
	if pt.BufSize(0, 100) != 100 {
		t.Errorf("buf size = %d, want 100", pt.BufSize(0, 100))
	}
}

func TestConvertValueNormalizationAmd3(t *testing.T) {
	pt := mustConvert(t, "amd3")
	if pt.K["x"] != 2 {
		t.Fatalf("k_x = %d, want 2", pt.K["x"])
	}
	s1 := pt.StoreForValue("x", 1)
	s2 := pt.StoreForValue("x", 2)
	if s1 == nil || s2 == nil {
		t.Fatal("missing sequence stores for x")
	}
	if s1.A != 1 || s2.A != 2 || s1.K != 2 || s2.K != 2 {
		t.Errorf("offsets: a1=%d a2=%d k=%d,%d; want 1 2 2 2", s1.A, s2.A, s1.K, s2.K)
	}
	// Sequences 2n+1 and 2n+2 are disjoint and decode uniquely.
	for n := int64(0); n < 50; n++ {
		v1, v2 := s1.Value(n), s2.Value(n)
		if d, ok := s1.DecodeIteration(v1); !ok || d != n {
			t.Fatalf("decode(%d) via s1 = %d,%v", v1, d, ok)
		}
		if _, ok := s1.DecodeIteration(v2); ok {
			t.Fatalf("s1 wrongly decodes s2's value %d", v2)
		}
		if d, ok := s2.DecodeIteration(v2); !ok || d != n {
			t.Fatalf("decode(%d) via s2 = %d,%v", v2, d, ok)
		}
	}
	if _, ok := s1.DecodeIteration(0); ok {
		t.Error("initial value 0 must not decode")
	}
}

func TestConvertRejectsNonZeroInit(t *testing.T) {
	test := &litmus.Test{
		Name:    "bad-init",
		Threads: []litmus.Thread{{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Load(0, "x")}}},
		Init:    map[litmus.Loc]int64{"x": 7},
		Target:  litmus.Outcome{Conds: []litmus.Cond{{Thread: 0, Reg: 0, Value: 1}}},
	}
	if _, err := Convert(test); err == nil || !strings.Contains(err.Error(), "zero-initialized") {
		t.Errorf("Convert accepted non-zero init: %v", err)
	}
}

func TestConvertWholeSuite(t *testing.T) {
	for _, e := range litmus.Suite() {
		pt, err := Convert(e.Test)
		if err != nil {
			t.Errorf("%s: %v", e.Test.Name, err)
			continue
		}
		if got := pt.TL(); got != e.Test.TL() {
			t.Errorf("%s: TL=%d, want %d", e.Test.Name, got, e.Test.TL())
		}
		if _, err := ConvertOutcome(pt, e.Test.Target); err != nil {
			t.Errorf("%s: target conversion failed: %v", e.Test.Name, err)
		}
		if _, err := ConvertAllOutcomes(pt); err != nil {
			t.Errorf("%s: outcome-space conversion failed: %v", e.Test.Name, err)
		}
	}
}

func TestNonConvertibleOutcomesRejected(t *testing.T) {
	// The paper's 34/88 split: tests with final-memory targets cannot be
	// converted (Section V-C).
	for _, test := range litmus.NonConvertible() {
		pt, err := Convert(test)
		if err != nil {
			t.Errorf("%s: test conversion failed: %v", test.Name, err)
			continue
		}
		_, err = ConvertOutcome(pt, test.Target)
		var nc *ErrNotConvertible
		if err == nil {
			t.Errorf("%s: memory-condition target was converted", test.Name)
			continue
		}
		if !strings.Contains(err.Error(), "not convertible") {
			t.Errorf("%s: unexpected error %v", test.Name, err)
		}
		if asNotConvertible(err, &nc); nc == nil {
			t.Errorf("%s: error is %T, want *ErrNotConvertible", test.Name, err)
		}
	}
}

func asNotConvertible(err error, out **ErrNotConvertible) {
	if e, ok := err.(*ErrNotConvertible); ok {
		*out = e
	}
}

// TestFig6ExhaustiveConditions checks that the converter reproduces the
// paper's Figure 6 step-4 inequalities for all four sb outcomes:
//
//	p_out_0: buf0[n] <= m   && buf1[m] <= n
//	p_out_1: buf0[n] <= m   && buf1[m] >= n+1
//	p_out_2: buf0[n] >= m+1 && buf1[m] <= n
//	p_out_3: buf0[n] >= m+1 && buf1[m] >= n+1
func TestFig6ExhaustiveConditions(t *testing.T) {
	pt := mustConvert(t, "sb")
	type want struct {
		ref BufRef
		rel Rel
		v   int // iteration variable's thread
	}
	// Thread 0 loads y (stored by thread 1), thread 1 loads x (stored by
	// thread 0): a buf0 constraint's variable is m (thread 1) and a buf1
	// constraint's variable is n (thread 0).
	cases := []struct {
		r0, r1 int64 // original outcome values
		want   [2]want
	}{
		{0, 0, [2]want{ // buf0[n] <= m      && buf1[m] <= n
			{BufRef{0, 0}, FR, 1}, {BufRef{1, 0}, FR, 0}}},
		{0, 1, [2]want{ // buf0[n] <= m      && buf1[m] >= n+1
			{BufRef{0, 0}, FR, 1}, {BufRef{1, 0}, RF, 0}}},
		{1, 0, [2]want{ // buf0[n] >= m+1    && buf1[m] <= n
			{BufRef{0, 0}, RF, 1}, {BufRef{1, 0}, FR, 0}}},
		{1, 1, [2]want{ // buf0[n] >= m+1    && buf1[m] >= n+1
			{BufRef{0, 0}, RF, 1}, {BufRef{1, 0}, RF, 0}}},
	}
	for _, tc := range cases {
		o := litmus.Outcome{Conds: []litmus.Cond{
			{Thread: 0, Reg: 0, Value: tc.r0},
			{Thread: 1, Reg: 0, Value: tc.r1},
		}}
		po, err := ConvertOutcome(pt, o)
		if err != nil {
			t.Fatalf("(%d,%d): %v", tc.r0, tc.r1, err)
		}
		if po.Unsatisfiable {
			t.Fatalf("(%d,%d): wrongly unsatisfiable", tc.r0, tc.r1)
		}
		if len(po.Constraints) != 2 {
			t.Fatalf("(%d,%d): %d constraints, want 2: %v", tc.r0, tc.r1, len(po.Constraints), po)
		}
		for i, w := range tc.want {
			got := po.Constraints[i]
			if got.Ref != w.ref || got.Rel != w.rel || got.Var != w.v {
				t.Errorf("(%d,%d) constraint %d = %+v, want ref %v rel %v var %d",
					tc.r0, tc.r1, i, got, w.ref, w.rel, w.v)
			}
			// sb sequences are K=1, A=1 (k_mem = 1 per location).
			if got.K != 1 || got.A != 1 {
				t.Errorf("(%d,%d) constraint %d has K=%d A=%d, want 1 1", tc.r0, tc.r1, i, got.K, got.A)
			}
		}
		if len(po.ExistVars) != 0 {
			t.Errorf("(%d,%d): unexpected existential vars %v", tc.r0, tc.r1, po.ExistVars)
		}
	}
}

// TestFig8HeuristicPlans checks the substitution step 5 of Figure 8: for
// every sb outcome the heuristic pins m (thread 1's index) from the
// thread-0 buf value — rf outcomes decode m = buf0[n] − 1, fr outcomes
// take the tightest m = buf0[n].
func TestFig8HeuristicPlans(t *testing.T) {
	pt := mustConvert(t, "sb")
	cases := []struct {
		r0, r1 int64
		kind   PinKind
	}{
		{0, 0, PinFR}, // m := buf0[n]
		{0, 1, PinFR}, // m := buf0[n]
		{1, 0, PinRF}, // m := buf0[n] - 1
		{1, 1, PinRF}, // m := buf0[n] - 1
	}
	for _, tc := range cases {
		o := litmus.Outcome{Conds: []litmus.Cond{
			{Thread: 0, Reg: 0, Value: tc.r0},
			{Thread: 1, Reg: 0, Value: tc.r1},
		}}
		po, err := ConvertOutcome(pt, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(po.Pins) != 1 {
			t.Fatalf("(%d,%d): %d pins, want 1: %+v", tc.r0, tc.r1, len(po.Pins), po.Pins)
		}
		p := po.Pins[0]
		if p.Var != 1 || p.Kind != tc.kind {
			t.Errorf("(%d,%d): pin = %+v, want var 1 kind %v", tc.r0, tc.r1, p, tc.kind)
		}
		// The pin's source constraint must reference thread 0's buffer.
		if po.Constraints[p.Constraint].Ref.Thread != 0 {
			t.Errorf("(%d,%d): pin constraint reads thread %d, want 0",
				tc.r0, tc.r1, po.Constraints[p.Constraint].Ref.Thread)
		}
	}
}

// TestMPHeuristicPin: with a single load thread (mp), the store thread's
// variable is existential and the paper's substitution pins it from the
// flag read.
func TestMPHeuristicPin(t *testing.T) {
	pt := mustConvert(t, "mp")
	po, err := ConvertOutcome(pt, pt.Orig.Target) // 1:r0=1 && 1:r1=0
	if err != nil {
		t.Fatal(err)
	}
	if len(po.ExistVars) != 1 || po.ExistVars[0] != 0 {
		t.Fatalf("exist vars = %v, want [0]", po.ExistVars)
	}
	if len(po.Pins) != 1 || po.Pins[0].Var != 0 || po.Pins[0].Kind != PinRF {
		t.Fatalf("pins = %+v, want one rf pin of thread 0", po.Pins)
	}
	if len(po.FrameVars) != 1 || po.FrameVars[0] != 1 {
		t.Fatalf("frame vars = %v, want [1]", po.FrameVars)
	}
}

// TestIriwDiagonalFallback: nothing observes iriw's second reader, so its
// frame variable must fall back to the diagonal.
func TestIriwDiagonalFallback(t *testing.T) {
	pt := mustConvert(t, "iriw")
	po, err := ConvertOutcome(pt, pt.Orig.Target)
	if err != nil {
		t.Fatal(err)
	}
	var diag *Pin
	for i := range po.Pins {
		if po.Pins[i].Kind == PinDiagonal {
			diag = &po.Pins[i]
		}
	}
	if diag == nil {
		t.Fatalf("no diagonal pin in plan %+v", po.Pins)
	}
	if diag.Var != 3 {
		t.Errorf("diagonal pin on thread %d, want 3 (second reader)", diag.Var)
	}
}

func TestUnsatisfiableOutcome(t *testing.T) {
	pt := mustConvert(t, "sb")
	// No thread stores 9 to y.
	o := litmus.Outcome{Conds: []litmus.Cond{{Thread: 0, Reg: 0, Value: 9}}}
	po, err := ConvertOutcome(pt, o)
	if err != nil {
		t.Fatal(err)
	}
	if !po.Unsatisfiable {
		t.Error("outcome expecting an unstored value should be unsatisfiable")
	}
	if po.String() != "false" {
		t.Errorf("unsatisfiable outcome renders as %q", po.String())
	}
}

func TestPerpetualOutcomeString(t *testing.T) {
	pt := mustConvert(t, "sb")
	po, err := ConvertOutcome(pt, pt.Orig.Target)
	if err != nil {
		t.Fatal(err)
	}
	s := po.String()
	// The sb target renders as Figure 6's p_out_0 conjunction.
	if !strings.Contains(s, "buf0[0] <= n1") || !strings.Contains(s, "buf1[0] <= n0") {
		t.Errorf("target condition = %q", s)
	}
}

func TestEQZeroConstraint(t *testing.T) {
	// A load from a never-stored location expecting 0 yields EQZero.
	test := &litmus.Test{
		Name: "zeroload",
		Threads: []litmus.Thread{
			{Instrs: []litmus.Instr{litmus.Store("x", 1), litmus.Load(0, "q")}},
			{Instrs: []litmus.Instr{litmus.Load(0, "x")}},
		},
		Target: litmus.Outcome{Conds: []litmus.Cond{
			{Thread: 0, Reg: 0, Value: 0},
			{Thread: 1, Reg: 0, Value: 1},
		}},
	}
	pt, err := Convert(test)
	if err != nil {
		t.Fatal(err)
	}
	po, err := ConvertOutcome(pt, test.Target)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range po.Constraints {
		if c.Rel == EQZero {
			found = true
			if got := c.String(); got != "buf0[0] == 0" {
				t.Errorf("EQZero renders as %q", got)
			}
		}
	}
	if !found {
		t.Errorf("no EQZero constraint in %v", po)
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{Ref: BufRef{2, 1}, Rel: RF, K: 3, A: 2, Var: 0}
	if got := c.String(); got != "buf2[1] >= 3*n0 + 2 [on seq of t0]" {
		t.Errorf("constraint string = %q", got)
	}
	c = Constraint{Ref: BufRef{0, 0}, Rel: FR, K: 1, A: 0, Var: 2}
	if got := c.String(); got != "buf0[0] <= n2 - 1" {
		t.Errorf("constraint string = %q", got)
	}
}

func TestDecodeValue(t *testing.T) {
	pt := mustConvert(t, "amd3")
	s2 := pt.StoreForValue("x", 2)
	v := s2.Value(7)
	store, iter, ok := DecodeValue(pt, "x", v)
	if !ok || iter != 7 || store.OrigValue != 2 {
		t.Errorf("DecodeValue(%d) = %+v, %d, %v", v, store, iter, ok)
	}
	if _, _, ok := DecodeValue(pt, "x", 0); ok {
		t.Error("0 must not decode")
	}
	if _, _, ok := DecodeValue(pt, "unstored", 5); ok {
		t.Error("value at unstored location must not decode")
	}
}
