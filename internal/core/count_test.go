package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"perple/internal/litmus"
)

// lockstepBufs builds the buf contents of an idealized perfectly aligned
// perpetual sb run with full store buffering: at iteration n each thread
// reads the partner's previous iteration value, so buf[n] = n.
func lockstepBufs(pt *PerpetualTest, n int) *BufSet {
	bs := NewBufSet(pt, n)
	for t := range bs.Bufs {
		for i := 0; i < n; i++ {
			if bs.Bufs[t] != nil {
				bs.Bufs[t][i] = int64(i)
			}
		}
	}
	return bs
}

func TestCountExhaustiveSBLockstep(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(pt, pos)
	const n = 20
	bs := lockstepBufs(pt, n)
	res, err := c.CountExhaustive(bs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != n*n {
		t.Errorf("frames = %d, want %d", res.Frames, n*n)
	}
	// Outcomes enumerate as (0,0), (0,1), (1,0), (1,1). In the lockstep
	// run the target (0,0) holds exactly on the diagonal; (0,1) holds for
	// m > n; (1,0) for m < n; (1,1) never — a disjoint partition of the
	// frame space.
	want := []int64{n, n * (n - 1) / 2, n * (n - 1) / 2, 0}
	for i, w := range want {
		if res.Counts[i] != w {
			t.Errorf("outcome %d count = %d, want %d", i, res.Counts[i], w)
		}
	}
	if res.Total() != n*n {
		t.Errorf("total = %d, want %d", res.Total(), n*n)
	}
}

func TestCountHeuristicSBLockstep(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(pt, pos)
	const n = 20
	bs := lockstepBufs(pt, n)
	res, err := c.CountHeuristic(bs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != n {
		t.Errorf("frames = %d, want %d (linear)", res.Frames, n)
	}
	// The heuristic pins m := buf0[n] = n; the first outcome (the target)
	// holds at every pinned frame, so first-match-wins counts it N times.
	if res.Counts[0] != n {
		t.Errorf("target count = %d, want %d", res.Counts[0], n)
	}
	if res.Total() != n {
		t.Errorf("total = %d, want %d", res.Total(), n)
	}
}

func TestCountEmptyRun(t *testing.T) {
	pt := mustConvert(t, "sb")
	c, err := NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	bs := NewBufSet(pt, 0)
	for _, count := range []func(*BufSet) (*CountResult, error){c.CountExhaustive, c.CountHeuristic} {
		res, err := count(bs)
		if err != nil {
			t.Fatal(err)
		}
		if res.Frames != 0 || res.Total() != 0 {
			t.Errorf("empty run produced frames=%d total=%d", res.Frames, res.Total())
		}
	}
}

func TestCountRejectsWrongShape(t *testing.T) {
	pt := mustConvert(t, "sb")
	c, err := NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	bs := &BufSet{N: 5, Bufs: [][]int64{make([]int64, 3), make([]int64, 5)}}
	if _, err := c.CountExhaustive(bs); err == nil {
		t.Error("mis-sized buffer accepted by exhaustive counter")
	}
	if _, err := c.CountHeuristic(bs); err == nil {
		t.Error("mis-sized buffer accepted by heuristic counter")
	}
}

// randomBufs fills buffers with random plausible values: 0 or members of
// the location's sequences from iterations in [0, N).
func randomBufs(rng *rand.Rand, pt *PerpetualTest, n int) *BufSet {
	bs := NewBufSet(pt, n)
	for _, t := range pt.LoadThreads {
		for i := 0; i < n; i++ {
			for s := 0; s < pt.Reads[t]; s++ {
				loc := pt.LoadLoc[t][s]
				var v int64
				if stores := storesTo(pt, loc); len(stores) > 0 && rng.Intn(4) != 0 {
					st := stores[rng.Intn(len(stores))]
					v = st.Value(rng.Int63n(int64(n)))
				}
				bs.Bufs[t][pt.Reads[t]*i+s] = v
			}
		}
	}
	return bs
}

func storesTo(pt *PerpetualTest, loc litmus.Loc) []SeqStore {
	var out []SeqStore
	for _, s := range pt.Stores {
		if s.Loc == loc {
			out = append(out, s)
		}
	}
	return out
}

// TestHeuristicSoundness is the key property of Section IV-B: every
// heuristic hit corresponds to a real frame, so for a single outcome of
// interest the heuristic count never exceeds the exhaustive count, and a
// positive heuristic count implies a positive exhaustive count. Checked
// for every suite test over random buffer contents.
func TestHeuristicSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 12
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	for _, e := range litmus.Suite() {
		pt, err := Convert(e.Test)
		if err != nil {
			t.Fatal(err)
		}
		pos, err := ConvertAllOutcomes(pt)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < rounds; round++ {
			bs := randomBufs(rng, pt, n)
			for oi, po := range pos {
				c := NewCounter(pt, []*PerpetualOutcome{po})
				exh, err := c.CountExhaustive(bs)
				if err != nil {
					t.Fatal(err)
				}
				heur, err := c.CountHeuristic(bs)
				if err != nil {
					t.Fatal(err)
				}
				if heur.Counts[0] > exh.Counts[0] {
					t.Fatalf("%s outcome %d: heuristic count %d > exhaustive %d",
						e.Test.Name, oi, heur.Counts[0], exh.Counts[0])
				}
				if heur.Counts[0] > 0 && exh.Counts[0] == 0 {
					t.Fatalf("%s outcome %d: heuristic false positive", e.Test.Name, oi)
				}
			}
		}
	}
}

// TestFirstMatchWins: with multiple outcomes of interest, at most one
// entry is incremented per frame, like the paper's generated if/else-if
// chain; totals never exceed the frame count.
func TestFirstMatchWins(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, name := range []string{"sb", "amd3", "mp", "iriw", "podwr001"} {
		pt := mustConvert(t, name)
		pos, err := ConvertAllOutcomes(pt)
		if err != nil {
			t.Fatal(err)
		}
		c := NewCounter(pt, pos)
		const n = 8
		bs := randomBufs(rng, pt, n)
		exh, err := c.CountExhaustive(bs)
		if err != nil {
			t.Fatal(err)
		}
		if exh.Total() > exh.Frames {
			t.Errorf("%s: exhaustive total %d exceeds frames %d", name, exh.Total(), exh.Frames)
		}
		heur, err := c.CountHeuristic(bs)
		if err != nil {
			t.Fatal(err)
		}
		if heur.Total() > int64(n) {
			t.Errorf("%s: heuristic total %d exceeds N=%d", name, heur.Total(), n)
		}
	}
}

// TestExhaustiveMatchesBruteForce cross-checks eval against a direct
// reimplementation for sb: a frame satisfies the target iff
// buf0[n] <= m && buf1[m] <= n.
func TestExhaustiveMatchesBruteForce(t *testing.T) {
	pt := mustConvert(t, "sb")
	c, err := NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	const n = 10
	for round := 0; round < 30; round++ {
		bs := randomBufs(rng, pt, n)
		res, err := c.CountExhaustive(bs)
		if err != nil {
			t.Fatal(err)
		}
		var want int64
		for ni := int64(0); ni < n; ni++ {
			for m := int64(0); m < n; m++ {
				if bs.Bufs[0][ni] <= m && bs.Bufs[1][m] <= ni {
					want++
				}
			}
		}
		if res.Counts[0] != want {
			t.Fatalf("round %d: exhaustive = %d, brute force = %d", round, res.Counts[0], want)
		}
	}
}

// TestHeuristicMatchesPaperFormulaSB checks COUNTH against the literal
// Figure 8 formulas for all four sb outcomes with else-if ordering.
func TestHeuristicMatchesPaperFormulaSB(t *testing.T) {
	pt := mustConvert(t, "sb")
	pos, err := ConvertAllOutcomes(pt)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCounter(pt, pos)
	rng := rand.New(rand.NewSource(23))
	const n = int64(15)
	for round := 0; round < 30; round++ {
		bs := randomBufs(rng, pt, int(n))
		res, err := c.CountHeuristic(bs)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]int64, 4)
		buf0, buf1 := bs.Bufs[0], bs.Bufs[1]
		inRange := func(m int64) bool { return m >= 0 && m < n }
		for ni := int64(0); ni < n; ni++ {
			m0 := buf0[ni]     // fr pin: m := buf0[n]
			m1 := buf0[ni] - 1 // rf pin: m := buf0[n] - 1
			switch {
			case inRange(m0) && buf1[m0] <= ni:
				want[0]++ // p_out_h0: buf1[buf0[n]] <= n
			case inRange(m0) && buf1[m0] >= ni+1:
				want[1]++ // p_out_h1: buf1[buf0[n]] >= n+1
			case inRange(m1) && buf1[m1] <= ni:
				want[2]++ // p_out_h2: buf1[buf0[n]-1] <= n
			case inRange(m1) && buf1[m1] >= ni+1:
				want[3]++ // p_out_h3: buf1[buf0[n]-1] >= n+1
			}
		}
		for i := range want {
			if res.Counts[i] != want[i] {
				t.Fatalf("round %d outcome %d: COUNTH = %d, Figure 8 formula = %d (counts %v want %v)",
					round, i, res.Counts[i], want[i], res.Counts, want)
			}
		}
	}
}

func TestFloorCeilDiv(t *testing.T) {
	f := func(a int64, bRaw uint8) bool {
		b := int64(bRaw%7) + 1
		fd, cd := floorDiv(a, b), ceilDiv(a, b)
		if fd*b > a || (fd+1)*b <= a {
			return false
		}
		if cd*b < a || (cd-1)*b >= a {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestCounterClone(t *testing.T) {
	pt := mustConvert(t, "sb")
	c, err := NewTargetCounter(pt)
	if err != nil {
		t.Fatal(err)
	}
	clone := c.Clone()
	if len(clone.Outcomes()) != 1 {
		t.Error("clone lost outcomes")
	}
	bs := lockstepBufs(pt, 10)
	a, _ := c.CountExhaustive(bs)
	b, _ := clone.CountExhaustive(bs)
	if a.Counts[0] != b.Counts[0] {
		t.Errorf("clone disagrees: %d vs %d", a.Counts[0], b.Counts[0])
	}
}
