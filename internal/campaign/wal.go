package campaign

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"

	"perple/internal/harness"
)

// The dispatch write-ahead log makes the lease ledger durable: every
// state transition — grant, heartbeat extension, completion (with its
// merged-lease nonce), requeue, dead-letter, cancellation — appends one
// CRC-framed record before the response acknowledging it leaves the
// dispatcher. On restart the dispatcher replays snapshot + WAL suffix
// and reconstructs the exact ledger, so a crash no longer forgets which
// uploads merged or silently re-leases completed shards.
//
// Records reuse the PWB1 envelope discipline from wirebin.go: each is a
// standalone frame of magic | uvarint body length | body | CRC-32C, so
// the log is scanned frame by frame and a torn tail (a crash or
// partial_append fault mid-record) is detected by the frame scan or the
// CRC and truncated — never fatal, because the log only ever improves
// recovery precision; correctness rests on the completion fence and
// per-shard determinism either way.
//
// Durability is group-committed: the file is fsynced every syncEvery
// records (1 = every append). Compaction folds the log into the v2
// checksummed checkpoint (which carries the full ledger snapshot, see
// LedgerSnapshot) and then truncates the log via atomic rename of a
// fresh segment. The rename happens only after a successful checkpoint
// save, so a crash between the two leaves a stale log suffix over a
// newer snapshot — which replay tolerates, because every record states
// the absolute resulting row (last record per job wins).
//
// Append errors (disk full, partial_append faults) put the log in
// degraded mode: no further appends land until the next compaction
// installs a fresh segment. That keeps damage confined to the tail —
// the scan property replay depends on — at the cost of recovery
// precision for the degraded window, which the checkpoint still bounds.

// WAL record kinds. The kind is the first uvarint of every record body;
// the layout of the rest is fixed per kind (see walRecord).
const (
	// walKindBegin heads every segment: the CRC of the normalized spec,
	// so replay refuses a log written by a different campaign.
	walKindBegin = iota
	// walKindGrant records a lease grant (job, nonce, worker, expiry).
	walKindGrant
	// walKindExtend records a heartbeat extension of a live lease.
	walKindExtend
	// walKindComplete records a merged upload: the lease nonce that
	// carried it plus the full job result.
	walKindComplete
	// walKindRequeue records a return to pending — lease expiry, a
	// worker-reported failure with budget remaining, or a drain release —
	// with the absolute attempts count and last error after it.
	walKindRequeue
	// walKindDeadLetter records a job whose retry budget ran out.
	walKindDeadLetter
	// walKindCancel records campaign cancellation.
	walKindCancel
)

// walRecord is one ledger transition, encoded as its own PWB1 frame.
// Which fields are meaningful depends on Kind; the body layout is the
// field order below per kind and is frozen — like the upload codec, a
// layout change means a new magic, not a silent re-reading.
type walRecord struct {
	Kind int
	// SpecCRC identifies the campaign (walKindBegin).
	SpecCRC uint32
	// JobID names the row (grant, extend, requeue, dead-letter).
	// Complete records carry it inside Result.
	JobID int
	// LeaseID is the grant nonce (grant, extend, complete).
	LeaseID int64
	// Worker holds the grant (grant).
	Worker string
	// Expires is the lease deadline in Unix nanoseconds (grant, extend).
	Expires int64
	// Attempts is the absolute retry-budget consumption after the
	// transition (requeue, dead-letter).
	Attempts int
	// Err is the last failure message (requeue, dead-letter).
	Err string
	// Result is the merged shard result (complete).
	Result *JobResult
}

// AppendWireBody encodes the record body (kind tag, then the kind's
// fields in declaration order).
func (rec *walRecord) AppendWireBody(w *harness.WireWriter) {
	w.PutUvarint(uint64(rec.Kind))
	switch rec.Kind {
	case walKindBegin:
		w.PutUvarint(uint64(rec.SpecCRC))
	case walKindGrant:
		w.PutUvarint(uint64(rec.JobID))
		w.PutVarint(rec.LeaseID)
		w.PutString(rec.Worker)
		w.PutVarint(rec.Expires)
	case walKindExtend:
		w.PutUvarint(uint64(rec.JobID))
		w.PutVarint(rec.LeaseID)
		w.PutVarint(rec.Expires)
	case walKindComplete:
		w.PutVarint(rec.LeaseID)
		var scratch []string
		appendJobResult(w, rec.Result, &scratch)
	case walKindRequeue, walKindDeadLetter:
		w.PutUvarint(uint64(rec.JobID))
		w.PutUvarint(uint64(rec.Attempts))
		w.PutString(rec.Err)
	case walKindCancel:
	}
}

// DecodeWireBody reads a record body written by AppendWireBody.
func (rec *walRecord) DecodeWireBody(r *harness.WireReader) error {
	kind, err := r.Uvarint()
	if err != nil {
		return err
	}
	rec.Kind = int(kind)
	switch rec.Kind {
	case walKindBegin:
		crc, err := r.Uvarint()
		if err != nil {
			return err
		}
		rec.SpecCRC = uint32(crc)
	case walKindGrant:
		jobID, err := r.Uvarint()
		if err != nil {
			return err
		}
		rec.JobID = int(jobID)
		if rec.LeaseID, err = r.Varint(); err != nil {
			return err
		}
		if rec.Worker, err = r.String(); err != nil {
			return err
		}
		if rec.Expires, err = r.Varint(); err != nil {
			return err
		}
	case walKindExtend:
		jobID, err := r.Uvarint()
		if err != nil {
			return err
		}
		rec.JobID = int(jobID)
		if rec.LeaseID, err = r.Varint(); err != nil {
			return err
		}
		if rec.Expires, err = r.Varint(); err != nil {
			return err
		}
	case walKindComplete:
		if rec.LeaseID, err = r.Varint(); err != nil {
			return err
		}
		if rec.Result, err = decodeJobResult(r); err != nil {
			return err
		}
		rec.JobID = rec.Result.JobID
	case walKindRequeue, walKindDeadLetter:
		// Uvarint, not Int: r.Int bounds its value by the body length
		// (it is for in-band lengths), and these small records routinely
		// carry job IDs larger than their own byte count.
		jobID, err := r.Uvarint()
		if err != nil {
			return err
		}
		rec.JobID = int(jobID)
		attempts, err := r.Uvarint()
		if err != nil {
			return err
		}
		rec.Attempts = int(attempts)
		if rec.Err, err = r.String(); err != nil {
			return err
		}
	case walKindCancel:
	default:
		return fmt.Errorf("campaign: unknown WAL record kind %d", rec.Kind)
	}
	return nil
}

// specWALCRC fingerprints the campaign identity for segment headers:
// the IEEE CRC-32 of the normalized spec's JSON, the same identity the
// checkpoint's spec comparison enforces (resume-tunable fields
// stripped).
func specWALCRC(spec Spec) uint32 {
	data, err := json.Marshal(normalizeSpec(spec))
	if err != nil {
		return 0
	}
	return crc32.ChecksumIEEE(data)
}

// wal is the append side of the log. It is not safe for concurrent use;
// the Dispatcher serializes every call under its mutex, exactly as it
// does the leaseQueue the log shadows.
type wal struct {
	fsys      WALFS
	path      string
	syncEvery int
	specCRC   uint32
	metrics   *Metrics

	file     WALFile
	encBuf   []byte
	unsynced int
	// degraded stops appends after a write or fsync error until the next
	// successful segment install; disarmed stops them permanently (the
	// chaos suite's kill switch — a simulated kill -9 stops persisting
	// while the in-memory dispatcher keeps acknowledging).
	degraded bool
	disarmed bool
}

// newWAL builds the appender; no I/O happens until a segment is
// installed or opened.
func newWAL(fsys WALFS, path string, syncEvery int, specCRC uint32, metrics *Metrics) *wal {
	if syncEvery <= 0 {
		syncEvery = 1
	}
	return &wal{fsys: fsys, path: path, syncEvery: syncEvery, specCRC: specCRC, metrics: metrics}
}

// append encodes rec as one PWB1 frame and writes it, fsyncing when the
// group-commit cadence is due. Errors degrade the log instead of
// propagating: a record that cannot be made durable must not take the
// campaign down, it only widens the recovery window back to the last
// checkpoint.
func (w *wal) append(rec *walRecord) {
	if w == nil || w.disarmed || w.degraded || w.file == nil {
		return
	}
	w.encBuf = harness.EncodeWireBinary(w.encBuf[:0], rec)
	if _, err := w.file.Write(w.encBuf); err != nil {
		w.degraded = true
		w.metrics.WALAppendErrors.Add(1)
		return
	}
	w.metrics.WALAppends.Add(1)
	w.unsynced++
	if w.unsynced >= w.syncEvery {
		w.syncNow()
	}
}

// syncNow flushes appended records to stable storage ahead of cadence
// (the finish path calls it so the closing records are durable).
func (w *wal) syncNow() {
	if w == nil || w.disarmed || w.degraded || w.file == nil || w.unsynced == 0 {
		return
	}
	start := time.Now()
	err := w.file.Sync()
	w.metrics.WALFsyncNs.Add(time.Since(start).Nanoseconds())
	if err != nil {
		w.degraded = true
		w.metrics.WALAppendErrors.Add(1)
		return
	}
	w.unsynced = 0
}

// disarm permanently stops all appends and syncs (test kill switch).
func (w *wal) disarm() {
	if w != nil {
		w.disarmed = true
	}
}

// rotate installs a fresh segment holding only the begin record — the
// log truncation step of compaction. Callers rotate only after a
// successful checkpoint save; a failed rotation keeps the old segment,
// whose stale records replay harmlessly over the newer snapshot.
func (w *wal) rotate() error {
	return w.installSegment(harness.EncodeWireBinary(nil, &walRecord{Kind: walKindBegin, SpecCRC: w.specCRC}))
}

// installSegment atomically replaces the on-disk log with content
// (already-framed records) using the checkpoint writer's discipline —
// temp file, fsync, rename, directory sync — then reopens the append
// handle. Success clears degraded mode: the tail is clean again.
func (w *wal) installSegment(content []byte) error {
	if w.disarmed {
		return nil
	}
	dir := filepath.Dir(w.path)
	tmp, err := w.fsys.CreateTemp(dir, filepath.Base(w.path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: writing WAL segment: %w", err)
	}
	defer w.fsys.Remove(tmp.Name())
	if _, err := tmp.Write(content); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: writing WAL segment: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: syncing WAL segment: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: writing WAL segment: %w", err)
	}
	if err := w.fsys.Rename(tmp.Name(), w.path); err != nil {
		return fmt.Errorf("campaign: committing WAL segment: %w", err)
	}
	_ = w.fsys.SyncDir(dir)
	if w.file != nil {
		_ = w.file.Close()
		w.file = nil
	}
	f, err := w.fsys.OpenAppend(w.path)
	if err != nil {
		w.degraded = true
		return fmt.Errorf("campaign: reopening WAL: %w", err)
	}
	w.file = f
	w.degraded = false
	w.unsynced = 0
	return nil
}

// openExisting attaches the appender to the log already on disk without
// rewriting it — the startup path when the replayed segment's tail is
// clean and the history should simply continue.
func (w *wal) openExisting() error {
	if w.disarmed {
		return nil
	}
	f, err := w.fsys.OpenAppend(w.path)
	if err != nil {
		w.degraded = true
		return fmt.Errorf("campaign: opening WAL: %w", err)
	}
	w.file = f
	w.degraded = false
	return nil
}

// close releases the append handle (final syncs have already happened).
func (w *wal) close() {
	if w != nil && w.file != nil {
		_ = w.file.Close()
		w.file = nil
	}
}

// walReplay is what a startup scan of the log yields: the decodable
// records in append order, the byte prefix they occupy (the tail beyond
// it is torn), and whether a torn tail was dropped.
type walReplay struct {
	recs []walRecord
	// prefix is the valid byte range; installing it as a fresh segment
	// clears a torn tail without losing history.
	prefix []byte
	// truncated counts torn tail records dropped by the scan (0 or 1 —
	// the scan cannot see past the first damage).
	truncated int
	// existed reports whether the log file was present at all.
	existed bool
}

// replayWAL scans the log frame by frame, stopping at the first framing
// or CRC damage — by construction that is the torn tail of a crashed
// append, and everything before it is intact. A log headed by a begin
// record for a different spec is an error (the operator pointed the
// dispatcher at the wrong state directory); a missing file is a fresh
// campaign.
func replayWAL(fsys WALFS, path string, specCRC uint32) (walReplay, error) {
	var rep walReplay
	data, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return rep, fmt.Errorf("campaign: reading WAL: %w", err)
	}
	rep.existed = true
	pos := 0
	for pos < len(data) {
		n, ok := harness.WireFrameLen(data[pos:])
		if !ok {
			rep.truncated = 1
			break
		}
		var rec walRecord
		if err := harness.DecodeWireBinary(data[pos:pos+n], &rec, 0); err != nil {
			rep.truncated = 1
			break
		}
		rep.recs = append(rep.recs, rec)
		pos += n
	}
	rep.prefix = data[:pos]
	if len(rep.recs) > 0 {
		if rep.recs[0].Kind != walKindBegin {
			return rep, fmt.Errorf("campaign: WAL %s does not start with a begin record", path)
		}
		if rep.recs[0].SpecCRC != specCRC {
			return rep, fmt.Errorf("campaign: WAL %s was written by a different spec (CRC %08x, want %08x)",
				path, rep.recs[0].SpecCRC, specCRC)
		}
	}
	return rep, nil
}
