package campaign

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"perple/internal/litmus"
)

// DefaultLeaseTTL is how long a worker may sit on a leased job without
// heartbeating before it requeues.
const DefaultLeaseTTL = 60 * time.Second

// Dispatcher runs one campaign in distributed mode: instead of
// executing jobs on a local worker pool, it serves them to remote
// workers as leases and merges their uploaded results. The determinism
// contract is identical to the local scheduler's — job seeds are
// identity-derived and merging is order-invariant — so a fleet of k
// workers reaches byte-identical final results to a local run of the
// same spec, whatever the interleaving of leases, expiries, and
// uploads.
//
// Without a WAL, leases are in-memory only; the checkpoint persists
// completed results exactly as the local scheduler does, and a
// dispatcher rebuilt after a server restart restores the done set and
// re-leases everything that was in flight — at-least-once delivery,
// made safe by the completion fence and per-shard determinism. With
// Options.WALPath set, the durable dispatch plane (wal.go) logs every
// ledger transition, and a restart replays snapshot + log suffix to
// reconstruct the exact ledger — live leases, retry budgets, and the
// merged-lease nonces that keep duplicate-vs-fenced classification
// precise — instead of forgetting it.
type Dispatcher struct {
	camp   *Campaign
	opts   Options
	ttl    time.Duration
	every  int
	now    func() time.Time
	corpus []CorpusTest

	metrics *Metrics

	mu            sync.Mutex
	q             *leaseQueue
	wal           *wal // nil without Options.WALPath
	results       *Results
	done          map[int]*JobResult
	mergedLease   map[int]int64 // job ID → lease nonce its merged upload carried
	sinceSave     int
	sinceCompact  int // merges + dead letters since the last WAL compaction
	compactEvery  int
	checkpointErr error // final-save failure; transient mid-run errors only count in metrics
	finished      bool
	cancelled     bool
	finishCh      chan struct{}

	// killed simulates kill -9 for the chaos suite: every subsequent
	// checkpoint save and WAL append becomes a no-op while the in-memory
	// dispatcher keeps acknowledging — strictly more adversarial than a
	// real crash, which at least stops acking too. Reached only through
	// killHook, which tests install at adversarial junctures.
	killed   bool
	killHook func(point string) bool
}

// NewDispatcher validates and restores like Campaign.Run — checkpointed
// results are loaded and only the remaining jobs enter the lease queue
// — then stands ready to serve leases. ttl ≤ 0 selects DefaultLeaseTTL.
func NewDispatcher(camp *Campaign, ttl time.Duration, opts Options) (*Dispatcher, error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = &Metrics{}
	}
	metrics.Start()
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	if opts.CheckpointFS == nil {
		opts.CheckpointFS = osCheckpointFS{}
	}
	if opts.WALPath != "" && opts.CheckpointPath == "" {
		return nil, fmt.Errorf("campaign: WALPath requires CheckpointPath (the log compacts into the checkpoint)")
	}
	compactEvery := opts.CompactEvery
	if compactEvery <= 0 {
		compactEvery = 64
	}

	done := map[int]*JobResult{}
	var ledger *LedgerSnapshot
	if opts.CheckpointPath != "" {
		restored, lg, recovered, err := LoadCheckpointLedgerFS(opts.CheckpointFS, opts.CheckpointPath, camp.Spec)
		switch {
		case err == nil:
			done = restored
			ledger = lg
			if recovered {
				metrics.CheckpointRecoveries.Add(1)
			}
		case os.IsNotExist(err):
			// Fresh campaign.
		default:
			return nil, err
		}
	}
	if err := camp.validateRestored(done); err != nil {
		return nil, err
	}

	results := NewResults()
	restoredIDs := make([]int, 0, len(done))
	for id := range done {
		restoredIDs = append(restoredIDs, id)
	}
	sort.Ints(restoredIDs)
	for _, id := range restoredIDs {
		results.Add(done[id])
	}

	d := &Dispatcher{
		camp:         camp,
		opts:         opts,
		ttl:          ttl,
		every:        every,
		compactEvery: compactEvery,
		now:          time.Now,
		corpus:       buildCorpus(camp),
		metrics:      metrics,
		results:      results,
		done:         done,
		mergedLease:  map[int]int64{},
		finishCh:     make(chan struct{}),
	}
	if opts.WALPath == "" {
		var pending []Job
		for _, job := range camp.jobs {
			if _, ok := done[job.ID]; !ok {
				pending = append(pending, job)
			}
		}
		d.q = newLeaseQueue(pending, ttl, camp.Spec.MaxRetries, time.Now)
	} else if err := d.recoverDurable(ledger); err != nil {
		return nil, err
	}
	metrics.JobsTotal.Store(int64(len(camp.jobs)))
	metrics.JobsRestored.Store(int64(len(done)))
	pendingN, leasedN, _, _ := d.q.counts()
	metrics.QueueDepth.Store(int64(pendingN))
	metrics.InFlight.Store(int64(leasedN))
	if d.cancelled || d.q.allDone() {
		d.finish()
	}
	return d, nil
}

// recoverDurable rebuilds the exact lease ledger from the checkpoint's
// ledger section plus the WAL suffix, then leaves the log ready for
// appends (startup compaction: fold the recovered state into a fresh
// snapshot and truncate the log). Runs from the constructor, before any
// concurrency.
func (d *Dispatcher) recoverDurable(ledger *LedgerSnapshot) error {
	fsys := walFSFor(d.opts.CheckpointFS)
	crc := specWALCRC(d.camp.Spec)

	// Queue rows come from the snapshot's ledger; jobs covered by
	// neither a row nor the done set (fresh campaign, or a pre-WAL
	// snapshot without a ledger section) enter as synthetic pending
	// rows. Jobs done without a row were restored before ever entering a
	// queue and need none.
	var rows []LedgerRow
	var nextLease int64
	if ledger != nil {
		rows = ledger.Rows
		nextLease = ledger.NextLease
		d.cancelled = d.cancelled || ledger.Cancelled
		for _, m := range ledger.Merged {
			d.mergedLease[m.JobID] = m.LeaseID
		}
	}
	covered := make(map[int]bool, len(rows))
	for _, row := range rows {
		covered[row.JobID] = true
	}
	for _, job := range d.camp.jobs {
		if covered[job.ID] {
			continue
		}
		if _, ok := d.done[job.ID]; ok {
			continue
		}
		rows = append(rows, LedgerRow{JobID: job.ID, State: int(statePending)})
	}
	d.q = newLeaseQueueFromRows(d.camp.jobs, rows, d.ttl, d.camp.Spec.MaxRetries, nextLease, time.Now)

	// Re-impose the snapshot's terminal rows on the totals: dead letters
	// rejoin the failure record, and a done row whose result is missing
	// from the snapshot (an inconsistency no correct writer produces) is
	// defensively downgraded to pending — re-running a deterministic
	// shard is always safe, silently losing it from the totals is not.
	for _, id := range d.q.ids {
		e := d.q.entries[id]
		if e.state != stateDone {
			continue
		}
		if e.failed {
			d.recordFailureLocked(e)
		} else if _, ok := d.done[id]; !ok {
			e.state = statePending
			d.q.requeue(id)
		}
	}

	rep, err := replayWAL(fsys, d.opts.WALPath, crc)
	if err != nil {
		return err
	}
	if rep.existed {
		d.metrics.WALReplays.Add(1)
	}
	if rep.truncated > 0 {
		d.metrics.WALTruncatedRecords.Add(int64(rep.truncated))
	}
	for i := range rep.recs {
		d.applyWALRecord(&rep.recs[i])
	}

	d.wal = newWAL(fsys, d.opts.WALPath, d.opts.WALSyncEvery, crc, d.metrics)
	if d.compactLocked() == nil {
		return nil
	}
	// The startup compaction could not persist a fresh snapshot. Keep
	// the existing history appendable instead: clear a torn tail by
	// reinstalling the valid prefix, or attach to the intact file; with
	// no usable history, start a begin-only segment. Failures here leave
	// the log degraded until a later compaction succeeds — the campaign
	// runs either way.
	switch {
	case rep.truncated > 0 && len(rep.recs) > 0:
		_ = d.wal.installSegment(rep.prefix)
	case rep.truncated == 0 && len(rep.recs) > 0:
		_ = d.wal.openExisting()
	default:
		_ = d.wal.rotate()
	}
	return nil
}

// applyWALRecord replays one logged transition over the restored
// ledger. Application is defensive and idempotent-by-absoluteness:
// every record states the row's resulting state, so a stale suffix
// (records the snapshot already absorbed, left by a crash between
// checkpoint save and log truncation) converges to the same final
// ledger — the last record per job wins, and terminal rows are never
// reopened or double-counted.
func (d *Dispatcher) applyWALRecord(rec *walRecord) {
	switch rec.Kind {
	case walKindGrant:
		d.q.applyGrant(rec.JobID, rec.LeaseID, rec.Worker, time.Unix(0, rec.Expires))
	case walKindExtend:
		d.q.applyExtend(rec.JobID, rec.LeaseID, time.Unix(0, rec.Expires))
	case walKindComplete:
		if rec.Result == nil || !d.resultMatchesJob(rec.Result) {
			return
		}
		if _, dup := d.done[rec.Result.JobID]; dup {
			return
		}
		if accepted, _ := d.q.complete(LeaseRef{JobID: rec.Result.JobID, LeaseID: rec.LeaseID}); accepted {
			d.mergedLease[rec.Result.JobID] = rec.LeaseID
			d.results.Add(rec.Result)
			d.done[rec.Result.JobID] = rec.Result
		}
	case walKindRequeue:
		d.q.applyRequeue(rec.JobID, rec.Attempts, rec.Err)
	case walKindDeadLetter:
		if e, ok := d.q.applyDeadLetter(rec.JobID, rec.Attempts, rec.Err); ok {
			d.recordFailureLocked(e)
		}
	case walKindCancel:
		d.cancelled = true
	}
}

// buildCorpus renders every campaign test back to parseable litmus
// source, sorted by name, so workers can reconstruct the exact corpus
// over the wire.
func buildCorpus(camp *Campaign) []CorpusTest {
	names := make([]string, 0, len(camp.tests))
	for name := range camp.tests {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]CorpusTest, 0, len(names))
	for _, name := range names {
		out = append(out, CorpusTest{Name: name, Source: litmus.Format(camp.tests[name])})
	}
	return out
}

// setClock replaces the dispatcher's (and queue's) time source; tests
// use it to force lease expiry without sleeping.
func (d *Dispatcher) setClock(now func() time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = now
	d.q.now = now
}

// Corpus returns the wire form of the campaign's spec and test set,
// advertising the upload codecs this dispatcher accepts (binary
// preferred; gzip-JSON as the compatibility floor).
func (d *Dispatcher) Corpus() CorpusResponse {
	return CorpusResponse{
		Version: ProtocolVersion,
		Spec:    d.camp.Spec,
		Tests:   d.corpus,
		Wire:    []string{WireBinary, WireJSON},
	}
}

// Finished is closed when every job has completed or permanently failed
// (or the run was cancelled).
func (d *Dispatcher) Finished() <-chan struct{} { return d.finishCh }

// Outcome returns the merged results, the closing-snapshot error if the
// final checkpoint write could not be persisted, and whether the run
// was cancelled. Valid once Finished is closed; before that it reports
// the partial state.
func (d *Dispatcher) Outcome() (*Results, error, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.results, d.checkpointErr, d.cancelled
}

// Cancel stops granting leases and finishes the run with its partial
// totals. In-flight workers learn on their next protocol call.
func (d *Dispatcher) Cancel() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finished {
		return
	}
	d.cancelled = true
	if d.wal != nil {
		d.wal.append(&walRecord{Kind: walKindCancel, SpecCRC: d.wal.specCRC})
	}
	d.finish()
}

// finish closes the run. Caller holds d.mu (or is the constructor).
// With a WAL, the closing durability step is: flush the log (so even a
// failed final save leaves a replayable record of every merge), save
// the checkpoint with the final ledger, and — only if the save landed —
// truncate the log back to a begin record. Only the final save's
// failure surfaces in Outcome; see flushCheckpointLocked for why
// mid-run save errors stay transient.
func (d *Dispatcher) finish() {
	if d.finished {
		return
	}
	d.finished = true
	if d.opts.CheckpointPath != "" && !d.killed {
		if d.wal != nil {
			d.wal.syncNow()
			d.checkpointErr = saveCheckpointLedgerRetry(d.opts.CheckpointFS, d.opts.CheckpointPath, d.camp.Spec, d.done, d.ledgerSnapshotLocked(), d.metrics)
			if d.checkpointErr == nil {
				_ = d.wal.rotate()
			}
			d.wal.close()
		} else if d.sinceSave > 0 {
			d.checkpointErr = saveCheckpointRetry(d.opts.CheckpointFS, d.opts.CheckpointPath, d.camp.Spec, d.done, d.metrics)
		}
	}
	close(d.finishCh)
}

// ledgerSnapshotLocked captures the full lease ledger for a
// checkpoint's ledger section. Caller holds d.mu.
func (d *Dispatcher) ledgerSnapshotLocked() *LedgerSnapshot {
	merged := make([]MergedLease, 0, len(d.mergedLease))
	for id, nonce := range d.mergedLease {
		merged = append(merged, MergedLease{JobID: id, LeaseID: nonce})
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].JobID < merged[j].JobID })
	return &LedgerSnapshot{
		NextLease: d.q.nextLease,
		Cancelled: d.cancelled,
		Rows:      d.q.ledgerRows(),
		Merged:    merged,
	}
}

// compactLocked folds the current state into a fresh checkpoint and, on
// success, truncates the WAL to a begin-only segment. Ordering is the
// safety argument: the snapshot persists before any log bytes are
// discarded, so a crash at any point leaves either (old snapshot +
// full log) or (new snapshot + stale-but-convergent log) — never a
// state with merges recorded nowhere. A failed save keeps the log
// intact and counts a transient checkpoint error. Caller holds d.mu.
func (d *Dispatcher) compactLocked() error {
	if d.killed {
		return nil
	}
	if err := SaveCheckpointLedgerFS(d.opts.CheckpointFS, d.opts.CheckpointPath, d.camp.Spec, d.done, d.ledgerSnapshotLocked()); err != nil {
		d.metrics.CheckpointErrors.Add(1)
		return err
	}
	d.sinceSave = 0
	d.sinceCompact = 0
	if d.killHook != nil && d.killHook("mid-compact") {
		d.disarmLocked()
		return nil
	}
	// Rotation failure is harmless mid-run: the old segment stays the
	// append target (or the log degrades until the next compaction), and
	// its pre-snapshot records replay defensively.
	_ = d.wal.rotate()
	return nil
}

// disarmLocked flips the dispatcher into the simulated-crashed state:
// no further checkpoint or WAL bytes reach disk. Caller holds d.mu.
func (d *Dispatcher) disarmLocked() {
	d.killed = true
	if d.wal != nil {
		d.wal.disarm()
	}
}

// walExtendLocked logs the extension of a live lease at its new
// absolute expiry. Caller holds d.mu and has already applied the
// heartbeat to the queue.
func (d *Dispatcher) walExtendLocked(ref LeaseRef) {
	if d.wal == nil {
		return
	}
	e, ok := d.q.entries[ref.JobID]
	if !ok || e.state != stateLeased || e.leaseID != ref.LeaseID {
		return
	}
	d.wal.append(&walRecord{
		Kind:    walKindExtend,
		SpecCRC: d.wal.specCRC,
		JobID:   ref.JobID,
		LeaseID: ref.LeaseID,
		Expires: e.expires.UnixNano(),
	})
}

// sweepLocked requeues expired leases and records exhausted budgets.
// Caller holds d.mu.
func (d *Dispatcher) sweepLocked() {
	requeued, failed := d.q.sweep()
	for _, e := range requeued {
		d.metrics.LeaseRequeues.Add(1)
		d.metrics.Retries.Add(1)
		d.metrics.QueueDepth.Add(1)
		d.metrics.InFlight.Add(-1)
		d.walRequeueLocked(e)
	}
	for _, e := range failed {
		d.metrics.LeaseRequeues.Add(1)
		d.metrics.InFlight.Add(-1)
		d.walDeadLetterLocked(e)
		d.recordFailureLocked(e)
	}
	d.maybeFinishLocked()
}

// walRequeueLocked logs a return to pending with the row's absolute
// budget consumption. Caller holds d.mu.
func (d *Dispatcher) walRequeueLocked(e *queueEntry) {
	if d.wal == nil {
		return
	}
	d.wal.append(&walRecord{
		Kind:     walKindRequeue,
		SpecCRC:  d.wal.specCRC,
		JobID:    e.job.ID,
		Attempts: e.attempts,
		Err:      e.failErr,
	})
}

// walDeadLetterLocked logs a budget exhaustion. Caller holds d.mu.
func (d *Dispatcher) walDeadLetterLocked(e *queueEntry) {
	if d.wal == nil {
		return
	}
	d.wal.append(&walRecord{
		Kind:     walKindDeadLetter,
		SpecCRC:  d.wal.specCRC,
		JobID:    e.job.ID,
		Attempts: e.attempts,
		Err:      e.failErr,
	})
}

// recordFailureLocked converts an exhausted queue entry into a
// JobFailure on the totals — the dead-letter quarantine: the job is
// done retrying, its failure is part of the campaign record, and the
// OnJobFailed stream surfaces it on the status endpoint instead of a
// bare failed count. Caller holds d.mu.
func (d *Dispatcher) recordFailureLocked(e *queueEntry) {
	d.metrics.JobsFailed.Add(1)
	d.sinceCompact++
	f := JobFailure{
		JobID:    e.job.ID,
		Test:     e.job.Test,
		Tool:     e.job.Tool,
		Preset:   e.job.Preset,
		Shard:    e.job.Shard,
		Attempts: e.attempts,
		Err:      e.failErr,
	}
	d.results.AddFailure(f)
	if d.opts.OnJobFailed != nil {
		d.opts.OnJobFailed(f)
	}
}

// maybeFinishLocked finishes the run once the ledger is fully done.
// Caller holds d.mu.
func (d *Dispatcher) maybeFinishLocked() {
	if !d.finished && d.q.allDone() {
		d.finish()
	}
}

// Lease grants up to req.Max jobs (expiring overdue leases first).
func (d *Dispatcher) Lease(req LeaseRequest) LeaseResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := LeaseResponse{Version: ProtocolVersion, TTLSec: d.ttl.Seconds()}
	if d.finished {
		resp.Done = true
		return resp
	}
	d.sweepLocked()
	if d.finished {
		resp.Done = true
		return resp
	}
	granted := d.q.lease(req.Worker, req.Max)
	if len(granted) > 0 {
		if d.killHook != nil && d.killHook("mid-grant") {
			// Simulated crash between deciding the grants and logging them:
			// the worker receives leases the restarted dispatcher never heard
			// of — its uploads must still merge exactly once.
			d.disarmLocked()
		}
		for _, e := range granted {
			if d.wal != nil {
				d.wal.append(&walRecord{
					Kind:    walKindGrant,
					SpecCRC: d.wal.specCRC,
					JobID:   e.job.ID,
					LeaseID: e.leaseID,
					Worker:  req.Worker,
					Expires: e.expires.UnixNano(),
				})
			}
		}
	}
	if len(granted) == 0 {
		// Everything left is leased to other workers: poll again soon —
		// an expiry may free work, or the campaign may finish. Capped at a
		// second so an idle worker learns about completion promptly rather
		// than sleeping out a TTL fraction.
		resp.WaitSec = min(d.ttl.Seconds()/4, 1.0)
		return resp
	}
	for _, e := range granted {
		resp.Grants = append(resp.Grants, LeaseGrant{Job: e.job, LeaseID: e.leaseID})
		d.metrics.LeasesGranted.Add(1)
		d.metrics.QueueDepth.Add(-1)
		d.metrics.InFlight.Add(1)
	}
	return resp
}

// Heartbeat extends the caller's live leases.
func (d *Dispatcher) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := HeartbeatResponse{TTLSec: d.ttl.Seconds()}
	if d.finished {
		return resp
	}
	d.sweepLocked()
	for _, ref := range req.Leases {
		if d.q.heartbeat(req.Worker, ref) {
			resp.Extended++
			d.metrics.Heartbeats.Add(1)
			d.walExtendLocked(ref)
		}
	}
	return resp
}

// Complete merges a worker's uploaded batch: results behind the
// completion fence, failures against retry budgets, releases back to
// the queue, and piggybacked heartbeats into lease extensions.
// payloadBytes is the encoded upload size, for the upload-bytes
// counter.
func (d *Dispatcher) Complete(req CompleteRequest, payloadBytes int) CompleteResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.metrics.UploadBytes.Add(int64(payloadBytes))
	d.metrics.WireBytesRecv.Add(int64(payloadBytes))
	d.metrics.WireBatch.Observe(len(req.Results))
	var resp CompleteResponse
	for _, wr := range req.Results {
		if wr.Result == nil || !d.resultMatchesJob(wr.Result) {
			resp.Invalid++
			continue
		}
		if _, dup := d.done[wr.Result.JobID]; dup {
			// Already merged. Uploads are idempotent keyed by lease nonce:
			// a re-delivery of the very upload that merged (the worker
			// retried after a dropped response, or the chaos layer
			// duplicated the request) is acknowledged as a duplicate, while
			// a competing holder's copy — or an upload for a job restored
			// from a checkpoint, whose rebuilt queue carries no lease — is
			// fenced. Either way nothing double-merges.
			if nonce, ok := d.mergedLease[wr.Result.JobID]; ok && nonce == wr.LeaseID {
				d.metrics.DuplicateUploads.Add(1)
				resp.Duplicate++
			} else {
				d.metrics.ResultsFenced.Add(1)
				resp.Fenced++
			}
			continue
		}
		wasLeased := d.leasedLocked(wr.Result.JobID)
		accepted, fenced := d.q.complete(LeaseRef{JobID: wr.Result.JobID, LeaseID: wr.LeaseID})
		switch {
		case accepted:
			d.mergedLease[wr.Result.JobID] = wr.LeaseID
			d.mergeLocked(wr.Result, wasLeased)
			resp.Merged++
			if d.killHook != nil && d.killHook("pre-wal-complete") {
				// Simulated crash after the in-memory merge but before the
				// completion hits the log: the restarted dispatcher re-leases
				// the job, and determinism makes the re-run's upload
				// byte-identical to the merge that was lost.
				d.disarmLocked()
			}
			if d.wal != nil {
				d.wal.append(&walRecord{
					Kind:    walKindComplete,
					SpecCRC: d.wal.specCRC,
					JobID:   wr.Result.JobID,
					LeaseID: wr.LeaseID,
					Result:  wr.Result,
				})
			}
		case fenced:
			d.metrics.ResultsFenced.Add(1)
			resp.Fenced++
		default:
			resp.Invalid++
		}
	}
	for _, wf := range req.Failures {
		requeued, failed := d.q.fail(req.Worker, LeaseRef{JobID: wf.JobID, LeaseID: wf.LeaseID}, wf.Err)
		switch {
		case requeued:
			d.metrics.Retries.Add(1)
			d.metrics.LeaseRequeues.Add(1)
			d.metrics.QueueDepth.Add(1)
			d.metrics.InFlight.Add(-1)
			if e, ok := d.q.entries[wf.JobID]; ok {
				d.walRequeueLocked(e)
			}
			resp.Requeued++
		case failed:
			d.metrics.InFlight.Add(-1)
			if e, ok := d.q.entries[wf.JobID]; ok {
				d.walDeadLetterLocked(e)
				d.recordFailureLocked(e)
			}
			resp.Failed++
		}
	}
	for _, ref := range req.Released {
		if d.q.release(req.Worker, ref) {
			d.metrics.QueueDepth.Add(1)
			d.metrics.InFlight.Add(-1)
			if e, ok := d.q.entries[ref.JobID]; ok {
				d.walRequeueLocked(e)
			}
			resp.Requeued++
		}
	}
	// Piggybacked heartbeats last: the leases the worker still holds get
	// extended in the same exchange that delivered its finished shards.
	for _, ref := range req.Heartbeat {
		if d.q.heartbeat(req.Worker, ref) {
			resp.Extended++
			d.metrics.Heartbeats.Add(1)
			d.walExtendLocked(ref)
		}
	}
	if d.wal != nil {
		if d.sinceCompact >= d.compactEvery {
			_ = d.compactLocked()
		}
	} else {
		d.flushCheckpointLocked()
	}
	d.maybeFinishLocked()
	resp.Done = d.finished
	return resp
}

// leasedLocked reports whether the job is currently in the leased
// state (for in-flight accounting). Caller holds d.mu.
func (d *Dispatcher) leasedLocked(jobID int) bool {
	e, ok := d.q.entries[jobID]
	return ok && e.state == stateLeased
}

// resultMatchesJob cross-checks an uploaded result against the job's
// identity, exactly like checkpoint restoration does: a result whose
// fields contradict the job expansion would corrupt the totals.
func (d *Dispatcher) resultMatchesJob(jr *JobResult) bool {
	if jr.JobID < 0 || jr.JobID >= len(d.camp.jobs) {
		return false
	}
	job := d.camp.jobs[jr.JobID]
	return job.Test == jr.Test && job.Tool == jr.Tool && job.Preset == jr.Preset &&
		job.Shard == jr.Shard && job.N == jr.N && job.Seed == jr.Seed
}

// mergeLocked folds one accepted result into the totals and the
// checkpoint batch. Caller holds d.mu.
func (d *Dispatcher) mergeLocked(jr *JobResult, wasLeased bool) {
	d.results.Add(jr)
	d.done[jr.JobID] = jr
	d.sinceSave++
	d.sinceCompact++
	d.metrics.JobsCompleted.Add(1)
	d.metrics.Iterations.Add(int64(jr.N))
	// TraceVerifyNs is json:"-" so it arrives zero from remote workers:
	// checking time is accounted where the checking ran.
	d.metrics.TracesVerified.Add(jr.TracesVerified)
	d.metrics.TraceViolations.Add(jr.TraceViolations)
	d.metrics.TraceVerifyNs.Add(jr.TraceVerifyNs)
	if wasLeased {
		d.metrics.InFlight.Add(-1)
	} else {
		// The job had already requeued (expired lease) when its original
		// holder reported: it leaves the pending set instead.
		d.metrics.QueueDepth.Add(-1)
	}
	if d.opts.OnJobDone != nil {
		d.opts.OnJobDone(jr)
	}
}

// flushCheckpointLocked writes the snapshot when the batch threshold is
// reached. Write failures are transient: the batch stays pending and
// the next flush retries, since the snapshot already on disk remains a
// valid (stale) resume point. Only a failure of the closing save — see
// finish — surfaces in Outcome. Caller holds d.mu.
func (d *Dispatcher) flushCheckpointLocked() {
	if d.opts.CheckpointPath == "" || d.sinceSave < d.every || d.killed {
		return
	}
	if err := SaveCheckpointFS(d.opts.CheckpointFS, d.opts.CheckpointPath, d.camp.Spec, d.done); err != nil {
		d.metrics.CheckpointErrors.Add(1)
		return
	}
	d.sinceSave = 0
}

// Status summarizes the ledger for the status endpoint. Done counts
// merged results (checkpoint-restored ones included — they never enter
// the lease queue) plus permanently failed jobs.
func (d *Dispatcher) Status() (pending, leased, done, failed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pending, leased, _, failed = d.q.counts()
	done = len(d.done) + failed
	return pending, leased, done, failed
}

// LeaseGauges reports the autoscaling signals for the metrics endpoint:
// how many leases are live and how long the oldest has been out. A
// growing oldest-lease age with steady queue depth means a worker is
// stuck or the TTL is too generous.
func (d *Dispatcher) LeaseGauges() (active int, oldestAge time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, leased, _, _ := d.q.counts()
	if t, ok := d.q.oldestLeaseGrant(); ok {
		if age := d.now().Sub(t); age > 0 {
			oldestAge = age
		}
	}
	return leased, oldestAge
}

// String identifies the dispatcher in logs.
func (d *Dispatcher) String() string {
	return fmt.Sprintf("dispatcher(%d jobs, ttl %s)", len(d.camp.jobs), d.ttl)
}
