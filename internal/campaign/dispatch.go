package campaign

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"perple/internal/litmus"
)

// DefaultLeaseTTL is how long a worker may sit on a leased job without
// heartbeating before it requeues.
const DefaultLeaseTTL = 60 * time.Second

// Dispatcher runs one campaign in distributed mode: instead of
// executing jobs on a local worker pool, it serves them to remote
// workers as leases and merges their uploaded results. The determinism
// contract is identical to the local scheduler's — job seeds are
// identity-derived and merging is order-invariant — so a fleet of k
// workers reaches byte-identical final results to a local run of the
// same spec, whatever the interleaving of leases, expiries, and
// uploads.
//
// Leases are in-memory only; the checkpoint persists completed results
// exactly as the local scheduler does. A dispatcher rebuilt after a
// server restart therefore restores the done set and re-leases
// everything that was in flight — at-least-once delivery, made safe by
// the completion fence and per-shard determinism.
type Dispatcher struct {
	camp   *Campaign
	opts   Options
	ttl    time.Duration
	every  int
	now    func() time.Time
	corpus []CorpusTest

	metrics *Metrics

	mu            sync.Mutex
	q             *leaseQueue
	results       *Results
	done          map[int]*JobResult
	mergedLease   map[int]int64 // job ID → lease nonce its merged upload carried
	sinceSave     int
	checkpointErr error // final-save failure; transient mid-run errors only count in metrics
	finished      bool
	cancelled     bool
	finishCh      chan struct{}
}

// NewDispatcher validates and restores like Campaign.Run — checkpointed
// results are loaded and only the remaining jobs enter the lease queue
// — then stands ready to serve leases. ttl ≤ 0 selects DefaultLeaseTTL.
func NewDispatcher(camp *Campaign, ttl time.Duration, opts Options) (*Dispatcher, error) {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	metrics := opts.Metrics
	if metrics == nil {
		metrics = &Metrics{}
	}
	metrics.Start()
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	if opts.CheckpointFS == nil {
		opts.CheckpointFS = osCheckpointFS{}
	}

	done := map[int]*JobResult{}
	if opts.CheckpointPath != "" {
		restored, recovered, err := LoadCheckpointFS(opts.CheckpointFS, opts.CheckpointPath, camp.Spec)
		switch {
		case err == nil:
			done = restored
			if recovered {
				metrics.CheckpointRecoveries.Add(1)
			}
		case os.IsNotExist(err):
			// Fresh campaign.
		default:
			return nil, err
		}
	}
	if err := camp.validateRestored(done); err != nil {
		return nil, err
	}

	results := NewResults()
	restoredIDs := make([]int, 0, len(done))
	for id := range done {
		restoredIDs = append(restoredIDs, id)
	}
	sort.Ints(restoredIDs)
	for _, id := range restoredIDs {
		results.Add(done[id])
	}

	var pending []Job
	for _, job := range camp.jobs {
		if _, ok := done[job.ID]; !ok {
			pending = append(pending, job)
		}
	}

	d := &Dispatcher{
		camp:        camp,
		opts:        opts,
		ttl:         ttl,
		every:       every,
		now:         time.Now,
		corpus:      buildCorpus(camp),
		metrics:     metrics,
		q:           newLeaseQueue(pending, ttl, camp.Spec.MaxRetries, time.Now),
		results:     results,
		done:        done,
		mergedLease: map[int]int64{},
		finishCh:    make(chan struct{}),
	}
	metrics.JobsTotal.Store(int64(len(camp.jobs)))
	metrics.JobsRestored.Store(int64(len(done)))
	metrics.QueueDepth.Store(int64(len(pending)))
	if len(pending) == 0 {
		d.finish()
	}
	return d, nil
}

// buildCorpus renders every campaign test back to parseable litmus
// source, sorted by name, so workers can reconstruct the exact corpus
// over the wire.
func buildCorpus(camp *Campaign) []CorpusTest {
	names := make([]string, 0, len(camp.tests))
	for name := range camp.tests {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]CorpusTest, 0, len(names))
	for _, name := range names {
		out = append(out, CorpusTest{Name: name, Source: litmus.Format(camp.tests[name])})
	}
	return out
}

// setClock replaces the dispatcher's (and queue's) time source; tests
// use it to force lease expiry without sleeping.
func (d *Dispatcher) setClock(now func() time.Time) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.now = now
	d.q.now = now
}

// Corpus returns the wire form of the campaign's spec and test set,
// advertising the upload codecs this dispatcher accepts (binary
// preferred; gzip-JSON as the compatibility floor).
func (d *Dispatcher) Corpus() CorpusResponse {
	return CorpusResponse{
		Version: ProtocolVersion,
		Spec:    d.camp.Spec,
		Tests:   d.corpus,
		Wire:    []string{WireBinary, WireJSON},
	}
}

// Finished is closed when every job has completed or permanently failed
// (or the run was cancelled).
func (d *Dispatcher) Finished() <-chan struct{} { return d.finishCh }

// Outcome returns the merged results, the closing-snapshot error if the
// final checkpoint write could not be persisted, and whether the run
// was cancelled. Valid once Finished is closed; before that it reports
// the partial state.
func (d *Dispatcher) Outcome() (*Results, error, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.results, d.checkpointErr, d.cancelled
}

// Cancel stops granting leases and finishes the run with its partial
// totals. In-flight workers learn on their next protocol call.
func (d *Dispatcher) Cancel() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.finished {
		return
	}
	d.cancelled = true
	d.finish()
}

// finish closes the run. Caller holds d.mu (or is the constructor).
func (d *Dispatcher) finish() {
	if d.finished {
		return
	}
	d.finished = true
	if d.opts.CheckpointPath != "" && d.sinceSave > 0 {
		d.checkpointErr = saveCheckpointRetry(d.opts.CheckpointFS, d.opts.CheckpointPath, d.camp.Spec, d.done, d.metrics)
	}
	close(d.finishCh)
}

// sweepLocked requeues expired leases and records exhausted budgets.
// Caller holds d.mu.
func (d *Dispatcher) sweepLocked() {
	requeued, failed := d.q.sweep()
	for range requeued {
		d.metrics.LeaseRequeues.Add(1)
		d.metrics.Retries.Add(1)
		d.metrics.QueueDepth.Add(1)
		d.metrics.InFlight.Add(-1)
	}
	for _, e := range failed {
		d.metrics.LeaseRequeues.Add(1)
		d.metrics.InFlight.Add(-1)
		d.recordFailureLocked(e)
	}
	d.maybeFinishLocked()
}

// recordFailureLocked converts an exhausted queue entry into a
// JobFailure on the totals — the dead-letter quarantine: the job is
// done retrying, its failure is part of the campaign record, and the
// OnJobFailed stream surfaces it on the status endpoint instead of a
// bare failed count. Caller holds d.mu.
func (d *Dispatcher) recordFailureLocked(e *queueEntry) {
	d.metrics.JobsFailed.Add(1)
	f := JobFailure{
		JobID:    e.job.ID,
		Test:     e.job.Test,
		Tool:     e.job.Tool,
		Preset:   e.job.Preset,
		Shard:    e.job.Shard,
		Attempts: e.attempts,
		Err:      e.failErr,
	}
	d.results.AddFailure(f)
	if d.opts.OnJobFailed != nil {
		d.opts.OnJobFailed(f)
	}
}

// maybeFinishLocked finishes the run once the ledger is fully done.
// Caller holds d.mu.
func (d *Dispatcher) maybeFinishLocked() {
	if !d.finished && d.q.allDone() {
		d.finish()
	}
}

// Lease grants up to req.Max jobs (expiring overdue leases first).
func (d *Dispatcher) Lease(req LeaseRequest) LeaseResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := LeaseResponse{Version: ProtocolVersion, TTLSec: d.ttl.Seconds()}
	if d.finished {
		resp.Done = true
		return resp
	}
	d.sweepLocked()
	if d.finished {
		resp.Done = true
		return resp
	}
	granted := d.q.lease(req.Worker, req.Max)
	if len(granted) == 0 {
		// Everything left is leased to other workers: poll again soon —
		// an expiry may free work, or the campaign may finish. Capped at a
		// second so an idle worker learns about completion promptly rather
		// than sleeping out a TTL fraction.
		resp.WaitSec = min(d.ttl.Seconds()/4, 1.0)
		return resp
	}
	for _, e := range granted {
		resp.Grants = append(resp.Grants, LeaseGrant{Job: e.job, LeaseID: e.leaseID})
		d.metrics.LeasesGranted.Add(1)
		d.metrics.QueueDepth.Add(-1)
		d.metrics.InFlight.Add(1)
	}
	return resp
}

// Heartbeat extends the caller's live leases.
func (d *Dispatcher) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	resp := HeartbeatResponse{TTLSec: d.ttl.Seconds()}
	if d.finished {
		return resp
	}
	d.sweepLocked()
	for _, ref := range req.Leases {
		if d.q.heartbeat(req.Worker, ref) {
			resp.Extended++
			d.metrics.Heartbeats.Add(1)
		}
	}
	return resp
}

// Complete merges a worker's uploaded batch: results behind the
// completion fence, failures against retry budgets, releases back to
// the queue, and piggybacked heartbeats into lease extensions.
// payloadBytes is the encoded upload size, for the upload-bytes
// counter.
func (d *Dispatcher) Complete(req CompleteRequest, payloadBytes int) CompleteResponse {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.metrics.UploadBytes.Add(int64(payloadBytes))
	d.metrics.WireBytesRecv.Add(int64(payloadBytes))
	d.metrics.WireBatch.Observe(len(req.Results))
	var resp CompleteResponse
	for _, wr := range req.Results {
		if wr.Result == nil || !d.resultMatchesJob(wr.Result) {
			resp.Invalid++
			continue
		}
		if _, dup := d.done[wr.Result.JobID]; dup {
			// Already merged. Uploads are idempotent keyed by lease nonce:
			// a re-delivery of the very upload that merged (the worker
			// retried after a dropped response, or the chaos layer
			// duplicated the request) is acknowledged as a duplicate, while
			// a competing holder's copy — or an upload for a job restored
			// from a checkpoint, whose rebuilt queue carries no lease — is
			// fenced. Either way nothing double-merges.
			if nonce, ok := d.mergedLease[wr.Result.JobID]; ok && nonce == wr.LeaseID {
				d.metrics.DuplicateUploads.Add(1)
				resp.Duplicate++
			} else {
				d.metrics.ResultsFenced.Add(1)
				resp.Fenced++
			}
			continue
		}
		wasLeased := d.leasedLocked(wr.Result.JobID)
		accepted, fenced := d.q.complete(LeaseRef{JobID: wr.Result.JobID, LeaseID: wr.LeaseID})
		switch {
		case accepted:
			d.mergedLease[wr.Result.JobID] = wr.LeaseID
			d.mergeLocked(wr.Result, wasLeased)
			resp.Merged++
		case fenced:
			d.metrics.ResultsFenced.Add(1)
			resp.Fenced++
		default:
			resp.Invalid++
		}
	}
	for _, wf := range req.Failures {
		requeued, failed := d.q.fail(req.Worker, LeaseRef{JobID: wf.JobID, LeaseID: wf.LeaseID}, wf.Err)
		switch {
		case requeued:
			d.metrics.Retries.Add(1)
			d.metrics.LeaseRequeues.Add(1)
			d.metrics.QueueDepth.Add(1)
			d.metrics.InFlight.Add(-1)
			resp.Requeued++
		case failed:
			d.metrics.InFlight.Add(-1)
			if e, ok := d.q.entries[wf.JobID]; ok {
				d.recordFailureLocked(e)
			}
			resp.Failed++
		}
	}
	for _, ref := range req.Released {
		if d.q.release(req.Worker, ref) {
			d.metrics.QueueDepth.Add(1)
			d.metrics.InFlight.Add(-1)
			resp.Requeued++
		}
	}
	// Piggybacked heartbeats last: the leases the worker still holds get
	// extended in the same exchange that delivered its finished shards.
	for _, ref := range req.Heartbeat {
		if d.q.heartbeat(req.Worker, ref) {
			resp.Extended++
			d.metrics.Heartbeats.Add(1)
		}
	}
	d.flushCheckpointLocked()
	d.maybeFinishLocked()
	resp.Done = d.finished
	return resp
}

// leasedLocked reports whether the job is currently in the leased
// state (for in-flight accounting). Caller holds d.mu.
func (d *Dispatcher) leasedLocked(jobID int) bool {
	e, ok := d.q.entries[jobID]
	return ok && e.state == stateLeased
}

// resultMatchesJob cross-checks an uploaded result against the job's
// identity, exactly like checkpoint restoration does: a result whose
// fields contradict the job expansion would corrupt the totals.
func (d *Dispatcher) resultMatchesJob(jr *JobResult) bool {
	if jr.JobID < 0 || jr.JobID >= len(d.camp.jobs) {
		return false
	}
	job := d.camp.jobs[jr.JobID]
	return job.Test == jr.Test && job.Tool == jr.Tool && job.Preset == jr.Preset &&
		job.Shard == jr.Shard && job.N == jr.N && job.Seed == jr.Seed
}

// mergeLocked folds one accepted result into the totals and the
// checkpoint batch. Caller holds d.mu.
func (d *Dispatcher) mergeLocked(jr *JobResult, wasLeased bool) {
	d.results.Add(jr)
	d.done[jr.JobID] = jr
	d.sinceSave++
	d.metrics.JobsCompleted.Add(1)
	d.metrics.Iterations.Add(int64(jr.N))
	// TraceVerifyNs is json:"-" so it arrives zero from remote workers:
	// checking time is accounted where the checking ran.
	d.metrics.TracesVerified.Add(jr.TracesVerified)
	d.metrics.TraceViolations.Add(jr.TraceViolations)
	d.metrics.TraceVerifyNs.Add(jr.TraceVerifyNs)
	if wasLeased {
		d.metrics.InFlight.Add(-1)
	} else {
		// The job had already requeued (expired lease) when its original
		// holder reported: it leaves the pending set instead.
		d.metrics.QueueDepth.Add(-1)
	}
	if d.opts.OnJobDone != nil {
		d.opts.OnJobDone(jr)
	}
}

// flushCheckpointLocked writes the snapshot when the batch threshold is
// reached. Write failures are transient: the batch stays pending and
// the next flush retries, since the snapshot already on disk remains a
// valid (stale) resume point. Only a failure of the closing save — see
// finish — surfaces in Outcome. Caller holds d.mu.
func (d *Dispatcher) flushCheckpointLocked() {
	if d.opts.CheckpointPath == "" || d.sinceSave < d.every {
		return
	}
	if err := SaveCheckpointFS(d.opts.CheckpointFS, d.opts.CheckpointPath, d.camp.Spec, d.done); err != nil {
		d.metrics.CheckpointErrors.Add(1)
		return
	}
	d.sinceSave = 0
}

// Status summarizes the ledger for the status endpoint. Done counts
// merged results (checkpoint-restored ones included — they never enter
// the lease queue) plus permanently failed jobs.
func (d *Dispatcher) Status() (pending, leased, done, failed int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	pending, leased, _, failed = d.q.counts()
	done = len(d.done) + failed
	return pending, leased, done, failed
}

// String identifies the dispatcher in logs.
func (d *Dispatcher) String() string {
	return fmt.Sprintf("dispatcher(%d jobs, ttl %s)", len(d.camp.jobs), d.ttl)
}
