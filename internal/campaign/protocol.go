package campaign

// Dispatch protocol (v1): the wire types spoken between perple-serve's
// dispatch endpoints and perple-worker. All bodies are JSON; the
// completion upload is gzip-compressed JSON (harness.EncodeWire) because
// it carries full per-shard histograms.
//
//	GET  /campaigns/{id}/corpus     → CorpusResponse   (spec + test sources)
//	POST /campaigns/{id}/lease      LeaseRequest → LeaseResponse
//	POST /campaigns/{id}/heartbeat  HeartbeatRequest → HeartbeatResponse
//	POST /campaigns/{id}/complete   CompleteRequest (gzip) → CompleteResponse
//
// The protocol is at-least-once by construction: a worker that crashes
// mid-lease simply stops heartbeating and its jobs re-lease after the
// TTL; a worker that uploads twice (retry after a lost response) is
// deduplicated by the server's completion fence. Workers never need
// server-side identity beyond a self-chosen name used for lease
// accounting.

// ProtocolVersion guards wire compatibility; both sides refuse to talk
// across a mismatch.
const ProtocolVersion = 1

// CorpusTest ships one litmus test to workers as parseable source, so a
// worker needs no filesystem access to the campaign's test directory.
type CorpusTest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// CorpusResponse hands a worker everything it needs to execute jobs:
// the validated spec (for result-affecting knobs like intra_workers and
// exh_cap) and the resolved corpus.
type CorpusResponse struct {
	Version int          `json:"version"`
	Spec    Spec         `json:"spec"`
	Tests   []CorpusTest `json:"tests"`
}

// LeaseRequest asks for up to Max jobs.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// LeaseGrant is one leased job plus the nonce the worker must echo in
// heartbeats and completions.
type LeaseGrant struct {
	Job     Job   `json:"job"`
	LeaseID int64 `json:"lease_id"`
}

// LeaseResponse returns the granted jobs. Done means the campaign has
// finished (or was cancelled) and the worker should exit; an empty grant
// list with WaitSec set means every remaining job is leased elsewhere —
// poll again after the hint (one may requeue).
type LeaseResponse struct {
	Version int          `json:"version"`
	Grants  []LeaseGrant `json:"grants,omitempty"`
	TTLSec  float64      `json:"ttl_sec"`
	Done    bool         `json:"done,omitempty"`
	WaitSec float64      `json:"wait_sec,omitempty"`
}

// LeaseRef names one held lease.
type LeaseRef struct {
	JobID   int   `json:"job_id"`
	LeaseID int64 `json:"lease_id"`
}

// HeartbeatRequest extends the caller's live leases.
type HeartbeatRequest struct {
	Worker string     `json:"worker"`
	Leases []LeaseRef `json:"leases"`
}

// HeartbeatResponse reports how many leases were extended; a lease the
// server no longer recognizes (expired and re-granted) is simply not
// counted, which is how a slow worker learns it lost work.
type HeartbeatResponse struct {
	Extended int     `json:"extended"`
	TTLSec   float64 `json:"ttl_sec"`
}

// WorkerResult is one completed shard: the result plus the lease nonce
// it was executed under.
type WorkerResult struct {
	LeaseID int64      `json:"lease_id"`
	Result  *JobResult `json:"result"`
}

// WorkerFailure reports a job whose execution failed on the worker; the
// server charges it against the job's retry budget and requeues it.
type WorkerFailure struct {
	LeaseID int64  `json:"lease_id"`
	JobID   int    `json:"job_id"`
	Err     string `json:"error"`
}

// CompleteRequest is the batched upload: completed results, execution
// failures, and leases handed back un-run (graceful drain). The body is
// gzip-compressed JSON.
type CompleteRequest struct {
	Version  int             `json:"version"`
	Worker   string          `json:"worker"`
	Results  []WorkerResult  `json:"results,omitempty"`
	Failures []WorkerFailure `json:"failures,omitempty"`
	Released []LeaseRef      `json:"released,omitempty"`
}

// CompleteResponse accounts for every uploaded item: merged into the
// totals, acknowledged as a duplicate re-delivery of an already-merged
// upload (same job, same lease nonce — a retry after a lost response),
// dropped by the completion fence (a competing holder's copy), rejected
// as invalid (result fields contradict the job's identity), requeued,
// or permanently failed. Done tells the worker the campaign has
// finished.
type CompleteResponse struct {
	Merged    int  `json:"merged"`
	Duplicate int  `json:"duplicate,omitempty"`
	Fenced    int  `json:"fenced"`
	Invalid   int  `json:"invalid"`
	Requeued  int  `json:"requeued"`
	Failed    int  `json:"failed"`
	Done      bool `json:"done,omitempty"`
}
