package campaign

// Dispatch protocol (v1): the wire types spoken between perple-serve's
// dispatch endpoints and perple-worker. Control bodies are JSON; the
// completion upload carries full per-shard histograms and travels in
// whichever result codec the pair negotiated — gzip-compressed JSON
// (harness.EncodeWire) or the PWB1 binary codec (harness wirebin;
// DESIGN.md §14).
//
//	GET  /campaigns/{id}/corpus     → CorpusResponse   (spec + test sources + codecs)
//	POST /campaigns/{id}/lease      LeaseRequest → LeaseResponse
//	POST /campaigns/{id}/heartbeat  HeartbeatRequest → HeartbeatResponse
//	POST /campaigns/{id}/complete   CompleteRequest (negotiated codec) → CompleteResponse
//
// Codec negotiation is one-way and advertisement-based: the dispatcher
// lists the upload codecs it accepts in CorpusResponse.Wire, the worker
// picks the first one it also speaks, and the upload's Content-Type
// names the choice per request. A worker facing a dispatcher that
// advertises nothing (a pre-binary server, whose corpus JSON simply
// lacks the field) falls back to gzip-JSON, and a dispatcher receiving
// a gzip-JSON upload from a pre-binary worker decodes it as ever — so
// mixed-version fleets interoperate in both directions.
//
// The protocol is at-least-once by construction: a worker that crashes
// mid-lease simply stops heartbeating and its jobs re-lease after the
// TTL; a worker that uploads twice (retry after a lost response) is
// deduplicated by the server's completion fence. Workers never need
// server-side identity beyond a self-chosen name used for lease
// accounting.

// ProtocolVersion guards wire compatibility; both sides refuse to talk
// across a mismatch. Codec choice and heartbeat piggybacking are
// negotiated per-field (absent means unsupported), not via the version,
// so v1 peers of different ages keep interoperating.
const ProtocolVersion = 1

// Result-codec names used in CorpusResponse.Wire advertisements.
const (
	// WireJSON is the gzip-compressed JSON codec every peer speaks.
	WireJSON = "json+gzip"
	// WireBinary is the CRC-framed PWB1 binary codec (harness wirebin).
	WireBinary = "binary"
)

// CorpusTest ships one litmus test to workers as parseable source, so a
// worker needs no filesystem access to the campaign's test directory.
type CorpusTest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// CorpusResponse hands a worker everything it needs to execute jobs:
// the validated spec (for result-affecting knobs like intra_workers and
// exh_cap) and the resolved corpus.
type CorpusResponse struct {
	Version int          `json:"version"`
	Spec    Spec         `json:"spec"`
	Tests   []CorpusTest `json:"tests"`
	// Wire lists the result-upload codecs the dispatcher accepts, in
	// preference order (see WireJSON/WireBinary). Absent on pre-binary
	// servers, which is itself the signal to stay on gzip-JSON.
	Wire []string `json:"wire,omitempty"`
}

// LeaseRequest asks for up to Max jobs.
type LeaseRequest struct {
	Worker string `json:"worker"`
	Max    int    `json:"max"`
}

// LeaseGrant is one leased job plus the nonce the worker must echo in
// heartbeats and completions.
type LeaseGrant struct {
	Job     Job   `json:"job"`
	LeaseID int64 `json:"lease_id"`
}

// LeaseResponse returns the granted jobs. Done means the campaign has
// finished (or was cancelled) and the worker should exit; an empty grant
// list with WaitSec set means every remaining job is leased elsewhere —
// poll again after the hint (one may requeue).
type LeaseResponse struct {
	Version int          `json:"version"`
	Grants  []LeaseGrant `json:"grants,omitempty"`
	TTLSec  float64      `json:"ttl_sec"`
	Done    bool         `json:"done,omitempty"`
	WaitSec float64      `json:"wait_sec,omitempty"`
}

// LeaseRef names one held lease.
type LeaseRef struct {
	JobID   int   `json:"job_id"`
	LeaseID int64 `json:"lease_id"`
}

// HeartbeatRequest extends the caller's live leases.
type HeartbeatRequest struct {
	Worker string     `json:"worker"`
	Leases []LeaseRef `json:"leases"`
}

// HeartbeatResponse reports how many leases were extended; a lease the
// server no longer recognizes (expired and re-granted) is simply not
// counted, which is how a slow worker learns it lost work.
type HeartbeatResponse struct {
	Extended int     `json:"extended"`
	TTLSec   float64 `json:"ttl_sec"`
}

// WorkerResult is one completed shard: the result plus the lease nonce
// it was executed under.
type WorkerResult struct {
	LeaseID int64      `json:"lease_id"`
	Result  *JobResult `json:"result"`
}

// WorkerFailure reports a job whose execution failed on the worker; the
// server charges it against the job's retry budget and requeues it.
type WorkerFailure struct {
	LeaseID int64  `json:"lease_id"`
	JobID   int    `json:"job_id"`
	Err     string `json:"error"`
}

// CompleteRequest is the batched upload: completed results, execution
// failures, leases handed back un-run (graceful drain), and — when the
// worker streams partial batches — heartbeats for the leases it still
// holds, piggybacked so a mid-batch upload doubles as the lease
// extension and saves the dedicated heartbeat round-trip. The body
// travels in the negotiated result codec.
type CompleteRequest struct {
	Version  int             `json:"version"`
	Worker   string          `json:"worker"`
	Results  []WorkerResult  `json:"results,omitempty"`
	Failures []WorkerFailure `json:"failures,omitempty"`
	Released []LeaseRef      `json:"released,omitempty"`
	// Heartbeat lists leases the worker still holds and wants extended
	// with this upload. Pre-piggyback servers ignore the field (unknown
	// JSON keys are skipped), costing only lease margin, never safety.
	Heartbeat []LeaseRef `json:"heartbeat,omitempty"`
}

// CompleteResponse accounts for every uploaded item: merged into the
// totals, acknowledged as a duplicate re-delivery of an already-merged
// upload (same job, same lease nonce — a retry after a lost response),
// dropped by the completion fence (a competing holder's copy), rejected
// as invalid (result fields contradict the job's identity), requeued,
// or permanently failed. Done tells the worker the campaign has
// finished.
type CompleteResponse struct {
	Merged    int  `json:"merged"`
	Duplicate int  `json:"duplicate,omitempty"`
	Fenced    int  `json:"fenced"`
	Invalid   int  `json:"invalid"`
	Requeued  int  `json:"requeued"`
	Failed    int  `json:"failed"`
	Done      bool `json:"done,omitempty"`
	// Extended counts piggybacked heartbeats honored, mirroring
	// HeartbeatResponse.Extended; zero from pre-piggyback servers.
	Extended int `json:"extended,omitempty"`
}
