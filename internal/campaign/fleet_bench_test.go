package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"perple/internal/litmus"
)

// benchFleetSpec mirrors fleetSpec without the *testing.T plumbing.
func benchFleetSpec(b *testing.B) Spec {
	b.Helper()
	spec := Spec{
		Tests:      []string{"sb", "mp", "lb"},
		Tools:      []string{"litmus7-user"},
		Iterations: 8000,
		ShardSize:  1000,
		Seed:       11,
	}
	if err := spec.Validate(); err != nil {
		b.Fatal(err)
	}
	return spec
}

// runFleetOnce drives one dispatch campaign end to end over a loopback
// HTTP server with k workers and returns the job count. A non-nil
// runJob replaces real shard execution (to isolate protocol cost). It
// returns as soon as the server reports the campaign done — idle
// workers mid-poll-sleep are cut loose by context so their wakeup
// latency (a liveness detail, not throughput) stays out of the timing.
func runFleetOnce(b *testing.B, spec Spec, k int, runJob func(context.Context, Job, *litmus.Test, Spec) (*JobResult, error), mods ...func(*WorkerOptions)) int {
	b.Helper()
	srv := NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns?mode=dispatch", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var sub struct {
		ID   string `json:"id"`
		Jobs int    `json:"jobs"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || sub.ID == "" {
		b.Fatalf("submit failed: %v %+v", err, sub)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		opts := WorkerOptions{
			BaseURL: ts.URL, Campaign: sub.ID, Name: fmt.Sprintf("bw%d", i),
			Parallel: 2, runJob: runJob,
		}
		for _, mod := range mods {
			mod(&opts)
		}
		w := NewWorker(opts)
		wg.Add(1)
		go func(w *Worker) {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
				b.Error(err)
			}
		}(w)
	}
	for {
		r, err := http.Get(ts.URL + "/campaigns/" + sub.ID)
		if err != nil {
			b.Fatal(err)
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if st.State != StateRunning {
			if st.State != StateDone {
				b.Fatalf("campaign ended %q", st.State)
			}
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	return sub.Jobs
}

// BenchmarkFleetLoopback measures distributed-campaign throughput over
// loopback HTTP: a full dispatch campaign (submit → corpus → leases →
// execution → gzip uploads → merge) per op, for fleets of 1 and 4
// workers, reporting simulated iterations per second. Loopback workers
// share one host's cores, so k=4 tracks how the protocol behaves under
// fleet-shaped contention, not a real speedup — that comes from
// separate machines. The protocol-overhead variant replaces shard
// execution with a no-op, so its entire per-op time is dispatch
// machinery; proto_us/shard is the per-shard protocol cost a deployment
// amortizes against real shard runtime.
func BenchmarkFleetLoopback(b *testing.B) {
	spec := benchFleetSpec(b)
	for _, k := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", k), func(b *testing.B) {
			var jobs int
			for i := 0; i < b.N; i++ {
				jobs = runFleetOnce(b, spec, k, nil)
			}
			iters := float64(spec.Iterations) * float64(len(spec.Tests))
			b.ReportMetric(iters*float64(b.N)/b.Elapsed().Seconds(), "iters/sec")
			b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*jobs), "us/shard")
		})
	}
	b.Run("protocol-overhead", func(b *testing.B) {
		noop := func(_ context.Context, job Job, _ *litmus.Test, _ Spec) (*JobResult, error) {
			return fakeResult(job), nil
		}
		var jobs int
		for i := 0; i < b.N; i++ {
			jobs = runFleetOnce(b, spec, 1, noop)
		}
		b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*jobs), "proto_us/shard")
	})

	// The wire sweep isolates the data-path knobs the headline number
	// negotiates automatically: each codec at each lease batch size, all
	// over the same no-op runner, so the deltas are pure protocol cost.
	for _, wire := range []string{WireJSON, WireBinary} {
		for _, batch := range []int{1, 8} {
			b.Run(fmt.Sprintf("wire=%s/batch=%d", wire, batch), func(b *testing.B) {
				noop := func(_ context.Context, job Job, _ *litmus.Test, _ Spec) (*JobResult, error) {
					return fakeResult(job), nil
				}
				var jobs int
				for i := 0; i < b.N; i++ {
					jobs = runFleetOnce(b, spec, 1, noop, func(o *WorkerOptions) {
						o.Wire = wire
						o.LeaseBatch = batch
					})
				}
				b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*jobs), "proto_us/shard")
			})
		}
	}

	// The payload sweep scales the per-shard histogram (the body of every
	// upload) to show how each codec's cost grows with result size.
	for _, keys := range []int{16, 256} {
		for _, wire := range []string{WireJSON, WireBinary} {
			b.Run(fmt.Sprintf("payload=%dkeys/wire=%s", keys, wire), func(b *testing.B) {
				fat := func(_ context.Context, job Job, _ *litmus.Test, _ Spec) (*JobResult, error) {
					jr := fakeResult(job)
					jr.Histogram = make(map[string]int64, keys)
					for i := 0; i < keys; i++ {
						jr.Histogram[fmt.Sprintf("%d;%d;%d;", i, i%7, i%3)] = int64(i + 1)
					}
					return jr, nil
				}
				var jobs int
				for i := 0; i < b.N; i++ {
					jobs = runFleetOnce(b, spec, 1, fat, func(o *WorkerOptions) { o.Wire = wire })
				}
				b.ReportMetric(float64(b.Elapsed().Microseconds())/float64(b.N*jobs), "proto_us/shard")
			})
		}
	}
}
