// Chaos soak: the fault-injected fleet campaign. These tests live in
// package campaign_test (not campaign) because they need internal/chaos,
// which itself imports campaign for the CheckpointFS seam.
//
// The headline property: a k=4 loopback fleet whose HTTP transports
// drop, delay, duplicate, truncate, and 5xx-fail requests on a seeded
// schedule — while the server's checkpoint filesystem tears writes,
// flips bits, and fails renames — still merges results byte-identical
// to a fault-free serial run. The short soak runs in tier-1; -chaos.long
// extends the fleet rounds for CI's dedicated chaos job.
package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perple/internal/campaign"
	"perple/internal/chaos"
)

var chaosLong = flag.Bool("chaos.long", false, "run the full-length chaos soak (more fleet rounds)")

// soakInjectors is every injector the soak must observe firing at least
// once: the six HTTP faults plus the three checkpoint-filesystem ones.
var soakInjectors = []string{
	"drop_request", "drop_response", "delay", "duplicate", "truncate", "server_error",
	"torn_write", "corrupt", "rename_fail",
}

// soakSpec is small enough that a fleet round finishes in seconds yet
// sharded finely enough (48 jobs) that every protocol path sees many
// exchanges. MaxRetries is generous because injected lease losses (a
// duplicated or response-dropped lease call strands its grants until
// the TTL sweep) charge the retry budget without being job failures.
func soakSpec(t *testing.T) campaign.Spec {
	t.Helper()
	spec := campaign.Spec{
		Tests:      []string{"lb", "mp", "sb"},
		Tools:      []string{"litmus7-user"},
		Iterations: 400,
		ShardSize:  25,
		Seed:       11,
		Workers:    2,
		MaxRetries: 100,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

// soakBaseline is the fault-free serial run: the reference bytes every
// chaos round must reproduce exactly.
func soakBaseline(t *testing.T, spec campaign.Spec) []byte {
	t.Helper()
	camp, err := campaign.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run(context.Background(), campaign.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func soakSubmit(t *testing.T, ts *httptest.Server, spec campaign.Spec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns?mode=dispatch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("dispatch submit = %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response %q: %v", data, err)
	}
	return sub.ID
}

func soakStatus(t *testing.T, ts *httptest.Server, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, data)
	}
	var st map[string]any
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("status body %q: %v", data, err)
	}
	return st
}

func soakWaitDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(timeout)
	state := ""
	for time.Now().Before(deadline) {
		state = soakStatus(t, ts, id)["state"].(string)
		if state != campaign.StateRunning {
			return state
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("campaign %s still %q after %v", id, state, timeout)
	return state
}

func soakCanonical(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results?format=canonical")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("canonical results = %d: %s", resp.StatusCode, data)
	}
	return data
}

// chaosRound runs one fault-injected fleet campaign and asserts its
// merged bytes equal the fault-free baseline. It returns the round's
// aggregated injector stats (all four workers' transports plus the
// server's checkpoint filesystem).
func chaosRound(t *testing.T, round int, spec campaign.Spec, want []byte) chaos.Stats {
	t.Helper()
	fsys := chaos.NewFS(chaos.FSConfig{
		Seed:  int64(round*1000 + 7),
		Rates: chaos.FSRates{TornWrite: 0.15, Corrupt: 0.15, RenameFail: 0.15},
	})
	srv := campaign.NewServer()
	srv.CheckpointDir = t.TempDir()
	srv.CheckpointFS = fsys
	srv.LeaseTTL = 400 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := soakSubmit(t, ts, spec)

	const fleet = 4
	var wg sync.WaitGroup
	errs := make([]error, fleet)
	rts := make([]*chaos.RoundTripper, fleet)
	for i := 0; i < fleet; i++ {
		rts[i] = chaos.New(chaos.Config{
			Seed: int64(round*100 + i + 1),
			Rates: chaos.Rates{
				DropRequest: 0.08, DropResponse: 0.08, Delay: 0.08,
				Duplicate: 0.08, Truncate: 0.08, ServerError: 0.08,
			},
			DelayMin: time.Millisecond,
			DelayMax: 5 * time.Millisecond,
		}, nil)
		w := campaign.NewWorker(campaign.WorkerOptions{
			BaseURL:          ts.URL,
			Campaign:         id,
			Name:             fmt.Sprintf("chaos-%d-%d", round, i),
			Parallel:         2,
			Client:           &http.Client{Transport: rts[i], Timeout: 30 * time.Second},
			HeartbeatEvery:   100 * time.Millisecond,
			BackoffBase:      5 * time.Millisecond,
			BreakerThreshold: 6,
			BreakerCooldown:  50 * time.Millisecond,
		})
		wg.Add(1)
		go func(i int, w *campaign.Worker) {
			defer wg.Done()
			errs[i] = w.Run(context.Background())
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("round %d: worker %d failed under chaos: %v\n(injector caps guarantee every retry loop a clean exchange — this is a real robustness bug)", round, i, err)
		}
	}
	if state := soakWaitDone(t, ts, id, 60*time.Second); state != campaign.StateDone {
		t.Fatalf("round %d: campaign ended %q", round, state)
	}
	if got := soakCanonical(t, ts, id); !bytes.Equal(got, want) {
		t.Fatalf("round %d: chaos fleet diverged from fault-free serial run:\nserial:\n%s\nchaos:\n%s", round, want, got)
	}
	st := soakStatus(t, ts, id)
	if dl, ok := st["dead_letters"]; ok {
		t.Fatalf("round %d: chaos quarantined jobs despite the retry budget: %v", round, dl)
	}
	if spec.TraceVerifyEvery() > 0 {
		metrics := st["metrics"].(map[string]any)
		if got := metrics["traces_verified"].(float64); got == 0 {
			t.Fatalf("round %d: trace verification enabled but no traces verified: %v", round, metrics)
		}
		if got := metrics["trace_violations"].(float64); got != 0 {
			t.Fatalf("round %d: TSO machine produced trace violations: %v", round, st["trace_reports"])
		}
	}

	stats := chaos.Stats{}
	for _, rt := range rts {
		stats.Merge(rt.Stats())
	}
	stats.Merge(fsys.Stats())
	return stats
}

// TestChaosSoakFleetByteIdentical is the headline chaos property: fleet
// rounds under the full injector set keep producing the fault-free
// bytes, and across the rounds every one of the nine injectors fires at
// least once — so the pass is meaningful coverage, not quiet luck.
func TestChaosSoakFleetByteIdentical(t *testing.T) {
	spec := soakSpec(t)
	want := soakBaseline(t, spec)

	// The chaos rounds run with witness-trace verification ON while the
	// baseline ran with it off: the byte comparison below then also pins
	// the trace-verify observer property (verification must not perturb
	// the canonical document) under the full fault-injection load.
	spec.TraceVerify = "4"
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	maxRounds := 3
	if *chaosLong {
		maxRounds = 6
	}
	covered := func(s chaos.Stats) bool {
		for _, name := range soakInjectors {
			if s[name] == 0 {
				return false
			}
		}
		return true
	}
	total := chaos.Stats{}
	rounds := 0
	for round := 1; round <= maxRounds; round++ {
		total.Merge(chaosRound(t, round, spec, want))
		rounds = round
		// The short soak stops at full coverage; the long soak keeps
		// torturing for the whole budget.
		if !*chaosLong && covered(total) {
			break
		}
	}
	if !covered(total) {
		missing := []string{}
		for _, name := range soakInjectors {
			if total[name] == 0 {
				missing = append(missing, name)
			}
		}
		t.Fatalf("injectors %v never fired across %d rounds: %v", missing, rounds, total)
	}
	t.Logf("chaos soak: %d round(s), injector activity %v", rounds, total)
}

// TestChaosCorruptCheckpointResume is the durability acceptance path: a
// partially complete dispatch campaign whose active checkpoint is
// destroyed (torn in half, as a crash mid-write would leave it) must
// resume from the rotated last-good snapshot — counted in the metrics —
// and still finish to the fault-free bytes.
func TestChaosCorruptCheckpointResume(t *testing.T) {
	spec := soakSpec(t)
	want := soakBaseline(t, spec)

	// Phase 1: partial progress on a checkpointing server. LeaseBatch 1
	// makes every completed shard its own upload, so the checkpoint
	// rotates once per job and the drain point leaves both an active and
	// a .prev snapshot behind.
	dir1 := t.TempDir()
	srv1 := campaign.NewServer()
	srv1.CheckpointDir = dir1
	ts1 := httptest.NewServer(srv1.Handler())
	defer ts1.Close()
	id := soakSubmit(t, ts1, spec)

	var done atomic.Int64
	var w *campaign.Worker
	w = campaign.NewWorker(campaign.WorkerOptions{
		BaseURL: ts1.URL, Campaign: id, Name: "partial", Parallel: 1, LeaseBatch: 1,
		OnJobDone: func(*campaign.JobResult) {
			if done.Add(1) >= 6 {
				w.Drain()
			}
		},
	})
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if n := done.Load(); n < 6 {
		t.Fatalf("phase-1 worker drained after only %d jobs", n)
	}

	// Phase 2: the "server machine" dies and its disk comes back with the
	// active snapshot torn. Rebuild the deployment in a fresh checkpoint
	// directory: damaged active file, intact rotated one.
	active := filepath.Join(dir1, id+".json")
	prevData, err := os.ReadFile(active + ".prev")
	if err != nil {
		t.Fatalf("no rotated snapshot after %d checkpointed jobs: %v", done.Load(), err)
	}
	activeData, err := os.ReadFile(active)
	if err != nil {
		t.Fatal(err)
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, id+".json"), activeData[:len(activeData)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir2, id+".json.prev"), prevData, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := campaign.NewServer()
	srv2.CheckpointDir = dir2
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	id2 := soakSubmit(t, ts2, spec)
	if id2 != id {
		t.Fatalf("replacement server assigned id %q; the damaged checkpoint is named for %q", id2, id)
	}

	st := soakStatus(t, ts2, id2)
	metrics := st["metrics"].(map[string]any)
	if got := metrics["checkpoint_recoveries"].(float64); got != 1 {
		t.Fatalf("checkpoint_recoveries = %v, want 1 (resume must fall back to the rotated snapshot)", got)
	}
	if got := metrics["jobs_restored"].(float64); got == 0 {
		t.Fatalf("recovery restored no jobs: %v", metrics)
	}

	// Phase 3: a clean worker finishes the resumed campaign; the re-run
	// of the shards lost with the torn snapshot must reconverge on the
	// fault-free bytes.
	w2 := campaign.NewWorker(campaign.WorkerOptions{
		BaseURL: ts2.URL, Campaign: id2, Name: "finisher", Parallel: 2,
	})
	if err := w2.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if state := soakWaitDone(t, ts2, id2, 60*time.Second); state != campaign.StateDone {
		t.Fatalf("resumed campaign ended %q", state)
	}
	if got := soakCanonical(t, ts2, id2); !bytes.Equal(got, want) {
		t.Fatalf("resumed campaign diverged from fault-free run:\nserial:\n%s\nresumed:\n%s", want, got)
	}
}

// TestChaosDuplicateUploadIdempotent pins the idempotent-upload contract
// end to end: when every complete call's response is dropped once, the
// worker's retried uploads must be acknowledged as same-lease duplicates
// — never double-merged (the byte comparison) and never misclassified as
// fence drops from a competing holder.
func TestChaosDuplicateUploadIdempotent(t *testing.T) {
	spec := soakSpec(t)
	want := soakBaseline(t, spec)

	srv := campaign.NewServer()
	srv.LeaseTTL = 10 * time.Second // no expiry: every re-delivery is a true duplicate, not a re-lease
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := soakSubmit(t, ts, spec)

	rt := chaos.New(chaos.Config{
		Seed:           1,
		PerOp:          map[string]chaos.Rates{"complete": {DropResponse: 1}},
		MaxConsecutive: 1, // alternate: every upload is delivered, loses its response, then its retry lands
	}, nil)
	w := campaign.NewWorker(campaign.WorkerOptions{
		BaseURL: ts.URL, Campaign: id, Name: "dup", Parallel: 2,
		Client:      &http.Client{Transport: rt, Timeout: 30 * time.Second},
		BackoffBase: 2 * time.Millisecond,
	})
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if state := soakWaitDone(t, ts, id, 60*time.Second); state != campaign.StateDone {
		t.Fatalf("campaign ended %q", state)
	}
	if got := soakCanonical(t, ts, id); !bytes.Equal(got, want) {
		t.Fatalf("duplicated uploads changed the merged bytes")
	}
	metrics := soakStatus(t, ts, id)["metrics"].(map[string]any)
	if got := metrics["duplicate_uploads"].(float64); got == 0 {
		t.Fatalf("no duplicate uploads recorded under complete-response drops: %v", metrics)
	}
	if got := metrics["results_fenced"].(float64); got != 0 {
		t.Fatalf("same-lease re-deliveries misclassified as fenced: %v", metrics)
	}
}
