package campaign

import (
	"sort"
	"time"
)

// Lease state machine, per job:
//
//	pending ──lease──▶ leased ──complete──▶ done
//	   ▲                  │
//	   └──expire/fail─────┘   (attempts++; attempts > MaxRetries ▶ done, failed)
//
// A lease carries a nonce (leaseID) that increases with every grant, so
// a late report from a superseded lease is distinguishable from the
// current holder's. Completion applies a first-writer-wins fence on the
// job, not the lease: shard results are deterministic functions of the
// shard seed, so whichever copy of a twice-leased job reports first is
// merged and every later report is dropped — never double-merged.
type leaseState int

const (
	statePending leaseState = iota
	stateLeased
	stateDone
)

// queueEntry is one job's ledger row.
type queueEntry struct {
	job      Job
	state    leaseState
	leaseID  int64  // nonce of the newest grant
	worker   string // holder of the newest grant
	expires  time.Time
	attempts int  // expired or failed attempts consumed from the retry budget
	failed   bool // done because the budget ran out, not because a result landed
	failErr  string
	// grantedAt is when the newest grant was handed out, for the
	// oldest-lease-age gauge. It is metrics-only and not persisted; a
	// restored lease approximates it as expires − TTL.
	grantedAt time.Time
}

// leaseQueue is the dispatcher's job ledger. It is not safe for
// concurrent use; the Dispatcher serializes access under its mutex.
// Grants and requeues are deterministic: pending jobs are kept sorted by
// job ID and granted lowest-ID first, and a requeued job re-enters at
// its ID's sorted position, so a fixed sequence of lease/expire events
// always hands out the same jobs in the same order.
type leaseQueue struct {
	entries    map[int]*queueEntry
	ids        []int // all job IDs, sorted, for deterministic sweeps
	pending    []int // pending job IDs, sorted ascending
	ttl        time.Duration
	maxRetries int
	nextLease  int64
	now        func() time.Time
}

func newLeaseQueue(jobs []Job, ttl time.Duration, maxRetries int, now func() time.Time) *leaseQueue {
	q := &leaseQueue{
		entries:    make(map[int]*queueEntry, len(jobs)),
		ttl:        ttl,
		maxRetries: maxRetries,
		now:        now,
	}
	for _, job := range jobs {
		q.entries[job.ID] = &queueEntry{job: job}
		q.ids = append(q.ids, job.ID)
		q.pending = append(q.pending, job.ID)
	}
	sort.Ints(q.ids)
	sort.Ints(q.pending)
	return q
}

// requeue returns a job to the pending set at its sorted position.
func (q *leaseQueue) requeue(id int) {
	i := sort.SearchInts(q.pending, id)
	q.pending = append(q.pending, 0)
	copy(q.pending[i+1:], q.pending[i:])
	q.pending[i] = id
}

// sweep expires overdue leases: each goes back to pending with one
// attempt consumed, or to done/failed when the budget is exhausted.
// Entries are visited in job-ID order so the outcome of a sweep is
// deterministic. It returns the requeued and newly failed entries.
func (q *leaseQueue) sweep() (requeued []*queueEntry, failed []*queueEntry) {
	now := q.now()
	for _, id := range q.ids {
		e := q.entries[id]
		if e.state != stateLeased || e.expires.After(now) {
			continue
		}
		e.attempts++
		if e.attempts > q.maxRetries {
			e.state = stateDone
			e.failed = true
			if e.failErr == "" {
				e.failErr = "lease expired"
			}
			failed = append(failed, e)
			continue
		}
		e.state = statePending
		q.requeue(id)
		requeued = append(requeued, e)
	}
	return requeued, failed
}

// lease grants up to max pending jobs to worker, lowest job ID first,
// stamping each with a fresh lease nonce and the queue's TTL.
func (q *leaseQueue) lease(worker string, max int) []*queueEntry {
	if max <= 0 {
		max = 1
	}
	n := min(max, len(q.pending))
	if n == 0 {
		return nil
	}
	now := q.now()
	expires := now.Add(q.ttl)
	granted := make([]*queueEntry, 0, n)
	for _, id := range q.pending[:n] {
		e := q.entries[id]
		q.nextLease++
		e.state = stateLeased
		e.leaseID = q.nextLease
		e.worker = worker
		e.expires = expires
		e.grantedAt = now
		granted = append(granted, e)
	}
	q.pending = q.pending[n:]
	return granted
}

// heartbeat extends a lease iff the caller still holds its current
// nonce; a heartbeat for a superseded or finished lease is a no-op.
func (q *leaseQueue) heartbeat(worker string, ref LeaseRef) bool {
	e, ok := q.entries[ref.JobID]
	if !ok || e.state != stateLeased || e.leaseID != ref.LeaseID || e.worker != worker {
		return false
	}
	e.expires = q.now().Add(q.ttl)
	return true
}

// complete marks a job done on its first reported result. The fence is
// the done state: a second report — from the original holder of an
// expired lease or from its replacement, whichever comes later — returns
// fenced. Stale-lease results for a not-yet-done job are accepted:
// results are deterministic per shard seed, so the early copy is
// byte-equal to the one the current holder would upload.
func (q *leaseQueue) complete(ref LeaseRef) (accepted, fenced bool) {
	e, ok := q.entries[ref.JobID]
	if !ok {
		return false, false
	}
	if e.state == stateDone {
		return false, true
	}
	if e.state == statePending {
		// A requeued job completed by its pre-expiry holder: pull it back
		// out of the pending set.
		i := sort.SearchInts(q.pending, ref.JobID)
		if i < len(q.pending) && q.pending[i] == ref.JobID {
			q.pending = append(q.pending[:i], q.pending[i+1:]...)
		}
	}
	e.state = stateDone
	e.failed = false
	return true, false
}

// fail records a worker-reported execution failure against the retry
// budget: requeue while budget remains, else done/failed. Reports
// against a superseded lease are ignored (the replacement is already
// running or queued).
func (q *leaseQueue) fail(worker string, ref LeaseRef, msg string) (requeuedNow, failedNow bool) {
	e, ok := q.entries[ref.JobID]
	if !ok || e.state != stateLeased || e.leaseID != ref.LeaseID || e.worker != worker {
		return false, false
	}
	e.attempts++
	e.failErr = msg
	if e.attempts > q.maxRetries {
		e.state = stateDone
		e.failed = true
		return false, true
	}
	e.state = statePending
	q.requeue(ref.JobID)
	return true, false
}

// release hands an unstarted lease back without consuming retry budget
// (graceful worker drain). Superseded leases are ignored.
func (q *leaseQueue) release(worker string, ref LeaseRef) bool {
	e, ok := q.entries[ref.JobID]
	if !ok || e.state != stateLeased || e.leaseID != ref.LeaseID || e.worker != worker {
		return false
	}
	e.state = statePending
	q.requeue(ref.JobID)
	return true
}

// counts reports the ledger's aggregate state.
func (q *leaseQueue) counts() (pending, leased, done, failed int) {
	for _, e := range q.entries {
		switch e.state {
		case statePending:
			pending++
		case stateLeased:
			leased++
		case stateDone:
			done++
			if e.failed {
				failed++
			}
		}
	}
	return pending, leased, done, failed
}

// allDone reports whether every job reached the done state.
func (q *leaseQueue) allDone() bool {
	for _, e := range q.entries {
		if e.state != stateDone {
			return false
		}
	}
	return true
}

// oldestLeaseGrant returns the earliest grantedAt among live leases,
// for the oldest-lease-age gauge.
func (q *leaseQueue) oldestLeaseGrant() (time.Time, bool) {
	var oldest time.Time
	found := false
	for _, e := range q.entries {
		if e.state != stateLeased || e.grantedAt.IsZero() {
			continue
		}
		if !found || e.grantedAt.Before(oldest) {
			oldest = e.grantedAt
			found = true
		}
	}
	return oldest, found
}

// ledgerRows snapshots every row in job-ID order for the checkpoint's
// ledger section (WAL compaction).
func (q *leaseQueue) ledgerRows() []LedgerRow {
	rows := make([]LedgerRow, 0, len(q.ids))
	for _, id := range q.ids {
		e := q.entries[id]
		row := LedgerRow{
			JobID:    id,
			State:    int(e.state),
			Attempts: e.attempts,
			Failed:   e.failed,
			FailErr:  e.failErr,
		}
		if e.state == stateLeased {
			row.LeaseID = e.leaseID
			row.Worker = e.worker
			row.Expires = e.expires.UnixNano()
		}
		rows = append(rows, row)
	}
	return rows
}

// newLeaseQueueFromRows rebuilds a ledger from checkpointed rows: each
// row becomes the row it describes, byte for byte of observable state.
// jobs is the campaign's full job list; rows referencing jobs outside
// it are dropped (validateRestored already rejected such snapshots for
// the done set). Restored leases keep their nonce, holder, and expiry —
// if the worker is still alive it heartbeats the same lease onward; if
// not, the ordinary sweep requeues it when the clock passes the
// restored deadline.
func newLeaseQueueFromRows(jobs []Job, rows []LedgerRow, ttl time.Duration, maxRetries int, nextLease int64, now func() time.Time) *leaseQueue {
	byID := make(map[int]Job, len(jobs))
	for _, job := range jobs {
		byID[job.ID] = job
	}
	q := &leaseQueue{
		entries:    make(map[int]*queueEntry, len(rows)),
		ttl:        ttl,
		maxRetries: maxRetries,
		nextLease:  nextLease,
		now:        now,
	}
	for _, row := range rows {
		job, ok := byID[row.JobID]
		if !ok {
			continue
		}
		e := &queueEntry{
			job:      job,
			state:    leaseState(row.State),
			attempts: row.Attempts,
			failed:   row.Failed,
			failErr:  row.FailErr,
		}
		if e.state == stateLeased {
			e.leaseID = row.LeaseID
			e.worker = row.Worker
			e.expires = time.Unix(0, row.Expires)
			e.grantedAt = e.expires.Add(-ttl)
			if row.LeaseID > q.nextLease {
				q.nextLease = row.LeaseID
			}
		}
		q.entries[row.JobID] = e
		q.ids = append(q.ids, row.JobID)
		if e.state == statePending {
			q.pending = append(q.pending, row.JobID)
		}
	}
	sort.Ints(q.ids)
	sort.Ints(q.pending)
	return q
}

// dropPending removes id from the pending list if present.
func (q *leaseQueue) dropPending(id int) {
	i := sort.SearchInts(q.pending, id)
	if i < len(q.pending) && q.pending[i] == id {
		q.pending = append(q.pending[:i], q.pending[i+1:]...)
	}
}

// WAL replay application. Each method applies one logged transition
// defensively: records are absolute ("the row became this"), so
// replaying a suffix that partially overlaps a newer snapshot converges
// — the last record per job wins, and records for rows already done are
// skipped. None of these consult the clock; replay is purely
// record-driven, which is what makes it deterministic.

// applyGrant re-imposes a logged grant.
func (q *leaseQueue) applyGrant(jobID int, leaseID int64, worker string, expires time.Time) bool {
	e, ok := q.entries[jobID]
	if !ok || e.state == stateDone {
		return false
	}
	q.dropPending(jobID)
	e.state = stateLeased
	e.leaseID = leaseID
	e.worker = worker
	e.expires = expires
	e.grantedAt = expires.Add(-q.ttl)
	if leaseID > q.nextLease {
		q.nextLease = leaseID
	}
	return true
}

// applyExtend re-imposes a logged heartbeat extension.
func (q *leaseQueue) applyExtend(jobID int, leaseID int64, expires time.Time) bool {
	e, ok := q.entries[jobID]
	if !ok || e.state != stateLeased || e.leaseID != leaseID {
		return false
	}
	e.expires = expires
	return true
}

// applyRequeue re-imposes a logged return to pending with its absolute
// budget consumption.
func (q *leaseQueue) applyRequeue(jobID, attempts int, failErr string) bool {
	e, ok := q.entries[jobID]
	if !ok || e.state == stateDone {
		return false
	}
	if e.state != statePending {
		q.requeue(jobID)
	}
	e.state = statePending
	e.attempts = attempts
	e.failErr = failErr
	return true
}

// applyDeadLetter re-imposes a logged budget exhaustion. The caller
// records the JobFailure on the totals when this reports true.
func (q *leaseQueue) applyDeadLetter(jobID, attempts int, failErr string) (*queueEntry, bool) {
	e, ok := q.entries[jobID]
	if !ok || e.state == stateDone {
		return nil, false
	}
	q.dropPending(jobID)
	e.state = stateDone
	e.failed = true
	e.attempts = attempts
	e.failErr = failErr
	return e, true
}
