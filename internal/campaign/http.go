package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// run states reported by the status endpoint.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
	StateFailed    = "failed"
)

// serverRun is one submitted campaign: the scheduler invocation plus the
// bookkeeping the HTTP surface reports.
type serverRun struct {
	id      string
	spec    Spec
	cancel  context.CancelFunc
	metrics *Metrics
	started time.Time

	mu       sync.Mutex
	state    string
	errMsg   string
	results  *Results
	finished time.Time
}

func (r *serverRun) setFinished(res *Results, err error, cancelled bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results = res
	r.finished = time.Now()
	switch {
	case cancelled:
		r.state = StateCancelled
	case err != nil:
		r.state = StateFailed
	default:
		r.state = StateDone
	}
	if err != nil {
		r.errMsg = err.Error()
	}
}

// Server exposes the campaign scheduler over HTTP. All handlers are
// stdlib-only; campaigns execute on background goroutines, so the
// health, metrics, and status endpoints answer while runs are in
// flight.
type Server struct {
	// CheckpointDir, when non-empty, gives every submitted campaign a
	// checkpoint file (<id>.json) under it.
	CheckpointDir string

	mu   sync.Mutex
	runs map[string]*serverRun
	seq  int

	started time.Time
}

// NewServer returns an empty campaign server.
func NewServer() *Server {
	return &Server{runs: map[string]*serverRun{}, started: time.Now()}
}

// Handler builds the route table:
//
//	GET  /healthz                  liveness
//	GET  /metrics                  aggregate scheduler gauges (expvar-style JSON)
//	POST /campaigns                submit a spec, returns {"id": ...}
//	GET  /campaigns                list campaigns
//	GET  /campaigns/{id}           status + per-run metrics snapshot
//	GET  /campaigns/{id}/results   merged totals (409 until the run finishes)
//	POST /campaigns/{id}/cancel    abort a running campaign
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	return mux
}

// CancelAll aborts every running campaign (used for graceful shutdown).
func (s *Server) CancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		r.cancel()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*serverRun, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()

	var agg Snapshot
	var running int
	for _, r := range runs {
		agg.Merge(r.metrics.Snapshot())
		r.mu.Lock()
		if r.state == StateRunning {
			running++
		}
		r.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"campaigns":         len(runs),
		"campaigns_running": running,
		"uptime_sec":        time.Since(s.started).Seconds(),
		"scheduler":         agg,
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	camp, err := New(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("c%04d", s.seq)
	ctx, cancel := context.WithCancel(context.Background())
	run := &serverRun{
		id:      id,
		spec:    camp.Spec,
		cancel:  cancel,
		metrics: &Metrics{},
		started: time.Now(),
		state:   StateRunning,
	}
	s.runs[id] = run
	s.mu.Unlock()

	opts := Options{Metrics: run.metrics}
	if s.CheckpointDir != "" {
		opts.CheckpointPath = filepath.Join(s.CheckpointDir, id+".json")
	}
	go func() {
		defer cancel()
		res, err := camp.Run(ctx, opts)
		run.setFinished(res, err, errors.Is(err, context.Canceled))
	}()

	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":   id,
		"jobs": len(camp.jobs),
	})
}

func (s *Server) lookup(req *http.Request) (*serverRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[req.PathValue("id")]
	return r, ok
}

// runStatus is the status endpoint's JSON shape.
type runStatus struct {
	ID       string   `json:"id"`
	Name     string   `json:"name,omitempty"`
	State    string   `json:"state"`
	Error    string   `json:"error,omitempty"`
	Started  string   `json:"started"`
	Finished string   `json:"finished,omitempty"`
	Metrics  Snapshot `json:"metrics"`
}

func (r *serverRun) status() runStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := runStatus{
		ID:      r.id,
		Name:    r.spec.Name,
		State:   r.state,
		Error:   r.errMsg,
		Started: r.started.UTC().Format(time.RFC3339),
		Metrics: r.metrics.Snapshot(),
	}
	if !r.finished.IsZero() {
		st.Finished = r.finished.UTC().Format(time.RFC3339)
	}
	return st
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*serverRun, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].id < runs[j].id })
	out := make([]runStatus, len(runs))
	for i, r := range runs {
		out[i] = r.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	run, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, run.status())
}

func (s *Server) handleResults(w http.ResponseWriter, req *http.Request) {
	run, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
		return
	}
	run.mu.Lock()
	state, res := run.state, run.results
	run.mu.Unlock()
	if state == StateRunning || res == nil {
		writeError(w, http.StatusConflict, "campaign %s is still %s", run.id, state)
		return
	}
	target, ticks, n := res.Totals()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     run.id,
		"state":  state,
		"totals": map[string]int64{"iterations": n, "target": target, "ticks": ticks},
		"groups": res.sortedGroups(),
		"failures": func() []JobFailure {
			fails := make([]JobFailure, 0, len(res.Failures))
			fails = append(fails, res.Failures...)
			sort.Slice(fails, func(i, j int) bool { return fails[i].JobID < fails[j].JobID })
			return fails
		}(),
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	run, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
		return
	}
	run.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"id": run.id, "state": "cancelling"})
}
