package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"perple/internal/harness"
)

// run states reported by the status endpoint.
const (
	StateRunning   = "running"
	StateDone      = "done"
	StateCancelled = "cancelled"
	StateFailed    = "failed"
)

// serverRun is one submitted campaign: the scheduler invocation plus the
// bookkeeping the HTTP surface reports. Local runs execute on the
// in-process worker pool; dispatch runs hold a Dispatcher serving the
// lease endpoints instead.
type serverRun struct {
	id         string
	spec       Spec
	cancel     context.CancelFunc
	metrics    *Metrics
	started    time.Time
	dispatcher *Dispatcher          // nil for local runs
	axiom      map[string]TestAxiom // static target classification; read-only after submit

	mu       sync.Mutex
	state    string
	errMsg   string
	results  *Results
	finished time.Time

	// deadLetters quarantines jobs whose retry budget ran out, in arrival
	// order, so poison shards are visible on the status endpoint while the
	// campaign is still running — not only in the final report.
	failMu      sync.Mutex
	deadLetters []JobFailure

	// traceReports keeps the first few rendered trace-violation reports
	// (capped at harness.DefaultTraceReports) so an operator seeing the
	// trace_violations counter move can read the cycles on the status
	// endpoint without trawling worker logs. Counts stay exact in
	// Metrics; only the rendered reports are capped.
	traceMu      sync.Mutex
	traceReports []string
}

func (r *serverRun) collectTraceReports(jr *JobResult) {
	if len(jr.TraceReports) == 0 {
		return
	}
	r.traceMu.Lock()
	for _, rep := range jr.TraceReports {
		if len(r.traceReports) >= harness.DefaultTraceReports {
			break
		}
		r.traceReports = append(r.traceReports, rep)
	}
	r.traceMu.Unlock()
}

func (r *serverRun) traceReportList() []string {
	r.traceMu.Lock()
	out := append([]string(nil), r.traceReports...)
	r.traceMu.Unlock()
	return out
}

func (r *serverRun) addDeadLetter(f JobFailure) {
	r.failMu.Lock()
	r.deadLetters = append(r.deadLetters, f)
	r.failMu.Unlock()
}

func (r *serverRun) deadLetterList() []JobFailure {
	r.failMu.Lock()
	out := append([]JobFailure(nil), r.deadLetters...)
	r.failMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].JobID < out[j].JobID })
	return out
}

func (r *serverRun) setFinished(res *Results, err error, cancelled bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.results = res
	r.finished = time.Now()
	switch {
	case cancelled:
		r.state = StateCancelled
	case err != nil:
		r.state = StateFailed
	default:
		r.state = StateDone
	}
	if err != nil {
		r.errMsg = err.Error()
	}
}

// Server exposes the campaign scheduler over HTTP. All handlers are
// stdlib-only; campaigns execute on background goroutines, so the
// health, metrics, and status endpoints answer while runs are in
// flight.
type Server struct {
	// CheckpointDir, when non-empty, gives every submitted campaign a
	// checkpoint file (<id>.json) under it.
	CheckpointDir string

	// CheckpointEvery batches snapshot writes to every n completed jobs;
	// 0 means every job.
	CheckpointEvery int

	// CheckpointFS is the filesystem under checkpoint I/O; nil selects
	// the real one. The chaos suite injects fault-ridden implementations
	// here.
	CheckpointFS CheckpointFS

	// LeaseTTL is the dispatch-mode lease duration; 0 selects
	// DefaultLeaseTTL.
	LeaseTTL time.Duration

	// WALDir, when non-empty, gives every dispatch-mode campaign a
	// write-ahead log (<id>.wal under it) so a server restart
	// reconstructs the exact lease ledger instead of re-leasing
	// everything in flight. Requires CheckpointDir.
	WALDir string

	// WALSyncEvery batches WAL fsyncs to every n records (group commit);
	// 0 or 1 fsyncs every record.
	WALSyncEvery int

	// CompactEvery folds the WAL into a fresh checkpoint every n
	// terminal job transitions; 0 selects the dispatcher default.
	CompactEvery int

	mu   sync.Mutex
	runs map[string]*serverRun
	seq  int

	started time.Time
}

// NewServer returns an empty campaign server.
func NewServer() *Server {
	return &Server{runs: map[string]*serverRun{}, started: time.Now()}
}

// Handler builds the route table:
//
//	GET  /healthz                    liveness
//	GET  /metrics                    aggregate scheduler gauges (JSON, or
//	                                 Prometheus text when Accept asks for it)
//	POST /campaigns                  submit a spec, returns {"id": ...};
//	                                 ?mode=dispatch serves the jobs to
//	                                 workers instead of running them locally
//	GET  /campaigns                  list campaigns
//	GET  /campaigns/{id}             status + per-run metrics snapshot
//	GET  /campaigns/{id}/results     merged totals (409 until the run
//	                                 finishes); ?format=canonical returns
//	                                 the canonical result JSON document
//	POST /campaigns/{id}/cancel      abort a running campaign
//	GET  /campaigns/{id}/corpus      dispatch: spec + test sources
//	POST /campaigns/{id}/lease       dispatch: pull jobs
//	POST /campaigns/{id}/heartbeat   dispatch: extend leases
//	POST /campaigns/{id}/complete    dispatch: upload results (gzip JSON)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /campaigns", s.handleSubmit)
	mux.HandleFunc("GET /campaigns", s.handleList)
	mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	mux.HandleFunc("POST /campaigns/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /campaigns/{id}/corpus", s.handleCorpus)
	mux.HandleFunc("POST /campaigns/{id}/lease", s.handleLease)
	mux.HandleFunc("POST /campaigns/{id}/heartbeat", s.handleHeartbeat)
	mux.HandleFunc("POST /campaigns/{id}/complete", s.handleComplete)
	return mux
}

// CancelAll aborts every running campaign (used for graceful shutdown).
func (s *Server) CancelAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.runs {
		r.cancel()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// bodyBufPool recycles upload read buffers and dispatch response encode
// buffers across requests, so the data path allocates payload-sized
// scratch once per pool miss instead of once per exchange.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeJSONCounted is writeJSON for the dispatch data path: the body is
// encoded compactly into a pooled buffer first, and the byte count and
// encode time land on the campaign's wire metrics.
func writeJSONCounted(w http.ResponseWriter, status int, v any, m *Metrics) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	start := time.Now()
	err := json.NewEncoder(buf).Encode(v)
	m.WireEncodeNs.Add(time.Since(start).Nanoseconds())
	if err != nil {
		bodyBufPool.Put(buf)
		writeError(w, http.StatusInternalServerError, "encoding response: %v", err)
		return
	}
	m.WireBytesSent.Add(int64(buf.Len()))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	bodyBufPool.Put(buf)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"uptime_sec": time.Since(s.started).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, req *http.Request) {
	s.mu.Lock()
	runs := make([]*serverRun, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r) //perple:allow mergeorder runs feed order-invariant aggregation (snapshot sums, counters), never ordered output
	}
	s.mu.Unlock()

	var agg Snapshot
	var running int
	// Autoscaling gauges are computed at scrape time from the live lease
	// ledgers: how many leases are out across dispatch runs and how long
	// the oldest has been held. Queue depth (below, from the snapshot)
	// plus these two is what a fleet autoscaler needs — depth says add
	// workers, a growing oldest-lease age says one is stuck.
	var leasesActive int
	var oldestAge time.Duration
	for _, r := range runs {
		agg.Merge(r.metrics.Snapshot())
		r.mu.Lock()
		if r.state == StateRunning {
			running++
		}
		r.mu.Unlock()
		if r.dispatcher != nil {
			active, age := r.dispatcher.LeaseGauges()
			leasesActive += active
			if age > oldestAge {
				oldestAge = age
			}
		}
	}
	if wantsPrometheus(req) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, len(runs), running, time.Since(s.started).Seconds(), leasesActive, oldestAge.Seconds(), agg)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"campaigns":            len(runs),
		"campaigns_running":    running,
		"uptime_sec":           time.Since(s.started).Seconds(),
		"leases_active":        leasesActive,
		"oldest_lease_age_sec": oldestAge.Seconds(),
		"scheduler":            agg,
	})
}

// wantsPrometheus content-negotiates /metrics: a JSON Accept keeps the
// expvar-style document, a text/plain or OpenMetrics Accept (what
// Prometheus scrapers send) selects the text exposition format. The
// default stays JSON for backward compatibility.
func wantsPrometheus(req *http.Request) bool {
	accept := req.Header.Get("Accept")
	if strings.Contains(accept, "application/json") {
		return false
	}
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

// writePrometheus renders the aggregate snapshot in Prometheus text
// exposition format, one family per scheduler gauge plus the dispatch
// counters (leases, requeues, heartbeats, fence drops, upload bytes).
func writePrometheus(w io.Writer, campaigns, running int, uptimeSec float64, leasesActive int, oldestLeaseAgeSec float64, agg Snapshot) {
	type metric struct {
		name, typ, help string
		value           float64
	}
	metrics := []metric{
		{"perple_campaigns", "gauge", "Campaigns known to this server.", float64(campaigns)},
		{"perple_campaigns_running", "gauge", "Campaigns currently running.", float64(running)},
		{"perple_uptime_seconds", "gauge", "Server uptime.", uptimeSec},
		{"perple_jobs", "gauge", "Total jobs across campaigns, restored included.", float64(agg.JobsTotal)},
		{"perple_jobs_completed_total", "counter", "Jobs merged into totals.", float64(agg.JobsCompleted)},
		{"perple_jobs_restored_total", "counter", "Jobs restored from checkpoints.", float64(agg.JobsRestored)},
		{"perple_jobs_failed_total", "counter", "Jobs whose retry budget ran out.", float64(agg.JobsFailed)},
		{"perple_retries_total", "counter", "Failed attempts re-queued.", float64(agg.Retries)},
		{"perple_queue_depth", "gauge", "Jobs waiting for a worker or lease.", float64(agg.QueueDepth)},
		{"perple_leases_active", "gauge", "Leases currently held by fleet workers.", float64(leasesActive)},
		{"perple_oldest_lease_age_seconds", "gauge", "Age of the longest-held live lease.", oldestLeaseAgeSec},
		{"perple_jobs_in_flight", "gauge", "Jobs executing or leased.", float64(agg.InFlight)},
		{"perple_iterations_total", "counter", "Simulated test iterations completed.", float64(agg.Iterations)},
		{"perple_traces_verified_total", "counter", "Witness traces checked against the memory model.", float64(agg.TracesVerified)},
		{"perple_trace_violations_total", "counter", "Witness traces the memory model rejected.", float64(agg.TraceViolations)},
		{"perple_trace_verify_ns_total", "counter", "Host nanoseconds spent verifying witness traces.", float64(agg.TraceVerifyNs)},
		{"perple_leases_granted_total", "counter", "Jobs handed to fleet workers.", float64(agg.LeasesGranted)},
		{"perple_lease_requeues_total", "counter", "Leases expired or failed and requeued.", float64(agg.LeaseRequeues)},
		{"perple_heartbeats_total", "counter", "Lease extensions from worker heartbeats.", float64(agg.Heartbeats)},
		{"perple_results_fenced_total", "counter", "Duplicate completions dropped by the fence.", float64(agg.ResultsFenced)},
		{"perple_duplicate_uploads_total", "counter", "Same-lease upload re-deliveries acknowledged idempotently.", float64(agg.DuplicateUploads)},
		{"perple_upload_bytes_total", "counter", "Compressed result payload bytes received.", float64(agg.UploadBytes)},
		{"perple_wire_bytes_recv_total", "counter", "Result-upload body bytes received, any codec.", float64(agg.WireBytesRecv)},
		{"perple_wire_bytes_sent_total", "counter", "Dispatch-endpoint response body bytes sent.", float64(agg.WireBytesSent)},
		{"perple_wire_encode_ns_total", "counter", "Host nanoseconds encoding dispatch responses.", float64(agg.WireEncodeNs)},
		{"perple_wire_decode_ns_total", "counter", "Host nanoseconds decoding result uploads.", float64(agg.WireDecodeNs)},
		{"perple_checkpoint_errors_total", "counter", "Snapshot writes that failed and were retried.", float64(agg.CheckpointErrors)},
		{"perple_checkpoint_recoveries_total", "counter", "Resumes recovered from the rotated last-good snapshot.", float64(agg.CheckpointRecoveries)},
		{"perple_wal_appends_total", "counter", "Lease-ledger transitions appended to write-ahead logs.", float64(agg.WALAppends)},
		{"perple_wal_append_errors_total", "counter", "WAL appends that failed and degraded the log.", float64(agg.WALAppendErrors)},
		{"perple_wal_fsync_ns_total", "counter", "Host nanoseconds spent fsyncing write-ahead logs.", float64(agg.WALFsyncNs)},
		{"perple_wal_replays_total", "counter", "Dispatcher recoveries that replayed a write-ahead log.", float64(agg.WALReplays)},
		{"perple_wal_truncated_records_total", "counter", "Torn tail records dropped during WAL replay.", float64(agg.WALTruncatedRecords)},
		{"perple_allocs_total", "counter", "Heap allocations since metrics start (process-wide).", float64(agg.Allocs)},
	}
	for _, m := range metrics {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", m.name, m.help, m.name, m.typ, m.name, m.value)
	}
	writePrometheusBatchHist(w, agg.WireBatch)
}

// writePrometheusBatchHist renders the upload batch-size distribution as
// a Prometheus histogram. The snapshot stores per-bucket counts; the
// exposition format wants cumulative ones, so accumulate while walking
// the buckets in upper-bound order.
func writePrometheusBatchHist(w io.Writer, h BatchHistSnapshot) {
	const name = "perple_wire_batch_size"
	fmt.Fprintf(w, "# HELP %s Results per completion upload.\n# TYPE %s histogram\n", name, name)
	var cum int64
	for i := 0; i <= len(batchBuckets); i++ {
		label := batchBucketLabel(i)
		cum += h.Buckets[label]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, label, cum)
	}
	fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum, name, h.Count)
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	camp, err := New(spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	mode := req.URL.Query().Get("mode")
	if mode != "" && mode != "local" && mode != "dispatch" {
		writeError(w, http.StatusBadRequest, "unknown mode %q (want local or dispatch)", mode)
		return
	}

	s.mu.Lock()
	s.seq++
	id := fmt.Sprintf("c%04d", s.seq)
	s.mu.Unlock()

	run := &serverRun{
		id:      id,
		spec:    camp.Spec,
		metrics: &Metrics{},
		started: time.Now(),
		state:   StateRunning,
		axiom:   camp.AxiomInfo(),
	}
	opts := Options{
		Metrics:         run.metrics,
		CheckpointEvery: s.CheckpointEvery,
		CheckpointFS:    s.CheckpointFS,
		OnJobFailed:     run.addDeadLetter,
		OnJobDone:       run.collectTraceReports,
	}
	if s.CheckpointDir != "" {
		opts.CheckpointPath = filepath.Join(s.CheckpointDir, id+".json")
	}

	if mode == "dispatch" {
		if s.WALDir != "" && s.CheckpointDir != "" {
			opts.WALPath = filepath.Join(s.WALDir, id+".wal")
			opts.WALSyncEvery = s.WALSyncEvery
			opts.CompactEvery = s.CompactEvery
		}
		disp, err := NewDispatcher(camp, s.LeaseTTL, opts)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		run.dispatcher = disp
		run.cancel = disp.Cancel
		go func() {
			<-disp.Finished()
			res, err, cancelled := disp.Outcome()
			run.setFinished(res, err, cancelled)
		}()
	} else {
		ctx, cancel := context.WithCancel(context.Background())
		run.cancel = cancel
		go func() {
			defer cancel()
			res, err := camp.Run(ctx, opts)
			run.setFinished(res, err, errors.Is(err, context.Canceled))
		}()
	}

	s.mu.Lock()
	s.runs[id] = run
	s.mu.Unlock()

	resp := map[string]any{"id": id, "jobs": len(camp.jobs)}
	if mode == "dispatch" {
		resp["mode"] = "dispatch"
	}
	if excluded := excludedCount(run.axiom); excluded > 0 {
		resp["axiom_excluded"] = excluded
	}
	writeJSON(w, http.StatusAccepted, resp)
}

// lookupDispatcher resolves a dispatch-mode campaign or writes the
// appropriate error.
func (s *Server) lookupDispatcher(w http.ResponseWriter, req *http.Request) *Dispatcher {
	run, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
		return nil
	}
	if run.dispatcher == nil {
		writeError(w, http.StatusConflict, "campaign %s is not in dispatch mode", run.id)
		return nil
	}
	return run.dispatcher
}

func (s *Server) handleCorpus(w http.ResponseWriter, req *http.Request) {
	disp := s.lookupDispatcher(w, req)
	if disp == nil {
		return
	}
	writeJSONCounted(w, http.StatusOK, disp.Corpus(), disp.metrics)
}

func (s *Server) handleLease(w http.ResponseWriter, req *http.Request) {
	disp := s.lookupDispatcher(w, req)
	if disp == nil {
		return
	}
	var lr LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&lr); err != nil {
		writeError(w, http.StatusBadRequest, "decoding lease request: %v", err)
		return
	}
	writeJSONCounted(w, http.StatusOK, disp.Lease(lr), disp.metrics)
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, req *http.Request) {
	disp := s.lookupDispatcher(w, req)
	if disp == nil {
		return
	}
	var hr HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, req.Body, 1<<20)).Decode(&hr); err != nil {
		writeError(w, http.StatusBadRequest, "decoding heartbeat: %v", err)
		return
	}
	writeJSONCounted(w, http.StatusOK, disp.Heartbeat(hr), disp.metrics)
}

// handleComplete is the upload sink. The body is read into a pooled
// buffer and decoded by Content-Type — PWB1 binary, gzip-JSON, or plain
// JSON — so merged shards flow from the wire into the campaign
// accumulator through reused scratch, never through per-request
// payload-sized garbage. A frame error (truncated or bit-damaged
// binary upload) is answered 400 like any other undecodable body; the
// worker's retry loop re-sends the batch, and the fence keeps the
// re-delivery idempotent.
func (s *Server) handleComplete(w http.ResponseWriter, req *http.Request) {
	disp := s.lookupDispatcher(w, req)
	if disp == nil {
		return
	}
	buf := bodyBufPool.Get().(*bytes.Buffer)
	defer bodyBufPool.Put(buf)
	buf.Reset()
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, req.Body, 64<<20)); err != nil {
		writeError(w, http.StatusBadRequest, "reading upload: %v", err)
		return
	}
	body := buf.Bytes()
	var cr CompleteRequest
	start := time.Now()
	var err error
	switch {
	case req.Header.Get("Content-Type") == harness.WireContentTypeBinary:
		err = harness.DecodeWireBinary(body, &cr, 0)
	case req.Header.Get("Content-Type") == harness.WireContentType,
		req.Header.Get("Content-Encoding") == "gzip":
		err = harness.DecodeWire(bytes.NewReader(body), &cr)
	default:
		err = json.Unmarshal(body, &cr)
	}
	disp.metrics.WireDecodeNs.Add(time.Since(start).Nanoseconds())
	if err != nil {
		writeError(w, http.StatusBadRequest, "decoding upload: %v", err)
		return
	}
	if cr.Version != 0 && cr.Version != ProtocolVersion {
		writeError(w, http.StatusBadRequest, "protocol version %d, want %d", cr.Version, ProtocolVersion)
		return
	}
	writeJSONCounted(w, http.StatusOK, disp.Complete(cr, len(body)), disp.metrics)
}

func (s *Server) lookup(req *http.Request) (*serverRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[req.PathValue("id")]
	return r, ok
}

// runStatus is the status endpoint's JSON shape.
type runStatus struct {
	ID       string          `json:"id"`
	Name     string          `json:"name,omitempty"`
	State    string          `json:"state"`
	Error    string          `json:"error,omitempty"`
	Started  string          `json:"started"`
	Finished string          `json:"finished,omitempty"`
	Metrics  Snapshot        `json:"metrics"`
	Dispatch *dispatchStatus `json:"dispatch,omitempty"`
	// DeadLetters lists jobs whose retry budget ran out, sorted by job
	// ID — the quarantine an operator inspects to tell a poison shard
	// from an infrastructure problem.
	DeadLetters []JobFailure `json:"dead_letters,omitempty"`
	// Axiom carries the static per-test target classification recorded at
	// submit time (absent when the spec's axiom policy is "off").
	Axiom map[string]TestAxiom `json:"axiom,omitempty"`
	// TraceReports holds the first few rendered witness-trace violation
	// reports when the spec enables trace verification and the machine
	// actually violated the model.
	TraceReports []string `json:"trace_reports,omitempty"`
}

// excludedCount tallies reject-policy exclusions in a classification map.
func excludedCount(axiom map[string]TestAxiom) int {
	n := 0
	for _, ta := range axiom {
		if ta.Excluded {
			n++
		}
	}
	return n
}

// dispatchStatus is the lease ledger's aggregate state for dispatch-mode
// runs.
type dispatchStatus struct {
	Pending int `json:"pending"`
	Leased  int `json:"leased"`
	Done    int `json:"done"`
	Failed  int `json:"failed"`
}

func (r *serverRun) status() runStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := runStatus{
		ID:      r.id,
		Name:    r.spec.Name,
		State:   r.state,
		Error:   r.errMsg,
		Started: r.started.UTC().Format(time.RFC3339),
		Metrics: r.metrics.Snapshot(),
	}
	if !r.finished.IsZero() {
		st.Finished = r.finished.UTC().Format(time.RFC3339)
	}
	if r.dispatcher != nil {
		var ds dispatchStatus
		ds.Pending, ds.Leased, ds.Done, ds.Failed = r.dispatcher.Status()
		st.Dispatch = &ds
	}
	st.Axiom = r.axiom
	st.DeadLetters = r.deadLetterList()
	st.TraceReports = r.traceReportList()
	return st
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	runs := make([]*serverRun, 0, len(s.runs))
	for _, r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	sort.Slice(runs, func(i, j int) bool { return runs[i].id < runs[j].id })
	out := make([]runStatus, len(runs))
	for i, r := range runs {
		out[i] = r.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"campaigns": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, req *http.Request) {
	run, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, run.status())
}

func (s *Server) handleResults(w http.ResponseWriter, req *http.Request) {
	run, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
		return
	}
	run.mu.Lock()
	state, res := run.state, run.results
	run.mu.Unlock()
	if state == StateRunning || res == nil {
		writeError(w, http.StatusConflict, "campaign %s is still %s", run.id, state)
		return
	}
	if req.URL.Query().Get("format") == "canonical" {
		data, err := res.CanonicalJSON()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
		return
	}
	target, ticks, n := res.Totals()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     run.id,
		"state":  state,
		"totals": map[string]int64{"iterations": n, "target": target, "ticks": ticks},
		"groups": res.sortedGroups(),
		"failures": func() []JobFailure {
			fails := make([]JobFailure, 0, len(res.Failures))
			fails = append(fails, res.Failures...)
			sort.Slice(fails, func(i, j int) bool { return fails[i].JobID < fails[j].JobID })
			return fails
		}(),
	})
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	run, ok := s.lookup(req)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", req.PathValue("id"))
		return
	}
	run.cancel()
	writeJSON(w, http.StatusOK, map[string]string{"id": run.id, "state": "cancelling"})
}
