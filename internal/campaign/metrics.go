package campaign

import (
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the campaign scheduler's observability surface: lock-free
// counters the worker pool and collector update in place, snapshotted
// expvar-style by /metrics and the status endpoints. A Metrics value
// must not be copied after first use.
type Metrics struct {
	// JobsTotal is the campaign's full job count, including restored
	// ones.
	JobsTotal atomic.Int64
	// JobsCompleted counts jobs merged into the totals this run.
	JobsCompleted atomic.Int64
	// JobsRestored counts jobs restored from a checkpoint instead of
	// re-run.
	JobsRestored atomic.Int64
	// JobsFailed counts jobs whose retry budget ran out.
	JobsFailed atomic.Int64
	// Retries counts failed attempts that were re-queued.
	Retries atomic.Int64
	// QueueDepth is the number of jobs not yet picked up by a worker.
	QueueDepth atomic.Int64
	// InFlight is the number of jobs currently executing.
	InFlight atomic.Int64
	// Iterations counts simulated test iterations completed this run.
	Iterations atomic.Int64

	// Trace-verification counters (witness-trace plane; internal/trace).
	// Like Iterations they count work done this run, not restored from a
	// checkpoint; TraceVerifyNs is measured where verification ran, so
	// fleet campaigns account worker-side checking on the workers.

	// TracesVerified counts rf/co witnesses checked.
	TracesVerified atomic.Int64
	// TraceViolations counts witnesses the model rejected.
	TraceViolations atomic.Int64
	// TraceVerifyNs is host nanoseconds spent checking witnesses.
	TraceVerifyNs atomic.Int64

	// Dispatch-layer counters (lease-based worker fleet). Zero for local
	// runs.

	// LeasesGranted counts jobs handed to workers (re-leases included).
	LeasesGranted atomic.Int64
	// LeaseRequeues counts leases that expired or failed and went back to
	// the queue.
	LeaseRequeues atomic.Int64
	// Heartbeats counts lease extensions from worker heartbeats.
	Heartbeats atomic.Int64
	// ResultsFenced counts duplicate completions dropped by the
	// completion fence (a slow worker and its requeued replacement both
	// reported).
	ResultsFenced atomic.Int64
	// DuplicateUploads counts re-deliveries of an already-merged upload
	// under the same lease nonce (a worker retrying after a lost
	// response) — distinct from ResultsFenced, which counts competing
	// holders.
	DuplicateUploads atomic.Int64
	// UploadBytes counts compressed result-payload bytes received.
	UploadBytes atomic.Int64

	// Wire-layer counters (result codec and dispatch response path).

	// WireBytesRecv counts upload-request body bytes received, whichever
	// codec carried them (same bytes as UploadBytes, kept as a separate
	// family so the wire layer reads as one block on /metrics).
	WireBytesRecv atomic.Int64
	// WireBytesSent counts dispatch-endpoint response body bytes sent.
	WireBytesSent atomic.Int64
	// WireEncodeNs is host nanoseconds spent encoding dispatch responses.
	WireEncodeNs atomic.Int64
	// WireDecodeNs is host nanoseconds spent decoding result uploads.
	WireDecodeNs atomic.Int64
	// WireBatch is the distribution of results per upload batch.
	WireBatch BatchHist

	// Durability counters (checkpoint layer).

	// CheckpointErrors counts snapshot writes that failed and will be
	// retried at the next flush.
	CheckpointErrors atomic.Int64
	// CheckpointRecoveries counts resumes that fell back to the rotated
	// last-good snapshot because the active one was corrupt or missing.
	CheckpointRecoveries atomic.Int64

	// Write-ahead-log counters (durable dispatch plane; wal.go).

	// WALAppends counts ledger transition records appended to the log.
	WALAppends atomic.Int64
	// WALAppendErrors counts appends or fsyncs that failed and degraded
	// the log until the next compaction installed a fresh segment.
	WALAppendErrors atomic.Int64
	// WALFsyncNs is host nanoseconds spent in WAL group-commit fsyncs.
	WALFsyncNs atomic.Int64
	// WALReplays counts dispatcher startups that replayed an existing
	// log.
	WALReplays atomic.Int64
	// WALTruncatedRecords counts torn tail records dropped during
	// replay (a crash or partial-append fault mid-record).
	WALTruncatedRecords atomic.Int64

	startOnce    sync.Once
	startNano    atomic.Int64
	startMallocs atomic.Uint64
}

// batchBuckets are the BatchHist upper bounds (le); the final +Inf
// bucket is implicit.
var batchBuckets = [...]int64{1, 2, 4, 8, 16, 32, 64, 128}

// BatchHist is a lock-free fixed-bucket histogram of upload batch sizes
// (results per completion upload), shaped for Prometheus exposition:
// cumulative bucket counts plus sum and count. The zero value is ready
// to use; like Metrics it must not be copied after first use.
type BatchHist struct {
	buckets [len(batchBuckets) + 1]atomic.Int64 // last = +Inf
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one batch of n results.
func (h *BatchHist) Observe(n int) {
	i := 0
	for i < len(batchBuckets) && int64(n) > batchBuckets[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.sum.Add(int64(n))
	h.count.Add(1)
}

// BatchHistSnapshot is a point-in-time copy of a BatchHist, JSON-ready.
// Buckets holds per-bucket (not cumulative) counts keyed by upper
// bound, with "+Inf" last.
type BatchHistSnapshot struct {
	Buckets map[string]int64 `json:"buckets,omitempty"`
	Sum     int64            `json:"sum"`
	Count   int64            `json:"count"`
}

// Snapshot copies the histogram.
func (h *BatchHist) Snapshot() BatchHistSnapshot {
	s := BatchHistSnapshot{Sum: h.sum.Load(), Count: h.count.Load()}
	if s.Count == 0 {
		return s
	}
	s.Buckets = make(map[string]int64, len(h.buckets))
	for i := range h.buckets {
		if v := h.buckets[i].Load(); v != 0 {
			s.Buckets[batchBucketLabel(i)] = v
		}
	}
	return s
}

// batchBucketLabel names bucket i by its upper bound.
func batchBucketLabel(i int) string {
	if i >= len(batchBuckets) {
		return "+Inf"
	}
	return strconv.FormatInt(batchBuckets[i], 10)
}

// Merge sums another snapshot into s.
func (s *BatchHistSnapshot) Merge(o BatchHistSnapshot) {
	s.Sum += o.Sum
	s.Count += o.Count
	if len(o.Buckets) == 0 {
		return
	}
	if s.Buckets == nil {
		s.Buckets = make(map[string]int64, len(o.Buckets))
	}
	for k, v := range o.Buckets {
		s.Buckets[k] += v
	}
}

// Start marks the measurement epoch for the iterations/sec and
// allocations-per-iteration rates; later calls are no-ops.
func (m *Metrics) Start() {
	m.startOnce.Do(func() {
		m.startNano.Store(time.Now().UnixNano())
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		m.startMallocs.Store(ms.Mallocs)
	})
}

// Snapshot is a point-in-time copy of every gauge, JSON-ready.
type Snapshot struct {
	JobsTotal            int64             `json:"jobs_total"`
	JobsCompleted        int64             `json:"jobs_completed"`
	JobsRestored         int64             `json:"jobs_restored"`
	JobsFailed           int64             `json:"jobs_failed"`
	Retries              int64             `json:"retries"`
	QueueDepth           int64             `json:"queue_depth"`
	InFlight             int64             `json:"in_flight"`
	Iterations           int64             `json:"iterations"`
	TracesVerified       int64             `json:"traces_verified"`
	TraceViolations      int64             `json:"trace_violations"`
	TraceVerifyNs        int64             `json:"trace_verify_ns"`
	LeasesGranted        int64             `json:"leases_granted"`
	LeaseRequeues        int64             `json:"lease_requeues"`
	Heartbeats           int64             `json:"heartbeats"`
	ResultsFenced        int64             `json:"results_fenced"`
	DuplicateUploads     int64             `json:"duplicate_uploads"`
	UploadBytes          int64             `json:"upload_bytes"`
	WireBytesRecv        int64             `json:"wire_bytes_recv"`
	WireBytesSent        int64             `json:"wire_bytes_sent"`
	WireEncodeNs         int64             `json:"wire_encode_ns"`
	WireDecodeNs         int64             `json:"wire_decode_ns"`
	WireBatch            BatchHistSnapshot `json:"wire_batch"`
	CheckpointErrors     int64             `json:"checkpoint_errors"`
	CheckpointRecoveries int64             `json:"checkpoint_recoveries"`
	WALAppends           int64             `json:"wal_appends"`
	WALAppendErrors      int64             `json:"wal_append_errors"`
	WALFsyncNs           int64             `json:"wal_fsync_ns"`
	WALReplays           int64             `json:"wal_replays"`
	WALTruncatedRecords  int64             `json:"wal_truncated_records"`
	ElapsedSec           float64           `json:"elapsed_sec"`
	IterationsPerSec     float64           `json:"iterations_per_sec"`
	// Allocs is the process-wide heap-allocation count since Start (a
	// runtime.MemStats.Mallocs delta), and AllocsPerIter divides it by
	// the iterations completed. Process-wide means concurrent campaigns
	// and the HTTP server itself are included, so read it as an upper
	// bound on the per-iteration allocation rate of the hot path.
	Allocs        int64   `json:"allocs"`
	AllocsPerIter float64 `json:"allocs_per_iter"`
}

// Snapshot reads every counter once and derives the iteration rate over
// the elapsed time since Start.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		JobsTotal:            m.JobsTotal.Load(),
		JobsCompleted:        m.JobsCompleted.Load(),
		JobsRestored:         m.JobsRestored.Load(),
		JobsFailed:           m.JobsFailed.Load(),
		Retries:              m.Retries.Load(),
		QueueDepth:           m.QueueDepth.Load(),
		InFlight:             m.InFlight.Load(),
		Iterations:           m.Iterations.Load(),
		TracesVerified:       m.TracesVerified.Load(),
		TraceViolations:      m.TraceViolations.Load(),
		TraceVerifyNs:        m.TraceVerifyNs.Load(),
		LeasesGranted:        m.LeasesGranted.Load(),
		LeaseRequeues:        m.LeaseRequeues.Load(),
		Heartbeats:           m.Heartbeats.Load(),
		ResultsFenced:        m.ResultsFenced.Load(),
		DuplicateUploads:     m.DuplicateUploads.Load(),
		UploadBytes:          m.UploadBytes.Load(),
		WireBytesRecv:        m.WireBytesRecv.Load(),
		WireBytesSent:        m.WireBytesSent.Load(),
		WireEncodeNs:         m.WireEncodeNs.Load(),
		WireDecodeNs:         m.WireDecodeNs.Load(),
		WireBatch:            m.WireBatch.Snapshot(),
		CheckpointErrors:     m.CheckpointErrors.Load(),
		CheckpointRecoveries: m.CheckpointRecoveries.Load(),
		WALAppends:           m.WALAppends.Load(),
		WALAppendErrors:      m.WALAppendErrors.Load(),
		WALFsyncNs:           m.WALFsyncNs.Load(),
		WALReplays:           m.WALReplays.Load(),
		WALTruncatedRecords:  m.WALTruncatedRecords.Load(),
	}
	if start := m.startNano.Load(); start > 0 {
		s.ElapsedSec = time.Since(time.Unix(0, start)).Seconds()
		if s.ElapsedSec > 0 {
			s.IterationsPerSec = float64(s.Iterations) / s.ElapsedSec
		}
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.Allocs = int64(ms.Mallocs - m.startMallocs.Load())
		if s.Iterations > 0 {
			s.AllocsPerIter = float64(s.Allocs) / float64(s.Iterations)
		}
	}
	return s
}

// Merge sums another snapshot into s, for server-level aggregation
// across campaigns. Rates are re-derived by the caller.
func (s *Snapshot) Merge(o Snapshot) {
	s.JobsTotal += o.JobsTotal
	s.JobsCompleted += o.JobsCompleted
	s.JobsRestored += o.JobsRestored
	s.JobsFailed += o.JobsFailed
	s.Retries += o.Retries
	s.QueueDepth += o.QueueDepth
	s.InFlight += o.InFlight
	s.Iterations += o.Iterations
	s.TracesVerified += o.TracesVerified
	s.TraceViolations += o.TraceViolations
	s.TraceVerifyNs += o.TraceVerifyNs
	s.LeasesGranted += o.LeasesGranted
	s.LeaseRequeues += o.LeaseRequeues
	s.Heartbeats += o.Heartbeats
	s.ResultsFenced += o.ResultsFenced
	s.DuplicateUploads += o.DuplicateUploads
	s.UploadBytes += o.UploadBytes
	s.WireBytesRecv += o.WireBytesRecv
	s.WireBytesSent += o.WireBytesSent
	s.WireEncodeNs += o.WireEncodeNs
	s.WireDecodeNs += o.WireDecodeNs
	s.WireBatch.Merge(o.WireBatch)
	s.CheckpointErrors += o.CheckpointErrors
	s.CheckpointRecoveries += o.CheckpointRecoveries
	s.WALAppends += o.WALAppends
	s.WALAppendErrors += o.WALAppendErrors
	s.WALFsyncNs += o.WALFsyncNs
	s.WALReplays += o.WALReplays
	s.WALTruncatedRecords += o.WALTruncatedRecords
	s.IterationsPerSec += o.IterationsPerSec
	if o.ElapsedSec > s.ElapsedSec {
		s.ElapsedSec = o.ElapsedSec
	}
	s.Allocs += o.Allocs
	if s.Iterations > 0 {
		s.AllocsPerIter = float64(s.Allocs) / float64(s.Iterations)
	}
}
