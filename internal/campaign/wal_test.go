package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"perple/internal/harness"
)

func walTestSpec(t *testing.T) Spec {
	t.Helper()
	spec := smallSpec(t)
	spec.MaxRetries = 2
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestWALRecordRoundTrip(t *testing.T) {
	jr := fakeResult(Job{ID: 3, Test: "sb", Tool: "litmus7-user", Preset: "p", Shard: 1, N: 10, Seed: 42})
	recs := []walRecord{
		{Kind: walKindBegin, SpecCRC: 0xdeadbeef},
		{Kind: walKindGrant, JobID: 7, LeaseID: 19, Worker: "w-1", Expires: 123456789},
		{Kind: walKindExtend, JobID: 7, LeaseID: 19, Expires: 223456789},
		{Kind: walKindComplete, JobID: 3, LeaseID: 21, Result: jr},
		{Kind: walKindRequeue, JobID: 5, Attempts: 2, Err: "lease expired"},
		{Kind: walKindDeadLetter, JobID: 9, Attempts: 3, Err: "poison shard"},
		{Kind: walKindCancel},
	}
	for _, rec := range recs {
		data := harness.EncodeWireBinary(nil, &rec)
		var got walRecord
		if err := harness.DecodeWireBinary(data, &got, 0); err != nil {
			t.Fatalf("kind %d: decode: %v", rec.Kind, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("kind %d round trip:\n got %+v\nwant %+v", rec.Kind, got, rec)
		}
	}
}

// TestWALTornTailTruncated pins the scan property replay depends on:
// any byte-level damage at the tail — a partial final frame or trailing
// garbage — drops exactly the torn record and keeps every intact frame
// before it; a log written for a different spec is refused.
func TestWALTornTailTruncated(t *testing.T) {
	fsys := osCheckpointFS{}
	dir := t.TempDir()
	path := filepath.Join(dir, "log.wal")
	const crc = uint32(0x1234)

	w := newWAL(fsys, path, 1, crc, &Metrics{})
	if err := w.rotate(); err != nil {
		t.Fatal(err)
	}
	w.append(&walRecord{Kind: walKindGrant, JobID: 1, LeaseID: 5, Worker: "w", Expires: 99})
	w.append(&walRecord{Kind: walKindRequeue, JobID: 1, Attempts: 1, Err: "x"})
	w.close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replayWAL(fsys, path, crc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.recs) != 3 || rep.truncated != 0 {
		t.Fatalf("clean replay: %d recs, truncated %d", len(rep.recs), rep.truncated)
	}

	// Tear the final record: its frame is dropped, the rest survives.
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = replayWAL(fsys, path, crc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.recs) != 2 || rep.truncated != 1 {
		t.Fatalf("torn replay: %d recs, truncated %d", len(rep.recs), rep.truncated)
	}

	// Trailing garbage after intact frames: all records survive, the
	// garbage is reported torn.
	if err := os.WriteFile(path, append(append([]byte(nil), data...), "junk"...), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = replayWAL(fsys, path, crc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.recs) != 3 || rep.truncated != 1 {
		t.Fatalf("garbage-tail replay: %d recs, truncated %d", len(rep.recs), rep.truncated)
	}

	// A log headed by a different campaign's begin record is an operator
	// error, not something to silently replay.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := replayWAL(fsys, path, crc+1); err == nil {
		t.Fatal("replay accepted a WAL written by a different spec")
	}
}

// dispatcherFingerprint is the canonical observable state a recovery
// must reproduce byte-exactly: every ledger row, the lease-nonce
// counter, the merged-lease map, the done set, and the canonical result
// document. grantedAt is deliberately absent — it is a metrics
// approximation, not ledger state.
func dispatcherFingerprint(t *testing.T, d *Dispatcher) string {
	t.Helper()
	d.mu.Lock()
	defer d.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "nextLease=%d cancelled=%v finished=%v\n", d.q.nextLease, d.cancelled, d.finished)
	for _, row := range d.q.ledgerRows() {
		fmt.Fprintf(&b, "row %+v\n", row)
	}
	doneIDs := make([]int, 0, len(d.done))
	for id := range d.done {
		doneIDs = append(doneIDs, id)
	}
	sort.Ints(doneIDs)
	fmt.Fprintf(&b, "done %v\n", doneIDs)
	merged := make([]int, 0, len(d.mergedLease))
	for id := range d.mergedLease {
		merged = append(merged, id)
	}
	sort.Ints(merged)
	for _, id := range merged {
		fmt.Fprintf(&b, "merged %d by lease %d\n", id, d.mergedLease[id])
	}
	canon, err := d.results.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b.Write(canon)
	return b.String()
}

// TestWALReplayPropertyRandomOps is the recovery property test: for
// random interleavings of grants, heartbeats, completions, failures,
// and expiries, rebuilding a dispatcher from its checkpoint + WAL at an
// arbitrary point reconstructs state canonically identical to the live
// one — and a torn WAL tail recovers to exactly the state of the
// longest intact prefix.
func TestWALReplayPropertyRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(seed))
			spec := walTestSpec(t)
			dir := t.TempDir()
			opts := Options{
				CheckpointPath: filepath.Join(dir, "cp.json"),
				WALPath:        filepath.Join(dir, "log.wal"),
				WALSyncEvery:   1 + rng.Intn(4),
				CompactEvery:   2 + rng.Intn(8),
			}
			newDisp := func() *Dispatcher {
				camp, err := New(spec)
				if err != nil {
					t.Fatal(err)
				}
				d, err := NewDispatcher(camp, time.Minute, opts)
				if err != nil {
					t.Fatal(err)
				}
				return d
			}

			now := time.Unix(1_700_000_000, 0)
			clock := func() time.Time { return now }
			d := newDisp()
			d.setClock(clock)

			type held struct {
				job    Job
				lease  int64
				worker string
			}
			var grants []held
			workers := []string{"w1", "w2", "w3"}
			restarts := 0
			for op := 0; op < 120; op++ {
				d.mu.Lock()
				finished := d.finished
				d.mu.Unlock()
				if finished {
					break
				}
				switch rng.Intn(12) {
				case 0, 1, 2:
					w := workers[rng.Intn(len(workers))]
					resp := d.Lease(LeaseRequest{Worker: w, Max: 1 + rng.Intn(3)})
					for _, g := range resp.Grants {
						grants = append(grants, held{job: g.Job, lease: g.LeaseID, worker: w})
					}
				case 3:
					if len(grants) > 0 {
						g := grants[rng.Intn(len(grants))]
						d.Heartbeat(HeartbeatRequest{Worker: g.worker, Leases: []LeaseRef{{JobID: g.job.ID, LeaseID: g.lease}}})
					}
				case 4, 5, 6, 7:
					if len(grants) > 0 {
						// A random (possibly stale) grant completes; fenced and
						// duplicate deliveries are part of the property.
						g := grants[rng.Intn(len(grants))]
						d.Complete(CompleteRequest{
							Worker:  g.worker,
							Results: []WorkerResult{{LeaseID: g.lease, Result: fakeResult(g.job)}},
						}, 0)
					}
				case 8:
					if len(grants) > 0 {
						g := grants[rng.Intn(len(grants))]
						d.Complete(CompleteRequest{
							Worker:   g.worker,
							Failures: []WorkerFailure{{LeaseID: g.lease, JobID: g.job.ID, Err: "injected"}},
						}, 0)
					}
				case 9:
					// Let leases expire; the next protocol call sweeps them.
					now = now.Add(2 * time.Minute)
				default:
					// Simulated restart: rebuild from disk and require exact
					// state equality, then continue driving the rebuilt one.
					want := dispatcherFingerprint(t, d)
					d.mu.Lock()
					d.wal.close()
					d.mu.Unlock()
					d = newDisp()
					d.setClock(clock)
					restarts++
					if got := dispatcherFingerprint(t, d); got != want {
						t.Fatalf("op %d: recovery diverged from live state:\nlive:\n%s\nrecovered:\n%s", op, want, got)
					}
				}
			}
			if restarts == 0 {
				t.Fatalf("schedule produced no restarts; property not exercised")
			}

			// Torn-tail property: recovering from a WAL cut at an arbitrary
			// byte equals recovering from its longest intact frame prefix.
			d.mu.Lock()
			d.wal.close()
			d.mu.Unlock()
			data, err := os.ReadFile(opts.WALPath)
			if err != nil {
				t.Fatal(err)
			}
			boundary := 0
			for boundary < len(data) {
				n, ok := harness.WireFrameLen(data[boundary:])
				if !ok {
					break
				}
				boundary += n
			}
			cut := rng.Intn(len(data) + 1)
			cleanCut := 0
			for cleanCut < cut {
				n, ok := harness.WireFrameLen(data[cleanCut:])
				if !ok || cleanCut+n > cut {
					break
				}
				cleanCut += n
			}
			_ = boundary
			tornState := recoveredFingerprint(t, spec, opts, data[:cut])
			prefixState := recoveredFingerprint(t, spec, opts, data[:cleanCut])
			if tornState != prefixState {
				t.Fatalf("torn tail (cut %d) diverged from intact prefix (cut %d):\ntorn:\n%s\nprefix:\n%s",
					cut, cleanCut, tornState, prefixState)
			}
		})
	}
}

// recoveredFingerprint clones the campaign's durable state (checkpoint
// family + the given WAL bytes) into a fresh directory, recovers a
// dispatcher there, and fingerprints it. The copy keeps the recovery's
// own startup compaction from mutating the caller's files.
func recoveredFingerprint(t *testing.T, spec Spec, opts Options, walBytes []byte) string {
	t.Helper()
	dir := t.TempDir()
	clone := Options{
		CheckpointPath: filepath.Join(dir, "cp.json"),
		WALPath:        filepath.Join(dir, "log.wal"),
		WALSyncEvery:   opts.WALSyncEvery,
		CompactEvery:   opts.CompactEvery,
	}
	for _, suffix := range []string{"", ".prev"} {
		if data, err := os.ReadFile(opts.CheckpointPath + suffix); err == nil {
			if err := os.WriteFile(clone.CheckpointPath+suffix, data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := os.WriteFile(clone.WALPath, walBytes, 0o644); err != nil {
		t.Fatal(err)
	}
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(camp, time.Minute, clone)
	if err != nil {
		t.Fatal(err)
	}
	fp := dispatcherFingerprint(t, d)
	d.mu.Lock()
	d.wal.close()
	d.mu.Unlock()
	return fp
}

// TestWALCancelPersists pins that cancellation survives a restart: a
// cancelled campaign must come back cancelled, not resume leasing.
func TestWALCancelPersists(t *testing.T) {
	spec := walTestSpec(t)
	dir := t.TempDir()
	opts := Options{
		CheckpointPath: filepath.Join(dir, "cp.json"),
		WALPath:        filepath.Join(dir, "log.wal"),
	}
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(camp, time.Minute, opts)
	if err != nil {
		t.Fatal(err)
	}
	d.Lease(LeaseRequest{Worker: "w", Max: 2})
	d.Cancel()
	if _, _, cancelled := d.Outcome(); !cancelled {
		t.Fatal("Cancel did not mark the run cancelled")
	}

	camp2, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDispatcher(camp2, time.Minute, opts)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-d2.Finished():
	default:
		t.Fatal("restarted cancelled campaign did not finish immediately")
	}
	if _, _, cancelled := d2.Outcome(); !cancelled {
		t.Fatal("cancellation did not survive the restart")
	}
}

// flakySaveFS fails the first n checkpoint save attempts (at temp-file
// creation, before any bytes land) and then behaves normally.
type flakySaveFS struct {
	osCheckpointFS
	failures int
}

func (f *flakySaveFS) CreateTemp(dir, pattern string) (CheckpointFile, error) {
	if f.failures > 0 {
		f.failures--
		return nil, errors.New("flaky: injected save failure")
	}
	return f.osCheckpointFS.CreateTemp(dir, pattern)
}

// completeAll leases every job and uploads a fake result for each, one
// Complete call per job so every checkpoint cadence fires.
func completeAll(t *testing.T, d *Dispatcher) {
	t.Helper()
	resp := d.Lease(LeaseRequest{Worker: "w", Max: 1 << 20})
	for _, g := range resp.Grants {
		d.Complete(CompleteRequest{
			Worker:  "w",
			Results: []WorkerResult{{LeaseID: g.LeaseID, Result: fakeResult(g.Job)}},
		}, 0)
	}
}

// TestDispatcherCheckpointErrSemantics is the regression test for the
// transient-vs-final durability contract: mid-run save failures must
// not fail a campaign whose closing save lands; only a closing save
// that fails every retry surfaces in Outcome.
func TestDispatcherCheckpointErrSemantics(t *testing.T) {
	spec := walTestSpec(t)
	jobs := func() int {
		camp, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		return len(camp.Jobs())
	}()

	t.Run("transient failures then clean final save", func(t *testing.T) {
		// Every mid-run flush fails, plus the first closing attempt; the
		// retry loop's second attempt lands. The campaign must succeed.
		camp, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		metrics := &Metrics{}
		fsys := &flakySaveFS{failures: jobs + 1}
		d, err := NewDispatcher(camp, time.Minute, Options{
			CheckpointPath: filepath.Join(t.TempDir(), "cp.json"),
			CheckpointFS:   fsys,
			Metrics:        metrics,
		})
		if err != nil {
			t.Fatal(err)
		}
		completeAll(t, d)
		select {
		case <-d.Finished():
		default:
			t.Fatal("campaign did not finish")
		}
		if _, cpErr, _ := d.Outcome(); cpErr != nil {
			t.Fatalf("transient save failures failed the campaign: %v", cpErr)
		}
		if got := metrics.CheckpointErrors.Load(); got != int64(jobs+1) {
			t.Fatalf("checkpoint_errors = %d, want %d (every transient failure counted)", got, jobs+1)
		}
	})

	t.Run("final save exhausts retries", func(t *testing.T) {
		camp, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDispatcher(camp, time.Minute, Options{
			CheckpointPath: filepath.Join(t.TempDir(), "cp.json"),
			CheckpointFS:   &flakySaveFS{failures: 1 << 30},
		})
		if err != nil {
			t.Fatal(err)
		}
		completeAll(t, d)
		if _, cpErr, _ := d.Outcome(); cpErr == nil {
			t.Fatal("closing save failed every retry yet the campaign reported success")
		}
	})

	t.Run("transient compaction failures in WAL mode", func(t *testing.T) {
		// Same contract with the durable plane on: failed compactions are
		// transient (the log still holds the history), only the closing
		// save matters.
		camp, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		d, err := NewDispatcher(camp, time.Minute, Options{
			CheckpointPath: filepath.Join(dir, "cp.json"),
			WALPath:        filepath.Join(dir, "log.wal"),
			CheckpointFS:   &flakySaveFS{failures: 3},
			CompactEvery:   1,
		})
		if err != nil {
			t.Fatal(err)
		}
		completeAll(t, d)
		if _, cpErr, _ := d.Outcome(); cpErr != nil {
			t.Fatalf("transient compaction failures failed the campaign: %v", cpErr)
		}
	})
}
