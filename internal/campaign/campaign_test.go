package campaign

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// suiteSpec is a real campaign over a slice of testdata/suite: three
// tools (PerpLE heuristic, the exhaustive counter, and a litmus7 mode
// with histograms), two machine presets, sharded iteration budgets.
func suiteSpec() Spec {
	return Spec{
		Name:       "kill-resume-e2e",
		Dir:        "../../testdata/suite",
		Tests:      []string{"sb", "mp", "lb", "iriw", "wrc"},
		Tools:      []string{"perple-heur", "perple-exh", "litmus7-timebase"},
		Presets:    []string{"default", "pso"},
		Seed:       42,
		Iterations: 600,
		ShardSize:  200,
		ExhCap:     100,
		Workers:    4,
	}
}

// TestCampaignEndToEnd runs the suite campaign uninterrupted and checks
// the merged totals are sane: every (test, tool, preset) group holds its
// full budget and the sb store-buffering target was detected by PerpLE.
func TestCampaignEndToEnd(t *testing.T) {
	spec := suiteSpec()
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	// 5 tests × 3 tools × 2 presets × 3 shards.
	if got := len(camp.Jobs()); got != 90 {
		t.Fatalf("expanded %d jobs, want 90", got)
	}
	res, err := camp.Run(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("failures: %v", res.Failures)
	}
	if len(res.Groups) != 30 {
		t.Fatalf("got %d groups, want 30", len(res.Groups))
	}
	for _, g := range res.Groups {
		if g.N != 600 || g.Shards != 3 {
			t.Fatalf("group %s/%s/%s has n=%d shards=%d", g.Test, g.Tool, g.Preset, g.N, g.Shards)
		}
	}
	sb := res.Groups[groupKey("sb", "perple-heur", "default")]
	if sb == nil || sb.Target == 0 {
		t.Fatalf("PerpLE found no store-buffering outcomes on sb: %+v", sb)
	}
	l7 := res.Groups[groupKey("sb", "litmus7-timebase", "default")]
	if l7 == nil || len(l7.Histogram) == 0 {
		t.Fatalf("litmus7 run carried no histogram: %+v", l7)
	}
}

// TestCampaignKillResumeDeterminism is the resume guarantee, end to end
// with the real harness: a campaign cancelled mid-run and resumed from
// its checkpoint renders byte-identical merged totals to the same
// campaign run uninterrupted.
func TestCampaignKillResumeDeterminism(t *testing.T) {
	spec := suiteSpec()

	// Reference: uninterrupted run (no checkpointing at all).
	ref, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := refRes.Render()

	// Interrupted run: cancel after the 7th job lands, mid-campaign.
	path := filepath.Join(t.TempDir(), "campaign.json")
	killed, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	landed := 0
	killedMetrics := &Metrics{}
	partial, err := killed.Run(ctx, Options{
		CheckpointPath: path,
		Metrics:        killedMetrics,
		OnJobDone: func(*JobResult) {
			if landed++; landed == 7 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v, want context.Canceled", err)
	}
	if _, _, n := partial.Totals(); n == 0 {
		t.Fatal("interrupted run recorded nothing before the kill")
	}
	if got := partial.Render(); got == want {
		t.Fatal("campaign finished before the kill; lower the cancel threshold")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// Resume: a fresh Campaign (as after a process restart) against the
	// same checkpoint file.
	resumed, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	resumedMetrics := &Metrics{}
	finalRes, err := resumed.Run(context.Background(), Options{
		CheckpointPath: path,
		Metrics:        resumedMetrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumedMetrics.JobsRestored.Load() == 0 {
		t.Fatal("resume re-ran every job instead of restoring the checkpoint")
	}
	if restored, completed := resumedMetrics.JobsRestored.Load(), resumedMetrics.JobsCompleted.Load(); restored+completed != 90 {
		t.Fatalf("restored %d + completed %d != 90 jobs", restored, completed)
	}

	if got := finalRes.Render(); got != want {
		t.Errorf("resumed totals differ from the uninterrupted run\n--- uninterrupted ---\n%s\n--- resumed ---\n%s", want, got)
	}

	// And a second resume on the finished checkpoint is a pure restore.
	again, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	againMetrics := &Metrics{}
	againRes, err := again.Run(context.Background(), Options{
		CheckpointPath: path,
		Metrics:        againMetrics,
	})
	if err != nil {
		t.Fatal(err)
	}
	if againMetrics.JobsRestored.Load() != 90 || againMetrics.JobsCompleted.Load() != 0 {
		t.Fatalf("finished campaign re-ran jobs: restored=%d completed=%d",
			againMetrics.JobsRestored.Load(), againMetrics.JobsCompleted.Load())
	}
	if got := againRes.Render(); got != want {
		t.Error("restore-only run renders different totals")
	}
}

// TestCampaignResumeAfterCheckpointEvery exercises batched checkpoint
// writes: with CheckpointEvery > 1 the snapshot may trail the merged
// totals, and the resumed run must still converge to identical totals
// (trailing jobs simply re-run).
func TestCampaignResumeAfterCheckpointEvery(t *testing.T) {
	spec := suiteSpec()
	spec.Tests = []string{"sb", "mp"}
	spec.Tools = []string{"perple-heur"}

	ref, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	refRes, err := ref.Run(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := refRes.Render()

	path := filepath.Join(t.TempDir(), "campaign.json")
	killed, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	landed := 0
	if _, err := killed.Run(ctx, Options{
		CheckpointPath:  path,
		CheckpointEvery: 3,
		OnJobDone: func(*JobResult) {
			if landed++; landed == 4 {
				cancel()
			}
		},
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v", err)
	}

	resumed, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	finalRes, err := resumed.Run(context.Background(), Options{CheckpointPath: path, CheckpointEvery: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := finalRes.Render(); got != want {
		t.Errorf("batched-checkpoint resume differs from uninterrupted run\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
}
