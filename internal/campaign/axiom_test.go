package campaign

import (
	"net/http"
	"strings"
	"testing"
)

// TestSpecAxiomValidation: the policy defaults to warn and unknown
// values are rejected.
func TestSpecAxiomValidation(t *testing.T) {
	var s Spec
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Axiom != AxiomWarn {
		t.Fatalf("default axiom policy = %q, want %q", s.Axiom, AxiomWarn)
	}
	bad := Spec{Axiom: "maybe"}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "axiom policy") {
		t.Fatalf("bad policy error = %v", err)
	}
}

// TestAxiomWarnClassifies: the default policy records a classification
// for every corpus test without touching the job list.
func TestAxiomWarnClassifies(t *testing.T) {
	camp, err := New(Spec{Tests: []string{"sb", "mp"}, Iterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	info := camp.AxiomInfo()
	if info["sb"].Class != "tso-only" || info["sb"].Excluded {
		t.Errorf("sb = %+v, want tso-only and not excluded", info["sb"])
	}
	if info["mp"].Class != "forbidden" || info["mp"].Excluded {
		t.Errorf("mp = %+v, want forbidden but not excluded under warn", info["mp"])
	}
	seen := map[string]bool{}
	for _, job := range camp.Jobs() {
		seen[job.Test] = true
	}
	if !seen["sb"] || !seen["mp"] {
		t.Errorf("warn policy changed the job list: %v", seen)
	}
}

// TestAxiomRejectExcludes: reject drops statically forbidden targets
// from job expansion and from the dispatch wire corpus, and marks them
// in the classification.
func TestAxiomRejectExcludes(t *testing.T) {
	camp, err := New(Spec{Tests: []string{"sb", "mp"}, Iterations: 10, Axiom: AxiomReject})
	if err != nil {
		t.Fatal(err)
	}
	info := camp.AxiomInfo()
	if !info["mp"].Excluded {
		t.Errorf("mp = %+v, want excluded", info["mp"])
	}
	if info["sb"].Excluded {
		t.Errorf("sb = %+v, want kept", info["sb"])
	}
	for _, job := range camp.Jobs() {
		if job.Test != "sb" {
			t.Errorf("job %d runs rejected test %s", job.ID, job.Test)
		}
	}
	for _, ct := range buildCorpus(camp) {
		if ct.Name == "mp" {
			t.Error("rejected test leaked into the dispatch corpus")
		}
	}
}

// TestAxiomRejectEmptyCorpus: rejecting every test is an error, not a
// silent no-op campaign.
func TestAxiomRejectEmptyCorpus(t *testing.T) {
	_, err := New(Spec{Tests: []string{"mp"}, Iterations: 10, Axiom: AxiomReject})
	if err == nil || !strings.Contains(err.Error(), "rejected every corpus test") {
		t.Fatalf("err = %v, want rejected-every-test error", err)
	}
}

// TestAxiomOff: classification is skipped entirely.
func TestAxiomOff(t *testing.T) {
	camp, err := New(Spec{Tests: []string{"sb"}, Iterations: 10, Axiom: AxiomOff})
	if err != nil {
		t.Fatal(err)
	}
	if camp.AxiomInfo() != nil {
		t.Fatalf("AxiomInfo = %v, want nil under off", camp.AxiomInfo())
	}
}

// TestHTTPCarriesAxiom: the submit response counts reject-mode
// exclusions and the status/list endpoints carry the per-test
// classification map.
func TestHTTPCarriesAxiom(t *testing.T) {
	_, ts := newTestServer(t)
	code, resp := postJSON(t, ts.URL+"/campaigns",
		`{"tests": ["sb", "mp"], "iterations": 20, "axiom": "reject"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %v", code, resp)
	}
	if n, ok := resp["axiom_excluded"].(float64); !ok || n != 1 {
		t.Errorf("axiom_excluded = %v, want 1", resp["axiom_excluded"])
	}
	id := resp["id"].(string)

	st := getJSON(t, ts.URL+"/campaigns/"+id, http.StatusOK)
	ax, ok := st["axiom"].(map[string]any)
	if !ok {
		t.Fatalf("status has no axiom map: %v", st)
	}
	mp, _ := ax["mp"].(map[string]any)
	if mp["class"] != "forbidden" || mp["excluded"] != true {
		t.Errorf("mp classification = %v, want forbidden+excluded", mp)
	}
	sb, _ := ax["sb"].(map[string]any)
	if sb["class"] != "tso-only" {
		t.Errorf("sb classification = %v, want tso-only", sb)
	}

	list := getJSON(t, ts.URL+"/campaigns", http.StatusOK)
	camps := list["campaigns"].([]any)
	if len(camps) != 1 {
		t.Fatalf("list = %v", list)
	}
	if _, ok := camps[0].(map[string]any)["axiom"]; !ok {
		t.Error("list entry missing axiom classification")
	}
}
