package campaign

import (
	"reflect"
	"testing"
)

func TestSpecDefaults(t *testing.T) {
	var s Spec
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s.Tools, []string{"perple-heur"}) {
		t.Fatalf("default tools = %v", s.Tools)
	}
	if !reflect.DeepEqual(s.Presets, []string{"default"}) {
		t.Fatalf("default presets = %v", s.Presets)
	}
	if s.Iterations != DefaultIterations || s.ShardSize != DefaultIterations {
		t.Fatalf("default budget = %d/%d", s.Iterations, s.ShardSize)
	}
	if s.Seed != 1 || s.MaxRetries != DefaultMaxRetries || s.Workers <= 0 {
		t.Fatalf("defaults: seed=%d retries=%d workers=%d", s.Seed, s.MaxRetries, s.Workers)
	}
}

func TestSpecRejectsBadInput(t *testing.T) {
	for _, s := range []Spec{
		{Tools: []string{"nonsense"}},
		{Tools: []string{"litmus7-warp"}},
		{Presets: []string{"hyperdrive"}},
		{Iterations: -5},
		{ShardSize: -1},
	} {
		s := s
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v validated", s)
		}
	}
	if _, err := ParseSpec([]byte(`{"iterations": 10, "bogus_field": 1}`)); err == nil {
		t.Error("unknown spec field accepted")
	}
	if _, err := ParseSpec([]byte(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestJobExpansionDeterministic(t *testing.T) {
	spec := Spec{
		Tests:      []string{"sb", "mp"},
		Tools:      []string{"perple-heur", "litmus7-user"},
		Presets:    []string{"default", "pso"},
		Iterations: 1000,
		ShardSize:  300,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	tests, err := spec.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) != 2 || tests[0].Name != "mp" || tests[1].Name != "sb" {
		t.Fatalf("corpus = %v", tests)
	}

	jobs := spec.Jobs(tests)
	// 2 tests × 2 tools × 2 presets × 4 shards (300+300+300+100).
	if len(jobs) != 32 {
		t.Fatalf("expanded %d jobs, want 32", len(jobs))
	}
	var iters int
	for i, job := range jobs {
		if job.ID != i {
			t.Fatalf("job %d has ID %d", i, job.ID)
		}
		if job.Seed <= 0 {
			t.Fatalf("job %d has non-positive seed %d", i, job.Seed)
		}
		iters += job.N
	}
	if iters != 8*1000 {
		t.Fatalf("total shard iterations = %d, want 8000", iters)
	}

	again := spec.Jobs(tests)
	if !reflect.DeepEqual(jobs, again) {
		t.Fatal("job expansion is not deterministic")
	}

	// Seeds depend on shard identity, not enumeration order: appending a
	// tool must not disturb existing shards' seeds.
	wider := spec
	wider.Tools = append([]string{}, spec.Tools...)
	wider.Tools = append(wider.Tools, "litmus7-timebase")
	seedOf := func(jobs []Job) map[string]int64 {
		m := map[string]int64{}
		for _, j := range jobs {
			m[groupKey(j.Test, j.Tool, j.Preset)+string(rune(j.Shard))] = j.Seed
		}
		return m
	}
	wideSeeds := seedOf(wider.Jobs(tests))
	for key, seed := range seedOf(jobs) {
		if wideSeeds[key] != seed {
			t.Fatalf("seed for %q changed when the spec grew", key)
		}
	}

	// Distinct shards draw distinct seeds (FNV collisions over a handful
	// of shards would indicate a hashing bug).
	seen := map[int64]bool{}
	for _, j := range jobs {
		if seen[j.Seed] {
			t.Fatalf("duplicate shard seed %d", j.Seed)
		}
		seen[j.Seed] = true
	}
}

func TestCorpusFromDirectory(t *testing.T) {
	spec := Spec{Dir: "../../testdata/suite"}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	tests, err := spec.Corpus()
	if err != nil {
		t.Fatal(err)
	}
	if len(tests) < 30 {
		t.Fatalf("suite corpus has %d tests", len(tests))
	}
	for i := 1; i < len(tests); i++ {
		if tests[i-1].Name >= tests[i].Name {
			t.Fatalf("corpus not sorted: %q before %q", tests[i-1].Name, tests[i].Name)
		}
	}
}

func TestCorpusRejectsUnknownTestFilter(t *testing.T) {
	spec := Spec{Tests: []string{"sb", "no-such-test"}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Corpus(); err == nil {
		t.Fatal("unknown test name accepted")
	}
}
