package campaign

import (
	"testing"
	"time"
)

// newTestQueue builds a two-job ledger with a controllable clock.
func newTestQueue(maxRetries int) (*leaseQueue, *time.Time) {
	now := time.Unix(0, 0)
	q := newLeaseQueue([]Job{{ID: 0}, {ID: 1}}, time.Minute, maxRetries, func() time.Time { return now })
	return q, &now
}

// TestLeaseQueueHeartbeatAfterExpiry pins the expiry fence's division of
// labor: heartbeat itself does not check the clock — a heartbeat that
// races past the TTL but lands before the sweep revives the lease (the
// holder is demonstrably alive, and nothing was re-granted yet), while
// one landing after the sweep is rejected because the nonce is stale.
// Dispatchers sweep before heartbeating, so "expired" is decided at a
// single point instead of two racing ones.
func TestLeaseQueueHeartbeatAfterExpiry(t *testing.T) {
	q, now := newTestQueue(5)
	g := q.lease("w1", 1)[0]

	*now = now.Add(2 * time.Minute) // past the TTL, before any sweep
	if !q.heartbeat("w1", LeaseRef{JobID: 0, LeaseID: g.leaseID}) {
		t.Fatal("pre-sweep heartbeat from the (live) holder rejected")
	}
	if e := q.entries[0]; !e.expires.After(*now) {
		t.Fatal("heartbeat did not re-extend the lease")
	}

	// Let it expire for real this time: sweep first, heartbeat second.
	*now = now.Add(2 * time.Minute)
	requeued, _ := q.sweep()
	if len(requeued) != 1 {
		t.Fatalf("sweep requeued %d, want 1", len(requeued))
	}
	if q.heartbeat("w1", LeaseRef{JobID: 0, LeaseID: g.leaseID}) {
		t.Fatal("post-sweep heartbeat revived a requeued job")
	}
	if e := q.entries[0]; e.state != statePending {
		t.Fatalf("job state = %v, want pending", e.state)
	}
}

// TestLeaseQueueDuplicateComplete: the same lease completing twice — a
// retried upload whose first copy did land — is fenced the second time,
// never double-completed.
func TestLeaseQueueDuplicateComplete(t *testing.T) {
	q, _ := newTestQueue(5)
	g := q.lease("w1", 1)[0]
	ref := LeaseRef{JobID: 0, LeaseID: g.leaseID}

	if accepted, fenced := q.complete(ref); !accepted || fenced {
		t.Fatalf("first complete = (%v, %v), want accepted", accepted, fenced)
	}
	if accepted, fenced := q.complete(ref); accepted || !fenced {
		t.Fatalf("duplicate complete = (%v, %v), want fenced", accepted, fenced)
	}
	if _, _, done, failed := q.counts(); done != 1 || failed != 0 {
		t.Fatalf("ledger counts done=%d failed=%d after duplicate complete", done, failed)
	}
}

// TestLeaseQueueFailFromNonHolder: an execution-failure report is only
// honored from the job's current holder under its current nonce — a
// superseded holder (lease expired and re-granted) or an impostor name
// must not charge the replacement's retry budget.
func TestLeaseQueueFailFromNonHolder(t *testing.T) {
	q, now := newTestQueue(5)
	first := q.lease("w1", 1)[0]
	firstNonce := first.leaseID

	*now = now.Add(2 * time.Minute)
	if requeued, _ := q.sweep(); len(requeued) != 1 {
		t.Fatal("lease did not expire")
	}
	second := q.lease("w2", 1)[0]
	if second.job.ID != 0 || second.leaseID == firstNonce {
		t.Fatalf("re-grant = job %d nonce %d (was %d)", second.job.ID, second.leaseID, firstNonce)
	}
	attempts := second.attempts

	// Superseded holder reports a failure under its dead nonce.
	if r, f := q.fail("w1", LeaseRef{JobID: 0, LeaseID: firstNonce}, "boom"); r || f {
		t.Fatalf("superseded fail = (%v, %v), want ignored", r, f)
	}
	// Impostor: current nonce, wrong worker name.
	if r, f := q.fail("w1", LeaseRef{JobID: 0, LeaseID: second.leaseID}, "boom"); r || f {
		t.Fatalf("impostor fail = (%v, %v), want ignored", r, f)
	}
	if e := q.entries[0]; e.state != stateLeased || e.worker != "w2" || e.attempts != attempts {
		t.Fatalf("non-holder reports disturbed the ledger: %+v", e)
	}
	// The real holder's report still counts.
	if r, f := q.fail("w2", LeaseRef{JobID: 0, LeaseID: second.leaseID}, "boom"); !r || f {
		t.Fatalf("holder fail = (%v, %v), want requeued", r, f)
	}
}

// TestLeaseQueueReleaseRacingSweep: a graceful drain whose release
// arrives after the sweep already requeued the lease must be a no-op —
// in particular it must not insert the job into the pending set twice,
// which would let two workers hold "the" lease simultaneously.
func TestLeaseQueueReleaseRacingSweep(t *testing.T) {
	q, now := newTestQueue(5)
	g := q.lease("w1", 1)[0]

	*now = now.Add(2 * time.Minute)
	if requeued, _ := q.sweep(); len(requeued) != 1 {
		t.Fatal("lease did not expire")
	}
	if q.release("w1", LeaseRef{JobID: 0, LeaseID: g.leaseID}) {
		t.Fatal("release honored after the sweep already requeued the job")
	}
	seen := 0
	for _, id := range q.pending {
		if id == 0 {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("job 0 appears %d times in the pending set, want exactly 1: %v", seen, q.pending)
	}
	// And the job is grantable exactly once.
	if g := q.lease("w3", 10); len(g) != 2 {
		t.Fatalf("re-lease granted %d jobs, want 2 (each job exactly once)", len(g))
	}
}

// TestLeaseQueueReleaseAfterReGrant: same race, one step later — the
// job was not only requeued but already re-granted to another worker;
// the stale release must not yank it from under the new holder.
func TestLeaseQueueReleaseAfterReGrant(t *testing.T) {
	q, now := newTestQueue(5)
	g := q.lease("w1", 1)[0]
	*now = now.Add(2 * time.Minute)
	q.sweep()
	second := q.lease("w2", 1)[0]

	if q.release("w1", LeaseRef{JobID: 0, LeaseID: g.leaseID}) {
		t.Fatal("stale release honored against a re-granted lease")
	}
	if e := q.entries[0]; e.state != stateLeased || e.worker != "w2" || e.leaseID != second.leaseID {
		t.Fatalf("stale release disturbed the new holder: %+v", e)
	}
}
