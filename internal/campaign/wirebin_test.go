package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"perple/internal/harness"
)

func sampleCompleteRequest() *CompleteRequest {
	return &CompleteRequest{
		Version: ProtocolVersion,
		Worker:  "rack2-a-4411",
		Results: []WorkerResult{
			{LeaseID: 7, Result: &JobResult{
				JobID: 3, Test: "sb", Tool: "litmus7-user", Preset: "default",
				Shard: 1, N: 1000, Seed: -12345, Target: 42, Ticks: 98765, Frames: 11,
				Histogram:      map[string]int64{"0;0;": 42, "0;1;": 958},
				Note:           "ok",
				TracesVerified: 12, TraceViolations: 1,
				TraceReports: []string{"cycle: rf;co"},
			}},
			{LeaseID: 9, Result: &JobResult{
				JobID: 4, Test: "sb", Tool: "litmus7-user", Preset: "default",
				Shard: 2, N: 1000, Seed: 999, Histogram: map[string]int64{"0;1;": 1000},
			}},
		},
		Failures:  []WorkerFailure{{LeaseID: 11, JobID: 5, Err: "simulated crash"}},
		Released:  []LeaseRef{{JobID: 6, LeaseID: 13}},
		Heartbeat: []LeaseRef{{JobID: 8, LeaseID: 15}},
	}
}

func TestCompleteRequestBinaryRoundTrip(t *testing.T) {
	in := sampleCompleteRequest()
	want, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	frame := harness.EncodeWireBinary(nil, in)
	var out CompleteRequest
	if err := harness.DecodeWireBinary(frame, &out, 0); err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(&out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", got, want)
	}
}

func TestCompleteRequestBinaryInterning(t *testing.T) {
	// A batch repeating the same test/tool/preset strings must not pay
	// for them per shard: doubling the shard count with identical
	// identity strings should grow the frame by far less than the naive
	// per-shard string cost.
	base := sampleCompleteRequest()
	small := len(harness.EncodeWireBinary(nil, base))
	for i := 0; i < 64; i++ {
		jr := *base.Results[0].Result
		jr.JobID = 100 + i
		jr.Shard = 100 + i
		base.Results = append(base.Results, WorkerResult{LeaseID: int64(100 + i), Result: &jr})
	}
	big := len(harness.EncodeWireBinary(nil, base))
	perShard := (big - small) / 64
	if naive := len("sb") + len("litmus7-user") + len("default"); perShard >= naive+40 {
		t.Fatalf("per-shard cost %dB suggests identity strings are not interned", perShard)
	}
}

// FuzzCompleteRequestWire round-trips the upload payload through both
// codecs and demands canonical-JSON equality, so the dispatcher merges
// the same values whichever codec carried them.
func FuzzCompleteRequestWire(f *testing.F) {
	f.Add("w1", int64(7), int64(3), "sb", "0;1;", int64(42), "boom")
	f.Add("", int64(0), int64(0), "", "", int64(0), "")
	f.Add("w-\x00", int64(-1), int64(1<<40), "mp", "k;", int64(-5), "err\nline")
	f.Fuzz(func(t *testing.T, worker string, leaseID, jobID int64, test, key string, count int64, errMsg string) {
		worker = strings.ToValidUTF8(worker, "�")
		test = strings.ToValidUTF8(test, "�")
		key = strings.ToValidUTF8(key, "�")
		errMsg = strings.ToValidUTF8(errMsg, "�")
		in := &CompleteRequest{Version: ProtocolVersion, Worker: worker}
		if test != "" {
			jr := &JobResult{JobID: int(jobID), Test: test, Tool: test + "-tool", N: int(count)}
			if key != "" {
				jr.Histogram = map[string]int64{key: count}
			}
			in.Results = []WorkerResult{{LeaseID: leaseID, Result: jr}}
			in.Heartbeat = []LeaseRef{{JobID: int(jobID) + 1, LeaseID: leaseID + 1}}
		}
		if errMsg != "" {
			in.Failures = []WorkerFailure{{LeaseID: leaseID, JobID: int(jobID), Err: errMsg}}
			in.Released = []LeaseRef{{JobID: int(jobID), LeaseID: leaseID}}
		}
		want, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}

		var fromBin CompleteRequest
		if err := harness.DecodeWireBinary(harness.EncodeWireBinary(nil, in), &fromBin, 0); err != nil {
			t.Fatalf("binary decode: %v", err)
		}
		if got, _ := json.Marshal(&fromBin); !bytes.Equal(got, want) {
			t.Fatalf("binary round trip:\n got %s\nwant %s", got, want)
		}

		gz, err := harness.EncodeWire(in)
		if err != nil {
			t.Fatalf("gzip encode: %v", err)
		}
		var fromGz CompleteRequest
		if err := harness.DecodeWire(bytes.NewReader(gz), &fromGz); err != nil {
			t.Fatalf("gzip decode: %v", err)
		}
		if got, _ := json.Marshal(&fromGz); !bytes.Equal(got, want) {
			t.Fatalf("gzip round trip:\n got %s\nwant %s", got, want)
		}
	})
}

// FuzzCompleteRequestBinaryDecode feeds arbitrary bytes to the upload
// decoder — the dispatcher's exposure surface — which must never panic.
func FuzzCompleteRequestBinaryDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(harness.EncodeWireBinary(nil, sampleCompleteRequest()))
	f.Fuzz(func(t *testing.T, data []byte) {
		var out CompleteRequest
		_ = harness.DecodeWireBinary(data, &out, 1<<20)
	})
}

// TestFleetWireMatrix is the tentpole's byte-identity contract swept
// across the new data-path knobs: every codec choice (negotiated,
// forced gzip-JSON, forced binary — including a fleet mixing codecs
// per worker) and lease batch size must merge to exactly the serial
// run's canonical bytes, whatever the arrival order the fleet's
// scheduling produced.
func TestFleetWireMatrix(t *testing.T) {
	spec := fleetSpec(t)
	want := serialCanonical(t, spec)

	cases := []struct {
		name  string
		wires []string // per-worker Wire option, round-robin
		batch int
	}{
		{"auto-batch1", []string{"auto"}, 1},
		{"auto-batch8", []string{"auto"}, 8},
		{"json-batch4", []string{WireJSON}, 4},
		{"binary-batch4", []string{WireBinary}, 4},
		{"mixed-codecs", []string{WireBinary, WireJSON, "auto"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, ts := newTestServer(t)
			id := submitDispatch(t, ts, spec)

			const k = 3
			var wg sync.WaitGroup
			errs := make([]error, k)
			for i := 0; i < k; i++ {
				w := NewWorker(WorkerOptions{
					BaseURL:    ts.URL,
					Campaign:   id,
					Name:       fmt.Sprintf("w%d", i),
					Parallel:   2,
					LeaseBatch: tc.batch,
					Wire:       tc.wires[i%len(tc.wires)],
				})
				wg.Add(1)
				go func(i int, w *Worker) {
					defer wg.Done()
					errs[i] = w.Run(context.Background())
				}(i, w)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			if state := pollState(t, ts, id, 30*time.Second); state != StateDone {
				t.Fatalf("fleet campaign ended %q", state)
			}
			if got := fetchCanonical(t, ts, id); !bytes.Equal(got, want) {
				t.Fatalf("%s diverged from serial run:\nserial:\n%s\nfleet:\n%s", tc.name, want, got)
			}
		})
	}
}

// prebinaryProxy forwards to a real dispatch server but strips the
// corpus codec advertisement — exactly what a pre-binary server's
// responses look like — so an auto-mode worker must fall back to
// gzip-JSON uploads and dedicated heartbeats.
func prebinaryProxy(t *testing.T, backend string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		url := backend + r.URL.Path
		req, err := http.NewRequest(r.Method, url, r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		if strings.HasSuffix(r.URL.Path, "/corpus") && resp.StatusCode == http.StatusOK {
			var corpus map[string]json.RawMessage
			if err := json.Unmarshal(body, &corpus); err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			delete(corpus, "wire")
			if body, err = json.Marshal(corpus); err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
		}
		w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	}))
}

// TestFleetMixedVersionCompat covers both interop directions: a worker
// pinned to the old codec against a binary-preferring dispatcher, and a
// binary-capable worker against a server that never advertises codecs.
// Both fleets must merge byte-identically to the serial run.
func TestFleetMixedVersionCompat(t *testing.T) {
	spec := fleetSpec(t)
	want := serialCanonical(t, spec)

	t.Run("old-worker-new-server", func(t *testing.T) {
		// Forcing WireJSON reproduces a pre-binary worker's uploads
		// byte-for-byte: gzip-JSON body, json+gzip Content-Type.
		_, ts := newTestServer(t)
		id := submitDispatch(t, ts, spec)
		w := NewWorker(WorkerOptions{BaseURL: ts.URL, Campaign: id, Name: "old", Parallel: 2, Wire: WireJSON})
		if err := w.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if state := pollState(t, ts, id, 30*time.Second); state != StateDone {
			t.Fatalf("campaign ended %q", state)
		}
		if got := fetchCanonical(t, ts, id); !bytes.Equal(got, want) {
			t.Fatalf("old-worker fleet diverged:\nserial:\n%s\nfleet:\n%s", want, got)
		}
	})

	t.Run("new-worker-old-server", func(t *testing.T) {
		_, ts := newTestServer(t)
		proxy := prebinaryProxy(t, ts.URL)
		defer proxy.Close()
		id := submitDispatch(t, ts, spec)
		w := NewWorker(WorkerOptions{BaseURL: proxy.URL, Campaign: id, Name: "new", Parallel: 2})
		if err := w.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if w.useBinary || w.piggyback {
			t.Fatalf("worker negotiated binary=%v piggyback=%v against a non-advertising server", w.useBinary, w.piggyback)
		}
		if state := pollState(t, ts, id, 30*time.Second); state != StateDone {
			t.Fatalf("campaign ended %q", state)
		}
		if got := fetchCanonical(t, ts, id); !bytes.Equal(got, want) {
			t.Fatalf("old-server fleet diverged:\nserial:\n%s\nfleet:\n%s", want, got)
		}
	})
}

// TestFleetWireMetrics checks the operator surface the new data path
// added: byte/time counters and the batch-size histogram move on the
// JSON snapshot, and /metrics renders the Prometheus families.
func TestFleetWireMetrics(t *testing.T) {
	spec := fleetSpec(t)
	_, ts := newTestServer(t)
	id := submitDispatch(t, ts, spec)
	w := NewWorker(WorkerOptions{BaseURL: ts.URL, Campaign: id, Name: "m1", Parallel: 2, LeaseBatch: 4})
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if state := pollState(t, ts, id, 30*time.Second); state != StateDone {
		t.Fatalf("campaign ended %q", state)
	}

	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var status struct {
		Metrics Snapshot `json:"metrics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	m := status.Metrics
	if m.WireBytesRecv <= 0 || m.WireBytesSent <= 0 {
		t.Fatalf("wire byte counters did not move: recv=%d sent=%d", m.WireBytesRecv, m.WireBytesSent)
	}
	if m.WireEncodeNs <= 0 || m.WireDecodeNs <= 0 {
		t.Fatalf("wire timing counters did not move: enc=%d dec=%d", m.WireEncodeNs, m.WireDecodeNs)
	}
	if m.WireBatch.Count <= 0 || m.WireBatch.Sum <= 0 {
		t.Fatalf("batch histogram did not move: %+v", m.WireBatch)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	promResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer promResp.Body.Close()
	prom, _ := io.ReadAll(promResp.Body)
	for _, family := range []string{
		"perple_wire_bytes_recv_total",
		"perple_wire_bytes_sent_total",
		"perple_wire_encode_ns_total",
		"perple_wire_decode_ns_total",
		`perple_wire_batch_size_bucket{le="+Inf"}`,
		"perple_wire_batch_size_sum",
		"perple_wire_batch_size_count",
	} {
		if !strings.Contains(string(prom), family) {
			t.Fatalf("Prometheus exposition lacks %s:\n%s", family, prom)
		}
	}
}

// TestCompleteRejectsDamagedBinary posts a bit-damaged binary frame and
// expects a 400 — the worker-side retry contract for frame errors.
func TestCompleteRejectsDamagedBinary(t *testing.T) {
	spec := fleetSpec(t)
	_, ts := newTestServer(t)
	id := submitDispatch(t, ts, spec)
	frame := harness.EncodeWireBinary(nil, sampleCompleteRequest())
	frame[len(frame)/2] ^= 0x10
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/campaigns/"+id+"/complete", bytes.NewReader(frame))
	req.Header.Set("Content-Type", harness.WireContentTypeBinary)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("damaged binary upload = %d, want 400", resp.StatusCode)
	}
}
