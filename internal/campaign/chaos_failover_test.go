// Chaos failover soak: the durable dispatch plane's acceptance test. A
// fleet campaign runs against a dispatcher that is killed -9 (simulated:
// persistence stops, in-memory acknowledgments continue — strictly more
// adversarial than a real crash, because workers keep receiving acks the
// restarted dispatcher never heard of) at the nastiest points of the
// data path, then restarted from checkpoint + WAL, all while the nine
// existing injectors plus partial_append torture every byte written.
// The merged canonical document must come out byte-identical to the
// fault-free serial run, with zero duplicate merges and zero dead
// letters — at-least-once delivery over deterministic shards.
package campaign_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"perple/internal/campaign"
	"perple/internal/chaos"
)

// swapFrontend is the stable URL workers dial across dispatcher
// incarnations: a handler slot that returns 503 while no dispatcher is
// installed (the restart window) and tracks in-flight requests so a
// quiesce can wait out exchanges still executing against a dead
// incarnation.
type swapFrontend struct {
	mu       sync.Mutex
	inner    http.Handler
	inflight sync.WaitGroup
}

func (f *swapFrontend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	h := f.inner
	if h == nil {
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"dispatcher restarting"}`)
		return
	}
	f.inflight.Add(1)
	f.mu.Unlock()
	defer f.inflight.Done()
	h.ServeHTTP(w, r)
}

func (f *swapFrontend) install(h http.Handler) {
	f.mu.Lock()
	f.inner = h
	f.mu.Unlock()
}

// quiesce takes the frontend down and waits for in-flight exchanges to
// drain: after it returns, nothing reaches the dead incarnation again.
func (f *swapFrontend) quiesce() {
	f.install(nil)
	f.inflight.Wait()
}

// failoverSubmit submits the spec directly against a server's handler
// (the frontend is down during restarts, exactly as a real boot-time
// resubmit would bypass the load balancer's health checks).
func failoverSubmit(t *testing.T, h http.Handler, spec campaign.Spec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/campaigns?mode=dispatch", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("dispatch submit = %d: %s", rec.Code, rec.Body.Bytes())
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response %q: %v", rec.Body.Bytes(), err)
	}
	return sub.ID
}

// TestChaosDispatcherFailoverByteIdentical kills and restarts the
// dispatcher at three adversarial points — between deciding grants and
// logging them, between the in-memory merge and its WAL append, and
// mid-compaction after the snapshot landed but before the log rotated —
// with every HTTP and filesystem injector live, and requires the final
// merged bytes to equal the fault-free serial run.
func TestChaosDispatcherFailoverByteIdentical(t *testing.T) {
	spec := soakSpec(t)
	want := soakBaseline(t, spec)

	// One chaos FS for every incarnation: the checkpoint and WAL history
	// on disk accumulates damage across restarts, as one machine's disk
	// would.
	fsys := chaos.NewFS(chaos.FSConfig{
		Seed: 71,
		Rates: chaos.FSRates{
			TornWrite: 0.1, Corrupt: 0.1, RenameFail: 0.1,
			PartialAppend: 0.25,
		},
	})
	cpDir := t.TempDir()
	walDir := t.TempDir()
	front := &swapFrontend{}
	ts := httptest.NewServer(front)
	defer ts.Close()

	newServer := func() *campaign.Server {
		srv := campaign.NewServer()
		srv.CheckpointDir = cpDir
		srv.CheckpointFS = fsys
		srv.WALDir = walDir
		srv.WALSyncEvery = 2
		srv.CompactEvery = 4
		srv.LeaseTTL = 400 * time.Millisecond
		return srv
	}

	var wg sync.WaitGroup
	var workerErrs sync.Map
	spawnFleet := func(gen int) {
		for i := 0; i < 4; i++ {
			rt := chaos.New(chaos.Config{
				Seed: int64(gen*100 + i + 1),
				Rates: chaos.Rates{
					DropRequest: 0.08, DropResponse: 0.08, Delay: 0.08,
					Duplicate: 0.08, Truncate: 0.08, ServerError: 0.08,
				},
				DelayMin: time.Millisecond,
				DelayMax: 5 * time.Millisecond,
			}, nil)
			name := fmt.Sprintf("failover-%d-%d", gen, i)
			w := campaign.NewWorker(campaign.WorkerOptions{
				BaseURL:  ts.URL,
				Campaign: "c0001",
				Name:     name,
				Parallel: 2,
				Client:   &http.Client{Transport: rt, Timeout: 30 * time.Second},
				// RecoveryWindow keeps workers retrying through the restart
				// windows' 503s instead of burning their per-call attempt
				// budget on a dead frontend.
				RecoveryWindow:   60 * time.Second,
				HeartbeatEvery:   100 * time.Millisecond,
				BackoffBase:      5 * time.Millisecond,
				BreakerThreshold: 6,
				BreakerCooldown:  50 * time.Millisecond,
			})
			wg.Add(1)
			go func() {
				defer wg.Done()
				workerErrs.Store(name, w.Run(t.Context()))
			}()
		}
	}

	kills := []struct {
		point string
		nth   int32
	}{
		// Grants decided, workers will receive them, log never hears of
		// them: the restarted dispatcher must fence or re-run safely.
		{"mid-grant", 3},
		// Upload merged in memory, completion record lost: the job re-runs
		// and determinism must reproduce the lost merge byte-exactly.
		{"pre-wal-complete", 5},
		// Snapshot saved, log not yet rotated: the stale suffix replays
		// over the newer snapshot and must converge, not double-count.
		{"mid-compact", 2},
	}
	var id string
	for gen, k := range kills {
		srv := newServer()
		id = failoverSubmit(t, srv.Handler(), spec)
		d := srv.DispatcherForTest(id)
		if d == nil {
			t.Fatalf("incarnation %d: no dispatcher behind %s", gen, id)
		}
		// Install the countdown kill before any worker traffic arrives, so
		// the schedule cannot race past the target occurrence.
		fired := make(chan struct{})
		var seen atomic.Int32
		point, nth := k.point, k.nth
		d.SetKillHookForTest(func(p string) bool {
			if p != point {
				return false
			}
			if seen.Add(1) == nth {
				close(fired)
				return true
			}
			return false
		})
		front.install(srv.Handler())
		spawnFleet(gen)
		select {
		case <-fired:
		case <-time.After(30 * time.Second):
			t.Fatalf("incarnation %d: kill point %s (occurrence %d) never fired", gen, point, nth)
		case <-d.Finished():
			select {
			case <-fired:
				// The killed dispatcher kept acknowledging and finished in
				// memory — the adversarial case the restart must erase.
			default:
				t.Fatalf("incarnation %d: campaign finished before kill point %s fired", gen, point)
			}
		}
		front.quiesce()
	}

	// Final incarnation: recover once more and run to completion with no
	// kill installed. Worker generations from the killed incarnations are
	// still alive and keep talking to it — their stale-lease uploads must
	// fence, not corrupt.
	srv := newServer()
	finalID := failoverSubmit(t, srv.Handler(), spec)
	if finalID != id {
		t.Fatalf("final incarnation assigned id %q, want %q (same spec, same state dir)", finalID, id)
	}
	front.install(srv.Handler())
	spawnFleet(len(kills))
	wg.Wait()
	workerErrs.Range(func(name, err any) bool {
		if err != nil {
			t.Errorf("worker %s failed across failovers: %v", name, err)
		}
		return true
	})
	if t.Failed() {
		t.FailNow()
	}

	if state := soakWaitDone(t, ts, id, 60*time.Second); state != campaign.StateDone {
		t.Fatalf("campaign ended %q after failovers", state)
	}
	if got := soakCanonical(t, ts, id); !bytes.Equal(got, want) {
		t.Fatalf("failover run diverged from fault-free serial run:\nserial:\n%s\nfailover:\n%s", want, got)
	}
	st := soakStatus(t, ts, id)
	if dl, ok := st["dead_letters"]; ok {
		t.Fatalf("failovers quarantined jobs despite the retry budget: %v", dl)
	}
	metrics := st["metrics"].(map[string]any)
	if got := metrics["wal_replays"].(float64); got < 1 {
		t.Fatalf("final incarnation replayed no WAL (wal_replays = %v): the durable plane never engaged", got)
	}
	stats := fsys.Stats()
	if stats["partial_append"] == 0 {
		t.Fatalf("partial_append never fired; the soak did not exercise torn WAL tails: %v", stats)
	}
	t.Logf("failover soak: fs injector activity %v, wal_replays %v, duplicate_uploads %v",
		stats, metrics["wal_replays"], metrics["duplicate_uploads"])
}
