// Campaign-level witness-trace verification: the spec knob parses and
// validates, verification never changes the canonical result document
// (the satellite fix this PR pins), counters fold into Metrics, and a
// PSO machine's violations surface through the server's status and
// metrics endpoints.
package campaign_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"perple/internal/campaign"
)

func TestParseTraceVerify(t *testing.T) {
	cases := []struct {
		in   string
		want int
		ok   bool
	}{
		{"", 0, true},
		{"off", 0, true},
		{"all", 1, true},
		{"1", 1, true},
		{"8", 8, true},
		{"0", 0, false},
		{"-3", 0, false},
		{"sometimes", 0, false},
	}
	for _, c := range cases {
		got, err := campaign.ParseTraceVerify(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseTraceVerify(%q) = %d, %v; want %d", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseTraceVerify(%q) accepted", c.in)
		}
	}
}

func TestSpecTraceVerifyValidate(t *testing.T) {
	spec := campaign.Spec{TraceVerify: "never"}
	if err := spec.Validate(); err == nil {
		t.Fatal("bad trace_verify value accepted")
	}
	spec = campaign.Spec{}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	// Unlike Axiom, TraceVerify must NOT be default-filled: verification
	// is explicit opt-in and "" must survive Validate as off.
	if spec.TraceVerify != "" || spec.TraceVerifyEvery() != 0 {
		t.Fatalf("Validate default-filled TraceVerify to %q", spec.TraceVerify)
	}
}

// TestCampaignTraceVerifyByteIdentical is the satellite fix: enabling
// trace verification must leave the campaign's canonical result document
// byte-identical, with the verification tallies surfacing only through
// Metrics. The spec mixes litmus7 (verified) and PerpLE (silently
// skipped) tools so both runJob paths are pinned.
func TestCampaignTraceVerifyByteIdentical(t *testing.T) {
	base := campaign.Spec{
		Tests:      []string{"mp", "sb"},
		Tools:      []string{"litmus7-user", "perple-heur"},
		Iterations: 600,
		ShardSize:  150,
		Seed:       5,
		Workers:    2,
	}
	run := func(traceVerify string) ([]byte, *campaign.Metrics) {
		t.Helper()
		spec := base
		spec.TraceVerify = traceVerify
		if err := spec.Validate(); err != nil {
			t.Fatal(err)
		}
		camp, err := campaign.New(spec)
		if err != nil {
			t.Fatal(err)
		}
		var m campaign.Metrics
		res, err := camp.Run(context.Background(), campaign.Options{Metrics: &m})
		if err != nil {
			t.Fatal(err)
		}
		data, err := res.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data, &m
	}

	off, offM := run("off")
	on, onM := run("all")
	if !bytes.Equal(off, on) {
		t.Fatalf("trace verification perturbed the canonical document:\noff:\n%s\non:\n%s", off, on)
	}
	if offM.TracesVerified.Load() != 0 {
		t.Fatalf("verification off but %d traces verified", offM.TracesVerified.Load())
	}
	// Every iteration of every litmus7 job is verified at stride "all";
	// the PerpLE jobs contribute nothing (no per-iteration witness).
	if got := onM.TracesVerified.Load(); got != 2*600 {
		t.Fatalf("TracesVerified = %d, want %d", got, 2*600)
	}
	if got := onM.TraceViolations.Load(); got != 0 {
		t.Fatalf("TSO machine produced %d trace violations", got)
	}
}

// TestCampaignTraceVerifySampling pins the stride: a stride-k campaign
// verifies ~1/k of the iterations each intra-worker shard runs.
func TestCampaignTraceVerifySampling(t *testing.T) {
	spec := campaign.Spec{
		Tests:       []string{"sb"},
		Tools:       []string{"litmus7-user"},
		Iterations:  1000,
		Seed:        9,
		TraceVerify: "10",
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	camp, err := campaign.New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var m campaign.Metrics
	if _, err := camp.Run(context.Background(), campaign.Options{Metrics: &m}); err != nil {
		t.Fatal(err)
	}
	if got := m.TracesVerified.Load(); got != 100 {
		t.Fatalf("TracesVerified = %d, want 100 (stride 10 over 1000 iterations)", got)
	}
}

// TestServerTraceVerifyPSO drives the operator path end to end: a
// campaign over the PSO fault-injection preset with verification on must
// finish with trace_violations counted in the run's metrics, rendered
// cycle reports on the status endpoint, and the perple_trace_* families
// in the Prometheus exposition.
func TestServerTraceVerifyPSO(t *testing.T) {
	srv := campaign.NewServer()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := campaign.Spec{
		Tests:       []string{"mp"},
		Tools:       []string{"litmus7-timebase"},
		Presets:     []string{"pso"},
		Iterations:  8000,
		ShardSize:   4000,
		Seed:        3,
		TraceVerify: "all",
	}
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", resp.StatusCode, data)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit response %q: %v", data, err)
	}

	if state := soakWaitDone(t, ts, sub.ID, 60*time.Second); state != campaign.StateDone {
		t.Fatalf("campaign ended %q", state)
	}
	st := soakStatus(t, ts, sub.ID)
	metrics := st["metrics"].(map[string]any)
	if got := metrics["traces_verified"].(float64); got != 8000 {
		t.Fatalf("traces_verified = %v, want 8000", got)
	}
	if got := metrics["trace_violations"].(float64); got == 0 {
		t.Fatal("PSO campaign produced no trace violations under TSO verification")
	}
	reports, ok := st["trace_reports"].([]any)
	if !ok || len(reports) == 0 {
		t.Fatalf("status carries no trace reports: %v", st["trace_reports"])
	}
	if rep := reports[0].(string); !strings.Contains(rep, "trace violation") || !strings.Contains(rep, "rf:") {
		t.Fatalf("report not rendered:\n%s", rep)
	}

	req, err := http.NewRequest("GET", ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	mresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, family := range []string{
		"perple_traces_verified_total", "perple_trace_violations_total", "perple_trace_verify_ns_total",
	} {
		if !strings.Contains(string(prom), family) {
			t.Fatalf("Prometheus exposition missing %s:\n%s", family, prom)
		}
	}
	if strings.Contains(string(prom), "perple_traces_verified_total 0\n") {
		t.Fatal("perple_traces_verified_total stayed zero")
	}
}
