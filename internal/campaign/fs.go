package campaign

import (
	"io"
	"os"
)

// CheckpointFile is the slice of *os.File the checkpoint writer needs.
// The write contract is Write* → Sync → Close: Sync must push the bytes
// to stable storage (or report that it could not), so a crash after the
// subsequent rename can never expose a torn or empty snapshot.
type CheckpointFile interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// CheckpointFS abstracts the filesystem under checkpoint I/O. The
// production implementation is the real OS filesystem; the chaos suite
// substitutes one that injects torn writes, silent bit corruption, and
// rename failures on a seeded schedule, which is how the recovery paths
// (CRC verification, last-good fallback, save retry) are exercised.
type CheckpointFS interface {
	CreateTemp(dir, pattern string) (CheckpointFile, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadFile(name string) ([]byte, error)
	// SyncDir flushes the directory entry after a rename where the
	// platform supports it; implementations return nil where it does not.
	SyncDir(dir string) error
}

// WALFile is the handle the write-ahead log appends through. Append
// ordering is the caller's (the dispatcher serializes appends under its
// mutex); Sync is the group-commit point that makes everything appended
// so far durable.
type WALFile interface {
	io.Writer
	Sync() error
	Close() error
}

// WALFS extends CheckpointFS with the append surface the write-ahead
// log needs. The dispatcher type-asserts its CheckpointFS to WALFS and
// falls back to the real filesystem, so a chaos filesystem that
// implements OpenAppend gets its partial-append faults aimed at the WAL
// while checkpoint I/O keeps flowing through the same injector.
type WALFS interface {
	CheckpointFS
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (WALFile, error)
}

// walFSFor picks the append-capable filesystem matching fsys: fsys
// itself when it implements WALFS, the real filesystem otherwise.
func walFSFor(fsys CheckpointFS) WALFS {
	if wfs, ok := fsys.(WALFS); ok {
		return wfs
	}
	return osCheckpointFS{}
}

// osCheckpointFS is the production CheckpointFS: the real filesystem.
type osCheckpointFS struct{}

func (osCheckpointFS) CreateTemp(dir, pattern string) (CheckpointFile, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osCheckpointFS) OpenAppend(name string) (WALFile, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
}

func (osCheckpointFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osCheckpointFS) Remove(name string) error             { return os.Remove(name) }
func (osCheckpointFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

// SyncDir fsyncs the directory so the rename itself is durable. Not
// every platform or filesystem supports fsync on a directory handle, so
// failures are swallowed: the data file's own fsync already happened,
// and a lost directory entry only costs recent progress, never
// integrity.
func (osCheckpointFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
