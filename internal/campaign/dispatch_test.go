package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"perple/internal/litmus"
)

// fleetSpec is a real (simulator-backed) campaign small enough that a
// serial run and several fleet runs all finish in well under a second.
func fleetSpec(t *testing.T) Spec {
	t.Helper()
	spec := Spec{
		Tests:      []string{"sb", "mp", "lb"},
		Tools:      []string{"litmus7-user"},
		Iterations: 400,
		ShardSize:  100,
		Seed:       11,
		Workers:    2,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

// serialCanonical runs the spec on the local scheduler and returns the
// canonical result document — the reference bytes every fleet
// configuration must reproduce exactly.
func serialCanonical(t *testing.T, spec Spec) []byte {
	t.Helper()
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run(context.Background(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// submitDispatch posts the spec in dispatch mode and returns the
// campaign id.
func submitDispatch(t *testing.T, ts *httptest.Server, spec Spec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	code, sub := postJSON(t, ts.URL+"/campaigns?mode=dispatch", string(body))
	if code != http.StatusAccepted {
		t.Fatalf("dispatch submit = %d: %v", code, sub)
	}
	if sub["mode"] != "dispatch" {
		t.Fatalf("submit response lacks dispatch mode: %v", sub)
	}
	return sub["id"].(string)
}

// fetchCanonical downloads the canonical result document.
func fetchCanonical(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results?format=canonical")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("canonical results = %d: %s", resp.StatusCode, data)
	}
	return data
}

// TestFleetByteIdentical is the dispatch layer's core property: a fleet
// of k loopback workers produces byte-identical canonical results to a
// local run of the same spec, for k ∈ {1, 4}.
func TestFleetByteIdentical(t *testing.T) {
	spec := fleetSpec(t)
	want := serialCanonical(t, spec)

	for _, k := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", k), func(t *testing.T) {
			_, ts := newTestServer(t)
			id := submitDispatch(t, ts, spec)

			var wg sync.WaitGroup
			errs := make([]error, k)
			for i := 0; i < k; i++ {
				w := NewWorker(WorkerOptions{
					BaseURL:  ts.URL,
					Campaign: id,
					Name:     fmt.Sprintf("w%d", i),
					Parallel: 2,
				})
				wg.Add(1)
				go func(i int, w *Worker) {
					defer wg.Done()
					errs[i] = w.Run(context.Background())
				}(i, w)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", i, err)
				}
			}
			if state := pollState(t, ts, id, 30*time.Second); state != StateDone {
				t.Fatalf("fleet campaign ended %q", state)
			}
			got := fetchCanonical(t, ts, id)
			if !bytes.Equal(got, want) {
				t.Fatalf("fleet of %d diverged from serial run:\nserial:\n%s\nfleet:\n%s", k, want, got)
			}
		})
	}
}

// TestFleetSurvivesWorkerKill kills a worker mid-lease (hard context
// cancel, nothing uploaded) and lets a second worker finish after the
// leases expire and requeue — the final bytes must still match the
// serial run, and the requeue must be visible in the metrics.
func TestFleetSurvivesWorkerKill(t *testing.T) {
	spec := fleetSpec(t)
	spec.MaxRetries = 3
	want := serialCanonical(t, spec)

	srv, ts := newTestServer(t)
	srv.LeaseTTL = 100 * time.Millisecond
	id := submitDispatch(t, ts, spec)

	// Worker A leases a batch, starts "executing", and is killed without
	// uploading anything.
	leased := make(chan struct{})
	var once sync.Once
	ctxA, killA := context.WithCancel(context.Background())
	defer killA()
	wA := NewWorker(WorkerOptions{
		BaseURL: ts.URL, Campaign: id, Name: "doomed", Parallel: 2, LeaseBatch: 4,
		runJob: func(ctx context.Context, _ Job, _ *litmus.Test, _ Spec) (*JobResult, error) {
			once.Do(func() { close(leased) })
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	doneA := make(chan error, 1)
	go func() { doneA <- wA.Run(ctxA) }()
	select {
	case <-leased:
	case <-time.After(10 * time.Second):
		t.Fatal("worker A never started a job")
	}
	killA()
	if err := <-doneA; !errors.Is(err, context.Canceled) {
		t.Fatalf("killed worker returned %v", err)
	}

	// Worker B (real runner) arrives after the TTL and drains the
	// campaign, requeued shards included.
	wB := NewWorker(WorkerOptions{BaseURL: ts.URL, Campaign: id, Name: "survivor", Parallel: 2})
	if err := wB.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if state := pollState(t, ts, id, 30*time.Second); state != StateDone {
		t.Fatalf("campaign ended %q", state)
	}
	if got := fetchCanonical(t, ts, id); !bytes.Equal(got, want) {
		t.Fatalf("post-kill fleet diverged from serial run:\nserial:\n%s\nfleet:\n%s", want, got)
	}

	st := getJSON(t, ts.URL+"/campaigns/"+id, http.StatusOK)
	metrics := st["metrics"].(map[string]any)
	if metrics["lease_requeues"].(float64) == 0 {
		t.Fatalf("worker kill produced no lease requeues: %v", metrics)
	}
}

// TestFleetGracefulDrain drains a worker after its first job: in-flight
// work uploads, unstarted grants are released (no retry budget spent),
// and a second worker finishes to the same bytes.
func TestFleetGracefulDrain(t *testing.T) {
	spec := fleetSpec(t)
	want := serialCanonical(t, spec)

	_, ts := newTestServer(t)
	id := submitDispatch(t, ts, spec)

	var wA *Worker
	wA = NewWorker(WorkerOptions{
		BaseURL: ts.URL, Campaign: id, Name: "drainer", Parallel: 1, LeaseBatch: 6,
		OnJobDone: func(*JobResult) { wA.Drain() },
	})
	if err := wA.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := wA.JobsCompleted.Load(); got == 0 || got >= 6 {
		t.Fatalf("drained worker completed %d jobs, want a strict subset of its batch", got)
	}

	wB := NewWorker(WorkerOptions{BaseURL: ts.URL, Campaign: id, Name: "finisher", Parallel: 2})
	if err := wB.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if state := pollState(t, ts, id, 30*time.Second); state != StateDone {
		t.Fatalf("campaign ended %q", state)
	}
	if got := fetchCanonical(t, ts, id); !bytes.Equal(got, want) {
		t.Fatalf("drain+handoff diverged from serial run")
	}

	// Released leases must not have charged the retry budget: no
	// failures, and the serial comparison above already proves no loss.
	st := getJSON(t, ts.URL+"/campaigns/"+id, http.StatusOK)
	metrics := st["metrics"].(map[string]any)
	if metrics["jobs_failed"].(float64) != 0 {
		t.Fatalf("graceful drain burned retry budget: %v", metrics)
	}
}

// TestDispatcherResumeMidLease restarts the dispatcher while shards are
// leased out: the checkpoint restores every merged result, the replacement
// re-leases only the unfinished shards, a duplicate upload from the dead
// server's lease holder is fenced, and the final document is byte-identical
// to an uninterrupted run.
func TestDispatcherResumeMidLease(t *testing.T) {
	spec := fleetSpec(t)
	cp := filepath.Join(t.TempDir(), "cp.json")

	newCamp := func() *Campaign {
		camp, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		return camp
	}

	// Reference: an uninterrupted serial run with the same fabricated
	// results the dispatch path will merge.
	ref := NewResults()
	for _, job := range newCamp().Jobs() {
		ref.Add(fakeResult(job))
	}
	want, err := ref.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}

	d1, err := NewDispatcher(newCamp(), time.Minute, Options{CheckpointPath: cp})
	if err != nil {
		t.Fatal(err)
	}
	grants := d1.Lease(LeaseRequest{Worker: "w1", Max: 100}).Grants
	total := len(grants)
	if total < 10 {
		t.Fatalf("campaign expanded only %d jobs", total)
	}
	// Five shards complete before the "server" dies mid-lease.
	var partial CompleteRequest
	for _, g := range grants[:5] {
		partial.Results = append(partial.Results, WorkerResult{LeaseID: g.LeaseID, Result: fakeResult(g.Job)})
	}
	if resp := d1.Complete(partial, 0); resp.Merged != 5 {
		t.Fatalf("pre-restart merge = %+v", resp)
	}
	// d1 is now abandoned with total-5 shards still leased — the restart.

	d2, err := NewDispatcher(newCamp(), time.Minute, Options{CheckpointPath: cp})
	if err != nil {
		t.Fatal(err)
	}
	pending, leased, done, failed := d2.Status()
	if done != 5 || pending != total-5 || leased != 0 || failed != 0 {
		t.Fatalf("restored ledger = %d pending, %d leased, %d done, %d failed", pending, leased, done, failed)
	}

	// The dead server's worker retries its upload against the new one:
	// every already-merged shard must fence, not double-merge.
	if resp := d2.Complete(partial, 0); resp.Fenced != 5 || resp.Merged != 0 {
		t.Fatalf("post-restart duplicate upload = %+v, want 5 fenced", resp)
	}

	regrants := d2.Lease(LeaseRequest{Worker: "w2", Max: 100}).Grants
	if len(regrants) != total-5 {
		t.Fatalf("re-leased %d shards, want %d", len(regrants), total-5)
	}
	var rest CompleteRequest
	for _, g := range regrants {
		rest.Results = append(rest.Results, WorkerResult{LeaseID: g.LeaseID, Result: fakeResult(g.Job)})
	}
	resp := d2.Complete(rest, 0)
	if resp.Merged != total-5 || !resp.Done {
		t.Fatalf("final merge = %+v", resp)
	}
	select {
	case <-d2.Finished():
	case <-time.After(time.Second):
		t.Fatal("dispatcher did not finish")
	}
	res, cpErr, cancelled := d2.Outcome()
	if cpErr != nil || cancelled {
		t.Fatalf("outcome err=%v cancelled=%v", cpErr, cancelled)
	}
	got, err := res.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed run diverged:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestLeaseExpiryRequeueDeterministic drives expiry with a fake clock
// twice and checks the requeue produces the same grants in the same
// order both times, that a pre-expiry holder's late result is accepted
// (deterministic per shard seed), and that the replacement's copy then
// fences.
func TestLeaseExpiryRequeueDeterministic(t *testing.T) {
	spec := fleetSpec(t)
	spec.MaxRetries = 2

	type grantRecord struct {
		JobID   int
		LeaseID int64
	}
	run := func() []grantRecord {
		camp, err := New(spec)
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDispatcher(camp, time.Minute, Options{})
		if err != nil {
			t.Fatal(err)
		}
		now := time.Unix(1000, 0)
		d.setClock(func() time.Time { return now })

		first := d.Lease(LeaseRequest{Worker: "slow", Max: 3}).Grants
		if len(first) != 3 {
			t.Fatalf("granted %d, want 3", len(first))
		}
		now = now.Add(2 * time.Minute) // all three leases expire

		second := d.Lease(LeaseRequest{Worker: "fast", Max: 3}).Grants
		if len(second) != 3 {
			t.Fatalf("re-granted %d, want 3", len(second))
		}
		var rec []grantRecord
		for _, g := range second {
			rec = append(rec, grantRecord{g.Job.ID, g.LeaseID})
		}

		// The slow worker finally reports its first shard under the
		// superseded lease: the job is not done, results are deterministic
		// per seed, so it merges.
		late := CompleteRequest{Worker: "slow", Results: []WorkerResult{
			{LeaseID: first[0].LeaseID, Result: fakeResult(first[0].Job)},
		}}
		if resp := d.Complete(late, 0); resp.Merged != 1 {
			t.Fatalf("late pre-expiry result = %+v, want merged", resp)
		}
		// The replacement holder finishes the same shard: fenced.
		dup := CompleteRequest{Worker: "fast", Results: []WorkerResult{
			{LeaseID: second[0].LeaseID, Result: fakeResult(second[0].Job)},
		}}
		if resp := d.Complete(dup, 0); resp.Fenced != 1 || resp.Merged != 0 {
			t.Fatalf("replacement result = %+v, want fenced", resp)
		}
		if d.metrics.LeaseRequeues.Load() != 3 {
			t.Fatalf("LeaseRequeues = %d, want 3", d.metrics.LeaseRequeues.Load())
		}
		return rec
	}

	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("requeue grant %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
		if i > 0 && a[i].JobID < a[i-1].JobID {
			t.Fatalf("requeued grants out of job-ID order: %+v", a)
		}
	}
}

// TestLeaseQueueBudgetAndNonces covers the ledger's edge rules directly:
// heartbeats only extend the current nonce, a release costs no budget,
// and expiries past the budget turn into permanent failures.
func TestLeaseQueueBudgetAndNonces(t *testing.T) {
	jobs := []Job{{ID: 0}, {ID: 1}}
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	q := newLeaseQueue(jobs, time.Minute, 1, clock)

	granted := q.lease("w1", 2)
	if len(granted) != 2 {
		t.Fatalf("granted %d", len(granted))
	}
	// Wrong worker or stale nonce must not extend.
	if q.heartbeat("w2", LeaseRef{JobID: 0, LeaseID: granted[0].leaseID}) {
		t.Fatal("foreign worker extended a lease")
	}
	if q.heartbeat("w1", LeaseRef{JobID: 0, LeaseID: granted[0].leaseID + 7}) {
		t.Fatal("stale nonce extended a lease")
	}
	// A real heartbeat pushes expiry past the sweep horizon.
	now = now.Add(50 * time.Second)
	if !q.heartbeat("w1", LeaseRef{JobID: 0, LeaseID: granted[0].leaseID}) {
		t.Fatal("valid heartbeat rejected")
	}
	now = now.Add(30 * time.Second) // job 0 extended; job 1 at 80s > 60s TTL
	requeued, failed := q.sweep()
	if len(requeued) != 1 || requeued[0].job.ID != 1 || len(failed) != 0 {
		t.Fatalf("sweep = %v requeued, %v failed", len(requeued), len(failed))
	}

	// Release returns the job without burning budget.
	if !q.release("w1", LeaseRef{JobID: 0, LeaseID: granted[0].leaseID}) {
		t.Fatal("release rejected")
	}
	if e := q.entries[0]; e.state != statePending || e.attempts != 0 {
		t.Fatalf("released entry = %+v", e)
	}

	// Burn job 1's budget: attempt 1 (sweep above) + attempt 2 exceeds
	// maxRetries=1 and fails it permanently.
	if g := q.lease("w1", 1); len(g) != 1 || g[0].job.ID != 0 {
		t.Fatalf("expected job 0 first, got %+v", g)
	}
	if g := q.lease("w1", 1); len(g) != 1 || g[0].job.ID != 1 {
		t.Fatalf("expected job 1, got %+v", g)
	}
	now = now.Add(2 * time.Minute)
	_, failed = q.sweep()
	if len(failed) != 1 || failed[0].job.ID != 1 || !failed[0].failed {
		t.Fatalf("budget exhaustion: %+v", failed)
	}
	if !strings.Contains(failed[0].failErr, "lease expired") {
		t.Fatalf("failure reason = %q", failed[0].failErr)
	}
}

// TestMetricsPrometheusNegotiation checks /metrics serves the Prometheus
// text exposition format when a scraper asks for it and keeps JSON as
// the default, with the dispatch counters present in both.
func TestMetricsPrometheusNegotiation(t *testing.T) {
	_, ts := newTestServer(t)

	// Default (no Accept preference) stays JSON.
	m := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	sched := m["scheduler"].(map[string]any)
	for _, key := range []string{"leases_granted", "lease_requeues", "heartbeats", "results_fenced", "upload_bytes"} {
		if _, ok := sched[key]; !ok {
			t.Fatalf("JSON metrics missing %q: %v", key, sched)
		}
	}

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	text := string(body)
	for _, family := range []string{
		"# TYPE perple_leases_granted_total counter",
		"# TYPE perple_lease_requeues_total counter",
		"# TYPE perple_heartbeats_total counter",
		"# TYPE perple_results_fenced_total counter",
		"# TYPE perple_upload_bytes_total counter",
		"# TYPE perple_queue_depth gauge",
		"# HELP perple_campaigns ",
	} {
		if !strings.Contains(text, family) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", family, text)
		}
	}
}
