package campaign

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"perple/internal/litmus"
)

func smallSpec(t *testing.T) Spec {
	t.Helper()
	spec := Spec{
		Tests:      []string{"sb", "mp", "lb"},
		Tools:      []string{"litmus7-user"},
		Iterations: 40,
		ShardSize:  10,
		Workers:    4,
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	return spec
}

// fakeResult fabricates a deterministic result for a job without
// touching the simulator (scheduler tests care about orchestration, not
// physics).
func fakeResult(job Job) *JobResult {
	return &JobResult{
		JobID: job.ID, Test: job.Test, Tool: job.Tool, Preset: job.Preset,
		Shard: job.Shard, N: job.N, Seed: job.Seed,
		Target: int64(job.ID), Ticks: int64(job.N) * 10,
	}
}

func TestSchedulerRunsAllJobs(t *testing.T) {
	camp, err := New(smallSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	var calls atomic.Int64
	metrics := &Metrics{}
	res, err := camp.Run(context.Background(), Options{
		Metrics: metrics,
		runJob: func(_ context.Context, job Job, test *litmus.Test, _ Spec) (*JobResult, error) {
			if test == nil || test.Name != job.Test {
				return nil, fmt.Errorf("job %d handed wrong test %v", job.ID, test)
			}
			calls.Add(1)
			return fakeResult(job), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJobs := int64(len(camp.Jobs()))
	if calls.Load() != wantJobs {
		t.Fatalf("ran %d jobs, want %d", calls.Load(), wantJobs)
	}
	if got := metrics.JobsCompleted.Load(); got != wantJobs {
		t.Fatalf("JobsCompleted = %d, want %d", got, wantJobs)
	}
	if got := metrics.QueueDepth.Load(); got != 0 {
		t.Fatalf("QueueDepth after run = %d", got)
	}
	if got := metrics.Iterations.Load(); got != 3*40 {
		t.Fatalf("Iterations = %d, want 120", got)
	}
	if _, _, n := res.Totals(); n != 3*40 {
		t.Fatalf("result iterations = %d", n)
	}
}

func TestSchedulerRetriesTransientFailures(t *testing.T) {
	spec := smallSpec(t)
	spec.MaxRetries = 3
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	var failed atomic.Int64
	metrics := &Metrics{}
	res, err := camp.Run(context.Background(), Options{
		Metrics: metrics,
		runJob: func(_ context.Context, job Job, _ *litmus.Test, _ Spec) (*JobResult, error) {
			// Every job fails twice before succeeding.
			if failed.Add(1); failed.Load()%3 != 0 {
				return nil, errors.New("transient")
			}
			return fakeResult(job), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 0 {
		t.Fatalf("failures = %v", res.Failures)
	}
	if metrics.Retries.Load() == 0 {
		t.Fatal("no retries recorded")
	}
	for _, g := range res.Groups {
		if g.N == 0 {
			t.Fatalf("group %s/%s empty after retries", g.Test, g.Tool)
		}
	}
}

func TestSchedulerCollectsPermanentFailuresAndContinues(t *testing.T) {
	spec := smallSpec(t)
	spec.MaxRetries = 1
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	metrics := &Metrics{}
	res, err := camp.Run(context.Background(), Options{
		Metrics: metrics,
		runJob: func(_ context.Context, job Job, _ *litmus.Test, _ Spec) (*JobResult, error) {
			if job.Test == "mp" {
				return nil, errors.New("poisoned test")
			}
			return fakeResult(job), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 4 { // mp has 4 shards
		t.Fatalf("got %d failures, want 4: %v", len(res.Failures), res.Failures)
	}
	for _, f := range res.Failures {
		if f.Test != "mp" || f.Attempts != 2 {
			t.Fatalf("unexpected failure record %+v", f)
		}
	}
	if metrics.JobsFailed.Load() != 4 {
		t.Fatalf("JobsFailed = %d", metrics.JobsFailed.Load())
	}
	// The other tests' shards all completed.
	if _, _, n := res.Totals(); n != 2*40 {
		t.Fatalf("iterations = %d, want 80", n)
	}
}

func TestSchedulerRecoversPanics(t *testing.T) {
	spec := smallSpec(t)
	spec.MaxRetries = 0
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := camp.Run(context.Background(), Options{
		runJob: func(_ context.Context, job Job, _ *litmus.Test, _ Spec) (*JobResult, error) {
			if job.Test == "lb" {
				panic("kaboom")
			}
			return fakeResult(job), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failures) != 4 {
		t.Fatalf("got %d failures, want 4", len(res.Failures))
	}
	for _, f := range res.Failures {
		if !strings.Contains(f.Err, "kaboom") || !strings.Contains(f.Err, "panicked") {
			t.Fatalf("failure lost the panic message: %+v", f)
		}
	}
}

func TestSchedulerCancelsPromptly(t *testing.T) {
	spec := smallSpec(t)
	spec.Iterations = 1000
	spec.ShardSize = 10 // 300 jobs
	spec.Workers = 2
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	begin := time.Now()
	done := make(chan struct{})
	var res *Results
	var runErr error
	go func() {
		defer close(done)
		res, runErr = camp.Run(ctx, Options{
			runJob: func(ctx context.Context, job Job, _ *litmus.Test, _ Spec) (*JobResult, error) {
				if started.Add(1) == 3 {
					cancel()
				}
				select {
				case <-ctx.Done():
					return nil, ctx.Err()
				case <-time.After(5 * time.Millisecond):
					return fakeResult(job), nil
				}
			},
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled campaign did not return")
	}
	if !errors.Is(runErr, context.Canceled) {
		t.Fatalf("run error = %v, want context.Canceled", runErr)
	}
	if elapsed := time.Since(begin); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	// Far fewer than all 300 jobs ran, and no aborted job leaked into
	// the totals.
	if _, _, n := res.Totals(); n >= 3000 {
		t.Fatalf("cancelled run still accumulated %d iterations", n)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	spec := smallSpec(t)
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp.json")
	done := map[int]*JobResult{}
	for _, job := range camp.Jobs()[:5] {
		done[job.ID] = fakeResult(job)
	}
	if err := SaveCheckpoint(path, spec, done); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadCheckpoint(path, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 5 {
		t.Fatalf("restored %d jobs", len(restored))
	}
	for id, jr := range restored {
		if jr.JobID != id || jr.Target != int64(id) {
			t.Fatalf("restored job %d mangled: %+v", id, jr)
		}
	}

	// A different campaign must refuse the checkpoint.
	other := spec
	other.Seed = 777
	if err := other.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, other); err == nil {
		t.Fatal("checkpoint accepted by a different spec")
	}

	// Worker count and retry budget may change across a resume.
	tuned := spec
	tuned.Workers = 1
	tuned.MaxRetries = 9
	if err := tuned.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, tuned); err != nil {
		t.Fatalf("resume with different worker count refused: %v", err)
	}
}

func TestSchedulerChecksCheckpointJobIdentity(t *testing.T) {
	spec := smallSpec(t)
	camp, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	jr := fakeResult(camp.Jobs()[0])
	jr.Seed++ // corrupt
	if err := camp.validateRestored(map[int]*JobResult{jr.JobID: jr}); err == nil {
		t.Fatal("corrupted checkpoint entry accepted")
	}
	if err := camp.validateRestored(map[int]*JobResult{9999: fakeResult(Job{ID: 9999})}); err == nil {
		t.Fatal("out-of-range job id accepted")
	}
}
