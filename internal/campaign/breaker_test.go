package campaign

import (
	"testing"
	"time"
)

func TestBreakerOpensAtThreshold(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second)

	for i := 0; i < 2; i++ {
		b.failure(now)
		if hold := b.waitTime(now); hold != 0 {
			t.Fatalf("circuit open after %d failures (threshold 3): hold %v", i+1, hold)
		}
	}
	b.failure(now)
	if hold := b.waitTime(now); hold != time.Second {
		t.Fatalf("hold after threshold = %v, want full cooldown 1s", hold)
	}
	// Mid-cooldown the remaining time shrinks with the clock.
	if hold := b.waitTime(now.Add(600 * time.Millisecond)); hold != 400*time.Millisecond {
		t.Fatalf("mid-cooldown hold = %v, want 400ms", hold)
	}
	// Cooldown lapsed: half-open, probing allowed.
	if hold := b.waitTime(now.Add(time.Second)); hold != 0 {
		t.Fatalf("post-cooldown hold = %v, want 0 (half-open)", hold)
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second)
	for i := 0; i < 3; i++ {
		b.failure(now)
	}

	// One failed probe after the cooldown must re-open immediately — not
	// require another full threshold of failures.
	probe := now.Add(2 * time.Second)
	if hold := b.waitTime(probe); hold != 0 {
		t.Fatalf("probe not allowed after cooldown: hold %v", hold)
	}
	b.failure(probe)
	if hold := b.waitTime(probe); hold != time.Second {
		t.Fatalf("hold after failed probe = %v, want full cooldown", hold)
	}
}

func TestBreakerSuccessCloses(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(3, time.Second)
	for i := 0; i < 3; i++ {
		b.failure(now)
	}

	b.success()
	if hold := b.waitTime(now); hold != 0 {
		t.Fatalf("circuit still open after success: hold %v", hold)
	}
	// The consecutive count reset too: it takes a full threshold of new
	// failures to open again.
	b.failure(now)
	b.failure(now)
	if hold := b.waitTime(now); hold != 0 {
		t.Fatalf("circuit reopened after only 2 post-success failures: hold %v", hold)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := newBreaker(0, 0)
	if b.threshold != DefaultBreakerThreshold || b.cooldown != DefaultBreakerCooldown {
		t.Fatalf("defaults = (%d, %v), want (%d, %v)",
			b.threshold, b.cooldown, DefaultBreakerThreshold, DefaultBreakerCooldown)
	}
}
