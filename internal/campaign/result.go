package campaign

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"perple/internal/stats"
)

// JobResult is the mergeable outcome of one completed shard. It carries
// everything the campaign aggregation needs — the checkpoint persists
// these verbatim, which is what makes resumption total-preserving.
type JobResult struct {
	JobID  int    `json:"job_id"`
	Test   string `json:"test"`
	Tool   string `json:"tool"` // requested tool (see Note for fallbacks)
	Preset string `json:"preset"`
	Shard  int    `json:"shard"`
	N      int    `json:"n"`
	Seed   int64  `json:"seed"`

	// Target counts target-outcome occurrences (litmus7 iterations or
	// PerpLE frames, per the tool's semantics).
	Target int64 `json:"target"`
	// Ticks is the simulated runtime including synchronization or
	// counting, per the tool's accounting.
	Ticks int64 `json:"ticks"`
	// Frames is the counter's examined-frame count (PerpLE tools only).
	Frames int64 `json:"frames,omitempty"`
	// Histogram is the full observed-outcome histogram (litmus7 tools
	// only).
	Histogram map[string]int64 `json:"histogram,omitempty"`
	// Note records fallbacks ("not convertible") or caps.
	Note string `json:"note,omitempty"`
	// Retries is how many failed attempts preceded this result.
	Retries int `json:"retries,omitempty"`

	// Trace-verification tallies (litmus7 tools under Spec.TraceVerify).
	// Results.Add deliberately ignores all of them: verification is a
	// pure observer, and folding its tallies into GroupResult would make
	// the canonical document differ between verified and unverified runs
	// of the same campaign. They surface through Metrics and the status
	// endpoints instead. TraceVerifyNs is wall-clock and therefore kept
	// out of the serialized form entirely, like Litmus7Result.Wall.
	TracesVerified  int64    `json:"traces_verified,omitempty"`
	TraceViolations int64    `json:"trace_violations,omitempty"`
	TraceReports    []string `json:"trace_reports,omitempty"`
	TraceVerifyNs   int64    `json:"-"`
}

// JobFailure records a job whose retry budget ran out. Failures are not
// checkpointed: a resumed campaign re-attempts them.
type JobFailure struct {
	JobID    int    `json:"job_id"`
	Test     string `json:"test"`
	Tool     string `json:"tool"`
	Preset   string `json:"preset"`
	Shard    int    `json:"shard"`
	Attempts int    `json:"attempts"`
	Err      string `json:"error"`
}

// GroupResult is the merged total of every shard of one (test, tool,
// preset) combination.
type GroupResult struct {
	Test   string `json:"test"`
	Tool   string `json:"tool"`
	Preset string `json:"preset"`

	Shards    int              `json:"shards"`
	N         int64            `json:"n"`
	Target    int64            `json:"target"`
	Ticks     int64            `json:"ticks"`
	Frames    int64            `json:"frames,omitempty"`
	Histogram map[string]int64 `json:"histogram,omitempty"`
	Notes     []string         `json:"notes,omitempty"`
}

func groupKey(test, tool, preset string) string {
	return test + "\x1f" + tool + "\x1f" + preset
}

// GroupKey is the Groups map key for one (test, tool, preset)
// combination, for callers reassembling a Results from its canonical
// JSON document.
func GroupKey(test, tool, preset string) string {
	return groupKey(test, tool, preset)
}

// Results accumulates job results into campaign totals. Accumulation is
// commutative and associative over shards (each group's fields are sums
// and set-unions), so any completion order — including the split between
// a checkpoint and a resumed run — reaches identical totals.
type Results struct {
	Groups   map[string]*GroupResult `json:"groups"`
	Failures []JobFailure            `json:"failures,omitempty"`
}

// NewResults returns an empty accumulator.
func NewResults() *Results {
	return &Results{Groups: map[string]*GroupResult{}}
}

// Add folds one job result into the campaign totals.
func (r *Results) Add(jr *JobResult) {
	key := groupKey(jr.Test, jr.Tool, jr.Preset)
	g := r.Groups[key]
	if g == nil {
		g = &GroupResult{Test: jr.Test, Tool: jr.Tool, Preset: jr.Preset}
		r.Groups[key] = g
	}
	g.Shards++
	g.N += int64(jr.N)
	g.Target += jr.Target
	g.Ticks += jr.Ticks
	g.Frames += jr.Frames
	if len(jr.Histogram) > 0 {
		if g.Histogram == nil {
			g.Histogram = map[string]int64{}
		}
		for k, v := range jr.Histogram {
			g.Histogram[k] += v
		}
	}
	if jr.Note != "" && !contains(g.Notes, jr.Note) {
		g.Notes = append(g.Notes, jr.Note)
		sort.Strings(g.Notes)
	}
}

// AddFailure records a permanently failed job.
func (r *Results) AddFailure(f JobFailure) {
	r.Failures = append(r.Failures, f)
}

// Merge folds another accumulator into r; merging is commutative and
// associative like Add.
func (r *Results) Merge(o *Results) {
	for _, g := range o.Groups {
		key := groupKey(g.Test, g.Tool, g.Preset)
		dst := r.Groups[key]
		if dst == nil {
			dst = &GroupResult{Test: g.Test, Tool: g.Tool, Preset: g.Preset}
			r.Groups[key] = dst
		}
		dst.Shards += g.Shards
		dst.N += g.N
		dst.Target += g.Target
		dst.Ticks += g.Ticks
		dst.Frames += g.Frames
		if len(g.Histogram) > 0 {
			if dst.Histogram == nil {
				dst.Histogram = map[string]int64{}
			}
			for k, v := range g.Histogram {
				dst.Histogram[k] += v
			}
		}
		for _, note := range g.Notes {
			if !contains(dst.Notes, note) {
				dst.Notes = append(dst.Notes, note)
			}
		}
		sort.Strings(dst.Notes)
	}
	r.Failures = append(r.Failures, o.Failures...)
}

// Totals sums target occurrences, simulated ticks, and iterations over
// every group.
func (r *Results) Totals() (target, ticks, n int64) {
	for _, g := range r.Groups {
		target += g.Target
		ticks += g.Ticks
		n += g.N
	}
	return target, ticks, n
}

// sortedGroups returns the groups in canonical (test, tool, preset)
// order.
func (r *Results) sortedGroups() []*GroupResult {
	groups := make([]*GroupResult, 0, len(r.Groups))
	for _, g := range r.Groups {
		groups = append(groups, g)
	}
	sort.Slice(groups, func(i, j int) bool {
		a, b := groups[i], groups[j]
		if a.Test != b.Test {
			return a.Test < b.Test
		}
		if a.Tool != b.Tool {
			return a.Tool < b.Tool
		}
		return a.Preset < b.Preset
	})
	return groups
}

// CanonicalJSON renders the accumulated totals in a canonical byte form:
// groups in sorted (test, tool, preset) order, histogram keys sorted
// (encoding/json sorts map keys), failures sorted by job ID, fixed
// indentation, trailing newline. Like Render, it is a pure function of
// the merged totals, so any two runs that merged the same shards — a
// serial run, a k-worker fleet, a kill/resume split — produce
// byte-identical documents. This is the determinism contract the
// distributed dispatch layer is tested against.
func (r *Results) CanonicalJSON() ([]byte, error) {
	target, ticks, n := r.Totals()
	fails := append([]JobFailure(nil), r.Failures...)
	sort.Slice(fails, func(i, j int) bool { return fails[i].JobID < fails[j].JobID })
	doc := struct {
		Totals   map[string]int64 `json:"totals"`
		Groups   []*GroupResult   `json:"groups"`
		Failures []JobFailure     `json:"failures,omitempty"`
	}{
		Totals:   map[string]int64{"iterations": n, "target": target, "ticks": ticks},
		Groups:   r.sortedGroups(),
		Failures: fails,
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: encoding results: %w", err)
	}
	return append(data, '\n'), nil
}

// Render produces the canonical plain-text report: a per-group table in
// sorted order, histogram totals in sorted-key order, failures by job
// ID, and the campaign totals. The rendering is a pure function of the
// accumulated totals, so two runs that merged the same shards — in any
// order, with or without a checkpoint/resume split in between — render
// byte-identical reports.
func (r *Results) Render() string {
	var b strings.Builder
	tb := stats.NewTable("test", "tool", "preset", "shards", "iters", "target", "ticks", "rate/Mtick", "note")
	for _, g := range r.sortedGroups() {
		tb.AddRow(g.Test, g.Tool, g.Preset, g.Shards, g.N, g.Target, g.Ticks,
			stats.Rate(g.Target, g.Ticks)*1e6, strings.Join(g.Notes, "; "))
	}
	b.WriteString(tb.String())

	for _, g := range r.sortedGroups() {
		if len(g.Histogram) == 0 {
			continue
		}
		fmt.Fprintf(&b, "\nhistogram %s/%s/%s (%d states):\n", g.Test, g.Tool, g.Preset, len(g.Histogram))
		keys := make([]string, 0, len(g.Histogram))
		for k := range g.Histogram {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %-24s %d\n", k, g.Histogram[k])
		}
	}

	if len(r.Failures) > 0 {
		fails := append([]JobFailure(nil), r.Failures...)
		sort.Slice(fails, func(i, j int) bool { return fails[i].JobID < fails[j].JobID })
		fmt.Fprintf(&b, "\n%d job(s) failed:\n", len(fails))
		for _, f := range fails {
			fmt.Fprintf(&b, "  job %d (%s/%s/%s shard %d): %s (after %d attempts)\n",
				f.JobID, f.Test, f.Tool, f.Preset, f.Shard, f.Err, f.Attempts)
		}
	}

	target, ticks, n := r.Totals()
	fmt.Fprintf(&b, "\ncampaign totals: %d iterations, %d target occurrences, %d simulated ticks\n",
		n, target, ticks)
	return b.String()
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
