package campaign

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func intraSpec(intra int) Spec {
	return Spec{
		Name:         "intra-e2e",
		Dir:          "../../testdata/suite",
		Tests:        []string{"sb", "mp"},
		Tools:        []string{"litmus7-user", "perple-heur"},
		Seed:         7,
		Iterations:   400,
		ShardSize:    200,
		Workers:      2,
		IntraWorkers: intra,
	}
}

func TestSpecIntraWorkersDefault(t *testing.T) {
	var s Spec
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.IntraWorkers != 1 {
		t.Fatalf("default IntraWorkers = %d, want 1", s.IntraWorkers)
	}
}

// TestCampaignIntraWorkersDeterministic checks that intra-job batching
// is deterministic: two runs of the same spec produce identical group
// totals and histograms, regardless of worker scheduling.
func TestCampaignIntraWorkersDeterministic(t *testing.T) {
	run := func() map[string]*GroupResult {
		camp, err := New(intraSpec(3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := camp.Run(context.Background(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Failures) != 0 {
			t.Fatalf("failures: %v", res.Failures)
		}
		return res.Groups
	}
	first, second := run(), run()
	if !reflect.DeepEqual(first, second) {
		t.Fatal("IntraWorkers campaign is not deterministic across runs")
	}
}

// TestCampaignIntraWorkersChangesShardResults documents that intra-job
// batching is result-affecting: a litmus7 shard batched 3 ways uses
// derived per-worker seeds, so its histogram differs from the serial
// shard's. This is exactly why IntraWorkers is checkpoint-protected.
func TestCampaignIntraWorkersChangesShardResults(t *testing.T) {
	run := func(intra int) map[string]*GroupResult {
		camp, err := New(intraSpec(intra))
		if err != nil {
			t.Fatal(err)
		}
		res, err := camp.Run(context.Background(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Groups
	}
	serial, batched := run(1), run(3)
	key := groupKey("sb", "litmus7-user", "default")
	if reflect.DeepEqual(serial[key].Histogram, batched[key].Histogram) {
		t.Fatal("3-way intra batching unexpectedly reproduced the serial histogram")
	}
	// Iteration budgets are unaffected either way.
	if serial[key].N != batched[key].N {
		t.Fatalf("N differs: %d vs %d", serial[key].N, batched[key].N)
	}
}

func TestCheckpointRefusesIntraWorkersChange(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp.json")
	saved := intraSpec(2)
	if err := saved.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := SaveCheckpoint(path, saved, nil); err != nil {
		t.Fatal(err)
	}

	// A changed worker count may resume; a changed intra-worker count is a
	// different campaign.
	relaxed := saved
	relaxed.Workers = 9
	if _, err := LoadCheckpoint(path, relaxed); err != nil {
		t.Fatalf("worker-count change refused: %v", err)
	}
	changed := saved
	changed.IntraWorkers = 4
	if _, err := LoadCheckpoint(path, changed); err == nil {
		t.Fatal("IntraWorkers change accepted on resume")
	} else if !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("unexpected error: %v", err)
	}
}
