package campaign

import (
	"context"
	"fmt"
	"strings"

	"perple/internal/core"
	"perple/internal/harness"
	"perple/internal/litmus"
	"perple/internal/sim"
)

// runJob executes one shard end to end: it resolves the tool (PerpLE
// falls back to litmus7-user for non-convertible targets, like
// cmd/perple-suite and Section VII-G), seeds the simulator with the
// job's deterministic shard seed, runs, and extracts the mergeable
// result. Cancellation propagates into the simulated run and the
// counters through ctx.
func runJob(ctx context.Context, job Job, test *litmus.Test, spec Spec) (*JobResult, error) {
	cfg, err := sim.Preset(job.Preset)
	if err != nil {
		return nil, err
	}
	cfg = cfg.WithSeed(job.Seed)

	jr := &JobResult{
		JobID:  job.ID,
		Test:   job.Test,
		Tool:   job.Tool,
		Preset: job.Preset,
		Shard:  job.Shard,
		N:      job.N,
		Seed:   job.Seed,
	}

	tool, note := convertibleTool(job.Tool, test)
	jr.Note = note

	if strings.HasPrefix(tool, "litmus7-") {
		mode, err := sim.ParseMode(strings.TrimPrefix(tool, "litmus7-"))
		if err != nil {
			return nil, err
		}
		tv := harness.TraceVerify{Every: spec.TraceVerifyEvery()}
		res, err := harness.RunLitmus7BatchVerifyCtx(ctx, test, job.N, mode, nil, cfg, spec.IntraWorkers, tv)
		if err != nil {
			return nil, err
		}
		jr.Target = res.TargetCount
		jr.Ticks = res.Ticks
		jr.Histogram = res.Histogram
		jr.TracesVerified = res.TracesVerified
		jr.TraceViolations = res.TraceViolations
		jr.TraceReports = res.TraceReports
		jr.TraceVerifyNs = res.TraceVerifyNs
		return jr, nil
	}

	// PerpLE tools run perpetual tests with no per-iteration rf/co
	// witness, so TraceVerify does not apply to them. The skip is silent:
	// a Note would enter Results.Groups and break the verified-vs-
	// unverified byte-identity of the canonical document.

	pt, err := core.Convert(test)
	if err != nil {
		return nil, err
	}
	counter, err := core.NewTargetCounter(pt)
	if err != nil {
		return nil, err
	}
	opts := harness.PerpLEOptions{CountWorkers: spec.IntraWorkers}
	switch tool {
	case "perple-heur":
		opts.Heuristic = true
	case "perple-exh":
		opts.Exhaustive = true
		if spec.ExhCap > 0 {
			opts.ExhaustiveCap = spec.ExhCap
		}
	default:
		return nil, fmt.Errorf("campaign: unknown tool %q", tool)
	}
	res, err := harness.RunPerpLEBatchCtx(ctx, pt, counter, job.N, opts, cfg, spec.IntraWorkers)
	if err != nil {
		return nil, err
	}
	if tool == "perple-exh" {
		jr.Target = res.Exhaustive.Counts[0]
		jr.Ticks = res.TotalTicksExhaustive()
		jr.Frames = res.Exhaustive.Frames
		if res.ExhaustiveN < job.N {
			jr.Note = joinNotes(jr.Note, fmt.Sprintf("exh capped at %d", res.ExhaustiveN))
		}
		return jr, nil
	}
	jr.Target = res.Heuristic.Counts[0]
	jr.Ticks = res.TotalTicksHeuristic()
	jr.Frames = res.Heuristic.Frames
	return jr, nil
}

func joinNotes(a, b string) string {
	if a == "" {
		return b
	}
	if b == "" {
		return a
	}
	return a + "; " + b
}
