package campaign

import (
	"perple/internal/harness"
)

// PWB1 body layouts for the dispatch protocol's upload path (frame and
// primitives: internal/harness/wirebin.go; protocol rules: DESIGN.md
// §14). The encoding leans on the batch shape: one upload carries many
// shards of few distinct tests/tools/presets, so those strings intern
// down to one-byte references after their first occurrence, and each
// shard's histogram front-codes its sorted outcome keys.
//
// Field order is the struct order below and is frozen for v1 — the
// frame's magic carries the format version, so a future layout change
// means a new magic, not a silent re-reading of old bytes.

// AppendWireBody encodes the upload batch.
func (cr *CompleteRequest) AppendWireBody(w *harness.WireWriter) {
	w.PutUvarint(uint64(cr.Version))
	w.PutString(cr.Worker)
	w.PutUvarint(uint64(len(cr.Results)))
	var scratch []string
	for _, wr := range cr.Results {
		w.PutVarint(wr.LeaseID)
		appendJobResult(w, wr.Result, &scratch)
	}
	w.PutUvarint(uint64(len(cr.Failures)))
	for _, wf := range cr.Failures {
		w.PutVarint(wf.LeaseID)
		w.PutUvarint(uint64(wf.JobID))
		w.PutString(wf.Err)
	}
	appendLeaseRefs(w, cr.Released)
	appendLeaseRefs(w, cr.Heartbeat)
}

// DecodeWireBody reads the batch written by AppendWireBody.
func (cr *CompleteRequest) DecodeWireBody(r *harness.WireReader) error {
	v, err := r.Uvarint()
	if err != nil {
		return err
	}
	cr.Version = int(v)
	if cr.Worker, err = r.String(); err != nil {
		return err
	}
	n, err := r.Int()
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var wr WorkerResult
		if wr.LeaseID, err = r.Varint(); err != nil {
			return err
		}
		if wr.Result, err = decodeJobResult(r); err != nil {
			return err
		}
		cr.Results = append(cr.Results, wr)
	}
	if n, err = r.Int(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		var wf WorkerFailure
		if wf.LeaseID, err = r.Varint(); err != nil {
			return err
		}
		jobID, err := r.Uvarint()
		if err != nil {
			return err
		}
		wf.JobID = int(jobID)
		if wf.Err, err = r.String(); err != nil {
			return err
		}
		cr.Failures = append(cr.Failures, wf)
	}
	if cr.Released, err = decodeLeaseRefs(r); err != nil {
		return err
	}
	cr.Heartbeat, err = decodeLeaseRefs(r)
	return err
}

func appendLeaseRefs(w *harness.WireWriter, refs []LeaseRef) {
	w.PutUvarint(uint64(len(refs)))
	for _, ref := range refs {
		w.PutUvarint(uint64(ref.JobID))
		w.PutVarint(ref.LeaseID)
	}
}

func decodeLeaseRefs(r *harness.WireReader) ([]LeaseRef, error) {
	n, err := r.Int()
	if err != nil || n == 0 {
		return nil, err
	}
	refs := make([]LeaseRef, n)
	for i := range refs {
		jobID, err := r.Uvarint()
		if err != nil {
			return nil, err
		}
		refs[i].JobID = int(jobID)
		if refs[i].LeaseID, err = r.Varint(); err != nil {
			return nil, err
		}
	}
	return refs, nil
}

// appendJobResult writes one shard result. TraceVerifyNs is not a wire
// field, exactly as its json:"-" tag keeps it out of the JSON codec:
// verification wall-time is accounted where the checking ran.
func appendJobResult(w *harness.WireWriter, jr *JobResult, scratch *[]string) {
	w.PutVarint(int64(jr.JobID))
	w.PutString(jr.Test)
	w.PutString(jr.Tool)
	w.PutString(jr.Preset)
	w.PutVarint(int64(jr.Shard))
	w.PutVarint(int64(jr.N))
	w.PutVarint(jr.Seed)
	w.PutVarint(jr.Target)
	w.PutVarint(jr.Ticks)
	w.PutVarint(jr.Frames)
	w.PutHistogram(jr.Histogram, scratch)
	w.PutString(jr.Note)
	w.PutVarint(int64(jr.Retries))
	w.PutVarint(jr.TracesVerified)
	w.PutVarint(jr.TraceViolations)
	w.PutStrings(jr.TraceReports)
}

func decodeJobResult(r *harness.WireReader) (*JobResult, error) {
	jr := &JobResult{}
	v, err := r.Varint()
	if err != nil {
		return nil, err
	}
	jr.JobID = int(v)
	if jr.Test, err = r.String(); err != nil {
		return nil, err
	}
	if jr.Tool, err = r.String(); err != nil {
		return nil, err
	}
	if jr.Preset, err = r.String(); err != nil {
		return nil, err
	}
	if v, err = r.Varint(); err != nil {
		return nil, err
	}
	jr.Shard = int(v)
	if v, err = r.Varint(); err != nil {
		return nil, err
	}
	jr.N = int(v)
	if jr.Seed, err = r.Varint(); err != nil {
		return nil, err
	}
	if jr.Target, err = r.Varint(); err != nil {
		return nil, err
	}
	if jr.Ticks, err = r.Varint(); err != nil {
		return nil, err
	}
	if jr.Frames, err = r.Varint(); err != nil {
		return nil, err
	}
	if jr.Histogram, err = r.Histogram(); err != nil {
		return nil, err
	}
	if jr.Note, err = r.String(); err != nil {
		return nil, err
	}
	if v, err = r.Varint(); err != nil {
		return nil, err
	}
	jr.Retries = int(v)
	if jr.TracesVerified, err = r.Varint(); err != nil {
		return nil, err
	}
	if jr.TraceViolations, err = r.Varint(); err != nil {
		return nil, err
	}
	if jr.TraceReports, err = r.Strings(); err != nil {
		return nil, err
	}
	return jr, nil
}
