package campaign

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
)

// checkpointVersion guards the snapshot format; version 2 wraps the
// snapshot in a CRC-carrying envelope so disk corruption is detected at
// load instead of silently mis-merging. Version-1 snapshots (no
// envelope) are still readable for migration.
const checkpointVersion = 2

// checkpointPrevSuffix names the rotated last-good snapshot kept beside
// the active one. Every successful save moves the previous active file
// here, so a snapshot that later turns out corrupt (bit rot, torn
// write that slipped past fsync) has a verified predecessor to fall
// back to — a resume then merely re-runs the handful of jobs completed
// since, reaching identical totals.
const checkpointPrevSuffix = ".prev"

// ErrCheckpointCorrupt marks a snapshot whose bytes cannot be trusted:
// undecodable JSON, a CRC mismatch, or an unreadable payload. Loaders
// fall back to the rotated last-good snapshot when they see it.
var ErrCheckpointCorrupt = errors.New("checkpoint corrupt")

// Checkpoint is the on-disk campaign snapshot: the (defaulted) spec that
// generated the job list plus every completed job's full result. Because
// job results are deterministic functions of their shard seed, and
// campaign aggregation is order-invariant, restoring Done and running
// only the remaining jobs reproduces the uninterrupted campaign's totals
// exactly.
type Checkpoint struct {
	Version int          `json:"version"`
	Spec    Spec         `json:"spec"`
	Done    []*JobResult `json:"done"`
	// Ledger, when present, is the dispatch lease ledger at save time —
	// the compaction target the write-ahead log folds into. Absent for
	// local runs and pre-WAL snapshots; a dispatcher restoring a snapshot
	// without one falls back to re-leasing everything not done.
	Ledger *LedgerSnapshot `json:"ledger,omitempty"`
}

// LedgerSnapshot is the lease ledger's full state inside a checkpoint:
// every queue row, the grant-nonce high-water mark, and the nonce each
// merged upload carried (what keeps duplicate-vs-fenced classification
// exact across a restart). Rows cover jobs that entered the queue this
// incarnation; jobs restored as done before the queue was built have no
// row and need none.
type LedgerSnapshot struct {
	NextLease int64         `json:"next_lease"`
	Cancelled bool          `json:"cancelled,omitempty"`
	Rows      []LedgerRow   `json:"rows"`
	Merged    []MergedLease `json:"merged,omitempty"`
}

// LedgerRow mirrors one queueEntry. State uses the leaseState values
// (0 pending, 1 leased, 2 done); Expires is Unix nanoseconds.
type LedgerRow struct {
	JobID    int    `json:"job_id"`
	State    int    `json:"state"`
	LeaseID  int64  `json:"lease_id,omitempty"`
	Worker   string `json:"worker,omitempty"`
	Expires  int64  `json:"expires,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
	Failed   bool   `json:"failed,omitempty"`
	FailErr  string `json:"fail_err,omitempty"`
}

// MergedLease records which lease nonce a merged job's upload carried.
type MergedLease struct {
	JobID   int   `json:"job_id"`
	LeaseID int64 `json:"lease_id"`
}

// checkpointEnvelope is the version-2 file format: the compact-encoded
// Checkpoint plus its IEEE CRC-32. The CRC is computed over the
// compacted payload bytes so re-indentation (MarshalIndent at save,
// whatever whitespace survives on disk at load) cannot perturb it.
type checkpointEnvelope struct {
	Version int             `json:"version"`
	CRC32   uint32          `json:"crc32"`
	Payload json.RawMessage `json:"payload"`
}

// SaveCheckpoint writes the snapshot durably and atomically on the real
// filesystem; see SaveCheckpointFS.
func SaveCheckpoint(path string, spec Spec, done map[int]*JobResult) error {
	return SaveCheckpointFS(osCheckpointFS{}, path, spec, done)
}

// SaveCheckpointFS writes the snapshot through fsys: temp file in the
// destination directory, fsync, rename over the active path, directory
// sync. The previous active snapshot is rotated to path+".prev" first,
// so there is always at most one unverified file — a crash at any point
// leaves either the old snapshot, the new one, or (between the two
// renames) only the rotated last-good copy, which LoadCheckpointFS
// recovers. Done is stored sorted by job ID for stable diffs.
func SaveCheckpointFS(fsys CheckpointFS, path string, spec Spec, done map[int]*JobResult) error {
	return SaveCheckpointLedgerFS(fsys, path, spec, done, nil)
}

// SaveCheckpointLedgerFS is SaveCheckpointFS carrying the dispatch
// lease ledger — the WAL compaction path: the snapshot absorbs the
// log's state so the log can be truncated.
func SaveCheckpointLedgerFS(fsys CheckpointFS, path string, spec Spec, done map[int]*JobResult, ledger *LedgerSnapshot) error {
	cp := Checkpoint{Version: checkpointVersion, Spec: spec, Ledger: ledger}
	cp.Done = make([]*JobResult, 0, len(done))
	for _, jr := range done {
		cp.Done = append(cp.Done, jr)
	}
	sort.Slice(cp.Done, func(i, j int) bool { return cp.Done[i].JobID < cp.Done[j].JobID })

	payload, err := json.Marshal(&cp)
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint: %w", err)
	}
	env := checkpointEnvelope{Version: checkpointVersion, CRC32: crc32.ChecksumIEEE(payload), Payload: payload}
	data, err := json.MarshalIndent(&env, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint: %w", err)
	}

	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: writing checkpoint: %w", err)
	}
	defer fsys.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: writing checkpoint: %w", err)
	}
	// fsync before rename: without it, a crash shortly after the rename
	// can leave the new name pointing at a zero-length or torn file on
	// journaled filesystems that reorder data behind metadata.
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: syncing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: writing checkpoint: %w", err)
	}
	// Rotate the current snapshot to last-good before installing the new
	// one. ENOENT just means this is the first save.
	if err := fsys.Rename(path, path+checkpointPrevSuffix); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("campaign: rotating checkpoint: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("campaign: committing checkpoint: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("campaign: syncing checkpoint directory: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a snapshot from the real filesystem; see
// LoadCheckpointFS. Recovery from the rotated snapshot is transparent
// here; callers that want to know use the FS variant.
func LoadCheckpoint(path string, spec Spec) (map[int]*JobResult, error) {
	done, _, err := LoadCheckpointFS(osCheckpointFS{}, path, spec)
	return done, err
}

// LoadCheckpointFS reads and verifies a snapshot through fsys. When the
// active snapshot is corrupt (CRC mismatch, undecodable bytes) — or
// missing while the rotated last-good one exists, the signature of a
// crash between the two save renames — it falls back to path+".prev"
// and reports recovered=true. A corrupt active snapshot with no usable
// fallback is an error: silently restarting from scratch would hide
// data loss from the operator.
func LoadCheckpointFS(fsys CheckpointFS, path string, spec Spec) (done map[int]*JobResult, recovered bool, err error) {
	done, _, recovered, err = LoadCheckpointLedgerFS(fsys, path, spec)
	return done, recovered, err
}

// LoadCheckpointLedgerFS is LoadCheckpointFS that also returns the
// dispatch lease ledger stored in the snapshot (nil for local-run and
// pre-WAL snapshots).
func LoadCheckpointLedgerFS(fsys CheckpointFS, path string, spec Spec) (done map[int]*JobResult, ledger *LedgerSnapshot, recovered bool, err error) {
	done, ledger, err = loadCheckpointFile(fsys, path, spec)
	if err == nil {
		return done, ledger, false, nil
	}
	if !errors.Is(err, ErrCheckpointCorrupt) && !os.IsNotExist(err) {
		// Spec mismatch, version from the future, duplicate jobs: the file
		// is intact but wrong, and the rotated copy was written by the same
		// campaign — falling back cannot help.
		return nil, nil, false, err
	}
	prev, prevLedger, prevErr := loadCheckpointFile(fsys, path+checkpointPrevSuffix, spec)
	if prevErr == nil {
		return prev, prevLedger, true, nil
	}
	// No usable fallback: surface the original failure (for a missing
	// active file that is simply "fresh campaign", which callers detect
	// with os.IsNotExist).
	return nil, nil, false, err
}

// loadCheckpointFile reads one snapshot file, verifying the CRC for
// version-2 envelopes and accepting bare version-1 snapshots for
// migration.
func loadCheckpointFile(fsys CheckpointFS, path string, spec Spec) (map[int]*JobResult, *LedgerSnapshot, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var cp Checkpoint
	var env checkpointEnvelope
	switch {
	case json.Unmarshal(data, &env) == nil && env.Version == checkpointVersion && len(env.Payload) > 0:
		var compact bytes.Buffer
		if err := json.Compact(&compact, env.Payload); err != nil {
			return nil, nil, fmt.Errorf("campaign: checkpoint %s payload: %v: %w", path, err, ErrCheckpointCorrupt)
		}
		if got := crc32.ChecksumIEEE(compact.Bytes()); got != env.CRC32 {
			return nil, nil, fmt.Errorf("campaign: checkpoint %s CRC mismatch (%08x on disk, %08x computed): %w",
				path, env.CRC32, got, ErrCheckpointCorrupt)
		}
		if err := json.Unmarshal(env.Payload, &cp); err != nil {
			return nil, nil, fmt.Errorf("campaign: checkpoint %s payload: %v: %w", path, err, ErrCheckpointCorrupt)
		}
	case json.Unmarshal(data, &cp) == nil && cp.Version == 1:
		// Legacy (pre-CRC) snapshot: accepted as-is for migration; the
		// next save rewrites it in envelope form.
	default:
		if json.Unmarshal(data, &env) == nil && env.Version > checkpointVersion {
			return nil, nil, fmt.Errorf("campaign: checkpoint %s has version %d, want ≤ %d", path, env.Version, checkpointVersion)
		}
		return nil, nil, fmt.Errorf("campaign: checkpoint %s is not a decodable snapshot: %w", path, ErrCheckpointCorrupt)
	}
	if err := cp.Spec.Validate(); err != nil {
		return nil, nil, fmt.Errorf("campaign: checkpoint %s spec: %w", path, err)
	}
	if !reflect.DeepEqual(normalizeSpec(cp.Spec), normalizeSpec(spec)) {
		return nil, nil, fmt.Errorf("campaign: checkpoint %s was written by a different spec", path)
	}
	done := make(map[int]*JobResult, len(cp.Done))
	for _, jr := range cp.Done {
		if jr == nil {
			continue
		}
		if _, dup := done[jr.JobID]; dup {
			return nil, nil, fmt.Errorf("campaign: checkpoint %s lists job %d twice", path, jr.JobID)
		}
		done[jr.JobID] = jr
	}
	return done, cp.Ledger, nil
}

// normalizeSpec strips fields that do not influence the job list or its
// results, so a resume may legitimately change them (worker count,
// retry budget, name).
func normalizeSpec(s Spec) Spec {
	s.Name = ""
	s.Workers = 0
	s.MaxRetries = 0
	return s
}
