package campaign

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
)

// checkpointVersion guards the snapshot format; a mismatch refuses to
// resume rather than silently mis-merging.
const checkpointVersion = 1

// Checkpoint is the on-disk campaign snapshot: the (defaulted) spec that
// generated the job list plus every completed job's full result. Because
// job results are deterministic functions of their shard seed, and
// campaign aggregation is order-invariant, restoring Done and running
// only the remaining jobs reproduces the uninterrupted campaign's totals
// exactly.
type Checkpoint struct {
	Version int          `json:"version"`
	Spec    Spec         `json:"spec"`
	Done    []*JobResult `json:"done"`
}

// SaveCheckpoint writes the snapshot atomically (temp file + rename in
// the destination directory), so a crash mid-write leaves the previous
// snapshot intact. Done is stored sorted by job ID for stable diffs.
func SaveCheckpoint(path string, spec Spec, done map[int]*JobResult) error {
	cp := Checkpoint{Version: checkpointVersion, Spec: spec}
	cp.Done = make([]*JobResult, 0, len(done))
	for _, jr := range done {
		cp.Done = append(cp.Done, jr)
	}
	sort.Slice(cp.Done, func(i, j int) bool { return cp.Done[i].JobID < cp.Done[j].JobID })

	data, err := json.MarshalIndent(&cp, "", "  ")
	if err != nil {
		return fmt.Errorf("campaign: encoding checkpoint: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: writing checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: writing checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("campaign: committing checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a snapshot and verifies it belongs to the given
// spec: resuming a checkpoint from a different campaign would merge
// unrelated shards, so any spec difference is an error rather than a
// warning.
func LoadCheckpoint(path string, spec Spec) (map[int]*JobResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("campaign: decoding checkpoint %s: %w", path, err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("campaign: checkpoint %s has version %d, want %d", path, cp.Version, checkpointVersion)
	}
	if err := cp.Spec.Validate(); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s spec: %w", path, err)
	}
	if !reflect.DeepEqual(normalizeSpec(cp.Spec), normalizeSpec(spec)) {
		return nil, fmt.Errorf("campaign: checkpoint %s was written by a different spec", path)
	}
	done := make(map[int]*JobResult, len(cp.Done))
	for _, jr := range cp.Done {
		if jr == nil {
			continue
		}
		if _, dup := done[jr.JobID]; dup {
			return nil, fmt.Errorf("campaign: checkpoint %s lists job %d twice", path, jr.JobID)
		}
		done[jr.JobID] = jr
	}
	return done, nil
}

// normalizeSpec strips fields that do not influence the job list or its
// results, so a resume may legitimately change them (worker count,
// retry budget, name).
func normalizeSpec(s Spec) Spec {
	s.Name = ""
	s.Workers = 0
	s.MaxRetries = 0
	return s
}
