package campaign

// Test hooks for the chaos suite. These live in a regular compile-unit
// file rather than export_test.go because the adversarial failover
// tests run from package campaign_test (they need internal/chaos, which
// imports campaign), and external test units only see the package's
// exported compile-unit surface — in-package test helpers are invisible
// to them (see internal/analysis/load.go). Both hooks are no-ops for
// production callers: one is a read-only accessor, the other installs a
// callback nothing in production code ever sets.

// DispatcherForTest returns the dispatcher behind a dispatch-mode run,
// or nil.
func (s *Server) DispatcherForTest(id string) *Dispatcher {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runs[id]; ok {
		return r.dispatcher
	}
	return nil
}

// SetKillHookForTest installs the simulated kill -9 trigger: the hook
// runs at each named adversarial point (under the dispatcher mutex) and
// returning true flips the dispatcher into the killed state — all
// persistence stops while acknowledgments continue.
func (d *Dispatcher) SetKillHookForTest(hook func(point string) bool) {
	d.mu.Lock()
	d.killHook = hook
	d.mu.Unlock()
}
