package campaign

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// fakeJobResults builds a deterministic pile of shard results across
// several groups, with histograms and notes.
func fakeJobResults(n int) []*JobResult {
	rng := rand.New(rand.NewSource(99))
	tests := []string{"sb", "mp", "iriw"}
	tools := []string{"perple-heur", "litmus7-user"}
	out := make([]*JobResult, n)
	for i := range out {
		jr := &JobResult{
			JobID:  i,
			Test:   tests[rng.Intn(len(tests))],
			Tool:   tools[rng.Intn(len(tools))],
			Preset: "default",
			Shard:  i,
			N:      100 + rng.Intn(400),
			Target: rng.Int63n(50),
			Ticks:  1000 + rng.Int63n(9000),
			Frames: rng.Int63n(500),
		}
		if jr.Tool == "litmus7-user" {
			jr.Histogram = map[string]int64{}
			for k := 0; k < 1+rng.Intn(4); k++ {
				jr.Histogram[fmt.Sprintf("%d,|%d,|", k, k+1)] += 1 + rng.Int63n(20)
			}
		}
		if rng.Intn(4) == 0 {
			jr.Note = "not convertible"
		}
		out[i] = jr
	}
	return out
}

// TestResultsOrderInvariant: adding job results in any order, or
// partitioning them into sub-accumulators merged in any grouping,
// renders byte-identical campaign reports.
func TestResultsOrderInvariant(t *testing.T) {
	jrs := fakeJobResults(40)
	baseline := NewResults()
	for _, jr := range jrs {
		baseline.Add(jr)
	}
	want := baseline.Render()

	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 30; round++ {
		perm := rng.Perm(len(jrs))

		// Random partition into 1..5 accumulators, merged in random order.
		parts := make([]*Results, 1+rng.Intn(5))
		for i := range parts {
			parts[i] = NewResults()
		}
		for _, p := range perm {
			parts[rng.Intn(len(parts))].Add(jrs[p])
		}
		merged := NewResults()
		for _, i := range rng.Perm(len(parts)) {
			merged.Merge(parts[i])
		}

		if got := merged.Render(); got != want {
			t.Fatalf("round %d: render differs after shuffled merge\n--- want ---\n%s\n--- got ---\n%s", round, want, got)
		}
	}
}

func TestResultsTotals(t *testing.T) {
	r := NewResults()
	r.Add(&JobResult{Test: "sb", Tool: "perple-heur", Preset: "default", N: 100, Target: 7, Ticks: 1000})
	r.Add(&JobResult{Test: "sb", Tool: "perple-heur", Preset: "default", Shard: 1, N: 200, Target: 3, Ticks: 2000})
	r.Add(&JobResult{Test: "mp", Tool: "litmus7-user", Preset: "pso", N: 50, Target: 1, Ticks: 500})
	target, ticks, n := r.Totals()
	if target != 11 || ticks != 3500 || n != 350 {
		t.Fatalf("totals = %d/%d/%d", target, ticks, n)
	}
	g := r.Groups[groupKey("sb", "perple-heur", "default")]
	if g == nil || g.Shards != 2 || g.N != 300 || g.Target != 10 {
		t.Fatalf("group = %+v", g)
	}
}

func TestRenderIncludesFailures(t *testing.T) {
	r := NewResults()
	r.Add(&JobResult{Test: "sb", Tool: "perple-heur", Preset: "default", N: 10, Target: 1, Ticks: 10})
	r.AddFailure(JobFailure{JobID: 9, Test: "mp", Tool: "perple-exh", Preset: "pso", Attempts: 3, Err: "boom"})
	out := r.Render()
	for _, want := range []string{"1 job(s) failed", "job 9", "boom", "campaign totals"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
