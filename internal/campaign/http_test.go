package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer()
	srv.CheckpointDir = t.TempDir()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.CancelAll()
		ts.Close()
	})
	return srv, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d: %s", url, resp.StatusCode, wantStatus, body)
	}
	out := map[string]any{}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s returned non-JSON %q: %v", url, body, err)
	}
	return out
}

func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := map[string]any{}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("POST %s returned non-JSON %q: %v", url, raw, err)
	}
	return resp.StatusCode, out
}

// pollState polls the status endpoint until the run leaves StateRunning.
func pollState(t *testing.T, ts *httptest.Server, id string, deadline time.Duration) string {
	t.Helper()
	stop := time.Now().Add(deadline)
	for {
		st := getJSON(t, ts.URL+"/campaigns/"+id, http.StatusOK)
		if state := st["state"].(string); state != StateRunning {
			return state
		}
		if time.Now().After(stop) {
			t.Fatalf("campaign %s still running after %v", id, deadline)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerLifecycle submits a campaign over the whole testdata suite
// (40 tests, well past the 10-test bar) and exercises the observable
// surface while it runs: health, aggregate metrics, status, the
// 409-until-done results gate, and the final merged results.
func TestServerLifecycle(t *testing.T) {
	_, ts := newTestServer(t)

	spec := `{
		"name": "suite-sweep",
		"dir": "../../testdata/suite",
		"tools": ["litmus7-user", "perple-heur"],
		"iterations": 20000,
		"shard_size": 5000,
		"seed": 7
	}`
	code, sub := postJSON(t, ts.URL+"/campaigns", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %v", code, sub)
	}
	id := sub["id"].(string)
	if jobs := sub["jobs"].(float64); jobs < 10 {
		t.Fatalf("campaign expanded only %v jobs", jobs)
	}

	// Liveness and metrics must answer while the campaign is in flight.
	if hz := getJSON(t, ts.URL+"/healthz", http.StatusOK); hz["status"] != "ok" {
		t.Fatalf("healthz = %v", hz)
	}
	m := getJSON(t, ts.URL+"/metrics", http.StatusOK)
	if m["campaigns"].(float64) != 1 {
		t.Fatalf("metrics campaigns = %v", m["campaigns"])
	}
	sched, ok := m["scheduler"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing scheduler block: %v", m)
	}
	for _, key := range []string{"jobs_total", "jobs_completed", "retries", "queue_depth", "iterations_per_sec"} {
		if _, ok := sched[key]; !ok {
			t.Fatalf("scheduler metrics missing %q: %v", key, sched)
		}
	}

	// While the run is observably in flight, results must 409. The
	// campaign may legitimately finish between the status check and the
	// results request (the scheduler clears this suite in well under a
	// second), so a 200 is accepted iff the run is done by then.
	st := getJSON(t, ts.URL+"/campaigns/"+id, http.StatusOK)
	if st["state"] == StateRunning {
		resp, err := http.Get(ts.URL + "/campaigns/" + id + "/results")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusConflict:
			// Still running: the gate held.
		case http.StatusOK:
			if state := getJSON(t, ts.URL+"/campaigns/"+id, http.StatusOK)["state"]; state != StateDone {
				t.Fatalf("results = 200 while campaign state = %v", state)
			}
		default:
			t.Fatalf("results while running = %d, want 409 (or 200 once done)", resp.StatusCode)
		}
	}

	if state := pollState(t, ts, id, 2*time.Minute); state != StateDone {
		t.Fatalf("campaign finished in state %q", state)
	}

	res := getJSON(t, ts.URL+"/campaigns/"+id+"/results", http.StatusOK)
	totals := res["totals"].(map[string]any)
	if totals["iterations"].(float64) <= 0 {
		t.Fatalf("done campaign reports no iterations: %v", totals)
	}
	if groups := res["groups"].([]any); len(groups) < 10 {
		t.Fatalf("results carry only %d groups", len(groups))
	}
	if fails := res["failures"].([]any); len(fails) != 0 {
		t.Fatalf("campaign had failures: %v", fails)
	}

	// The listing includes the finished run.
	list := getJSON(t, ts.URL+"/campaigns", http.StatusOK)
	if runs := list["campaigns"].([]any); len(runs) != 1 {
		t.Fatalf("listing = %v", list)
	}
}

func TestServerCancel(t *testing.T) {
	_, ts := newTestServer(t)

	// A budget big enough that the run cannot finish before the cancel
	// lands (the whole suite at 2M iterations per test/tool pair).
	spec := `{
		"dir": "../../testdata/suite",
		"tools": ["litmus7-user"],
		"iterations": 2000000,
		"shard_size": 10000
	}`
	code, sub := postJSON(t, ts.URL+"/campaigns", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d: %v", code, sub)
	}
	id := sub["id"].(string)

	if code, body := postJSON(t, ts.URL+"/campaigns/"+id+"/cancel", ""); code != http.StatusOK {
		t.Fatalf("cancel = %d: %v", code, body)
	}
	if state := pollState(t, ts, id, 30*time.Second); state != StateCancelled {
		t.Fatalf("cancelled campaign ended in state %q", state)
	}
	// Once cancelled, partial results are served rather than 409.
	res := getJSON(t, ts.URL+"/campaigns/"+id+"/results", http.StatusOK)
	if res["state"] != StateCancelled {
		t.Fatalf("results state = %v", res["state"])
	}
}

func TestServerRejectsBadInput(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []string{
		`{nope`,
		`{"tools": ["litmus7-warp"]}`,
		`{"bogus_field": true}`,
		`{"tests": ["no-such-test"]}`,
	} {
		code, resp := postJSON(t, ts.URL+"/campaigns", body)
		if code != http.StatusBadRequest {
			t.Errorf("submit %q = %d (%v), want 400", body, code, resp)
		}
		if msg, _ := resp["error"].(string); msg == "" {
			t.Errorf("submit %q carried no error message", body)
		}
	}
}

func TestServerUnknownCampaign(t *testing.T) {
	_, ts := newTestServer(t)
	getJSON(t, ts.URL+"/campaigns/c9999", http.StatusNotFound)
	getJSON(t, ts.URL+"/campaigns/c9999/results", http.StatusNotFound)
	if code, _ := postJSON(t, ts.URL+"/campaigns/c9999/cancel", ""); code != http.StatusNotFound {
		t.Fatalf("cancel unknown = %d", code)
	}
}

func TestServerMethodRouting(t *testing.T) {
	_, ts := newTestServer(t)
	// Wrong-method requests must not fall through to other handlers.
	resp, err := http.Get(fmt.Sprintf("%s/campaigns/%s/cancel", ts.URL, "c0001"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET cancel = %d, want 405", resp.StatusCode)
	}
}
