// Package campaign is the suite-scale orchestration layer: it turns a
// campaign spec — a set of litmus tests × machine presets × testing
// tools × an iteration budget — into sharded jobs with deterministic
// per-shard seeds, executes them on a context-aware worker pool with
// panic recovery and bounded retries, merges per-shard results
// associatively into campaign totals, and checkpoints progress so a
// killed campaign resumes where it left off with identical final totals.
//
// The same scheduler backs both cmd/perple-serve (an HTTP service with
// submit/status/results/cancel endpoints plus health and metrics) and
// the -campaign path of cmd/perple-suite.
package campaign

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"perple/internal/litmus"
	"perple/internal/sim"
)

// Spec describes one campaign. The zero value is not runnable; Validate
// applies defaults (see the field comments) and checks the rest.
type Spec struct {
	// Name labels the campaign in checkpoints and server listings.
	Name string `json:"name,omitempty"`

	// Dir is a directory of .litmus files; empty selects the built-in
	// Table II suite plus the non-convertible examples.
	Dir string `json:"dir,omitempty"`

	// Tests, when non-empty, restricts the corpus to these test names.
	Tests []string `json:"tests,omitempty"`

	// Tools are the testing tools to sweep: perple-heur, perple-exh,
	// litmus7-{user,userfence,pthread,timebase,none}, or mixed (PerpLE
	// where convertible, litmus7-user elsewhere). Default: perple-heur.
	Tools []string `json:"tools,omitempty"`

	// Presets are the sim machine presets to sweep. Default: default.
	Presets []string `json:"presets,omitempty"`

	// Seed is the campaign base seed; per-shard seeds are derived from it
	// deterministically. Default: 1.
	Seed int64 `json:"seed,omitempty"`

	// Iterations is the per-(test, tool, preset) iteration budget.
	// Default: 10000.
	Iterations int `json:"iterations,omitempty"`

	// ShardSize splits each budget into jobs of at most this many
	// iterations. Default: Iterations (one shard per combination).
	ShardSize int `json:"shard_size,omitempty"`

	// ExhCap bounds the exhaustive counter's iterations per shard
	// (perple-exh only); 0 means DefaultExhCap, negative means uncapped.
	ExhCap int `json:"exh_cap,omitempty"`

	// MaxRetries bounds how many times a failing job is re-attempted
	// before it is recorded as a failure. Default: 2.
	MaxRetries int `json:"max_retries,omitempty"`

	// Workers sizes the worker pool; 0 selects GOMAXPROCS.
	Workers int `json:"workers,omitempty"`

	// IntraWorkers parallelizes inside each job: a litmus7 shard runs as
	// an IntraWorkers-way batch over sim.WorkerSeed substreams, and a
	// PerpLE shard batches its execution the same way and fans its
	// counting phase out over IntraWorkers goroutines. Unlike Workers
	// this is result-affecting (a k-way batch equals the merge of k
	// derived-seed subshards, not the serial shard), so checkpoints
	// record it and a resume must keep it. Default: 1.
	IntraWorkers int `json:"intra_workers,omitempty"`

	// Axiom selects what the static axiomatic checker (internal/axiom)
	// does with each corpus test's declared target at campaign
	// construction: AxiomWarn (the default) classifies every target and
	// records the result alongside the campaign; AxiomReject additionally
	// drops tests whose target is statically forbidden or unsatisfiable
	// from job expansion — iterations spent on them can only ever detect
	// simulator conformance bugs, never memory-model behaviour; AxiomOff
	// skips the analysis. Tests beyond the checker's exact-enumeration
	// cutoff are never rejected, only annotated. Because AxiomReject
	// changes the job list, the policy is part of the spec's checkpoint
	// identity.
	Axiom string `json:"axiom,omitempty"`

	// TraceVerify enables streaming witness-trace verification on the
	// litmus7 jobs of this campaign: "" or "off" disables it (the
	// default), "all" verifies every iteration, and a decimal stride k ≥
	// 1 verifies every k-th iteration against x86-TSO with the
	// near-linear checker in internal/trace. Verification is a pure
	// observer — it never changes simulation results or the campaign's
	// canonical document, only the verification tallies and the /metrics
	// families — but checkpoints record the setting so a resumed campaign
	// keeps counting against the same stride. PerpLE-tool jobs have no
	// per-iteration rf/co witness and skip verification.
	TraceVerify string `json:"trace_verify,omitempty"`
}

// Axiom policy values for Spec.Axiom.
const (
	AxiomOff    = "off"
	AxiomWarn   = "warn"
	AxiomReject = "reject"
)

// Spec defaults, applied by Validate.
const (
	DefaultIterations = 10000
	DefaultMaxRetries = 2
	DefaultExhCap     = 2000
)

// Validate applies defaults in place and rejects inconsistent specs.
func (s *Spec) Validate() error {
	if len(s.Tools) == 0 {
		s.Tools = []string{"perple-heur"}
	}
	if len(s.Presets) == 0 {
		s.Presets = []string{"default"}
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Iterations == 0 {
		s.Iterations = DefaultIterations
	}
	if s.Iterations < 0 {
		return fmt.Errorf("campaign: negative iteration budget %d", s.Iterations)
	}
	if s.ShardSize == 0 {
		s.ShardSize = s.Iterations
	}
	if s.ShardSize < 0 {
		return fmt.Errorf("campaign: negative shard size %d", s.ShardSize)
	}
	if s.MaxRetries == 0 {
		s.MaxRetries = DefaultMaxRetries
	}
	if s.MaxRetries < 0 {
		s.MaxRetries = 0
	}
	if s.ExhCap == 0 {
		s.ExhCap = DefaultExhCap
	}
	if s.Workers <= 0 {
		s.Workers = runtime.GOMAXPROCS(0)
	}
	if s.IntraWorkers <= 0 {
		s.IntraWorkers = 1
	}
	if s.Axiom == "" {
		s.Axiom = AxiomWarn
	}
	switch s.Axiom {
	case AxiomOff, AxiomWarn, AxiomReject:
	default:
		return fmt.Errorf("campaign: unknown axiom policy %q (want off, warn, or reject)", s.Axiom)
	}
	if _, err := ParseTraceVerify(s.TraceVerify); err != nil {
		return err
	}
	for _, tool := range s.Tools {
		if err := validateTool(tool); err != nil {
			return err
		}
	}
	for _, preset := range s.Presets {
		if _, err := sim.Preset(preset); err != nil {
			return err
		}
	}
	return nil
}

// ParseTraceVerify resolves a Spec.TraceVerify value to a sampling
// stride: 0 for off, 1 for "all" or "1", k for a decimal "k" ≥ 1.
// Unlike the other spec knobs the empty value stays off rather than
// being default-filled: verification costs real time per sampled
// iteration and must be an explicit opt-in.
func ParseTraceVerify(v string) (int, error) {
	switch v {
	case "", "off":
		return 0, nil
	case "all":
		return 1, nil
	}
	k, err := strconv.Atoi(v)
	if err != nil || k < 1 {
		return 0, fmt.Errorf("campaign: bad trace_verify %q (want off, all, or a stride ≥ 1)", v)
	}
	return k, nil
}

// TraceVerifyEvery is the spec's resolved witness-sampling stride (0 =
// verification off). Call only after Validate.
func (s *Spec) TraceVerifyEvery() int {
	k, _ := ParseTraceVerify(s.TraceVerify)
	return k
}

func validateTool(tool string) error {
	switch {
	case tool == "perple-heur" || tool == "perple-exh" || tool == "mixed":
		return nil
	case strings.HasPrefix(tool, "litmus7-"):
		_, err := sim.ParseMode(strings.TrimPrefix(tool, "litmus7-"))
		return err
	default:
		return fmt.Errorf("campaign: unknown tool %q (want perple-heur, perple-exh, mixed, or litmus7-<mode>)", tool)
	}
}

// ParseSpec decodes and validates a JSON spec.
func ParseSpec(data []byte) (Spec, error) {
	var s Spec
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads and validates a JSON spec file.
func LoadSpec(path string) (Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Spec{}, err
	}
	return ParseSpec(data)
}

// Corpus resolves the spec's test set: the built-in suite or a directory
// of .litmus files, optionally filtered by Tests, sorted by name so job
// expansion is deterministic.
func (s *Spec) Corpus() ([]*litmus.Test, error) {
	var tests []*litmus.Test
	if s.Dir == "" {
		for _, e := range litmus.Suite() {
			tests = append(tests, e.Test)
		}
		tests = append(tests, litmus.NonConvertible()...)
	} else {
		entries, err := os.ReadDir(s.Dir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".litmus") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(s.Dir, e.Name()))
			if err != nil {
				return nil, err
			}
			test, err := litmus.Parse(string(src))
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.Name(), err)
			}
			tests = append(tests, test)
		}
	}
	if len(s.Tests) > 0 {
		want := make(map[string]bool, len(s.Tests))
		for _, name := range s.Tests {
			want[name] = true
		}
		var kept []*litmus.Test
		for _, t := range tests {
			if want[t.Name] {
				kept = append(kept, t)
				delete(want, t.Name)
			}
		}
		if len(want) > 0 {
			missing := make([]string, 0, len(want))
			for name := range want {
				missing = append(missing, name)
			}
			sort.Strings(missing)
			return nil, fmt.Errorf("campaign: tests not in corpus: %v", missing)
		}
		tests = kept
	}
	sort.Slice(tests, func(i, j int) bool { return tests[i].Name < tests[j].Name })
	if len(tests) == 0 {
		return nil, fmt.Errorf("campaign: empty corpus")
	}
	return tests, nil
}

// Job is one schedulable unit: one shard of one (test, tool, preset)
// combination, with a deterministic seed derived from the campaign seed
// and the shard's identity — never from its execution order.
type Job struct {
	ID     int    `json:"id"`
	Test   string `json:"test"`
	Tool   string `json:"tool"`
	Preset string `json:"preset"`
	Shard  int    `json:"shard"`
	N      int    `json:"n"`
	Seed   int64  `json:"seed"`
}

// Jobs expands the spec over the given corpus into the deterministic job
// list: tests × tools × presets × shards, in sorted-corpus order, so
// equal specs always enumerate equal jobs with equal IDs and seeds.
func (s *Spec) Jobs(tests []*litmus.Test) []Job {
	var jobs []Job
	for _, test := range tests {
		for _, tool := range s.Tools {
			for _, preset := range s.Presets {
				remaining := s.Iterations
				for shard := 0; remaining > 0; shard++ {
					n := s.ShardSize
					if n > remaining {
						n = remaining
					}
					jobs = append(jobs, Job{
						ID:     len(jobs),
						Test:   test.Name,
						Tool:   tool,
						Preset: preset,
						Shard:  shard,
						N:      n,
						Seed:   shardSeed(s.Seed, test.Name, tool, preset, shard),
					})
					remaining -= n
				}
			}
		}
	}
	return jobs
}

// shardSeed hashes the campaign seed and the shard's identity into a
// positive simulator seed. FNV-1a keeps it stable across runs and
// platforms; mixing the identity (not the job index) keeps seeds stable
// under spec edits that only append tests or tools.
func shardSeed(base int64, test, tool, preset string, shard int) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%s|%d", base, test, tool, preset, shard)
	seed := int64(h.Sum64() &^ (1 << 63))
	if seed == 0 {
		seed = 1
	}
	return seed
}

// convertibleTool resolves the "mixed" pseudo-tool and the PerpLE
// fallback for a concrete test: PerpLE tools require a convertible
// target (no final-memory conditions), everything else runs litmus7.
// The returned note is non-empty when a fallback was taken.
func convertibleTool(tool string, test *litmus.Test) (string, string) {
	convertible := !test.Target.HasMemConds()
	if tool == "mixed" {
		if convertible {
			return "perple-heur", ""
		}
		return "litmus7-user", ""
	}
	if strings.HasPrefix(tool, "perple-") && !convertible {
		return "litmus7-user", "not convertible"
	}
	return tool, ""
}
