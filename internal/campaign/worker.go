package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"perple/internal/harness"
	"perple/internal/litmus"
)

// WorkerOptions configures one fleet worker.
type WorkerOptions struct {
	// BaseURL is the perple-serve root, e.g. "http://host:8077".
	BaseURL string
	// Campaign is the dispatch-mode campaign id to work on.
	Campaign string
	// Name identifies this worker in lease accounting; default
	// "<hostname>-<pid>".
	Name string
	// Parallel is the number of jobs executed concurrently; 0 selects
	// GOMAXPROCS.
	Parallel int
	// LeaseBatch is the number of jobs pulled per lease call; 0 selects
	// Parallel (keep every executor busy with one round trip).
	LeaseBatch int
	// Wire selects the result-upload codec: "auto" (default) takes the
	// first codec the dispatcher advertises that this worker speaks,
	// WireJSON ("json+gzip", alias "json") forces gzip-JSON, WireBinary
	// ("binary") forces the PWB1 codec even without an advertisement.
	Wire string
	// Client is the HTTP client; nil selects a fresh one with keep-alives
	// and an idle-connection pool sized to the worker's parallelism, so a
	// batch's lease/upload/heartbeat exchanges reuse warm connections.
	Client *http.Client
	// HeartbeatEvery overrides the heartbeat period; 0 selects a third of
	// the server's lease TTL.
	HeartbeatEvery time.Duration
	// MaxAttempts bounds retries per HTTP call (network errors and 5xx);
	// 0 selects 5.
	MaxAttempts int
	// BackoffBase is the first retry delay, doubling per attempt up to
	// 32x; 0 selects 200ms.
	BackoffBase time.Duration
	// BreakerThreshold is the consecutive-failure count that opens the
	// client's circuit breaker; 0 selects DefaultBreakerThreshold.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit holds requests off; 0
	// selects DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// RecoveryWindow, when positive, keeps transport-class retries
	// (network errors and 5xx) going until this much time has passed,
	// even past MaxAttempts — sized to how long a dispatcher restart
	// takes, so a worker rides out a server failover instead of exiting
	// with its leases mid-flight. 4xx responses still fail immediately.
	RecoveryWindow time.Duration
	// OnJobDone observes every locally completed job result, before
	// upload.
	OnJobDone func(*JobResult)

	// runJob overrides job execution (tests inject hangs and failures);
	// nil selects the real harness-backed runner.
	runJob func(ctx context.Context, job Job, test *litmus.Test, spec Spec) (*JobResult, error)
}

// Worker is a fleet member: it pulls shard leases from a perple-serve
// dispatch campaign, executes them with the same harness-backed runner
// the local scheduler uses, and uploads gzip-batched results. Because
// shard seeds are identity-derived and merging is order-invariant, any
// number of workers — joining, crashing, being replaced — drive the
// campaign to the same final bytes as a local run.
type Worker struct {
	opts      WorkerOptions
	brk       *breaker
	draining  atomic.Bool
	drainOnce sync.Once
	drainCh   chan struct{} // closed by Drain; cuts idle poll sleeps short

	// useBinary and piggyback are fixed by codec negotiation in Run
	// before any batch goroutine starts. piggyback means the server is
	// new enough (it advertised codecs) to honor heartbeats carried on
	// uploads; against an older server the flusher sends dedicated
	// heartbeats so lease extension never silently stops working.
	useBinary bool
	piggyback bool

	// upMu serializes uploads so encBuf — the reused binary encode
	// buffer — is never rewritten while a retry is still reading it.
	upMu   sync.Mutex
	encBuf []byte

	// rng drives backoff and poll-wait jitter. Seeding it from the
	// worker's name (not time or a process-global stream) keeps a fleet's
	// members desynchronized from each other yet individually
	// reproducible.
	rngMu sync.Mutex
	rng   *rand.Rand

	// JobsCompleted and JobsFailed count this worker's own executions.
	JobsCompleted atomic.Int64
	JobsFailed    atomic.Int64
}

// NewWorker applies option defaults.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		opts.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opts.Parallel <= 0 {
		opts.Parallel = runtime.GOMAXPROCS(0)
	}
	if opts.LeaseBatch <= 0 {
		opts.LeaseBatch = opts.Parallel
	}
	if opts.Client == nil {
		opts.Client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				Proxy:               http.ProxyFromEnvironment,
				MaxIdleConns:        100,
				MaxIdleConnsPerHost: opts.Parallel + 4,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 5
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 200 * time.Millisecond
	}
	if opts.runJob == nil {
		opts.runJob = runJob
	}
	h := fnv.New64a()
	io.WriteString(h, opts.Name)
	return &Worker{
		opts:    opts,
		brk:     newBreaker(opts.BreakerThreshold, opts.BreakerCooldown),
		drainCh: make(chan struct{}),
		rng:     rand.New(rand.NewSource(int64(h.Sum64() &^ (1 << 63)))),
	}
}

// jitter draws a uniform duration in [0, d] from the worker's own
// stream.
func (w *Worker) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	w.rngMu.Lock()
	defer w.rngMu.Unlock()
	return time.Duration(w.rng.Int63n(int64(d) + 1))
}

// Drain asks the worker to stop pulling new leases: in-flight jobs
// finish and upload, unstarted grants are released back to the queue,
// and Run returns nil. Cancelling Run's context instead is the hard
// stop — nothing is uploaded and the held leases expire server-side.
func (w *Worker) Drain() {
	w.draining.Store(true)
	w.drainOnce.Do(func() { close(w.drainCh) })
}

// Run works the campaign until the server reports it done, Drain is
// called, or ctx is cancelled.
func (w *Worker) Run(ctx context.Context) error {
	corpus, err := w.fetchCorpus(ctx)
	if err != nil {
		return err
	}
	if corpus.Version != ProtocolVersion {
		return fmt.Errorf("campaign: server speaks protocol v%d, worker v%d", corpus.Version, ProtocolVersion)
	}
	if err := w.negotiateWire(corpus); err != nil {
		return err
	}
	spec := corpus.Spec
	tests := make(map[string]*litmus.Test, len(corpus.Tests))
	for _, ct := range corpus.Tests {
		t, err := litmus.Parse(ct.Source)
		if err != nil {
			return fmt.Errorf("campaign: parsing corpus test %q: %w", ct.Name, err)
		}
		tests[ct.Name] = t
	}

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if w.draining.Load() {
			return nil
		}
		var lease LeaseResponse
		if err := w.post(ctx, "lease", LeaseRequest{Worker: w.opts.Name, Max: w.opts.LeaseBatch}, &lease); err != nil {
			return err
		}
		if lease.Done {
			return nil
		}
		if len(lease.Grants) == 0 {
			wait := time.Duration(lease.WaitSec * float64(time.Second))
			if wait <= 0 {
				wait = 500 * time.Millisecond
			}
			// Jitter the poll so idle fleet members spread out instead of
			// stampeding the lease endpoint in lockstep. Drain interrupts
			// the sleep so a signaled idle worker exits promptly.
			wait = wait/2 + w.jitter(wait/2)
			t := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-w.drainCh:
				t.Stop()
				return nil
			case <-t.C:
			}
			continue
		}
		done, err := w.runBatch(ctx, lease, tests, spec)
		if err != nil || done {
			return err
		}
	}
}

// negotiateWire fixes the upload codec and the heartbeat style from the
// dispatcher's corpus advertisement. Absence of an advertisement marks a
// pre-binary server: gzip-JSON uploads and dedicated heartbeats only.
func (w *Worker) negotiateWire(corpus *CorpusResponse) error {
	w.piggyback = len(corpus.Wire) > 0
	switch w.opts.Wire {
	case "", "auto":
		// Take the server's first advertised codec this worker speaks; no
		// advertisement means gzip-JSON, the floor every peer shares.
	pick:
		for _, c := range corpus.Wire {
			switch c {
			case WireBinary:
				w.useBinary = true
				break pick
			case WireJSON:
				break pick
			}
		}
	case WireJSON, "json":
		w.useBinary = false
	case WireBinary:
		w.useBinary = true
	default:
		return fmt.Errorf("campaign: unknown wire codec %q (want auto, %s, or %s)", w.opts.Wire, WireJSON, WireBinary)
	}
	return nil
}

// runBatch executes one lease batch and uploads the outcome. It returns
// done=true when the server reports the campaign finished.
func (w *Worker) runBatch(ctx context.Context, lease LeaseResponse, tests map[string]*litmus.Test, spec Spec) (bool, error) {
	ttl := time.Duration(lease.TTLSec * float64(time.Second))
	up := newBatchUpload(w, lease.Grants)
	flStop := w.startFlusher(ctx, up, ttl)
	defer flStop()

	var (
		sem      = make(chan struct{}, w.opts.Parallel)
		wg       sync.WaitGroup
		abandons bool
	)
	for _, grant := range lease.Grants {
		if w.draining.Load() {
			// Graceful drain: hand unstarted grants back without touching
			// their retry budget.
			up.addReleased(LeaseRef{JobID: grant.Job.ID, LeaseID: grant.LeaseID})
			continue
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			abandons = true
		}
		if abandons {
			break
		}
		wg.Add(1)
		go func(grant LeaseGrant) {
			defer wg.Done()
			defer func() { <-sem }()
			test := tests[grant.Job.Test]
			if test == nil {
				up.addFailure(WorkerFailure{
					LeaseID: grant.LeaseID, JobID: grant.Job.ID,
					Err: fmt.Sprintf("worker corpus is missing test %q", grant.Job.Test),
				})
				return
			}
			jr, err := runRecovered(ctx, grant.Job, test, spec, w.opts.runJob)
			if err != nil {
				if ctx.Err() == nil {
					w.JobsFailed.Add(1)
					up.addFailure(WorkerFailure{
						LeaseID: grant.LeaseID, JobID: grant.Job.ID, Err: err.Error(),
					})
				}
				return
			}
			w.JobsCompleted.Add(1)
			if w.opts.OnJobDone != nil {
				w.opts.OnJobDone(jr)
			}
			up.addResult(WorkerResult{LeaseID: grant.LeaseID, Result: jr})
		}(grant)
	}
	wg.Wait()
	flStop()
	if err := ctx.Err(); err != nil {
		// Hard stop: abandon the batch; the leases expire and requeue.
		return false, err
	}
	if err := up.err(); err != nil {
		return false, err
	}
	// Final flush ships whatever the ticker hasn't already streamed out.
	if err := up.flush(ctx); err != nil {
		return false, err
	}
	return up.done.Load(), nil
}

// batchUpload accumulates one lease batch's outcomes and streams them to
// the dispatcher in sub-batches: each flush ships everything pending and
// — on piggyback-capable servers — carries heartbeats for the leases the
// worker still holds, so a long batch's uploads double as its lease
// extensions. outstanding tracks grants not yet acknowledged by a
// completed upload; a flush that dies retryably leaves them tracked, and
// the whole batch aborts via firstErr.
type batchUpload struct {
	w    *Worker
	done atomic.Bool

	mu          sync.Mutex
	pending     CompleteRequest
	outstanding map[int64]LeaseRef // leaseID → ref, dropped once upload-acked
	firstErr    error
}

func newBatchUpload(w *Worker, grants []LeaseGrant) *batchUpload {
	up := &batchUpload{
		w:           w,
		pending:     CompleteRequest{Version: ProtocolVersion, Worker: w.opts.Name},
		outstanding: make(map[int64]LeaseRef, len(grants)),
	}
	for _, g := range grants {
		up.outstanding[g.LeaseID] = LeaseRef{JobID: g.Job.ID, LeaseID: g.LeaseID}
	}
	return up
}

func (u *batchUpload) addResult(r WorkerResult) {
	u.mu.Lock()
	u.pending.Results = append(u.pending.Results, r)
	u.mu.Unlock()
}

func (u *batchUpload) addFailure(f WorkerFailure) {
	u.mu.Lock()
	u.pending.Failures = append(u.pending.Failures, f)
	u.mu.Unlock()
}

func (u *batchUpload) addReleased(ref LeaseRef) {
	u.mu.Lock()
	u.pending.Released = append(u.pending.Released, ref)
	u.mu.Unlock()
}

func (u *batchUpload) setErr(err error) {
	u.mu.Lock()
	if u.firstErr == nil {
		u.firstErr = err
	}
	u.mu.Unlock()
}

func (u *batchUpload) err() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.firstErr
}

// flush uploads everything pending. With nothing to upload it degrades
// to a plain heartbeat for the still-held leases; with an upload it
// piggybacks those heartbeats when the server honors them and sends the
// dedicated kind otherwise. Callers serialize flushes (ticker goroutine,
// then the final call after it stops).
func (u *batchUpload) flush(ctx context.Context) error {
	u.mu.Lock()
	req := u.pending
	u.pending = CompleteRequest{Version: ProtocolVersion, Worker: u.w.opts.Name}
	consumed := make(map[int64]bool, len(req.Results)+len(req.Failures)+len(req.Released))
	for _, r := range req.Results {
		consumed[r.LeaseID] = true
	}
	for _, f := range req.Failures {
		consumed[f.LeaseID] = true
	}
	for _, ref := range req.Released {
		consumed[ref.LeaseID] = true
	}
	live := make([]LeaseRef, 0, len(u.outstanding))
	for id, ref := range u.outstanding {
		if !consumed[id] {
			live = append(live, ref)
		}
	}
	u.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].JobID < live[j].JobID })

	if len(req.Results)+len(req.Failures)+len(req.Released) == 0 {
		if len(live) > 0 {
			// Best-effort: a lost heartbeat only shortens the lease margin,
			// and the server fences any fallout.
			var hr HeartbeatResponse
			_ = u.w.post(ctx, "heartbeat", HeartbeatRequest{Worker: u.w.opts.Name, Leases: live}, &hr)
		}
		return nil
	}
	if u.w.piggyback {
		req.Heartbeat = live
	}
	var resp CompleteResponse
	if err := u.w.uploadComplete(ctx, &req, &resp); err != nil {
		return err
	}
	u.mu.Lock()
	for id := range consumed {
		delete(u.outstanding, id)
	}
	u.mu.Unlock()
	if resp.Done {
		u.done.Store(true)
	}
	if !u.w.piggyback && len(live) > 0 {
		var hr HeartbeatResponse
		_ = u.w.post(ctx, "heartbeat", HeartbeatRequest{Worker: u.w.opts.Name, Leases: live}, &hr)
	}
	return nil
}

// startFlusher streams pending outcomes (and lease extensions) on the
// heartbeat cadence until the returned stop function is called
// (idempotent). A flush that fails after retries records the error and
// stops streaming; runBatch surfaces it once the executors finish.
func (w *Worker) startFlusher(ctx context.Context, up *batchUpload, ttl time.Duration) func() {
	period := w.opts.HeartbeatEvery
	if period <= 0 {
		period = ttl / 3
	}
	if period <= 0 {
		period = 10 * time.Second
	}
	flCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		tick := time.NewTicker(period)
		defer tick.Stop()
		for {
			select {
			case <-flCtx.Done():
				return
			case <-tick.C:
				if err := up.flush(flCtx); err != nil {
					if flCtx.Err() == nil {
						up.setErr(err)
					}
					return
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			wg.Wait()
		})
	}
}

// fetchCorpus downloads the campaign's spec and test sources.
func (w *Worker) fetchCorpus(ctx context.Context) (*CorpusResponse, error) {
	var corpus CorpusResponse
	err := w.retry(ctx, func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url("corpus"), nil)
		if err != nil {
			return nil, err
		}
		return w.opts.Client.Do(req)
	}, &corpus)
	if err != nil {
		return nil, err
	}
	return &corpus, nil
}

// post sends a JSON request body and decodes the JSON response with
// retry/backoff.
func (w *Worker) post(ctx context.Context, endpoint string, body any, out any) error {
	data, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return w.retry(ctx, func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url(endpoint), bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return w.opts.Client.Do(req)
	}, out)
}

// uploadComplete encodes the batched results in the negotiated codec —
// PWB1 binary into the worker's reused buffer, or gzip-JSON — and posts
// them with retry/backoff. A retried upload after a lost response is
// safe: the server's completion fence deduplicates. upMu both serializes
// the encode buffer and keeps one worker's uploads sequential.
func (w *Worker) uploadComplete(ctx context.Context, creq *CompleteRequest, out *CompleteResponse) error {
	w.upMu.Lock()
	defer w.upMu.Unlock()
	var data []byte
	contentType := harness.WireContentType
	if w.useBinary {
		w.encBuf = harness.EncodeWireBinary(w.encBuf[:0], creq)
		data = w.encBuf
		contentType = harness.WireContentTypeBinary
	} else {
		var err error
		if data, err = harness.EncodeWire(creq); err != nil {
			return err
		}
	}
	return w.retry(ctx, func() (*http.Response, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url("complete"), bytes.NewReader(data))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", contentType)
		return w.opts.Client.Do(req)
	}, out)
}

func (w *Worker) url(endpoint string) string {
	return fmt.Sprintf("%s/campaigns/%s/%s", w.opts.BaseURL, w.opts.Campaign, endpoint)
}

// retry runs one HTTP exchange with exponential backoff on transport
// errors, 5xx responses, and undecodable response bodies (bytes damaged
// in flight); 4xx responses fail immediately (the request is wrong, not
// the network). Every outcome feeds the worker's circuit breaker, and
// an open circuit is waited out before the next attempt — attempts are
// spent on the server, not on a cooldown we already know about.
func (w *Worker) retry(ctx context.Context, do func() (*http.Response, error), out any) error {
	backoff := w.opts.BackoffBase
	// A recovery window extends transport-class retries past MaxAttempts
	// until the deadline passes — long enough to span a dispatcher
	// restart, so a failover costs the worker backoff time, not its
	// leases.
	var deadline time.Time
	if w.opts.RecoveryWindow > 0 {
		deadline = time.Now().Add(w.opts.RecoveryWindow)
	}
	var lastErr error
	attempt := 0
	for ; attempt < w.opts.MaxAttempts || (!deadline.IsZero() && time.Now().Before(deadline)); attempt++ {
		if attempt > 0 {
			// Full jitter keeps a rebooting fleet from thundering back in
			// sync.
			d := backoff/2 + w.jitter(backoff/2)
			if err := sleepCtx(ctx, d); err != nil {
				return err
			}
			if backoff < 32*w.opts.BackoffBase {
				backoff *= 2
			}
		}
		if hold := w.brk.waitTime(time.Now()); hold > 0 {
			if err := sleepCtx(ctx, hold); err != nil {
				return err
			}
		}
		resp, err := do()
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			w.brk.failure(time.Now())
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			w.brk.failure(time.Now())
			lastErr = err
			continue
		}
		switch {
		case resp.StatusCode >= 500:
			w.brk.failure(time.Now())
			lastErr = fmt.Errorf("campaign: server error %s: %s", resp.Status, firstLine(body))
			continue
		case resp.StatusCode >= 400:
			w.brk.success()
			return fmt.Errorf("campaign: %s: %s", resp.Status, firstLine(body))
		}
		w.brk.success()
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(body, out); err != nil {
			// A 200 with undecodable JSON is a damaged body, not a protocol
			// disagreement: retry. Uploads stay safe to re-send — the server
			// dedupes by lease nonce.
			lastErr = fmt.Errorf("campaign: decoding response: %w", err)
			continue
		}
		return nil
	}
	return fmt.Errorf("campaign: giving up after %d attempts: %w", attempt, lastErr)
}

func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}

// sleepCtx sleeps or returns early with ctx's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
